#!/usr/bin/env python3
"""CI Prometheus exposition check.

Usage: check_prom.py metrics.txt [required_series ...]

Validates a scraped /metrics body against the text format (0.0.4) the
endpoint claims to speak:

- every non-comment line parses as `name{labels} value` or
  `name value` with a float (or +Inf/-Inf/NaN) value;
- HELP and TYPE appear at most once per metric family (duplicate TYPE
  is a hard parse error in real Prometheus servers);
- every histogram bucket group — samples of one `<base>_bucket` series
  sharing the labels minus `le` — is monotone non-decreasing in le
  order and ends with an explicit le="+Inf" bucket;
- at least one `_bucket` series with an le label exists;
- every required series name passed as an extra argument has at least
  one sample line.
"""
import math
import re
import sys

LINE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'      # metric name
    r'(?:\{(.*)\})?'                     # optional label block
    r' (NaN|[+-]Inf|[-+0-9].\S*|[0-9])'  # value
    r'(?: \d+)?$'                        # optional timestamp
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(s):
    if s == "NaN":
        return math.nan
    if s == "+Inf":
        return math.inf
    if s == "-Inf":
        return -math.inf
    return float(s)


def parse_labels(block):
    if not block:
        return ()
    pairs = LABEL.findall(block)
    # Reconstruct and compare to catch garbage between pairs.
    rebuilt = ",".join(f'{k}="{v}"' for k, v in pairs)
    stripped = block.rstrip(",")
    if rebuilt != stripped:
        raise ValueError(f"unparseable label block {{{block}}}")
    return tuple(sorted(pairs))


def main():
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    path, required = sys.argv[1], sys.argv[2:]
    with open(path) as f:
        lines = f.read().splitlines()

    meta_seen = {}  # (kind, family) -> line number
    samples = {}    # name -> count
    buckets = {}    # (base name, labels minus le) -> [(le, value)]
    errors = []

    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                key = (parts[1], parts[2])
                if key in meta_seen:
                    errors.append(
                        f"line {i}: duplicate # {parts[1]} {parts[2]} "
                        f"(first at line {meta_seen[key]})")
                meta_seen[key] = i
            continue
        m = LINE.match(line)
        if not m:
            errors.append(f"line {i}: unparseable sample: {line!r}")
            continue
        name, label_block, value_s = m.group(1), m.group(2), m.group(3)
        try:
            value = parse_value(value_s)
            labels = parse_labels(label_block)
        except ValueError as e:
            errors.append(f"line {i}: {e}")
            continue
        samples[name] = samples.get(name, 0) + 1
        if name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                errors.append(f"line {i}: _bucket sample without le label")
                continue
            rest = tuple(kv for kv in labels if kv[0] != "le")
            buckets.setdefault((name, rest), []).append((le, value))

    if not buckets:
        errors.append("no _bucket series with an le label found")

    for (name, rest), pairs in buckets.items():
        where = f'{name}{{{",".join(f"{k}={v}" for k, v in rest)}}}'
        les = [le for le, _ in pairs]
        if les.count("+Inf") != 1 or les[-1] != "+Inf":
            errors.append(f"{where}: bucket group must end with one le=\"+Inf\"")
        finite = [(float(le), v) for le, v in pairs if le != "+Inf"]
        if sorted(le for le, _ in finite) != [le for le, _ in finite]:
            errors.append(f"{where}: le bounds out of order")
        counts = [v for _, v in finite] + [v for le, v in pairs if le == "+Inf"]
        for a, b in zip(counts, counts[1:]):
            if b < a:
                errors.append(f"{where}: cumulative counts decrease ({a} -> {b})")
                break

    for name in required:
        if samples.get(name, 0) == 0:
            errors.append(f"required series {name} has no samples")

    if errors:
        for e in errors:
            print("check_prom:", e, file=sys.stderr)
        raise SystemExit(1)
    print(f"check_prom: OK ({sum(samples.values())} samples, "
          f"{len(samples)} series names, {len(buckets)} bucket groups)")


if __name__ == "__main__":
    main()
