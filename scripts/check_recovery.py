#!/usr/bin/env python3
"""CI crash-recovery smoke check.

Usage: check_recovery.py pre_crash.json post_crash.json

Both files are /debug/holistic snapshots (a JSON array of {name,
metrics} store entries). Asserts that after a kill -9 and restart the
reopened store (a) actually replayed WAL records, (b) reached a daemon
convergence ratio at least as good as the snapshot taken just before
the crash — the point of persisting the adaptive state — and (c)
carries the flight-recorder series: the recovery block must count the
flight dumps of the crashed process as post-mortems, and the metrics
must publish the watchdog's rolling state.
"""
import json
import sys


def first_store(path):
    with open(path) as f:
        snap = json.load(f)
    if not snap:
        raise SystemExit(f"{path}: no stores registered")
    return snap[0]["metrics"]


def require(block, name, *keys):
    """Exit non-zero when any key is missing from the series block."""
    missing = [k for k in keys if k not in block]
    if missing:
        raise SystemExit(f"{name} block missing series: {', '.join(missing)}")


def main():
    pre = first_store(sys.argv[1])
    post = first_store(sys.argv[2])

    rec = post.get("recovery")
    if rec is None:
        raise SystemExit("post-crash snapshot has no recovery block")
    require(
        rec, "recovery",
        "generation", "clean_start", "replayed_records", "restored_indexes",
        "torn_wal_tail", "flight_dumps", "flight_dump_failures", "prior_flight_dumps",
    )
    print(
        f"recovery: generation={rec['generation']} clean_start={rec['clean_start']} "
        f"replayed_records={rec['replayed_records']} restored_indexes={rec['restored_indexes']}"
    )
    if rec["clean_start"]:
        raise SystemExit("restart after kill -9 reported a clean start")
    if rec["replayed_records"] <= 0:
        raise SystemExit("no WAL records replayed after the crash")

    # The crashed process checkpointed at least once while loading its
    # relation, and every checkpoint dumps the flight ring — so the
    # reopened store must have found post-mortem dumps on disk.
    if rec["prior_flight_dumps"] < 1:
        raise SystemExit(
            "reopened store found no flight dumps from the killed process "
            f"(prior_flight_dumps={rec['prior_flight_dumps']})"
        )
    print(
        f"flight dumps: prior={rec['prior_flight_dumps']} "
        f"written={rec['flight_dumps']} failed={rec['flight_dump_failures']}"
    )
    if rec["flight_dump_failures"] > 0:
        raise SystemExit(f"{rec['flight_dump_failures']} flight dump write(s) failed")

    flight = post.get("flight")
    if flight is None:
        raise SystemExit("post-crash snapshot has no flight block")
    require(flight, "flight", "events_recorded", "ring_capacity", "watchdog")
    wd = flight["watchdog"]
    require(
        wd, "watchdog",
        "windows", "baseline_p99_us", "last_window_p99_us",
        "anomalies", "last_trigger", "dumps_written",
    )
    if flight["events_recorded"] <= 0 or flight["ring_capacity"] <= 0:
        raise SystemExit(f"flight recorder idle after restart: {flight}")
    print(
        f"flight: events={flight['events_recorded']} ring={flight['ring_capacity']} "
        f"watchdog windows={wd['windows']} anomalies={wd['anomalies']} "
        f"last_trigger={wd['last_trigger']}"
    )

    pre_ratio = (pre.get("daemon") or {}).get("convergence_ratio", 0.0)
    post_ratio = (post.get("daemon") or {}).get("convergence_ratio", 0.0)
    print(f"convergence ratio: pre-crash={pre_ratio:.3f} post-restart={post_ratio:.3f}")
    # A small tolerance: the post snapshot is scraped right after boot,
    # before the daemon has re-measured every column.
    if post_ratio + 0.05 < pre_ratio:
        raise SystemExit(
            f"restored convergence {post_ratio:.3f} regressed below pre-crash {pre_ratio:.3f}"
        )
    print("recovery smoke OK")


if __name__ == "__main__":
    main()
