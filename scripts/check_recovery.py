#!/usr/bin/env python3
"""CI crash-recovery smoke check.

Usage: check_recovery.py pre_crash.json post_crash.json

Both files are /debug/holistic snapshots (a JSON array of {name,
metrics} store entries). Asserts that after a kill -9 and restart the
reopened store (a) actually replayed WAL records and (b) reached a
daemon convergence ratio at least as good as the snapshot taken just
before the crash — the point of persisting the adaptive state.
"""
import json
import sys


def first_store(path):
    with open(path) as f:
        snap = json.load(f)
    if not snap:
        raise SystemExit(f"{path}: no stores registered")
    return snap[0]["metrics"]


def main():
    pre = first_store(sys.argv[1])
    post = first_store(sys.argv[2])

    rec = post.get("recovery")
    if rec is None:
        raise SystemExit("post-crash snapshot has no recovery block")
    print(
        f"recovery: generation={rec['generation']} clean_start={rec['clean_start']} "
        f"replayed_records={rec['replayed_records']} restored_indexes={rec['restored_indexes']}"
    )
    if rec["clean_start"]:
        raise SystemExit("restart after kill -9 reported a clean start")
    if rec["replayed_records"] <= 0:
        raise SystemExit("no WAL records replayed after the crash")

    pre_ratio = (pre.get("daemon") or {}).get("convergence_ratio", 0.0)
    post_ratio = (post.get("daemon") or {}).get("convergence_ratio", 0.0)
    print(f"convergence ratio: pre-crash={pre_ratio:.3f} post-restart={post_ratio:.3f}")
    # A small tolerance: the post snapshot is scraped right after boot,
    # before the daemon has re-measured every column.
    if post_ratio + 0.05 < pre_ratio:
        raise SystemExit(
            f"restored convergence {post_ratio:.3f} regressed below pre-crash {pre_ratio:.3f}"
        )
    print("recovery smoke OK")


if __name__ == "__main__":
    main()
