// The store's Prometheus collector (DESIGN.md §12): every Store
// registers itself on the shared /metrics exposition at creation and
// streams its counters, latency histograms, daemon convergence,
// refinement economics and heatmaps through the scrape's shared
// prom.Writer. Naming follows the Prometheus conventions adapted to
// this codebase's units: histograms and invested/saved series carry an
// explicit _ns suffix (the repo measures in nanoseconds, not seconds),
// cumulative counters end in _total, and every series is labeled with
// the store's registry name so several stores in one process stay
// distinguishable.

package holistic

import (
	"math"
	"sort"
	"strconv"

	"holistic/internal/engine"
	"holistic/internal/obs"
	"holistic/internal/obs/econ"
	"holistic/internal/obs/prom"
)

// promCollect streams the store's samples into one scrape. Cold path;
// allocates freely.
func (s *Store) promCollect(w *prom.Writer) {
	store := []prom.Label{prom.L("store", s.obsName)}
	s.mu.Lock()
	exec := s.exec
	rows := s.table.Rows()
	s.mu.Unlock()

	w.Meta("holistic_rows", "Relation row count.", "gauge")
	w.IntSample("holistic_rows", store, int64(rows))
	w.Meta("holistic_queries_total", "Sequenced query executions.", "counter")
	w.IntSample("holistic_queries_total", store, int64(s.met.Seq()))

	// Latency histograms: the merged all-operations distribution and the
	// executor's single-attribute select distribution, in nanoseconds.
	var merged, sel obs.HistSnapshot
	s.met.MergedLatency(&merged)
	s.execMet.SelectLatency.Snapshot(&sel)
	writePromHist(w, "holistic_query_latency_ns",
		"Latency of query operations across all terminals, nanoseconds.", store, &merged)
	writePromHist(w, "holistic_select_latency_ns",
		"Latency of single-attribute select operations, nanoseconds.", store, &sel)

	qs := s.met.Snapshot()
	w.Meta("holistic_op_p99_us", "Per-operation p99 latency, microseconds.", "gauge")
	for _, op := range sortedKeys(qs.Latency) {
		w.Sample("holistic_op_p99_us", append(store, prom.L("op", op)), qs.Latency[op].P99US)
	}
	w.Meta("holistic_representations_total",
		"Executed intermediate selection representations.", "counter")
	for _, rep := range sortedKeys(qs.Representations) {
		w.IntSample("holistic_representations_total", append(store, prom.L("rep", rep)), qs.Representations[rep])
	}
	w.Meta("holistic_strategies_total",
		"Executed physical strategies, keyed subsystem/strategy.", "counter")
	for _, st := range sortedKeys(qs.Strategies) {
		w.IntSample("holistic_strategies_total", append(store, prom.L("strategy", st)), qs.Strategies[st])
	}

	w.Meta("holistic_selects_total", "Single-attribute select operations.", "counter")
	w.IntSample("holistic_selects_total", store, s.execMet.Selects.Load())
	w.Meta("holistic_cracker_builds_total", "Index structures created on first touch.", "counter")
	w.IntSample("holistic_cracker_builds_total", store, s.execMet.CrackerBuilds.Load())
	w.Meta("holistic_merged_updates_total", "Pending updates merged on the query path.", "counter")
	w.IntSample("holistic_merged_updates_total", store, s.execMet.MergedUpdates.Load())
	w.Meta("holistic_key_order_walks_total", "Full key-ordered index walks.", "counter")
	w.IntSample("holistic_key_order_walks_total", store, s.execMet.KeyOrderWalks.Load())

	if h, ok := exec.(*engine.HolisticExecutor); ok {
		s.promDaemon(w, store, h)
	}
	s.promEconomics(w, store)

	if s.flight != nil {
		w.Meta("holistic_flight_events_total", "Flight-recorder events recorded.", "counter")
		w.IntSample("holistic_flight_events_total", store, int64(s.flight.Head()))
		wd := s.wd.State()
		w.Meta("holistic_flight_anomalies_total", "Watchdog anomalies detected.", "counter")
		w.IntSample("holistic_flight_anomalies_total", store, wd.Anomalies)
		w.Meta("holistic_flight_dumps_total", "Flight dumps written.", "counter")
		w.IntSample("holistic_flight_dumps_total", store, wd.DumpsWritten)
		w.Meta("holistic_watchdog_baseline_p99_us",
			"Watchdog rolling baseline p99, microseconds.", "gauge")
		w.Sample("holistic_watchdog_baseline_p99_us", store, wd.BaselineP99US)
	}
}

// promDaemon streams the background daemon's convergence state.
func (s *Store) promDaemon(w *prom.Writer, store []prom.Label, h *engine.HolisticExecutor) {
	conv := h.Daemon.Convergence()
	if conv == nil {
		return
	}
	w.Meta("holistic_convergence_ratio",
		"Mean per-index refinement progress, 1.0 = whole index space optimal.", "gauge")
	w.Sample("holistic_convergence_ratio", store, conv.Ratio)
	w.Meta("holistic_refinements_total", "Successful background refinement actions.", "counter")
	w.IntSample("holistic_refinements_total", store, conv.Refinements)
	w.Meta("holistic_refine_attempts_total", "Refinement pivot attempts including re-rolls.", "counter")
	w.IntSample("holistic_refine_attempts_total", store, conv.Attempts)
	w.Meta("holistic_busy_rerolls_total", "Latch-contention pivot re-rolls.", "counter")
	w.IntSample("holistic_busy_rerolls_total", store, conv.BusyRerolls)
	w.Meta("holistic_worker_panics_total", "Contained daemon worker panics.", "counter")
	w.IntSample("holistic_worker_panics_total", store, conv.WorkerPanics)
	w.Meta("holistic_daemon_cycles_total", "Daemon tuning cycles run.", "counter")
	w.IntSample("holistic_daemon_cycles_total", store, conv.Totals.Cycles)
	w.Meta("holistic_index_pieces", "Current partition count per index.", "gauge")
	w.Meta("holistic_index_progress",
		"Per-index refinement progress, 0 = untouched, 1 = optimal.", "gauge")
	for _, ic := range conv.Indexes {
		labels := append(store, prom.L("index", ic.Name))
		w.IntSample("holistic_index_pieces", labels, int64(ic.Pieces))
		w.Sample("holistic_index_progress", labels, ic.Progress)
	}
}

// promEconomics streams the refinement cost-benefit ledger and the
// key-range heatmaps.
func (s *Store) promEconomics(w *prom.Writer, store []prom.Label) {
	es := s.ec.Snapshot()
	if es == nil {
		return
	}
	w.Meta("holistic_refine_invested_ns",
		"Daemon nanoseconds invested refining each index.", "counter")
	w.Meta("holistic_refine_saved_ns",
		"Estimated drive-latency nanoseconds saved by each index's refinement.", "counter")
	w.Meta("holistic_refine_roi",
		"Estimated saved / invested nanoseconds per index.", "gauge")
	for _, ie := range es.Indexes {
		labels := append(store, prom.L("index", ie.Name))
		w.IntSample("holistic_refine_invested_ns", labels, ie.InvestedNS)
		w.IntSample("holistic_refine_saved_ns", labels, ie.SavedNS)
		w.Sample("holistic_refine_roi", labels, ie.ROI)
	}
	writePromHeatmaps(w, "holistic_access_heatmap_total",
		"Predicate accesses per equi-width key-range bucket.", store, es.Access)
	writePromHeatmaps(w, "holistic_refine_heatmap_total",
		"Refinement pivots per equi-width key-range bucket.", store, es.Refine)
}

// writePromHeatmaps emits the non-zero buckets of each heatmap; empty
// buckets are implicit zeros, keeping a 256-bucket map's exposition
// proportional to where load actually landed.
func writePromHeatmaps(w *prom.Writer, name, help string, store []prom.Label, maps []econ.HeatmapState) {
	if len(maps) == 0 {
		return
	}
	w.Meta(name, help, "counter")
	for _, hm := range maps {
		for b, n := range hm.Counts {
			if n == 0 {
				continue
			}
			w.IntSample(name, append(store,
				prom.L("attr", hm.Attr), prom.L("bucket", strconv.Itoa(b))), n)
		}
	}
}

// writePromHist renders one cumulative nanosecond histogram in the
// Prometheus bucket convention: only buckets where the cumulative count
// advances are emitted (the log-linear layout has 960; implicit
// repeats add nothing), closed by the mandatory +Inf bucket and the
// _sum/_count pair.
func writePromHist(w *prom.Writer, name, help string, labels []prom.Label, h *obs.HistSnapshot) {
	w.Meta(name, help, "histogram")
	var prev uint64
	h.ForEachBucket(func(upperNs int64, cum uint64) {
		if cum != prev && upperNs != math.MaxInt64 {
			w.Bucket(name, labels, strconv.FormatInt(upperNs, 10), cum)
			prev = cum
		}
	})
	w.Bucket(name, labels, "+Inf", h.Count)
	w.HistogramTail(name, labels, float64(h.Sum), h.Count)
}

// sortedKeys orders a map's keys for a stable exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
