// Command holisticlint runs the repository's custom static-analysis
// suite: the noalloc, latch and pool checks over the holistic module
// (see internal/lint and DESIGN.md §8).
//
// Usage:
//
//	holisticlint ./...                       # whole module
//	holisticlint ./internal/query ./internal/join
//	holisticlint -check latch,pool ./...     # subset of checks
//	holisticlint -list                       # enumerate checks
//
// Exit status is 0 when every check passes, 1 when diagnostics were
// reported, 2 on usage or load errors. Diagnostics print one per line
// as file:line:col: [check] message, so editors and CI logs link them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"holistic/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against explicit arguments and output
// streams, so tests can drive the CLI surface in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("holisticlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list   = fs.Bool("list", false, "list available checks and exit")
		checks = fs.String("check", "", "comma-separated checks to run (default: all)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: holisticlint [-list] [-check noalloc,latch,pool] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-8s %s\n", c.Name, c.Desc)
		}
		return 0
	}

	var names []string
	if *checks != "" {
		for _, n := range strings.Split(*checks, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		known := make(map[string]bool)
		for _, c := range lint.Checks() {
			known[c.Name] = true
		}
		for _, n := range names {
			if !known[n] {
				fmt.Fprintf(stderr, "holisticlint: unknown check %q (see -list)\n", n)
				return 2
			}
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "holisticlint:", err)
		return 2
	}
	diags := mod.Run(names...)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "holisticlint: %d problem(s) in %d package(s)\n", len(diags), len(mod.Requested))
		return 1
	}
	return 0
}
