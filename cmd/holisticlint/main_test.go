package main

import (
	"bytes"
	"strings"
	"testing"

	"holistic/internal/lint"
)

// Fixture packages relative to this package's directory, which is the
// working directory while the tests run.
const (
	dirtyFixture = "../../internal/lint/testdata/pool"
	cleanFixture = "../../internal/lint/testdata/clean"
)

// TestListEnumeratesEveryCheck drives `holisticlint -list` and asserts
// every registered check appears, one per line.
func TestListEnumeratesEveryCheck(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	listing := out.String()
	checks := lint.Checks()
	if len(checks) == 0 {
		t.Fatal("no checks registered")
	}
	for _, c := range checks {
		if !strings.Contains(listing, c.Name) {
			t.Errorf("check %q missing from -list output", c.Name)
		}
	}
	for _, name := range []string{"noalloc", "latch", "pool"} {
		if !strings.Contains(listing, name) {
			t.Errorf("expected check %q in -list output", name)
		}
	}
	if lines := strings.Count(listing, "\n"); lines != len(checks) {
		t.Errorf("-list printed %d lines for %d checks", lines, len(checks))
	}
}

// TestCleanPackageExitsZero runs the CLI over the clean fixture: no
// diagnostics, exit 0, silence on stdout.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{cleanFixture}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on clean fixture: %s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}

// TestDirtyPackageExitsOne runs the CLI over the intentionally broken
// pool fixture: diagnostics on stdout in file:line:col form, a summary
// on stderr, exit 1.
func TestDirtyPackageExitsOne(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{dirtyFixture}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on dirty fixture, want 1: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[pool]") {
		t.Errorf("diagnostics do not carry the [pool] tag:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pool.go:") {
		t.Errorf("diagnostics do not point into the fixture file:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "problem(s)") {
		t.Errorf("missing summary line on stderr: %q", errOut.String())
	}
}

// TestCheckSelection covers -check: a disjoint check over the pool
// fixture passes; the pool check alone fails; an unknown name is a
// usage error.
func TestCheckSelection(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-check", "latch", dirtyFixture}, &out, &errOut); code != 0 {
		t.Errorf("-check latch on the pool fixture exited %d, want 0:\n%s", code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-check", "pool", dirtyFixture}, &out, &errOut); code != 1 {
		t.Errorf("-check pool on the pool fixture exited %d, want 1", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-check", "nosuch", dirtyFixture}, &out, &errOut); code != 2 {
		t.Errorf("-check nosuch exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown check") {
		t.Errorf("unknown-check error missing: %q", errOut.String())
	}
}

// TestUsageErrors covers the remaining exit-2 paths and the
// conventional exit 0 for -h.
func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"./no/such/dir"}, &out, &errOut); code != 2 {
		t.Errorf("bad pattern exited %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "usage: holisticlint") {
		t.Error("-h did not print usage")
	}
}
