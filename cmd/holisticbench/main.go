// Command holisticbench regenerates the tables and figures of "Holistic
// Indexing in Main-memory Column-stores" (SIGMOD 2015) at a configurable
// reduced scale.
//
// Usage:
//
//	holisticbench -experiment fig6a            # one figure
//	holisticbench -experiment all              # the whole evaluation
//	holisticbench -list                        # enumerate experiments
//	holisticbench -experiment fig12 -columns 4194304 -queries 1000
//	holisticbench -experiment agg              # aggregate pushdown (Q6-style)
//	holisticbench -experiment conj -cpuprofile cpu.out -memprofile mem.out
//
// Scale defaults target a laptop-class machine; EXPERIMENTS.md records a
// full run and compares each result against the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"holistic/internal/bench"
)

// main delegates to run so deferred profile writers flush on every
// exit path — os.Exit would skip them and truncate the profiles.
func main() {
	os.Exit(run())
}

func run() int {
	defaults := bench.DefaultParams()
	var (
		experiment  = flag.String("experiment", "all", "experiment name (see -list) or 'all'")
		list        = flag.Bool("list", false, "list available experiments and exit")
		columns     = flag.Int("columns", defaults.ColumnSize, "values per attribute")
		queries     = flag.Int("queries", defaults.Queries, "queries per workload")
		attrs       = flag.Int("attrs", defaults.Attrs, "number of attributes")
		domain      = flag.Int64("domain", defaults.Domain, "attribute value domain")
		threads     = flag.Int("threads", defaults.Threads, "hardware-context budget")
		interval    = flag.Duration("interval", defaults.Interval, "daemon tuning interval")
		refinements = flag.Int("x", defaults.Refinements, "refinements per holistic worker")
		l1          = flag.Int("l1", defaults.L1Values, "optimal piece size in values (|L1|)")
		tpchOrders  = flag.Int("tpch-orders", defaults.TPCHOrders, "ORDERS cardinality for fig14")
		seed        = flag.Int64("seed", defaults.Seed, "random seed")
		jsonPath    = flag.String("json", "", "also write the results as a JSON array to this file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "holisticbench: cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "holisticbench: cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "holisticbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "holisticbench: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-16s %s\n", e.Name, e.Title)
		}
		return 0
	}

	p := bench.Params{
		ColumnSize:  *columns,
		Queries:     *queries,
		Attrs:       *attrs,
		Domain:      *domain,
		Threads:     *threads,
		Interval:    *interval,
		Refinements: *refinements,
		L1Values:    *l1,
		TPCHOrders:  *tpchOrders,
		Seed:        *seed,
	}

	var names []string
	if *experiment == "all" {
		for _, e := range bench.Experiments() {
			names = append(names, e.Name)
		}
	} else {
		names = []string{*experiment}
	}

	start := time.Now()
	var results []*bench.Result
	for _, name := range names {
		res, err := bench.Run(name, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "holisticbench:", err)
			return 1
		}
		res.Fprint(os.Stdout)
		results = append(results, res)
	}
	if len(names) > 1 {
		fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "holisticbench: write json:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return 0
}
