// Command holisticbench regenerates the tables and figures of "Holistic
// Indexing in Main-memory Column-stores" (SIGMOD 2015) at a configurable
// reduced scale.
//
// Usage:
//
//	holisticbench -experiment fig6a            # one figure
//	holisticbench -experiment all              # the whole evaluation
//	holisticbench -list                        # enumerate experiments
//	holisticbench -experiment fig12 -columns 4194304 -queries 1000
//	holisticbench -experiment agg              # aggregate pushdown (Q6-style)
//	holisticbench -experiment join             # hash vs index-clustered merge join
//	holisticbench -experiment conj -cpuprofile cpu.out -memprofile mem.out
//	holisticbench -experiment conj -baseline ci/baselines/BENCH_conj.json
//
// Scale defaults target a laptop-class machine; EXPERIMENTS.md records a
// full run and compares each result against the paper. -baseline turns a
// run into a regression gate: per-label mean latencies are compared
// against a committed BENCH_*.json (produced by an earlier -json run at
// the same parameters) and the process exits 1 when any shared label's
// mean exceeds the baseline by more than -baseline-tolerance.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"holistic/internal/bench"
	"holistic/internal/obs"
)

// main delegates to run so deferred profile writers flush on every
// exit path — os.Exit would skip them and truncate the profiles.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against explicit arguments and output
// streams, so tests can drive the CLI surface in-process.
func run(args []string, stdout, stderr io.Writer) int {
	defaults := bench.DefaultParams()
	fs := flag.NewFlagSet("holisticbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment  = fs.String("experiment", "all", "experiment name (see -list) or 'all'")
		list        = fs.Bool("list", false, "list available experiments and exit")
		columns     = fs.Int("columns", defaults.ColumnSize, "values per attribute")
		queries     = fs.Int("queries", defaults.Queries, "queries per workload")
		attrs       = fs.Int("attrs", defaults.Attrs, "number of attributes")
		domain      = fs.Int64("domain", defaults.Domain, "attribute value domain")
		threads     = fs.Int("threads", defaults.Threads, "hardware-context budget")
		interval    = fs.Duration("interval", defaults.Interval, "daemon tuning interval")
		refinements = fs.Int("x", defaults.Refinements, "refinements per holistic worker")
		l1          = fs.Int("l1", defaults.L1Values, "optimal piece size in values (|L1|)")
		tpchOrders  = fs.Int("tpch-orders", defaults.TPCHOrders, "ORDERS cardinality for fig14")
		seed        = fs.Int64("seed", defaults.Seed, "random seed")
		dataDir     = fs.String("data-dir", "", "directory for durability experiments (recover); temp dir when empty")
		jsonPath    = fs.String("json", "", "also write the results as a JSON array to this file")
		baseline    = fs.String("baseline", "", "compare per-label mean latencies against this BENCH_*.json and exit 1 on regression")
		baselineTol = fs.Float64("baseline-tolerance", 0.5, "relative mean-latency slack before a -baseline comparison counts as a regression")
		baselineMin = fs.Float64("baseline-floor-us", 50, "ignore -baseline labels whose means sit below this many µs (noise floor)")
		metricsAddr = fs.String("metrics-addr", "", "serve /debug/holistic (+/timeline), /metrics, /debug/vars and pprof on this address for the run's duration")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench: cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "holisticbench: cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "holisticbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "holisticbench: memprofile:", err)
			}
		}()
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench: metrics-addr:", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/debug/holistic\n", ln.Addr())
		go func() { _ = http.Serve(ln, obs.Handler()) }()
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.Name, e.Title)
		}
		return 0
	}

	p := bench.Params{
		ColumnSize:  *columns,
		Queries:     *queries,
		Attrs:       *attrs,
		Domain:      *domain,
		Threads:     *threads,
		Interval:    *interval,
		Refinements: *refinements,
		L1Values:    *l1,
		TPCHOrders:  *tpchOrders,
		Seed:        *seed,
		DataDir:     *dataDir,
	}

	var names []string
	if *experiment == "all" {
		for _, e := range bench.Experiments() {
			names = append(names, e.Name)
		}
	} else {
		names = []string{*experiment}
	}

	start := time.Now()
	var results []*bench.Result
	for _, name := range names {
		res, err := bench.Run(name, p)
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench:", err)
			return 1
		}
		res.Fprint(stdout)
		results = append(results, res)
	}
	if len(names) > 1 {
		fmt.Fprintf(stdout, "total: %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench: write json:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	if *baseline != "" {
		regressions, err := compareBaseline(stdout, *baseline, results, *baselineTol, *baselineMin)
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench: baseline:", err)
			return 1
		}
		if regressions > 0 {
			fmt.Fprintf(stderr, "holisticbench: %d latency regression(s) against %s\n", regressions, *baseline)
			return 1
		}
	}
	return 0
}

// compareBaseline checks every latency label the current run and the
// committed baseline share: a label regresses when its mean exceeds
// the baseline mean by more than the relative tolerance AND both sit
// above the noise floor (sub-floor cells flap with scheduler jitter on
// shared CI runners, so they gate nothing). Labels present on only one
// side are reported but never fail the run — experiments may gain or
// lose cells across commits. Returns the regression count.
func compareBaseline(stdout io.Writer, path string, results []*bench.Result, tol, floorUS float64) (int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base []bench.Result
	if err := json.Unmarshal(buf, &base); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	baseByName := make(map[string]bench.Result, len(base))
	for _, b := range base {
		baseByName[b.Name] = b
	}
	regressions := 0
	for _, res := range results {
		b, ok := baseByName[res.Name]
		if !ok {
			fmt.Fprintf(stdout, "baseline: %s not in %s, skipping\n", res.Name, path)
			continue
		}
		labels := make([]string, 0, len(res.Percentiles))
		for l := range res.Percentiles {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, label := range labels {
			cur := res.Percentiles[label]
			ref, ok := b.Percentiles[label]
			if !ok {
				fmt.Fprintf(stdout, "baseline: %s/%s has no baseline cell, skipping\n", res.Name, label)
				continue
			}
			if cur.MeanUS < floorUS || ref.MeanUS < floorUS {
				fmt.Fprintf(stdout, "baseline: %s/%s mean %.1fµs vs %.1fµs (below %.0fµs floor, not gated)\n",
					res.Name, label, cur.MeanUS, ref.MeanUS, floorUS)
				continue
			}
			ratio := cur.MeanUS / ref.MeanUS
			verdict := "ok"
			if ratio > 1+tol {
				verdict = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(stdout, "baseline: %s/%s mean %.1fµs vs %.1fµs (%+.0f%%, tolerance %.0f%%): %s\n",
				res.Name, label, cur.MeanUS, ref.MeanUS, (ratio-1)*100, tol*100, verdict)
		}
	}
	return regressions, nil
}
