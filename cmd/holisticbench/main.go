// Command holisticbench regenerates the tables and figures of "Holistic
// Indexing in Main-memory Column-stores" (SIGMOD 2015) at a configurable
// reduced scale.
//
// Usage:
//
//	holisticbench -experiment fig6a            # one figure
//	holisticbench -experiment all              # the whole evaluation
//	holisticbench -list                        # enumerate experiments
//	holisticbench -experiment fig12 -columns 4194304 -queries 1000
//	holisticbench -experiment agg              # aggregate pushdown (Q6-style)
//	holisticbench -experiment join             # hash vs index-clustered merge join
//	holisticbench -experiment conj -cpuprofile cpu.out -memprofile mem.out
//
// Scale defaults target a laptop-class machine; EXPERIMENTS.md records a
// full run and compares each result against the paper.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"holistic/internal/bench"
	"holistic/internal/obs"
)

// main delegates to run so deferred profile writers flush on every
// exit path — os.Exit would skip them and truncate the profiles.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against explicit arguments and output
// streams, so tests can drive the CLI surface in-process.
func run(args []string, stdout, stderr io.Writer) int {
	defaults := bench.DefaultParams()
	fs := flag.NewFlagSet("holisticbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment  = fs.String("experiment", "all", "experiment name (see -list) or 'all'")
		list        = fs.Bool("list", false, "list available experiments and exit")
		columns     = fs.Int("columns", defaults.ColumnSize, "values per attribute")
		queries     = fs.Int("queries", defaults.Queries, "queries per workload")
		attrs       = fs.Int("attrs", defaults.Attrs, "number of attributes")
		domain      = fs.Int64("domain", defaults.Domain, "attribute value domain")
		threads     = fs.Int("threads", defaults.Threads, "hardware-context budget")
		interval    = fs.Duration("interval", defaults.Interval, "daemon tuning interval")
		refinements = fs.Int("x", defaults.Refinements, "refinements per holistic worker")
		l1          = fs.Int("l1", defaults.L1Values, "optimal piece size in values (|L1|)")
		tpchOrders  = fs.Int("tpch-orders", defaults.TPCHOrders, "ORDERS cardinality for fig14")
		seed        = fs.Int64("seed", defaults.Seed, "random seed")
		dataDir     = fs.String("data-dir", "", "directory for durability experiments (recover); temp dir when empty")
		jsonPath    = fs.String("json", "", "also write the results as a JSON array to this file")
		metricsAddr = fs.String("metrics-addr", "", "serve /debug/holistic, /debug/vars and pprof on this address for the run's duration")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench: cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "holisticbench: cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "holisticbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "holisticbench: memprofile:", err)
			}
		}()
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench: metrics-addr:", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/debug/holistic\n", ln.Addr())
		go func() { _ = http.Serve(ln, obs.Handler()) }()
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.Name, e.Title)
		}
		return 0
	}

	p := bench.Params{
		ColumnSize:  *columns,
		Queries:     *queries,
		Attrs:       *attrs,
		Domain:      *domain,
		Threads:     *threads,
		Interval:    *interval,
		Refinements: *refinements,
		L1Values:    *l1,
		TPCHOrders:  *tpchOrders,
		Seed:        *seed,
		DataDir:     *dataDir,
	}

	var names []string
	if *experiment == "all" {
		for _, e := range bench.Experiments() {
			names = append(names, e.Name)
		}
	} else {
		names = []string{*experiment}
	}

	start := time.Now()
	var results []*bench.Result
	for _, name := range names {
		res, err := bench.Run(name, p)
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench:", err)
			return 1
		}
		res.Fprint(stdout)
		results = append(results, res)
	}
	if len(names) > 1 {
		fmt.Fprintf(stdout, "total: %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(stderr, "holisticbench: write json:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	return 0
}
