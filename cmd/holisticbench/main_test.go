package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"holistic/internal/bench"
)

// TestListEnumeratesEveryExperiment drives `holisticbench -list` and
// asserts every registered experiment — including the groupby one —
// appears in the listing.
func TestListEnumeratesEveryExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	listing := out.String()
	exps := bench.Experiments()
	if len(exps) == 0 {
		t.Fatal("no experiments registered")
	}
	for _, e := range exps {
		if !strings.Contains(listing, e.Name) {
			t.Errorf("experiment %q missing from -list output", e.Name)
		}
	}
	for _, name := range []string{"groupby", "conj", "selvec", "fig6a"} {
		if !strings.Contains(listing, name) {
			t.Errorf("expected experiment %q in -list output", name)
		}
	}
	if lines := strings.Count(listing, "\n"); lines != len(exps) {
		t.Errorf("-list printed %d lines for %d experiments", lines, len(exps))
	}
}

// TestEveryListedExperimentRunsAtTinyScale runs each experiment the
// listing advertises through the CLI at a tiny scale: whatever -list
// names must actually be runnable.
func TestEveryListedExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment CLI suite in -short mode")
	}
	for _, e := range bench.Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			args := []string{
				"-experiment", e.Name,
				"-columns", "8192", "-queries", "40", "-attrs", "3",
				"-domain", "1048576", "-interval", "1ms", "-x", "4",
				"-l1", "512", "-tpch-orders", "500",
			}
			if code := run(args, &out, &errOut); code != 0 {
				t.Fatalf("exit %d: %s", code, errOut.String())
			}
			if !strings.Contains(out.String(), e.Name) {
				t.Errorf("output does not mention %q:\n%s", e.Name, out.String())
			}
		})
	}
}

// TestJSONArtifact covers the -json flag the CI benchmark steps rely
// on: the file must hold the result array with headers and rows.
func TestJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out, errOut bytes.Buffer
	args := []string{
		"-experiment", "groupby", "-json", path,
		"-columns", "8192", "-queries", "40", "-attrs", "2",
		"-interval", "1ms", "-x", "4", "-l1", "512",
	}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []bench.Result
	if err := json.Unmarshal(buf, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "groupby" || len(results[0].Rows) == 0 {
		t.Fatalf("unexpected JSON artifact: %+v", results)
	}
}

// TestUnknownFlagAndExperiment covers the failure exits.
func TestUnknownFlagAndExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code := run([]string{"-experiment", "nope", "-columns", "1024", "-queries", "8"}, &out, &errOut); code != 1 {
		t.Errorf("unknown experiment exited %d, want 1", code)
	}
}

// TestHelpExitsZero preserves the conventional success exit for -h.
func TestHelpExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-experiment") {
		t.Error("-h did not print usage")
	}
}
