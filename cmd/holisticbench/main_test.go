package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"holistic/internal/bench"
)

// TestListEnumeratesEveryExperiment drives `holisticbench -list` and
// asserts every registered experiment — including the groupby one —
// appears in the listing.
func TestListEnumeratesEveryExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	listing := out.String()
	exps := bench.Experiments()
	if len(exps) == 0 {
		t.Fatal("no experiments registered")
	}
	for _, e := range exps {
		if !strings.Contains(listing, e.Name) {
			t.Errorf("experiment %q missing from -list output", e.Name)
		}
	}
	for _, name := range []string{"groupby", "conj", "selvec", "fig6a"} {
		if !strings.Contains(listing, name) {
			t.Errorf("expected experiment %q in -list output", name)
		}
	}
	if lines := strings.Count(listing, "\n"); lines != len(exps) {
		t.Errorf("-list printed %d lines for %d experiments", lines, len(exps))
	}
}

// TestEveryListedExperimentRunsAtTinyScale runs each experiment the
// listing advertises through the CLI at a tiny scale: whatever -list
// names must actually be runnable.
func TestEveryListedExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment CLI suite in -short mode")
	}
	for _, e := range bench.Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			args := []string{
				"-experiment", e.Name,
				"-columns", "8192", "-queries", "40", "-attrs", "3",
				"-domain", "1048576", "-interval", "1ms", "-x", "4",
				"-l1", "512", "-tpch-orders", "500",
			}
			if code := run(args, &out, &errOut); code != 0 {
				t.Fatalf("exit %d: %s", code, errOut.String())
			}
			if !strings.Contains(out.String(), e.Name) {
				t.Errorf("output does not mention %q:\n%s", e.Name, out.String())
			}
		})
	}
}

// TestJSONArtifact covers the -json flag the CI benchmark steps rely
// on: the file must hold the result array with headers and rows.
func TestJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out, errOut bytes.Buffer
	args := []string{
		"-experiment", "groupby", "-json", path,
		"-columns", "8192", "-queries", "40", "-attrs", "2",
		"-interval", "1ms", "-x", "4", "-l1", "512",
	}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []bench.Result
	if err := json.Unmarshal(buf, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "groupby" || len(results[0].Rows) == 0 {
		t.Fatalf("unexpected JSON artifact: %+v", results)
	}
}

// TestBaselineGate covers the -baseline regression gate: a run compared
// against its own artifact passes, and one compared against a doctored
// baseline with impossibly fast means exits 1.
func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_conj.json")
	args := []string{
		"-experiment", "conj",
		"-columns", "8192", "-queries", "40", "-attrs", "3",
		"-domain", "1048576", "-interval", "1ms", "-x", "4", "-l1", "512",
	}

	var out, errOut bytes.Buffer
	if code := run(append(args, "-json", path), &out, &errOut); code != 0 {
		t.Fatalf("baseline generation exited %d: %s", code, errOut.String())
	}

	// Self-comparison with generous slack must pass.
	out.Reset()
	errOut.Reset()
	if code := run(append(args, "-baseline", path, "-baseline-tolerance", "10"), &out, &errOut); code != 0 {
		t.Fatalf("self-comparison exited %d: %s\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "baseline:") {
		t.Fatalf("no baseline comparison lines:\n%s", out.String())
	}

	// Doctor the baseline so every mean is impossibly fast; with the
	// noise floor off, every gated label must regress.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []bench.Result
	if err := json.Unmarshal(buf, &results); err != nil {
		t.Fatal(err)
	}
	gated := 0
	for i := range results {
		for label, p := range results[i].Percentiles {
			p.MeanUS /= 1e6
			results[i].Percentiles[label] = p
			gated++
		}
	}
	if gated == 0 {
		t.Fatal("conj artifact carries no percentile labels to gate on")
	}
	if buf, err = json.Marshal(results); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run(append(args, "-baseline", path, "-baseline-floor-us", "0"), &out, &errOut); code != 1 {
		t.Fatalf("doctored baseline exited %d, want 1:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("no REGRESSION verdict against the doctored baseline:\n%s", out.String())
	}

	// A missing baseline file is a hard error, not a silent pass.
	if code := run(append(args, "-baseline", filepath.Join(dir, "nope.json")), &out, &errOut); code != 1 {
		t.Fatalf("missing baseline exited %d, want 1", code)
	}
}

// TestUnknownFlagAndExperiment covers the failure exits.
func TestUnknownFlagAndExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code := run([]string{"-experiment", "nope", "-columns", "1024", "-queries", "8"}, &out, &errOut); code != 1 {
		t.Errorf("unknown experiment exited %d, want 1", code)
	}
}

// TestHelpExitsZero preserves the conventional success exit for -h.
func TestHelpExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-experiment") {
		t.Error("-h did not print usage")
	}
}
