package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"holistic/internal/obs/flight"
)

// lockedBuffer lets the test read stdout while run is still writing.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRE = regexp.MustCompile(`http://([^/\s]+)/debug/holistic`)

// TestServeSmoke boots the server on an ephemeral port with a short
// workload, scrapes the telemetry endpoints mid-run, and checks the
// trace stream: the end-to-end path CI exercises.
func TestServeSmoke(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var stdout lockedBuffer
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-rows", "20000",
			"-duration", "1500ms",
			"-pause", "1ms",
			"-trace", tracePath,
		}, &stdout, &stderr)
	}()

	// Wait for the listen line.
	var addr string
	for i := 0; i < 100 && addr == ""; i++ {
		if m := addrRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("no listen address announced; stderr: %s", stderr.String())
	}
	time.Sleep(300 * time.Millisecond) // let some workload through

	body := get(t, "http://"+addr+"/debug/holistic")
	var snap []struct {
		Name    string          `json:"name"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad /debug/holistic payload: %v\n%s", err, body)
	}
	if len(snap) == 0 {
		t.Fatal("no metrics sources registered")
	}
	for _, series := range []string{`"latency"`, `"p99_us"`, `"convergence_ratio"`, `"cycle_totals"`, `"representations"`} {
		if !bytes.Contains(body, []byte(series)) {
			t.Errorf("endpoint missing required series %s", series)
		}
	}

	if vars := get(t, "http://"+addr+"/debug/vars"); !bytes.Contains(vars, []byte(`"holistic"`)) {
		t.Error("/debug/vars missing the holistic expvar")
	}
	if prof := get(t, "http://"+addr+"/debug/pprof/cmdline"); len(prof) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}

	if code := <-done; code != 0 {
		t.Fatalf("run exited %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "queries served") {
		t.Errorf("missing summary line: %s", stdout.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) < 10 {
		t.Fatalf("trace stream too short: %d lines", len(lines))
	}
	for i, ln := range lines {
		var tr struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(ln, &tr); err != nil {
			t.Fatalf("trace line %d invalid: %v", i+1, err)
		}
		if tr.Kind == "" {
			t.Fatalf("trace line %d missing kind", i+1)
		}
	}
}

// TestServeRestartRecovers runs two short server lives against the same
// -data-dir: the first persists the store, the second must reopen it —
// skipping the demo load — and report what recovery found.
func TestServeRestartRecovers(t *testing.T) {
	dataDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-rows", "5000",
		"-duration", "700ms",
		"-pause", "1ms",
		"-data-dir", dataDir,
		"-snapshot-interval", "100ms",
	}

	var out1, err1 bytes.Buffer
	if code := run(args, &out1, &err1); code != 0 {
		t.Fatalf("first run exited %d; stderr: %s", code, err1.String())
	}
	if !strings.Contains(out1.String(), "recovered generation") {
		t.Fatalf("first run missing recovery line: %s", out1.String())
	}

	var out2, err2 bytes.Buffer
	if code := run(args, &out2, &err2); code != 0 {
		t.Fatalf("second run exited %d; stderr: %s", code, err2.String())
	}
	reopen := regexp.MustCompile(`recovered generation (\d+)`).FindStringSubmatch(out2.String())
	if reopen == nil {
		t.Fatalf("second run missing recovery line: %s", out2.String())
	}
	if reopen[1] == "0" {
		t.Errorf("second run reopened at generation 0 — first run's snapshot was not found: %s", out2.String())
	}
	if !strings.Contains(out2.String(), "queries served") {
		t.Errorf("second run missing summary line: %s", out2.String())
	}
}

// TestServeAnomalyWritesFlightDump is the CI anomaly smoke: a server
// with a 1ns p99 objective and an injected workload degradation must
// write a decodable flight dump into its data directory, and its
// health endpoints must answer while the anomaly storm runs.
func TestServeAnomalyWritesFlightDump(t *testing.T) {
	dataDir := t.TempDir()
	var stdout lockedBuffer
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-rows", "20000",
			"-duration", "2s",
			"-pause", "1ms",
			"-data-dir", dataDir,
			"-slo-p99", "1ns",
			"-watchdog-interval", "25ms",
			"-anomaly-after", "300ms",
		}, &stdout, &stderr)
	}()

	var addr string
	for i := 0; i < 100 && addr == ""; i++ {
		if m := addrRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("no listen address announced; stderr: %s", stderr.String())
	}

	if body := get(t, "http://"+addr+"/healthz"); !bytes.Contains(body, []byte("ok")) {
		t.Errorf("/healthz = %q", body)
	}
	// Readiness flips once the warm-up query ran; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never turned ready (last %d)", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if body := get(t, "http://"+addr+"/debug/holistic/flight"); !bytes.Contains(body, []byte(`"watchdog"`)) {
		t.Errorf("/debug/holistic/flight missing watchdog state: %s", body)
	}

	if code := <-done; code != 0 {
		t.Fatalf("run exited %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "degrading workload") {
		t.Errorf("missing anomaly injection line: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "dumps written") {
		t.Errorf("missing flight summary line: %s", stdout.String())
	}

	names, err := filepath.Glob(filepath.Join(dataDir, "flight-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("no flight dump in %s; stdout: %s", dataDir, stdout.String())
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := flight.Decode(data)
		if err != nil {
			t.Fatalf("%s does not decode: %v", name, err)
		}
		if len(d.Events) == 0 {
			t.Errorf("%s decodes to zero events", name)
		}
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
