// Command holisticserve runs an instrumented holistic store under a
// continuous synthetic workload and serves its telemetry over HTTP:
//
//	/debug/holistic           JSON snapshot of every registered store's Metrics
//	/debug/holistic/flight    decoded flight-recorder ring + watchdog state
//	/debug/holistic/timeline  deltified per-window metric time series
//	/metrics                  Prometheus text exposition
//	/healthz, /readyz         liveness and readiness probes
//	/debug/vars               expvar (includes the "holistic" variable)
//	/debug/pprof/*            the standard profiles
//
// Usage:
//
//	holisticserve -addr :8090                   # serve until SIGINT
//	holisticserve -addr 127.0.0.1:0 -duration 5s -trace traces.jsonl
//	holisticserve -data-dir /var/lib/h -slo-p99 5ms -watchdog-interval 1s
//	holisticserve -duration 10s -slo-p99 2ms -anomaly-after 4s
//
// The workload mixes multi-predicate counts, sums, grouped aggregates
// and a self-join so every subsystem's telemetry moves: watch the
// daemon's convergence ratio climb and the strategy timeline flip from
// hash to index-clustered grouping as refinement proceeds. With
// -anomaly-after the workload deliberately degrades at that point in
// the run (full-domain multi-aggregate scans replace the indexed mix),
// driving p99 over the -slo-p99 objective so the watchdog's flight
// dump path can be exercised end to end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"holistic"
	"holistic/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the server against explicit arguments and output
// streams so tests can drive the full surface in-process. It returns
// after -duration (or on SIGINT/SIGTERM when the duration is 0).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("holisticserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8090", "HTTP listen address (host:0 picks a free port)")
		rows     = fs.Int("rows", 200_000, "rows per attribute of the demo relation")
		threads  = fs.Int("threads", 0, "hardware-context budget (0: all CPUs)")
		interval = fs.Duration("interval", time.Millisecond, "daemon tuning interval")
		duration = fs.Duration("duration", 0, "stop after this long (0: run until SIGINT)")
		pause    = fs.Duration("pause", 2*time.Millisecond, "idle time between workload queries")
		trace    = fs.String("trace", "", "stream per-query JSONL traces to this file (size-capped, rotates to .1)")
		traceMax = fs.Int64("trace-max-bytes", 0, "rotate the -trace file at this size (0: 64 MiB)")
		seed     = fs.Int64("seed", 1, "random seed")
		dataDir  = fs.String("data-dir", "", "persist the store here (WAL + snapshots); reopens on restart")
		snapshot = fs.Duration("snapshot-interval", 0, "background snapshot cadence when -data-dir is set (0: library default)")
		sloP99   = fs.Duration("slo-p99", 0, "absolute p99 latency objective; the watchdog flight-dumps when a window breaches it (0: relative rule only)")
		wdEvery  = fs.Duration("watchdog-interval", 0, "watchdog observation cadence (0: library default 1s, negative: disable)")
		anomaly  = fs.Duration("anomaly-after", 0, "degrade the workload this far into the run (full-domain scans) to force an SLO breach; 0 disables")
		tlEvery  = fs.Duration("timeline-interval", 0, "time-series sampling cadence behind /debug/holistic/timeline (0: library default 5s, negative: disable)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "holisticserve: listen:", err)
		return 1
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "holisticserve: listening on http://%s/debug/holistic\n", ln.Addr())
	go func() { _ = http.Serve(ln, obs.Handler()) }()

	// Readiness flips true only after recovery has replayed, the demo
	// relation is loaded, and a warm-up query has run — until then
	// /readyz answers 503 and a load balancer keeps traffic away.
	var ready atomic.Bool
	obs.RegisterReadiness("holisticserve", ready.Load)
	defer obs.UnregisterReadiness("holisticserve")

	cfg := holistic.Config{
		Mode:             holistic.ModeHolistic,
		Threads:          *threads,
		TuningInterval:   *interval,
		Seed:             *seed,
		SnapshotInterval: *snapshot,
		SLOP99:           *sloP99,
		WatchdogInterval: *wdEvery,
		TimelineInterval: *tlEvery,
	}
	var store *holistic.Store
	if *dataDir != "" {
		store, err = holistic.OpenStore(*dataDir, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "holisticserve: open:", err)
			return 1
		}
		if rec := store.Metrics().Recovery; rec != nil {
			fmt.Fprintf(stdout, "holisticserve: recovered generation %d (clean=%v, replayed %d WAL records)\n",
				rec.Generation, rec.CleanStart, rec.ReplayedRecords)
		}
		if prior := store.PriorFlightDumps(); len(prior) > 0 {
			fmt.Fprintf(stdout, "holisticserve: %d flight dump(s) from earlier runs, newest %s\n",
				len(prior), prior[len(prior)-1])
		}
	} else {
		store = holistic.NewStore(cfg)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(*seed))
	const domain = 1 << 14
	if len(store.Columns()) == 0 { // fresh store (or no data dir): load the demo relation
		for _, name := range []string{"a", "b", "c", "g"} {
			vals := make([]int64, *rows)
			lim := int64(domain)
			if name == "g" {
				lim = 64 // a group key with a dense-packable domain
			}
			for i := range vals {
				vals[i] = rng.Int63n(lim)
			}
			if err := store.AddIntColumn(name, vals); err != nil {
				fmt.Fprintln(stderr, "holisticserve:", err)
				return 1
			}
		}
	}

	if *trace != "" {
		// The store owns the file: the stream is buffered, size-capped
		// (rotating to *trace+".1") and flushed on Close.
		if err := store.SetTraceJSONLFile(*trace, *traceMax); err != nil {
			fmt.Fprintln(stderr, "holisticserve: trace:", err)
			return 1
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	// Warm up: one query through every path the probe cares about, then
	// declare the process ready for traffic.
	if _, err := store.Query().Where("a", 0, domain).Count(); err != nil {
		fmt.Fprintln(stderr, "holisticserve: warm-up:", err)
		return 1
	}
	ready.Store(true)

	began := time.Now()
	degraded := false
	queries := 0
	for ; ctx.Err() == nil; queries++ {
		if *anomaly > 0 && !degraded && time.Since(began) >= *anomaly {
			degraded = true
			fmt.Fprintf(stdout, "holisticserve: degrading workload after %v (anomaly injection)\n",
				time.Since(began).Round(time.Millisecond))
		}
		var err error
		if degraded {
			// The injected anomaly: unindexable full-domain scans with a
			// multi-aggregate group-by, run back to back with no pause, so
			// the merged latency window's p99 climbs past the objective.
			_, err = store.Query().Where("a", 0, domain).Where("b", 0, domain).
				GroupBy("g").Aggregate(holistic.Count(), holistic.Sum("a"), holistic.Sum("b"), holistic.Sum("c"))
			if err != nil {
				fmt.Fprintln(stderr, "holisticserve:", err)
				return 1
			}
			continue
		}
		lo := rng.Int63n(domain / 2)
		span := 1 + rng.Int63n(domain/2)
		q := store.Query().Where("a", lo, lo+span).Where("b", 0, domain*3/4)
		switch queries % 8 {
		case 5:
			// A write keeps the WAL moving so restarts have records to
			// replay; reads below still dominate the mix.
			err = store.Insert("c", rng.Int63n(domain))
		case 6:
			_, err = q.GroupBy("g").Aggregate(holistic.Count(), holistic.Sum("c"))
		case 7:
			_, err = q.Sum("c")
		default:
			_, err = q.Count()
		}
		if err != nil {
			fmt.Fprintln(stderr, "holisticserve:", err)
			return 1
		}
		select {
		case <-ctx.Done():
		case <-time.After(*pause):
		}
	}
	m := store.Metrics()
	conv := 0.0
	if m.Daemon != nil {
		conv = m.Daemon.Ratio
	}
	fmt.Fprintf(stdout, "holisticserve: %d queries served, convergence ratio %.3f\n", queries, conv)
	if ec := m.Economics; ec != nil && ec.InvestedNS > 0 {
		fmt.Fprintf(stdout, "holisticserve: economics: invested %v refining %d index(es), estimated %v saved (ROI %.2f)\n",
			time.Duration(ec.InvestedNS).Round(time.Microsecond), len(ec.Indexes),
			time.Duration(ec.SavedNS).Round(time.Microsecond), ec.ROI)
	}
	if m.Flight != nil {
		wd := m.Flight.Watchdog
		fmt.Fprintf(stdout, "holisticserve: flight: %d events recorded, %d anomalies (last %s), %d dumps written\n",
			m.Flight.EventsRecorded, wd.Anomalies, wd.LastTrigger, wd.DumpsWritten)
	}
	if m.Recovery != nil && m.Recovery.LastFlightDump != "" {
		fmt.Fprintf(stdout, "holisticserve: last flight dump: %s\n", m.Recovery.LastFlightDump)
	}
	return 0
}
