// Command holisticserve runs an instrumented holistic store under a
// continuous synthetic workload and serves its telemetry over HTTP:
//
//	/debug/holistic   JSON snapshot of every registered store's Metrics
//	/debug/vars       expvar (includes the "holistic" variable)
//	/debug/pprof/*    the standard profiles
//
// Usage:
//
//	holisticserve -addr :8090                   # serve until SIGINT
//	holisticserve -addr 127.0.0.1:0 -duration 5s -trace traces.jsonl
//
// The workload mixes multi-predicate counts, sums, grouped aggregates
// and a self-join so every subsystem's telemetry moves: watch the
// daemon's convergence ratio climb and the strategy timeline flip from
// hash to index-clustered grouping as refinement proceeds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"holistic"
	"holistic/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the server against explicit arguments and output
// streams so tests can drive the full surface in-process. It returns
// after -duration (or on SIGINT/SIGTERM when the duration is 0).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("holisticserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8090", "HTTP listen address (host:0 picks a free port)")
		rows     = fs.Int("rows", 200_000, "rows per attribute of the demo relation")
		threads  = fs.Int("threads", 0, "hardware-context budget (0: all CPUs)")
		interval = fs.Duration("interval", time.Millisecond, "daemon tuning interval")
		duration = fs.Duration("duration", 0, "stop after this long (0: run until SIGINT)")
		pause    = fs.Duration("pause", 2*time.Millisecond, "idle time between workload queries")
		trace    = fs.String("trace", "", "stream per-query JSONL traces to this file")
		seed     = fs.Int64("seed", 1, "random seed")
		dataDir  = fs.String("data-dir", "", "persist the store here (WAL + snapshots); reopens on restart")
		snapshot = fs.Duration("snapshot-interval", 0, "background snapshot cadence when -data-dir is set (0: library default)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "holisticserve: listen:", err)
		return 1
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "holisticserve: listening on http://%s/debug/holistic\n", ln.Addr())
	go func() { _ = http.Serve(ln, obs.Handler()) }()

	cfg := holistic.Config{
		Mode:             holistic.ModeHolistic,
		Threads:          *threads,
		TuningInterval:   *interval,
		Seed:             *seed,
		SnapshotInterval: *snapshot,
	}
	var store *holistic.Store
	if *dataDir != "" {
		store, err = holistic.OpenStore(*dataDir, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "holisticserve: open:", err)
			return 1
		}
		if rec := store.Metrics().Recovery; rec != nil {
			fmt.Fprintf(stdout, "holisticserve: recovered generation %d (clean=%v, replayed %d WAL records)\n",
				rec.Generation, rec.CleanStart, rec.ReplayedRecords)
		}
	} else {
		store = holistic.NewStore(cfg)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(*seed))
	const domain = 1 << 14
	if len(store.Columns()) == 0 { // fresh store (or no data dir): load the demo relation
		for _, name := range []string{"a", "b", "c", "g"} {
			vals := make([]int64, *rows)
			lim := int64(domain)
			if name == "g" {
				lim = 64 // a group key with a dense-packable domain
			}
			for i := range vals {
				vals[i] = rng.Int63n(lim)
			}
			if err := store.AddIntColumn(name, vals); err != nil {
				fmt.Fprintln(stderr, "holisticserve:", err)
				return 1
			}
		}
	}

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(stderr, "holisticserve: trace:", err)
			return 1
		}
		defer f.Close()
		if err := store.SetTraceJSONL(f); err != nil {
			fmt.Fprintln(stderr, "holisticserve: trace:", err)
			return 1
		}
		defer store.SetTraceJSONL(nil)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	queries := 0
	for ; ctx.Err() == nil; queries++ {
		lo := rng.Int63n(domain / 2)
		span := 1 + rng.Int63n(domain/2)
		q := store.Query().Where("a", lo, lo+span).Where("b", 0, domain*3/4)
		var err error
		switch queries % 8 {
		case 5:
			// A write keeps the WAL moving so restarts have records to
			// replay; reads below still dominate the mix.
			err = store.Insert("c", rng.Int63n(domain))
		case 6:
			_, err = q.GroupBy("g").Aggregate(holistic.Count(), holistic.Sum("c"))
		case 7:
			_, err = q.Sum("c")
		default:
			_, err = q.Count()
		}
		if err != nil {
			fmt.Fprintln(stderr, "holisticserve:", err)
			return 1
		}
		select {
		case <-ctx.Done():
		case <-time.After(*pause):
		}
	}
	m := store.Metrics()
	conv := 0.0
	if m.Daemon != nil {
		conv = m.Daemon.Ratio
	}
	fmt.Fprintf(stdout, "holisticserve: %d queries served, convergence ratio %.3f\n", queries, conv)
	return 0
}
