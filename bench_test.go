// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5), one Benchmark per experiment. Each iteration
// executes the full experiment at a reduced scale tuned so a single run
// takes well under a second; `go run ./cmd/holisticbench` executes the
// same experiments at the larger default scale and prints the tables.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Print a figure's rows while benchmarking:
//
//	go test -bench=BenchmarkFig6a -v
package holistic_test

import (
	"os"
	"sync"
	"testing"
	"time"

	"holistic/internal/bench"
)

// benchParams shrinks the evaluation scale so each experiment fits a
// benchmark iteration; holisticbench uses the full defaults.
func benchParams() bench.Params {
	p := bench.DefaultParams()
	p.ColumnSize = 1 << 17
	p.Queries = 200
	p.Attrs = 5
	p.Domain = 1 << 30
	p.Interval = time.Millisecond
	p.Refinements = 16
	p.L1Values = 2048
	p.TPCHOrders = 4000
	return p
}

var printOnce sync.Map

// runExperiment executes one registered experiment per iteration.
// ReportAllocs is on for every experiment so allocation regressions on
// the query paths show up in the -bench output without extra flags.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(name, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, printed := printOnce.LoadOrStore(name, true); !printed && testing.Verbose() {
			b.StopTimer()
			res.Fprint(os.Stdout)
			b.StartTimer()
		}
	}
}

// Table 1 — qualitative comparison of the four indexing approaches.
func BenchmarkTable1Qualitative(b *testing.B) { runExperiment(b, "table1") }

// Figure 6(a) — cumulative response time of no/offline/online/adaptive/
// holistic indexing over the Section 5.1 microbenchmark.
func BenchmarkFig6aCumulativeResponse(b *testing.B) { runExperiment(b, "fig6a") }

// Figure 6(b) — per-bucket breakdown, adaptive vs holistic.
func BenchmarkFig6bBreakdown(b *testing.B) { runExperiment(b, "fig6b") }

// Figure 6(c) — cumulative index partitions, adaptive vs holistic.
func BenchmarkFig6cIndexPartitions(b *testing.B) { runExperiment(b, "fig6c") }

// Figure 6(d) — worker activations and per-cycle worker time.
func BenchmarkFig6dIdleUtilization(b *testing.B) { runExperiment(b, "fig6d") }

// Figure 7 — distribution of threads between user queries and workers.
func BenchmarkFig7ThreadDistribution(b *testing.B) { runExperiment(b, "fig7") }

// Figure 8 — per-query response time of adaptive indexing.
func BenchmarkFig8PerQueryAdaptive(b *testing.B) { runExperiment(b, "fig8") }

// Figure 9 — idle time before the workload (Cpotential prefill).
func BenchmarkFig9IdlePrefill(b *testing.B) { runExperiment(b, "fig9") }

// Figure 10 — the five workload patterns' predicate series.
func BenchmarkFig10WorkloadPatterns(b *testing.B) { runExperiment(b, "fig10") }

// Figure 11 — cores sweep: mP-CCGI vs PVDC vs PVSDC vs HI.
func BenchmarkFig11CoresSweep(b *testing.B) { runExperiment(b, "fig11") }

// Figure 12 — robustness across workload patterns.
func BenchmarkFig12Robustness(b *testing.B) { runExperiment(b, "fig12") }

// Figure 13 — attribute-count sweep with strategies W1-W4.
func BenchmarkFig13AttributeSweep(b *testing.B) { runExperiment(b, "fig13") }

// Figure 14 — TPC-H Q1/Q6/Q12 under four execution modes.
func BenchmarkFig14TPCH(b *testing.B) { runExperiment(b, "fig14") }

// Figure 15 — refinements-per-worker (x) sweep.
func BenchmarkFig15RefinementSweep(b *testing.B) { runExperiment(b, "fig15") }

// Figure 16 — HFLV/LFHV update scenarios.
func BenchmarkFig16Updates(b *testing.B) { runExperiment(b, "fig16") }

// Figure 17 — concurrent-clients sweep.
func BenchmarkFig17Clients(b *testing.B) { runExperiment(b, "fig17") }

// Aggregate pushdown — TPC-H Q6-style sums/min-max/row materialization
// over range predicates, all executors.
func BenchmarkAggregateWorkload(b *testing.B) { runExperiment(b, "agg") }

// Conjunctive multi-predicate workload: selectivity-ordered planning and
// late tuple reconstruction through Store.Query (new, beyond the paper).
func BenchmarkConjunctiveWorkload(b *testing.B) { runExperiment(b, "conj") }

// Selection-vector representation sweep: bitmap vs position-list
// intermediates across driving selectivity, validating the crossover
// (new, beyond the paper). Per-query allocation evidence lives in
// internal/query's BenchmarkConjunctiveCount/BenchmarkConjunctiveSum.
func BenchmarkSelVecCrossover(b *testing.B) { runExperiment(b, "selvec") }

// BenchmarkJoinWorkload reproduces the join experiment: hash vs
// index-clustered merge join before and after the holistic daemons
// refine both join-key indexes.
func BenchmarkJoinWorkload(b *testing.B) { runExperiment(b, "join") }

// Ablations of DESIGN.md's called-out design decisions.
func BenchmarkAblationPivotChoice(b *testing.B) { runExperiment(b, "ablation-pivot") }
func BenchmarkAblationLatchPolicy(b *testing.B) { runExperiment(b, "ablation-latch") }
func BenchmarkAblationL1Threshold(b *testing.B) { runExperiment(b, "ablation-l1") }
