// Durability: OpenStore gives a Store a data directory backed by the
// internal/durable layer — a write-ahead log for Insert/Delete/Update,
// CRC32C-checksummed snapshot segments committed by manifest rename,
// and adaptive-state serialization so recovery restores not just the
// data but the cracker piece boundaries, sorted runs and convergence
// statistics the workload already paid for. See DESIGN.md §10.

package holistic

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/durable"
	"holistic/internal/engine"
	"holistic/internal/holistic"
	"holistic/internal/obs"
	"holistic/internal/obs/flight"
	"holistic/internal/sortidx"
	"holistic/internal/stats"
)

// WALSync selects the fsync policy of a durable store's write-ahead
// log (Config.WALSync).
type WALSync int

const (
	// WALSyncGroup (the default) fsyncs with group commit: concurrent
	// writers elect a leader whose single fsync covers every record
	// appended so far.
	WALSyncGroup WALSync = iota
	// WALSyncAlways fsyncs every record before acknowledging it — the
	// strict policy the crash-injection matrix asserts against.
	WALSyncAlways
	// WALSyncNone never fsyncs on the write path; acknowledged writes
	// may be lost on crash, durability is limited to snapshots.
	WALSyncNone
)

// walPolicy maps the public WALSync knob onto the durable layer's.
func (c Config) walPolicy() durable.SyncPolicy {
	switch c.WALSync {
	case WALSyncAlways:
		return durable.SyncAlways
	case WALSyncNone:
		return durable.SyncNone
	default:
		return durable.SyncGroup
	}
}

// snapInterval resolves the background snapshot cadence: 10s by
// default, disabled when negative.
func (c Config) snapInterval() time.Duration {
	if c.SnapshotInterval == 0 {
		return 10 * time.Second
	}
	if c.SnapshotInterval < 0 {
		return 0
	}
	return c.SnapshotInterval
}

// OpenStore opens (creating if needed) a durable store in dir: it
// recovers the newest valid snapshot generation, rebuilds the adaptive
// indexes from their persisted state (unless Config.DataOnlyRecovery),
// replays the WAL tail, and from then on logs every Insert, Delete and
// Update before applying it. Snapshots are written in the background —
// under ModeHolistic by piggybacking on the daemon's idle cycles — and
// Close leaves a clean-shutdown marker so the next open skips replay.
//
// A recovered store that already holds columns serves queries
// immediately; AddIntColumn is only allowed when Columns is empty
// (a fresh directory).
func OpenStore(dir string, cfg Config) (*Store, error) {
	fs, err := durable.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	return openStoreFS(fs, cfg)
}

// openStoreFS is OpenStore over an abstract filesystem — the seam the
// crash-injection tests drive with durable.FaultFS.
func openStoreFS(fs durable.FS, cfg Config) (*Store, error) {
	rec, err := durable.Recover(fs)
	if err != nil {
		return nil, fmt.Errorf("holistic: recover: %w", err)
	}
	s := NewStore(cfg)
	d := &durability{
		fs:       fs,
		cfg:      cfg,
		met:      &obs.DurableMetrics{},
		s:        s,
		gen:      rec.Gen,
		walPart:  rec.NextPart,
		haveSnap: rec.Manifest != nil,
		clean:    rec.Clean,
		torn:     rec.TornTail,
		interval: cfg.snapInterval(),
		stop:     make(chan struct{}),
	}
	s.dur = d
	d.met.ManifestFallbacks.Add(int64(rec.Fallbacks))
	d.met.DroppedIndexes.Add(int64(rec.DroppedIndexes))

	if rec.TornTail && rec.SeqAfterReplay == rec.Gen {
		// The tear held no acknowledged record; retire the segment so a
		// later recovery never stops its replay at this stale tail.
		if err := durable.PruneWAL(fs, rec.Gen); err != nil {
			s.discard()
			return nil, fmt.Errorf("holistic: prune torn wal: %w", err)
		}
	}
	wal, err := durable.CreateLog(fs, durable.WALName(rec.Gen, rec.NextPart), rec.SeqAfterReplay, cfg.walPolicy())
	if err != nil {
		s.discard()
		return nil, fmt.Errorf("holistic: create wal: %w", err)
	}
	d.wal = wal
	d.dirty = int64(len(rec.Records))
	d.lastSnap = time.Now()

	// Surface the previous process's flight dumps (its black box) and
	// start our own dump numbering after them.
	if prior, err := durable.ListFlightDumps(fs); err == nil {
		d.priorFlights = prior
		d.met.PriorFlightDumps.Add(int64(len(prior)))
		for _, name := range prior {
			if _, n, ok := durable.ParseFlightName(name); ok && n >= d.flightSeq {
				d.flightSeq = n + 1
			}
		}
	}
	s.flight.RecordRecovery(int64(rec.Gen), int64(len(rec.Records)), rec.TornTail,
		int64(len(rec.Indexes)), int64(rec.DroppedIndexes))
	if rec.TornTail && s.wd != nil {
		// Crash evidence: the WAL tail was torn, so the previous process
		// died mid-write. Record the anomaly and preserve what we know
		// in a dump immediately.
		v := s.wd.NoteTornTail()
		s.flight.RecordAnomaly(v.Trigger, 0, 0, 0, 0, 0)
		d.flightDump(flight.TriggerTornTail)
	}

	if rec.Manifest != nil && len(rec.Columns) > 0 {
		for _, cd := range rec.Columns {
			if err := s.table.AddColumn(column.New(cd.Name, cd.Base)); err != nil {
				s.discard()
				return nil, fmt.Errorf("holistic: recover column %q: %w", cd.Name, err)
			}
		}
		if _, err := s.executor(); err != nil {
			s.discard()
			return nil, err
		}
		d.installState(rec)
		for _, r := range rec.Records {
			d.met.ReplayedRecords.Inc()
			if err := d.apply(r); err != nil {
				// A replayed operation that fails here failed identically
				// before the crash (same state, same op): a deterministic
				// no-op, not a recovery error.
				d.met.ReplayErrors.Inc()
			}
		}
		if len(rec.Records) > 0 {
			// Bake the replay into a fresh generation: startup work is not
			// repaid on the next open, and any torn segment behind us drops
			// out of the replay set for good.
			if err := d.checkpoint(); err != nil {
				s.discard()
				return nil, fmt.Errorf("holistic: post-replay checkpoint: %w", err)
			}
		}
	}
	if cfg.Mode != ModeHolistic && d.interval > 0 {
		go d.tickerLoop()
	}
	return s, nil
}

// discard unregisters a store whose open failed partway.
func (s *Store) discard() {
	obs.UnregisterSource(s.obsName)
	obs.UnregisterFlight(s.obsName)
	obs.UnregisterTimeline(s.obsName)
	obs.UnregisterProm(s.obsName)
	s.stopWatchdog()
	s.stopTimeline()
}

// Columns lists the store's column names, in insertion order. A
// recovered store reports the persisted columns.
func (s *Store) Columns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.ColumnNames()
}

// Checkpoint forces a snapshot of the current data and adaptive state,
// rotating the WAL. Stores without a data directory return an error.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if s.dur == nil {
		return errors.New("holistic: store has no data directory")
	}
	if closed {
		return ErrClosed
	}
	return s.dur.checkpoint()
}

// durability is the per-store persistence engine behind OpenStore.
type durability struct {
	fs  durable.FS
	cfg Config
	met *obs.DurableMetrics
	s   *Store

	clean bool // last shutdown was clean (recovery skipped replay)
	torn  bool // recovery stopped replay at a torn WAL frame

	interval time.Duration // background snapshot cadence; 0 = disabled
	stop     chan struct{}
	stopOnce sync.Once

	// writeMu serializes logged writes with each other and with
	// checkpoints; the lock order is Store.mu -> writeMu -> executor
	// locks (pendMu, cracker latches).
	writeMu   sync.Mutex
	wal       *durable.Log
	exec      engine.Executor // cached by attachExec; nil until first build
	gen       uint64          // generation of the current manifest
	walPart   int             // part number of the live WAL segment
	haveSnap  bool            // a manifest for gen exists on disk
	dirty     int64           // records appended since the last checkpoint
	syncsBase int64           // fsyncs of already-rotated segments (telemetry)
	lastSnap  time.Time
	closed    bool

	// Flight-recorder dump state: flightSeq numbers this process's
	// dumps, priorFlights are the dumps recovery found on disk, and
	// lastFlight names the newest dump this process committed.
	flightSeq    int
	priorFlights []string
	lastFlight   string
}

// The on-disk flight dumps are bounded by Config.FlightDumpKeep: the
// writer self-prunes (generation Prune deliberately does not own
// flight-* files, so anomaly post-mortems survive snapshot turnover).

// generation reads the current snapshot generation.
func (d *durability) generation() uint64 {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	return d.gen
}

// priorFlightDumps returns the dump names recovery found at open.
func (d *durability) priorFlightDumps() []string {
	return append([]string(nil), d.priorFlights...)
}

// flightDump commits one flight-recorder dump under the write lock.
func (d *durability) flightDump(trig flight.Trigger) {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if !d.closed {
		d.flightDumpLocked(trig)
	}
}

// flightDumpLocked encodes the ring and commits it as the next
// flight-<gen>-<n>.bin via the tmp+rename protocol, then self-prunes
// old dumps. Best-effort: a failed dump is counted, never fatal — the
// flight recorder must not take down the write path it observes.
func (d *durability) flightDumpLocked(trig flight.Trigger) {
	if d.s.flight == nil {
		return
	}
	data := flight.Encode(d.s.flight, trig, d.gen)
	name := durable.FlightName(d.gen, d.flightSeq)
	if err := durable.WriteFlightDump(d.fs, name, data); err != nil {
		d.met.FlightDumpFailures.Inc()
		return
	}
	d.flightSeq++
	d.lastFlight = name
	d.met.FlightDumps.Inc()
	d.s.wd.NoteDump()
	_ = durable.PruneFlightDumps(d.fs, d.cfg.flightDumpKeep())
}

// loggedInsert, loggedDelete and loggedUpdate are the Store write
// paths' entry into the WAL. They carry the //holistic:alloc-ok
// boundary for the durable write path: mutations are cold relative to
// queries, and nothing on the query hot path may reach past these
// functions into WAL framing (the noalloc check enforces the split).
//
//holistic:alloc-ok durable write path is cold; record framing and error wrapping may allocate
func (d *durability) loggedInsert(ins engine.Inserter, attr string, v int64) error {
	return d.logged(durable.Record{Kind: durable.KindInsert, Attr: attr, A: v},
		func() error { return ins.Insert(attr, v) })
}

//holistic:alloc-ok durable write path is cold; record framing and error wrapping may allocate
func (d *durability) loggedDelete(del engine.Deleter, attr string, v int64) error {
	return d.logged(durable.Record{Kind: durable.KindDelete, Attr: attr, A: v},
		func() error { return del.Delete(attr, v) })
}

//holistic:alloc-ok durable write path is cold; record framing and error wrapping may allocate
func (d *durability) loggedUpdate(up engine.Updater, attr string, oldV, newV int64) error {
	return d.logged(durable.Record{Kind: durable.KindUpdate, Attr: attr, A: oldV, B: newV},
		func() error { return up.Update(attr, oldV, newV) })
}

// attachExec caches the executor on first build and, for a fresh
// directory, commits the initial snapshot so the columns — and the
// positional base every WAL record replays against — are on disk before
// the first logged write. Called under Store.mu.
func (d *durability) attachExec(exec engine.Executor) error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	d.exec = exec
	if h, ok := exec.(*engine.HolisticExecutor); ok {
		h.Daemon.SetIdleHook(d.maybeSnapshot)
	}
	if !d.haveSnap {
		if err := d.checkpointLocked(); err != nil {
			return fmt.Errorf("holistic: initial checkpoint: %w", err)
		}
	}
	return nil
}

// logged runs one write through the WAL: append the record, apply it in
// memory under the write lock, then make it durable (group commit under
// the default policy) before acknowledging.
//
//holistic:alloc-ok durable write path is cold; record framing and error wrapping may allocate
func (d *durability) logged(rec durable.Record, apply func() error) error {
	d.writeMu.Lock()
	if d.closed {
		d.writeMu.Unlock()
		return ErrClosed
	}
	if !d.haveSnap {
		// The initial checkpoint failed at executor build; the columns
		// this record replays against are not on disk yet. Retry before
		// logging anything.
		if err := d.checkpointLocked(); err != nil {
			d.writeMu.Unlock()
			return fmt.Errorf("holistic: initial checkpoint: %w", err)
		}
	}
	seq, err := d.wal.Append(rec)
	if err != nil {
		d.writeMu.Unlock()
		return fmt.Errorf("holistic: wal append: %w", err)
	}
	d.met.WALRecords.Inc()
	d.met.WALBytes.Add(int64(19 + len(rec.Attr)))
	d.dirty++
	applyErr := apply()
	wal := d.wal
	d.writeMu.Unlock()
	if err := wal.Commit(seq); err != nil {
		return fmt.Errorf("holistic: wal commit: %w", err)
	}
	return applyErr
}

// apply reapplies one WAL record through the executor's write path.
func (d *durability) apply(r durable.Record) error {
	switch r.Kind {
	case durable.KindInsert:
		if ins, ok := d.exec.(engine.Inserter); ok {
			return ins.Insert(r.Attr, r.A)
		}
	case durable.KindDelete:
		if del, ok := d.exec.(engine.Deleter); ok {
			return del.Delete(r.Attr, r.A)
		}
	case durable.KindUpdate:
		if up, ok := d.exec.(engine.Updater); ok {
			return up.Update(r.Attr, r.A, r.B)
		}
	}
	return fmt.Errorf("holistic: mode %v cannot replay record kind %d", d.cfg.Mode, r.Kind)
}

// checkpoint takes the write lock and commits a snapshot generation.
func (d *durability) checkpoint() error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.checkpointLocked()
}

// checkpointLocked commits the snapshot protocol under writeMu:
//
//  1. sync the live WAL segment — every record the snapshot bakes in
//     is durable before the manifest claims to cover it;
//  2. write the column segments and the adaptive-state file of the
//     NEXT generation — generations strictly increase, so no file of
//     the still-valid current generation is ever touched in place and
//     a crash mid-write always leaves the previous snapshot intact;
//  3. write manifest.tmp, sync it, rename it into place (the commit
//     point — a crash on either side leaves a valid directory);
//  4. rotate the WAL to the new generation so replay starts empty;
//  5. prune, keeping the new and previous generations (the previous
//     one is the fallback if the new manifest is later found torn).
//
// Writers are blocked for the duration; checkpoints are background
// work riding idle cycles, not a query-path operation. Every call
// writes a full snapshot — queries refine adaptive state without
// dirtying the WAL, so "no new records" does not mean "nothing worth
// persisting"; the dirty-records gate lives in maybeSnapshot.
func (d *durability) checkpointLocked() error {
	start := time.Now()
	if err := d.wal.Sync(); err != nil {
		d.met.SnapshotFailures.Inc()
		return err
	}
	gen := d.gen + 1
	records := d.dirty
	cols, states, daemon := d.export()
	m := &durable.Manifest{Generation: gen, Mode: d.cfg.Mode.String(), Daemon: daemon}
	if err := durable.WriteSnapshot(d.fs, m, cols, states); err != nil {
		d.met.SnapshotFailures.Inc()
		return err
	}
	wal, err := durable.CreateLog(d.fs, durable.WALName(gen, 0), d.wal.Seq(), d.cfg.walPolicy())
	if err != nil {
		d.met.SnapshotFailures.Inc()
		return err
	}
	old := d.wal
	prev := d.gen
	d.wal = wal
	d.walPart = 0
	d.gen = gen
	d.haveSnap = true
	d.dirty = 0
	d.lastSnap = time.Now()
	d.met.Snapshots.Inc()
	_ = old.Close()
	d.syncsBase += old.Syncs()
	d.s.flight.RecordCheckpoint(int64(gen), records, time.Since(start).Nanoseconds())
	d.s.flight.RecordWALRotate(int64(gen), 0)
	// Persist the black box alongside the generation: a kill -9 at any
	// later point leaves a decodable dump of the events up to here.
	d.flightDumpLocked(flight.TriggerCheckpoint)
	// Best-effort: recovery always starts from the newest valid
	// manifest, so leftover generations are waste, not corruption.
	_ = durable.Prune(d.fs, map[uint64]bool{gen: true, prev: true})
	return nil
}

// export captures the logical column data and the mode's adaptive state
// for a snapshot. Runs under writeMu, so no logged write is in flight;
// concurrent queries may keep cracking, which never changes logical
// content.
func (d *durability) export() ([]durable.ColumnData, []durable.IndexState, *durable.DaemonState) {
	switch e := d.exec.(type) {
	case *engine.HolisticExecutor:
		cols, states := e.ExportDurable()
		t := e.Daemon.CycleTotals()
		return cols, states, &durable.DaemonState{
			Cycles:        t.Cycles,
			Workers:       t.Workers,
			WorkerTimeNS:  int64(t.WorkerTime),
			WallNS:        int64(t.Wall),
			Refinements:   t.Refinements,
			MergedUpdates: t.MergedUpdates,
			TotalRefined:  e.Daemon.Refinements(),
			TotalAttempts: e.Daemon.Attempts(),
			BusyRerolls:   e.Daemon.BusyRerolls(),
		}
	case *engine.AdaptiveExecutor:
		cols, states := e.ExportDurable()
		return cols, states, nil
	case *engine.OfflineExecutor:
		return engine.ExportTableData(d.s.table), e.ExportSorted(), nil
	case *engine.OnlineExecutor:
		return engine.ExportTableData(d.s.table), e.ExportSorted(), nil
	default:
		// Scan and CCGI (and a store queried before any executor build)
		// persist base data only; their index state is recomputed.
		return engine.ExportTableData(d.s.table), nil, nil
	}
}

// installState reinstates the recovered adaptive state onto the eagerly
// built executor. Per-index degradation: a state blob that fails
// validation drops only that index — the attribute falls back to the
// unrefined path, which rebuilds from the recovered data exactly as a
// first query would.
func (d *durability) installState(rec *durable.Recovered) {
	states := rec.Indexes
	if d.cfg.DataOnlyRecovery {
		states = nil
	}
	crackers := make(map[string]durable.IndexState)
	var sorted []durable.IndexState
	for _, st := range states {
		switch st.Kind {
		case durable.IndexCracker:
			crackers[st.Attr] = st
		case durable.IndexSorted:
			sorted = append(sorted, st)
		}
	}
	switch e := d.exec.(type) {
	case *engine.HolisticExecutor:
		d.installCrackers(e.AdaptiveExecutor, rec.Columns, crackers)
		if ds := rec.Manifest.Daemon; ds != nil && !d.cfg.DataOnlyRecovery {
			e.Daemon.RestoreTotals(holistic.CycleTotals{
				Cycles:        ds.Cycles,
				Workers:       ds.Workers,
				WorkerTime:    time.Duration(ds.WorkerTimeNS),
				Wall:          time.Duration(ds.WallNS),
				Refinements:   ds.Refinements,
				MergedUpdates: ds.MergedUpdates,
			}, ds.TotalRefined, ds.TotalAttempts, ds.BusyRerolls)
		}
	case *engine.AdaptiveExecutor:
		d.installCrackers(e, rec.Columns, crackers)
	case *engine.OfflineExecutor:
		for _, st := range sorted {
			d.installSorted(st, e.SeedSorted)
		}
	case *engine.OnlineExecutor:
		for _, st := range sorted {
			d.installSorted(st, e.SeedSorted)
		}
	}
}

// installCrackers walks the recovered columns, rebuilding each cracker
// whose state survived and falling back to the unrefined path (overlay
// plus synthetic pending operations) otherwise.
func (d *durability) installCrackers(ad *engine.AdaptiveExecutor, cols []durable.ColumnData, states map[string]durable.IndexState) {
	for _, cd := range cols {
		if st, ok := states[cd.Name]; ok {
			c, err := cracking.Restore(cd.Name, cracking.ExportedState{
				Vals:   st.Vals,
				Rows:   st.Rows,
				Keys:   st.Keys,
				Starts: st.Starts,
			}, d.crackCfg(st.HasRows))
			if err == nil {
				entry := ad.InstallRestoredCracker(cd.Name, c)
				if entry != nil && st.StatsState > 0 {
					entry.RestoreCounts(st.Accesses, st.Hits, stats.State(st.StatsState-1))
				}
				ad.RestoreOverlay(cd)
				d.met.RestoredIndexes.Inc()
				continue
			}
			d.met.DroppedIndexes.Inc()
		}
		ad.RestoreAttrData(cd)
	}
}

// installSorted rebuilds one sorted run, dropping it (to on-demand
// re-sorting) if validation fails.
func (d *durability) installSorted(st durable.IndexState, seed func(*sortidx.SortedColumn)) {
	var rows []uint32
	if st.HasRows {
		rows = st.Rows
	}
	sc, err := sortidx.Restore(st.Attr, st.Vals, rows)
	if err != nil {
		d.met.DroppedIndexes.Inc()
		return
	}
	seed(sc)
	d.met.RestoredIndexes.Inc()
}

// crackCfg mirrors the cracking configuration Store.build would hand a
// first-query cracker, so a restored column behaves identically.
func (d *durability) crackCfg(hasRows bool) cracking.Config {
	threads := d.cfg.threads()
	if d.cfg.Mode == ModeHolistic {
		user := d.cfg.UserThreads
		if user < 1 {
			user = threads / 2
		}
		if user < 1 {
			user = 1
		}
		threads = user
	}
	return cracking.Config{
		Kernel:          cracking.KernelVectorized,
		ParallelWorkers: threads,
		WithRows:        hasRows,
		Stochastic:      d.cfg.Mode == ModeStochastic,
		Seed:            d.cfg.Seed,
	}
}

// maybeSnapshot is the background snapshot policy: checkpoint when
// there are unsnapshotted records and the cadence has elapsed. Under
// ModeHolistic it rides the daemon's idle cycles (SetIdleHook);
// otherwise a ticker goroutine drives it.
func (d *durability) maybeSnapshot() {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if d.closed || d.interval <= 0 || d.dirty == 0 || time.Since(d.lastSnap) < d.interval {
		return
	}
	_ = d.checkpointLocked() // failures are counted; the WAL still covers the records
}

func (d *durability) tickerLoop() {
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.maybeSnapshot()
		}
	}
}

// close flushes everything and leaves the clean-shutdown marker: a
// final checkpoint if records are unsnapshotted (so the next open
// replays nothing), then the CLEAN file naming the generation. I/O
// errors are swallowed — the WAL already made acknowledged writes
// durable, and an unclean-looking directory just means replay.
func (d *durability) close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if d.closed {
		return
	}
	// A final snapshot whenever an executor ran: queries refine the
	// adaptive state without dirtying the WAL, and that refinement is
	// exactly what a restart should not have to repay.
	if d.dirty > 0 || !d.haveSnap || d.exec != nil {
		_ = d.checkpointLocked()
	}
	_ = d.wal.Close()
	if d.haveSnap && d.dirty == 0 {
		_ = durable.WriteCleanMarker(d.fs, d.gen)
	}
	d.closed = true
}

// snapshotMetrics assembles the recovery/WAL telemetry for Metrics.
func (d *durability) snapshotMetrics() *obs.DurableSnapshot {
	sn := d.met.Snapshot()
	sn.CleanStart = d.clean
	sn.TornWALTail = d.torn
	d.writeMu.Lock()
	sn.WALSyncs = d.syncsBase + d.wal.Syncs()
	sn.Generation = d.gen
	sn.LastFlightDump = d.lastFlight
	d.writeMu.Unlock()
	return sn
}
