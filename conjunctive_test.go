package holistic

import (
	"math/rand"
	"sort"
	"testing"
)

// conjOracle mirrors the store's logical row-level semantics for the
// differential test: per attribute, a value array that grows with
// inserts (row ids continue the base position sequence per attribute),
// a dead mask for deletions and in-place value updates. A row qualifies
// for a conjunction iff it has a live value in range for every
// predicate attribute; aggregation/projection attributes additionally
// require a live value (SQL NULL semantics).
type conjOracle struct {
	vals [][]int64
	dead [][]bool
}

func newConjOracle(bases [][]int64) *conjOracle {
	o := &conjOracle{vals: make([][]int64, len(bases)), dead: make([][]bool, len(bases))}
	for a, b := range bases {
		o.vals[a] = append([]int64(nil), b...)
		o.dead[a] = make([]bool, len(b))
	}
	return o
}

func (o *conjOracle) insert(a int, v int64) {
	o.vals[a] = append(o.vals[a], v)
	o.dead[a] = append(o.dead[a], false)
}

// lowestLiveRow returns the lowest live row id holding v in attribute
// a — the row Store.Delete/Update resolve and the row the lazy merge
// removes (MergeDeleteRow), so the oracle can mirror deletions of
// duplicated values exactly.
func (o *conjOracle) lowestLiveRow(a int, v int64) (int, bool) {
	for i, x := range o.vals[a] {
		if !o.dead[a][i] && x == v {
			return i, true
		}
	}
	return -1, false
}

func (o *conjOracle) at(a, row int) (int64, bool) {
	if row >= len(o.vals[a]) || o.dead[a][row] {
		return 0, false
	}
	return o.vals[a][row], true
}

type conjPred struct {
	attr   int
	lo, hi int64
}

// evaluate returns the qualifying row ids (ascending) for the
// conjunction, requiring live values in extra attributes too.
func (o *conjOracle) evaluate(preds []conjPred, extra []int) []uint32 {
	maxRows := 0
	for _, v := range o.vals {
		if len(v) > maxRows {
			maxRows = len(v)
		}
	}
	var out []uint32
rows:
	for r := 0; r < maxRows; r++ {
		for _, p := range preds {
			v, ok := o.at(p.attr, r)
			if !ok || v < p.lo || v >= p.hi {
				continue rows
			}
		}
		for _, a := range extra {
			if _, ok := o.at(a, r); !ok {
				continue rows
			}
		}
		out = append(out, uint32(r))
	}
	return out
}

// TestConjunctiveQueriesMatchOracleAllModes is the randomized
// differential test of Store.Query: 1-4 range conjuncts per query, all
// seven modes, with interleaved inserts, deletes and updates on the
// modes that support them, checked against a naive full-scan oracle.
func TestConjunctiveQueriesMatchOracleAllModes(t *testing.T) {
	const (
		attrs  = 4
		rows   = 4_000
		domain = 1 << 20 // large relative to rows, so most values are unique
	)
	modes := []Mode{ModeScan, ModeOffline, ModeOnline, ModeAdaptive, ModeStochastic, ModeCCGI, ModeHolistic}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			s, bases := buildStore(t, mode, attrs, rows, domain)
			defer s.Close()
			s.Prepare()
			o := newConjOracle(bases)
			canUpdate := mode == ModeAdaptive || mode == ModeStochastic || mode == ModeHolistic

			rng := rand.New(rand.NewSource(77 + int64(mode)))
			for q := 0; q < 60; q++ {
				if canUpdate {
					switch q % 4 {
					case 1: // insert — every third one duplicates a live value,
						// so later deletes exercise the duplicate path
						a := rng.Intn(attrs)
						var v int64
						if q%3 == 0 {
							if lv, ok := o.at(a, rng.Intn(len(o.vals[a]))); ok {
								v = lv
							} else {
								v = rng.Int63n(domain)
							}
						} else {
							v = rng.Int63n(domain)
						}
						if err := s.Insert(attr(a), v); err != nil {
							t.Fatal(err)
						}
						o.insert(a, v)
					case 2: // delete a live value (duplicates included: the
						// merge targets the lowest live row, as the oracle does)
						a := rng.Intn(attrs)
						for tries := 0; tries < 10; tries++ {
							v, ok := o.at(a, rng.Intn(len(o.vals[a])))
							if !ok {
								continue
							}
							r2, _ := o.lowestLiveRow(a, v)
							if err := s.Delete(attr(a), v); err != nil {
								t.Fatal(err)
							}
							o.dead[a][r2] = true
							break
						}
					case 3: // update a live value
						a := rng.Intn(attrs)
						for tries := 0; tries < 10; tries++ {
							v, ok := o.at(a, rng.Intn(len(o.vals[a])))
							if !ok {
								continue
							}
							r2, _ := o.lowestLiveRow(a, v)
							nv := rng.Int63n(domain)
							if err := s.Update(attr(a), v, nv); err != nil {
								t.Fatal(err)
							}
							o.vals[a][r2] = nv
							break
						}
					}
				}

				k := 1 + rng.Intn(attrs)
				perm := rng.Perm(attrs)
				preds := make([]conjPred, k)
				qb := s.Query()
				for i := 0; i < k; i++ {
					// Mix of wide and narrow ranges so conjunctions both
					// prune and retain.
					var lo, width int64
					if rng.Intn(2) == 0 {
						lo = rng.Int63n(domain)
						width = rng.Int63n(domain/2) + 1
					} else {
						lo = rng.Int63n(domain / 2)
						width = domain/2 + rng.Int63n(domain/2)
					}
					hi := lo + width
					if hi > domain {
						hi = domain
					}
					preds[i] = conjPred{attr: perm[i], lo: lo, hi: hi}
					qb = qb.Where(attr(perm[i]), lo, hi)
				}

				sumAttr := rng.Intn(attrs)
				want := o.evaluate(preds, nil)
				wantSumRows := o.evaluate(preds, []int{sumAttr})

				n, err := qb.Count()
				if err != nil {
					t.Fatal(err)
				}
				if n != len(want) {
					t.Fatalf("query %d (%v): count = %d, want %d", q, preds, n, len(want))
				}

				got, err := qb.Rows()
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("query %d: %d rows, want %d", q, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("query %d: rows[%d] = %d, want %d", q, i, got[i], want[i])
					}
				}

				sum, err := qb.Sum(attr(sumAttr))
				if err != nil {
					t.Fatal(err)
				}
				var wantSum int64
				for _, r := range wantSumRows {
					v, _ := o.at(sumAttr, int(r))
					wantSum += v
				}
				if sum != wantSum {
					t.Fatalf("query %d: sum(%s) = %d, want %d", q, attr(sumAttr), sum, wantSum)
				}

				vals, err := qb.Values(attr(sumAttr))
				if err != nil {
					t.Fatal(err)
				}
				if len(vals) != 1 || len(vals[0]) != len(wantSumRows) {
					t.Fatalf("query %d: Values returned %d tuples, want %d", q, len(vals[0]), len(wantSumRows))
				}
				for i, r := range wantSumRows {
					v, _ := o.at(sumAttr, int(r))
					if vals[0][i] != v {
						t.Fatalf("query %d: Values[%d] = %d, want %d", q, i, vals[0][i], v)
					}
				}
			}
		})
	}
}

// TestQueryBuilderMisc covers builder-level behaviour: no predicates,
// duplicate-attribute intersection, closed stores.
func TestQueryBuilderMisc(t *testing.T) {
	s, bases := buildStore(t, ModeAdaptive, 2, 2_000, 1<<16)
	if _, err := s.Query().Count(); err == nil {
		t.Error("query without predicates did not error")
	}
	n, err := s.Query().
		Where("a", 100, 60_000).
		Where("a", 2_000, 65_000).
		Where("b", 0, 1<<16).
		Count()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i, v := range bases[0] {
		if v >= 2_000 && v < 60_000 && bases[1][i] >= 0 {
			want++
		}
	}
	if n != want {
		t.Fatalf("intersected count = %d, want %d", n, want)
	}
	s.Close()
	if _, err := s.Query().Where("a", 0, 10).Count(); err == nil {
		t.Error("query on a closed store did not error")
	}
}
