// The in-process time-series store (DESIGN.md §12): every
// Config.TimelineInterval the store samples its cumulative counters and
// latency histograms into a bounded obs.TimeSeries ring, which
// deltifies them into per-window rates and p99s — the data behind
// /debug/holistic/timeline. The sampler reuses the watchdog's
// snapshot-diff machinery (cumulative HistSnapshot in, per-window
// distribution out), so "what did the last five minutes look like" is
// answerable from inside the process with no external scraper.

package holistic

import (
	"time"

	"holistic/internal/engine"
	"holistic/internal/obs"
)

// timelineCounters names the cumulative counters each window deltifies,
// in the order timelineTick samples them.
var timelineCounters = []string{
	"queries",
	"selects",
	"cracker_builds",
	"merged_updates",
	"refinements",
	"refine_invested_ns",
	"flight_events",
}

// timelineHists names the cumulative latency histograms each window
// diffs, in the order timelineTick samples them.
var timelineHists = []string{"query_latency", "select_latency"}

// stopTimeline terminates the timeline sampler goroutine (idempotent).
func (s *Store) stopTimeline() {
	if s.tsStop != nil {
		s.tsOnce.Do(func() { close(s.tsStop) })
	}
}

// timelineLoop drives periodic time-series observations until Close.
func (s *Store) timelineLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.tsStop:
			return
		case <-t.C:
			s.timelineTick(time.Now())
		}
	}
}

// timelineTick takes one cumulative observation — counters and latency
// snapshots — and hands it to the ring, which turns consecutive
// observations into per-window deltas. Cold path (once per interval).
func (s *Store) timelineTick(now time.Time) {
	s.mu.Lock()
	exec := s.exec
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	var refinements int64
	if h, ok := exec.(*engine.HolisticExecutor); ok {
		refinements = h.Daemon.Refinements()
	}
	var flightEvents int64
	if s.flight != nil {
		flightEvents = int64(s.flight.Head())
	}
	counters := []int64{
		int64(s.met.Seq()),
		s.execMet.Selects.Load(),
		s.execMet.CrackerBuilds.Load(),
		s.execMet.MergedUpdates.Load(),
		refinements,
		s.ec.TotalInvestedNS(),
		flightEvents,
	}
	var qlat, slat obs.HistSnapshot
	s.met.MergedLatency(&qlat)
	s.execMet.SelectLatency.Snapshot(&slat)
	s.ts.Observe(now, counters, []*obs.HistSnapshot{&qlat, &slat})
}
