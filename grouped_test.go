package holistic

import (
	"math/rand"
	"sort"
	"testing"

	"holistic/internal/workload"
)

// evaluateGrouped mirrors Store grouped-aggregation semantics on the
// conjOracle: a row contributes iff it has a live value in range for
// every predicate attribute and a live value in every key and aggregate
// attribute; groups order ascending by key tuple. aggAttr feeds the
// sum/min/max columns; the result rows are (keys..., count, sum, min,
// max).
func (o *conjOracle) evaluateGrouped(keys []int, aggAttr int, preds []conjPred) [][]int64 {
	maxRows := 0
	for _, v := range o.vals {
		if len(v) > maxRows {
			maxRows = len(v)
		}
	}
	type acc struct {
		key        []int64
		count, sum int64
		mn, mx     int64
	}
	groups := map[string]*acc{}
	var order []*acc
rows:
	for r := 0; r < maxRows; r++ {
		for _, p := range preds {
			v, ok := o.at(p.attr, r)
			if !ok || v < p.lo || v >= p.hi {
				continue rows
			}
		}
		key := make([]int64, len(keys))
		raw := ""
		for i, a := range keys {
			v, ok := o.at(a, r)
			if !ok {
				continue rows
			}
			key[i] = v
			raw += "\x00"
			for s := 0; s < 64; s += 8 {
				raw += string(rune(0xff & (v >> s)))
			}
		}
		av, ok := o.at(aggAttr, r)
		if !ok {
			continue rows
		}
		g, seen := groups[raw]
		if !seen {
			g = &acc{key: key}
			groups[raw] = g
			order = append(order, g)
		}
		if g.count == 0 || av < g.mn {
			g.mn = av
		}
		if g.count == 0 || av > g.mx {
			g.mx = av
		}
		g.count++
		g.sum += av
	}
	sort.Slice(order, func(i, j int) bool {
		for k := range order[i].key {
			if order[i].key[k] != order[j].key[k] {
				return order[i].key[k] < order[j].key[k]
			}
		}
		return false
	})
	out := make([][]int64, len(order))
	for i, g := range order {
		row := append(append([]int64(nil), g.key...), g.count, g.sum, g.mn, g.mx)
		out[i] = row
	}
	return out
}

// TestGroupedQueriesMatchOracleAllModes is the randomized grouped
// differential test: workload.GenerateGrouped drives GroupBy/Aggregate
// queries — over skewed group-key columns — through all seven store
// modes with interleaved inserts, deletes and updates, checked against
// the scan oracle.
func TestGroupedQueriesMatchOracleAllModes(t *testing.T) {
	const (
		attrs  = 4
		rows   = 3_000
		domain = 1 << 14
	)
	modes := []Mode{ModeScan, ModeOffline, ModeOnline, ModeAdaptive, ModeStochastic, ModeCCGI, ModeHolistic}
	qs := workload.GenerateGrouped(workload.GroupedConfig{
		Config:   workload.Config{Pattern: workload.Random, Queries: 50, Domain: domain, Attrs: attrs, Seed: 101},
		MaxKeys:  2,
		PredDist: []float64{1, 2, 1},
	})
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			s := NewStore(storeConfig(mode))
			bases := [][]int64{
				workload.GroupKeyColumn(rows, 48, 1.1, 301), // skewed grouping attribute
				workload.GroupKeyColumn(rows, 7, 0, 302),    // tiny uniform grouping attribute
				workload.UniformColumn(rows, domain, 303),
				workload.UniformColumn(rows, domain, 304),
			}
			for a, b := range bases {
				if err := s.AddIntColumn(attr(a), b); err != nil {
					t.Fatal(err)
				}
			}
			defer s.Close()
			s.Prepare()
			o := newConjOracle(bases)
			canUpdate := mode == ModeAdaptive || mode == ModeStochastic || mode == ModeHolistic

			rng := rand.New(rand.NewSource(107 + int64(mode)))
			for qi, q := range qs {
				if canUpdate {
					switch qi % 4 {
					case 1:
						a := rng.Intn(attrs)
						v := rng.Int63n(domain)
						if err := s.Insert(attr(a), v); err != nil {
							t.Fatal(err)
						}
						o.insert(a, v)
					case 2:
						a := rng.Intn(attrs)
						for tries := 0; tries < 10; tries++ {
							v, ok := o.at(a, rng.Intn(len(o.vals[a])))
							if !ok {
								continue
							}
							r2, _ := o.lowestLiveRow(a, v)
							if err := s.Delete(attr(a), v); err != nil {
								t.Fatal(err)
							}
							o.dead[a][r2] = true
							break
						}
					case 3:
						a := rng.Intn(attrs)
						for tries := 0; tries < 10; tries++ {
							v, ok := o.at(a, rng.Intn(len(o.vals[a])))
							if !ok {
								continue
							}
							r2, _ := o.lowestLiveRow(a, v)
							nv := rng.Int63n(domain)
							if err := s.Update(attr(a), v, nv); err != nil {
								t.Fatal(err)
							}
							o.vals[a][r2] = nv
							break
						}
					}
				}

				keys := make([]string, len(q.Keys))
				for i, k := range q.Keys {
					keys[i] = attr(k)
				}
				aggAttr := rng.Intn(attrs)
				qb := s.Query()
				preds := make([]conjPred, len(q.Preds))
				for i, p := range q.Preds {
					qb = qb.Where(attr(p.Attr), p.Lo, p.Hi)
					preds[i] = conjPred{attr: p.Attr, lo: p.Lo, hi: p.Hi}
				}
				want := o.evaluateGrouped(q.Keys, aggAttr, preds)

				res, err := qb.GroupBy(keys...).Aggregate(
					Count(), Sum(attr(aggAttr)), Min(attr(aggAttr)), Max(attr(aggAttr)))
				if err != nil {
					t.Fatal(err)
				}
				if res.Len() != len(want) {
					t.Fatalf("query %d (keys %v, %d preds): %d groups, want %d",
						qi, keys, len(preds), res.Len(), len(want))
				}
				for g, w := range want {
					for k := range keys {
						if res.Keys[k][g] != w[k] {
							t.Fatalf("query %d group %d: key %d = %d, want %d", qi, g, k, res.Keys[k][g], w[k])
						}
					}
					nk := len(keys)
					got := [4]int64{res.Aggs[0][g], res.Aggs[1][g], res.Aggs[2][g], res.Aggs[3][g]}
					wantAggs := [4]int64{w[nk], w[nk+1], w[nk+2], w[nk+3]}
					if got != wantAggs {
						t.Fatalf("query %d group %d: aggs = %v, want %v", qi, g, got, wantAggs)
					}
				}

				// The Min/Max terminal aggregates share the oracle rows:
				// fold the grouped result back together.
				if qi%5 == 0 && len(preds) > 0 {
					var wantMn, wantMx int64
					wantOk := false
					for _, w := range want {
						nk := len(keys)
						if !wantOk || w[nk+2] < wantMn {
							wantMn = w[nk+2]
						}
						if !wantOk || w[nk+3] > wantMx {
							wantMx = w[nk+3]
						}
						wantOk = true
					}
					// Rebuild the query: the keys impose no presence filter
					// on Min/Max, so compare against a key-free oracle only
					// when the key attrs match the agg attr presence-wise.
					// Simplest exact check: Min/Max over the same conjunction
					// must bracket every grouped min/max.
					mn, mnOk, err := qb.Min(attr(aggAttr))
					if err != nil {
						t.Fatal(err)
					}
					mx, mxOk, err := qb.Max(attr(aggAttr))
					if err != nil {
						t.Fatal(err)
					}
					if wantOk {
						if !mnOk || !mxOk {
							t.Fatalf("query %d: Min/Max reported empty with %d groups", qi, len(want))
						}
						if mn > wantMn || mx < wantMx {
							t.Fatalf("query %d: Min/Max = (%d, %d) does not bracket grouped extrema (%d, %d)",
								qi, mn, mx, wantMn, wantMx)
						}
					}
				}
			}
		})
	}
}

// TestGroupedQueryBuilderMisc covers builder-level grouped behaviour on
// the public API: whole-relation grouping, error paths, closed stores.
func TestGroupedQueryBuilderMisc(t *testing.T) {
	s, bases := buildStore(t, ModeAdaptive, 2, 2_000, 64)
	res, err := s.Query().GroupBy("a").Aggregate(Count(), Sum("b"))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int64{}
	sums := map[int64]int64{}
	for i, v := range bases[0] {
		counts[v]++
		sums[v] += bases[1][i]
	}
	if res.Len() != len(counts) {
		t.Fatalf("groups = %d, want %d", res.Len(), len(counts))
	}
	for g := 0; g < res.Len(); g++ {
		k := res.Keys[0][g]
		if g > 0 && k <= res.Keys[0][g-1] {
			t.Fatalf("keys not strictly ascending at group %d", g)
		}
		if res.Aggs[0][g] != counts[k] || res.Aggs[1][g] != sums[k] {
			t.Fatalf("group %d (key %d): (%d, %d), want (%d, %d)",
				g, k, res.Aggs[0][g], res.Aggs[1][g], counts[k], sums[k])
		}
	}
	if res.KeyAttrs[0] != "a" {
		t.Errorf("KeyAttrs = %v", res.KeyAttrs)
	}
	if _, err := s.Query().GroupBy().Aggregate(Count()); err == nil {
		t.Error("GroupBy with no attributes did not error")
	}
	if _, err := s.Query().GroupBy("a").Aggregate(); err == nil {
		t.Error("Aggregate with no aggregates did not error")
	}
	if _, err := s.Query().GroupBy("nope").Aggregate(Count()); err == nil {
		t.Error("unknown group-by attribute did not error")
	}
	if _, _, err := s.Query().Where("a", 0, 10).Min("nope"); err == nil {
		t.Error("unknown Min attribute did not error")
	}
	// Min/Max single-predicate fast path agrees with MinMaxRange.
	mn, ok, err := s.Query().Where("a", 5, 40).Min("a")
	if err != nil {
		t.Fatal(err)
	}
	wantMn, _, wantOk, err := s.MinMaxRange("a", 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if ok != wantOk || (ok && mn != wantMn) {
		t.Fatalf("Min fast path = (%d, %v), MinMaxRange = (%d, %v)", mn, ok, wantMn, wantOk)
	}
	s.Close()
	if _, err := s.Query().GroupBy("a").Aggregate(Count()); err == nil {
		t.Error("grouped query on a closed store did not error")
	}
	if _, _, err := s.Query().Where("a", 0, 10).Min("a"); err == nil {
		t.Error("Min on a closed store did not error")
	}
}
