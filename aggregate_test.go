package holistic

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"holistic/internal/column"
)

// oracleRows returns the positions of qualifying values in vals — the
// naive scan oracle for SelectRows, in ascending position order.
func oracleRows(vals []int64, lo, hi int64) []uint32 {
	var out []uint32
	for i, v := range vals {
		if v >= lo && v < hi {
			out = append(out, uint32(i))
		}
	}
	return out
}

// TestAggregatesMatchScanOracleAllModes is the randomized cross-mode
// differential test of the aggregate/materialization layer: every mode's
// CountRange, SumRange, MinMaxRange and SelectRows must agree with a
// naive scan over the base (and, on the modes that support Insert, over
// the base extended with the inserted values).
func TestAggregatesMatchScanOracleAllModes(t *testing.T) {
	const (
		domain = 1 << 14
		rows   = 8_000
	)
	modes := []Mode{ModeScan, ModeOffline, ModeOnline, ModeAdaptive, ModeStochastic, ModeCCGI, ModeHolistic}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			s, bases := buildStore(t, mode, 2, rows, domain)
			defer s.Close()
			s.Prepare()

			// The oracle columns track base values plus inserts.
			oracle := make([][]int64, len(bases))
			for a := range bases {
				oracle[a] = append([]int64(nil), bases[a]...)
			}
			canInsert := mode == ModeAdaptive || mode == ModeStochastic || mode == ModeHolistic

			rng := rand.New(rand.NewSource(31 + int64(mode)))
			for q := 0; q < 80; q++ {
				if canInsert && q%5 == 4 {
					a := rng.Intn(len(oracle))
					v := rng.Int63n(domain)
					if err := s.Insert(attr(a), v); err != nil {
						t.Fatal(err)
					}
					oracle[a] = append(oracle[a], v)
				}

				a := rng.Intn(len(oracle))
				lo := rng.Int63n(domain)
				hi := lo + rng.Int63n(domain-lo) + 1

				n, err := s.CountRange(attr(a), lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				if want := column.CountRange(oracle[a], lo, hi); n != want {
					t.Fatalf("query %d [%d,%d): count = %d, want %d", q, lo, hi, n, want)
				}

				sum, err := s.SumRange(attr(a), lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				if want := column.SumRange(oracle[a], lo, hi); sum != want {
					t.Fatalf("query %d [%d,%d): sum = %d, want %d", q, lo, hi, sum, want)
				}

				mn, mx, ok, err := s.MinMaxRange(attr(a), lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				wantMn, wantMx, wantN := column.MinMaxRange(oracle[a], lo, hi)
				if ok != (wantN > 0) || (ok && (mn != wantMn || mx != wantMx)) {
					t.Fatalf("query %d [%d,%d): minmax = (%d,%d,%v), want (%d,%d,%v)",
						q, lo, hi, mn, mx, ok, wantMn, wantMx, wantN > 0)
				}

				got, err := s.SelectRows(attr(a), lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				want := oracleRows(oracle[a], lo, hi)
				if len(got) != len(want) {
					t.Fatalf("query %d [%d,%d): %d rows, want %d", q, lo, hi, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("query %d [%d,%d): rows[%d] = %d, want %d", q, lo, hi, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestStatsBeforeFirstQueryIsPure guards the telemetry bugfix: Stats on a
// never-queried store must return a zero snapshot without building the
// executor (which under ModeHolistic would start the daemon as a side
// effect of a read-only call).
func TestStatsBeforeFirstQueryIsPure(t *testing.T) {
	s, _ := buildStore(t, ModeHolistic, 1, 1_000, 1000)
	defer s.Close()
	st := s.Stats()
	if st.Pieces != 0 || st.Refinements != 0 || st.Activations != 0 {
		t.Fatalf("Stats before first query = %+v, want zero snapshot", st)
	}
	if st.Mode != ModeHolistic {
		t.Fatalf("Stats.Mode = %v, want %v", st.Mode, ModeHolistic)
	}
	s.mu.Lock()
	built := s.exec != nil
	s.mu.Unlock()
	if built {
		t.Fatal("Stats built the executor (and started the daemon) as a side effect")
	}
}

// TestCloseIsIdempotentAndFinal guards the lifecycle bugfix: Close twice
// is safe, and every operation after Close reports ErrClosed instead of
// running against a stopped daemon.
func TestCloseIsIdempotentAndFinal(t *testing.T) {
	s, _ := buildStore(t, ModeHolistic, 1, 1_000, 1000)
	if _, err := s.CountRange("a", 0, 10); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // must not panic or double-stop

	if _, err := s.CountRange("a", 0, 10); !errors.Is(err, ErrClosed) {
		t.Errorf("CountRange after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.SumRange("a", 0, 10); !errors.Is(err, ErrClosed) {
		t.Errorf("SumRange after Close: err = %v, want ErrClosed", err)
	}
	if _, _, _, err := s.MinMaxRange("a", 0, 10); !errors.Is(err, ErrClosed) {
		t.Errorf("MinMaxRange after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.SelectRows("a", 0, 10); !errors.Is(err, ErrClosed) {
		t.Errorf("SelectRows after Close: err = %v, want ErrClosed", err)
	}
	if err := s.Insert("a", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Insert after Close: err = %v, want ErrClosed", err)
	}
	if err := s.AddIntColumn("late", []int64{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("AddIntColumn after Close: err = %v, want ErrClosed", err)
	}
	if err := s.AddPotentialIndex("a"); !errors.Is(err, ErrClosed) {
		t.Errorf("AddPotentialIndex after Close: err = %v, want ErrClosed", err)
	}
	// Close on a never-queried store is equally safe.
	fresh := NewStore(Config{})
	fresh.Close()
	fresh.Close()
}

// TestStoreErrorPaths covers the documented misuse errors on live stores.
func TestStoreErrorPaths(t *testing.T) {
	// Insert on a mode without update support.
	scan, _ := buildStore(t, ModeScan, 1, 100, 1000)
	defer scan.Close()
	if err := scan.Insert("a", 1); err == nil {
		t.Error("ModeScan accepted an Insert")
	}
	// AddIntColumn after the first query.
	ad, _ := buildStore(t, ModeAdaptive, 1, 100, 1000)
	defer ad.Close()
	if _, err := ad.SumRange("a", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := ad.AddIntColumn("late", make([]int64, 100)); err == nil {
		t.Error("column added after the first (aggregate) query")
	}
	// AddPotentialIndex outside ModeHolistic.
	if err := ad.AddPotentialIndex("a"); err == nil {
		t.Error("non-holistic mode accepted a potential index")
	}
}

// TestNoRowIDsTradeoff: with rowid tracking disabled, aggregates still
// answer but SelectRows reports the configuration error on the cracking
// modes (the sorted and scan modes derive rows regardless).
func TestNoRowIDsTradeoff(t *testing.T) {
	cfg := storeConfig(ModeAdaptive)
	cfg.NoRowIDs = true
	s := NewStore(cfg)
	defer s.Close()
	if err := s.AddIntColumn("a", []int64{3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if sum, err := s.SumRange("a", 0, 3); err != nil || sum != 3 {
		t.Fatalf("SumRange = %d, %v; want 3, nil", sum, err)
	}
	if _, err := s.SelectRows("a", 0, 3); err == nil {
		t.Fatal("SelectRows with NoRowIDs did not error")
	}
}
