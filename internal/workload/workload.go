// Package workload generates the query and update workloads of the
// paper's evaluation (Sections 5.1-5.8, Figure 10): sequences of range
// selections whose predicate values follow random, skewed, periodic,
// sequential or SkyServer-like patterns, spread over one or more
// attributes with uniform or zipf-like access frequencies, optionally
// interleaved with insert batches (the HFLV/LFHV scenarios of Section
// 5.7).
//
// The SkyServer pattern is a synthetic stand-in for the logged queries of
// the Sloan Digital Sky Survey on the Photoobjall."right ascension"
// attribute: Figure 10(e) shows queries sweeping a compact region of the
// sky with slow drift, then jumping to a different region. The generator
// reproduces that structure (drifting runs with occasional region jumps)
// at configurable scale; see DESIGN.md §3.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Pattern enumerates the predicate-value patterns of Figure 10.
type Pattern int

const (
	// Random: uniform predicate values over the domain (Fig. 10(a)).
	Random Pattern = iota
	// Skewed: predicates confined to the top fifth of the domain
	// (Fig. 10(b); the paper's example concentrates on 800M..2^30).
	Skewed
	// Periodic: a sawtooth sweep across the domain, several periods over
	// the sequence (Fig. 10(c)).
	Periodic
	// Sequential: a single monotone sweep across the domain (Fig. 10(d)).
	Sequential
	// SkyServer: drifting runs within a compact region with occasional
	// jumps to a new region (Fig. 10(e)).
	SkyServer
)

// String names the pattern as the paper's figures do.
func (p Pattern) String() string {
	switch p {
	case Random:
		return "Random"
	case Skewed:
		return "Skewed"
	case Periodic:
		return "Periodic"
	case Sequential:
		return "Sequential"
	case SkyServer:
		return "SkyServer"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Patterns lists all five patterns in the order of Figure 10/12.
func Patterns() []Pattern {
	return []Pattern{Random, Skewed, Periodic, Sequential, SkyServer}
}

// Query is one range selection: select A from R where Lo <= A < Hi on
// attribute index Attr. The paper's microbenchmark form "A < v" is
// encoded as Lo = 0 (domains are non-negative).
type Query struct {
	Attr   int
	Lo, Hi int64
}

// Config parameterizes a generated workload.
type Config struct {
	// Pattern drives the predicate-value series.
	Pattern Pattern
	// Queries is the length of the sequence (the paper uses 10^3 for the
	// synthetic workloads, 10^4 for SkyServer).
	Queries int
	// Domain is the attribute value domain [0, Domain) (paper: 2^30).
	Domain int64
	// Attrs is the number of attributes queried (paper: 5-10).
	Attrs int
	// AttrZipf > 0 skews attribute popularity with a zipf-like rank
	// distribution (s = AttrZipf); 0 queries attributes uniformly.
	AttrZipf float64
	// OneSided emits "A < v" queries (Lo = 0), the form of Section 5.1;
	// otherwise queries are [v, v+width) with random width up to
	// MaxWidthFrac of the domain.
	OneSided bool
	// MaxWidthFrac bounds two-sided range width as a fraction of the
	// domain; defaults to 0.1.
	MaxWidthFrac float64
	// Seed makes the workload reproducible.
	Seed int64
}

// PredicateSeries returns the n predicate values of a pattern over
// [0, domain): the series plotted in Figure 10.
func PredicateSeries(p Pattern, n int, domain int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		if v >= domain {
			return domain - 1
		}
		return v
	}
	switch p {
	case Random:
		for i := range out {
			out[i] = rng.Int63n(domain)
		}
	case Skewed:
		lo := int64(float64(domain) * 0.8)
		for i := range out {
			out[i] = lo + rng.Int63n(domain-lo)
		}
	case Periodic:
		const periods = 5
		for i := range out {
			phase := math.Mod(float64(i)*periods/float64(n), 1)
			jitter := (rng.Float64() - 0.5) * 0.02
			out[i] = clamp(int64((phase + jitter) * float64(domain)))
		}
	case Sequential:
		for i := range out {
			phase := float64(i) / float64(n)
			jitter := (rng.Float64() - 0.5) * 0.01
			out[i] = clamp(int64((phase + jitter) * float64(domain)))
		}
	case SkyServer:
		// Drifting runs: stay in a compact region, drift slowly upward,
		// then jump to a fresh region (the telescope moves to another
		// part of the sky).
		regionWidth := float64(domain) * 0.05
		base := rng.Float64() * (float64(domain) - regionWidth)
		offset := 0.0
		runLen := 0
		for i := range out {
			if runLen <= 0 {
				base = rng.Float64() * (float64(domain) - regionWidth)
				offset = 0
				runLen = n/20 + rng.Intn(n/10+1)
			}
			drift := regionWidth / float64(n/10+1)
			offset += drift * (0.5 + rng.Float64())
			if offset > regionWidth {
				offset = regionWidth
			}
			jitter := (rng.Float64() - 0.5) * regionWidth * 0.1
			out[i] = clamp(int64(base + offset + jitter))
			runLen--
		}
	default:
		for i := range out {
			out[i] = rng.Int63n(domain)
		}
	}
	return out
}

// Generate builds the full query sequence for a configuration.
func Generate(cfg Config) []Query {
	if cfg.Domain <= 0 {
		cfg.Domain = 1 << 30
	}
	if cfg.Attrs <= 0 {
		cfg.Attrs = 1
	}
	if cfg.MaxWidthFrac <= 0 {
		cfg.MaxWidthFrac = 0.1
	}
	values := PredicateSeries(cfg.Pattern, cfg.Queries, cfg.Domain, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	attrPick := attrPicker(cfg.Attrs, cfg.AttrZipf, rng)

	out := make([]Query, cfg.Queries)
	maxWidth := int64(cfg.MaxWidthFrac * float64(cfg.Domain))
	if maxWidth < 1 {
		maxWidth = 1
	}
	for i, v := range values {
		q := Query{Attr: attrPick()}
		if cfg.OneSided {
			q.Lo, q.Hi = 0, v+1
		} else {
			width := rng.Int63n(maxWidth) + 1
			q.Lo = v
			q.Hi = v + width
			if q.Hi > cfg.Domain {
				q.Hi = cfg.Domain
			}
			if q.Lo >= q.Hi {
				q.Lo = q.Hi - 1
			}
		}
		out[i] = q
	}
	return out
}

// attrPicker returns a sampler over attribute indices. With zipf s > 0,
// attribute k is queried proportionally to 1/(k+1)^s — the "skewed
// attributes" workloads of Figure 13(c,d).
func attrPicker(attrs int, s float64, rng *rand.Rand) func() int {
	if attrs == 1 {
		return func() int { return 0 }
	}
	if s <= 0 {
		return func() int { return rng.Intn(attrs) }
	}
	weights := make([]float64, attrs)
	total := 0.0
	for k := range weights {
		weights[k] = 1 / math.Pow(float64(k+1), s)
		total += weights[k]
	}
	cdf := make([]float64, attrs)
	acc := 0.0
	for k, w := range weights {
		acc += w / total
		cdf[k] = acc
	}
	return func() int {
		u := rng.Float64()
		for k, c := range cdf {
			if u <= c {
				return k
			}
		}
		return attrs - 1
	}
}

// ConjQuery is one conjunctive range selection: the AND of Preds, each
// a range predicate on a distinct attribute — the multi-attribute
// workload form the holistic daemon is built for (a query touches
// several columns; refinement should spread across all of them).
type ConjQuery struct {
	Preds []Query
}

// ConjConfig parameterizes a conjunctive workload. The embedded Config
// drives the predicate-value pattern, domain, attribute popularity and
// range widths exactly as for single-predicate workloads.
type ConjConfig struct {
	Config
	// PredDist is the attribute-count distribution: PredDist[i] is the
	// relative weight of queries with i+1 conjuncts. Defaults to
	// {0, 1, 1} — an even mix of two- and three-predicate queries.
	// Entries beyond Attrs are ignored (a query cannot have more
	// distinct conjunct attributes than there are attributes).
	PredDist []float64
}

// GenerateConjunctive builds a conjunctive query sequence: each query
// draws its conjunct count from PredDist, its (distinct) attributes
// from the configured popularity distribution, and its predicate ranges
// from the pattern series — one independent series per conjunct slot,
// so every conjunct follows the workload pattern.
func GenerateConjunctive(cfg ConjConfig) []ConjQuery {
	if cfg.Domain <= 0 {
		cfg.Domain = 1 << 30
	}
	if cfg.Attrs <= 0 {
		cfg.Attrs = 1
	}
	if cfg.MaxWidthFrac <= 0 {
		cfg.MaxWidthFrac = 0.1
	}
	dist := cfg.PredDist
	if len(dist) == 0 {
		dist = []float64{0, 1, 1}
	}
	if len(dist) > cfg.Attrs {
		dist = dist[:cfg.Attrs]
	}
	total := 0.0
	for _, w := range dist {
		if w > 0 {
			total += w
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	drawCount := func() int {
		if total <= 0 {
			return 1
		}
		u := rng.Float64() * total
		for i, w := range dist {
			if w <= 0 {
				continue
			}
			u -= w
			if u <= 0 {
				return i + 1
			}
		}
		return len(dist)
	}

	// One predicate-value series per conjunct slot keeps every conjunct
	// on the configured pattern.
	maxK := len(dist)
	series := make([][]int64, maxK)
	for k := range series {
		series[k] = PredicateSeries(cfg.Pattern, cfg.Queries, cfg.Domain, cfg.Seed+int64(100*k))
	}
	attrPick := attrPicker(cfg.Attrs, cfg.AttrZipf, rng)
	maxWidth := int64(cfg.MaxWidthFrac * float64(cfg.Domain))
	if maxWidth < 1 {
		maxWidth = 1
	}

	out := make([]ConjQuery, cfg.Queries)
	for i := range out {
		k := drawCount()
		used := make(map[int]bool, k)
		preds := make([]Query, 0, k)
		for len(preds) < k {
			a := attrPick()
			if used[a] {
				// Distinct attributes per query; with a skewed picker a
				// rejection loop could stall, so fall back to a linear
				// probe for the next unused attribute.
				for n := 0; used[a] && n < cfg.Attrs; n++ {
					a = (a + 1) % cfg.Attrs
				}
			}
			used[a] = true
			v := series[len(preds)][i]
			q := Query{Attr: a}
			if cfg.OneSided {
				q.Lo, q.Hi = 0, v+1
			} else {
				width := rng.Int63n(maxWidth) + 1
				q.Lo = v
				q.Hi = v + width
				if q.Hi > cfg.Domain {
					q.Hi = cfg.Domain
				}
				if q.Lo >= q.Hi {
					q.Lo = q.Hi - 1
				}
			}
			preds = append(preds, q)
		}
		out[i] = ConjQuery{Preds: preds}
	}
	return out
}

// GroupedConfig parameterizes a grouped-aggregation workload: the data
// side (a group-key column with a configurable group count and skew)
// and the query side (grouped queries whose predicates follow the
// embedded Config's pattern).
type GroupedConfig struct {
	Config
	// Groups is the number of distinct group-key values of the generated
	// key columns (default 64).
	Groups int
	// Skew is the zipf-like exponent of the group-size distribution:
	// group k receives rows proportionally to 1/(k+1)^Skew. 0 sizes the
	// groups uniformly.
	Skew float64
	// MaxKeys bounds the group-by attributes per query (default 1; keys
	// draw without replacement from the configured attributes).
	MaxKeys int
	// PredDist is the predicate-count distribution: PredDist[i] is the
	// relative weight of queries with i conjuncts (index 0 = no Where
	// clause, grouping the whole relation). Defaults to {1, 2, 1}.
	PredDist []float64
}

// GroupedQuery is one grouped aggregation: group by the (distinct) Keys
// attributes, filtered by the conjunction Preds (possibly empty).
type GroupedQuery struct {
	Keys  []int
	Preds []Query
}

// GroupKeyColumn generates n group-key values over {0, ..., groups-1}
// with a zipf-like group-size skew (s = skew; 0 = uniform): the data
// half of a grouped workload. Values are dense group ids — the shape
// dictionary-encoded grouping attributes take in a column-store.
func GroupKeyColumn(n, groups int, skew float64, seed int64) []int64 {
	if groups < 1 {
		groups = 1
	}
	rng := rand.New(rand.NewSource(seed))
	pick := zipfPicker(groups, skew, rng)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(pick())
	}
	return out
}

// zipfPicker samples {0, ..., n-1} with probability proportional to
// 1/(k+1)^s (uniform when s <= 0), by binary search over the CDF.
func zipfPicker(n int, s float64, rng *rand.Rand) func() int {
	if n == 1 {
		return func() int { return 0 }
	}
	if s <= 0 {
		return func() int { return rng.Intn(n) }
	}
	cdf := make([]float64, n)
	acc := 0.0
	for k := range cdf {
		acc += 1 / math.Pow(float64(k+1), s)
		cdf[k] = acc
	}
	total := acc
	return func() int {
		u := rng.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
}

// GenerateGrouped builds a grouped-query sequence: each query draws its
// key count (1..MaxKeys) and its predicate count from PredDist, keys
// and predicate attributes are distinct per query, and predicate ranges
// follow the configured pattern series — one independent series per
// conjunct slot, as in GenerateConjunctive.
func GenerateGrouped(cfg GroupedConfig) []GroupedQuery {
	if cfg.Domain <= 0 {
		cfg.Domain = 1 << 30
	}
	if cfg.Attrs <= 0 {
		cfg.Attrs = 1
	}
	if cfg.MaxWidthFrac <= 0 {
		cfg.MaxWidthFrac = 0.1
	}
	if cfg.MaxKeys <= 0 {
		cfg.MaxKeys = 1
	}
	if cfg.MaxKeys > cfg.Attrs {
		cfg.MaxKeys = cfg.Attrs
	}
	dist := cfg.PredDist
	if len(dist) == 0 {
		dist = []float64{1, 2, 1}
	}
	if len(dist) > cfg.Attrs+1 {
		dist = dist[:cfg.Attrs+1]
	}
	total := 0.0
	for _, w := range dist {
		if w > 0 {
			total += w
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	drawPreds := func() int {
		if total <= 0 {
			return 0
		}
		u := rng.Float64() * total
		for i, w := range dist {
			if w <= 0 {
				continue
			}
			u -= w
			if u <= 0 {
				return i
			}
		}
		return len(dist) - 1
	}
	maxP := len(dist) - 1
	series := make([][]int64, maxP)
	for k := range series {
		series[k] = PredicateSeries(cfg.Pattern, cfg.Queries, cfg.Domain, cfg.Seed+int64(100*k))
	}
	attrPick := attrPicker(cfg.Attrs, cfg.AttrZipf, rng)
	maxWidth := int64(cfg.MaxWidthFrac * float64(cfg.Domain))
	if maxWidth < 1 {
		maxWidth = 1
	}

	out := make([]GroupedQuery, cfg.Queries)
	for i := range out {
		nk := 1 + rng.Intn(cfg.MaxKeys)
		np := drawPreds()
		used := make(map[int]bool, nk+np)
		draw := func() int {
			a := attrPick()
			if used[a] {
				for n := 0; used[a] && n < cfg.Attrs; n++ {
					a = (a + 1) % cfg.Attrs
				}
			}
			used[a] = true
			return a
		}
		q := GroupedQuery{Keys: make([]int, 0, nk)}
		for len(q.Keys) < nk {
			q.Keys = append(q.Keys, draw())
		}
		for len(q.Preds) < np && len(used) < cfg.Attrs {
			a := draw()
			v := series[len(q.Preds)][i]
			p := Query{Attr: a}
			if cfg.OneSided {
				p.Lo, p.Hi = 0, v+1
			} else {
				width := rng.Int63n(maxWidth) + 1
				p.Lo = v
				p.Hi = v + width
				if p.Hi > cfg.Domain {
					p.Hi = cfg.Domain
				}
				if p.Lo >= p.Hi {
					p.Lo = p.Hi - 1
				}
			}
			q.Preds = append(q.Preds, p)
		}
		out[i] = q
	}
	return out
}

// FanOut shapes the key multiplicity of a generated join workload.
type FanOut int

const (
	// FanOneToOne: every key appears at most once on each side (row
	// counts clamp to the key-pool size).
	FanOneToOne FanOut = iota
	// FanOneToMany: keys are unique on the left side and repeat on the
	// right (the classic primary-key ⋈ foreign-key shape).
	FanOneToMany
	// FanManyToMany: keys repeat on both sides.
	FanManyToMany
)

// String names the fan-out as join literature does.
func (f FanOut) String() string {
	switch f {
	case FanOneToOne:
		return "1:1"
	case FanOneToMany:
		return "1:N"
	case FanManyToMany:
		return "M:N"
	default:
		return fmt.Sprintf("FanOut(%d)", int(f))
	}
}

// JoinConfig parameterizes a generated equi-join workload: two key
// columns whose domains overlap by a configurable fraction, with
// configurable key multiplicity and popularity skew.
type JoinConfig struct {
	// LeftRows/RightRows are the relation cardinalities.
	LeftRows, RightRows int
	// Keys is the size of each side's key pool (default 64).
	Keys int
	// Overlap in [0, 1] is the fraction of the key pools the two sides
	// share: 1 draws both sides from the same pool, 0 from disjoint
	// pools (no row ever matches). Default 1.
	Overlap float64
	// Fan selects the key multiplicity shape.
	Fan FanOut
	// Skew is the zipf-like exponent of key popularity on the repeating
	// side(s): key k is drawn proportionally to 1/(k+1)^Skew. 0 draws
	// keys uniformly.
	Skew float64
	// Seed makes the workload reproducible.
	Seed int64
}

// GenerateJoin builds the two join-key columns of a join workload. The
// left pool is [0, Keys); the right pool is shifted so that exactly
// the Overlap fraction of it intersects the left pool — every matching
// pair's key lies in the intersection.
func GenerateJoin(cfg JoinConfig) (left, right []int64) {
	if cfg.Keys <= 0 {
		cfg.Keys = 64
	}
	if cfg.Overlap < 0 {
		cfg.Overlap = 0
	}
	if cfg.Overlap > 1 {
		cfg.Overlap = 1
	}
	shift := int64(float64(cfg.Keys) * (1 - cfg.Overlap))
	rng := rand.New(rand.NewSource(cfg.Seed))

	unique := func(n int) []int64 {
		if n > cfg.Keys {
			n = cfg.Keys
		}
		perm := rng.Perm(cfg.Keys)
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(perm[i])
		}
		return out
	}
	repeating := func(n int) []int64 {
		pick := zipfPicker(cfg.Keys, cfg.Skew, rng)
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(pick())
		}
		return out
	}

	switch cfg.Fan {
	case FanOneToOne:
		left = unique(cfg.LeftRows)
		right = unique(cfg.RightRows)
	case FanOneToMany:
		left = unique(cfg.LeftRows)
		right = repeating(cfg.RightRows)
	default:
		left = repeating(cfg.LeftRows)
		right = repeating(cfg.RightRows)
	}
	for i := range right {
		right[i] += shift
	}
	return left, right
}

// UniformColumn generates n uniformly distributed values over [0, domain)
// — the base data of every synthetic experiment ("each attribute consists
// of 2^30 uniformly distributed integers").
func UniformColumn(n int, domain int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(domain)
	}
	return vals
}

// InsertBatch is a batch of pending insertions arriving after a given
// query index, as in the update scenarios of Section 5.7.
type InsertBatch struct {
	AfterQuery int
	Values     []int64
}

// UpdateScenario describes the two update workloads of Figure 16.
type UpdateScenario int

const (
	// HFLV: High Frequency, Low Volume — 10 inserts every 10 queries.
	HFLV UpdateScenario = iota
	// LFHV: Low Frequency, High Volume — 100 inserts every 100 queries.
	LFHV
)

// String names the scenario as in Figure 16.
func (s UpdateScenario) String() string {
	if s == HFLV {
		return "HFLV"
	}
	return "LFHV"
}

// InsertBatches builds the insert schedule of an update scenario over a
// workload of `queries` selections: batches of size `every` arrive after
// every `every`-th query, with values uniform over [0, domain).
func InsertBatches(s UpdateScenario, queries int, domain int64, seed int64) []InsertBatch {
	every := 10
	if s == LFHV {
		every = 100
	}
	rng := rand.New(rand.NewSource(seed))
	var out []InsertBatch
	for q := every; q <= queries; q += every {
		vals := make([]int64, every)
		for i := range vals {
			vals[i] = rng.Int63n(domain)
		}
		out = append(out, InsertBatch{AfterQuery: q, Values: vals})
	}
	return out
}
