package workload

import (
	"testing"
	"testing/quick"
)

func TestPredicateSeriesInDomain(t *testing.T) {
	const domain = 1 << 20
	for _, p := range Patterns() {
		vals := PredicateSeries(p, 500, domain, 7)
		if len(vals) != 500 {
			t.Fatalf("%v: got %d values, want 500", p, len(vals))
		}
		for i, v := range vals {
			if v < 0 || v >= domain {
				t.Fatalf("%v: value %d at %d outside [0, %d)", p, v, i, domain)
			}
		}
	}
}

func TestPredicateSeriesDeterministic(t *testing.T) {
	for _, p := range Patterns() {
		a := PredicateSeries(p, 200, 1<<20, 42)
		b := PredicateSeries(p, 200, 1<<20, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: series not deterministic at %d", p, i)
			}
		}
	}
}

func TestSkewedConfinedToTopBand(t *testing.T) {
	domain := int64(1 << 20)
	band := int64(float64(domain) * 0.8)
	for _, v := range PredicateSeries(Skewed, 1000, domain, 1) {
		if v < band {
			t.Fatalf("skewed value %d below the top band", v)
		}
	}
}

func TestSequentialIsMonotoneOverall(t *testing.T) {
	vals := PredicateSeries(Sequential, 1000, 1<<20, 2)
	// Allowing jitter, compare decile means.
	var prev int64 = -1
	for d := 0; d < 10; d++ {
		var sum int64
		for _, v := range vals[d*100 : (d+1)*100] {
			sum += v
		}
		mean := sum / 100
		if mean <= prev {
			t.Fatalf("decile %d mean %d not increasing (prev %d)", d, mean, prev)
		}
		prev = mean
	}
}

func TestPeriodicCoversDomainRepeatedly(t *testing.T) {
	const domain = 1 << 20
	vals := PredicateSeries(Periodic, 1000, domain, 3)
	// Each fifth of the sequence (one period) must span most of the domain.
	for p := 0; p < 5; p++ {
		lo, hi := int64(domain), int64(0)
		for _, v := range vals[p*200 : (p+1)*200] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo < domain/2 {
			t.Fatalf("period %d spans only [%d, %d]", p, lo, hi)
		}
	}
}

func TestSkyServerHasRegionsAndJumps(t *testing.T) {
	const domain = 1 << 20
	vals := PredicateSeries(SkyServer, 2000, domain, 4)
	// Count large jumps between consecutive queries; drifting runs mean
	// most steps are small, region changes mean some are large.
	large, small := 0, 0
	for i := 1; i < len(vals); i++ {
		d := vals[i] - vals[i-1]
		if d < 0 {
			d = -d
		}
		if d > domain/5 {
			large++
		} else if d < domain/10 {
			small++
		}
	}
	if large == 0 {
		t.Error("no region jumps observed")
	}
	if small < len(vals)/2 {
		t.Errorf("only %d small drift steps of %d", small, len(vals))
	}
	if large > len(vals)/4 {
		t.Errorf("%d large jumps — pattern too random", large)
	}
}

func TestGenerateOneSided(t *testing.T) {
	qs := Generate(Config{Pattern: Random, Queries: 300, Domain: 1 << 20, Attrs: 10, OneSided: true, Seed: 5})
	if len(qs) != 300 {
		t.Fatalf("got %d queries", len(qs))
	}
	attrSeen := map[int]bool{}
	for _, q := range qs {
		if q.Lo != 0 {
			t.Fatalf("one-sided query has Lo = %d", q.Lo)
		}
		if q.Hi < 1 || q.Hi > 1<<20 {
			t.Fatalf("one-sided query Hi = %d outside domain", q.Hi)
		}
		if q.Attr < 0 || q.Attr >= 10 {
			t.Fatalf("attr %d out of range", q.Attr)
		}
		attrSeen[q.Attr] = true
	}
	if len(attrSeen) < 8 {
		t.Errorf("uniform attribute choice hit only %d of 10 attrs", len(attrSeen))
	}
}

func TestGenerateTwoSided(t *testing.T) {
	qs := Generate(Config{Pattern: Random, Queries: 300, Domain: 1 << 20, Attrs: 3, Seed: 6})
	for _, q := range qs {
		if q.Lo >= q.Hi {
			t.Fatalf("empty range [%d, %d)", q.Lo, q.Hi)
		}
		if q.Hi > 1<<20 {
			t.Fatalf("Hi %d beyond domain", q.Hi)
		}
		if q.Hi-q.Lo > 1<<17 {
			t.Fatalf("range width %d exceeds MaxWidthFrac", q.Hi-q.Lo)
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	qs := Generate(Config{Pattern: Random, Queries: 10, Seed: 1})
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Attr != 0 {
			t.Fatal("default single attribute violated")
		}
	}
}

func TestAttrZipfSkewsPopularity(t *testing.T) {
	qs := Generate(Config{Pattern: Random, Queries: 5000, Domain: 1 << 20, Attrs: 5, AttrZipf: 1.2, Seed: 7})
	counts := make([]int, 5)
	for _, q := range qs {
		counts[q.Attr]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Errorf("zipf attribute counts not decreasing: %v", counts)
	}
	if counts[0] < 2*counts[4] {
		t.Errorf("zipf skew too weak: %v", counts)
	}
}

func TestGenerateJoinShapes(t *testing.T) {
	// 1:1 — unique keys per side, rows clamped to the key pool.
	l, r := GenerateJoin(JoinConfig{LeftRows: 100, RightRows: 40, Keys: 64, Overlap: 1, Fan: FanOneToOne, Seed: 3})
	if len(l) != 64 || len(r) != 40 {
		t.Fatalf("1:1 sizes = %d/%d, want 64/40", len(l), len(r))
	}
	seen := map[int64]bool{}
	for _, k := range l {
		if seen[k] {
			t.Fatal("1:1 left side repeated a key")
		}
		seen[k] = true
	}

	// 1:N — left unique, right repeats keys from the same pool.
	l, r = GenerateJoin(JoinConfig{LeftRows: 50, RightRows: 500, Keys: 50, Overlap: 1, Fan: FanOneToMany, Skew: 1, Seed: 4})
	if len(l) != 50 || len(r) != 500 {
		t.Fatalf("1:N sizes = %d/%d", len(l), len(r))
	}
	rep := map[int64]int{}
	for _, k := range r {
		rep[k]++
		if k < 0 || k >= 50 {
			t.Fatalf("1:N right key %d outside pool", k)
		}
	}
	if len(rep) >= 500 {
		t.Fatal("1:N right side never repeated a key")
	}

	// Overlap 0 — pools disjoint, no key matches.
	l, r = GenerateJoin(JoinConfig{LeftRows: 200, RightRows: 200, Keys: 100, Overlap: 0, Fan: FanManyToMany, Seed: 5})
	lset := map[int64]bool{}
	for _, k := range l {
		lset[k] = true
	}
	for _, k := range r {
		if lset[k] {
			t.Fatalf("overlap=0 produced a shared key %d", k)
		}
	}

	// Overlap 0.5 — roughly half the right pool intersects the left.
	_, r = GenerateJoin(JoinConfig{LeftRows: 0, RightRows: 2000, Keys: 100, Overlap: 0.5, Fan: FanManyToMany, Seed: 6})
	in := 0
	for _, k := range r {
		if k < 100 {
			in++
		}
	}
	if in == 0 || in == len(r) {
		t.Fatalf("overlap=0.5: %d/%d right keys in the left pool", in, len(r))
	}

	// Determinism.
	a1, b1 := GenerateJoin(JoinConfig{LeftRows: 30, RightRows: 30, Keys: 16, Fan: FanManyToMany, Skew: 0.5, Seed: 7})
	a2, b2 := GenerateJoin(JoinConfig{LeftRows: 30, RightRows: 30, Keys: 16, Fan: FanManyToMany, Skew: 0.5, Seed: 7})
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatal("GenerateJoin not deterministic for equal seeds")
		}
	}
}

func TestUniformColumn(t *testing.T) {
	vals := UniformColumn(10_000, 1<<20, 8)
	if len(vals) != 10_000 {
		t.Fatalf("got %d values", len(vals))
	}
	var sum float64
	for _, v := range vals {
		if v < 0 || v >= 1<<20 {
			t.Fatalf("value %d outside domain", v)
		}
		sum += float64(v)
	}
	mean := sum / 10_000
	if mean < 0.45*(1<<20) || mean > 0.55*(1<<20) {
		t.Errorf("mean %f far from uniform midpoint", mean)
	}
}

func TestInsertBatches(t *testing.T) {
	hf := InsertBatches(HFLV, 500, 1<<20, 9)
	if len(hf) != 50 {
		t.Fatalf("HFLV batches = %d, want 50", len(hf))
	}
	for i, b := range hf {
		if len(b.Values) != 10 {
			t.Fatalf("HFLV batch %d size %d, want 10", i, len(b.Values))
		}
		if b.AfterQuery != (i+1)*10 {
			t.Fatalf("HFLV batch %d at %d, want %d", i, b.AfterQuery, (i+1)*10)
		}
	}
	lf := InsertBatches(LFHV, 500, 1<<20, 9)
	if len(lf) != 5 {
		t.Fatalf("LFHV batches = %d, want 5", len(lf))
	}
	for _, b := range lf {
		if len(b.Values) != 100 {
			t.Fatalf("LFHV batch size %d, want 100", len(b.Values))
		}
	}
	// Totals match: both scenarios deliver 500 inserts over 500 queries.
	total := func(bs []InsertBatch) int {
		n := 0
		for _, b := range bs {
			n += len(b.Values)
		}
		return n
	}
	if total(hf) != 500 || total(lf) != 500 {
		t.Errorf("totals = %d/%d, want 500/500", total(hf), total(lf))
	}
}

func TestPatternString(t *testing.T) {
	names := map[Pattern]string{
		Random: "Random", Skewed: "Skewed", Periodic: "Periodic",
		Sequential: "Sequential", SkyServer: "SkyServer",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %s", int(p), p.String())
		}
	}
	if Pattern(99).String() != "Pattern(99)" {
		t.Errorf("unknown pattern String() = %s", Pattern(99).String())
	}
	if HFLV.String() != "HFLV" || LFHV.String() != "LFHV" {
		t.Error("UpdateScenario names wrong")
	}
}

func TestQuickGeneratedQueriesWellFormed(t *testing.T) {
	check := func(seed int64, pat uint8, oneSided bool, attrs uint8) bool {
		cfg := Config{
			Pattern:  Pattern(pat % 5),
			Queries:  50,
			Domain:   1 << 16,
			Attrs:    int(attrs%10) + 1,
			OneSided: oneSided,
			Seed:     seed,
		}
		for _, q := range Generate(cfg) {
			if q.Lo >= q.Hi || q.Hi > cfg.Domain || q.Attr < 0 || q.Attr >= cfg.Attrs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateConjunctive(t *testing.T) {
	cfg := ConjConfig{
		Config: Config{
			Pattern: Random,
			Queries: 2000,
			Domain:  1 << 20,
			Attrs:   5,
			Seed:    11,
		},
		PredDist: []float64{0, 3, 1}, // 75% two conjuncts, 25% three
	}
	qs := GenerateConjunctive(cfg)
	if len(qs) != cfg.Queries {
		t.Fatalf("generated %d queries, want %d", len(qs), cfg.Queries)
	}
	counts := map[int]int{}
	for qi, q := range qs {
		counts[len(q.Preds)]++
		seen := map[int]bool{}
		for _, p := range q.Preds {
			if p.Attr < 0 || p.Attr >= cfg.Attrs {
				t.Fatalf("query %d: attr %d out of range", qi, p.Attr)
			}
			if seen[p.Attr] {
				t.Fatalf("query %d: attribute %d repeated", qi, p.Attr)
			}
			seen[p.Attr] = true
			if p.Lo >= p.Hi || p.Lo < 0 || p.Hi > cfg.Domain {
				t.Fatalf("query %d: bad range [%d, %d)", qi, p.Lo, p.Hi)
			}
		}
	}
	if counts[1] != 0 {
		t.Errorf("PredDist weight 0 still produced %d single-conjunct queries", counts[1])
	}
	two, three := float64(counts[2]), float64(counts[3])
	if two == 0 || three == 0 {
		t.Fatalf("conjunct counts missing: %v", counts)
	}
	if ratio := two / three; ratio < 2 || ratio > 4.5 {
		t.Errorf("two/three ratio = %.2f, want ~3", ratio)
	}
	// Reproducible under the same seed.
	qs2 := GenerateConjunctive(cfg)
	for i := range qs {
		if len(qs[i].Preds) != len(qs2[i].Preds) {
			t.Fatal("conjunctive workload not reproducible")
		}
		for j := range qs[i].Preds {
			if qs[i].Preds[j] != qs2[i].Preds[j] {
				t.Fatal("conjunctive workload not reproducible")
			}
		}
	}
}

func TestGenerateConjunctiveDistCappedByAttrs(t *testing.T) {
	cfg := ConjConfig{
		Config:   Config{Pattern: Random, Queries: 200, Domain: 1 << 16, Attrs: 2, Seed: 3},
		PredDist: []float64{0, 0, 0, 1}, // asks for 4 conjuncts; only 2 attrs exist
	}
	qs := GenerateConjunctive(cfg)
	for _, q := range qs {
		if len(q.Preds) > 2 {
			t.Fatalf("query with %d conjuncts on a 2-attribute config", len(q.Preds))
		}
	}
}

func TestGroupKeyColumn(t *testing.T) {
	const n, groups = 50_000, 32
	vals := GroupKeyColumn(n, groups, 0, 7)
	if len(vals) != n {
		t.Fatalf("len = %d", len(vals))
	}
	counts := make([]int, groups)
	for _, v := range vals {
		if v < 0 || v >= groups {
			t.Fatalf("group id %d out of [0, %d)", v, groups)
		}
		counts[v]++
	}
	// Uniform: every group populated, none wildly over-represented.
	for g, c := range counts {
		if c == 0 {
			t.Fatalf("group %d empty under uniform sizing", g)
		}
		if c > 3*n/groups {
			t.Fatalf("group %d has %d rows, uniform share is %d", g, c, n/groups)
		}
	}

	// Skewed: group 0 dominates and sizes decay with rank.
	sk := GroupKeyColumn(n, groups, 1.2, 7)
	skCounts := make([]int, groups)
	for _, v := range sk {
		skCounts[v]++
	}
	if skCounts[0] < 4*n/groups {
		t.Errorf("skew 1.2: top group has %d rows, want far above the uniform share %d", skCounts[0], n/groups)
	}
	if skCounts[0] <= skCounts[groups-1] {
		t.Error("skew 1.2: top group not larger than bottom group")
	}

	// Deterministic under the seed.
	again := GroupKeyColumn(n, groups, 1.2, 7)
	for i := range sk {
		if sk[i] != again[i] {
			t.Fatal("grouped key column not reproducible")
		}
	}
}

func TestGenerateGrouped(t *testing.T) {
	cfg := GroupedConfig{
		Config:   Config{Pattern: Random, Queries: 600, Domain: 1 << 20, Attrs: 4, Seed: 9},
		Groups:   64,
		MaxKeys:  2,
		PredDist: []float64{1, 2, 1},
	}
	qs := GenerateGrouped(cfg)
	if len(qs) != cfg.Queries {
		t.Fatalf("generated %d queries, want %d", len(qs), cfg.Queries)
	}
	predCounts := make([]int, 4)
	sawTwoKeys := false
	for qi, q := range qs {
		if len(q.Keys) < 1 || len(q.Keys) > 2 {
			t.Fatalf("query %d has %d keys", qi, len(q.Keys))
		}
		if len(q.Keys) == 2 {
			sawTwoKeys = true
		}
		seen := map[int]bool{}
		for _, k := range q.Keys {
			if k < 0 || k >= cfg.Attrs || seen[k] {
				t.Fatalf("query %d: bad or duplicate key attr %d", qi, k)
			}
			seen[k] = true
		}
		if len(q.Preds) > 2 {
			t.Fatalf("query %d has %d predicates, dist allows at most 2", qi, len(q.Preds))
		}
		predCounts[len(q.Preds)]++
		for _, p := range q.Preds {
			if p.Attr < 0 || p.Attr >= cfg.Attrs || seen[p.Attr] {
				t.Fatalf("query %d: bad or duplicate predicate attr %d", qi, p.Attr)
			}
			seen[p.Attr] = true
			if p.Lo >= p.Hi || p.Lo < 0 || p.Hi > cfg.Domain {
				t.Fatalf("query %d: bad range [%d, %d)", qi, p.Lo, p.Hi)
			}
		}
	}
	if !sawTwoKeys {
		t.Error("no two-key grouped queries generated")
	}
	if predCounts[0] == 0 || predCounts[1] == 0 || predCounts[2] == 0 {
		t.Fatalf("predicate counts missing: %v", predCounts)
	}
	if ratio := float64(predCounts[1]) / float64(predCounts[0]); ratio < 1.2 || ratio > 3.2 {
		t.Errorf("one/zero predicate ratio = %.2f, want ~2", ratio)
	}

	// Reproducible under the same seed.
	qs2 := GenerateGrouped(cfg)
	for i := range qs {
		if len(qs[i].Keys) != len(qs2[i].Keys) || len(qs[i].Preds) != len(qs2[i].Preds) {
			t.Fatal("grouped workload not reproducible")
		}
		for j := range qs[i].Keys {
			if qs[i].Keys[j] != qs2[i].Keys[j] {
				t.Fatal("grouped workload not reproducible")
			}
		}
		for j := range qs[i].Preds {
			if qs[i].Preds[j] != qs2[i].Preds[j] {
				t.Fatal("grouped workload not reproducible")
			}
		}
	}
}
