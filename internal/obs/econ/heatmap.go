// Access heatmaps: fixed-resolution equi-width key-range counters that
// show *where* in a column's key space the load lands — and, recorded
// from the daemon's side, where refinement effort goes. Comparing the
// two answers the capacity question the refinement ledger can't: is
// idle work being spent on the ranges queries actually touch?
//
// Each heatmap is a flat array of HeatBuckets cache-line-padded atomic
// counters over the column's key domain, fixed when the attribute is
// first seen. Recording is lock-free and allocation-free; a query span
// increments every bucket it overlaps (at most HeatBuckets adds,
// negligible next to the select it annotates), a refinement pivot
// increments exactly one.

package econ

import (
	"sort"
	"sync"
	"sync/atomic"
)

// HeatBuckets is the fixed per-attribute key-range resolution. 256
// equi-width buckets keep a heatmap at one page of padded counters
// while still resolving hot ranges far narrower than any realistic
// refinement budget skew would need.
const HeatBuckets = 256

// heatCell pads each bucket counter to its own cache line so
// concurrent queries hitting adjacent key ranges don't false-share.
type heatCell struct {
	n atomic.Int64
	_ [56]byte
}

// Heatmap counts accesses per equi-width slice of one attribute's key
// domain. The domain is fixed at creation (first predicate admission);
// values outside it clamp to the edge buckets.
type Heatmap struct {
	lo, hi int64  // inclusive key domain
	width  uint64 // keys per bucket, >= 1
	cells  [HeatBuckets]heatCell
}

// newHeatmap fixes the bucket geometry for the attribute's domain.
//
//holistic:alloc-ok heatmaps are built once per attribute at first sight
func newHeatmap(lo, hi int64) *Heatmap {
	if hi < lo {
		hi = lo
	}
	return &Heatmap{lo: lo, hi: hi, width: uint64(hi-lo)/HeatBuckets + 1}
}

// bucketOf maps a key to its bucket, clamping outside the domain. The
// width arithmetic is unsigned so full-int64 domains don't overflow.
//
//holistic:noalloc
func (h *Heatmap) bucketOf(v int64) int {
	if v <= h.lo {
		return 0
	}
	idx := uint64(v-h.lo) / h.width
	if idx >= HeatBuckets {
		return HeatBuckets - 1
	}
	return int(idx)
}

// RecordSpan counts one access of the half-open key range [lo, hi) —
// the predicate convention of the query layer.
//
//holistic:noalloc
func (h *Heatmap) RecordSpan(lo, hi int64) {
	if hi <= lo {
		return
	}
	last := h.bucketOf(hi - 1)
	for b := h.bucketOf(lo); b <= last; b++ {
		h.cells[b].n.Add(1)
	}
}

// RecordPoint counts one access of a single key (a refinement pivot).
//
//holistic:noalloc
func (h *Heatmap) RecordPoint(v int64) {
	h.cells[h.bucketOf(v)].n.Add(1)
}

// HeatmapState is a JSON-friendly copy of one heatmap: the bucket
// geometry plus the full counter array, so consumers (the /metrics
// exposition, capacity dashboards) can resolve hot ranges themselves.
type HeatmapState struct {
	Attr        string  `json:"attr"`
	Lo          int64   `json:"lo"`
	Hi          int64   `json:"hi"`
	BucketWidth int64   `json:"bucket_width"`
	Total       int64   `json:"total"`
	Peak        int64   `json:"peak"`
	PeakBucket  int     `json:"peak_bucket"`
	Counts      []int64 `json:"counts"`
}

// state snapshots the heatmap. Counters are read individually (not an
// atomic cut), which is fine: each is monotone.
func (h *Heatmap) state(attr string) HeatmapState {
	st := HeatmapState{
		Attr:        attr,
		Lo:          h.lo,
		Hi:          h.hi,
		BucketWidth: int64(h.width),
		Counts:      make([]int64, HeatBuckets),
	}
	for i := range h.cells {
		n := h.cells[i].n.Load()
		st.Counts[i] = n
		st.Total += n
		if n > st.Peak {
			st.Peak = n
			st.PeakBucket = i
		}
	}
	return st
}

// HeatmapSet maps attributes to heatmaps with a copy-on-write table:
// the hot path is one atomic pointer load plus a read-only map lookup
// (allocation-free); inserting a new attribute copies the table under
// a mutex, which happens once per attribute per process.
type HeatmapSet struct {
	mu   sync.Mutex
	maps atomic.Pointer[map[string]*Heatmap]
}

//holistic:noalloc
func (s *HeatmapSet) get(attr string) *Heatmap {
	m := s.maps.Load()
	if m == nil {
		return nil
	}
	return (*m)[attr]
}

// intern returns attr's heatmap, creating it with the given domain on
// first sight.
//
//holistic:alloc-ok first-sight registration copies the read-mostly table
func (s *HeatmapSet) intern(attr string, dLo, dHi int64) *Heatmap {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.maps.Load(); old != nil {
		if h := (*old)[attr]; h != nil {
			return h
		}
	}
	next := make(map[string]*Heatmap)
	if old := s.maps.Load(); old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	h := newHeatmap(dLo, dHi)
	next[attr] = h
	s.maps.Store(&next)
	return h
}

// RecordSpan counts one access of [lo, hi) on attr, creating the
// heatmap from the domain hint [dLo, dHi] on first sight.
//
//holistic:noalloc
func (s *HeatmapSet) RecordSpan(attr string, lo, hi, dLo, dHi int64) {
	h := s.get(attr)
	if h == nil {
		h = s.intern(attr, dLo, dHi)
	}
	h.RecordSpan(lo, hi)
}

// RecordPoint counts one single-key access on attr (see RecordSpan).
//
//holistic:noalloc
func (s *HeatmapSet) RecordPoint(attr string, v, dLo, dHi int64) {
	h := s.get(attr)
	if h == nil {
		h = s.intern(attr, dLo, dHi)
	}
	h.RecordPoint(v)
}

// states snapshots every heatmap, sorted by attribute for stable JSON.
func (s *HeatmapSet) states() []HeatmapState {
	m := s.maps.Load()
	if m == nil || len(*m) == 0 {
		return nil
	}
	out := make([]HeatmapState, 0, len(*m))
	for attr, h := range *m {
		out = append(out, h.state(attr))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}
