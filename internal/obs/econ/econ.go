// Package econ keeps the balance sheet of holistic indexing: what the
// daemon invests in each index (refinement nanoseconds, on otherwise
// idle CPU contexts) against what queries get back (drive-stage
// latency shrinking as the index converges). The paper's argument is
// exactly this trade — idle-time investment repaid by future scans —
// and this package makes it observable per index, per key range, and
// over time.
//
// The benefit side can't be measured directly (the unrefined latency
// of a refined index is a counterfactual), so it is estimated from the
// workload itself: every query's drive-stage nanoseconds are bucketed
// by the index's convergence ratio at the time the query ran. The mean
// drive latency of the least-converged populated bucket is the
// baseline; every query served at higher convergence is credited with
// the difference between that baseline and its bucket's mean. Modes
// without refinement put every sample in the first bucket and
// therefore report zero savings — the estimator never invents benefit.
//
// All recording paths are lock-free, allocation-free and nil-receiver
// safe, so they can be compiled into query and daemon hot paths
// unconditionally and switched on by attaching an *Econ.
package econ

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ConvBuckets partitions the convergence ratio [0, 1] for benefit
// bucketing. Eight buckets of width 0.125 are coarse enough to gather
// stable per-bucket means quickly and fine enough to see the latency
// slope the paper's Figure 6 shows.
const ConvBuckets = 8

// driveCell accumulates the drive-stage latency of queries served
// while the index sat in one convergence bucket. Padded so the bucket
// counters of a hot index don't false-share.
type driveCell struct {
	queries atomic.Int64
	sumNs   atomic.Int64
	_       [48]byte
}

// slot is one index's ledger entry.
type slot struct {
	invested atomic.Int64  // daemon nanoseconds spent refining
	refines  atomic.Int64  // successful refinement actions
	progress atomic.Uint64 // Float64bits of the last convergence ratio
	drive    [ConvBuckets]driveCell
}

// convBucket maps a convergence ratio to its drive bucket. NaN and
// non-positive ratios (including "never refined") land in bucket 0,
// the baseline.
//
//holistic:noalloc
func convBucket(p float64) int {
	if !(p > 0) {
		return 0
	}
	b := int(p * ConvBuckets)
	if b >= ConvBuckets {
		b = ConvBuckets - 1
	}
	return b
}

// ledger maps index names to slots with the same copy-on-write table
// discipline as HeatmapSet: allocation-free lookup, once-per-index
// copying insert.
type ledger struct {
	mu    sync.Mutex
	slots atomic.Pointer[map[string]*slot]
}

//holistic:noalloc
func (l *ledger) get(name string) *slot {
	m := l.slots.Load()
	if m == nil {
		return nil
	}
	return (*m)[name]
}

//holistic:alloc-ok first-sight registration copies the read-mostly table
func (l *ledger) intern(name string) *slot {
	l.mu.Lock()
	defer l.mu.Unlock()
	if old := l.slots.Load(); old != nil {
		if s := (*old)[name]; s != nil {
			return s
		}
	}
	next := make(map[string]*slot)
	if old := l.slots.Load(); old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	s := &slot{}
	next[name] = s
	l.slots.Store(&next)
	return s
}

// Econ bundles the refinement ledger with the two heatmaps that
// localize it in key space: where query predicates land (access) and
// where the daemon cracks (refine). One Econ instance is shared by a
// store's query runner, executor and daemon.
type Econ struct {
	ledger ledger
	access HeatmapSet
	refine HeatmapSet
}

// New returns an empty economics recorder.
func New() *Econ { return &Econ{} }

// NotePredicate records one predicate admission: the half-open key
// span [lo, hi) on attr, whose domain is [dLo, dHi]. Nil-safe.
//
//holistic:noalloc
func (e *Econ) NotePredicate(attr string, lo, hi, dLo, dHi int64) {
	if e == nil {
		return
	}
	e.access.RecordSpan(attr, lo, hi, dLo, dHi)
}

// NoteDrive credits attr's current convergence bucket with one query's
// drive-stage nanoseconds — the benefit stream. Nil-safe.
//
//holistic:noalloc
func (e *Econ) NoteDrive(attr string, driveNs int64) {
	if e == nil {
		return
	}
	s := e.ledger.get(attr)
	if s == nil {
		s = e.ledger.intern(attr)
	}
	b := convBucket(math.Float64frombits(s.progress.Load()))
	s.drive[b].queries.Add(1)
	s.drive[b].sumNs.Add(driveNs)
}

// NoteRefined records one daemon refinement pass over attr: invested
// wall nanoseconds, the number of successful refinement actions, and
// the index's convergence ratio after the pass. Nil-safe.
//
//holistic:noalloc
func (e *Econ) NoteRefined(attr string, investedNs, refined int64, progress float64) {
	if e == nil {
		return
	}
	s := e.ledger.get(attr)
	if s == nil {
		s = e.ledger.intern(attr)
	}
	s.invested.Add(investedNs)
	s.refines.Add(refined)
	s.progress.Store(math.Float64bits(progress))
}

// NoteRefinePivot records where in attr's key space one refinement
// pivot landed. Nil-safe.
//
//holistic:noalloc
func (e *Econ) NoteRefinePivot(attr string, pivot, dLo, dHi int64) {
	if e == nil {
		return
	}
	e.refine.RecordPoint(attr, pivot, dLo, dHi)
}

// TotalInvestedNS sums invested nanoseconds across all indexes — the
// cheap cumulative counter the timeline samples. Nil-safe.
func (e *Econ) TotalInvestedNS() int64 {
	if e == nil {
		return 0
	}
	m := e.ledger.slots.Load()
	if m == nil {
		return 0
	}
	var t int64
	for _, s := range *m {
		t += s.invested.Load()
	}
	return t
}

// DriveBucket is the benefit stream of one convergence interval: how
// many queries drove through the index while its convergence ratio sat
// in [LoRatio, HiRatio), and their mean drive-stage latency.
type DriveBucket struct {
	LoRatio     float64 `json:"lo_ratio"`
	HiRatio     float64 `json:"hi_ratio"`
	Queries     int64   `json:"queries"`
	MeanDriveUS float64 `json:"mean_drive_us"`
}

// IndexEconomics is one index's balance: invested refinement time vs
// estimated drive-latency savings.
type IndexEconomics struct {
	Name            string        `json:"name"`
	InvestedNS      int64         `json:"invested_ns"`
	Refinements     int64         `json:"refinements"`
	Convergence     float64       `json:"convergence"`
	DriveQueries    int64         `json:"drive_queries"`
	BaselineDriveUS float64       `json:"baseline_drive_us"`
	SavedNS         int64         `json:"saved_ns"`
	ROI             float64       `json:"roi"`
	Buckets         []DriveBucket `json:"buckets,omitempty"`
}

// Snapshot is the cold, JSON-friendly copy of the whole balance sheet.
type Snapshot struct {
	InvestedNS int64            `json:"invested_ns"`
	SavedNS    int64            `json:"saved_ns"`
	ROI        float64          `json:"roi"`
	Indexes    []IndexEconomics `json:"indexes,omitempty"`
	Access     []HeatmapState   `json:"access_heatmaps,omitempty"`
	Refine     []HeatmapState   `json:"refine_heatmaps,omitempty"`
}

// Snapshot computes the balance sheet: per index, the baseline is the
// mean drive latency of the least-converged populated bucket, and
// every query served at higher convergence is credited the (clamped
// non-negative) difference between that baseline and its own bucket's
// mean. Returns nil on a nil receiver so Metrics assembly can pass it
// straight through.
func (e *Econ) Snapshot() *Snapshot {
	if e == nil {
		return nil
	}
	snap := &Snapshot{
		Access: e.access.states(),
		Refine: e.refine.states(),
	}
	m := e.ledger.slots.Load()
	if m != nil && len(*m) > 0 {
		names := make([]string, 0, len(*m))
		for name := range *m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ie := (*m)[name].economics(name)
			snap.InvestedNS += ie.InvestedNS
			snap.SavedNS += ie.SavedNS
			snap.Indexes = append(snap.Indexes, ie)
		}
	}
	if snap.InvestedNS > 0 {
		snap.ROI = float64(snap.SavedNS) / float64(snap.InvestedNS)
	}
	return snap
}

// economics digests one slot.
func (s *slot) economics(name string) IndexEconomics {
	ie := IndexEconomics{
		Name:        name,
		InvestedNS:  s.invested.Load(),
		Refinements: s.refines.Load(),
		Convergence: math.Float64frombits(s.progress.Load()),
	}
	baseline := -1.0 // mean ns of the least-converged populated bucket
	var saved float64
	for b := 0; b < ConvBuckets; b++ {
		q := s.drive[b].queries.Load()
		if q == 0 {
			continue
		}
		mean := float64(s.drive[b].sumNs.Load()) / float64(q)
		ie.DriveQueries += q
		ie.Buckets = append(ie.Buckets, DriveBucket{
			LoRatio:     float64(b) / ConvBuckets,
			HiRatio:     float64(b+1) / ConvBuckets,
			Queries:     q,
			MeanDriveUS: mean / 1e3,
		})
		if baseline < 0 {
			baseline = mean
			continue
		}
		if d := baseline - mean; d > 0 {
			saved += d * float64(q)
		}
	}
	if baseline >= 0 {
		ie.BaselineDriveUS = baseline / 1e3
	}
	ie.SavedNS = int64(saved)
	if ie.InvestedNS > 0 {
		ie.ROI = float64(ie.SavedNS) / float64(ie.InvestedNS)
	}
	return ie
}
