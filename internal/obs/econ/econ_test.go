package econ

import (
	"sync"
	"testing"
)

// TestHeatmapBucketGeometry pins the equi-width mapping: domain edges
// land in the edge buckets, out-of-domain values clamp, and a
// full-domain span touches every bucket exactly once.
func TestHeatmapBucketGeometry(t *testing.T) {
	h := newHeatmap(0, 9972)
	if got := h.bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(lo) = %d, want 0", got)
	}
	if got := h.bucketOf(9972); got != HeatBuckets-1 {
		t.Fatalf("bucketOf(hi) = %d, want %d", got, HeatBuckets-1)
	}
	if got := h.bucketOf(-100); got != 0 {
		t.Fatalf("bucketOf(below domain) = %d, want clamp to 0", got)
	}
	if got := h.bucketOf(1 << 40); got != HeatBuckets-1 {
		t.Fatalf("bucketOf(above domain) = %d, want clamp to %d", got, HeatBuckets-1)
	}
	prev := -1
	for v := int64(0); v <= 9972; v++ {
		b := h.bucketOf(v)
		if b < prev || b > prev+1 {
			t.Fatalf("bucketOf not monotone/contiguous at %d: %d after %d", v, b, prev)
		}
		prev = b
	}
	h.RecordSpan(0, 9973) // full domain, half-open
	st := h.state("x")
	if st.Total != HeatBuckets {
		t.Fatalf("full-domain span total = %d, want %d (one per bucket)", st.Total, HeatBuckets)
	}
	for i, n := range st.Counts {
		if n != 1 {
			t.Fatalf("bucket %d count = %d, want 1", i, n)
		}
	}
	// Degenerate and extreme domains must not divide by zero/overflow.
	one := newHeatmap(42, 42)
	one.RecordPoint(42)
	if one.state("y").Total != 1 {
		t.Fatal("single-key domain lost the point")
	}
	wide := newHeatmap(-1<<62, 1<<62)
	wide.RecordSpan(-1<<62, 1<<62)
	if wide.state("z").Total == 0 {
		t.Fatal("full-int64-ish domain recorded nothing")
	}
}

// TestHeatmapConcurrentRecording is the -race satellite: many writers
// hammer overlapping attributes (racing the first-sight intern path)
// while a reader snapshots; no increment may be lost.
func TestHeatmapConcurrentRecording(t *testing.T) {
	var set HeatmapSet
	const (
		writers = 8
		perG    = 5000
	)
	attrs := []string{"a", "b", "c"}
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, st := range set.states() {
					_ = st.Total
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				attr := attrs[(g+i)%len(attrs)]
				v := int64(i % 10000)
				set.RecordPoint(attr, v, 0, 9999)
				set.RecordSpan(attr, v, v+1, 0, 9999) // single-bucket span
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	rd.Wait()
	var total int64
	for _, st := range set.states() {
		total += st.Total
	}
	if want := int64(writers * perG * 2); total != want {
		t.Fatalf("lost increments: total %d, want %d", total, want)
	}
}

// TestLedgerEconomics drives the estimator with a deterministic
// workload: queries at low convergence are slow, queries after
// refinement are fast, so the savings are exactly the per-query delta.
func TestLedgerEconomics(t *testing.T) {
	e := New()
	// Baseline: three 1000ns drives before any refinement (bucket 0).
	for i := 0; i < 3; i++ {
		e.NoteDrive("x", 1000)
	}
	// The daemon invests 5000ns over two passes, converging to 0.9.
	e.NoteRefined("x", 2000, 4, 0.5)
	e.NoteRefined("x", 3000, 2, 0.9)
	// Three 100ns drives at convergence 0.9 (bucket 7).
	for i := 0; i < 3; i++ {
		e.NoteDrive("x", 100)
	}
	snap := e.Snapshot()
	if len(snap.Indexes) != 1 {
		t.Fatalf("indexes = %d, want 1", len(snap.Indexes))
	}
	ie := snap.Indexes[0]
	if ie.Name != "x" || ie.InvestedNS != 5000 || ie.Refinements != 6 {
		t.Fatalf("ledger totals wrong: %+v", ie)
	}
	if ie.Convergence != 0.9 {
		t.Fatalf("convergence = %v, want 0.9", ie.Convergence)
	}
	if ie.DriveQueries != 6 || len(ie.Buckets) != 2 {
		t.Fatalf("drive buckets wrong: %+v", ie)
	}
	if ie.BaselineDriveUS != 1.0 {
		t.Fatalf("baseline = %vµs, want 1µs", ie.BaselineDriveUS)
	}
	// 3 fast queries × (1000 − 100)ns saved each.
	if ie.SavedNS != 2700 {
		t.Fatalf("saved = %dns, want 2700", ie.SavedNS)
	}
	if want := 2700.0 / 5000.0; ie.ROI != want {
		t.Fatalf("roi = %v, want %v", ie.ROI, want)
	}
	if snap.InvestedNS != 5000 || snap.SavedNS != 2700 {
		t.Fatalf("snapshot totals wrong: %+v", snap)
	}
}

// TestLedgerNeverInventsBenefit: with every drive in one bucket (no
// refinement, e.g. scan or plain adaptive mode) the savings are zero,
// and a regression (slower at high convergence) clamps at zero rather
// than going negative.
func TestLedgerNeverInventsBenefit(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.NoteDrive("flat", 500)
	}
	if ie := e.Snapshot().Indexes[0]; ie.SavedNS != 0 || ie.ROI != 0 {
		t.Fatalf("flat workload invented benefit: %+v", ie)
	}
	e.NoteDrive("worse", 100)
	e.NoteRefined("worse", 1000, 1, 0.99)
	e.NoteDrive("worse", 900) // slower after refinement
	for _, ie := range e.Snapshot().Indexes {
		if ie.Name == "worse" && ie.SavedNS != 0 {
			t.Fatalf("negative delta must clamp to zero: %+v", ie)
		}
	}
}

// TestNilEconIsInert: every recording method and the snapshot must be
// safe on a nil receiver, so hot paths can call unconditionally.
func TestNilEconIsInert(t *testing.T) {
	var e *Econ
	e.NotePredicate("x", 0, 10, 0, 100)
	e.NoteDrive("x", 42)
	e.NoteRefined("x", 1, 1, 0.5)
	e.NoteRefinePivot("x", 5, 0, 100)
	if e.TotalInvestedNS() != 0 {
		t.Fatal("nil econ reported invested time")
	}
	if e.Snapshot() != nil {
		t.Fatal("nil econ must snapshot to nil")
	}
}

// TestRecordingAllocationFree gates the steady-state recording paths
// at 0 allocs/op (the first-sight intern is the only allocating step,
// and it happens once per attribute).
func TestRecordingAllocationFree(t *testing.T) {
	e := New()
	e.NotePredicate("x", 0, 10, 0, 9999)
	e.NoteDrive("x", 100)
	e.NoteRefined("x", 10, 1, 0.5)
	e.NoteRefinePivot("x", 7, 0, 9999)
	if a := testing.AllocsPerRun(200, func() {
		e.NotePredicate("x", 5, 500, 0, 9999)
		e.NoteDrive("x", 123)
		e.NoteRefined("x", 17, 1, 0.6)
		e.NoteRefinePivot("x", 42, 0, 9999)
	}); a > 0 {
		t.Fatalf("econ recording allocates %.1f times per op, want 0", a)
	}
}

// TestConvBucket pins the ratio→bucket mapping edge cases.
func TestConvBucket(t *testing.T) {
	cases := []struct {
		p    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.124, 0}, {0.125, 1}, {0.5, 4},
		{0.99, 7}, {1.0, 7}, {2.0, 7},
	}
	for _, c := range cases {
		if got := convBucket(c.p); got != c.want {
			t.Errorf("convBucket(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	nan := convBucket(float64(0) / func() float64 { return 0 }())
	if nan != 0 {
		t.Errorf("convBucket(NaN) = %d, want 0", nan)
	}
}
