package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func fillTrace(tr *QueryTrace) {
	tr.Seq, tr.Kind, tr.Mode, tr.Rows = 7, KindCount, "holistic", 1000
	tr.Rep, tr.RepReason = "bitmap", "policy auto: estimated selectivity above crossover"
	tr.BeginSide("")
	tr.AddConjunct("a", 10, 20, 120, true)
	tr.AddConjunct("b", 0, 500, 480, false)
	tr.SetCum(0, 118)
	tr.SetCum(1, 60)
	tr.Stage("drive", time.Now().Add(-time.Millisecond))
	tr.SetStat("key_span", 42)
	tr.Scanned, tr.Emitted, tr.Result, tr.TotalNanos = 118, 60, 60, 123456
}

func TestTracePoolReset(t *testing.T) {
	tr := GetTrace()
	fillTrace(tr)
	PutTrace(tr)
	got := GetTrace()
	defer PutTrace(got)
	// The pool may hand back a different instance; whatever comes out
	// must be fully reset.
	if got.Seq != 0 || got.Kind != "" || len(got.Conjuncts) != 0 || len(got.Stages) != 0 ||
		len(got.Stat) != 0 || got.Scanned != 0 || got.Result != 0 || got.Err != "" {
		t.Fatalf("pooled trace not reset: %+v", got)
	}
	if got.Stat == nil {
		t.Fatal("pooled trace lost its stat map")
	}
}

func TestTraceSideScoping(t *testing.T) {
	tr := NewTrace()
	tr.BeginSide("left")
	tr.AddConjunct("l0", 0, 10, 5, true)
	tr.AddConjunct("l1", 0, 99, 50, false)
	tr.SetCum(0, 4)
	tr.BeginSide("right")
	tr.AddConjunct("r0", 5, 6, 1, true)
	tr.SetCum(0, 2)
	if len(tr.Conjuncts) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(tr.Conjuncts))
	}
	if tr.Conjuncts[0].Side != "left" || tr.Conjuncts[0].CumRows != 4 {
		t.Fatalf("left conjunct 0 wrong: %+v", tr.Conjuncts[0])
	}
	if tr.Conjuncts[2].Side != "right" || tr.Conjuncts[2].CumRows != 2 {
		t.Fatalf("right conjunct wrong: %+v", tr.Conjuncts[2])
	}
	// Out-of-range SetCum must be a no-op, not a panic.
	tr.SetCum(99, 1)
}

func TestTraceString(t *testing.T) {
	tr := NewTrace()
	fillTrace(tr)
	tr.Conjuncts[0].ActualRows = 117
	s := tr.String()
	for _, want := range []string{
		"count query", "holistic", "representation: bitmap",
		"conjunct a in [10,20)", "driving", "actual 117",
		"surviving 60", "stat key_span = 42.000", "result 60",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				tr := GetTrace()
				fillTrace(tr)
				tr.Seq = uint64(i*100 + j)
				sink.Emit(tr)
				PutTrace(tr)
			}
		}(i)
	}
	wg.Wait()
	// Emit buffers; the stream is complete only after a flush.
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		for _, key := range []string{"seq", "kind", "mode", "rows", "conjuncts", "result", "total_ns"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("line %d missing %q: %v", lines, key, m)
			}
		}
		if _, ok := m["curBase"]; ok {
			t.Fatal("unexported bookkeeping leaked into JSON")
		}
	}
	if lines != 100 {
		t.Fatalf("got %d JSONL lines, want 100", lines)
	}
}

// nopWriteCloser adapts a bytes.Buffer into a rotation target.
type nopWriteCloser struct {
	*bytes.Buffer
	closed *bool
}

func (w nopWriteCloser) Close() error {
	if w.closed != nil {
		*w.closed = true
	}
	return nil
}

func TestJSONLSinkRotation(t *testing.T) {
	var first, second bytes.Buffer
	firstClosed := false
	sink := NewJSONLSinkOptions(nopWriteCloser{&first, &firstClosed}, SinkOptions{
		MaxBytes: 1, // every line overflows: rotate after each Emit
		Rotate: func() (io.WriteCloser, error) {
			return nopWriteCloser{&second, nil}, nil
		},
	})
	tr := GetTrace()
	fillTrace(tr)
	sink.Emit(tr)
	sink.Emit(tr)
	PutTrace(tr)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	st := sink.Snapshot()
	if st.Rotations < 1 {
		t.Fatalf("rotations = %d, want >= 1", st.Rotations)
	}
	if st.Lines != 2 {
		t.Fatalf("lines = %d, want 2", st.Lines)
	}
	if !firstClosed {
		t.Fatal("rotation did not close the previous target")
	}
	if first.Len() == 0 || second.Len() == 0 {
		t.Fatalf("rotation did not split the stream: first %d bytes, second %d", first.Len(), second.Len())
	}
	for i, buf := range []*bytes.Buffer{&first, &second} {
		var m map[string]any
		if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
			t.Fatalf("target %d does not hold one complete JSON line: %v", i, err)
		}
	}
}

// failingWriter errors every write, simulating a full or broken disk.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLSinkWriteErrorsSurface(t *testing.T) {
	sink := NewJSONLSink(failingWriter{})
	tr := GetTrace()
	fillTrace(tr)
	sink.Emit(tr)
	PutTrace(tr)
	if err := sink.Flush(); err == nil {
		t.Fatal("Flush on a failing writer returned nil")
	}
	if st := sink.Snapshot(); st.Errors < 1 {
		t.Fatalf("write errors = %d, want >= 1", st.Errors)
	}
	// A failing stream must never panic or fail queries: Emit again.
	tr = GetTrace()
	fillTrace(tr)
	sink.Emit(tr)
	PutTrace(tr)
	if err := sink.Close(); err == nil {
		t.Fatal("Close on a failing writer returned nil")
	}
}

func TestTraceMutatorsAllocFree(t *testing.T) {
	tr := NewTrace()
	fillTrace(tr) // pre-grow slices and map
	start := time.Now()
	if a := testing.AllocsPerRun(200, func() {
		tr.Reset()
		tr.BeginSide("left")
		tr.AddConjunct("a", 10, 20, 120, true)
		tr.SetCum(0, 118)
		tr.Stage("drive", start)
		tr.SetStat("key_span", 42)
	}); a > 0 {
		t.Fatalf("trace mutators allocate %.1f times per op, want 0", a)
	}
}
