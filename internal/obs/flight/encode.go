package flight

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"holistic/internal/obs"
)

// Dump wire format, all little-endian, framed exactly like the
// durable manifest: [u32 payload len][u32 crc32c(payload)][payload].
//
//	payload := header | count x 64-byte event | names
//	header  := magic u32 | version u32 | trigger u32 | eventSize u32 |
//	           count u64 | generation u64 | epochUnixNano i64 |
//	           wallUnixNano i64                        (48 bytes)
//	event   := seq u64 | t i64 | kind u8 | code u8 | pad u16 |
//	           id u32 | args 5 x i64                  (64 bytes)
//	names   := count u32 | (len u32 | bytes)...
const (
	dumpMagic     = uint32('H') | uint32('F')<<8 | uint32('R')<<16 | uint32('1')<<24
	dumpVersion   = 1
	dumpEventSize = 64
	dumpHeaderLen = 48
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func f64bits(f float64) uint64  { return math.Float64bits(f) }
func f64from(u int64) float64   { return math.Float64frombits(uint64(u)) }
func usFromNS(ns int64) float64 { return float64(ns) / 1e3 }

// Dump is one decoded flight-recorder dump.
type Dump struct {
	Version       uint32
	Trigger       Trigger
	Generation    uint64
	EpochUnixNano int64
	WallUnixNano  int64
	Events        []Event
	Names         []string // interned id -> attribute name
}

// Encode snapshots the ring and serializes it as a checksummed dump
// payload ready to be written to a flight-<gen> file or an io.Writer.
func Encode(r *Recorder, trig Trigger, gen uint64) []byte {
	events := r.Snapshot()
	names := r.Names()
	nameBytes := 4
	for _, n := range names {
		nameBytes += 4 + len(n)
	}
	payload := make([]byte, 0, dumpHeaderLen+len(events)*dumpEventSize+nameBytes)
	payload = binary.LittleEndian.AppendUint32(payload, dumpMagic)
	payload = binary.LittleEndian.AppendUint32(payload, dumpVersion)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(trig))
	payload = binary.LittleEndian.AppendUint32(payload, dumpEventSize)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(events)))
	payload = binary.LittleEndian.AppendUint64(payload, gen)
	var epoch int64
	if r != nil {
		epoch = r.epoch.UnixNano()
	}
	payload = binary.LittleEndian.AppendUint64(payload, uint64(epoch))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(time.Now().UnixNano()))
	for _, e := range events {
		payload = binary.LittleEndian.AppendUint64(payload, e.Seq)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(e.T))
		payload = append(payload, byte(e.Kind), e.Code, 0, 0)
		payload = binary.LittleEndian.AppendUint32(payload, e.ID)
		for _, a := range e.Args {
			payload = binary.LittleEndian.AppendUint64(payload, uint64(a))
		}
	}
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(names)))
	for _, n := range names {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(n)))
		payload = append(payload, n...)
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// Decode validates the frame checksum and parses a dump produced by
// Encode. Any truncation, bit flip, or torn write fails loudly.
func Decode(data []byte) (*Dump, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("flight: dump truncated (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if uint64(8+n) != uint64(len(data)) {
		return nil, fmt.Errorf("flight: dump length mismatch: frame says %d, have %d", n, len(data)-8)
	}
	payload := data[8:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("flight: dump checksum mismatch")
	}
	if len(payload) < dumpHeaderLen {
		return nil, fmt.Errorf("flight: dump header truncated")
	}
	if binary.LittleEndian.Uint32(payload) != dumpMagic {
		return nil, fmt.Errorf("flight: bad magic")
	}
	d := &Dump{
		Version:       binary.LittleEndian.Uint32(payload[4:]),
		Trigger:       Trigger(binary.LittleEndian.Uint32(payload[8:])),
		EpochUnixNano: int64(binary.LittleEndian.Uint64(payload[32:])),
		WallUnixNano:  int64(binary.LittleEndian.Uint64(payload[40:])),
	}
	if d.Version != dumpVersion {
		return nil, fmt.Errorf("flight: unsupported dump version %d", d.Version)
	}
	if sz := binary.LittleEndian.Uint32(payload[12:]); sz != dumpEventSize {
		return nil, fmt.Errorf("flight: unsupported event size %d", sz)
	}
	count := binary.LittleEndian.Uint64(payload[16:])
	d.Generation = binary.LittleEndian.Uint64(payload[24:])
	body := payload[dumpHeaderLen:]
	need := count * dumpEventSize
	if uint64(len(body)) < need {
		return nil, fmt.Errorf("flight: dump body truncated: %d events need %d bytes, have %d", count, need, len(body))
	}
	d.Events = make([]Event, count)
	for i := range d.Events {
		rec := body[uint64(i)*dumpEventSize:]
		e := &d.Events[i]
		e.Seq = binary.LittleEndian.Uint64(rec)
		e.T = int64(binary.LittleEndian.Uint64(rec[8:]))
		e.Kind = Kind(rec[16])
		e.Code = rec[17]
		e.ID = binary.LittleEndian.Uint32(rec[20:])
		for j := range e.Args {
			e.Args[j] = int64(binary.LittleEndian.Uint64(rec[24+8*j:]))
		}
	}
	rest := body[need:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("flight: name table truncated")
	}
	nNames := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	d.Names = make([]string, 0, nNames)
	for i := uint32(0); i < nNames; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("flight: name %d truncated", i)
		}
		l := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(len(rest)) < uint64(l) {
			return nil, fmt.Errorf("flight: name %d truncated", i)
		}
		d.Names = append(d.Names, string(rest[:l]))
		rest = rest[l:]
	}
	return d, nil
}

// Fields renders an event as a flat JSON-friendly map for the
// /debug/holistic/flight endpoint and dump inspection tools. names is
// the intern table for EvRefine attribute resolution (may be nil).
func (e Event) Fields(names []string) map[string]any {
	f := map[string]any{
		"seq":  e.Seq,
		"t_us": usFromNS(e.T),
		"kind": e.Kind.String(),
	}
	switch e.Kind {
	case EvQuery:
		f["op"] = obs.Op(e.Code).String()
		f["query_seq"] = e.Args[0]
		f["total_us"] = usFromNS(e.Args[1])
		f["drive_us"] = usFromNS(e.Args[2])
		f["refine_us"] = usFromNS(e.Args[3])
		f["result"] = e.Args[4]
	case EvRep:
		f["rep"] = obs.Rep(e.Code).String()
		f["query_seq"] = e.Args[0]
		f["est_driving_rows"] = e.Args[1]
		f["conjuncts"] = e.Args[2]
	case EvStrategy:
		f["strategy"] = obs.Strat(e.Code).String()
		f["query_seq"] = e.Args[0]
		f["stat0"] = f64from(e.Args[1])
		f["stat1"] = f64from(e.Args[2])
	case EvRefine:
		name := "?"
		if int(e.ID) < len(names) {
			name = names[e.ID]
		}
		f["attr"] = name
		f["refined"] = e.Args[0]
		f["merged_updates"] = e.Args[1]
		f["attempts"] = e.Args[2]
		f["distance"] = f64from(e.Args[3])
		f["pieces"] = e.Args[4]
	case EvCycle:
		f["cycle"] = e.Args[0]
		f["workers"] = e.Args[1]
		f["refinements"] = e.Args[2]
		f["merged_updates"] = e.Args[3]
		f["wall_us"] = usFromNS(e.Args[4])
	case EvWALRotate:
		f["generation"] = e.Args[0]
		f["part"] = e.Args[1]
	case EvCheckpoint:
		f["generation"] = e.Args[0]
		f["records"] = e.Args[1]
		f["duration_us"] = usFromNS(e.Args[2])
	case EvRecovery:
		f["generation"] = e.Args[0]
		f["replayed_records"] = e.Args[1]
		f["torn_wal_tail"] = e.Args[2] != 0
		f["restored_indexes"] = e.Args[3]
		f["dropped_indexes"] = e.Args[4]
	case EvAnomaly:
		f["trigger"] = Trigger(e.Code).String()
		f["window_p99_us"] = usFromNS(e.Args[0])
		f["baseline_p99_us"] = usFromNS(e.Args[1])
		f["convergence_ratio"] = f64from(e.Args[2])
		f["worker_panics"] = e.Args[3]
		f["window_samples"] = e.Args[4]
	}
	return f
}
