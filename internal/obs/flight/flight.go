// Package flight is the black-box flight recorder: a bounded,
// lock-free ring of fixed-layout binary events capturing the adaptive
// decisions — representation and strategy choices with their stat
// inputs, holistic-daemon refinement steps, WAL/checkpoint lifecycle —
// and per-query timings that led up to an anomaly or crash. Recording
// is wait-free and allocation-free; reading (Snapshot/Encode) is a
// cold-path operation that tolerates concurrent writers by discarding
// torn slots.
//
// The package sits beside the telemetry core: it imports obs (for the
// histogram digests the watchdog consumes) and nothing else internal,
// so every layer — query runner, daemon, durability — can record into
// it without import cycles.
package flight

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies the event family. The zero value is reserved as
// "never written" so unused ring slots are self-describing.
type Kind uint8

const (
	// EvQuery is one terminal query: code is the obs.Op, args are
	// [query seq, total ns, drive ns, refine ns, result].
	EvQuery Kind = 1 + iota
	// EvRep is a representation decision: code is the obs.Rep, args
	// are [query seq, estimated driving rows, conjuncts].
	EvRep
	// EvStrategy is a physical strategy decision: code is the
	// obs.Strat, args are [query seq, stat0, stat1] where stat0/stat1
	// are the float64 bit patterns of the two dominant decision inputs
	// (key-order span and selected rows for grouping; left and right
	// key-order spans for joins).
	EvStrategy
	// EvRefine is one holistic idle refinement: id is the interned
	// attribute name, args are [refined, merged updates, attempts,
	// distance-to-optimal bits, pieces].
	EvRefine
	// EvCycle is one daemon cycle: args are [cycle, workers,
	// refinements, merged updates, wall ns].
	EvCycle
	// EvWALRotate is a WAL segment rotation: args are [generation,
	// part].
	EvWALRotate
	// EvCheckpoint is a committed snapshot generation: args are
	// [generation, records since previous, duration ns].
	EvCheckpoint
	// EvRecovery is one boot-time recovery: args are [generation,
	// replayed records, torn tail (0/1), restored indexes, dropped
	// indexes].
	EvRecovery
	// EvAnomaly is a watchdog trigger: code is the Trigger, args are
	// [window p99 ns, baseline p99 ns, convergence ratio bits, worker
	// panics, window samples].
	EvAnomaly
)

var kindNames = [...]string{
	EvQuery:      "query",
	EvRep:        "rep",
	EvStrategy:   "strategy",
	EvRefine:     "refine",
	EvCycle:      "cycle",
	EvWALRotate:  "wal_rotate",
	EvCheckpoint: "checkpoint",
	EvRecovery:   "recovery",
	EvAnomaly:    "anomaly",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// slot is one ring entry. Every field is atomic so concurrent
// record/snapshot stays race-detector clean; seq is the publication
// stamp (stored last, cleared first) that lets readers detect torn
// slots. The layout is exactly 64 bytes: one cache line per event.
type slot struct {
	seq  atomic.Uint64
	t    atomic.Int64
	meta atomic.Uint64 // kind<<40 | code<<32 | id
	args [5]atomic.Int64
}

// Event is one decoded flight-recorder event.
type Event struct {
	Seq  uint64
	T    int64 // nanoseconds since the recorder's epoch
	Kind Kind
	Code uint8
	ID   uint32
	Args [5]int64
}

// DefaultEvents is the ring capacity used when none is configured:
// 4096 events x 64 bytes = 256 KiB of history.
const DefaultEvents = 4096

// Recorder is the lock-free event ring. The zero value is unusable;
// construct with NewRecorder. A nil *Recorder is a valid no-op target
// for every Record method, so call sites need no enable checks.
type Recorder struct {
	epoch time.Time
	mask  uint64
	head  atomic.Uint64 // last claimed sequence number; 0 = empty
	slots []slot

	internMu sync.Mutex
	internID map[string]uint32
	names    atomic.Pointer[[]string] // id -> name, copy-on-write
}

// NewRecorder returns a recorder holding the most recent `events`
// entries (rounded up to a power of two, minimum 64). events <= 0
// selects DefaultEvents.
func NewRecorder(events int) *Recorder {
	if events <= 0 {
		events = DefaultEvents
	}
	capacity := 64
	for capacity < events {
		capacity <<= 1
	}
	r := &Recorder{
		epoch:    time.Now(),
		mask:     uint64(capacity - 1),
		slots:    make([]slot, capacity),
		internID: make(map[string]uint32),
	}
	names := []string{"?"} // id 0 = unknown
	r.names.Store(&names)
	return r
}

// Cap returns the ring capacity in events.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Head returns the sequence number of the most recently claimed event;
// events with Seq <= Head() have been recorded (though the oldest may
// have been overwritten).
func (r *Recorder) Head() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// record claims the next slot and publishes one event. The slot's
// stamp is cleared before the payload is written and set after, so a
// concurrent Snapshot either sees the complete event or skips it.
//
//holistic:noalloc
func (r *Recorder) record(kind Kind, code uint8, id uint32, a0, a1, a2, a3, a4 int64) {
	if r == nil {
		return
	}
	t := time.Since(r.epoch).Nanoseconds()
	seq := r.head.Add(1)
	s := &r.slots[seq&r.mask]
	s.seq.Store(0)
	s.t.Store(t)
	s.meta.Store(uint64(kind)<<40 | uint64(code)<<32 | uint64(id))
	s.args[0].Store(a0)
	s.args[1].Store(a1)
	s.args[2].Store(a2)
	s.args[3].Store(a3)
	s.args[4].Store(a4)
	s.seq.Store(seq)
}

// RecordQuery records one terminal query with its per-stage split.
//
//holistic:noalloc
func (r *Recorder) RecordQuery(op uint8, qseq uint64, totalNS, driveNS, refineNS, result int64) {
	r.record(EvQuery, op, 0, int64(qseq), totalNS, driveNS, refineNS, result)
}

// RecordRep records a representation decision and its estimate input.
//
//holistic:noalloc
func (r *Recorder) RecordRep(rep uint8, qseq uint64, estDriving int64, conjuncts int64) {
	r.record(EvRep, rep, 0, int64(qseq), estDriving, conjuncts, 0, 0)
}

// RecordStrategy records a physical strategy decision with the two
// dominant stat inputs as float64 bit patterns.
//
//holistic:noalloc
func (r *Recorder) RecordStrategy(strat uint8, qseq uint64, stat0, stat1 float64) {
	r.record(EvStrategy, strat, 0, int64(qseq), int64(f64bits(stat0)), int64(f64bits(stat1)), 0, 0)
}

// RecordRefine records one idle refinement of the attribute with
// interned id.
//
//holistic:noalloc
func (r *Recorder) RecordRefine(id uint32, refined, merged, attempts int64, distance float64, pieces int64) {
	r.record(EvRefine, 0, id, refined, merged, attempts, int64(f64bits(distance)), pieces)
}

// RecordCycle records one completed daemon cycle.
//
//holistic:noalloc
func (r *Recorder) RecordCycle(cycle, workers, refinements, merged, wallNS int64) {
	r.record(EvCycle, 0, 0, cycle, workers, refinements, merged, wallNS)
}

// RecordWALRotate records a WAL segment rotation.
//
//holistic:noalloc
func (r *Recorder) RecordWALRotate(gen, part int64) {
	r.record(EvWALRotate, 0, 0, gen, part, 0, 0, 0)
}

// RecordCheckpoint records a committed snapshot generation.
//
//holistic:noalloc
func (r *Recorder) RecordCheckpoint(gen, records, durNS int64) {
	r.record(EvCheckpoint, 0, 0, gen, records, durNS, 0, 0)
}

// RecordRecovery records a boot-time recovery result.
//
//holistic:noalloc
func (r *Recorder) RecordRecovery(gen, replayed int64, torn bool, restored, dropped int64) {
	t := int64(0)
	if torn {
		t = 1
	}
	r.record(EvRecovery, 0, 0, gen, replayed, t, restored, dropped)
}

// RecordAnomaly records a watchdog trigger.
//
//holistic:noalloc
func (r *Recorder) RecordAnomaly(trig Trigger, p99NS, baseNS int64, conv float64, panics, samples int64) {
	r.record(EvAnomaly, uint8(trig), 0, p99NS, baseNS, int64(f64bits(conv)), panics, samples)
}

// Intern maps an attribute name to a stable id for EvRefine events.
// It allocates on first sight of a name (cold path); the id->name
// table is copy-on-write so decoding never takes the lock.
func (r *Recorder) Intern(name string) uint32 {
	if r == nil {
		return 0
	}
	r.internMu.Lock()
	defer r.internMu.Unlock()
	if id, ok := r.internID[name]; ok {
		return id
	}
	old := *r.names.Load()
	id := uint32(len(old))
	r.internID[name] = id
	next := make([]string, len(old)+1)
	copy(next, old)
	next[id] = name
	r.names.Store(&next)
	return id
}

// Names returns the intern table (id -> name). The returned slice is
// immutable.
func (r *Recorder) Names() []string {
	if r == nil {
		return nil
	}
	return *r.names.Load()
}

// Name resolves an interned id; unknown ids return "?".
func (r *Recorder) Name(id uint32) string {
	names := r.Names()
	if int(id) < len(names) {
		return names[id]
	}
	return "?"
}

// Snapshot returns the ring's current contents in sequence order,
// oldest first. Slots being concurrently overwritten are skipped; the
// result is therefore a consistent (possibly slightly shorter) view of
// the most recent events.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	head := r.head.Load()
	if head == 0 {
		return nil
	}
	capacity := uint64(len(r.slots))
	lo := uint64(1)
	if head > capacity {
		lo = head - capacity + 1
	}
	events := make([]Event, 0, head-lo+1)
	for seq := lo; seq <= head; seq++ {
		s := &r.slots[seq&r.mask]
		if s.seq.Load() != seq {
			continue // torn or already overwritten
		}
		var e Event
		e.Seq = seq
		e.T = s.t.Load()
		meta := s.meta.Load()
		for i := range e.Args {
			e.Args[i] = s.args[i].Load()
		}
		if s.seq.Load() != seq {
			continue // overwritten mid-read
		}
		e.Kind = Kind(meta >> 40)
		e.Code = uint8(meta >> 32)
		e.ID = uint32(meta)
		events = append(events, e)
	}
	return events
}
