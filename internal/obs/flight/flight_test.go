package flight

import (
	"sync"
	"testing"
	"time"

	"holistic/internal/obs"
)

func TestRecorderRoundtrip(t *testing.T) {
	r := NewRecorder(128)
	r.RecordQuery(uint8(obs.OpCount), 7, 1500, 900, 400, 42)
	r.RecordRep(uint8(obs.RepBitmap), 7, 1000, 3)
	r.RecordStrategy(uint8(obs.StratGroupSort), 7, 1.5, 2048)
	id := r.Intern("orders.total")
	r.RecordRefine(id, 2, 5, 3, 123.5, 17)

	ev := r.Snapshot()
	if len(ev) != 4 {
		t.Fatalf("Snapshot returned %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	q := ev[0]
	if q.Kind != EvQuery || q.Code != uint8(obs.OpCount) {
		t.Errorf("event 0 = %v/%d, want query/count", q.Kind, q.Code)
	}
	if q.Args != [5]int64{7, 1500, 900, 400, 42} {
		t.Errorf("query args = %v", q.Args)
	}
	ref := ev[3]
	if ref.Kind != EvRefine || ref.ID != id {
		t.Errorf("event 3 = %v id=%d, want refine id=%d", ref.Kind, ref.ID, id)
	}
	if got := r.Name(ref.ID); got != "orders.total" {
		t.Errorf("Name(%d) = %q", ref.ID, got)
	}
	f := ref.Fields(r.Names())
	if f["attr"] != "orders.total" || f["distance"] != 123.5 {
		t.Errorf("refine fields = %v", f)
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(64) // minimum capacity
	const total = 1000
	for i := int64(1); i <= total; i++ {
		r.RecordCycle(i, 1, 0, 0, 0)
	}
	ev := r.Snapshot()
	if len(ev) != 64 {
		t.Fatalf("Snapshot after wrap returned %d events, want 64", len(ev))
	}
	for i, e := range ev {
		want := uint64(total - 64 + i + 1)
		if e.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d", i, e.Seq, want)
		}
		if e.Args[0] != int64(want) {
			t.Fatalf("event %d cycle = %d, want %d", i, e.Args[0], want)
		}
	}
	if r.Head() != total {
		t.Errorf("Head = %d, want %d", r.Head(), total)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.RecordQuery(0, 1, 2, 3, 4, 5)
	r.RecordAnomaly(TriggerP99, 1, 2, 0.5, 0, 10)
	if r.Intern("x") != 0 || r.Cap() != 0 || r.Head() != 0 {
		t.Error("nil recorder should intern to 0 and report empty")
	}
	if ev := r.Snapshot(); ev != nil {
		t.Errorf("nil Snapshot = %v", ev)
	}
	if data := Encode(r, TriggerManual, 0); data == nil {
		t.Error("Encode(nil) should still produce a valid empty dump")
	} else if d, err := Decode(data); err != nil || len(d.Events) != 0 {
		t.Errorf("Decode(Encode(nil)) = %v, %v", d, err)
	}
}

func TestConcurrentRecordSnapshot(t *testing.T) {
	r := NewRecorder(128)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.RecordQuery(uint8(obs.OpCount), uint64(i), i, i, i, i)
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		ev := r.Snapshot()
		last := uint64(0)
		for _, e := range ev {
			if e.Seq <= last {
				t.Fatalf("Snapshot out of order: %d after %d", e.Seq, last)
			}
			last = e.Seq
			if e.Kind != EvQuery {
				t.Fatalf("torn event leaked: kind %v seq %d", e.Kind, e.Seq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	r := NewRecorder(64)
	r.RecordRecovery(3, 120, true, 4, 1)
	r.RecordCheckpoint(4, 120, 5_000_000)
	id := r.Intern("a")
	r.RecordRefine(id, 1, 0, 2, 64.0, 9)
	r.RecordAnomaly(TriggerP99, 9_000_000, 1_000_000, 0.75, 0, 100)

	data := Encode(r, TriggerP99, 4)
	d, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Trigger != TriggerP99 || d.Generation != 4 || d.Version != 1 {
		t.Errorf("header = trigger %v gen %d version %d", d.Trigger, d.Generation, d.Version)
	}
	if len(d.Events) != 4 {
		t.Fatalf("decoded %d events, want 4", len(d.Events))
	}
	live := r.Snapshot()
	for i := range live {
		if d.Events[i] != live[i] {
			t.Errorf("event %d: decoded %+v != live %+v", i, d.Events[i], live[i])
		}
	}
	if len(d.Names) != 2 || d.Names[1] != "a" {
		t.Errorf("names = %v", d.Names)
	}
	if f := d.Events[3].Fields(d.Names); f["trigger"] != "p99_slo" {
		t.Errorf("anomaly fields = %v", f)
	}
	if d.WallUnixNano == 0 || d.EpochUnixNano == 0 {
		t.Error("timestamps not set")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := NewRecorder(64)
	for i := int64(0); i < 10; i++ {
		r.RecordCheckpoint(i, 1, 1)
	}
	data := Encode(r, TriggerCheckpoint, 1)
	if _, err := Decode(data); err != nil {
		t.Fatalf("clean decode failed: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip-header", func(b []byte) []byte { b[9]++; return b }},
		{"bitflip-event", func(b []byte) []byte { b[len(b)-20]++; return b }},
		{"extended", func(b []byte) []byte { return append(b, 0) }},
	} {
		buf := append([]byte(nil), data...)
		if _, err := Decode(tc.mut(buf)); err == nil {
			t.Errorf("%s: Decode accepted corrupt dump", tc.name)
		}
	}
}

func TestRecordAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	r := NewRecorder(256)
	id := r.Intern("warm") // intern before measuring: first sight allocates
	allocs := testing.AllocsPerRun(200, func() {
		r.RecordQuery(uint8(obs.OpSum), 1, 100, 60, 40, 7)
		r.RecordRep(uint8(obs.RepPosList), 1, 50, 2)
		r.RecordStrategy(uint8(obs.StratJoinMerge), 1, 1.0, 2.0)
		r.RecordRefine(id, 1, 1, 1, 0.5, 3)
		r.RecordCycle(1, 2, 3, 4, 5)
		r.RecordWALRotate(1, 2)
		r.RecordCheckpoint(1, 2, 3)
		r.RecordAnomaly(TriggerPanic, 1, 2, 0.1, 1, 10)
	})
	if allocs > 0 {
		t.Errorf("recording allocates %.1f per run, want 0", allocs)
	}
}

func observeHist(w *Watchdog, h *obs.Histogram, conv float64, haveConv bool, panics int64) Verdict {
	var s obs.HistSnapshot
	h.Snapshot(&s)
	return w.Observe(Observation{Latency: &s, Convergence: conv, HaveConvergence: haveConv, WorkerPanics: panics})
}

func TestWatchdogP99Baseline(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{SLOMultiple: 3, MinSamples: 10, Cooldown: time.Hour})
	var h obs.Histogram
	// Three healthy windows around 1ms establish the baseline.
	for win := 0; win < 3; win++ {
		for i := 0; i < 100; i++ {
			h.RecordNanos(1_000_000)
		}
		if v := observeHist(w, &h, 0, false, 0); v.Trigger != TriggerNone {
			t.Fatalf("healthy window %d triggered %v", win, v.Trigger)
		}
	}
	st := w.State()
	if st.BaselineP99US < 500 || st.BaselineP99US > 2000 {
		t.Fatalf("baseline = %.0fus, want ~1000us", st.BaselineP99US)
	}
	// A 10x spike breaches the 3x multiple.
	for i := 0; i < 100; i++ {
		h.RecordNanos(10_000_000)
	}
	v := observeHist(w, &h, 0, false, 0)
	if v.Trigger != TriggerP99 || !v.Dump {
		t.Fatalf("spike verdict = %+v, want p99 dump", v)
	}
	// Second spike within the cooldown is counted but not dumped.
	for i := 0; i < 100; i++ {
		h.RecordNanos(10_000_000)
	}
	v = observeHist(w, &h, 0, false, 0)
	if v.Trigger != TriggerP99 || v.Dump {
		t.Fatalf("cooldown verdict = %+v, want suppressed", v)
	}
	st = w.State()
	if st.Anomalies != 2 || st.Suppressed != 1 || st.LastTrigger != "p99_slo" {
		t.Errorf("state = %+v", st)
	}
}

func TestWatchdogAbsoluteSLO(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{AbsoluteP99: time.Millisecond, MinSamples: 5})
	var h obs.Histogram
	for i := 0; i < 50; i++ {
		h.RecordNanos(5_000_000)
	}
	// No baseline yet, but the absolute bound fires on the first
	// judged window.
	if v := observeHist(w, &h, 0, false, 0); v.Trigger != TriggerP99 || !v.Dump {
		t.Fatalf("verdict = %+v, want absolute p99 dump", v)
	}
}

func TestWatchdogSmallWindowsNotJudged(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{AbsoluteP99: time.Microsecond, MinSamples: 32})
	var h obs.Histogram
	for i := 0; i < 10; i++ {
		h.RecordNanos(50_000_000)
	}
	if v := observeHist(w, &h, 0, false, 0); v.Trigger != TriggerNone {
		t.Fatalf("under-sampled window triggered %v", v.Trigger)
	}
}

func TestWatchdogConvergenceRegression(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{ConvergenceSlack: 0.05, Cooldown: time.Hour})
	if v := w.Observe(Observation{Convergence: 0.8, HaveConvergence: true}); v.Trigger != TriggerNone {
		t.Fatalf("first convergence reading triggered %v", v.Trigger)
	}
	if v := w.Observe(Observation{Convergence: 0.78, HaveConvergence: true}); v.Trigger != TriggerNone {
		t.Fatalf("within-slack regression triggered %v", v.Trigger)
	}
	v := w.Observe(Observation{Convergence: 0.5, HaveConvergence: true})
	if v.Trigger != TriggerConvergence || !v.Dump {
		t.Fatalf("regression verdict = %+v", v)
	}
}

func TestWatchdogPanicDelta(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Cooldown: time.Hour})
	if v := w.Observe(Observation{WorkerPanics: 0}); v.Trigger != TriggerNone {
		t.Fatalf("zero panics triggered %v", v.Trigger)
	}
	if v := w.Observe(Observation{WorkerPanics: 1}); v.Trigger != TriggerPanic {
		t.Fatalf("panic increment not detected: %+v", v)
	}
	if v := w.Observe(Observation{WorkerPanics: 1}); v.Trigger != TriggerPanic && v.Trigger != TriggerNone {
		t.Fatalf("stable panic count re-triggered: %+v", v)
	} else if v.Trigger == TriggerPanic {
		t.Fatal("stable panic count re-triggered")
	}
}

func TestWatchdogTornTail(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{})
	v := w.NoteTornTail()
	if v.Trigger != TriggerTornTail || !v.Dump {
		t.Fatalf("torn tail verdict = %+v", v)
	}
	w.NoteDump()
	st := w.State()
	if st.Anomalies != 1 || st.DumpsWritten != 1 || st.LastTrigger != "torn_wal_tail" {
		t.Errorf("state = %+v", st)
	}
}
