package flight

import (
	"sync"
	"time"

	"holistic/internal/obs"
)

// Trigger names the anomaly class that fired the watchdog.
type Trigger uint32

const (
	// TriggerNone marks a dump taken without an anomaly.
	TriggerNone Trigger = iota
	// TriggerManual is an on-demand Store.FlightDump.
	TriggerManual
	// TriggerCheckpoint is the periodic dump riding every snapshot
	// checkpoint, so a kill -9 always leaves a decodable black box.
	TriggerCheckpoint
	// TriggerP99 fired because the rolling window's p99 exceeded the
	// SLO multiple of the baseline or the absolute SLO bound.
	TriggerP99
	// TriggerConvergence fired because the daemon's convergence ratio
	// regressed below its best observed value.
	TriggerConvergence
	// TriggerPanic fired because daemon WorkerPanics incremented.
	TriggerPanic
	// TriggerTornTail fired because crash recovery found a torn WAL
	// tail at boot.
	TriggerTornTail
)

var triggerNames = [...]string{
	TriggerNone:        "none",
	TriggerManual:      "manual",
	TriggerCheckpoint:  "checkpoint",
	TriggerP99:         "p99_slo",
	TriggerConvergence: "convergence_regression",
	TriggerPanic:       "worker_panic",
	TriggerTornTail:    "torn_wal_tail",
}

func (t Trigger) String() string {
	if int(t) < len(triggerNames) {
		return triggerNames[t]
	}
	return "unknown"
}

// WatchdogConfig tunes the anomaly rules. The zero value selects the
// defaults documented on each field.
type WatchdogConfig struct {
	// SLOMultiple: window p99 > SLOMultiple x rolling baseline p99 is
	// an anomaly. <= 0 selects 4.
	SLOMultiple float64
	// AbsoluteP99: window p99 above this absolute bound is an anomaly
	// regardless of baseline. 0 disables the absolute rule.
	AbsoluteP99 time.Duration
	// MinSamples: windows with fewer observations are never judged
	// (they still feed the baseline). <= 0 selects 32.
	MinSamples uint64
	// ConvergenceSlack: convergence ratio more than this far below its
	// best observed value is a regression. <= 0 selects 0.05.
	ConvergenceSlack float64
	// Cooldown: minimum gap between anomaly-triggered dumps, bounding
	// dump storms while an incident is ongoing. <= 0 selects 30s.
	Cooldown time.Duration
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.SLOMultiple <= 0 {
		c.SLOMultiple = 4
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.ConvergenceSlack <= 0 {
		c.ConvergenceSlack = 0.05
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// Watchdog maintains rolling latency and convergence baselines from
// periodic observations and decides when the ring should be dumped.
// Latency baselines are built from HistSnapshot deltas: each Observe
// call passes the *cumulative* merged latency snapshot; the watchdog
// diffs it against the previous call's to get the window distribution,
// then folds the window p99 into an EWMA baseline.
type Watchdog struct {
	cfg WatchdogConfig

	mu          sync.Mutex
	prev        obs.HistSnapshot // last cumulative snapshot
	havePrev    bool
	baseline    float64 // EWMA of window p99, nanoseconds; 0 = unset
	windows     int64
	lastP99     float64 // last judged window's p99, nanoseconds
	lastSamples uint64
	bestConv    float64
	haveConv    bool
	lastPanics  int64
	anomalies   int64
	lastTrigger Trigger
	lastAnomaly time.Time
	suppressed  int64
	dumps       int64
}

// baselineAlpha is the EWMA weight of the newest window.
const baselineAlpha = 0.2

// NewWatchdog returns a watchdog with cfg (zero fields defaulted).
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	return &Watchdog{cfg: cfg.withDefaults()}
}

// Observation is one periodic reading of the system's health signals.
type Observation struct {
	// Latency is the cumulative merged latency snapshot across all
	// query operations. May be nil when no queries ran yet.
	Latency *obs.HistSnapshot
	// Convergence is the daemon's convergence ratio; valid only when
	// HaveConvergence is set (non-holistic modes have none).
	Convergence     float64
	HaveConvergence bool
	// WorkerPanics is the daemon's cumulative panic count.
	WorkerPanics int64
}

// Verdict is the outcome of one Observe call.
type Verdict struct {
	// Trigger is the anomaly class, TriggerNone when healthy.
	Trigger Trigger
	// Dump reports whether a dump should be written now (anomaly
	// detected and outside the cooldown window).
	Dump bool
	// WindowP99NS and BaselineP99NS describe the judged window.
	WindowP99NS   int64
	BaselineP99NS int64
	// Samples is the window observation count.
	Samples int64
	// Convergence echoes the observed ratio (when valid).
	Convergence float64
	// WorkerPanics echoes the cumulative panic count.
	WorkerPanics int64
}

// Observe folds one reading into the rolling baselines and returns the
// anomaly verdict. Anomalous windows do not poison the latency
// baseline.
func (w *Watchdog) Observe(o Observation) Verdict {
	w.mu.Lock()
	defer w.mu.Unlock()

	var v Verdict
	v.Convergence = o.Convergence
	v.WorkerPanics = o.WorkerPanics

	// Latency window: diff the cumulative snapshot against the
	// previous observation.
	var window obs.HistSnapshot
	haveWindow := false
	if o.Latency != nil {
		window = *o.Latency
		if w.havePrev {
			window.Diff(&w.prev)
		}
		w.prev = *o.Latency
		w.havePrev = true
		haveWindow = true
	}
	if haveWindow {
		v.Samples = int64(window.Count)
	}
	judged := haveWindow && window.Count >= w.cfg.MinSamples
	p99 := float64(0)
	if judged {
		p99 = float64(window.Quantile(0.99).Nanoseconds())
		v.WindowP99NS = int64(p99)
		v.BaselineP99NS = int64(w.baseline)
		w.lastP99 = p99
		w.lastSamples = window.Count
	}

	// Rule 1: daemon worker panicked since the last observation.
	if o.WorkerPanics > w.lastPanics {
		v.Trigger = TriggerPanic
	}
	w.lastPanics = o.WorkerPanics

	// Rule 2: convergence ratio regressed below its best.
	if v.Trigger == TriggerNone && o.HaveConvergence {
		if w.haveConv && o.Convergence+w.cfg.ConvergenceSlack < w.bestConv {
			v.Trigger = TriggerConvergence
		}
		if !w.haveConv || o.Convergence > w.bestConv {
			w.bestConv = o.Convergence
			w.haveConv = true
		}
	}

	// Rule 3: window p99 against the absolute SLO and the rolling
	// baseline multiple.
	if v.Trigger == TriggerNone && judged {
		if w.cfg.AbsoluteP99 > 0 && p99 > float64(w.cfg.AbsoluteP99.Nanoseconds()) {
			v.Trigger = TriggerP99
		} else if w.baseline > 0 && p99 > w.cfg.SLOMultiple*w.baseline {
			v.Trigger = TriggerP99
		}
	}

	// Fold healthy judged windows into the baseline.
	if judged && v.Trigger == TriggerNone {
		if w.baseline == 0 {
			w.baseline = p99
		} else {
			w.baseline += baselineAlpha * (p99 - w.baseline)
		}
	}
	if judged {
		w.windows++
	}

	if v.Trigger != TriggerNone {
		w.anomalies++
		w.lastTrigger = v.Trigger
		now := time.Now()
		if w.lastAnomaly.IsZero() || now.Sub(w.lastAnomaly) >= w.cfg.Cooldown {
			v.Dump = true
			w.lastAnomaly = now
		} else {
			w.suppressed++
		}
	}
	return v
}

// NoteTornTail records a boot-time torn-WAL-tail anomaly (always
// dump-worthy; cooldown does not apply to crash evidence).
func (w *Watchdog) NoteTornTail() Verdict {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.anomalies++
	w.lastTrigger = TriggerTornTail
	w.lastAnomaly = time.Now()
	return Verdict{Trigger: TriggerTornTail, Dump: true}
}

// NoteDump counts a written dump (any trigger).
func (w *Watchdog) NoteDump() {
	w.mu.Lock()
	w.dumps++
	w.mu.Unlock()
}

// State is the watchdog's JSON-friendly status for metrics and the
// flight endpoint.
type State struct {
	Windows         int64   `json:"windows"`
	BaselineP99US   float64 `json:"baseline_p99_us"`
	LastWindowP99US float64 `json:"last_window_p99_us"`
	LastSamples     uint64  `json:"last_window_samples"`
	BestConvergence float64 `json:"best_convergence,omitempty"`
	Anomalies       int64   `json:"anomalies"`
	Suppressed      int64   `json:"suppressed_dumps"`
	LastTrigger     string  `json:"last_trigger"`
	DumpsWritten    int64   `json:"dumps_written"`
	// DumpCooldownMS echoes the effective anomaly-dump cooldown, so
	// operators can see the pacing a suppressed count was judged under.
	DumpCooldownMS int64 `json:"dump_cooldown_ms"`
}

// State snapshots the watchdog.
func (w *Watchdog) State() State {
	if w == nil {
		return State{LastTrigger: TriggerNone.String()}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return State{
		Windows:         w.windows,
		BaselineP99US:   w.baseline / 1e3,
		LastWindowP99US: w.lastP99 / 1e3,
		LastSamples:     w.lastSamples,
		BestConvergence: w.bestConv,
		Anomalies:       w.anomalies,
		Suppressed:      w.suppressed,
		LastTrigger:     w.lastTrigger.String(),
		DumpsWritten:    w.dumps,
		DumpCooldownMS:  w.cfg.Cooldown.Milliseconds(),
	}
}
