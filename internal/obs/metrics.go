// Query and executor metrics: the per-runner latency/representation/
// strategy aggregates and the per-executor access-path counters behind
// Store.Metrics. Recording is lock-free (atomics) except the bounded
// strategy-transition timeline, which takes a tiny mutex only when a
// subsystem's executed strategy actually changes.

package obs

import (
	"sync"
	"sync/atomic"
)

// timelineCap bounds the retained strategy-transition events.
const timelineCap = 128

// TimelineEvent is one executed-strategy transition: at query seq, the
// subsystem switched to strategy.
type TimelineEvent struct {
	Seq       uint64 `json:"seq"`
	Subsystem string `json:"subsystem"`
	Strategy  string `json:"strategy"`
}

// timeline is a fixed ring of strategy transitions, recording only
// changes (per subsystem), so a converged steady state costs one
// compare per query and the ring holds the interesting prefix: the
// hash→sort / hash→merge flips background refinement causes.
type timeline struct {
	mu    sync.Mutex
	event [timelineCap]struct {
		seq   uint64
		strat Strat
	}
	start, n int
	total    int64
	last     [2]Strat // per-subsystem last executed strategy
	seen     [2]bool
}

//holistic:noalloc
func (t *timeline) record(seq uint64, s Strat) {
	sub := s.subIndex()
	t.mu.Lock()
	if t.seen[sub] && t.last[sub] == s {
		t.mu.Unlock()
		return
	}
	t.seen[sub] = true
	t.last[sub] = s
	if t.n < timelineCap {
		i := (t.start + t.n) % timelineCap
		t.event[i].seq, t.event[i].strat = seq, s
		t.n++
	} else {
		t.event[t.start].seq, t.event[t.start].strat = seq, s
		t.start = (t.start + 1) % timelineCap
	}
	t.total++
	t.mu.Unlock()
}

func (t *timeline) snapshot() []TimelineEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineEvent, 0, t.n)
	for i := 0; i < t.n; i++ {
		e := t.event[(t.start+i)%timelineCap]
		out = append(out, TimelineEvent{Seq: e.seq, Subsystem: e.strat.Subsystem(), Strategy: e.strat.String()})
	}
	return out
}

// QueryMetrics aggregates one query runner's telemetry: per-op latency
// histograms, representation and strategy counters and the strategy
// timeline. All record methods are zero-allocation; one instance is
// shared by every query of a Store.
type QueryMetrics struct {
	seq    atomic.Uint64
	lat    [NumOps]Histogram
	reps   [NumReps]Counter
	strats [NumStrats]Counter
	tl     timeline
}

// NewQueryMetrics allocates a metrics block (a few hundred KB of
// histogram buckets; one per store).
func NewQueryMetrics() *QueryMetrics { return &QueryMetrics{} }

// NextSeq assigns the next query sequence number.
//
//holistic:noalloc
func (m *QueryMetrics) NextSeq() uint64 { return m.seq.Add(1) }

// Seq returns the number of sequenced queries so far.
func (m *QueryMetrics) Seq() uint64 { return m.seq.Load() }

// RecordOp records one operator execution's latency.
//
//holistic:noalloc
func (m *QueryMetrics) RecordOp(op Op, nanos int64) {
	if op < NumOps {
		m.lat[op].RecordNanos(nanos)
	}
}

// RecordRep counts one executed intermediate representation.
//
//holistic:noalloc
func (m *QueryMetrics) RecordRep(r Rep) {
	if r < NumReps {
		m.reps[r].Inc()
	}
}

// RecordStrategy counts one executed physical strategy and feeds the
// transition timeline at the given query sequence number.
//
//holistic:noalloc
func (m *QueryMetrics) RecordStrategy(seq uint64, s Strat) {
	if s >= NumStrats {
		return
	}
	m.strats[s].Inc()
	m.tl.record(seq, s)
}

// OpHistogram exposes one op's histogram (benchmark percentiles read
// through it).
func (m *QueryMetrics) OpHistogram(op Op) *Histogram { return &m.lat[op] }

// MergedLatency merges every op's histogram into s — the cumulative
// all-operations latency distribution the flight watchdog baselines.
func (m *QueryMetrics) MergedLatency(s *HistSnapshot) {
	*s = HistSnapshot{}
	var one HistSnapshot
	for op := Op(0); op < NumOps; op++ {
		m.lat[op].Snapshot(&one)
		s.Merge(&one)
	}
}

// Timeline returns the retained strategy transitions, oldest first.
func (m *QueryMetrics) Timeline() []TimelineEvent { return m.tl.snapshot() }

// QuerySnapshot is the JSON view of a QueryMetrics.
type QuerySnapshot struct {
	// Queries is the number of sequenced query executions.
	Queries uint64 `json:"queries"`
	// Latency maps op name to its latency digest; ops never executed
	// are omitted.
	Latency map[string]LatencySummary `json:"latency"`
	// Representations counts executed intermediate representations.
	Representations map[string]int64 `json:"representations"`
	// Strategies counts executed physical strategies, keyed
	// "subsystem/strategy".
	Strategies map[string]int64 `json:"strategies"`
	// Timeline holds the retained strategy transitions, oldest first.
	Timeline []TimelineEvent `json:"strategy_timeline"`
}

// Snapshot digests the metrics; cold path, allocates freely.
func (m *QueryMetrics) Snapshot() *QuerySnapshot {
	s := &QuerySnapshot{
		Queries:         m.seq.Load(),
		Latency:         make(map[string]LatencySummary),
		Representations: make(map[string]int64),
		Strategies:      make(map[string]int64),
		Timeline:        m.tl.snapshot(),
	}
	for op := Op(0); op < NumOps; op++ {
		if m.lat[op].Count() > 0 {
			s.Latency[op.String()] = m.lat[op].Summary()
		}
	}
	for r := Rep(0); r < NumReps; r++ {
		if n := m.reps[r].Load(); n > 0 {
			s.Representations[r.String()] = n
		}
	}
	for st := Strat(0); st < NumStrats; st++ {
		if n := m.strats[st].Load(); n > 0 {
			s.Strategies[st.Subsystem()+"/"+st.String()] = n
		}
	}
	return s
}

// ExecMetrics aggregates one executor's access-path telemetry: the
// single-attribute select operations underneath every query form, index
// builds, pending-update merges and key-order walks.
type ExecMetrics struct {
	// Selects counts single-attribute select operations (count, sum,
	// minmax, row and bitmap selects); SelectLatency digests their
	// durations.
	Selects       Counter
	SelectLatency Histogram
	// CrackerBuilds counts index structures created on first touch.
	CrackerBuilds Counter
	// MergedUpdates counts pending update operations merged into index
	// structures on the query path.
	MergedUpdates Counter
	// KeyOrderWalks counts full key-ordered index walks (the sort
	// grouping and merge join access path).
	KeyOrderWalks Counter
}

// RecordSelect records one select operation and its latency.
//
//holistic:noalloc
func (m *ExecMetrics) RecordSelect(nanos int64) {
	m.Selects.Inc()
	m.SelectLatency.RecordNanos(nanos)
}

// ExecSnapshot is the JSON view of an ExecMetrics.
type ExecSnapshot struct {
	Selects       int64          `json:"selects"`
	SelectLatency LatencySummary `json:"select_latency"`
	CrackerBuilds int64          `json:"cracker_builds"`
	MergedUpdates int64          `json:"merged_updates"`
	KeyOrderWalks int64          `json:"key_order_walks"`
}

// Snapshot digests the executor metrics.
func (m *ExecMetrics) Snapshot() *ExecSnapshot {
	return &ExecSnapshot{
		Selects:       m.Selects.Load(),
		SelectLatency: m.SelectLatency.Summary(),
		CrackerBuilds: m.CrackerBuilds.Load(),
		MergedUpdates: m.MergedUpdates.Load(),
		KeyOrderWalks: m.KeyOrderWalks.Load(),
	}
}
