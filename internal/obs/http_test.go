package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSourceRegistry(t *testing.T) {
	RegisterSource("test-src", func() any { return map[string]int{"x": 1} })
	defer UnregisterSource("test-src")
	snap := SnapshotSources()
	if _, ok := snap["test-src"]; !ok {
		t.Fatal("registered source missing from snapshot")
	}
	RegisterSource("test-src", func() any { return map[string]int{"x": 2} })
	snap = SnapshotSources()
	if m, ok := snap["test-src"].(map[string]int); !ok || m["x"] != 2 {
		t.Fatalf("re-registration did not replace source: %v", snap["test-src"])
	}
	UnregisterSource("test-src")
	if _, ok := SnapshotSources()["test-src"]; ok {
		t.Fatal("unregistered source still present")
	}
	UnregisterSource("never-registered") // must not panic
}

func TestHandlerHolisticEndpoint(t *testing.T) {
	m := NewQueryMetrics()
	m.RecordOp(OpCount, 1500)
	m.RecordRep(RepBitmap)
	m.RecordStrategy(m.NextSeq(), StratJoinHash)
	RegisterSource("test-store", func() any { return m.Snapshot() })
	defer UnregisterSource("test-store")

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/holistic")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var entries []struct {
		Name    string          `json:"name"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatalf("response not a JSON source array: %v\n%s", err, body)
	}
	var found bool
	for _, e := range entries {
		if e.Name == "test-store" {
			found = true
			var qs QuerySnapshot
			if err := json.Unmarshal(e.Metrics, &qs); err != nil {
				t.Fatalf("metrics payload: %v", err)
			}
			if qs.Latency["count"].Count != 1 {
				t.Fatalf("count latency digest missing: %+v", qs.Latency)
			}
			if qs.Strategies["join/hash"] != 1 {
				t.Fatalf("strategy counter missing: %+v", qs.Strategies)
			}
		}
	}
	if !found {
		t.Fatalf("test-store source not in response:\n%s", body)
	}
}

func TestHandlerVarsAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["holistic"]; !ok {
		t.Fatal("/debug/vars missing the holistic variable")
	}
	if expvar.Get("holistic") == nil {
		t.Fatal("expvar bridge not published")
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

func TestHandlerFlightEndpoint(t *testing.T) {
	RegisterFlight("test-store", func() any {
		return map[string]any{"ring_capacity": 64, "events": []any{}}
	})
	defer UnregisterFlight("test-store")

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/holistic/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var entries []struct {
		Name   string          `json:"name"`
		Flight json.RawMessage `json:"flight"`
	}
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatalf("flight response not a JSON array: %v\n%s", err, body)
	}
	found := false
	for _, e := range entries {
		if e.Name == "test-store" {
			found = true
			var m map[string]any
			if err := json.Unmarshal(e.Flight, &m); err != nil {
				t.Fatalf("flight payload: %v", err)
			}
			if m["ring_capacity"] != float64(64) {
				t.Fatalf("flight payload missing ring_capacity: %v", m)
			}
		}
	}
	if !found {
		t.Fatalf("test-store flight source not in response:\n%s", body)
	}
}

func TestHealthzReadyz(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	ready := false
	RegisterReadiness("test-store", func() bool { return ready })
	defer UnregisterReadiness("test-store")

	check := func(wantCode int, wantReady bool, wantFailed []string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("/readyz status = %d, want %d", resp.StatusCode, wantCode)
		}
		var out struct {
			Ready    bool     `json:"ready"`
			NotReady []string `json:"not_ready"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.Ready != wantReady {
			t.Fatalf("/readyz ready = %v, want %v", out.Ready, wantReady)
		}
		if len(out.NotReady) != len(wantFailed) {
			t.Fatalf("/readyz not_ready = %v, want %v", out.NotReady, wantFailed)
		}
		for i := range wantFailed {
			if out.NotReady[i] != wantFailed[i] {
				t.Fatalf("/readyz not_ready = %v, want %v", out.NotReady, wantFailed)
			}
		}
	}
	check(503, false, []string{"test-store"})
	ready = true
	check(200, true, nil)
}

func TestTimelineRingBound(t *testing.T) {
	m := NewQueryMetrics()
	strats := []Strat{StratGroupDense, StratGroupHash, StratGroupSort}
	for i := 0; i < 3*timelineCap; i++ {
		m.RecordStrategy(uint64(i), strats[i%len(strats)])
	}
	tl := m.Timeline()
	if len(tl) != timelineCap {
		t.Fatalf("timeline holds %d events, want cap %d", len(tl), timelineCap)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Seq <= tl[i-1].Seq {
			t.Fatalf("timeline out of order at %d: %d after %d", i, tl[i].Seq, tl[i-1].Seq)
		}
	}
	// Steady state: repeating the same strategy records nothing new.
	before := len(m.Timeline())
	last := tl[len(tl)-1]
	var s Strat
	switch last.Strategy {
	case "dense":
		s = StratGroupDense
	case "hash":
		s = StratGroupHash
	default:
		s = StratGroupSort
	}
	m.RecordStrategy(99999, s)
	if got := len(m.Timeline()); got != before {
		t.Fatalf("repeat strategy grew timeline: %d -> %d", before, got)
	}
}
