package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketLayout pins the log-linear mapping: small values are exact,
// larger ones land in monotone buckets whose midpoint is within the
// 1/histSub relative error bound.
func TestBucketLayout(t *testing.T) {
	for v := int64(0); v < histSub; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact bucket", v, got)
		}
		if got := bucketMid(int(v)); got != v {
			t.Fatalf("bucketMid(%d) = %d, want %d", v, got, v)
		}
	}
	prev := -1
	for _, v := range []int64{16, 17, 100, 1_000, 50_000, 1_000_000, 1 << 40, 1<<62 + 12345} {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		mid := bucketMid(idx)
		rel := float64(mid-v) / float64(v)
		if rel < 0 {
			rel = -rel
		}
		if rel > 1.0/histSub {
			t.Errorf("bucketMid(%d)=%d for v=%d: relative error %.4f > %.4f", idx, mid, v, rel, 1.0/histSub)
		}
	}
	if got := bucketOf(1<<63 - 1); got != histBuckets-1 {
		t.Errorf("max int64 maps to bucket %d, want %d", got, histBuckets-1)
	}
	if got := bucketOf(-5); got != 0 {
		// RecordNanos clamps before bucketOf; bucketOf itself sees >= 0.
		_ = got
	}
}

// TestHistogramQuantiles checks quantile extraction against a known
// distribution within the layout's relative error.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..100000 ns uniformly: p50 ≈ 50000, p99 ≈ 99000.
	for i := 1; i <= 100000; i++ {
		h.RecordNanos(int64(i))
	}
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Count != 100000 {
		t.Fatalf("Count = %d, want 100000", s.Count)
	}
	check := func(q, want float64) {
		got := float64(s.Quantile(q))
		rel := (got - want) / want
		if rel < 0 {
			rel = -rel
		}
		if rel > 2.0/histSub {
			t.Errorf("Quantile(%.3f) = %.0f, want ~%.0f (rel err %.4f)", q, got, want, rel)
		}
	}
	check(0.50, 50000)
	check(0.90, 90000)
	check(0.99, 99000)
	check(0.999, 99900)
	if m := s.Mean(); m < 45000*time.Nanosecond || m > 55000*time.Nanosecond {
		t.Errorf("Mean = %v, want ~50µs", m)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot must report zero quantiles and mean")
	}
}

// TestHistogramConcurrentRecording is the race test: many goroutines
// record concurrently with snapshot readers; the final count must be
// exact (no lost increments) and the run must be clean under -race.
func TestHistogramConcurrentRecording(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perG    = 10000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		var s HistSnapshot
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot(&s)
				_ = s.Quantile(0.99)
			}
		}
	}()
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.RecordNanos(rng.Int63n(1 << 30))
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	var s HistSnapshot
	h.Snapshot(&s)
	if want := uint64(writers * perG); s.Count != want || s.total() != want {
		t.Fatalf("Count = %d, bucket total = %d, want %d", s.Count, s.total(), want)
	}
}

// TestSnapshotMergeAssociativity is the property test: for random
// histogram triples, (a⊕b)⊕c == a⊕(b⊕c) == c⊕(a⊕b) field for field,
// and merging empty is the identity.
func TestSnapshotMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randomSnap := func() *HistSnapshot {
		var h Histogram
		n := rng.Intn(5000)
		for i := 0; i < n; i++ {
			h.RecordNanos(rng.Int63n(1 << uint(10+rng.Intn(30))))
		}
		var s HistSnapshot
		h.Snapshot(&s)
		return &s
	}
	equal := func(x, y *HistSnapshot) bool {
		if x.Count != y.Count || x.Sum != y.Sum {
			return false
		}
		return x.Buckets == y.Buckets
	}
	for trial := 0; trial < 25; trial++ {
		a, b, c := randomSnap(), randomSnap(), randomSnap()
		ab := *a
		ab.Merge(b)
		abc1 := ab
		abc1.Merge(c)

		bc := *b
		bc.Merge(c)
		abc2 := *a
		abc2.Merge(&bc)

		abc3 := *c
		abc3.Merge(&ab)

		if !equal(&abc1, &abc2) {
			t.Fatalf("trial %d: (a+b)+c != a+(b+c)", trial)
		}
		if !equal(&abc1, &abc3) {
			t.Fatalf("trial %d: merge is not commutative at the top level", trial)
		}
		var id HistSnapshot
		withID := abc1
		withID.Merge(&id)
		if !equal(&withID, &abc1) {
			t.Fatalf("trial %d: empty snapshot is not the merge identity", trial)
		}
		if abc1.Count != a.Count+b.Count+c.Count {
			t.Fatalf("trial %d: merged count %d != %d", trial, abc1.Count, a.Count+b.Count+c.Count)
		}
	}
}

// TestForEachBucket pins the cumulative bucket walk that feeds the
// Prometheus exposition: upper bounds are inclusive, strictly
// increasing, partition the value range against bucketOf, the counts
// are monotone non-decreasing, and the final cumulative count equals
// the bucket total.
func TestForEachBucket(t *testing.T) {
	// Every recorded value must be counted at the first bound >= value.
	var h Histogram
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 1000, 50_000, 1 << 40, 1<<63 - 1}
	for _, v := range vals {
		h.RecordNanos(v)
	}
	var (
		visits    int
		prevUpper = int64(-1)
		prevCum   uint64
		lastCum   uint64
	)
	h.ForEachBucket(func(upper int64, cum uint64) {
		if upper <= prevUpper {
			t.Fatalf("bucket %d: upper %d <= previous %d", visits, upper, prevUpper)
		}
		if cum < prevCum {
			t.Fatalf("bucket %d: cumulative count %d < previous %d", visits, cum, prevCum)
		}
		// Cross-check against the recording-side mapping: the count at
		// this bound must equal the number of values <= upper.
		var want uint64
		for _, v := range vals {
			if v <= upper {
				want++
			}
		}
		if cum != want {
			t.Fatalf("upper %d: cumulative %d, want %d", upper, cum, want)
		}
		prevUpper, prevCum = upper, cum
		lastCum = cum
		visits++
	})
	if visits != histBuckets {
		t.Fatalf("visited %d buckets, want %d", visits, histBuckets)
	}
	if lastCum != uint64(len(vals)) {
		t.Fatalf("final cumulative %d, want %d", lastCum, len(vals))
	}
	if prevUpper != 1<<63-1 {
		t.Fatalf("final upper bound %d, want MaxInt64", prevUpper)
	}
	// bucketUpper must be the inclusive bound: bucketOf(upper) == idx and
	// bucketOf(upper+1) == idx+1 for interior buckets.
	for idx := 0; idx < histBuckets-1; idx++ {
		up := bucketUpper(idx)
		if got := bucketOf(up); got != idx {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", idx, up, got)
		}
		if got := bucketOf(up + 1); got != idx+1 {
			t.Fatalf("bucketOf(bucketUpper(%d)+1) = %d, want %d", idx, got, idx+1)
		}
	}
}

// TestRecordAllocationFree gates the recording hot path at 0 allocs/op,
// the dynamic complement of the holisticlint noalloc annotations.
func TestRecordAllocationFree(t *testing.T) {
	var h Histogram
	var c Counter
	m := NewQueryMetrics()
	if a := testing.AllocsPerRun(200, func() {
		h.RecordNanos(12345)
		c.Inc()
		c.Add(3)
		m.RecordOp(OpCount, 9876)
		m.RecordRep(RepBitmap)
		m.RecordStrategy(m.NextSeq(), StratGroupHash)
	}); a > 0 {
		t.Fatalf("recording allocates %.1f times per op, want 0", a)
	}
}

// TestSummary pins the digest fields used by JSON consumers.
func TestSummary(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	sum := h.Summary()
	if sum.Count != 1000 {
		t.Fatalf("Count = %d", sum.Count)
	}
	if sum.P50US <= 0 || sum.P99US < sum.P50US || sum.P999US < sum.P99US {
		t.Fatalf("quantiles not monotone: %+v", sum)
	}
}
