// Log-linear latency histograms: fixed bucket layout, atomic per-bucket
// increments, mergeable snapshots, quantile extraction. The layout is
// the HDR-style scheme: exact buckets below 2^histSubBits nanoseconds,
// then histSub sub-buckets per power of two, bounding the relative
// quantile error at 1/histSub (6.25%) with a few hundred fixed buckets
// — no allocation ever, neither recording nor resizing.

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits is the log2 of the sub-bucket count per octave.
	histSubBits = 4
	// histSub is the number of linear sub-buckets per power of two.
	histSub = 1 << histSubBits
	// histBuckets covers the whole non-negative int64 nanosecond range:
	// histSub exact buckets, then one histSub-wide group per exponent
	// from histSubBits through 62.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
//
//holistic:noalloc
func bucketOf(ns int64) int {
	if ns < histSub {
		return int(ns)
	}
	exp := bits.Len64(uint64(ns)) - 1
	sub := int(ns>>(uint(exp)-histSubBits)) & (histSub - 1)
	idx := (exp-histSubBits)*histSub + histSub + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketMid returns a representative (midpoint) value for a bucket.
func bucketMid(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	g := idx/histSub - 1
	sub := idx % histSub
	lo := int64(histSub+sub) << uint(g)
	width := int64(1) << uint(g)
	return lo + width/2
}

// bucketUpper returns a bucket's inclusive upper bound in nanoseconds:
// the largest ns with bucketOf(ns) == idx. The exact buckets below
// histSub hold a single value; every later bucket spans one sub-range
// of its octave. The final bucket's bound saturates at MaxInt64, so an
// exposition's last finite bound still covers every recordable value.
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	g := idx/histSub - 1
	sub := idx % histSub
	lo := int64(histSub+sub) << uint(g)
	width := int64(1) << uint(g)
	return lo + width - 1
}

// ForEachBucket walks the snapshot's buckets in ascending order,
// calling fn with each bucket's inclusive upper bound in nanoseconds
// and the cumulative observation count at or below that bound — the
// exact shape a Prometheus histogram exposition needs (cumulative
// `le` buckets). Every bucket is visited, including empty ones;
// callers that want bounded output keep only the change points.
func (s *HistSnapshot) ForEachBucket(fn func(upperNs int64, cumCount uint64)) {
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		fn(bucketUpper(i), cum)
	}
}

// ForEachBucket walks the histogram's current buckets via one
// throwaway snapshot; see HistSnapshot.ForEachBucket.
func (h *Histogram) ForEachBucket(fn func(upperNs int64, cumCount uint64)) {
	var s HistSnapshot
	h.Snapshot(&s)
	s.ForEachBucket(fn)
}

// Histogram is a fixed-layout log-linear latency histogram safe for
// concurrent lock-free recording. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Record adds one duration observation. Negative durations clamp to 0.
//
//holistic:noalloc
func (h *Histogram) Record(d time.Duration) { h.RecordNanos(int64(d)) }

// RecordNanos adds one observation in nanoseconds.
//
//holistic:noalloc
func (h *Histogram) RecordNanos(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	h.buckets[bucketOf(ns)].Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram state into s. The copy is not an atomic
// cut across buckets — concurrent recording may skew it by the handful
// of in-flight observations — but every bucket value is monotone, so
// snapshots remain mergeable and quantiles remain monotone too.
func (h *Histogram) Snapshot(s *HistSnapshot) {
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
}

// HistSnapshot is a point-in-time copy of a Histogram: plain integers,
// safe to merge and query without synchronization.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Merge folds o into s. Merging is commutative and associative, so
// snapshots taken from disjoint histograms (per-shard, per-phase)
// combine into the same distribution regardless of order.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Diff subtracts the earlier snapshot o from s in place, leaving the
// distribution of observations recorded between the two snapshots.
// Buckets are monotone under concurrent recording, so the window is
// well-defined; any skew from a non-atomic cut clamps at zero instead
// of underflowing.
func (s *HistSnapshot) Diff(o *HistSnapshot) {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	s.Count = sub(s.Count, o.Count)
	s.Sum = sub(s.Sum, o.Sum)
	for i := range s.Buckets {
		s.Buckets[i] = sub(s.Buckets[i], o.Buckets[i])
	}
}

// total sums the bucket counts: the self-consistent observation count
// (the Count field can lag the buckets by in-flight recordings).
func (s *HistSnapshot) total() uint64 {
	var t uint64
	for i := range s.Buckets {
		t += s.Buckets[i]
	}
	return t
}

// Quantile returns the q-quantile (0 <= q <= 1) as a duration, within
// the bucket layout's 1/histSub relative error. An empty snapshot
// returns 0.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	total := s.total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum > target {
			return time.Duration(bucketMid(i))
		}
	}
	return 0
}

// Mean returns the mean observation as a duration; 0 when empty.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// LatencySummary is the JSON-friendly digest of one histogram: count,
// mean and the standard quantiles in microseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
}

// us converts a duration to float microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Summary digests the snapshot.
func (s *HistSnapshot) Summary() LatencySummary {
	return LatencySummary{
		Count:  s.Count,
		MeanUS: us(s.Mean()),
		P50US:  us(s.Quantile(0.50)),
		P90US:  us(s.Quantile(0.90)),
		P99US:  us(s.Quantile(0.99)),
		P999US: us(s.Quantile(0.999)),
	}
}

// Summary digests the histogram directly (one throwaway snapshot).
func (h *Histogram) Summary() LatencySummary {
	var s HistSnapshot
	h.Snapshot(&s)
	return s.Summary()
}
