// Per-query execution traces: the pooled QueryTrace the query runner
// fills while executing — predicate order, estimated vs. actual
// selectivity per conjunct, the chosen representation and strategy with
// their reasons and driving statistics, rows scanned/emitted and
// per-stage durations — and the sink interface that streams finished
// traces as JSONL.

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// ConjunctTrace records one planned range conjunct in pipeline order.
type ConjunctTrace struct {
	// Side is "" for single-relation queries, "left"/"right" for joins.
	Side string `json:"side,omitempty"`
	Attr string `json:"attr"`
	Lo   int64  `json:"lo"`
	Hi   int64  `json:"hi"`
	// EstRows is the planner's cardinality estimate for this conjunct
	// standalone (exact from index structures where available,
	// uniform-domain otherwise).
	EstRows float64 `json:"est_rows"`
	// Driving marks the conjunct that ran through the mode's native
	// access path (the most selective one).
	Driving bool `json:"driving,omitempty"`
	// CumRows is the number of candidates surviving after this conjunct
	// in pipeline order; -1 when the stage was skipped (an earlier
	// conjunct emptied the selection).
	CumRows int64 `json:"cum_rows"`
	// ActualRows is this conjunct's standalone match count, measured by
	// the Explain path only (an O(N) probe per conjunct); -1 when not
	// measured.
	ActualRows int64 `json:"actual_rows"`
}

// StageTrace is one timed pipeline stage of a traced query.
type StageTrace struct {
	Name  string `json:"stage"`
	Nanos int64  `json:"ns"`
}

// QueryTrace is the execution trace of one query. Instances are pooled
// (GetTrace/PutTrace) on the sink path and owned by the caller on the
// Explain path; sinks must not retain the trace after Emit returns.
type QueryTrace struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	Mode string `json:"mode"`
	// Rows is the relation's row count (the left relation for joins);
	// selectivities are conjunct rows over this universe.
	Rows int `json:"rows"`
	// RowsRight is the right relation's row count for joins.
	RowsRight int `json:"rows_right,omitempty"`

	Rep       string `json:"rep,omitempty"`
	RepReason string `json:"rep_reason,omitempty"`

	Strategy       string `json:"strategy,omitempty"`
	StrategyReason string `json:"strategy_reason,omitempty"`

	Conjuncts []ConjunctTrace `json:"conjuncts,omitempty"`
	Stages    []StageTrace    `json:"stages,omitempty"`
	// Stat carries the numeric statistics that drove strategy and
	// representation decisions (key spans, selection densities, ...).
	Stat map[string]float64 `json:"stats,omitempty"`

	// Scanned is the candidate count the driving select produced;
	// Emitted the final row/group/pair count; Result the terminal's
	// scalar answer where one exists (count, sum).
	Scanned    int64  `json:"scanned"`
	Emitted    int64  `json:"emitted"`
	Result     int64  `json:"result"`
	TotalNanos int64  `json:"total_ns"`
	Err        string `json:"err,omitempty"`

	// curBase/curSide scope conjunct recording to the side currently
	// executing (joins run their sides sequentially through one trace).
	curBase int
	curSide string
}

// Reset clears the trace for reuse, retaining slice and map capacity.
//
//holistic:noalloc
func (t *QueryTrace) Reset() {
	t.Seq, t.Kind, t.Mode, t.Rows, t.RowsRight = 0, "", "", 0, 0
	t.Rep, t.RepReason, t.Strategy, t.StrategyReason = "", "", "", ""
	t.Conjuncts = t.Conjuncts[:0]
	t.Stages = t.Stages[:0]
	clear(t.Stat)
	t.Scanned, t.Emitted, t.Result, t.TotalNanos = 0, 0, 0, 0
	t.Err = ""
	t.curBase, t.curSide = 0, ""
}

// BeginSide scopes subsequent conjunct recording to one join side
// ("left"/"right"; "" for single-relation queries).
//
//holistic:noalloc
func (t *QueryTrace) BeginSide(side string) {
	t.curSide = side
	t.curBase = len(t.Conjuncts)
}

// AddConjunct appends one planned conjunct for the current side.
//
//holistic:noalloc
func (t *QueryTrace) AddConjunct(attr string, lo, hi int64, est float64, driving bool) {
	t.Conjuncts = append(t.Conjuncts, ConjunctTrace{
		Side: t.curSide, Attr: attr, Lo: lo, Hi: hi,
		EstRows: est, Driving: driving, CumRows: -1, ActualRows: -1,
	})
}

// SetCum records the surviving candidate count after the i-th conjunct
// (pipeline order) of the current side.
//
//holistic:noalloc
func (t *QueryTrace) SetCum(i int, n int64) {
	idx := t.curBase + i
	if idx >= 0 && idx < len(t.Conjuncts) {
		t.Conjuncts[idx].CumRows = n
	}
}

// Stage appends a timed stage that started at start.
//
//holistic:noalloc
func (t *QueryTrace) Stage(name string, start time.Time) {
	t.Stages = append(t.Stages, StageTrace{Name: name, Nanos: time.Since(start).Nanoseconds()})
}

// StageNanos appends a stage whose duration the caller already
// measured (shared with the flight recorder's per-stage timings).
//
//holistic:noalloc
func (t *QueryTrace) StageNanos(name string, nanos int64) {
	t.Stages = append(t.Stages, StageTrace{Name: name, Nanos: nanos})
}

// SetStat records one named decision statistic.
//
//holistic:noalloc
func (t *QueryTrace) SetStat(name string, v float64) {
	if t.Stat == nil {
		return // defensive: only a zero-value literal lacks the map
	}
	t.Stat[name] = v
}

// String renders the trace as a human-readable explain report.
func (t *QueryTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s query under %q over %d rows", t.Kind, t.Mode, t.Rows)
	if t.RowsRight > 0 {
		fmt.Fprintf(&b, " ⋈ %d rows", t.RowsRight)
	}
	b.WriteString("\n")
	if t.Rep != "" {
		fmt.Fprintf(&b, "  representation: %s (%s)\n", t.Rep, t.RepReason)
	}
	if t.Strategy != "" {
		fmt.Fprintf(&b, "  strategy: %s (%s)\n", t.Strategy, t.StrategyReason)
	}
	for _, c := range t.Conjuncts {
		rows := t.Rows
		if c.Side == "right" {
			rows = t.RowsRight
		}
		fmt.Fprintf(&b, "  conjunct %s%s in [%d,%d): est %.0f rows (%.4f)",
			sidePrefix(c.Side), c.Attr, c.Lo, c.Hi, c.EstRows, selectivity(c.EstRows, rows))
		if c.ActualRows >= 0 {
			fmt.Fprintf(&b, ", actual %d (%.4f)", c.ActualRows, selectivity(float64(c.ActualRows), rows))
		}
		if c.Driving {
			b.WriteString(", driving")
		}
		if c.CumRows >= 0 {
			fmt.Fprintf(&b, ", surviving %d", c.CumRows)
		}
		b.WriteString("\n")
	}
	for _, s := range t.Stages {
		fmt.Fprintf(&b, "  stage %-8s %v\n", s.Name, time.Duration(s.Nanos))
	}
	keys := make([]string, 0, len(t.Stat))
	for k := range t.Stat {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  stat %s = %.3f\n", k, t.Stat[k])
	}
	fmt.Fprintf(&b, "  scanned %d, emitted %d, result %d, total %v\n",
		t.Scanned, t.Emitted, t.Result, time.Duration(t.TotalNanos))
	if t.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", t.Err)
	}
	return b.String()
}

func sidePrefix(side string) string {
	if side == "" {
		return ""
	}
	return side + "."
}

func selectivity(rows float64, universe int) float64 {
	if universe <= 0 {
		return 0
	}
	return rows / float64(universe)
}

// sortStrings is a tiny insertion sort so String needs no sort import.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// tracePool recycles sink-path traces; the Explain path allocates fresh
// caller-owned traces through NewTrace instead.
var tracePool = sync.Pool{New: func() any { return NewTrace() }}

// NewTrace allocates a fresh trace with its stat map initialized.
func NewTrace() *QueryTrace {
	return &QueryTrace{Stat: make(map[string]float64, 8)}
}

// GetTrace takes a reset trace from the pool.
//
//holistic:alloc-ok pool warm-up allocates the recycled trace
func GetTrace() *QueryTrace {
	return tracePool.Get().(*QueryTrace)
}

// PutTrace resets tr and returns it to the pool.
//
//holistic:noalloc
func PutTrace(tr *QueryTrace) {
	tr.Reset()
	tracePool.Put(tr)
}

// TraceSink consumes finished query traces. Emit is called
// synchronously at query end with a pooled trace; implementations must
// not retain tr after returning and should be fast (buffer or drop).
type TraceSink interface {
	Emit(tr *QueryTrace)
}

// JSONLSink writes one JSON object per trace to an io.Writer, guarded
// by a mutex so concurrent queries interleave whole lines. The stream
// is bounded: writes go through an internal buffer (flushed by Flush
// and Close), the line/byte/error counters surface into Store.Metrics
// instead of dropping silently, and an optional rotate callback caps
// the bytes written to one target (SinkOptions.MaxBytes).
type JSONLSink struct {
	mu      sync.Mutex
	w       io.Writer
	bw      *bufio.Writer
	enc     *json.Encoder
	written int64 // bytes handed to the current target since last rotation
	opts    SinkOptions

	lines     Counter
	bytes     Counter
	errors    Counter
	rotations Counter
}

// SinkOptions tunes a JSONLSink beyond the plain writer.
type SinkOptions struct {
	// MaxBytes caps the bytes written to one target; when exceeded the
	// sink flushes, closes the current target (if it is a Closer) and
	// asks Rotate for the next one. 0 disables rotation.
	MaxBytes int64
	// Rotate opens the next target after a size cap is hit. Required
	// when MaxBytes > 0.
	Rotate func() (io.WriteCloser, error)
	// OwnWriter makes Close close the target (for sinks over files the
	// sink itself opened).
	OwnWriter bool
}

// NewJSONLSink builds a buffered sink over w; call Flush (or Close) to
// push buffered lines to the writer. The caller owns closing w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return NewJSONLSinkOptions(w, SinkOptions{})
}

// NewJSONLSinkOptions builds a sink with rotation/ownership options.
func NewJSONLSinkOptions(w io.Writer, opts SinkOptions) *JSONLSink {
	s := &JSONLSink{w: w, bw: bufio.NewWriterSize(w, 1<<15), opts: opts}
	s.enc = json.NewEncoder(s.bw)
	return s
}

// Emit implements TraceSink. Encoding errors are counted (see
// Snapshot) but never fail the query being traced.
func (s *JSONLSink) Emit(tr *QueryTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.bw.Buffered()
	if err := s.enc.Encode(tr); err != nil {
		s.errors.Inc()
		return
	}
	// Bytes accepted by the encoder this call: what grew the buffer
	// plus what a mid-encode flush pushed down.
	n := int64(s.bw.Buffered() - before)
	if n < 0 {
		n = 0
	}
	s.lines.Inc()
	s.bytes.Add(n)
	s.written += n
	if s.opts.MaxBytes > 0 && s.written >= s.opts.MaxBytes && s.opts.Rotate != nil {
		s.rotateLocked()
	}
}

// rotateLocked flushes and swaps the target for a fresh one.
func (s *JSONLSink) rotateLocked() {
	if err := s.bw.Flush(); err != nil {
		s.errors.Inc()
	}
	next, err := s.opts.Rotate()
	if err != nil {
		s.errors.Inc()
		s.written = 0 // keep writing to the old target rather than stall
		return
	}
	if c, ok := s.w.(io.Closer); ok {
		_ = c.Close()
	}
	s.w = next
	s.bw.Reset(next)
	s.written = 0
	s.rotations.Inc()
}

// Flush pushes buffered lines to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil {
		s.errors.Inc()
		return err
	}
	return nil
}

// Close flushes and, when the sink owns its writer, closes it.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.bw.Flush()
	if err != nil {
		s.errors.Inc()
	}
	if s.opts.OwnWriter {
		if c, ok := s.w.(io.Closer); ok {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// TraceSinkStatus is the sink's counter snapshot, surfaced through
// Store.Metrics so dropped or failing trace writes are visible.
type TraceSinkStatus struct {
	Lines     int64 `json:"lines"`
	Bytes     int64 `json:"bytes"`
	Errors    int64 `json:"write_errors"`
	Rotations int64 `json:"rotations"`
}

// Snapshot captures the sink counters.
func (s *JSONLSink) Snapshot() TraceSinkStatus {
	return TraceSinkStatus{
		Lines:     s.lines.Load(),
		Bytes:     s.bytes.Load(),
		Errors:    s.errors.Load(),
		Rotations: s.rotations.Load(),
	}
}
