package obs

import (
	"math/rand"
	"testing"
	"time"
)

// TestTimeSeriesWraparound is the property test: for random observation
// streams much longer than the ring, the retained state must satisfy
// base[i] + Σ windows.Deltas[i] == the last observed cumulative value,
// the ring must hold exactly its capacity, and windows must stay in
// chronological order.
func TestTimeSeriesWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		capacity := 2 + rng.Intn(16)
		ts := NewTimeSeries(capacity, []string{"a", "b"}, nil)
		now := time.UnixMilli(1_000_000)
		cum := []int64{rng.Int63n(1000), rng.Int63n(1000)}
		obs := 2 + capacity + rng.Intn(3*capacity) // guarantee wraparound on most trials
		for o := 0; o < obs; o++ {
			now = now.Add(time.Duration(1+rng.Intn(5000)) * time.Millisecond)
			cum[0] += rng.Int63n(100)
			cum[1] += rng.Int63n(10)
			ts.Observe(now, cum, nil)
		}
		s := ts.Snapshot()
		if want := min(obs-1, capacity); len(s.Windows) != want {
			t.Fatalf("trial %d: %d windows retained, want %d", trial, len(s.Windows), want)
		}
		if s.Observed != int64(obs-1) {
			t.Fatalf("trial %d: observed %d, want %d", trial, s.Observed, obs-1)
		}
		for i := range s.Counters {
			sum := s.Base[i]
			for _, w := range s.Windows {
				sum += w.Deltas[i]
			}
			if sum != cum[i] {
				t.Fatalf("trial %d: counter %q: base+deltas = %d, want cumulative %d",
					trial, s.Counters[i], sum, cum[i])
			}
		}
		prev := int64(0)
		for _, w := range s.Windows {
			if w.UnixMS <= prev {
				t.Fatalf("trial %d: windows out of order: %d after %d", trial, w.UnixMS, prev)
			}
			prev = w.UnixMS
		}
	}
}

// TestTimeSeriesHistogramWindows checks the per-window histogram diff:
// each window's count and p99 reflect only the observations recorded
// during that window.
func TestTimeSeriesHistogramWindows(t *testing.T) {
	ts := NewTimeSeries(8, nil, []string{"lat"})
	var h Histogram
	now := time.UnixMilli(0)
	snap := func() []*HistSnapshot {
		var s HistSnapshot
		h.Snapshot(&s)
		return []*HistSnapshot{&s}
	}
	ts.Observe(now, nil, snap()) // baseline

	for i := 0; i < 100; i++ {
		h.RecordNanos(1000) // 1µs window
	}
	now = now.Add(5 * time.Second)
	ts.Observe(now, nil, snap())

	for i := 0; i < 50; i++ {
		h.RecordNanos(1_000_000) // 1ms window
	}
	now = now.Add(5 * time.Second)
	ts.Observe(now, nil, snap())

	s := ts.Snapshot()
	if len(s.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(s.Windows))
	}
	w0, w1 := s.Windows[0], s.Windows[1]
	if w0.HistCounts[0] != 100 || w1.HistCounts[0] != 50 {
		t.Fatalf("window counts = %d, %d; want 100, 50", w0.HistCounts[0], w1.HistCounts[0])
	}
	if w0.HistP99US[0] >= 2 { // ~1µs
		t.Fatalf("window 0 p99 = %vµs, want ~1µs", w0.HistP99US[0])
	}
	if w1.HistP99US[0] < 900 { // ~1000µs
		t.Fatalf("window 1 p99 = %vµs, want ~1000µs", w1.HistP99US[0])
	}
	if w0.DurMS != 5000 || w1.DurMS != 5000 {
		t.Fatalf("durations = %d, %d; want 5000", w0.DurMS, w1.DurMS)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
