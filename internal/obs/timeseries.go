// In-process time-series store: a bounded ring of periodic metric
// windows, so operators (and the capacity-planning items on the
// roadmap) can see counters and latency percentiles *over time*
// without an external scraper. Each observation deltifies cumulative
// counters and diffs cumulative histogram snapshots into a per-window
// distribution — the same snapshot-diff discipline the SLO watchdog
// uses — keeping every window self-contained: rates are delta/duration,
// and the ring's base plus the retained deltas always reconstructs the
// current cumulative value exactly, even after wraparound.

package obs

import (
	"sync"
	"time"
)

// TSWindow is one deltified observation window.
type TSWindow struct {
	UnixMS int64 `json:"unix_ms"` // window end
	DurMS  int64 `json:"dur_ms"`
	// Deltas holds per-counter increments over the window, index-aligned
	// with TimelineSnapshot.Counters.
	Deltas []int64 `json:"deltas"`
	// HistCounts/HistP99US hold per-histogram window sample counts and
	// p99s (µs), index-aligned with TimelineSnapshot.Hists.
	HistCounts []uint64  `json:"hist_counts"`
	HistP99US  []float64 `json:"hist_p99_us"`
}

// TimelineSnapshot is the JSON-friendly copy served on
// /debug/holistic/timeline.
type TimelineSnapshot struct {
	Counters []string `json:"counters"`
	Hists    []string `json:"hists"`
	Capacity int      `json:"capacity"`
	// Observed counts every window ever taken, including evicted ones.
	Observed int64 `json:"observed"`
	// Base holds the cumulative counter values at the start of the
	// oldest retained window: Base[i] + sum of Windows[*].Deltas[i]
	// equals the cumulative counter at the newest window's end.
	Base    []int64    `json:"base"`
	Windows []TSWindow `json:"windows"`
}

// TimeSeries is the bounded ring. All methods are cold (one call per
// sampling interval); a plain mutex is fine.
type TimeSeries struct {
	mu       sync.Mutex
	counters []string
	hists    []string
	cap      int

	havePrev bool
	prevT    time.Time
	prev     []int64        // last cumulative counter values
	prevH    []HistSnapshot // last cumulative histogram snapshots
	base     []int64        // cumulative counters at ring start

	ring     []TSWindow
	start, n int
	observed int64
}

// NewTimeSeries builds a ring of capacity windows over the named
// counters and histograms. The name lists fix the column layout of
// every window; observations must supply values in the same order.
func NewTimeSeries(capacity int, counters, hists []string) *TimeSeries {
	if capacity < 2 {
		capacity = 2
	}
	return &TimeSeries{
		counters: append([]string(nil), counters...),
		hists:    append([]string(nil), hists...),
		cap:      capacity,
		prev:     make([]int64, len(counters)),
		prevH:    make([]HistSnapshot, len(hists)),
		base:     make([]int64, len(counters)),
		ring:     make([]TSWindow, 0, capacity),
	}
}

// Observe takes one sample of cumulative counter values and cumulative
// histogram snapshots (index-aligned with the constructor's name
// lists; hists entries may be nil for "no data"). The first call only
// establishes the baseline; every later call appends one window,
// evicting the oldest into the base when the ring is full.
func (t *TimeSeries) Observe(now time.Time, counters []int64, hists []*HistSnapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.havePrev {
		for i := range t.counters {
			if i < len(counters) {
				t.prev[i] = counters[i]
				t.base[i] = counters[i]
			}
		}
		for i := range t.hists {
			if i < len(hists) && hists[i] != nil {
				t.prevH[i] = *hists[i]
			}
		}
		t.prevT = now
		t.havePrev = true
		return
	}
	w := TSWindow{
		UnixMS:     now.UnixMilli(),
		DurMS:      now.Sub(t.prevT).Milliseconds(),
		Deltas:     make([]int64, len(t.counters)),
		HistCounts: make([]uint64, len(t.hists)),
		HistP99US:  make([]float64, len(t.hists)),
	}
	for i := range t.counters {
		if i < len(counters) {
			w.Deltas[i] = counters[i] - t.prev[i]
			t.prev[i] = counters[i]
		}
	}
	for i := range t.hists {
		if i >= len(hists) || hists[i] == nil {
			continue
		}
		win := *hists[i]
		win.Diff(&t.prevH[i])
		w.HistCounts[i] = win.Count
		w.HistP99US[i] = us(win.Quantile(0.99))
		t.prevH[i] = *hists[i]
	}
	t.prevT = now
	t.push(w)
}

// push appends w, folding the evicted window's deltas into base so the
// base+deltas==cumulative invariant survives wraparound.
func (t *TimeSeries) push(w TSWindow) {
	t.observed++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, w)
		return
	}
	old := &t.ring[t.start]
	for i, d := range old.Deltas {
		t.base[i] += d
	}
	*old = w
	t.start = (t.start + 1) % t.cap
}

// Snapshot copies the retained windows oldest-first.
func (t *TimeSeries) Snapshot() TimelineSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimelineSnapshot{
		Counters: t.counters,
		Hists:    t.hists,
		Capacity: t.cap,
		Observed: t.observed,
		Base:     append([]int64(nil), t.base...),
		Windows:  make([]TSWindow, 0, len(t.ring)),
	}
	for i := 0; i < len(t.ring); i++ {
		s.Windows = append(s.Windows, t.ring[(t.start+i)%len(t.ring)])
	}
	return s
}
