// The process metrics registry and HTTP surface: named sources (each a
// snapshot function) are published together as JSON on /debug/holistic,
// as the expvar variable "holistic" on /debug/vars, and next to the
// standard pprof handlers — the endpoint cmd/holisticserve and
// `holisticbench -metrics-addr` mount.

package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"holistic/internal/obs/prom"
)

var (
	srcMu   sync.Mutex
	sources = map[string]func() any{}
)

// RegisterSource publishes a named snapshot source (e.g. one Store's
// Metrics). The function is called on every scrape and must be safe for
// concurrent use. Re-registering a name replaces the source.
func RegisterSource(name string, fn func() any) {
	srcMu.Lock()
	sources[name] = fn
	srcMu.Unlock()
}

// UnregisterSource removes a source; unknown names are a no-op.
func UnregisterSource(name string) {
	srcMu.Lock()
	delete(sources, name)
	srcMu.Unlock()
}

// SnapshotSources evaluates every registered source, keyed by name.
func SnapshotSources() map[string]any {
	srcMu.Lock()
	names := make([]string, 0, len(sources))
	fns := make([]func() any, 0, len(sources))
	for n, fn := range sources {
		names = append(names, n)
		fns = append(fns, fn)
	}
	srcMu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]() // outside the lock: sources may take their own
	}
	return out
}

// The expvar bridge: one variable holding every registered source, so
// the standard /debug/vars surface carries the holistic telemetry too.
func init() {
	expvar.Publish("holistic", expvar.Func(func() any { return SnapshotSources() }))
}

var (
	flightMu      sync.Mutex
	flightSources = map[string]func() any{}
)

// RegisterFlight publishes a named flight-recorder source (decoded
// ring events plus watchdog state), served on /debug/holistic/flight.
// Re-registering a name replaces the source.
func RegisterFlight(name string, fn func() any) {
	flightMu.Lock()
	flightSources[name] = fn
	flightMu.Unlock()
}

// UnregisterFlight removes a flight source; unknown names are a no-op.
func UnregisterFlight(name string) {
	flightMu.Lock()
	delete(flightSources, name)
	flightMu.Unlock()
}

// SnapshotFlight evaluates every registered flight source by name.
func SnapshotFlight() map[string]any {
	flightMu.Lock()
	names := make([]string, 0, len(flightSources))
	fns := make([]func() any, 0, len(flightSources))
	for n, fn := range flightSources {
		names = append(names, n)
		fns = append(fns, fn)
	}
	flightMu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]() // outside the lock: sources may take their own
	}
	return out
}

var (
	tlMu      sync.Mutex
	tlSources = map[string]func() any{}
)

// RegisterTimeline publishes a named time-series source (a TimeSeries
// snapshot function), served on /debug/holistic/timeline.
// Re-registering a name replaces the source.
func RegisterTimeline(name string, fn func() any) {
	tlMu.Lock()
	tlSources[name] = fn
	tlMu.Unlock()
}

// UnregisterTimeline removes a timeline source; unknown names are a
// no-op.
func UnregisterTimeline(name string) {
	tlMu.Lock()
	delete(tlSources, name)
	tlMu.Unlock()
}

// SnapshotTimelines evaluates every registered timeline source by name.
func SnapshotTimelines() map[string]any {
	tlMu.Lock()
	names := make([]string, 0, len(tlSources))
	fns := make([]func() any, 0, len(tlSources))
	for n, fn := range tlSources {
		names = append(names, n)
		fns = append(fns, fn)
	}
	tlMu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]() // outside the lock: sources may take their own
	}
	return out
}

var (
	promMu      sync.Mutex
	promSources = map[string]func(*prom.Writer){}
)

// RegisterProm publishes a named Prometheus collector: a function that
// streams its samples through the scrape's shared prom.Writer (which
// deduplicates HELP/TYPE metadata across collectors). Served on
// /metrics. Re-registering a name replaces the collector.
func RegisterProm(name string, fn func(*prom.Writer)) {
	promMu.Lock()
	promSources[name] = fn
	promMu.Unlock()
}

// UnregisterProm removes a collector; unknown names are a no-op.
func UnregisterProm(name string) {
	promMu.Lock()
	delete(promSources, name)
	promMu.Unlock()
}

// WriteProm runs every registered collector, in name order, against
// one shared writer.
func WriteProm(w *prom.Writer) {
	promMu.Lock()
	names := make([]string, 0, len(promSources))
	for n := range promSources {
		names = append(names, n)
	}
	sort.Strings(names)
	fns := make([]func(*prom.Writer), 0, len(names))
	for _, n := range names {
		fns = append(fns, promSources[n])
	}
	promMu.Unlock()
	for _, fn := range fns {
		fn(w) // outside the lock: collectors may take their own
	}
}

var (
	readyMu     sync.Mutex
	readyProbes = map[string]func() bool{}
)

// RegisterReadiness publishes a named readiness probe consulted by
// /readyz: the endpoint reports ready only when every registered probe
// returns true. Re-registering a name replaces the probe.
func RegisterReadiness(name string, fn func() bool) {
	readyMu.Lock()
	readyProbes[name] = fn
	readyMu.Unlock()
}

// UnregisterReadiness removes a probe; unknown names are a no-op.
func UnregisterReadiness(name string) {
	readyMu.Lock()
	delete(readyProbes, name)
	readyMu.Unlock()
}

// notReady evaluates every probe and returns the names that failed.
func notReady() []string {
	readyMu.Lock()
	names := make([]string, 0, len(readyProbes))
	fns := make([]func() bool, 0, len(readyProbes))
	for n, fn := range readyProbes {
		names = append(names, n)
		fns = append(fns, fn)
	}
	readyMu.Unlock()
	var failed []string
	for i, fn := range fns {
		if !fn() {
			failed = append(failed, names[i])
		}
	}
	sort.Strings(failed)
	return failed
}

// serveJSON writes the full source snapshot as indented JSON.
func serveJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := SnapshotSources()
	// Stable top-level ordering for humans and smoke tests.
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make([]struct {
		Name    string `json:"name"`
		Metrics any    `json:"metrics"`
	}, 0, len(names))
	for _, n := range names {
		ordered = append(ordered, struct {
			Name    string `json:"name"`
			Metrics any    `json:"metrics"`
		}{n, snap[n]})
	}
	_ = enc.Encode(ordered)
}

// serveFlight writes the flight-recorder snapshot — per-store decoded
// ring events and watchdog state — as indented JSON.
func serveFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := SnapshotFlight()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make([]struct {
		Name   string `json:"name"`
		Flight any    `json:"flight"`
	}, 0, len(names))
	for _, n := range names {
		ordered = append(ordered, struct {
			Name   string `json:"name"`
			Flight any    `json:"flight"`
		}{n, snap[n]})
	}
	_ = enc.Encode(ordered)
}

// serveTimeline writes every registered time-series ring — per-store
// deltified metric windows — as indented JSON.
func serveTimeline(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := SnapshotTimelines()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make([]struct {
		Name     string `json:"name"`
		Timeline any    `json:"timeline"`
	}, 0, len(names))
	for _, n := range names {
		ordered = append(ordered, struct {
			Name     string `json:"name"`
			Timeline any    `json:"timeline"`
		}{n, snap[n]})
	}
	_ = enc.Encode(ordered)
}

// serveProm streams the Prometheus text exposition (all registered
// collectors through one metadata-deduplicating writer).
func serveProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", prom.ContentType)
	WriteProm(prom.NewWriter(w))
}

// serveHealthz is liveness: the process is up and serving.
func serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// serveReadyz is readiness: 200 once every registered probe passes
// (recovery replayed, daemon started), 503 with the failing probe
// names otherwise — the signal a load balancer keys traffic on.
func serveReadyz(w http.ResponseWriter, _ *http.Request) {
	failed := notReady()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if len(failed) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(struct {
		Ready    bool     `json:"ready"`
		NotReady []string `json:"not_ready,omitempty"`
	}{len(failed) == 0, failed})
}

// Handler returns the debug mux: /debug/holistic (JSON snapshot of all
// registered sources), /debug/holistic/flight (decoded flight-recorder
// rings and watchdog state), /debug/holistic/timeline (per-store
// deltified metric windows), /metrics (Prometheus text exposition),
// /healthz and /readyz (liveness/readiness), /debug/vars (expvar,
// including the "holistic" variable) and /debug/pprof/* (the standard
// profiles).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/holistic", serveJSON)
	mux.HandleFunc("/debug/holistic/flight", serveFlight)
	mux.HandleFunc("/debug/holistic/timeline", serveTimeline)
	mux.HandleFunc("/metrics", serveProm)
	mux.HandleFunc("/healthz", serveHealthz)
	mux.HandleFunc("/readyz", serveReadyz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
