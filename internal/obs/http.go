// The process metrics registry and HTTP surface: named sources (each a
// snapshot function) are published together as JSON on /debug/holistic,
// as the expvar variable "holistic" on /debug/vars, and next to the
// standard pprof handlers — the endpoint cmd/holisticserve and
// `holisticbench -metrics-addr` mount.

package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

var (
	srcMu   sync.Mutex
	sources = map[string]func() any{}
)

// RegisterSource publishes a named snapshot source (e.g. one Store's
// Metrics). The function is called on every scrape and must be safe for
// concurrent use. Re-registering a name replaces the source.
func RegisterSource(name string, fn func() any) {
	srcMu.Lock()
	sources[name] = fn
	srcMu.Unlock()
}

// UnregisterSource removes a source; unknown names are a no-op.
func UnregisterSource(name string) {
	srcMu.Lock()
	delete(sources, name)
	srcMu.Unlock()
}

// SnapshotSources evaluates every registered source, keyed by name.
func SnapshotSources() map[string]any {
	srcMu.Lock()
	names := make([]string, 0, len(sources))
	fns := make([]func() any, 0, len(sources))
	for n, fn := range sources {
		names = append(names, n)
		fns = append(fns, fn)
	}
	srcMu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]() // outside the lock: sources may take their own
	}
	return out
}

// The expvar bridge: one variable holding every registered source, so
// the standard /debug/vars surface carries the holistic telemetry too.
func init() {
	expvar.Publish("holistic", expvar.Func(func() any { return SnapshotSources() }))
}

// serveJSON writes the full source snapshot as indented JSON.
func serveJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := SnapshotSources()
	// Stable top-level ordering for humans and smoke tests.
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make([]struct {
		Name    string `json:"name"`
		Metrics any    `json:"metrics"`
	}, 0, len(names))
	for _, n := range names {
		ordered = append(ordered, struct {
			Name    string `json:"name"`
			Metrics any    `json:"metrics"`
		}{n, snap[n]})
	}
	_ = enc.Encode(ordered)
}

// Handler returns the debug mux: /debug/holistic (JSON snapshot of all
// registered sources), /debug/vars (expvar, including the "holistic"
// variable) and /debug/pprof/* (the standard profiles).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/holistic", serveJSON)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
