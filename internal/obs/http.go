// The process metrics registry and HTTP surface: named sources (each a
// snapshot function) are published together as JSON on /debug/holistic,
// as the expvar variable "holistic" on /debug/vars, and next to the
// standard pprof handlers — the endpoint cmd/holisticserve and
// `holisticbench -metrics-addr` mount.

package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

var (
	srcMu   sync.Mutex
	sources = map[string]func() any{}
)

// RegisterSource publishes a named snapshot source (e.g. one Store's
// Metrics). The function is called on every scrape and must be safe for
// concurrent use. Re-registering a name replaces the source.
func RegisterSource(name string, fn func() any) {
	srcMu.Lock()
	sources[name] = fn
	srcMu.Unlock()
}

// UnregisterSource removes a source; unknown names are a no-op.
func UnregisterSource(name string) {
	srcMu.Lock()
	delete(sources, name)
	srcMu.Unlock()
}

// SnapshotSources evaluates every registered source, keyed by name.
func SnapshotSources() map[string]any {
	srcMu.Lock()
	names := make([]string, 0, len(sources))
	fns := make([]func() any, 0, len(sources))
	for n, fn := range sources {
		names = append(names, n)
		fns = append(fns, fn)
	}
	srcMu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]() // outside the lock: sources may take their own
	}
	return out
}

// The expvar bridge: one variable holding every registered source, so
// the standard /debug/vars surface carries the holistic telemetry too.
func init() {
	expvar.Publish("holistic", expvar.Func(func() any { return SnapshotSources() }))
}

var (
	flightMu      sync.Mutex
	flightSources = map[string]func() any{}
)

// RegisterFlight publishes a named flight-recorder source (decoded
// ring events plus watchdog state), served on /debug/holistic/flight.
// Re-registering a name replaces the source.
func RegisterFlight(name string, fn func() any) {
	flightMu.Lock()
	flightSources[name] = fn
	flightMu.Unlock()
}

// UnregisterFlight removes a flight source; unknown names are a no-op.
func UnregisterFlight(name string) {
	flightMu.Lock()
	delete(flightSources, name)
	flightMu.Unlock()
}

// SnapshotFlight evaluates every registered flight source by name.
func SnapshotFlight() map[string]any {
	flightMu.Lock()
	names := make([]string, 0, len(flightSources))
	fns := make([]func() any, 0, len(flightSources))
	for n, fn := range flightSources {
		names = append(names, n)
		fns = append(fns, fn)
	}
	flightMu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]() // outside the lock: sources may take their own
	}
	return out
}

var (
	readyMu     sync.Mutex
	readyProbes = map[string]func() bool{}
)

// RegisterReadiness publishes a named readiness probe consulted by
// /readyz: the endpoint reports ready only when every registered probe
// returns true. Re-registering a name replaces the probe.
func RegisterReadiness(name string, fn func() bool) {
	readyMu.Lock()
	readyProbes[name] = fn
	readyMu.Unlock()
}

// UnregisterReadiness removes a probe; unknown names are a no-op.
func UnregisterReadiness(name string) {
	readyMu.Lock()
	delete(readyProbes, name)
	readyMu.Unlock()
}

// notReady evaluates every probe and returns the names that failed.
func notReady() []string {
	readyMu.Lock()
	names := make([]string, 0, len(readyProbes))
	fns := make([]func() bool, 0, len(readyProbes))
	for n, fn := range readyProbes {
		names = append(names, n)
		fns = append(fns, fn)
	}
	readyMu.Unlock()
	var failed []string
	for i, fn := range fns {
		if !fn() {
			failed = append(failed, names[i])
		}
	}
	sort.Strings(failed)
	return failed
}

// serveJSON writes the full source snapshot as indented JSON.
func serveJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := SnapshotSources()
	// Stable top-level ordering for humans and smoke tests.
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make([]struct {
		Name    string `json:"name"`
		Metrics any    `json:"metrics"`
	}, 0, len(names))
	for _, n := range names {
		ordered = append(ordered, struct {
			Name    string `json:"name"`
			Metrics any    `json:"metrics"`
		}{n, snap[n]})
	}
	_ = enc.Encode(ordered)
}

// serveFlight writes the flight-recorder snapshot — per-store decoded
// ring events and watchdog state — as indented JSON.
func serveFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := SnapshotFlight()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make([]struct {
		Name   string `json:"name"`
		Flight any    `json:"flight"`
	}, 0, len(names))
	for _, n := range names {
		ordered = append(ordered, struct {
			Name   string `json:"name"`
			Flight any    `json:"flight"`
		}{n, snap[n]})
	}
	_ = enc.Encode(ordered)
}

// serveHealthz is liveness: the process is up and serving.
func serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// serveReadyz is readiness: 200 once every registered probe passes
// (recovery replayed, daemon started), 503 with the failing probe
// names otherwise — the signal a load balancer keys traffic on.
func serveReadyz(w http.ResponseWriter, _ *http.Request) {
	failed := notReady()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if len(failed) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(struct {
		Ready    bool     `json:"ready"`
		NotReady []string `json:"not_ready,omitempty"`
	}{len(failed) == 0, failed})
}

// Handler returns the debug mux: /debug/holistic (JSON snapshot of all
// registered sources), /debug/holistic/flight (decoded flight-recorder
// rings and watchdog state), /healthz and /readyz (liveness/readiness),
// /debug/vars (expvar, including the "holistic" variable) and
// /debug/pprof/* (the standard profiles).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/holistic", serveJSON)
	mux.HandleFunc("/debug/holistic/flight", serveFlight)
	mux.HandleFunc("/healthz", serveHealthz)
	mux.HandleFunc("/readyz", serveReadyz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
