// Package obs is the telemetry core: lock-free counters, log-linear
// latency histograms, pooled per-query execution traces and the process
// metrics registry behind Store.Metrics, /debug/holistic and the JSONL
// trace sink.
//
// Everything on the recording side is built to be callable from
// //holistic:noalloc hot paths: counters and histogram buckets are
// plain atomics, traces are pooled and filled through self-append
// scratch, and every record function is annotated and verified by
// holisticlint. The reading side (snapshots, quantiles, JSON) is cold
// and allocates freely.
//
// The package depends only on the standard library so every layer of
// the engine — column kernels, executors, the query runner, the
// daemon — can record into it without import cycles.
package obs

import "sync/atomic"

// Counter is a lock-free monotonic (or signed) event counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//holistic:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//holistic:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
//
//holistic:noalloc
func (c *Counter) Load() int64 { return c.v.Load() }

// Op identifies one query-operator shape for per-op latency histograms.
type Op uint8

const (
	OpCount Op = iota
	OpSum
	OpMinMax
	OpRows
	OpValues
	OpGrouped
	OpJoin
	// NumOps sizes per-op arrays.
	NumOps
)

// String names the op as it appears in snapshots and trace kinds.
func (o Op) String() string {
	switch o {
	case OpCount:
		return "count"
	case OpSum:
		return "sum"
	case OpMinMax:
		return "minmax"
	case OpRows:
		return "rows"
	case OpValues:
		return "values"
	case OpGrouped:
		return "grouped"
	case OpJoin:
		return "join"
	default:
		return "op?"
	}
}

// Trace kinds mirror the op names; QueryTrace.Kind uses them.
const (
	KindCount   = "count"
	KindSum     = "sum"
	KindMinMax  = "minmax"
	KindRows    = "rows"
	KindValues  = "values"
	KindGrouped = "grouped"
	KindJoin    = "join"
)

// Rep identifies the intermediate selection-vector representation a
// conjunctive query executed with.
type Rep uint8

const (
	// RepBitmap: word-packed bitmap intermediates.
	RepBitmap Rep = iota
	// RepPosList: materialized position-list intermediates.
	RepPosList
	// RepNative: a single conjunct answered by the mode's native
	// pushdown, no intermediate at all.
	RepNative
	// NumReps sizes per-representation arrays.
	NumReps
)

// String names the representation.
func (r Rep) String() string {
	switch r {
	case RepBitmap:
		return "bitmap"
	case RepPosList:
		return "poslist"
	case RepNative:
		return "native"
	default:
		return "rep?"
	}
}

// Strat identifies one executed physical strategy of the grouped or
// join subsystem; the per-runner strategy counters and the transition
// timeline are keyed by it.
type Strat uint8

const (
	StratGroupDense Strat = iota
	StratGroupHash
	StratGroupSort
	StratJoinHash
	StratJoinMerge
	// NumStrats sizes per-strategy arrays.
	NumStrats
)

// Subsystem names the strategy's subsystem ("groupby" or "join").
func (s Strat) Subsystem() string {
	if s >= StratJoinHash {
		return "join"
	}
	return "groupby"
}

// subIndex keys the per-subsystem last-strategy slots of the timeline.
//
//holistic:noalloc
func (s Strat) subIndex() int {
	if s >= StratJoinHash {
		return 1
	}
	return 0
}

// String names the strategy.
func (s Strat) String() string {
	switch s {
	case StratGroupDense:
		return "dense"
	case StratGroupHash:
		return "hash"
	case StratGroupSort:
		return "sort"
	case StratJoinHash:
		return "hash"
	case StratJoinMerge:
		return "merge"
	default:
		return "strat?"
	}
}
