package obs

// DurableMetrics counts the persistence layer's activity: the write-
// ahead log, the background snapshotter, and — set once at open — what
// recovery found and replayed. All counters are lock-free; the WAL
// counters sit on the (cold) logged-write path, the recovery counters
// are written before the store serves queries.
type DurableMetrics struct {
	// WAL activity.
	WALRecords Counter // records appended
	WALBytes   Counter // payload bytes framed

	// Snapshot activity.
	Snapshots        Counter // snapshot generations committed
	SnapshotFailures Counter // checkpoint attempts that failed

	// Recovery findings, written once at OpenStore.
	ReplayedRecords   Counter // WAL records re-applied
	ReplayErrors      Counter // replayed operations that re-failed (deterministic no-ops)
	ManifestFallbacks Counter // generations skipped as torn/corrupt
	RestoredIndexes   Counter // adaptive indexes rebuilt from state
	DroppedIndexes    Counter // state sections dropped to unrefined

	// Flight-recorder dumps (see DESIGN.md §11).
	FlightDumps        Counter // dumps committed (checkpoint + anomaly)
	FlightDumpFailures Counter // dump writes that failed
	PriorFlightDumps   Counter // dumps found on disk at open (post-mortems)
}

// DurableSnapshot is the JSON shape served on /debug/holistic under
// "recovery". The non-counter fields (sync count, clean/torn flags and
// the live generation) are filled by the store from the WAL and the
// recovery record.
type DurableSnapshot struct {
	WALRecords        int64  `json:"wal_records"`
	WALSyncs          int64  `json:"wal_syncs"`
	WALBytes          int64  `json:"wal_bytes"`
	Snapshots         int64  `json:"snapshots"`
	SnapshotFailures  int64  `json:"snapshot_failures"`
	ReplayedRecords   int64  `json:"replayed_records"`
	ReplayErrors      int64  `json:"replay_errors"`
	ManifestFallbacks int64  `json:"manifest_fallbacks"`
	RestoredIndexes   int64  `json:"restored_indexes"`
	DroppedIndexes    int64  `json:"dropped_indexes"`
	CleanStart        bool   `json:"clean_start"`
	TornWALTail       bool   `json:"torn_wal_tail"`
	Generation        uint64 `json:"generation"`

	FlightDumps        int64  `json:"flight_dumps"`
	FlightDumpFailures int64  `json:"flight_dump_failures"`
	PriorFlightDumps   int64  `json:"prior_flight_dumps"`
	LastFlightDump     string `json:"last_flight_dump,omitempty"`
}

// Snapshot captures the current counter values.
func (m *DurableMetrics) Snapshot() *DurableSnapshot {
	return &DurableSnapshot{
		WALRecords:        m.WALRecords.Load(),
		WALBytes:          m.WALBytes.Load(),
		Snapshots:         m.Snapshots.Load(),
		SnapshotFailures:  m.SnapshotFailures.Load(),
		ReplayedRecords:   m.ReplayedRecords.Load(),
		ReplayErrors:      m.ReplayErrors.Load(),
		ManifestFallbacks: m.ManifestFallbacks.Load(),
		RestoredIndexes:   m.RestoredIndexes.Load(),
		DroppedIndexes:    m.DroppedIndexes.Load(),

		FlightDumps:        m.FlightDumps.Load(),
		FlightDumpFailures: m.FlightDumpFailures.Load(),
		PriorFlightDumps:   m.PriorFlightDumps.Load(),
	}
}
