// Package prom renders the Prometheus text exposition format
// (version 0.0.4) with the standard library only: HELP/TYPE metadata,
// escaped labels, histogram bucket/sum/count triples. It is a writer,
// not a registry — collectors own their metric state and stream
// samples through one Writer per scrape, which deduplicates metadata
// so several stores exporting the same metric families stay parseable.
//
// Everything here is scrape-path (cold) code; it allocates freely.
package prom

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the scrape response content type for this format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair. Label names must be valid metric
// identifiers (the writer does not re-validate); values are escaped.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Writer streams one exposition. Metadata is emitted once per metric
// family regardless of how many collectors contribute samples.
type Writer struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewWriter wraps w. Write errors stick: the first one is retained and
// every later call is a no-op, so collectors don't need to check each
// emission.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *Writer) Err() error { return p.err }

func (p *Writer) write(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

// Meta emits the # HELP and # TYPE lines for a metric family, once.
// typ is one of "counter", "gauge", "histogram", "untyped".
func (p *Writer) Meta(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.write("# HELP " + name + " " + escapeHelp(help) + "\n")
	p.write("# TYPE " + name + " " + typ + "\n")
}

// Sample emits one sample line.
func (p *Writer) Sample(name string, labels []Label, v float64) {
	p.write(name)
	p.writeLabels(labels)
	p.write(" " + formatValue(v) + "\n")
}

// IntSample emits one sample line with an integer value.
func (p *Writer) IntSample(name string, labels []Label, v int64) {
	p.write(name)
	p.writeLabels(labels)
	p.write(" " + strconv.FormatInt(v, 10) + "\n")
}

// Bucket emits one cumulative histogram bucket: name_bucket{...,le="le"}.
// The le string is the caller's to format ("250000", "+Inf").
func (p *Writer) Bucket(name string, labels []Label, le string, cum uint64) {
	p.write(name + "_bucket")
	p.writeLabelsExtra(labels, Label{Name: "le", Value: le})
	p.write(" " + strconv.FormatUint(cum, 10) + "\n")
}

// HistogramTail emits the _sum and _count series that close out one
// labeled histogram.
func (p *Writer) HistogramTail(name string, labels []Label, sum float64, count uint64) {
	p.write(name + "_sum")
	p.writeLabels(labels)
	p.write(" " + formatValue(sum) + "\n")
	p.write(name + "_count")
	p.writeLabels(labels)
	p.write(" " + strconv.FormatUint(count, 10) + "\n")
}

func (p *Writer) writeLabels(labels []Label) {
	if len(labels) == 0 {
		return
	}
	p.write("{")
	for i, l := range labels {
		if i > 0 {
			p.write(",")
		}
		p.write(l.Name + "=\"" + escapeValue(l.Value) + "\"")
	}
	p.write("}")
}

func (p *Writer) writeLabelsExtra(labels []Label, extra Label) {
	p.write("{")
	for _, l := range labels {
		p.write(l.Name + "=\"" + escapeValue(l.Value) + "\",")
	}
	p.write(extra.Name + "=\"" + escapeValue(extra.Value) + "\"}")
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, with the spec spellings for specials.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	valueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeValue(s string) string { return valueEscaper.Replace(s) }
