package prom

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden pins the exact byte-for-byte exposition for a
// representative scrape: metadata deduplication across collectors,
// label escaping, integer and float formatting, and a full histogram
// bucket/sum/count group.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	w.Meta("holistic_queries_total", "Total queries executed.", "counter")
	w.IntSample("holistic_queries_total", []Label{L("store", "s1")}, 42)
	// A second store contributes to the same family: the metadata must
	// not repeat (duplicate HELP/TYPE lines are a parse error).
	w.Meta("holistic_queries_total", "Total queries executed.", "counter")
	w.IntSample("holistic_queries_total", []Label{L("store", "s2")}, 7)

	w.Meta("holistic_convergence_ratio", "Daemon convergence ratio.", "gauge")
	w.Sample("holistic_convergence_ratio",
		[]Label{L("store", `quo"te`), L("mode", `hol\istic`)}, 0.875)

	w.Meta("holistic_up", "Exposition liveness.", "gauge")
	w.Sample("holistic_up", nil, 1)

	w.Meta("holistic_query_latency_ns", "Merged query latency distribution.", "histogram")
	hl := []Label{L("store", "s1")}
	w.Bucket("holistic_query_latency_ns", hl, "1000", 3)
	w.Bucket("holistic_query_latency_ns", hl, "100000", 9)
	w.Bucket("holistic_query_latency_ns", hl, "+Inf", 10)
	w.HistogramTail("holistic_query_latency_ns", hl, 1.25e6, 10)

	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestFormatValue pins the spec spellings for special values.
func TestFormatValue(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		v    float64
		want string
	}{
		{1, "1"}, {0.875, "0.875"}, {1.25e6, "1.25e+06"},
		{inf, "+Inf"}, {-inf, "-Inf"},
	}
	for _, c := range cases {
		if got := formatValue(c.v); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := formatValue(inf - inf); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 2 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestErrSticks: the first write error is retained and later emissions
// become no-ops, so collectors can stream without per-line checks.
func TestErrSticks(t *testing.T) {
	fw := &failWriter{}
	w := NewWriter(fw)
	for i := 0; i < 10; i++ {
		w.Meta("m", "h", "counter")
		w.IntSample("m", nil, int64(i))
	}
	if w.Err() == nil {
		t.Fatal("error did not stick")
	}
	writes := fw.n
	w.IntSample("m", nil, 99)
	if fw.n != writes {
		t.Fatal("writer kept writing after error")
	}
}
