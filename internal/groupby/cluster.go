package groupby

import (
	"math"
	"slices"

	"holistic/internal/column"
)

// aggSrc is the per-aggregate fetch path of the cluster walk: the bare
// base array when the view is plain (the common, fast case), the
// overlay-aware view otherwise.
type aggSrc struct {
	kind Kind
	base []int64
	view column.View
}

//holistic:noalloc
func (s *aggSrc) at(row uint32) (int64, bool) {
	if s.base != nil {
		return s.base[row], true
	}
	return s.view.At(row)
}

// clusterState is the pooled local accumulator of the sort strategy:
// dense arrays sized to the per-cluster bound, reset via a touched-slot
// list so a walk over many small clusters never pays a full clear.
type clusterState struct {
	counts  []int64
	accs    [][]int64
	touched []int32
	srcs    []aggSrc
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func (st *runState) clusterFor(spec *Spec, slots int) *clusterState {
	cs := st.cluster
	if cs == nil {
		cs = &clusterState{}
		st.cluster = cs
	}
	cs.counts = resizeZero(cs.counts, slots)
	for len(cs.accs) < len(spec.Aggs) {
		cs.accs = append(cs.accs, nil)
	}
	cs.accs = cs.accs[:len(spec.Aggs)]
	for a, agg := range spec.Aggs {
		if agg.Kind == KindCount {
			cs.accs[a] = cs.accs[a][:0]
			continue
		}
		if cap(cs.accs[a]) < slots {
			cs.accs[a] = make([]int64, slots)
		}
		cs.accs[a] = cs.accs[a][:slots]
	}
	cs.touched = cs.touched[:0]
	cs.srcs = cs.srcs[:0]
	for a, agg := range spec.Aggs {
		src := aggSrc{kind: agg.Kind}
		if agg.Kind != KindCount {
			if v := spec.AggViews[a]; v.Plain() {
				src.base = v.Base
			} else {
				src.view = v
			}
		}
		cs.srcs = append(cs.srcs, src)
	}
	return cs
}

// identityPk treats a raw int64 key as its own 64-bit composite, so the
// per-cluster hash fallback needs no domain knowledge at all.
var identityPk = packing{
	los:    []int64{0},
	spans:  []uint64{math.MaxUint64},
	shifts: []uint{0},
	bits:   64,
}

// GroupClusters executes the fused plan with sort-based (index-
// clustered) grouping: walk streams the single group-key attribute in
// ascending key-cluster order (engine.KeyOrderWalker's contract —
// cluster value sets disjoint and ascending), each cluster is
// aggregated locally, and groups append to res already in key order.
// No global hash table exists at any point; a cluster whose observed
// key span fits Spec.ClusterSlots uses a dense local accumulator
// (post-refinement clusters always do — that is the holistic payoff), a
// wider one falls back to a small per-cluster hash.
//
// bm is the selection vector over base row ids; rows outside it are
// skipped. The key values come from the index stream itself (the walk
// reflects the attribute's current, merged state), while the aggregate
// attributes are fetched through their update-aware views.
//
//holistic:noalloc
func GroupClusters(spec *Spec, bm *column.Bitmap, walk func(fn func(vals []int64, rows []uint32)), res *Result) error {
	if err := spec.validate(); err != nil {
		return err
	}
	if len(spec.Keys) != 1 {
		return errf("groupby: sort-based grouping needs exactly one group-by attribute, have %d", len(spec.Keys))
	}
	if bm == nil {
		return errf("groupby: sort-based grouping needs a bitmap selection vector")
	}
	res.reset(1, len(spec.Aggs))
	res.Strategy = StrategySort
	if !bm.Any() {
		return nil
	}
	st := getRunState()
	defer putRunState(st)
	slots := spec.clusterSlots()
	cs := st.clusterFor(spec, slots)
	var h *hashState
	walk(func(vals []int64, rows []uint32) {
		// Pass 1: bounds and population of the selected rows.
		var mn, mx int64
		cnt := 0
		for i, row := range rows {
			if !bm.Test(row) {
				continue
			}
			v := vals[i]
			if cnt == 0 || v < mn {
				mn = v
			}
			if cnt == 0 || v > mx {
				mx = v
			}
			cnt++
		}
		if cnt == 0 {
			return
		}
		if span := uint64(mx-mn) + 1; span <= uint64(slots) {
			clusterDense(cs, bm, vals, rows, mn, res)
			return
		}
		// Unrefined cluster: a local hash, emptied after every cluster.
		if h == nil {
			h = st.hashFor(spec)
		} else {
			h.reset(spec)
		}
		clusterHash(spec, cs, h, bm, vals, rows, res)
	})
	return nil
}

// clusterDense aggregates one cluster through the dense local
// accumulator (slot = key - mn) and emits its groups in key order.
//
//holistic:noalloc
func clusterDense(cs *clusterState, bm *column.Bitmap, vals []int64, rows []uint32, mn int64, res *Result) {
	for i, row := range rows {
		if !bm.Test(row) {
			continue
		}
		slot := int32(vals[i] - mn)
		if cs.counts[slot] == 0 {
			cs.touched = append(cs.touched, slot)
			for a := range cs.srcs {
				switch cs.srcs[a].kind {
				case KindSum:
					cs.accs[a][slot] = 0
				case KindMin:
					cs.accs[a][slot] = math.MaxInt64
				case KindMax:
					cs.accs[a][slot] = math.MinInt64
				}
			}
		}
		cs.counts[slot]++
		for a := range cs.srcs {
			src := &cs.srcs[a]
			if src.kind == KindCount {
				continue
			}
			v, ok := src.at(row)
			if !ok {
				continue
			}
			switch src.kind {
			case KindSum:
				cs.accs[a][slot] += v
			case KindMin:
				if v < cs.accs[a][slot] {
					cs.accs[a][slot] = v
				}
			case KindMax:
				if v > cs.accs[a][slot] {
					cs.accs[a][slot] = v
				}
			}
		}
	}
	slices.Sort(cs.touched)
	for _, slot := range cs.touched {
		res.Keys[0] = append(res.Keys[0], mn+int64(slot))
		for a := range cs.srcs {
			if cs.srcs[a].kind == KindCount {
				res.Aggs[a] = append(res.Aggs[a], cs.counts[slot])
			} else {
				res.Aggs[a] = append(res.Aggs[a], cs.accs[a][slot])
			}
		}
		cs.counts[slot] = 0
	}
	cs.touched = cs.touched[:0]
}

// clusterHash aggregates one over-wide cluster through a local hash
// table; ordering within the cluster comes from the hash emit sort, and
// cluster disjointness keeps the global order intact.
//
//holistic:noalloc
func clusterHash(spec *Spec, cs *clusterState, h *hashState, bm *column.Bitmap, vals []int64, rows []uint32, res *Result) {
	for i, row := range rows {
		if !bm.Test(row) {
			continue
		}
		g := h.groupOf(spec, &identityPk, uint64(vals[i]))
		h.counts[g]++
		for a := range cs.srcs {
			src := &cs.srcs[a]
			if src.kind == KindCount {
				continue
			}
			v, ok := src.at(row)
			if !ok {
				continue
			}
			switch src.kind {
			case KindSum:
				h.accs[a][g] += v
			case KindMin:
				if v < h.accs[a][g] {
					h.accs[a][g] = v
				}
			case KindMax:
				if v > h.accs[a][g] {
					h.accs[a][g] = v
				}
			}
		}
	}
	emitHash(spec, h, res)
}
