package groupby

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"holistic/internal/column"
)

// oracleGroup computes the expected result by brute force: a map from
// key tuple to accumulators, emitted in ascending lexicographic order.
func oracleGroup(keyCols [][]int64, aggSpecs []Agg, aggCols [][]int64, sel []uint32) ([][]int64, [][]int64) {
	type acc struct {
		count int64
		vals  []int64
	}
	groups := map[string]*acc{}
	var order []string
	keyOf := make(map[string][]int64)
	for _, p := range sel {
		key := make([]int64, len(keyCols))
		raw := ""
		for k, col := range keyCols {
			key[k] = col[p]
			raw += string(rune(0)) + itoa(col[p])
		}
		g, ok := groups[raw]
		if !ok {
			g = &acc{vals: make([]int64, len(aggSpecs))}
			for a, s := range aggSpecs {
				switch s.Kind {
				case KindMin:
					g.vals[a] = math.MaxInt64
				case KindMax:
					g.vals[a] = math.MinInt64
				}
			}
			groups[raw] = g
			order = append(order, raw)
			keyOf[raw] = key
		}
		g.count++
		for a, s := range aggSpecs {
			if s.Kind == KindCount {
				continue
			}
			v := aggCols[a][p]
			switch s.Kind {
			case KindSum:
				g.vals[a] += v
			case KindMin:
				if v < g.vals[a] {
					g.vals[a] = v
				}
			case KindMax:
				if v > g.vals[a] {
					g.vals[a] = v
				}
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := keyOf[order[i]], keyOf[order[j]]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	keys := make([][]int64, len(keyCols))
	aggs := make([][]int64, len(aggSpecs))
	for _, raw := range order {
		g := groups[raw]
		for k := range keyCols {
			keys[k] = append(keys[k], keyOf[raw][k])
		}
		for a, s := range aggSpecs {
			if s.Kind == KindCount {
				aggs[a] = append(aggs[a], g.count)
			} else {
				aggs[a] = append(aggs[a], g.vals[a])
			}
		}
	}
	return keys, aggs
}

func itoa(v int64) string {
	// Unique string encoding; value separator keeps (1, 23) != (12, 3).
	buf := make([]byte, 0, 12)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(u>>(8*i)))
	}
	return string(buf)
}

// checkEqual compares a Result against oracle columns.
func checkEqual(t *testing.T, res *Result, wantKeys, wantAggs [][]int64) {
	t.Helper()
	if len(res.Keys) != len(wantKeys) || len(res.Aggs) != len(wantAggs) {
		t.Fatalf("shape = %d keys / %d aggs, want %d / %d", len(res.Keys), len(res.Aggs), len(wantKeys), len(wantAggs))
	}
	n := 0
	if len(wantKeys) > 0 {
		n = len(wantKeys[0])
	}
	if res.Len() != n {
		t.Fatalf("groups = %d, want %d (strategy %v)", res.Len(), n, res.Strategy)
	}
	for k := range wantKeys {
		for g := range wantKeys[k] {
			if res.Keys[k][g] != wantKeys[k][g] {
				t.Fatalf("key[%d][%d] = %d, want %d (strategy %v)", k, g, res.Keys[k][g], wantKeys[k][g], res.Strategy)
			}
		}
	}
	for a := range wantAggs {
		for g := range wantAggs[a] {
			if res.Aggs[a][g] != wantAggs[a][g] {
				t.Fatalf("agg[%d][%d] = %d, want %d (strategy %v)", a, g, res.Aggs[a][g], wantAggs[a][g], res.Strategy)
			}
		}
	}
}

// buildSpec assembles a spec over plain columns with exact domains.
func buildSpec(keyCols, aggCols [][]int64, aggSpecs []Agg, threads int) *Spec {
	spec := &Spec{Aggs: aggSpecs, Threads: threads}
	for _, col := range keyCols {
		lo, hi := column.Bounds(col)
		spec.Keys = append(spec.Keys, Key{View: column.View{Base: col}, Lo: lo, Hi: hi})
	}
	for a := range aggSpecs {
		var v column.View
		if aggSpecs[a].Kind != KindCount {
			v = column.View{Base: aggCols[a]}
		}
		spec.AggViews = append(spec.AggViews, v)
	}
	return spec
}

// TestStrategiesAgreeWithOracle runs randomized fused plans through the
// dense and hash strategies — sequential and partition-parallel, both
// selection-vector forms — against the brute-force oracle.
func TestStrategiesAgreeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		rows := 500 + rng.Intn(4000)
		nkeys := 1 + rng.Intn(3)
		keyCols := make([][]int64, nkeys)
		for k := range keyCols {
			domain := int64(2 + rng.Intn(40))
			base := rng.Int63n(100) - 50
			col := make([]int64, rows)
			for i := range col {
				col[i] = base + rng.Int63n(domain)
			}
			keyCols[k] = col
		}
		aggSpecs := []Agg{Count(), Sum("x"), Min("x"), Max("x")}
		aggCols := make([][]int64, len(aggSpecs))
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = rng.Int63n(10000) - 5000
		}
		for a := range aggCols {
			aggCols[a] = vals
		}
		aggCols[0] = nil

		var sel column.PosList
		bm := column.NewBitmap(rows)
		for i := 0; i < rows; i++ {
			if rng.Intn(3) != 0 {
				sel = append(sel, column.Pos(i))
				bm.Set(column.Pos(i))
			}
		}
		wantKeys, wantAggs := oracleGroup(keyCols, aggSpecs, aggCols, sel)

		for _, threads := range []int{1, 4} {
			for _, force := range []Strategy{StrategyAuto, StrategyDense, StrategyHash} {
				spec := buildSpec(keyCols, aggCols, aggSpecs, threads)
				spec.Force = force
				var res Result
				if err := GroupRows(spec, sel, &res); err != nil {
					t.Fatal(err)
				}
				checkEqual(t, &res, wantKeys, wantAggs)
				if err := GroupBitmap(spec, bm, &res); err != nil {
					t.Fatal(err)
				}
				checkEqual(t, &res, wantKeys, wantAggs)
			}
		}
	}
}

// TestParallelCrossesThreshold exercises the partition-parallel merge on
// a selection large enough to split.
func TestParallelCrossesThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows := minParallel * 3
	keyCol := make([]int64, rows)
	val := make([]int64, rows)
	for i := range keyCol {
		keyCol[i] = rng.Int63n(97)
		val[i] = rng.Int63n(1000)
	}
	sel := make(column.PosList, rows)
	for i := range sel {
		sel[i] = column.Pos(i)
	}
	aggSpecs := []Agg{Count(), Sum("v"), Min("v"), Max("v")}
	aggCols := [][]int64{nil, val, val, val}
	wantKeys, wantAggs := oracleGroup([][]int64{keyCol}, aggSpecs, aggCols, sel)
	for _, force := range []Strategy{StrategyDense, StrategyHash} {
		spec := buildSpec([][]int64{keyCol}, aggCols, aggSpecs, 4)
		spec.Force = force
		var res Result
		if err := GroupRows(spec, sel, &res); err != nil {
			t.Fatal(err)
		}
		if res.Strategy != force {
			t.Fatalf("strategy = %v, want %v", res.Strategy, force)
		}
		checkEqual(t, &res, wantKeys, wantAggs)
	}
}

// TestWideCompositeFallsBackToTupleHash: a composite key wider than 64
// bits cannot pack; the tuple-keyed hash must still group correctly.
func TestWideCompositeFallsBackToTupleHash(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows := 2000
	k1 := make([]int64, rows)
	k2 := make([]int64, rows)
	val := make([]int64, rows)
	for i := range k1 {
		// Spans close to the full int64 range: 63 + 63 bits > 64.
		k1[i] = rng.Int63n(5) * (math.MaxInt64 / 7)
		k2[i] = rng.Int63n(5) * (math.MaxInt64 / 11)
		val[i] = rng.Int63n(100)
	}
	sel := make(column.PosList, rows)
	for i := range sel {
		sel[i] = column.Pos(i)
	}
	aggSpecs := []Agg{Count(), Sum("v")}
	aggCols := [][]int64{nil, val}
	wantKeys, wantAggs := oracleGroup([][]int64{k1, k2}, aggSpecs, aggCols, sel)
	spec := buildSpec([][]int64{k1, k2}, aggCols, aggSpecs, 1)
	var res Result
	if err := GroupRows(spec, sel, &res); err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyHash {
		t.Fatalf("strategy = %v, want hash", res.Strategy)
	}
	checkEqual(t, &res, wantKeys, wantAggs)
}

// TestStaleDomainFallsBackToHash: a key value outside the declared
// domain must not corrupt the dense path — the execution reruns through
// the hash accumulator and stays correct.
func TestStaleDomainFallsBackToHash(t *testing.T) {
	keyCol := []int64{1, 2, 3, 99} // 99 escapes the declared [1, 3]
	val := []int64{10, 20, 30, 40}
	sel := column.PosList{0, 1, 2, 3}
	aggSpecs := []Agg{Count(), Sum("v")}
	spec := &Spec{
		Keys:     []Key{{View: column.View{Base: keyCol}, Lo: 1, Hi: 3}},
		Aggs:     aggSpecs,
		AggViews: []column.View{{}, {Base: val}},
		Threads:  1,
	}
	var res Result
	if err := GroupRows(spec, sel, &res); err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyHash {
		t.Fatalf("strategy = %v, want hash fallback", res.Strategy)
	}
	wantKeys, wantAggs := oracleGroup([][]int64{keyCol}, aggSpecs, [][]int64{nil, val}, sel)
	checkEqual(t, &res, wantKeys, wantAggs)
}

// TestOverlayViews groups through views carrying tails, deletions and
// updates: the grouped state must reflect the logical overlay.
func TestOverlayViews(t *testing.T) {
	base := []int64{1, 1, 2, 2}
	valBase := []int64{10, 20, 30, 40}
	keyView := column.View{
		Base:    base,
		Tail:    []int64{3},
		Updated: map[column.Pos]int64{0: 2},
	}
	valView := column.View{
		Base: valBase,
		Tail: []int64{50},
	}
	// Row 0's key updated 1→2; row 4 appended with key 3, value 50.
	sel := column.PosList{0, 1, 2, 3, 4}
	lo, hi := keyView.ExtendBounds(column.Bounds(base))
	spec := &Spec{
		Keys:     []Key{{View: keyView, Lo: lo, Hi: hi}},
		Aggs:     []Agg{Count(), Sum("v")},
		AggViews: []column.View{{}, valView},
		Threads:  1,
	}
	var res Result
	if err := GroupRows(spec, sel, &res); err != nil {
		t.Fatal(err)
	}
	wantKeys := []int64{1, 2, 3}
	wantCounts := []int64{1, 3, 1}
	wantSums := []int64{20, 80, 50}
	if res.Len() != 3 {
		t.Fatalf("groups = %d, want 3", res.Len())
	}
	for g := range wantKeys {
		if res.Keys[0][g] != wantKeys[g] || res.Aggs[0][g] != wantCounts[g] || res.Aggs[1][g] != wantSums[g] {
			t.Fatalf("group %d = (%d, %d, %d), want (%d, %d, %d)", g,
				res.Keys[0][g], res.Aggs[0][g], res.Aggs[1][g], wantKeys[g], wantCounts[g], wantSums[g])
		}
	}
}

// TestGroupClusters drives the sort strategy through a synthetic walker
// over a cracked-style clustering (unordered within clusters, ascending
// across) and checks it against the oracle, for both refined (small)
// and unrefined (hash-fallback) clusters.
func TestGroupClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rows := 6000
	keyCol := make([]int64, rows)
	val := make([]int64, rows)
	for i := range keyCol {
		keyCol[i] = rng.Int63n(1 << 20) // wide domain: unrefined clusters go through the hash
		val[i] = rng.Int63n(1000)
	}
	bm := column.NewBitmap(rows)
	var sel column.PosList
	for i := 0; i < rows; i++ {
		if rng.Intn(4) != 0 {
			bm.Set(column.Pos(i))
			sel = append(sel, column.Pos(i))
		}
	}
	aggSpecs := []Agg{Count(), Sum("v"), Min("v"), Max("v")}
	aggCols := [][]int64{nil, val, val, val}
	wantKeys, wantAggs := oracleGroup([][]int64{keyCol}, aggSpecs, aggCols, sel)

	// Build a clustered stream: sort (value, row) pairs, then cut into
	// clusters at value boundaries and shuffle within each cluster.
	type pair struct {
		v int64
		r uint32
	}
	pairs := make([]pair, rows)
	for i := range pairs {
		pairs[i] = pair{keyCol[i], uint32(i)}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	for _, clusterSlots := range []int{0 /* default: dense clusters */, 64 /* tiny: force hash clusters */} {
		var clusters [][]pair
		for i := 0; i < rows; {
			j := i + 1 + rng.Intn(500)
			if j > rows {
				j = rows
			}
			// Never split equal values across clusters.
			for j < rows && pairs[j].v == pairs[j-1].v {
				j++
			}
			c := append([]pair(nil), pairs[i:j]...)
			rng.Shuffle(len(c), func(a, b int) { c[a], c[b] = c[b], c[a] })
			clusters = append(clusters, c)
			i = j
		}
		spec := buildSpec([][]int64{keyCol}, aggCols, aggSpecs, 1)
		spec.ClusterSlots = clusterSlots
		var res Result
		err := GroupClusters(spec, bm, func(fn func(vals []int64, rows []uint32)) {
			vbuf := make([]int64, 0, 600)
			rbuf := make([]uint32, 0, 600)
			for _, c := range clusters {
				vbuf, rbuf = vbuf[:0], rbuf[:0]
				for _, p := range c {
					vbuf = append(vbuf, p.v)
					rbuf = append(rbuf, p.r)
				}
				fn(vbuf, rbuf)
			}
		}, &res)
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategySort {
			t.Fatalf("strategy = %v, want sort", res.Strategy)
		}
		checkEqual(t, &res, wantKeys, wantAggs)
	}
}

// TestAccMatchesOracle streams slice segments (the sideways-cracking
// feed) and checks the ordered result, including the dense → hash
// migration on an escaping key.
func TestAccMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rows := 5000
	k1 := make([]int64, rows)
	k2 := make([]int64, rows)
	val := make([]int64, rows)
	for i := range k1 {
		k1[i] = rng.Int63n(3)
		k2[i] = rng.Int63n(5)
		val[i] = rng.Int63n(100)
	}
	sel := make(column.PosList, rows)
	for i := range sel {
		sel[i] = column.Pos(i)
	}
	aggSpecs := []Agg{Sum("v"), Count(), Min("v")}
	aggCols := [][]int64{val, nil, val}
	wantKeys, wantAggs := oracleGroup([][]int64{k1, k2}, aggSpecs, aggCols, sel)

	acc, err := NewAcc([]Key{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 4}}, aggSpecs)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < rows; off += 700 {
		end := off + 700
		if end > rows {
			end = rows
		}
		acc.Segment([][]int64{k1[off:end], k2[off:end]}, [][]int64{val[off:end], nil, val[off:end]})
	}
	var res Result
	if err := acc.Finish(&res); err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyDense {
		t.Fatalf("strategy = %v, want dense", res.Strategy)
	}
	checkEqual(t, &res, wantKeys, wantAggs)

	// Stale domain: declare [0, 1] but feed a 2 — the accumulator must
	// migrate to hash and stay correct.
	acc2, err := NewAcc([]Key{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 4}}, aggSpecs)
	if err != nil {
		t.Fatal(err)
	}
	acc2.Segment([][]int64{k1, k2}, [][]int64{val, nil, val})
	if err := acc2.Finish(&res); err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyHash {
		t.Fatalf("post-migration strategy = %v, want hash", res.Strategy)
	}
	checkEqual(t, &res, wantKeys, wantAggs)
}

// TestEmptySelection and validation errors.
func TestEdgeCases(t *testing.T) {
	keyCol := []int64{1, 2, 3}
	spec := buildSpec([][]int64{keyCol}, [][]int64{nil}, []Agg{Count()}, 1)
	var res Result
	if err := GroupRows(spec, nil, &res); err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("empty selection produced %d groups", res.Len())
	}
	if err := GroupRows(&Spec{Aggs: []Agg{Count()}}, column.PosList{0}, &res); err == nil {
		t.Error("no keys did not error")
	}
	if err := GroupRows(&Spec{Keys: spec.Keys}, column.PosList{0}, &res); err == nil {
		t.Error("no aggregates did not error")
	}
	if err := GroupClusters(buildSpec([][]int64{keyCol, keyCol}, [][]int64{nil}, []Agg{Count()}, 1), column.NewBitmap(3), func(func([]int64, []uint32)) {}, &res); err == nil {
		t.Error("multi-key sort grouping did not error")
	}
	// Result reuse: a second run truncates prior groups.
	sel := column.PosList{0, 1, 2}
	if err := GroupRows(spec, sel, &res); err != nil {
		t.Fatal(err)
	}
	if err := GroupRows(spec, sel[:1], &res); err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("reused result has %d groups, want 1", res.Len())
	}
}

// TestAggString covers the debug renderings.
func TestAggString(t *testing.T) {
	cases := map[string]string{
		Count().String():  "count(*)",
		Sum("x").String(): "sum(x)",
		Min("y").String(): "min(y)",
		Max("z").String(): "max(z)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("agg string = %q, want %q", got, want)
		}
	}
	if StrategyDense.String() != "dense" || StrategyHash.String() != "hash" || StrategySort.String() != "sort" || StrategyAuto.String() != "auto" {
		t.Error("strategy strings wrong")
	}
}

// TestConcurrentGroupedQueriesIndependentPacking is the regression test
// for the pooled-state packing alias: partition-parallel runs used to
// seed the pool with worker states whose packing slices shared backing
// arrays, so later concurrent queries with different key domains could
// corrupt each other's packing mid-query. Two goroutines with disjoint
// key domains must stay independent (run under -race).
func TestConcurrentGroupedQueriesIndependentPacking(t *testing.T) {
	const rows = minParallel * 2
	mkData := func(seed int64, span int64, base int64) (*Spec, column.PosList, int64) {
		rng := rand.New(rand.NewSource(seed))
		key := make([]int64, rows)
		val := make([]int64, rows)
		var sum int64
		for i := range key {
			key[i] = base + rng.Int63n(span)
			val[i] = rng.Int63n(100)
			sum += val[i]
		}
		sel := make(column.PosList, rows)
		for i := range sel {
			sel[i] = column.Pos(i)
		}
		spec := buildSpec([][]int64{key}, [][]int64{nil, val}, []Agg{Count(), Sum("v")}, 4)
		return spec, sel, sum
	}
	specA, selA, sumA := mkData(21, 37, -1000)
	specB, selB, sumB := mkData(22, 4093, 1<<40) // different domain, width and offset

	// Seed the pool with parallel-run worker states.
	var warm Result
	if err := GroupRows(specA, selA, &warm); err != nil {
		t.Fatal(err)
	}
	if err := GroupRows(specB, selB, &warm); err != nil {
		t.Fatal(err)
	}

	check := func(spec *Spec, sel column.PosList, wantSum int64) error {
		var res Result
		if err := GroupRows(spec, sel, &res); err != nil {
			return err
		}
		var n, s int64
		for g := 0; g < res.Len(); g++ {
			k := res.Keys[0][g]
			if k < spec.Keys[0].Lo || k > spec.Keys[0].Hi {
				return fmt.Errorf("group key %d outside domain [%d, %d]", k, spec.Keys[0].Lo, spec.Keys[0].Hi)
			}
			n += res.Aggs[0][g]
			s += res.Aggs[1][g]
		}
		if n != rows || s != wantSum {
			return fmt.Errorf("totals (%d, %d), want (%d, %d)", n, s, rows, wantSum)
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if errs[0] = check(specA, selA, sumA); errs[0] != nil {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if errs[1] = check(specB, selB, sumB); errs[1] != nil {
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
