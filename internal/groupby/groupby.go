// Package groupby is the grouped-aggregation subsystem: fused
// multi-aggregate plans (COUNT/SUM/MIN/MAX computed in one pass) over
// the selection vectors the conjunctive query runner produces, with
// three physical grouping strategies picked per query from the key
// attributes' domain statistics — the holistic processing model of
// MorphStore (arXiv:2004.09350) applied to this column-store:
//
//   - StrategyDense: the (possibly composite) group key is bit-packed
//     into an array index and every aggregate accumulates into dense,
//     pooled arrays — no hashing, no comparisons. Chosen when the packed
//     key domain is small (Spec.DenseSlots, default 2^16 slots) and the
//     selection is not tiny relative to it. Groups emit in ascending
//     key order by construction (a slot scan), and the whole path runs
//     through pooled scratch: zero steady-state allocations.
//
//   - StrategyHash: open-addressing (linear-probing) accumulators keyed
//     by the packed key when the composite fits 64 bits, by the raw
//     tuple otherwise. The general fallback for large key domains;
//     groups are sorted at the emit boundary.
//
//   - StrategySort: the key attribute's index streams the column in
//     key-clustered order (engine.KeyOrderWalker: sorted runs, or
//     cracker pieces in key order) and each cluster is aggregated with
//     a small local accumulator — no global hash table at all, and
//     groups emit in key order for free. This is the holistic payoff:
//     background refinement keeps shrinking the clusters, converting
//     hash grouping into index-clustered grouping over time.
//
// Dense and hash grouping run partition-parallel: the selection vector
// is split across workers, each accumulates into its own pooled state,
// and the partials merge at the end.
//
// All inputs flow through update-aware column.Views, so every executor
// mode — including the cracking modes with pending inserts, deletes and
// updates — groups over the attribute's current logical state. Rows
// must already be presence-filtered for every referenced attribute (the
// query runner's selection pipeline guarantees it), mirroring the SQL
// NULL semantics of the rest of the query subsystem.
package groupby

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"holistic/internal/column"
)

// Kind enumerates the aggregate functions of a fused plan.
type Kind int

const (
	// KindCount is count(*) over the group's rows.
	KindCount Kind = iota
	// KindSum is sum(attr).
	KindSum
	// KindMin is min(attr).
	KindMin
	// KindMax is max(attr).
	KindMax
)

// Agg is one aggregate of a fused plan.
type Agg struct {
	Kind Kind
	// Attr names the aggregated attribute; empty for KindCount.
	Attr string
}

// Count returns the count(*) aggregate.
func Count() Agg { return Agg{Kind: KindCount} }

// Sum returns the sum(attr) aggregate.
func Sum(attr string) Agg { return Agg{Kind: KindSum, Attr: attr} }

// Min returns the min(attr) aggregate.
func Min(attr string) Agg { return Agg{Kind: KindMin, Attr: attr} }

// Max returns the max(attr) aggregate.
func Max(attr string) Agg { return Agg{Kind: KindMax, Attr: attr} }

// String renders the aggregate as SQL does.
func (a Agg) String() string {
	switch a.Kind {
	case KindCount:
		return "count(*)"
	case KindSum:
		return "sum(" + a.Attr + ")"
	case KindMin:
		return "min(" + a.Attr + ")"
	case KindMax:
		return "max(" + a.Attr + ")"
	default:
		return fmt.Sprintf("agg(%d)", int(a.Kind))
	}
}

// Strategy enumerates the physical grouping strategies.
type Strategy int

const (
	// StrategyAuto picks per query from the key domain statistics.
	StrategyAuto Strategy = iota
	// StrategyDense forces array-indexed accumulators.
	StrategyDense
	// StrategyHash forces open-addressing hash accumulators.
	StrategyHash
	// StrategySort is index-clustered grouping (GroupClusters); reported
	// in Result.Strategy, and forceable at the query-runner level where
	// the index access path lives.
	StrategySort
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyDense:
		return "dense"
	case StrategyHash:
		return "hash"
	case StrategySort:
		return "sort"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultDenseSlots bounds the packed key domain of StrategyDense: the
// dense accumulator arrays hold one slot per representable composite
// key, so 2^16 slots times a handful of aggregates stays comfortably
// inside the L2 cache while covering every low-cardinality grouping
// (TPC-H Q1 needs 8).
const DefaultDenseSlots = 1 << 16

// DefaultClusterSlots bounds the local accumulator of one key cluster
// under StrategySort: a cluster whose observed value span fits is
// aggregated with a dense array (offset by the cluster minimum), larger
// clusters — an unrefined index — fall back to a per-cluster hash.
const DefaultClusterSlots = 1 << 16

// denseMinSlots is the packed domain size below which StrategyAuto
// always picks dense regardless of the selection size: clearing and
// scanning a few thousand slots is cheaper than any hash table.
const denseMinSlots = 1 << 12

// denseFill is the required selection-to-slots ratio above
// denseMinSlots: dense pays O(slots) clearing and emission, so a tiny
// selection over a large (but packable) domain groups faster through
// the hash table.
const denseFill = 8

// chunkSize is the number of selected positions decoded, gathered and
// accumulated at a time: small enough for the chunk buffers to stay
// cache-resident, large enough to amortize the per-chunk dispatch.
const chunkSize = 4096

// minParallel is the selection size below which grouping stays
// sequential; positional gathers are a few nanoseconds each.
const minParallel = 1 << 15

// Key is one group-by attribute: its update-aware view and the
// inclusive bounds of its value domain (base column bounds extended by
// the view's overlay), which drive the composite bit-packing rule.
type Key struct {
	View   column.View
	Lo, Hi int64
}

// Spec describes one fused grouped-aggregation execution.
type Spec struct {
	// Keys are the group-by attributes, most significant first: results
	// order lexicographically by this sequence.
	Keys []Key
	// Aggs are the fused aggregates; AggViews is aligned with it (the
	// zero View for KindCount).
	Aggs     []Agg
	AggViews []column.View
	// Threads bounds the partition parallelism of dense/hash grouping.
	Threads int
	// DenseSlots overrides DefaultDenseSlots (0 keeps the default);
	// ClusterSlots likewise for the sort path's per-cluster bound.
	DenseSlots   int
	ClusterSlots int
	// Force pins the strategy of GroupRows/GroupBitmap to Dense or Hash;
	// StrategyAuto (the zero value) applies the crossover rule.
	Force Strategy
}

//holistic:noalloc
func (s *Spec) denseSlots() int {
	if s.DenseSlots > 0 {
		return s.DenseSlots
	}
	return DefaultDenseSlots
}

//holistic:noalloc
func (s *Spec) clusterSlots() int {
	if s.ClusterSlots > 0 {
		return s.ClusterSlots
	}
	return DefaultClusterSlots
}

//holistic:alloc-ok error paths format diagnostics
func (s *Spec) validate() error {
	if len(s.Keys) == 0 {
		return fmt.Errorf("groupby: at least one group-by attribute is required")
	}
	if len(s.Aggs) == 0 {
		return fmt.Errorf("groupby: at least one aggregate is required")
	}
	if len(s.AggViews) != len(s.Aggs) {
		return fmt.Errorf("groupby: %d aggregate views for %d aggregates", len(s.AggViews), len(s.Aggs))
	}
	return nil
}

// Result is one ordered grouped-aggregation result table: group g's
// composite key is (Keys[0][g], ..., Keys[k-1][g]) and its aggregates
// are Aggs[0][g], ..., ascending lexicographically by key. The slices
// are reused across executions when the caller passes the same Result
// back in, so the steady-state dense path allocates nothing.
type Result struct {
	Keys [][]int64
	Aggs [][]int64
	// Strategy reports the strategy that actually executed.
	Strategy Strategy
}

// Len returns the number of groups.
func (r *Result) Len() int {
	if len(r.Keys) == 0 {
		return 0
	}
	return len(r.Keys[0])
}

// reset prepares the result for nk key and na aggregate columns,
// truncating reused storage.
func (r *Result) reset(nk, na int) {
	r.Keys = resizeCols(r.Keys, nk)
	r.Aggs = resizeCols(r.Aggs, na)
	r.Strategy = StrategyAuto
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func resizeCols(s [][]int64, n int) [][]int64 {
	for len(s) < n {
		s = append(s, nil)
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// --- composite key packing ---

// packing is the composite-key bit-packing rule: key i occupies
// bits[i] = ceil(log2(span_i)) bits, keys packed most significant
// first, so the packed integer orders exactly like the key tuple.
type packing struct {
	los    []int64
	spans  []uint64 // hi-lo+1 per key
	shifts []uint   // left shift per key
	bits   int      // total bits
	slots  int      // 1<<bits when bits small enough to index, else 0
}

const maxDenseBits = 30 // 1<<30 slots would never pass the slot bound anyway

//holistic:alloc-ok error paths format diagnostics
func makePacking(pk *packing, keys []Key) error {
	pk.los = pk.los[:0]
	pk.spans = pk.spans[:0]
	pk.shifts = pk.shifts[:0]
	pk.bits = 0
	for _, k := range keys {
		if k.Hi < k.Lo {
			// Empty domain: legal only when the selection is empty, which
			// the callers short-circuit before packing.
			return fmt.Errorf("groupby: inverted key domain [%d, %d]", k.Lo, k.Hi)
		}
		span := uint64(k.Hi-k.Lo) + 1 // two's complement: exact even for huge spans
		pk.los = append(pk.los, k.Lo)
		pk.spans = append(pk.spans, span)
		b := bitsLen(span - 1)
		pk.shifts = append(pk.shifts, 0)
		pk.bits += b
	}
	// Assign shifts most significant first.
	shift := uint(0)
	for i := len(keys) - 1; i >= 0; i-- {
		pk.shifts[i] = shift
		if pk.bits <= 64 {
			shift += uint(bitsLen(pk.spans[i] - 1))
		}
	}
	pk.slots = 0
	if pk.bits <= maxDenseBits {
		pk.slots = 1 << uint(pk.bits)
	}
	return nil
}

// packable reports whether the composite key fits one uint64 — the hash
// table's fast path.
func (pk *packing) packable() bool { return pk.bits <= 64 }

//holistic:noalloc
func bitsLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// unpack recovers key i's attribute value from a packed composite.
//
//holistic:noalloc
func (pk *packing) unpack(packed uint64, i int) int64 {
	v := packed >> pk.shifts[i]
	if b := bitsLen(pk.spans[i] - 1); b < 64 {
		v &= (1 << uint(b)) - 1
	}
	return pk.los[i] + int64(v)
}

// --- entry points ---

// DenseEligible reports whether a composite key over the given domains
// packs into a dense accumulator of at most denseSlots slots (0 keeps
// DefaultDenseSlots) — the planner-side probe of the dense/hash
// crossover, answerable from domain statistics alone.
//
//holistic:noalloc
func DenseEligible(keys []Key, denseSlots int) bool {
	if denseSlots <= 0 {
		denseSlots = DefaultDenseSlots
	}
	bits := 0
	for _, k := range keys {
		if k.Hi < k.Lo {
			return false
		}
		bits += bitsLen(uint64(k.Hi - k.Lo)) // = bitsLen(span-1)
		if bits > maxDenseBits {
			return false
		}
	}
	return 1<<uint(bits) <= denseSlots
}

// GroupRows executes the fused plan over a position-list selection
// vector. Positions must be presence-filtered for every referenced
// attribute. The result is written into res (reusing its storage).
//
//holistic:noalloc
func GroupRows(spec *Spec, sel column.PosList, res *Result) error {
	return group(spec, sel, nil, res)
}

// GroupBitmap executes the fused plan over a bitmap selection vector.
//
//holistic:noalloc
func GroupBitmap(spec *Spec, bm *column.Bitmap, res *Result) error {
	return group(spec, nil, bm, res)
}

//holistic:noalloc
func group(spec *Spec, sel column.PosList, bm *column.Bitmap, res *Result) error {
	if err := spec.validate(); err != nil {
		return err
	}
	res.reset(len(spec.Keys), len(spec.Aggs))
	n := len(sel)
	if bm != nil {
		n = bm.Count()
	}
	if n == 0 {
		res.Strategy = spec.Force
		if res.Strategy == StrategyAuto {
			res.Strategy = StrategyDense
		}
		return nil
	}
	st := getRunState()
	defer putRunState(st)
	if err := makePacking(&st.pk, spec.Keys); err != nil {
		return err
	}
	dense := chooseDense(spec, &st.pk, n)
	if dense {
		ok, err := groupDense(spec, st, sel, bm, n, res)
		if err != nil {
			return err
		}
		if ok {
			res.Strategy = StrategyDense
			return nil
		}
		// A key value escaped the declared domain (only possible when the
		// caller's bounds were stale); the hash path has no such
		// precondition.
	}
	if err := groupHash(spec, st, sel, bm, n, res); err != nil {
		return err
	}
	res.Strategy = StrategyHash
	return nil
}

// chooseDense applies the dense/hash crossover: the packed domain must
// be indexable and small, and — above denseMinSlots — the selection must
// fill it densely enough to amortize the O(slots) clear and emit scan.
//
//holistic:noalloc
func chooseDense(spec *Spec, pk *packing, n int) bool {
	switch spec.Force {
	case StrategyDense:
		return pk.slots > 0 && pk.slots <= spec.denseSlots()
	case StrategyHash:
		return false
	}
	if pk.slots == 0 || pk.slots > spec.denseSlots() {
		return false
	}
	return pk.slots <= denseMinSlots || n*denseFill >= pk.slots
}

// --- pooled run state ---

// runState is the pooled per-execution scratch: chunk buffers, packing
// arrays and the dense/hash accumulators, recycled so steady-state
// grouped queries allocate nothing.
type runState struct {
	pk       packing
	posbuf   column.PosList
	slotbuf  []int32
	keybuf   []int64
	valbuf   []int64
	packbuf  []uint64
	tuplebuf []int64
	dense    *denseState
	hash     *hashState
	cluster  *clusterState
	workers  []*runState // partition-parallel partials
}

var runStatePool = sync.Pool{New: func() any { return new(runState) }}

//holistic:alloc-ok pool warm-up allocates the recycled object
func getRunState() *runState { return runStatePool.Get().(*runState) }

//holistic:noalloc
func putRunState(st *runState) {
	for i := range st.workers {
		putRunState(st.workers[i])
		st.workers[i] = nil
	}
	st.workers = st.workers[:0]
	runStatePool.Put(st)
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func (st *runState) buffers() {
	if cap(st.posbuf) < chunkSize {
		st.posbuf = make(column.PosList, chunkSize)
	}
	if cap(st.slotbuf) < chunkSize {
		st.slotbuf = make([]int32, chunkSize)
	}
	if cap(st.keybuf) < chunkSize {
		st.keybuf = make([]int64, 0, chunkSize)
	}
	if cap(st.valbuf) < chunkSize {
		st.valbuf = make([]int64, 0, chunkSize)
	}
}

// --- dense strategy ---

// denseState is the array-indexed accumulator set: one slot per packed
// composite key. counts doubles as the occupancy gate; min/max arrays
// initialize to their identity so accumulation needs no branches on
// first touch.
type denseState struct {
	slots  int
	counts []int64
	accs   [][]int64 // per aggregate; nil for KindCount
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func (st *runState) denseFor(spec *Spec, slots int) *denseState {
	d := st.dense
	if d == nil {
		d = &denseState{}
		st.dense = d
	}
	d.slots = slots
	d.counts = resizeZero(d.counts, slots)
	for len(d.accs) < len(spec.Aggs) {
		d.accs = append(d.accs, nil)
	}
	d.accs = d.accs[:len(spec.Aggs)]
	for a, agg := range spec.Aggs {
		switch agg.Kind {
		case KindCount:
			d.accs[a] = d.accs[a][:0]
		case KindSum:
			d.accs[a] = resizeZero(d.accs[a], slots)
		case KindMin:
			d.accs[a] = resizeFill(d.accs[a], slots, math.MaxInt64)
		case KindMax:
			d.accs[a] = resizeFill(d.accs[a], slots, math.MinInt64)
		}
	}
	return d
}

// errf builds a formatted error; hot entry points route their cold
// error paths through it so the allocation sits behind one reviewed
// boundary.
//
//holistic:alloc-ok error paths format their diagnostics
func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func grow64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func resizeZero(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func resizeFill(s []int64, n int, v int64) []int64 {
	if cap(s) < n {
		s = make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// groupDense runs the dense strategy; ok is false when a key value fell
// outside its declared domain (stale bounds), in which case nothing has
// been emitted and the caller reruns through the hash path.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func groupDense(spec *Spec, st *runState, sel column.PosList, bm *column.Bitmap, n int, res *Result) (bool, error) {
	workers := partitions(spec.Threads, n)
	if workers <= 1 {
		st.buffers()
		d := st.denseFor(spec, st.pk.slots)
		if !accumulateDense(spec, st, &st.pk, d, sel, bm, 0, partEnd(sel, bm)) {
			return false, nil
		}
		emitDense(spec, &st.pk, d, res)
		return true, nil
	}
	parts := splitParts(sel, bm, workers)
	states := st.workerStates(len(parts))
	ok := make([]bool, len(parts))
	var wg sync.WaitGroup
	for w, part := range parts {
		wg.Add(1)
		go func(w int, lo, hi int) {
			defer wg.Done()
			ws := states[w]
			ws.buffers()
			d := ws.denseFor(spec, st.pk.slots)
			ok[w] = accumulateDense(spec, ws, &st.pk, d, sel, bm, lo, hi)
		}(w, part[0], part[1])
	}
	wg.Wait()
	for _, o := range ok {
		if !o {
			return false, nil
		}
	}
	merged := states[0].dense
	for _, ws := range states[1:] {
		mergeDense(spec, merged, ws.dense)
	}
	emitDense(spec, &st.pk, merged, res)
	return true, nil
}

// workerStates borrows one pooled runState per partition; they are
// released with the parent.
//
//holistic:alloc-ok pool warm-up for the per-worker states
func (st *runState) workerStates(n int) []*runState {
	for len(st.workers) < n {
		st.workers = append(st.workers, getRunState())
	}
	return st.workers[:n]
}

// partitions bounds the partition parallelism by the selection size.
//
//holistic:noalloc
func partitions(threads, n int) int {
	if threads < 2 || n < minParallel {
		return 1
	}
	return threads
}

// partEnd returns the iteration bound of the whole selection: positions
// for a list, words for a bitmap.
//
//holistic:noalloc
func partEnd(sel column.PosList, bm *column.Bitmap) int {
	if bm != nil {
		return bm.Words()
	}
	return len(sel)
}

// splitParts cuts the selection into contiguous per-worker spans —
// index ranges of the position list, word ranges of the bitmap.
//
//holistic:alloc-ok sizes the per-worker partition table
func splitParts(sel column.PosList, bm *column.Bitmap, workers int) [][2]int {
	total := partEnd(sel, bm)
	chunk := (total + workers - 1) / workers
	var parts [][2]int
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		parts = append(parts, [2]int{lo, hi})
	}
	return parts
}

// nextChunk decodes the next chunk of selected positions from the
// partition [*cursor, end): a slice of the position list, or set bits of
// the next word range. It returns a borrowed slice valid until the next
// call.
//
//holistic:noalloc
func nextChunk(st *runState, sel column.PosList, bm *column.Bitmap, cursor *int, end int) column.PosList {
	if bm == nil {
		lo := *cursor
		if lo >= end {
			return nil
		}
		hi := lo + chunkSize
		if hi > end {
			hi = end
		}
		*cursor = hi
		return sel[lo:hi]
	}
	buf := st.posbuf[:0]
	for *cursor < end && len(buf) < chunkSize-64 {
		w := *cursor
		step := (chunkSize - len(buf)) / 64
		if step < 1 {
			step = 1
		}
		if w+step > end {
			step = end - w
		}
		buf = bm.AppendPositionsWords(buf, w, w+step)
		*cursor = w + step
	}
	st.posbuf = buf[:cap(buf)]
	return buf
}

// gatherKeys packs the chunk's composite keys into slotbuf; false when a
// key value escapes its declared domain. pk is passed explicitly — it
// belongs to the query's root state, never to pooled worker states
// (copying its slice headers into them would alias the backing arrays
// across pooled states).
//
//holistic:noalloc
func gatherKeys(spec *Spec, st *runState, pk *packing, chunk column.PosList) bool {
	slots := st.slotbuf[:len(chunk)]
	for i, k := range spec.Keys {
		vals := st.keybuf[:0]
		vals = k.View.GatherRows(vals, chunk)
		st.keybuf = vals
		lo, span, shift := pk.los[i], pk.spans[i], pk.shifts[i]
		if i == 0 {
			for j, v := range vals {
				d := uint64(v - lo)
				if d >= span {
					return false
				}
				slots[j] = int32(d << shift)
			}
		} else {
			for j, v := range vals {
				d := uint64(v - lo)
				if d >= span {
					return false
				}
				slots[j] |= int32(d << shift)
			}
		}
	}
	return true
}

// accumulateDense drives the decode → gather → fuse pipeline of one
// partition into d.
//
//holistic:noalloc
func accumulateDense(spec *Spec, st *runState, pk *packing, d *denseState, sel column.PosList, bm *column.Bitmap, lo, hi int) bool {
	cursor := lo
	for {
		chunk := nextChunk(st, sel, bm, &cursor, hi)
		if len(chunk) == 0 {
			return true
		}
		if !gatherKeys(spec, st, pk, chunk) {
			return false
		}
		slots := st.slotbuf[:len(chunk)]
		for _, s := range slots {
			d.counts[s]++
		}
		for a, agg := range spec.Aggs {
			if agg.Kind == KindCount {
				continue
			}
			vals := spec.AggViews[a].GatherRows(st.valbuf[:0], chunk)
			st.valbuf = vals
			acc := d.accs[a]
			switch agg.Kind {
			case KindSum:
				for j, v := range vals {
					acc[slots[j]] += v
				}
			case KindMin:
				for j, v := range vals {
					if v < acc[slots[j]] {
						acc[slots[j]] = v
					}
				}
			case KindMax:
				for j, v := range vals {
					if v > acc[slots[j]] {
						acc[slots[j]] = v
					}
				}
			}
		}
	}
}

// mergeDense folds worker partials into dst slot by slot.
//
//holistic:noalloc
func mergeDense(spec *Spec, dst, src *denseState) {
	for s, c := range src.counts {
		if c == 0 {
			continue
		}
		dst.counts[s] += c
		for a, agg := range spec.Aggs {
			switch agg.Kind {
			case KindSum:
				dst.accs[a][s] += src.accs[a][s]
			case KindMin:
				if src.accs[a][s] < dst.accs[a][s] {
					dst.accs[a][s] = src.accs[a][s]
				}
			case KindMax:
				if src.accs[a][s] > dst.accs[a][s] {
					dst.accs[a][s] = src.accs[a][s]
				}
			}
		}
	}
}

// emitDense scans the slots in ascending order — which is ascending
// lexicographic key order, by the packing rule — and appends the
// occupied ones to res.
//
//holistic:noalloc
func emitDense(spec *Spec, pk *packing, d *denseState, res *Result) {
	for s, c := range d.counts {
		if c == 0 {
			continue
		}
		for i := range spec.Keys {
			res.Keys[i] = append(res.Keys[i], pk.unpack(uint64(s), i))
		}
		for a, agg := range spec.Aggs {
			if agg.Kind == KindCount {
				res.Aggs[a] = append(res.Aggs[a], c)
			} else {
				res.Aggs[a] = append(res.Aggs[a], d.accs[a][s])
			}
		}
	}
}

// --- hash strategy ---

// hashState is the open-addressing accumulator set: a linear-probing
// table of 1-based group indices over column-major group storage. When
// the composite key packs into 64 bits the probe compares one integer;
// otherwise — or once a key value escapes its declared domain, making
// packed comparisons ambiguous — the state switches to tuple keying,
// which compares the raw key values and depends on no domain knowledge.
type hashState struct {
	table  []int32
	mask   uint64
	tuple  bool // keyed by raw tuple instead of packed composite
	packed []uint64
	keys   [][]int64 // raw key values per attribute, per group
	counts []int64
	accs   [][]int64
	n      int
	tupbuf []int64 // merge-side tuple scratch, retained across runs
	order  []int32 // emit ordering scratch, retained across runs
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func (st *runState) hashFor(spec *Spec) *hashState {
	h := st.hash
	if h == nil {
		h = &hashState{}
		st.hash = h
	}
	h.reset(spec)
	return h
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func (h *hashState) reset(spec *Spec) {
	if len(h.table) < 64 {
		h.table = make([]int32, 64)
	}
	clear(h.table)
	h.mask = uint64(len(h.table) - 1)
	h.packed = h.packed[:0]
	h.keys = resizeCols(h.keys, len(spec.Keys)) // truncates retained columns in place
	h.counts = h.counts[:0]
	for len(h.accs) < len(spec.Aggs) {
		h.accs = append(h.accs, nil)
	}
	h.accs = h.accs[:len(spec.Aggs)]
	for a := range h.accs {
		h.accs[a] = h.accs[a][:0]
	}
	h.n = 0
	h.tuple = false
}

// toTupleMode rekeys the table by raw tuple: existing groups keep their
// indices (the stored raw keys are exact), only the probe table is
// rebuilt. A no-op when already tuple-keyed.
//
//holistic:alloc-ok grows the retained buffer on first use or resize
func (h *hashState) toTupleMode() {
	if h.tuple {
		return
	}
	h.tuple = true
	clear(h.table)
	for g := 0; g < h.n; g++ {
		i := hashTuple(h.keys, g) & h.mask
		for h.table[i] != 0 {
			i = (i + 1) & h.mask
		}
		h.table[i] = int32(g + 1)
	}
}

// splitmix64 is the avalanche finalizer of the splitmix64 generator — a
// cheap, well-mixed hash for packed keys.
//
//holistic:noalloc
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// grow doubles the probe table and reinserts every group.
//
//holistic:alloc-ok grows the retained buffer on first use or resize
func (h *hashState) grow(pk *packing) {
	nt := make([]int32, len(h.table)*2)
	mask := uint64(len(nt) - 1)
	for g := 0; g < h.n; g++ {
		var hv uint64
		if h.tuple {
			hv = hashTuple(h.keys, g)
		} else {
			hv = splitmix64(h.packed[g])
		}
		i := hv & mask
		for nt[i] != 0 {
			i = (i + 1) & mask
		}
		nt[i] = int32(g + 1)
	}
	h.table = nt
	h.mask = mask
}

//holistic:noalloc
func hashTuple(keys [][]int64, g int) uint64 {
	hv := uint64(1469598103934665603)
	for _, col := range keys {
		hv = (hv ^ uint64(col[g])) * 1099511628211
	}
	return hv
}

// groupOf finds or creates the group of the packed key (packable path),
// initializing its accumulators on creation.
//
//holistic:noalloc
func (h *hashState) groupOf(spec *Spec, pk *packing, packed uint64) int32 {
	i := splitmix64(packed) & h.mask
	for {
		g := h.table[i]
		if g == 0 {
			break
		}
		if h.packed[g-1] == packed {
			return g - 1
		}
		i = (i + 1) & h.mask
	}
	g := h.newGroup(spec)
	h.packed = append(h.packed, packed)
	for k := range spec.Keys {
		h.keys[k] = append(h.keys[k], pk.unpack(packed, k))
	}
	h.table[i] = int32(g + 1)
	if uint64(h.n)*4 >= uint64(len(h.table))*3 {
		h.grow(pk)
	}
	return int32(g)
}

// groupOfTuple is groupOf for composites wider than 64 bits, keyed by
// the raw tuple in keybufs at row j.
//
//holistic:noalloc
func (h *hashState) groupOfTuple(spec *Spec, pk *packing, tuple []int64) int32 {
	hv := uint64(1469598103934665603)
	for _, v := range tuple {
		hv = (hv ^ uint64(v)) * 1099511628211
	}
	i := hv & h.mask
probe:
	for {
		g := h.table[i]
		if g == 0 {
			break
		}
		for k := range tuple {
			if h.keys[k][g-1] != tuple[k] {
				i = (i + 1) & h.mask
				continue probe
			}
		}
		return g - 1
	}
	g := h.newGroup(spec)
	for k, v := range tuple {
		h.keys[k] = append(h.keys[k], v)
	}
	h.table[i] = int32(g + 1)
	if uint64(h.n)*4 >= uint64(len(h.table))*3 {
		h.grow(pk)
	}
	return int32(g)
}

// newGroup appends a fresh group with identity-initialized accumulators.
//
//holistic:alloc-ok grows the retained buffer on first use or resize
func (h *hashState) newGroup(spec *Spec) int {
	g := h.n
	h.n++
	h.counts = append(h.counts, 0)
	for a, agg := range spec.Aggs {
		switch agg.Kind {
		case KindSum:
			h.accs[a] = append(h.accs[a], 0)
		case KindMin:
			h.accs[a] = append(h.accs[a], math.MaxInt64)
		case KindMax:
			h.accs[a] = append(h.accs[a], math.MinInt64)
		}
	}
	return g
}

// accumulateHash drives one partition into h. It starts in packed mode
// when the composite fits 64 bits, and switches the state to tuple
// keying the moment a key value escapes its declared domain (stale
// bounds must never produce ambiguous packed keys).
//
//holistic:noalloc
func accumulateHash(spec *Spec, st *runState, pk *packing, h *hashState, sel column.PosList, bm *column.Bitmap, lo, hi int) {
	if !pk.packable() {
		h.toTupleMode()
	}
	cursor := lo
	for {
		chunk := nextChunk(st, sel, bm, &cursor, hi)
		if len(chunk) == 0 {
			return
		}
		slots := st.slotbuf[:len(chunk)]
		if !h.tuple {
			if packChunkKeys(spec, st, pk, chunk) {
				for j := range chunk {
					slots[j] = h.groupOf(spec, pk, st.packbuf[j])
				}
			} else {
				h.toTupleMode()
			}
		}
		if h.tuple {
			// Gather each key column, transpose to row-major tuples, probe.
			nk := len(spec.Keys)
			st.tuplebuf = grow64(st.tuplebuf, nk*len(chunk))
			tb := st.tuplebuf
			for k := range spec.Keys {
				vals := spec.Keys[k].View.GatherRows(st.keybuf[:0], chunk)
				st.keybuf = vals
				for j, v := range vals {
					tb[j*nk+k] = v
				}
			}
			for j := range chunk {
				slots[j] = h.groupOfTuple(spec, pk, tb[j*nk:(j+1)*nk])
			}
		}
		for _, g := range slots {
			h.counts[g]++
		}
		for a, agg := range spec.Aggs {
			if agg.Kind == KindCount {
				continue
			}
			vals := spec.AggViews[a].GatherRows(st.valbuf[:0], chunk)
			st.valbuf = vals
			acc := h.accs[a]
			switch agg.Kind {
			case KindSum:
				for j, v := range vals {
					acc[slots[j]] += v
				}
			case KindMin:
				for j, v := range vals {
					if v < acc[slots[j]] {
						acc[slots[j]] = v
					}
				}
			case KindMax:
				for j, v := range vals {
					if v > acc[slots[j]] {
						acc[slots[j]] = v
					}
				}
			}
		}
	}
}

// packChunkKeys packs the chunk's composite keys into st.packbuf; false
// when a key value escapes its declared domain (nothing is consumed and
// the caller switches to tuple keying).
//
//holistic:noalloc
func packChunkKeys(spec *Spec, st *runState, pk *packing, chunk column.PosList) bool {
	st.packbuf = growU64(st.packbuf, len(chunk))
	packed := st.packbuf
	for i, k := range spec.Keys {
		vals := k.View.GatherRows(st.keybuf[:0], chunk)
		st.keybuf = vals
		lo, span, shift := pk.los[i], pk.spans[i], pk.shifts[i]
		if i == 0 {
			for j, v := range vals {
				d := uint64(v - lo)
				if d >= span {
					return false
				}
				packed[j] = d << shift
			}
		} else {
			for j, v := range vals {
				d := uint64(v - lo)
				if d >= span {
					return false
				}
				packed[j] |= d << shift
			}
		}
	}
	st.packbuf = packed
	return true
}

// groupHash runs the hash strategy, partition-parallel with per-worker
// accumulator merge, and emits the groups in ascending key order.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func groupHash(spec *Spec, st *runState, sel column.PosList, bm *column.Bitmap, n int, res *Result) error {
	workers := partitions(spec.Threads, n)
	var h *hashState
	if workers <= 1 {
		st.buffers()
		h = st.hashFor(spec)
		accumulateHash(spec, st, &st.pk, h, sel, bm, 0, partEnd(sel, bm))
	} else {
		parts := splitParts(sel, bm, workers)
		states := st.workerStates(len(parts))
		var wg sync.WaitGroup
		for w, part := range parts {
			wg.Add(1)
			go func(w int, lo, hi int) {
				defer wg.Done()
				ws := states[w]
				ws.buffers()
				accumulateHash(spec, ws, &st.pk, ws.hashFor(spec), sel, bm, lo, hi)
			}(w, part[0], part[1])
		}
		wg.Wait()
		h = states[0].hash
		for _, ws := range states[1:] {
			mergeHash(spec, &st.pk, h, ws.hash)
		}
	}
	emitHash(spec, h, res)
	return nil
}

// mergeHash folds src's groups into dst. If either side switched to
// tuple keying, the merge goes through raw tuples (dst converting
// first); packed merges stay on the fast path.
//
//holistic:noalloc
func mergeHash(spec *Spec, pk *packing, dst, src *hashState) {
	if src.tuple {
		dst.toTupleMode()
	}
	dst.tupbuf = grow64(dst.tupbuf, len(spec.Keys))
	tuple := dst.tupbuf
	for g := 0; g < src.n; g++ {
		var dg int32
		if !dst.tuple {
			dg = dst.groupOf(spec, pk, src.packed[g])
		} else {
			for k := range tuple {
				tuple[k] = src.keys[k][g]
			}
			dg = dst.groupOfTuple(spec, pk, tuple)
		}
		dst.counts[dg] += src.counts[g]
		for a, agg := range spec.Aggs {
			switch agg.Kind {
			case KindSum:
				dst.accs[a][dg] += src.accs[a][g]
			case KindMin:
				if src.accs[a][g] < dst.accs[a][dg] {
					dst.accs[a][dg] = src.accs[a][g]
				}
			case KindMax:
				if src.accs[a][g] > dst.accs[a][dg] {
					dst.accs[a][dg] = src.accs[a][g]
				}
			}
		}
	}
}

// emitHash orders the groups ascending by key tuple and appends them to
// res. The ordering pass is the price the hash strategy pays for the
// ordered-result contract — exactly what the dense and sort strategies
// get for free.
//
//holistic:noalloc
func emitHash(spec *Spec, h *hashState, res *Result) {
	h.order = grow32(h.order, h.n)
	order := h.order
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(ga, gb int32) int {
		for k := range h.keys {
			if h.keys[k][ga] != h.keys[k][gb] {
				if h.keys[k][ga] < h.keys[k][gb] {
					return -1
				}
				return 1
			}
		}
		return 0
	})
	for _, g := range order {
		for k := range h.keys {
			res.Keys[k] = append(res.Keys[k], h.keys[k][g])
		}
		for a, agg := range spec.Aggs {
			if agg.Kind == KindCount {
				res.Aggs[a] = append(res.Aggs[a], h.counts[g])
			} else {
				res.Aggs[a] = append(res.Aggs[a], h.accs[a][g])
			}
		}
	}
}
