package groupby

import (
	"holistic/internal/column"
)

// Acc is the slice-fed face of the subsystem: callers that already hold
// the group-key and aggregate attributes as position-aligned slices —
// sideways-cracked payload segments, pre-sorted projection windows —
// stream them through Segment and collect the ordered result with
// Finish. It runs the same fused dense/hash accumulators as the
// selection-vector entry points, chosen by the same composite packing
// rule, and migrates dense → hash transparently if a key value escapes
// the declared domain mid-stream.
type Acc struct {
	spec  Spec
	st    *runState
	dense bool
	err   error
}

// NewAcc builds an accumulator over the given key domains (Key.View is
// ignored — the keys arrive as slices) and fused aggregates. Aggregate
// views are likewise unused.
//
//holistic:alloc-ok builds the accumulator and its pooled run state
func NewAcc(keys []Key, aggs []Agg) (*Acc, error) {
	a := &Acc{spec: Spec{Keys: keys, Aggs: aggs, AggViews: make([]column.View, len(aggs))}}
	if err := a.spec.validate(); err != nil {
		return nil, err
	}
	a.st = getRunState()
	a.st.buffers()
	if err := makePacking(&a.st.pk, keys); err != nil {
		putRunState(a.st)
		return nil, err
	}
	a.dense = a.st.pk.slots > 0 && a.st.pk.slots <= a.spec.denseSlots()
	if a.dense {
		a.st.denseFor(&a.spec, a.st.pk.slots)
	} else {
		a.st.hashFor(&a.spec)
	}
	return a, nil
}

// Segment folds one position-aligned block into the accumulator:
// keyCols[i] holds key i's values, aggCols[j] the j-th aggregate's
// values (ignored — may be nil — for count(*)). All non-nil slices must
// have equal length. Segments arrive in any order.
//
//holistic:noalloc
func (a *Acc) Segment(keyCols [][]int64, aggCols [][]int64) {
	if a.err != nil {
		return
	}
	if len(keyCols) != len(a.spec.Keys) || len(aggCols) != len(a.spec.Aggs) {
		a.err = errf("groupby: Segment got %d key / %d agg columns, want %d / %d",
			len(keyCols), len(aggCols), len(a.spec.Keys), len(a.spec.Aggs))
		return
	}
	n := len(keyCols[0])
	for off := 0; off < n; off += chunkSize {
		end := off + chunkSize
		if end > n {
			end = n
		}
		if a.dense {
			if a.segmentDense(keyCols, aggCols, off, end) {
				continue
			}
			// A key escaped its declared domain: migrate the dense partial
			// into a hash state and continue there.
			a.migrate()
		}
		a.segmentHash(keyCols, aggCols, off, end)
	}
}

// segmentDense folds rows [off, end); false when a key value falls
// outside the packed domain (nothing of the chunk has been applied yet).
//
//holistic:noalloc
func (a *Acc) segmentDense(keyCols, aggCols [][]int64, off, end int) bool {
	st := a.st
	d := st.dense
	slots := st.slotbuf[:end-off]
	for i := range a.spec.Keys {
		lo, span, shift := st.pk.los[i], st.pk.spans[i], st.pk.shifts[i]
		vals := keyCols[i][off:end]
		if i == 0 {
			for j, v := range vals {
				dlt := uint64(v - lo)
				if dlt >= span {
					return false
				}
				slots[j] = int32(dlt << shift)
			}
		} else {
			for j, v := range vals {
				dlt := uint64(v - lo)
				if dlt >= span {
					return false
				}
				slots[j] |= int32(dlt << shift)
			}
		}
	}
	for _, s := range slots {
		d.counts[s]++
	}
	a.foldAggs(d.accs, slots, aggCols, off, end)
	return true
}

// segmentHash folds rows [off, end) through the hash accumulator.
//
//holistic:noalloc
func (a *Acc) segmentHash(keyCols, aggCols [][]int64, off, end int) {
	st := a.st
	h := st.hash
	if !st.pk.packable() {
		h.toTupleMode()
	}
	slots := st.slotbuf[:end-off]
	if !h.tuple {
		st.packbuf = growU64(st.packbuf, end-off)
		packed := st.packbuf
		ok := true
	pack:
		for i := range a.spec.Keys {
			lo, span, shift := st.pk.los[i], st.pk.spans[i], st.pk.shifts[i]
			vals := keyCols[i][off:end]
			for j, v := range vals {
				d := uint64(v - lo)
				if d >= span {
					ok = false
					break pack
				}
				if i == 0 {
					packed[j] = d << shift
				} else {
					packed[j] |= d << shift
				}
			}
		}
		if ok {
			for j := range slots {
				slots[j] = h.groupOf(&a.spec, &st.pk, packed[j])
			}
		} else {
			h.toTupleMode()
		}
	}
	if h.tuple {
		st.tuplebuf = grow64(st.tuplebuf, len(a.spec.Keys))
		tuple := st.tuplebuf
		for j := 0; j < end-off; j++ {
			for k := range tuple {
				tuple[k] = keyCols[k][off+j]
			}
			slots[j] = h.groupOfTuple(&a.spec, &st.pk, tuple)
		}
	}
	for _, g := range slots {
		h.counts[g]++
	}
	a.foldAggs(h.accs, slots, aggCols, off, end)
}

// foldAggs applies every non-count aggregate of rows [off, end) to the
// accumulator columns indexed by slots.
//
//holistic:noalloc
func (a *Acc) foldAggs(accs [][]int64, slots []int32, aggCols [][]int64, off, end int) {
	for ai, agg := range a.spec.Aggs {
		if agg.Kind == KindCount {
			continue
		}
		acc := accs[ai]
		vals := aggCols[ai][off:end]
		switch agg.Kind {
		case KindSum:
			for j, v := range vals {
				acc[slots[j]] += v
			}
		case KindMin:
			for j, v := range vals {
				if v < acc[slots[j]] {
					acc[slots[j]] = v
				}
			}
		case KindMax:
			for j, v := range vals {
				if v > acc[slots[j]] {
					acc[slots[j]] = v
				}
			}
		}
	}
}

// migrate converts the dense partial into hash groups. A dense slot is
// the packed composite key itself, so the conversion is a walk over the
// occupied slots.
//
//holistic:alloc-ok grows the retained buffer on first use or resize
func (a *Acc) migrate() {
	st := a.st
	d := st.dense
	h := st.hashFor(&a.spec)
	for s, c := range d.counts {
		if c == 0 {
			continue
		}
		g := h.groupOf(&a.spec, &st.pk, uint64(s))
		h.counts[g] += c
		for ai, agg := range a.spec.Aggs {
			if agg.Kind != KindCount {
				h.accs[ai][g] = d.accs[ai][s]
			}
		}
	}
	a.dense = false
}

// Finish emits the ordered result into res and releases the pooled
// state; the Acc must not be used afterwards.
//
//holistic:noalloc
func (a *Acc) Finish(res *Result) error {
	defer func() {
		putRunState(a.st)
		a.st = nil
	}()
	if a.err != nil {
		return a.err
	}
	res.reset(len(a.spec.Keys), len(a.spec.Aggs))
	if a.dense {
		res.Strategy = StrategyDense
		emitDense(&a.spec, &a.st.pk, a.st.dense, res)
	} else {
		res.Strategy = StrategyHash
		emitHash(&a.spec, a.st.hash, res)
	}
	return nil
}
