// Package column provides the storage substrate of the column-store:
// dense fixed-width arrays, tight-loop scan kernels, selection vectors
// (position lists) and dictionary encoding for string attributes.
//
// It mirrors the storage model the paper assumes (Section 3.1): every
// relational table is vertically fragmented into one dense array per
// attribute, values of one tuple share the same position across arrays,
// and operators work on whole columns at a time with tight for loops.
package column

import (
	"fmt"
	"sync"
)

// Pos is a tuple position (row id) inside a column. 32 bits cover the
// column sizes this repository targets (the paper's 2^30 also fits).
type Pos = uint32

// PosList is a selection vector: the positions of qualifying tuples in
// the order they were found. It is the intermediate result a select
// operator hands to downstream project operators.
type PosList []Pos

// Column is a dense, fixed-width, in-memory integer column. Non-integer
// attribute types are mapped onto int64 by the layers above (dates become
// day numbers, decimals become scaled integers, strings become dictionary
// codes), exactly as a fixed-width column-store would store them.
type Column struct {
	name string
	vals []int64
}

// New creates a column that takes ownership of vals.
func New(name string, vals []int64) *Column {
	return &Column{name: name, vals: vals}
}

// Name returns the attribute name.
func (c *Column) Name() string { return c.name }

// Len returns the number of tuples.
func (c *Column) Len() int { return len(c.vals) }

// Values exposes the underlying array. Callers must treat it as read-only;
// operators use it to run tight scan loops without copying.
func (c *Column) Values() []int64 { return c.vals }

// At returns the value at position p.
func (c *Column) At(p Pos) int64 { return c.vals[p] }

// Append adds a value at the end of the column and returns its position.
func (c *Column) Append(v int64) Pos {
	c.vals = append(c.vals, v)
	return Pos(len(c.vals) - 1)
}

// ScanRange returns the positions p with lo <= vals[p] < hi, in position
// order. This is the no-indexing select operator: O(N) data accesses.
func ScanRange(vals []int64, lo, hi int64) PosList {
	out := make(PosList, 0, len(vals)/8)
	for i, v := range vals {
		if v >= lo && v < hi {
			out = append(out, Pos(i))
		}
	}
	return out
}

// CountRange returns |{p : lo <= vals[p] < hi}| without materializing
// positions.
func CountRange(vals []int64, lo, hi int64) int {
	n := 0
	for _, v := range vals {
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}

// SumRange returns the sum of qualifying values; the cheapest aggregate
// the microbenchmarks consume so that selects cannot be optimized away.
func SumRange(vals []int64, lo, hi int64) int64 {
	var s int64
	for _, v := range vals {
		if v >= lo && v < hi {
			s += v
		}
	}
	return s
}

// MinMaxRange returns the minimum and maximum of the qualifying values
// and how many qualified; min/max are meaningful only when n > 0.
func MinMaxRange(vals []int64, lo, hi int64) (mn, mx int64, n int) {
	for _, v := range vals {
		if v >= lo && v < hi {
			if n == 0 || v < mn {
				mn = v
			}
			if n == 0 || v > mx {
				mx = v
			}
			n++
		}
	}
	return mn, mx, n
}

// ParallelCountRange splits vals into workers contiguous chunks counted
// concurrently. It implements the paper's "parallel select operator"
// baseline (plain scans by 32 threads in Section 5.1).
func ParallelCountRange(vals []int64, lo, hi int64, workers int) int {
	if workers < 2 || len(vals) < 2*1024 {
		return CountRange(vals, lo, hi)
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(vals) {
			break
		}
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			counts[w] = CountRange(vals[start:end], lo, hi)
		}(w, start, end)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// ParallelSumRange is the aggregating variant of ParallelCountRange.
func ParallelSumRange(vals []int64, lo, hi int64, workers int) int64 {
	if workers < 2 || len(vals) < 2*1024 {
		return SumRange(vals, lo, hi)
	}
	sums := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(vals) {
			break
		}
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			sums[w] = SumRange(vals[start:end], lo, hi)
		}(w, start, end)
	}
	wg.Wait()
	var total int64
	for _, s := range sums {
		total += s
	}
	return total
}

// ParallelMinMaxRange is the min/max variant of ParallelCountRange.
func ParallelMinMaxRange(vals []int64, lo, hi int64, workers int) (mn, mx int64, n int) {
	if workers < 2 || len(vals) < 2*1024 {
		return MinMaxRange(vals, lo, hi)
	}
	mins := make([]int64, workers)
	maxs := make([]int64, workers)
	counts := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(vals) {
			break
		}
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			mins[w], maxs[w], counts[w] = MinMaxRange(vals[start:end], lo, hi)
		}(w, start, end)
	}
	wg.Wait()
	for w := range counts {
		if counts[w] == 0 {
			continue
		}
		if n == 0 || mins[w] < mn {
			mn = mins[w]
		}
		if n == 0 || maxs[w] > mx {
			mx = maxs[w]
		}
		n += counts[w]
	}
	return mn, mx, n
}

// ParallelScanRange materializes qualifying positions using workers
// goroutines, preserving global position order.
func ParallelScanRange(vals []int64, lo, hi int64, workers int) PosList {
	if workers < 2 || len(vals) < 2*1024 {
		return ScanRange(vals, lo, hi)
	}
	parts := make([]PosList, workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(vals) {
			break
		}
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			local := make(PosList, 0, (end-start)/8)
			for i := start; i < end; i++ {
				v := vals[i]
				if v >= lo && v < hi {
					local = append(local, Pos(i))
				}
			}
			parts[w] = local
		}(w, start, end)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(PosList, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Project fetches src values at the given positions: the late
// tuple-reconstruction operator of Section 3.1 ("a project operator
// fetches the values residing in attribute B at the positions specified
// by the intermediate result").
func Project(src []int64, sel PosList) []int64 {
	out := make([]int64, len(sel))
	for i, p := range sel {
		out[i] = src[p]
	}
	return out
}

// Dict is an order-preserving string dictionary. Low-cardinality string
// attributes (TPC-H return flags, ship modes, ...) are stored as int64
// codes in a Column; Dict translates between the two representations.
//
// Codes are assigned in first-seen order, so range predicates over codes
// are only meaningful per-value (equality / IN lists), which is all the
// workloads here need.
type Dict struct {
	mu      sync.RWMutex
	codes   map[string]int64
	strings []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int64)}
}

// Encode returns the code for s, assigning a fresh one if unseen.
func (d *Dict) Encode(s string) int64 {
	d.mu.RLock()
	code, ok := d.codes[s]
	d.mu.RUnlock()
	if ok {
		return code
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if code, ok := d.codes[s]; ok {
		return code
	}
	code = int64(len(d.strings))
	d.codes[s] = code
	d.strings = append(d.strings, s)
	return code
}

// Lookup returns the code for s without assigning; ok reports presence.
func (d *Dict) Lookup(s string) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	code, ok := d.codes[s]
	return code, ok
}

// Decode translates a code back to its string.
func (d *Dict) Decode(code int64) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if code < 0 || code >= int64(len(d.strings)) {
		return fmt.Sprintf("<bad code %d>", code)
	}
	return d.strings[code]
}

// Card returns the number of distinct strings in the dictionary.
func (d *Dict) Card() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strings)
}
