// Package column provides the storage substrate of the column-store:
// dense fixed-width arrays, tight-loop scan kernels, selection vectors
// (position lists) and dictionary encoding for string attributes.
//
// It mirrors the storage model the paper assumes (Section 3.1): every
// relational table is vertically fragmented into one dense array per
// attribute, values of one tuple share the same position across arrays,
// and operators work on whole columns at a time with tight for loops.
package column

import (
	"fmt"
	"sync"
)

// Pos is a tuple position (row id) inside a column. 32 bits cover the
// column sizes this repository targets (the paper's 2^30 also fits).
type Pos = uint32

// PosList is a selection vector: the positions of qualifying tuples in
// the order they were found. It is the intermediate result a select
// operator hands to downstream project operators.
type PosList []Pos

// Column is a dense, fixed-width, in-memory integer column. Non-integer
// attribute types are mapped onto int64 by the layers above (dates become
// day numbers, decimals become scaled integers, strings become dictionary
// codes), exactly as a fixed-width column-store would store them.
type Column struct {
	name string
	vals []int64
}

// New creates a column that takes ownership of vals.
func New(name string, vals []int64) *Column {
	return &Column{name: name, vals: vals}
}

// Name returns the attribute name.
func (c *Column) Name() string { return c.name }

// Len returns the number of tuples.
func (c *Column) Len() int { return len(c.vals) }

// Values exposes the underlying array. Callers must treat it as read-only;
// operators use it to run tight scan loops without copying.
func (c *Column) Values() []int64 { return c.vals }

// At returns the value at position p.
func (c *Column) At(p Pos) int64 { return c.vals[p] }

// Append adds a value at the end of the column and returns its position.
func (c *Column) Append(v int64) Pos {
	c.vals = append(c.vals, v)
	return Pos(len(c.vals) - 1)
}

// ScanRange returns the positions p with lo <= vals[p] < hi, in position
// order. This is the no-indexing select operator: O(N) data accesses.
func ScanRange(vals []int64, lo, hi int64) PosList {
	out := make(PosList, 0, len(vals)/8)
	for i, v := range vals {
		if v >= lo && v < hi {
			out = append(out, Pos(i))
		}
	}
	return out
}

// CountRange returns |{p : lo <= vals[p] < hi}| without materializing
// positions.
//
//holistic:noalloc
func CountRange(vals []int64, lo, hi int64) int {
	n := 0
	for _, v := range vals {
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}

// SumRange returns the sum of qualifying values; the cheapest aggregate
// the microbenchmarks consume so that selects cannot be optimized away.
//
//holistic:noalloc
func SumRange(vals []int64, lo, hi int64) int64 {
	var s int64
	for _, v := range vals {
		if v >= lo && v < hi {
			s += v
		}
	}
	return s
}

// MinMaxRange returns the minimum and maximum of the qualifying values
// and how many qualified; min/max are meaningful only when n > 0.
//
//holistic:noalloc
func MinMaxRange(vals []int64, lo, hi int64) (mn, mx int64, n int) {
	for _, v := range vals {
		if v >= lo && v < hi {
			if n == 0 || v < mn {
				mn = v
			}
			if n == 0 || v > mx {
				mx = v
			}
			n++
		}
	}
	return mn, mx, n
}

// ParallelCountRange splits vals into workers contiguous chunks counted
// concurrently. It implements the paper's "parallel select operator"
// baseline (plain scans by 32 threads in Section 5.1).
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelCountRange(vals []int64, lo, hi int64, workers int) int {
	if workers < 2 || len(vals) < 2*1024 {
		return CountRange(vals, lo, hi)
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(vals) {
			break
		}
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			counts[w] = CountRange(vals[start:end], lo, hi)
		}(w, start, end)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// ParallelSumRange is the aggregating variant of ParallelCountRange.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelSumRange(vals []int64, lo, hi int64, workers int) int64 {
	if workers < 2 || len(vals) < 2*1024 {
		return SumRange(vals, lo, hi)
	}
	sums := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(vals) {
			break
		}
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			sums[w] = SumRange(vals[start:end], lo, hi)
		}(w, start, end)
	}
	wg.Wait()
	var total int64
	for _, s := range sums {
		total += s
	}
	return total
}

// ParallelMinMaxRange is the min/max variant of ParallelCountRange.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelMinMaxRange(vals []int64, lo, hi int64, workers int) (mn, mx int64, n int) {
	if workers < 2 || len(vals) < 2*1024 {
		return MinMaxRange(vals, lo, hi)
	}
	mins := make([]int64, workers)
	maxs := make([]int64, workers)
	counts := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(vals) {
			break
		}
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			mins[w], maxs[w], counts[w] = MinMaxRange(vals[start:end], lo, hi)
		}(w, start, end)
	}
	wg.Wait()
	for w := range counts {
		if counts[w] == 0 {
			continue
		}
		if n == 0 || mins[w] < mn {
			mn = mins[w]
		}
		if n == 0 || maxs[w] > mx {
			mx = maxs[w]
		}
		n += counts[w]
	}
	return mn, mx, n
}

// ParallelScanRange materializes qualifying positions using workers
// goroutines, preserving global position order. The per-worker output
// slices come from a pool, so steady-state calls allocate only the
// returned list.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelScanRange(vals []int64, lo, hi int64, workers int) PosList {
	if workers < 2 || len(vals) < 2*1024 {
		return ScanRange(vals, lo, hi)
	}
	ws := getWorkerLists(workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(vals) {
			break
		}
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			local := ws.lists[w]
			for i := start; i < end; i++ {
				v := vals[i]
				if v >= lo && v < hi {
					local = append(local, Pos(i))
				}
			}
			ws.lists[w] = local
		}(w, start, end)
	}
	wg.Wait()
	total := 0
	for _, p := range ws.lists {
		total += len(p)
	}
	out := make(PosList, 0, total)
	for _, p := range ws.lists {
		out = append(out, p...)
	}
	putWorkerLists(ws)
	return out
}

// Project fetches src values at the given positions: the late
// tuple-reconstruction operator of Section 3.1 ("a project operator
// fetches the values residing in attribute B at the positions specified
// by the intermediate result").
func Project(src []int64, sel PosList) []int64 {
	out := make([]int64, len(sel))
	for i, p := range sel {
		out[i] = src[p]
	}
	return out
}

// FilterRows keeps the positions of sel whose value in vals lies in
// [lo, hi), preserving order. It is the residual-predicate kernel of
// conjunctive selection: after the most selective conjunct produced a
// candidate position list, every remaining conjunct is evaluated by
// positional probes into its base array instead of another full select.
// Positions at or beyond len(vals) are dropped (no value means the
// predicate cannot hold).
func FilterRows(vals []int64, sel PosList, lo, hi int64) PosList {
	return AppendFilterRows(make(PosList, 0, len(sel)), vals, sel, lo, hi)
}

// AppendFilterRows is FilterRows appending into dst, which may alias
// sel (the output never outruns the input), so refine stages can filter
// a candidate list in place without allocating.
//
//holistic:noalloc
func AppendFilterRows(dst PosList, vals []int64, sel PosList, lo, hi int64) PosList {
	n := Pos(len(vals))
	for _, p := range sel {
		if p < n {
			if v := vals[p]; v >= lo && v < hi {
				dst = append(dst, p)
			}
		}
	}
	return dst
}

// FilterRowsInPlace filters sel in place and returns the shortened
// list; the caller must own sel's storage.
//
//holistic:noalloc
func FilterRowsInPlace(vals []int64, sel PosList, lo, hi int64) PosList {
	return AppendFilterRows(sel[:0], vals, sel, lo, hi)
}

// minParallelSel is the candidate-list length below which the parallel
// probe kernels fall back to their sequential forms: positional probes
// are a handful of nanoseconds each, so small lists are not worth the
// goroutine fan-out.
const minParallelSel = 1 << 15

// ParallelFilterRows is FilterRows with the probe loop split across
// workers contiguous chunks of the candidate list; output order is
// preserved. Per-worker outputs are pooled, so only the returned list
// is allocated.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelFilterRows(vals []int64, sel PosList, lo, hi int64, workers int) PosList {
	if workers < 2 || len(sel) < minParallelSel {
		return FilterRows(vals, sel, lo, hi)
	}
	ws := parallelFilterParts(vals, sel, lo, hi, workers)
	total := 0
	for _, p := range ws.lists {
		total += len(p)
	}
	out := make(PosList, 0, total)
	for _, p := range ws.lists {
		out = append(out, p...)
	}
	putWorkerLists(ws)
	return out
}

// ParallelFilterRowsInPlace is ParallelFilterRows writing the surviving
// positions back into sel's storage (which the caller must own),
// allocating nothing once the worker pools are warm.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelFilterRowsInPlace(vals []int64, sel PosList, lo, hi int64, workers int) PosList {
	if workers < 2 || len(sel) < minParallelSel {
		return FilterRowsInPlace(vals, sel, lo, hi)
	}
	ws := parallelFilterParts(vals, sel, lo, hi, workers)
	out := sel[:0]
	for _, p := range ws.lists {
		out = append(out, p...)
	}
	putWorkerLists(ws)
	return out
}

// parallelFilterParts runs the chunked probe fan-out into pooled
// per-worker lists; the caller concatenates and releases them.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func parallelFilterParts(vals []int64, sel PosList, lo, hi int64, workers int) *workerLists {
	ws := getWorkerLists(workers)
	var wg sync.WaitGroup
	chunk := (len(sel) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(sel) {
			break
		}
		end := start + chunk
		if end > len(sel) {
			end = len(sel)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			ws.lists[w] = AppendFilterRows(ws.lists[w], vals, sel[start:end], lo, hi)
		}(w, start, end)
	}
	wg.Wait()
	return ws
}

// FetchRows gathers the values of vals at the given positions — the same
// operation as Project, named from the perspective of the conjunctive
// query pipeline (fetch the aggregate/projection attribute at the
// surviving candidate positions). All positions must be in range.
func FetchRows(vals []int64, sel PosList) []int64 {
	return Project(vals, sel)
}

// ParallelFetchRows is FetchRows with the gather split across workers.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelFetchRows(vals []int64, sel PosList, workers int) []int64 {
	if workers < 2 || len(sel) < minParallelSel {
		return FetchRows(vals, sel)
	}
	out := make([]int64, len(sel))
	var wg sync.WaitGroup
	chunk := (len(sel) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(sel) {
			break
		}
		end := start + chunk
		if end > len(sel) {
			end = len(sel)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				out[i] = vals[sel[i]]
			}
		}(start, end)
	}
	wg.Wait()
	return out
}

// SumRows folds sum(vals[p]) over the positions of sel without
// materializing the gathered values. All positions must be in range.
//
//holistic:noalloc
func SumRows(vals []int64, sel PosList) int64 {
	var s int64
	for _, p := range sel {
		s += vals[p]
	}
	return s
}

// ParallelSumRows is SumRows with the gather-fold split across workers.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelSumRows(vals []int64, sel PosList, workers int) int64 {
	if workers < 2 || len(sel) < minParallelSel {
		return SumRows(vals, sel)
	}
	sums := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (len(sel) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(sel) {
			break
		}
		end := start + chunk
		if end > len(sel) {
			end = len(sel)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			sums[w] = SumRows(vals, sel[start:end])
		}(w, start, end)
	}
	wg.Wait()
	var total int64
	for _, s := range sums {
		total += s
	}
	return total
}

// MinMaxRows folds min/max of vals over the positions of sel and
// reports how many positions were visited; mn/mx are meaningful only
// when n > 0. All positions must be in range.
//
//holistic:noalloc
func MinMaxRows(vals []int64, sel PosList) (mn, mx int64, n int) {
	for _, p := range sel {
		v := vals[p]
		if n == 0 || v < mn {
			mn = v
		}
		if n == 0 || v > mx {
			mx = v
		}
		n++
	}
	return mn, mx, n
}

// View is an update-aware positional view of one attribute: the base
// array plus the logical overlay accumulated by pending insertions
// (Tail), deletions (Deleted) and value updates (Updated). Positional
// probes through a View observe the attribute's current logical state
// regardless of how much of the pending-update queue has been merged
// into the attribute's adaptive index — the property the conjunctive
// query path relies on when it probes non-driving attributes.
//
// A View is a snapshot: the maps are owned by the View, and Base/Tail
// alias storage whose first len() elements are immutable.
type View struct {
	// Base is the attribute's base array; row id r < len(Base) stores its
	// value at Base[r] unless overridden below.
	Base []int64
	// Tail holds appended rows: row id len(Base)+i stores Tail[i].
	Tail []int64
	// Deleted marks row ids whose tuple was deleted (no value).
	Deleted map[Pos]struct{}
	// Updated overrides the value of individual row ids.
	Updated map[Pos]int64
}

// Plain reports whether the view is just the base array (no overlay), so
// callers can take the tight-kernel fast path.
func (w View) Plain() bool {
	return len(w.Tail) == 0 && len(w.Deleted) == 0 && len(w.Updated) == 0
}

// At returns the value at row id p; ok is false when the row has no
// value in this attribute (deleted, or never inserted here).
//
//holistic:noalloc
func (w View) At(p Pos) (int64, bool) {
	if _, dead := w.Deleted[p]; dead {
		return 0, false
	}
	if v, ok := w.Updated[p]; ok {
		return v, true
	}
	if int(p) < len(w.Base) {
		return w.Base[p], true
	}
	if i := int(p) - len(w.Base); i < len(w.Tail) {
		return w.Tail[i], true
	}
	return 0, false
}

// appendFilterRows is the overlay-aware probe loop shared by the
// allocating and in-place filter forms; dst may alias sel (the output
// never outruns the input).
//
//holistic:noalloc
func (w View) appendFilterRows(dst, sel PosList, lo, hi int64) PosList {
	for _, p := range sel {
		if v, ok := w.At(p); ok && v >= lo && v < hi {
			dst = append(dst, p)
		}
	}
	return dst
}

// FilterRows keeps the positions of sel whose current value lies in
// [lo, hi), preserving order; rows without a value are dropped. Plain
// views use the parallel probe kernel.
func (w View) FilterRows(sel PosList, lo, hi int64, workers int) PosList {
	if w.Plain() {
		return ParallelFilterRows(w.Base, sel, lo, hi, workers)
	}
	return w.appendFilterRows(make(PosList, 0, len(sel)), sel, lo, hi)
}

// FilterRowsInPlace is FilterRows writing the survivors back into
// sel's storage, which the caller must own: the allocation-free refine
// kernel of the conjunctive hot path.
//
//holistic:noalloc
func (w View) FilterRowsInPlace(sel PosList, lo, hi int64, workers int) PosList {
	if w.Plain() {
		return ParallelFilterRowsInPlace(w.Base, sel, lo, hi, workers)
	}
	return w.appendFilterRows(sel[:0], sel, lo, hi)
}

// allPresent reports whether a plain view covers every position of sel
// (the common case where the presence filter is the identity).
//
//holistic:noalloc
func (w View) allPresent(sel PosList) bool {
	if !w.Plain() {
		return false
	}
	n := Pos(len(w.Base))
	for _, p := range sel {
		if p >= n {
			return false
		}
	}
	return true
}

// appendPresentRows is the overlay-aware presence loop shared by the
// allocating and in-place forms; dst may alias sel.
//
//holistic:noalloc
func (w View) appendPresentRows(dst, sel PosList) PosList {
	for _, p := range sel {
		if _, ok := w.At(p); ok {
			dst = append(dst, p)
		}
	}
	return dst
}

// PresentRows keeps the positions of sel that have a value in this
// attribute — the presence filter applied to aggregate/projection
// attributes that were not among the predicates.
func (w View) PresentRows(sel PosList) PosList {
	if w.allPresent(sel) {
		return sel
	}
	return w.appendPresentRows(make(PosList, 0, len(sel)), sel)
}

// PresentRowsInPlace is PresentRows writing the survivors back into
// sel's storage, which the caller must own.
//
//holistic:noalloc
func (w View) PresentRowsInPlace(sel PosList) PosList {
	if w.allPresent(sel) {
		return sel
	}
	return w.appendPresentRows(sel[:0], sel)
}

// FetchRows gathers the current values at the given positions; every
// position must have a value (run PresentRows first).
func (w View) FetchRows(sel PosList, workers int) []int64 {
	if w.Plain() {
		return ParallelFetchRows(w.Base, sel, workers)
	}
	out := make([]int64, len(sel))
	for i, p := range sel {
		v, ok := w.At(p)
		if !ok {
			panic(fmt.Sprintf("column: FetchRows at row %d without a value", p))
		}
		out[i] = v
	}
	return out
}

// SumRows folds sum of the current values at the given positions
// without materializing them; every position must have a value (run
// PresentRows first).
//
//holistic:noalloc
func (w View) SumRows(sel PosList, workers int) int64 {
	if w.Plain() {
		return ParallelSumRows(w.Base, sel, workers)
	}
	var s int64
	for _, p := range sel {
		v, ok := w.At(p)
		if !ok {
			panic(fmt.Sprintf("column: SumRows at row %d without a value", p))
		}
		s += v
	}
	return s
}

// MinMaxRows folds min/max of the current values at the given positions
// without materializing them; every position must have a value (run
// PresentRows first).
//
//holistic:noalloc
func (w View) MinMaxRows(sel PosList) (mn, mx int64, n int) {
	if w.Plain() {
		return MinMaxRows(w.Base, sel)
	}
	for _, p := range sel {
		v, ok := w.At(p)
		if !ok {
			panic(fmt.Sprintf("column: MinMaxRows at row %d without a value", p))
		}
		if n == 0 || v < mn {
			mn = v
		}
		if n == 0 || v > mx {
			mx = v
		}
		n++
	}
	return mn, mx, n
}

// GatherRows appends the current values at the given positions to dst —
// the allocation-free gather the grouped-aggregation kernels run per
// decoded selection chunk; every position must have a value (run
// PresentRows first).
//
//holistic:noalloc
func (w View) GatherRows(dst []int64, sel PosList) []int64 {
	if w.Plain() {
		base := w.Base
		for _, p := range sel {
			dst = append(dst, base[p])
		}
		return dst
	}
	for _, p := range sel {
		v, ok := w.At(p)
		if !ok {
			panic(fmt.Sprintf("column: GatherRows at row %d without a value", p))
		}
		dst = append(dst, v)
	}
	return dst
}

// Extent returns the size of the view's position universe: base rows
// plus appended rows. Row ids at or beyond it never have a value.
func (w View) Extent() int { return len(w.Base) + len(w.Tail) }

// ExtendBounds widens the base-column bounds [lo, hi] by the values the
// view's overlay can surface (appended tail rows and updated values), so
// every value observable through the view lies inside the result. An
// inverted input pair (empty base) is replaced rather than widened.
// Deletions never add values and are ignored.
func (w View) ExtendBounds(lo, hi int64) (int64, int64) {
	widen := func(v int64) {
		if hi < lo {
			lo, hi = v, v
			return
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for _, v := range w.Tail {
		widen(v)
	}
	for _, v := range w.Updated {
		widen(v)
	}
	return lo, hi
}

// Bounds returns the minimum and maximum value of vals; an empty slice
// reports the inverted pair (0, -1) so range overlap math naturally
// yields zero.
//
//holistic:noalloc
func Bounds(vals []int64) (lo, hi int64) {
	if len(vals) == 0 {
		return 0, -1
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// UniformEstimate is the shared uniform-domain selectivity guess used
// by the conjunctive query planners:
//
//	rows * |[lo,hi) ∩ [dLo,dHi]| / |[dLo,dHi]|
//
// Pass rows = 1 for a bare selectivity fraction.
//
//holistic:noalloc
func UniformEstimate(rows float64, dLo, dHi, lo, hi int64) float64 {
	if hi <= lo || dHi < dLo {
		return 0
	}
	span := float64(dHi) - float64(dLo) + 1
	cLo, cHi := float64(lo), float64(hi)
	if cLo < float64(dLo) {
		cLo = float64(dLo)
	}
	if cHi > float64(dHi)+1 {
		cHi = float64(dHi) + 1
	}
	if cHi <= cLo {
		return 0
	}
	return rows * (cHi - cLo) / span
}

// Dict is an order-preserving string dictionary. Low-cardinality string
// attributes (TPC-H return flags, ship modes, ...) are stored as int64
// codes in a Column; Dict translates between the two representations.
//
// Codes are assigned in first-seen order, so range predicates over codes
// are only meaningful per-value (equality / IN lists), which is all the
// workloads here need.
type Dict struct {
	mu      sync.RWMutex
	codes   map[string]int64
	strings []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int64)}
}

// Encode returns the code for s, assigning a fresh one if unseen.
func (d *Dict) Encode(s string) int64 {
	d.mu.RLock()
	code, ok := d.codes[s]
	d.mu.RUnlock()
	if ok {
		return code
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if code, ok := d.codes[s]; ok {
		return code
	}
	code = int64(len(d.strings))
	d.codes[s] = code
	d.strings = append(d.strings, s)
	return code
}

// Lookup returns the code for s without assigning; ok reports presence.
func (d *Dict) Lookup(s string) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	code, ok := d.codes[s]
	return code, ok
}

// Decode translates a code back to its string.
func (d *Dict) Decode(code int64) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if code < 0 || code >= int64(len(d.strings)) {
		return fmt.Sprintf("<bad code %d>", code)
	}
	return d.strings[code]
}

// Card returns the number of distinct strings in the dictionary.
func (d *Dict) Card() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strings)
}
