package column

import (
	"math/rand"
	"sync"
	"testing"
)

// boundaryLens are the column lengths the differential tests sweep:
// empty, sub-word, exact words and non-multiple-of-64 tails.
var boundaryLens = []int{0, 1, 63, 64, 65, 127, 128, 129, 1000, 4096}

func randVals(n int, domain int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(domain)
	}
	return vals
}

func posListEqual(a, b PosList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScanRangeBitmapMatchesPosList: the bitmap select agrees with the
// scalar PosList oracle at every boundary length.
func TestScanRangeBitmapMatchesPosList(t *testing.T) {
	const domain = 1000
	for _, n := range boundaryLens {
		vals := randVals(n, domain, int64(n)+1)
		rng := rand.New(rand.NewSource(int64(n)))
		bm := NewBitmap(0)
		for q := 0; q < 20; q++ {
			lo := rng.Int63n(domain)
			hi := lo + rng.Int63n(domain-lo) + 1
			want := ScanRange(vals, lo, hi)

			ScanRangeBitmap(vals, lo, hi, bm)
			if got := bm.Count(); got != len(want) {
				t.Fatalf("n=%d [%d,%d): Count = %d, want %d", n, lo, hi, got, len(want))
			}
			if got := bm.AppendPositions(nil); !posListEqual(got, want) {
				t.Fatalf("n=%d [%d,%d): positions %v, want %v", n, lo, hi, got, want)
			}

			ParallelScanRangeBitmap(vals, lo, hi, bm, 4)
			if got := bm.AppendPositions(nil); !posListEqual(got, want) {
				t.Fatalf("n=%d [%d,%d): parallel positions diverge", n, lo, hi)
			}
		}
	}
}

// TestFilterBitmapMatchesFilterRows: bitmap residual filtering agrees
// with the PosList probe kernel, including positions beyond the base
// array (dropped by both) and the dense branch-free word path.
func TestFilterBitmapMatchesFilterRows(t *testing.T) {
	const domain = 100 // small domain => dense words exercise the branch-free lane path
	for _, n := range boundaryLens {
		if n == 0 {
			continue
		}
		vals := randVals(n, domain, int64(n)+2)
		short := vals[:n-n/4] // probe array shorter than the universe
		rng := rand.New(rand.NewSource(int64(n) * 7))
		bm := NewBitmap(0)
		for q := 0; q < 20; q++ {
			dLo := rng.Int63n(domain)
			dHi := dLo + rng.Int63n(domain-dLo) + 1
			fLo := rng.Int63n(domain)
			fHi := fLo + rng.Int63n(domain-fLo) + 1
			for _, probe := range [][]int64{vals, short} {
				drive := ScanRange(vals, dLo, dHi)
				want := FilterRows(probe, drive, fLo, fHi)

				ScanRangeBitmap(vals, dLo, dHi, bm)
				FilterBitmap(probe, bm, fLo, fHi)
				if got := bm.AppendPositions(nil); !posListEqual(got, want) {
					t.Fatalf("n=%d drive[%d,%d) filter[%d,%d) len(probe)=%d: %v, want %v",
						n, dLo, dHi, fLo, fHi, len(probe), got, want)
				}

				ScanRangeBitmap(vals, dLo, dHi, bm)
				ParallelFilterBitmap(probe, bm, fLo, fHi, 4)
				if got := bm.AppendPositions(nil); !posListEqual(got, want) {
					t.Fatalf("n=%d: parallel filter diverges", n)
				}

				if got := FilterRowsInPlace(probe, append(PosList(nil), drive...), fLo, fHi); !posListEqual(got, want) {
					t.Fatalf("n=%d: FilterRowsInPlace diverges", n)
				}
			}
		}
	}
}

// TestBitmapFetchSumMatchOracle: gather and fold over set bits agree
// with Project/SumRows over the equivalent position list.
func TestBitmapFetchSumMatchOracle(t *testing.T) {
	vals := randVals(1000, 1<<20, 9)
	bm := NewBitmap(0)
	ScanRangeBitmap(vals, 1<<18, 1<<19, bm)
	sel := bm.AppendPositions(nil)

	wantVals := Project(vals, sel)
	gotVals := FetchBitmapAppend(vals, bm, nil)
	if len(gotVals) != len(wantVals) {
		t.Fatalf("fetch %d values, want %d", len(gotVals), len(wantVals))
	}
	for i := range gotVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("fetch[%d] = %d, want %d", i, gotVals[i], wantVals[i])
		}
	}
	if got, want := SumBitmap(vals, bm), SumRows(vals, sel); got != want {
		t.Fatalf("SumBitmap = %d, want %d", got, want)
	}
	if got, want := ParallelSumRows(vals, sel, 4), SumRows(vals, sel); got != want {
		t.Fatalf("ParallelSumRows = %d, want %d", got, want)
	}
}

// TestBitmapSetOps: And/AndNot/ClearFrom/SetRows/Test behave as the
// set-algebra definitions say, across word boundaries.
func TestBitmapSetOps(t *testing.T) {
	a := NewBitmap(130)
	b := NewBitmap(130)
	for p := 0; p < 130; p += 2 {
		a.Set(Pos(p))
	}
	for p := 0; p < 130; p += 3 {
		b.Set(Pos(p))
	}
	a.And(b)
	for p := 0; p < 130; p++ {
		want := p%6 == 0
		if a.Test(Pos(p)) != want {
			t.Fatalf("And: bit %d = %v, want %v", p, a.Test(Pos(p)), want)
		}
	}
	a.AndNot(b) // a ∩ b minus b = empty
	if a.Count() != 0 {
		t.Fatalf("AndNot left %d bits", a.Count())
	}
	a.SetRows([]uint32{0, 63, 64, 129})
	a.ClearFrom(64)
	if a.Count() != 2 || !a.Test(0) || !a.Test(63) || a.Test(64) || a.Test(129) {
		t.Fatalf("ClearFrom(64): wrong survivors (count %d)", a.Count())
	}
	a.ClearFrom(1000) // beyond Len: no-op
	if a.Count() != 2 {
		t.Fatalf("ClearFrom beyond Len changed the bitmap")
	}
	// Mismatched universes: And clears positions beyond the smaller
	// operand, AndNot leaves them alone.
	small := NewBitmap(64)
	small.Set(0)
	wide := NewBitmap(130)
	wide.SetRows([]uint32{0, 63, 129})
	wide.And(small)
	if wide.Count() != 1 || !wide.Test(0) {
		t.Fatalf("And with smaller universe: %d bits", wide.Count())
	}
	wide.SetRows([]uint32{63, 129})
	wide.AndNot(small)
	if wide.Count() != 2 || wide.Test(0) || !wide.Test(63) || !wide.Test(129) {
		t.Fatalf("AndNot with smaller universe: %d bits", wide.Count())
	}
	if !wide.Any() {
		t.Fatalf("Any on non-empty bitmap = false")
	}
	wide.Reset(130)
	if wide.Any() {
		t.Fatalf("Any on empty bitmap = true")
	}
	if a.Test(Pos(5000)) {
		t.Fatalf("Test beyond Len returned true")
	}
}

// TestBitmapSetRowsExtend: row ids at or beyond the sized universe grow
// the bitmap instead of corrupting memory (the adaptive select path's
// concurrent-insert hazard), preserving existing bits.
func TestBitmapSetRowsExtend(t *testing.T) {
	b := NewBitmap(64)
	b.Set(10)
	b.SetRowsExtend([]uint32{63, 64, 200})
	if b.Len() != 201 {
		t.Fatalf("Len = %d, want 201", b.Len())
	}
	for _, p := range []Pos{10, 63, 64, 200} {
		if !b.Test(p) {
			t.Fatalf("bit %d lost", p)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	// Within-range ids keep the plain path.
	b.SetRowsExtend([]uint32{0})
	if b.Len() != 201 || !b.Test(0) {
		t.Fatalf("in-range extend misbehaved")
	}
}

// TestViewBitmapWithOverlay: the overlay-aware bitmap filter, presence
// filter, sum and fetch agree with the PosList forms of the same View.
func TestViewBitmapWithOverlay(t *testing.T) {
	base := randVals(200, 1000, 11)
	v := View{
		Base:    base,
		Tail:    []int64{5, 500, 995},
		Deleted: map[Pos]struct{}{3: {}, 64: {}, 201: {}},
		Updated: map[Pos]int64{10: 123, 127: 456},
	}
	universe := len(base) + len(v.Tail)
	all := make(PosList, universe)
	for i := range all {
		all[i] = Pos(i)
	}
	bm := NewBitmap(universe)
	for i := 0; i < universe; i++ {
		bm.Set(Pos(i))
	}

	wantSel := v.FilterRows(all, 100, 600, 1)
	v.FilterBitmap(bm, 100, 600, 1)
	if got := bm.AppendPositions(nil); !posListEqual(got, wantSel) {
		t.Fatalf("View.FilterBitmap: %v, want %v", got, wantSel)
	}
	v.PresentBitmap(bm) // filtered rows are present by construction: no-op
	if got := bm.AppendPositions(nil); !posListEqual(got, wantSel) {
		t.Fatalf("View.PresentBitmap dropped present rows")
	}
	var wantSum int64
	for _, val := range v.FetchRows(wantSel, 1) {
		wantSum += val
	}
	if got := v.SumBitmap(bm); got != wantSum {
		t.Fatalf("View.SumBitmap = %d, want %d", got, wantSum)
	}
	if got := v.SumRows(wantSel, 1); got != wantSum {
		t.Fatalf("View.SumRows = %d, want %d", got, wantSum)
	}
	gotVals := v.FetchBitmap(bm, nil)
	wantVals := v.FetchRows(wantSel, 1)
	for i := range wantVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("View.FetchBitmap[%d] = %d, want %d", i, gotVals[i], wantVals[i])
		}
	}

	// Presence filter alone drops deletions and keeps the tail.
	bm2 := NewBitmap(universe + 5)
	for i := 0; i < universe+5; i++ {
		bm2.Set(Pos(i))
	}
	wantPresent := v.PresentRows(append(all, Pos(universe), Pos(universe+4)))
	v.PresentBitmap(bm2)
	if got := bm2.AppendPositions(nil); !posListEqual(got, wantPresent) {
		t.Fatalf("View.PresentBitmap: %d present, want %d", len(got), len(wantPresent))
	}

	// In-place PosList forms agree with the allocating ones.
	if got := v.FilterRowsInPlace(append(PosList(nil), all...), 100, 600, 1); !posListEqual(got, wantSel) {
		t.Fatalf("View.FilterRowsInPlace diverges")
	}
	if got := v.PresentRowsInPlace(append(PosList(nil), all...)); !posListEqual(got, v.PresentRows(all)) {
		t.Fatalf("View.PresentRowsInPlace diverges")
	}
}

// TestRandomizedBitmapDifferential is the randomized end-to-end kernel
// check: scan → filter → count/fetch pipelines in both representations
// over random data, lengths and bounds.
func TestRandomizedBitmapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	bm := NewBitmap(0)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(3000)
		if trial < len(boundaryLens) {
			n = boundaryLens[trial]
		}
		domain := int64(1 + rng.Intn(2000))
		vals := randVals(n, domain, rng.Int63())
		other := randVals(n, domain, rng.Int63())
		lo1, hi1 := rng.Int63n(domain), rng.Int63n(domain)+1
		lo2, hi2 := rng.Int63n(domain), rng.Int63n(domain)+1

		want := FilterRows(other, ScanRange(vals, lo1, hi1), lo2, hi2)
		ScanRangeBitmap(vals, lo1, hi1, bm)
		FilterBitmap(other, bm, lo2, hi2)
		if bm.Count() != len(want) {
			t.Fatalf("trial %d (n=%d): count %d, want %d", trial, n, bm.Count(), len(want))
		}
		if got := bm.AppendPositions(nil); !posListEqual(got, want) {
			t.Fatalf("trial %d (n=%d): positions diverge", trial, n)
		}
		if got, want := SumBitmap(other, bm), SumRows(other, want); got != want {
			t.Fatalf("trial %d: sums diverge", trial)
		}
	}
}

// TestPooledBuffersConcurrent hammers the pooled scratch (bitmaps,
// position lists, worker lists) from concurrent goroutines; run under
// -race it proves reuse never crosses goroutines while in use.
func TestPooledBuffersConcurrent(t *testing.T) {
	const domain = 1 << 16
	vals := randVals(1<<15, domain, 77)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for q := 0; q < 50; q++ {
				lo := rng.Int63n(domain)
				hi := lo + rng.Int63n(domain-lo) + 1
				want := CountRange(vals, lo, hi)

				bm := GetBitmap(len(vals))
				ParallelScanRangeBitmap(vals, lo, hi, bm, 4)
				ParallelFilterBitmap(vals, bm, lo, hi, 4) // idempotent filter
				if got := bm.Count(); got != want {
					t.Errorf("goroutine %d: bitmap count %d, want %d", g, got, want)
				}
				sel := bm.AppendPositions(nil)
				if len(sel) != want {
					t.Errorf("goroutine %d: poslist len %d, want %d", g, len(sel), want)
				}
				sel = ParallelFilterRowsInPlace(vals, sel, lo, hi, 4)
				if len(sel) != want {
					t.Errorf("goroutine %d: in-place filter len %d, want %d", g, len(sel), want)
				}
				PutBitmap(bm)

				if got := len(ParallelScanRange(vals, lo, hi, 4)); got != want {
					t.Errorf("goroutine %d: ParallelScanRange len %d, want %d", g, got, want)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestZeroAllocBitmapPipeline: the sequential scan → filter → count
// pipeline over pooled scratch allocates nothing once warm.
func TestZeroAllocBitmapPipeline(t *testing.T) {
	vals := randVals(1<<14, 1<<20, 5)
	bm := GetBitmap(len(vals))
	defer PutBitmap(bm)
	allocs := testing.AllocsPerRun(100, func() {
		ScanRangeBitmap(vals, 1<<17, 1<<19, bm)
		FilterBitmap(vals, bm, 1<<17, 1<<18)
		if bm.Count() < 0 {
			t.Fatal("impossible")
		}
	})
	if allocs != 0 {
		t.Fatalf("bitmap pipeline allocates %.1f times per query, want 0", allocs)
	}
}

// TestSetRange covers the word-boundary cases of the contiguous-range
// fill: within one word, spanning words, aligned and unaligned edges.
func TestSetRange(t *testing.T) {
	for _, tc := range [][2]int{{0, 0}, {0, 1}, {3, 9}, {0, 64}, {63, 65}, {64, 128}, {5, 200}, {190, 200}, {0, 200}, {199, 200}} {
		b := NewBitmap(200)
		b.SetRange(tc[0], tc[1])
		for p := 0; p < 200; p++ {
			want := p >= tc[0] && p < tc[1]
			if b.Test(Pos(p)) != want {
				t.Fatalf("SetRange(%d, %d): bit %d = %v, want %v", tc[0], tc[1], p, b.Test(Pos(p)), want)
			}
		}
		if got, want := b.Count(), tc[1]-tc[0]; got != want {
			t.Fatalf("SetRange(%d, %d): count = %d, want %d", tc[0], tc[1], got, want)
		}
	}
	// Clamping: out-of-universe bounds are cut, inverted ranges are a no-op.
	b := NewBitmap(70)
	b.SetRange(-5, 1000)
	if b.Count() != 70 {
		t.Fatalf("clamped SetRange count = %d, want 70", b.Count())
	}
	b.Reset(70)
	b.SetRange(50, 20)
	if b.Count() != 0 {
		t.Fatal("inverted SetRange set bits")
	}
}

// TestAppendPositionsWords checks the chunked decode against the full
// decode over word sub-ranges.
func TestAppendPositionsWords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBitmap(1000)
	for i := 0; i < 1000; i++ {
		if rng.Intn(3) == 0 {
			b.Set(Pos(i))
		}
	}
	full := b.AppendPositions(nil)
	var chunked PosList
	for w := 0; w < b.Words(); w += 3 {
		chunked = b.AppendPositionsWords(chunked, w, w+3)
	}
	if len(chunked) != len(full) {
		t.Fatalf("chunked decode has %d positions, full %d", len(chunked), len(full))
	}
	for i := range full {
		if chunked[i] != full[i] {
			t.Fatalf("position %d: %d vs %d", i, chunked[i], full[i])
		}
	}
	// Out-of-range word bounds clamp.
	if got := b.AppendPositionsWords(nil, -2, b.Words()+5); len(got) != len(full) {
		t.Fatalf("clamped decode has %d positions, want %d", len(got), len(full))
	}
	if got := b.AppendPositionsWords(nil, 5, 5); len(got) != 0 {
		t.Fatal("empty word range decoded positions")
	}
}
