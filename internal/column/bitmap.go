package column

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Bitmap is the word-packed selection-vector form: bit p of the word
// array is set iff base position p qualifies. It is the dense
// counterpart of PosList — one bit per base position instead of 32 bits
// per qualifying position — so above ~3% selectivity it is smaller, and
// its intersection (the residual-conjunct filter of a conjunctive
// query) runs word at a time with zero-word skipping instead of probe
// by probe. Positions iterate in ascending order, which the
// materializing query forms exploit to skip their sort.
//
// A Bitmap is not safe for concurrent mutation except through
// OrRowsAtomic, the path the chunk-parallel CCGI select uses.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a zeroed bitmap covering positions [0, n).
func NewBitmap(n int) *Bitmap {
	b := &Bitmap{}
	b.Reset(n)
	return b
}

// Reset resizes the bitmap to cover positions [0, n) and clears every
// bit, reusing the backing array when it is large enough.
//
//holistic:alloc-ok grows the retained buffer on first use or resize
func (b *Bitmap) Reset(n int) {
	nw := (n + 63) >> 6
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
	} else {
		b.words = b.words[:nw]
		clear(b.words)
	}
	b.n = n
}

// Len returns the number of positions the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set marks position p as qualifying. p must be < Len().
//
//holistic:noalloc
func (b *Bitmap) Set(p Pos) { b.words[p>>6] |= 1 << (p & 63) }

// Test reports whether position p qualifies.
//
//holistic:noalloc
func (b *Bitmap) Test(p Pos) bool {
	if int(p) >= b.n {
		return false
	}
	return b.words[p>>6]&(1<<(p&63)) != 0
}

// Count returns the number of qualifying positions: a popcount fold,
// the bitmap's count(*) with no materialization.
//
//holistic:noalloc
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any position qualifies, short-circuiting on the
// first non-zero word — the cheap emptiness probe the refine loop uses
// to stop touching data once a conjunction has gone dry.
//
//holistic:noalloc
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// And intersects b with o in place, word at a time; positions beyond
// o's universe are absent from o and therefore cleared.
//
//holistic:noalloc
func (b *Bitmap) And(o *Bitmap) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &= o.words[i]
	}
	clear(b.words[n:])
}

// AndNot clears from b every position set in o, word at a time;
// positions beyond o's universe are unaffected.
//
//holistic:noalloc
func (b *Bitmap) AndNot(o *Bitmap) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= o.words[i]
	}
}

// SetRange marks every position in [start, end): the selection vector of
// a contiguous qualifying window (a pre-sorted projection slice, or the
// all-rows universe of a grouped query without predicates), built word
// at a time.
//
//holistic:noalloc
func (b *Bitmap) SetRange(start, end int) {
	if start < 0 {
		start = 0
	}
	if end > b.n {
		end = b.n
	}
	if start >= end {
		return
	}
	first, last := start>>6, (end-1)>>6
	loMask := ^uint64(0) << uint(start&63)
	hiMask := ^uint64(0) >> uint(63-(end-1)&63)
	if first == last {
		b.words[first] |= loMask & hiMask
		return
	}
	b.words[first] |= loMask
	for wi := first + 1; wi < last; wi++ {
		b.words[wi] = ^uint64(0)
	}
	b.words[last] |= hiMask
}

// SetRows marks every row id in rows. All ids must be < Len().
//
//holistic:noalloc
func (b *Bitmap) SetRows(rows []uint32) {
	for _, r := range rows {
		b.words[r>>6] |= 1 << (r & 63)
	}
}

// SetRowsExtend is SetRows growing the bitmap to cover row ids at or
// beyond Len(). The adaptive select path streams rowids whose universe
// was sized before the select: a pending insert merged by a concurrent
// query can legitimately surface a row id assigned after the sizing,
// and must extend the bitmap instead of corrupting memory.
//
//holistic:noalloc
func (b *Bitmap) SetRowsExtend(rows []uint32) {
	for _, r := range rows {
		if int(r) >= b.n {
			b.extend(int(r) + 1)
		}
		b.words[r>>6] |= 1 << (r & 63)
	}
}

// extend grows the bitmap to cover [0, n) keeping existing bits.
//
//holistic:alloc-ok grows the retained buffer on first use or resize
func (b *Bitmap) extend(n int) {
	nw := (n + 63) >> 6
	for len(b.words) < nw {
		b.words = append(b.words, 0)
	}
	b.n = n
}

// OrRowsAtomic marks every row id in rows shifted by off, with atomic
// word ORs so concurrent writers producing disjoint row ids (the CCGI
// chunks, whose position spans may share a boundary word) need no
// further synchronization.
//
//holistic:noalloc
func (b *Bitmap) OrRowsAtomic(rows []uint32, off uint32) {
	for _, r := range rows {
		p := r + off
		atomic.OrUint64(&b.words[p>>6], 1<<(p&63))
	}
}

// ClearFrom clears every position >= n without shrinking the bitmap:
// the presence filter against an attribute whose base array is shorter
// than the position universe (rows appended to other attributes only).
//
//holistic:noalloc
func (b *Bitmap) ClearFrom(n int) {
	if n < 0 {
		n = 0
	}
	if n >= b.n {
		return
	}
	wi := n >> 6
	if r := uint(n & 63); r != 0 {
		b.words[wi] &= (1 << r) - 1
		wi++
	}
	clear(b.words[wi:])
}

// AppendPositions appends the qualifying positions to dst in ascending
// order — the bitmap → position-list conversion performed once at the
// project/aggregate boundary.
//
//holistic:noalloc
func (b *Bitmap) AppendPositions(dst PosList) PosList {
	for wi, w := range b.words {
		base := Pos(wi << 6)
		for ; w != 0; w &= w - 1 {
			dst = append(dst, base+Pos(bits.TrailingZeros64(w)))
		}
	}
	return dst
}

// AppendPositionsWords is AppendPositions restricted to the words
// [fromWord, toWord): the chunked bitmap → position-list decode the
// grouped-aggregation kernels use to process a selection vector through
// a small pooled buffer (and parallel consumers use to split a bitmap
// into word-disjoint spans) without materializing the full list.
//
//holistic:noalloc
func (b *Bitmap) AppendPositionsWords(dst PosList, fromWord, toWord int) PosList {
	if fromWord < 0 {
		fromWord = 0
	}
	if toWord > len(b.words) {
		toWord = len(b.words)
	}
	for wi := fromWord; wi < toWord; wi++ {
		w := b.words[wi]
		base := Pos(wi << 6)
		for ; w != 0; w &= w - 1 {
			dst = append(dst, base+Pos(bits.TrailingZeros64(w)))
		}
	}
	return dst
}

// Words returns the number of 64-position words backing the bitmap —
// the unit chunked consumers split on.
func (b *Bitmap) Words() int { return len(b.words) }

// denseLanes is the per-word popcount at and above which the filter
// kernels evaluate all 64 lanes branch-free and mask, rather than
// probing set bit by set bit: on dense words the straight-line loop
// beats the dependent find-first-set chain.
const denseLanes = 32

// signBit biases int64 values into order-preserving uint64 space, so
// lo <= v < hi collapses to one unsigned compare: (u(v)-u(lo)) < span.
const signBit = 1 << 63

// rangeBits returns the biased lower bound and span of [lo, hi). A
// value qualifies iff (uint64(v)^signBit)-ulo < span — evaluated
// branch-free through the bits.Sub64 borrow, so 50%-selective scans pay
// no branch mispredictions. Callers must handle hi <= lo themselves
// (the span would wrap).
//
//holistic:noalloc
func rangeBits(lo, hi int64) (ulo, span uint64) {
	ulo = uint64(lo) ^ signBit
	return ulo, (uint64(hi) ^ signBit) - ulo
}

// filterWord evaluates the range predicate for the lanes of one
// 64-position word and returns w intersected with the outcome. Lanes at
// or beyond len(vals) never qualify (mirroring FilterRows, which drops
// positions without a value).
//
//holistic:noalloc
func filterWord(vals []int64, base int, w uint64, ulo, span uint64) uint64 {
	end := len(vals) - base
	if end >= 64 && bits.OnesCount64(w) >= denseLanes {
		var m uint64
		for j, v := range vals[base : base+64] {
			_, lt := bits.Sub64((uint64(v)^signBit)-ulo, span, 0)
			m |= lt << uint(j)
		}
		return w & m
	}
	var m uint64
	for t := w; t != 0; t &= t - 1 {
		j := bits.TrailingZeros64(t)
		if j < end && (uint64(vals[base+j])^signBit)-ulo < span {
			m |= 1 << uint(j)
		}
	}
	return m
}

// ScanRangeBitmap is the bitmap-producing select operator: it resets b
// to cover vals and sets bit p iff lo <= vals[p] < hi, built word at a
// time with branch-free lane evaluation.
//
//holistic:noalloc
func ScanRangeBitmap(vals []int64, lo, hi int64, b *Bitmap) {
	b.Reset(len(vals))
	if hi <= lo {
		return
	}
	scanWords(vals, lo, hi, b.words, 0, len(vals))
}

// scanWords fills the words covering positions [start, end); start must
// be 64-aligned so writers of adjacent spans touch disjoint words, and
// the caller must have rejected hi <= lo.
//
//holistic:noalloc
func scanWords(vals []int64, lo, hi int64, words []uint64, start, end int) {
	ulo, span := rangeBits(lo, hi)
	p := start
	for p < end {
		stop := (p | 63) + 1
		if stop > end {
			stop = end
		}
		var w uint64
		for j, v := range vals[p:stop] {
			_, lt := bits.Sub64((uint64(v)^signBit)-ulo, span, 0)
			w |= lt << uint(j)
		}
		words[p>>6] = w
		p = stop
	}
}

// ParallelScanRangeBitmap is ScanRangeBitmap with the scan split across
// workers contiguous 64-aligned chunks, so every worker owns whole
// words and no write is shared.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelScanRangeBitmap(vals []int64, lo, hi int64, b *Bitmap, workers int) {
	if workers < 2 || len(vals) < 2*1024 {
		ScanRangeBitmap(vals, lo, hi, b)
		return
	}
	b.Reset(len(vals))
	if hi <= lo {
		return
	}
	chunk := ((len(vals)+workers-1)/workers + 63) &^ 63
	var wg sync.WaitGroup
	for start := 0; start < len(vals); start += chunk {
		end := start + chunk
		if end > len(vals) {
			end = len(vals)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			scanWords(vals, lo, hi, b.words, start, end)
		}(start, end)
	}
	wg.Wait()
}

// FilterBitmap intersects b in place with the predicate lo <= vals[p] <
// hi: the residual-conjunct kernel on the bitmap representation. Zero
// words — already-disqualified regions — are skipped without touching
// the data.
//
//holistic:noalloc
func FilterBitmap(vals []int64, b *Bitmap, lo, hi int64) {
	if hi <= lo {
		clear(b.words)
		return
	}
	filterWords(vals, b.words, 0, lo, hi)
}

// filterWords filters the words (which cover positions starting at word
// index from) in place; the caller must have rejected hi <= lo.
//
//holistic:noalloc
func filterWords(vals []int64, words []uint64, from int, lo, hi int64) {
	ulo, span := rangeBits(lo, hi)
	for wi, w := range words {
		if w == 0 {
			continue
		}
		words[wi] = filterWord(vals, (from+wi)<<6, w, ulo, span)
	}
}

// ParallelFilterBitmap is FilterBitmap with the word array split across
// workers contiguous chunks; writes are word-disjoint by construction.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func ParallelFilterBitmap(vals []int64, b *Bitmap, lo, hi int64, workers int) {
	if workers < 2 || b.n < minParallelSel {
		FilterBitmap(vals, b, lo, hi)
		return
	}
	if hi <= lo {
		clear(b.words)
		return
	}
	chunk := (len(b.words) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(b.words); start += chunk {
		end := start + chunk
		if end > len(b.words) {
			end = len(b.words)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			filterWords(vals, b.words[start:end], start, lo, hi)
		}(start, end)
	}
	wg.Wait()
}

// FetchBitmapAppend appends vals at the qualifying positions to dst in
// ascending position order — the gather at the project boundary. Every
// set position must be < len(vals).
//
//holistic:noalloc
func FetchBitmapAppend(vals []int64, b *Bitmap, dst []int64) []int64 {
	for wi, w := range b.words {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			dst = append(dst, vals[base+bits.TrailingZeros64(w)])
		}
	}
	return dst
}

// SumBitmap folds sum(vals[p]) over the qualifying positions without
// materializing anything. Every set position must be < len(vals).
//
//holistic:noalloc
func SumBitmap(vals []int64, b *Bitmap) int64 {
	var s int64
	for wi, w := range b.words {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			s += vals[base+bits.TrailingZeros64(w)]
		}
	}
	return s
}

// MinMaxBitmap folds min/max of vals over the qualifying positions and
// reports how many qualified; mn/mx are meaningful only when n > 0.
// Every set position must be < len(vals).
//
//holistic:noalloc
func MinMaxBitmap(vals []int64, b *Bitmap) (mn, mx int64, n int) {
	for wi, w := range b.words {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			v := vals[base+bits.TrailingZeros64(w)]
			if n == 0 || v < mn {
				mn = v
			}
			if n == 0 || v > mx {
				mx = v
			}
			n++
		}
	}
	return mn, mx, n
}

// MinMaxBitmap folds min/max of the current values at the set positions;
// every set position must have a value (run PresentBitmap first).
//
//holistic:noalloc
func (w View) MinMaxBitmap(b *Bitmap) (mn, mx int64, n int) {
	if w.Plain() {
		return MinMaxBitmap(w.Base, b)
	}
	for wi, word := range b.words {
		base := Pos(wi << 6)
		for ; word != 0; word &= word - 1 {
			p := base + Pos(bits.TrailingZeros64(word))
			v, ok := w.At(p)
			if !ok {
				panic(fmt.Sprintf("column: MinMaxBitmap at row %d without a value", p))
			}
			if n == 0 || v < mn {
				mn = v
			}
			if n == 0 || v > mx {
				mx = v
			}
			n++
		}
	}
	return mn, mx, n
}

// FilterBitmap is the bitmap form of View.FilterRows: it clears from b
// every position whose current value is outside [lo, hi) (or that has
// no value), in place. Plain views run the word-parallel kernel;
// overlaid views probe set bit by set bit through At.
//
//holistic:noalloc
func (w View) FilterBitmap(b *Bitmap, lo, hi int64, workers int) {
	if w.Plain() {
		ParallelFilterBitmap(w.Base, b, lo, hi, workers)
		return
	}
	for wi, word := range b.words {
		if word == 0 {
			continue
		}
		var m uint64
		base := Pos(wi << 6)
		for t := word; t != 0; t &= t - 1 {
			j := bits.TrailingZeros64(t)
			if v, ok := w.At(base + Pos(j)); ok && v >= lo && v < hi {
				m |= 1 << uint(j)
			}
		}
		b.words[wi] = m
	}
}

// PresentBitmap is the bitmap form of View.PresentRows: it clears from
// b every position without a value in this attribute, in place.
//
//holistic:noalloc
func (w View) PresentBitmap(b *Bitmap) {
	if w.Plain() {
		b.ClearFrom(len(w.Base))
		return
	}
	for wi, word := range b.words {
		if word == 0 {
			continue
		}
		var m uint64
		base := Pos(wi << 6)
		for t := word; t != 0; t &= t - 1 {
			j := bits.TrailingZeros64(t)
			if _, ok := w.At(base + Pos(j)); ok {
				m |= 1 << uint(j)
			}
		}
		b.words[wi] = m
	}
}

// SumBitmap folds sum of the current values at the set positions;
// every set position must have a value (run PresentBitmap first).
//
//holistic:noalloc
func (w View) SumBitmap(b *Bitmap) int64 {
	if w.Plain() {
		return SumBitmap(w.Base, b)
	}
	var s int64
	for wi, word := range b.words {
		base := Pos(wi << 6)
		for ; word != 0; word &= word - 1 {
			p := base + Pos(bits.TrailingZeros64(word))
			v, ok := w.At(p)
			if !ok {
				panic(fmt.Sprintf("column: SumBitmap at row %d without a value", p))
			}
			s += v
		}
	}
	return s
}

// FetchBitmap gathers the current values at the set positions in
// ascending position order; every set position must have a value.
//
//holistic:noalloc
func (w View) FetchBitmap(b *Bitmap, dst []int64) []int64 {
	if w.Plain() {
		return FetchBitmapAppend(w.Base, b, dst)
	}
	for wi, word := range b.words {
		base := Pos(wi << 6)
		for ; word != 0; word &= word - 1 {
			p := base + Pos(bits.TrailingZeros64(word))
			v, ok := w.At(p)
			if !ok {
				panic(fmt.Sprintf("column: FetchBitmap at row %d without a value", p))
			}
			dst = append(dst, v)
		}
	}
	return dst
}

// --- pooled scratch ---
//
// The steady-state query path recycles its intermediates so a query
// allocates nothing once the pools are warm: internal/query's runner
// pools whole per-query scratch structs (bitmap included), the
// parallel materializing kernels pool their per-worker output slices
// (workerLists, below), and external callers driving
// engine.BitmapSelector directly borrow bitmaps via GetBitmap /
// PutBitmap.

var bitmapPool = sync.Pool{New: func() any { return new(Bitmap) }}

// GetBitmap returns a pooled bitmap reset to cover [0, n).
//
//holistic:alloc-ok pool warm-up allocates the recycled object
func GetBitmap(n int) *Bitmap {
	b := bitmapPool.Get().(*Bitmap)
	b.Reset(n)
	return b
}

// PutBitmap recycles a bitmap obtained from GetBitmap. The caller must
// not retain it.
//
//holistic:noalloc
func PutBitmap(b *Bitmap) {
	if b != nil {
		bitmapPool.Put(b)
	}
}

// workerLists is the pooled per-worker output scratch of the parallel
// materializing kernels: each worker appends into its own retained
// slice, so the fan-out costs no allocations once warm.
type workerLists struct {
	lists []PosList
}

var workerListsPool = sync.Pool{New: func() any { return new(workerLists) }}

//holistic:alloc-ok pool warm-up allocates the recycled object
func getWorkerLists(workers int) *workerLists {
	p := workerListsPool.Get().(*workerLists)
	if cap(p.lists) < workers {
		p.lists = make([]PosList, workers)
	} else {
		p.lists = p.lists[:workers]
	}
	for i := range p.lists {
		p.lists[i] = p.lists[i][:0]
	}
	return p
}

//holistic:noalloc
func putWorkerLists(p *workerLists) { workerListsPool.Put(p) }
