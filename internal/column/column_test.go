package column

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seq(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	return v
}

func TestColumnBasics(t *testing.T) {
	c := New("a", seq(10))
	if c.Name() != "a" {
		t.Errorf("Name() = %q, want a", c.Name())
	}
	if c.Len() != 10 {
		t.Errorf("Len() = %d, want 10", c.Len())
	}
	if c.At(7) != 7 {
		t.Errorf("At(7) = %d, want 7", c.At(7))
	}
	p := c.Append(99)
	if p != 10 || c.At(p) != 99 || c.Len() != 11 {
		t.Errorf("Append gave pos %d, len %d, val %d", p, c.Len(), c.At(p))
	}
}

func TestScanRange(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7, 3, 0}
	got := ScanRange(vals, 3, 8)
	want := PosList{0, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("ScanRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanRange = %v, want %v", got, want)
		}
	}
}

func TestScanRangeEmptyAndFull(t *testing.T) {
	vals := seq(100)
	if got := ScanRange(vals, 200, 300); len(got) != 0 {
		t.Errorf("out-of-domain scan returned %d positions", len(got))
	}
	if got := ScanRange(vals, 50, 50); len(got) != 0 {
		t.Errorf("empty range scan returned %d positions", len(got))
	}
	if got := ScanRange(vals, 0, 100); len(got) != 100 {
		t.Errorf("full scan returned %d positions, want 100", len(got))
	}
}

func TestCountAndSumRange(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7, 3, 0}
	if n := CountRange(vals, 3, 8); n != 4 {
		t.Errorf("CountRange = %d, want 4", n)
	}
	if s := SumRange(vals, 3, 8); s != 5+3+7+3 {
		t.Errorf("SumRange = %d, want 18", s)
	}
}

func TestParallelKernelsMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 100_000)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	for _, workers := range []int{1, 2, 3, 4, 7} {
		lo, hi := int64(100), int64(700)
		if got, want := ParallelCountRange(vals, lo, hi, workers), CountRange(vals, lo, hi); got != want {
			t.Errorf("workers=%d: ParallelCountRange = %d, want %d", workers, got, want)
		}
		if got, want := ParallelSumRange(vals, lo, hi, workers), SumRange(vals, lo, hi); got != want {
			t.Errorf("workers=%d: ParallelSumRange = %d, want %d", workers, got, want)
		}
		got, want := ParallelScanRange(vals, lo, hi, workers), ScanRange(vals, lo, hi)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: ParallelScanRange len = %d, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: position %d differs: %d vs %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParallelKernelsSmallInput(t *testing.T) {
	vals := []int64{4, 2, 9}
	if n := ParallelCountRange(vals, 0, 5, 8); n != 2 {
		t.Errorf("ParallelCountRange on tiny input = %d, want 2", n)
	}
	if got := ParallelScanRange(vals, 0, 5, 8); len(got) != 2 {
		t.Errorf("ParallelScanRange on tiny input = %v", got)
	}
}

func TestProject(t *testing.T) {
	src := []int64{10, 20, 30, 40}
	out := Project(src, PosList{3, 0, 2})
	want := []int64{40, 10, 30}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Project = %v, want %v", out, want)
		}
	}
	if len(Project(src, nil)) != 0 {
		t.Error("Project with empty selection returned values")
	}
}

func TestQuickScanVsCount(t *testing.T) {
	check := func(vals []int64, lo, hi int64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		return len(ScanRange(vals, lo, hi)) == CountRange(vals, lo, hi)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParallelEqualsSequential(t *testing.T) {
	check := func(vals []int64, lo, hi int64, workers uint8) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		w := int(workers%8) + 1
		return ParallelCountRange(vals, lo, hi, w) == CountRange(vals, lo, hi) &&
			ParallelSumRange(vals, lo, hi, w) == SumRange(vals, lo, hi)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Encode("RAIL")
	b := d.Encode("SHIP")
	if a == b {
		t.Fatal("distinct strings got the same code")
	}
	if again := d.Encode("RAIL"); again != a {
		t.Errorf("re-encode changed code: %d vs %d", again, a)
	}
	if d.Decode(a) != "RAIL" || d.Decode(b) != "SHIP" {
		t.Error("Decode did not round-trip")
	}
	if d.Card() != 2 {
		t.Errorf("Card() = %d, want 2", d.Card())
	}
	if code, ok := d.Lookup("SHIP"); !ok || code != b {
		t.Errorf("Lookup(SHIP) = %d,%v; want %d,true", code, ok, b)
	}
	if _, ok := d.Lookup("AIR"); ok {
		t.Error("Lookup reported ok for absent string")
	}
	if got := d.Decode(99); got != "<bad code 99>" {
		t.Errorf("Decode(99) = %q", got)
	}
}

func TestDictConcurrentEncode(t *testing.T) {
	d := NewDict()
	done := make(chan map[string]int64, 8)
	words := []string{"a", "b", "c", "d", "e"}
	for g := 0; g < 8; g++ {
		go func() {
			local := map[string]int64{}
			for i := 0; i < 200; i++ {
				w := words[i%len(words)]
				local[w] = d.Encode(w)
			}
			done <- local
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		other := <-done
		for w, code := range first {
			if other[w] != code {
				t.Fatalf("goroutines disagree on code for %q: %d vs %d", w, code, other[w])
			}
		}
	}
	if d.Card() != len(words) {
		t.Errorf("Card() = %d, want %d", d.Card(), len(words))
	}
}

func BenchmarkScanRange1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountRange(vals, 1<<28, 1<<29)
	}
	b.SetBytes(int64(len(vals) * 8))
}

func BenchmarkParallelScanRange1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelCountRange(vals, 1<<28, 1<<29, 4)
	}
	b.SetBytes(int64(len(vals) * 8))
}

func TestFilterRows(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7, 2}
	sel := PosList{0, 2, 3, 5, 9} // 9 is out of range and must be dropped
	got := FilterRows(vals, sel, 3, 9)
	want := PosList{0, 3}
	if len(got) != len(want) {
		t.Fatalf("FilterRows = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("FilterRows = %v, want %v", got, want)
		}
	}
}

func TestParallelFilterAndFetchMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, 200_000)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 20)
	}
	sel := make(PosList, 0, len(vals))
	for i := 0; i < len(vals); i += 2 {
		sel = append(sel, Pos(i))
	}
	lo, hi := int64(1<<18), int64(1<<19)
	seqF := FilterRows(vals, sel, lo, hi)
	parF := ParallelFilterRows(vals, sel, lo, hi, 4)
	if len(seqF) != len(parF) {
		t.Fatalf("parallel filter length %d, sequential %d", len(parF), len(seqF))
	}
	for i := range seqF {
		if seqF[i] != parF[i] {
			t.Fatalf("filter mismatch at %d: %d vs %d", i, parF[i], seqF[i])
		}
	}
	seqG := FetchRows(vals, seqF)
	parG := ParallelFetchRows(vals, seqF, 4)
	for i := range seqG {
		if seqG[i] != parG[i] {
			t.Fatalf("fetch mismatch at %d: %d vs %d", i, parG[i], seqG[i])
		}
	}
}

func TestViewOverlay(t *testing.T) {
	w := View{
		Base:    []int64{10, 20, 30, 40},
		Tail:    []int64{50, 60},
		Deleted: map[Pos]struct{}{1: {}, 4: {}}, // one base row, one tail row
		Updated: map[Pos]int64{2: 35},
	}
	cases := []struct {
		p  Pos
		v  int64
		ok bool
	}{
		{0, 10, true},
		{1, 0, false}, // deleted
		{2, 35, true}, // updated
		{3, 40, true},
		{4, 0, false}, // deleted tail row
		{5, 60, true}, // tail
		{6, 0, false}, // beyond tail
	}
	for _, c := range cases {
		v, ok := w.At(c.p)
		if ok != c.ok || (ok && v != c.v) {
			t.Errorf("At(%d) = (%d,%v), want (%d,%v)", c.p, v, ok, c.v, c.ok)
		}
	}

	sel := PosList{0, 1, 2, 3, 4, 5, 6}
	got := w.FilterRows(sel, 30, 61, 2)
	want := PosList{2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("View.FilterRows = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("View.FilterRows = %v, want %v", got, want)
		}
	}

	present := w.PresentRows(sel)
	wantP := PosList{0, 2, 3, 5}
	if len(present) != len(wantP) {
		t.Fatalf("View.PresentRows = %v, want %v", present, wantP)
	}
	vals := w.FetchRows(present, 2)
	wantV := []int64{10, 35, 40, 60}
	for i := range vals {
		if vals[i] != wantV[i] {
			t.Fatalf("View.FetchRows = %v, want %v", vals, wantV)
		}
	}
}

func TestPlainViewFastPaths(t *testing.T) {
	w := View{Base: []int64{1, 2, 3}}
	if !w.Plain() {
		t.Fatal("base-only view is not Plain")
	}
	sel := PosList{0, 1, 2, 3} // 3 beyond base: dropped everywhere
	if got := w.FilterRows(sel, 2, 4, 1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("plain FilterRows = %v", got)
	}
	if got := w.PresentRows(sel); len(got) != 3 {
		t.Fatalf("plain PresentRows = %v", got)
	}
	inRange := PosList{0, 2}
	if got := w.PresentRows(inRange); len(got) != 2 {
		t.Fatalf("plain PresentRows (all in range) = %v", got)
	}
}
