// Package clean is a holisticlint fixture that must produce zero
// diagnostics: an annotated hot path over latched, pooled state written
// the way the real subsystems write it.
package clean

import "sync"

type seg struct {
	mu   sync.RWMutex
	vals []int64
}

var bufPool = sync.Pool{New: func() any { return new([]int64) }}

//holistic:alloc-ok pool warm-up sizes the recycled buffer
func getBuf(n int) *[]int64 {
	p := bufPool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	*p = (*p)[:n]
	return p
}

//holistic:noalloc
func putBuf(p *[]int64) {
	bufPool.Put(p)
}

//holistic:noalloc
func (s *seg) sum(lo, hi int64) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var acc int64
	for _, v := range s.vals {
		if v >= lo && v <= hi {
			acc += v
		}
	}
	return acc
}

//holistic:noalloc
func (s *seg) gather(dst []int64, lo int64) []int64 {
	s.mu.RLock()
	for _, v := range s.vals {
		if v >= lo {
			dst = append(dst, v)
		}
	}
	s.mu.RUnlock()
	return dst
}

//holistic:noalloc
func (s *seg) tally(lo, hi int64) int64 {
	p := getBuf(0)
	*p = s.gather((*p)[:0], lo)
	var acc int64
	for _, v := range *p {
		if v <= hi {
			acc++
		}
	}
	putBuf(p)
	return acc
}
