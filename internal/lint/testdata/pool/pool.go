// Package pool is a holisticlint fixture: scratch-recycling bugs the
// pool check must flag, and the ownership-transfer idioms it must not.
package pool

import "sync"

type scratch struct {
	buf []int64
	seq uint64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// holder owns a borrowed scratch; release covers the field, so stores
// into it are ownership transfers.
type holder struct {
	sc *scratch
}

func (h *holder) release() {
	if h.sc != nil {
		scratchPool.Put(h.sc)
		h.sc = nil
	}
}

// bucket has no releaser covering its field.
type bucket struct {
	sc *scratch
}

// leakOnReturn forgets the Put on the early exit.
func leakOnReturn(stop bool) int {
	sc := scratchPool.Get().(*scratch) // want "not returned to the pool"
	if stop {
		return 0
	}
	n := len(sc.buf)
	scratchPool.Put(sc)
	return n
}

// dropped discards the Get result outright.
func dropped() {
	scratchPool.Get() // want "discarded"
}

// blankGet assigns the borrow to the blank identifier.
func blankGet() {
	_ = scratchPool.Get() // want "assigned to _"
}

// returnAfterPut hands the caller recycled memory.
func returnAfterPut() *scratch {
	sc := scratchPool.Get().(*scratch)
	scratchPool.Put(sc)
	return sc // want "after it was already put back"
}

// returnUnderDefer is the same bug spelled with defer.
func returnUnderDefer() *scratch {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	return sc // want "deferred Put releases it first"
}

// escapeUncovered parks the borrow in a struct nothing releases.
func escapeUncovered(b *bucket) {
	sc := scratchPool.Get().(*scratch)
	b.sc = sc // want "no releaser covers"
}

// leakAtContinue borrows again each iteration without putting back.
func leakAtContinue(ns []int) {
	for _, n := range ns {
		sc := scratchPool.Get().(*scratch)
		if n == 0 {
			continue // want "still held at continue"
		}
		scratchPool.Put(sc)
	}
}

// --- the idioms the scratch machinery uses, all silent ---

// borrow transfers ownership to the caller by returning the handle;
// the summary pass marks it a borrow helper.
func borrow() *scratch {
	sc, _ := scratchPool.Get().(*scratch)
	if sc == nil {
		sc = new(scratch)
	}
	return sc
}

// repackage returns a derived view of the borrow, like the cracking
// scratch helpers do.
func repackage(n int) []int64 {
	sc := scratchPool.Get().(*scratch)
	if cap(sc.buf) < n {
		sc.buf = make([]int64, n)
	}
	sv := sc.buf[:n]
	return sv
}

// putBack is a release helper: it puts a parameter.
func putBack(sc *scratch) {
	scratchPool.Put(sc)
}

// viaHelpers borrows and releases through the helpers on every path.
func viaHelpers(stop bool) int {
	sc := borrow()
	if stop {
		putBack(sc)
		return 0
	}
	n := len(sc.buf)
	putBack(sc)
	return n
}

// viaDefer releases with a deferred helper.
func viaDefer() int {
	sc := borrow()
	defer putBack(sc)
	return len(sc.buf)
}

// viaDeferredClosure releases inside a deferred closure, like
// Acc.Finish does.
func viaDeferredClosure() int {
	sc := borrow()
	defer func() {
		putBack(sc)
	}()
	return len(sc.buf)
}

// storeCovered parks the borrow in a field the releaser covers.
func storeCovered(h *holder) {
	h.sc = borrow()
}

// stamp copies a scalar out of the borrow into an uncovered field: a
// value copy aliases none of the pooled storage, so it is neither an
// escape nor a transfer (the telemetry bracket stamps trace sequence
// numbers this way).
func stamp(out *struct{ seq uint64 }) {
	sc := scratchPool.Get().(*scratch)
	out.seq = sc.seq
	scratchPool.Put(sc)
}

// selfStore rearranges the pooled object's own storage.
func selfStore(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if cap(sc.buf) < n {
		sc.buf = make([]int64, n)
	}
	sc.buf = sc.buf[:n]
	return sc
}
