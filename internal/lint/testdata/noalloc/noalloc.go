// Package noalloc is a holisticlint fixture: every construct the
// noalloc check must flag, plus the idioms it must NOT flag. Lines
// carrying a want marker must produce a diagnostic whose message
// contains the quoted substring; all other lines must stay silent.
package noalloc

import (
	"fmt"
	"sync/atomic"
)

//holistic:noalloc
func makes() []int {
	s := make([]int, 4) // want "make allocates"
	p := new(int)       // want "new allocates"
	_ = p
	return s
}

//holistic:noalloc
func literals() {
	m := map[string]int{} // want "map literal allocates"
	s := []int{1, 2, 3}   // want "slice literal allocates"
	a := [3]int{1, 2, 3}  // arrays are values: fine
	v := point{1, 2}      // struct values: fine
	q := &point{3, 4}     // want "address of a composite literal"
	_, _, _, _, _ = m, s, a, v, q
}

type point struct{ x, y int }

//holistic:noalloc
func appends(dst, other []int) []int {
	dst = append(dst, 1)     // self-append: fine
	dst = append(dst[:0], 2) // reslice self-append: fine
	dst = append(other, 3)   // want "append into a different destination"
	return dst
}

//holistic:noalloc
func spawns() {
	go func() {}() // want "starts a goroutine"
}

//holistic:noalloc
func boxes(n int, p *point) (any, error) {
	var x any = n // want "boxing int into any"
	sink(p)       // pointers are direct: fine
	sink(n)       // want "boxing int into any"
	return x, nil
}

func sink(v any) { _ = v }

//holistic:noalloc
func formats(n int) string {
	return fmt.Sprintf("%d", n) // want "calls fmt.Sprintf"
}

//holistic:noalloc
func strings(a, b string, bs []byte) {
	c := a + b      // want "string concatenation allocates"
	d := []byte(a)  // want "string-to-slice conversion allocates"
	e := string(bs) // want "slice-to-string conversion allocates"
	_, _, _ = c, d, e
}

//holistic:noalloc
func dies(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // terminal path: fine
	}
}

// helper allocates but is not annotated; noalloc callers are charged at
// the call site.
func helper() []int {
	return make([]int, 8)
}

//holistic:noalloc
func transitive() []int {
	return helper() // want "calls helper, which allocates"
}

//holistic:alloc-ok warms the cache on first use
func boundary() []int {
	return make([]int, 8) // reviewed boundary: fine
}

//holistic:noalloc
func viaBoundary() []int {
	return boundary() // fine
}

//holistic:noalloc
func viaErrf(n int) error {
	return errf("bad count %d", n) // boundary covers its variadic boxing
}

//holistic:alloc-ok error paths format their diagnostics
func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// recorder mirrors the telemetry hot path: record functions bump
// pre-sized atomic state. Atomic operations are fine; growing storage
// lazily inside the record call is the classic regression.
type recorder struct {
	n       atomic.Int64
	buckets []atomic.Int64
}

//holistic:noalloc
func (r *recorder) record(ns int64) {
	r.n.Add(1) // atomic bump on pre-sized state: fine
	if r.buckets == nil {
		r.buckets = make([]atomic.Int64, 64) // want "make allocates"
	}
	r.buckets[0].Add(ns)
}

//holistic:noalloc
func (r *recorder) observe(op int, ns int64) {
	labels := map[int]int64{op: ns} // want "map literal allocates"
	_ = labels
	r.n.Add(ns)
}
