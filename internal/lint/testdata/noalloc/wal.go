package noalloc

// The durable write path mirrored as a fixture: WAL framing allocates
// (frame buffers, file writes), so it must never be reachable from a
// //holistic:noalloc function except through a reviewed
// //holistic:alloc-ok boundary. This pins the contract that query hot
// paths stay decoupled from logging — a query must not pay a WAL append.

type walRecord struct {
	kind byte
	attr string
	a, b int64
}

// walAppend frames a record; the encode buffer allocates.
func walAppend(rec walRecord) []byte {
	frame := make([]byte, 0, 19+len(rec.attr))
	frame = append(frame, rec.kind)
	return frame
}

// hotProbe models a query-path function that regressed into logging.
//
//holistic:noalloc
func hotProbe(rec walRecord) int {
	return len(walAppend(rec)) // want "calls walAppend, which allocates"
}

// loggedWrite is the reviewed boundary: the write path is cold and may
// allocate, exactly like the real durability layer's logged mutations.
//
//holistic:alloc-ok durable write path is cold; WAL framing may allocate
func loggedWrite(rec walRecord) int {
	return len(walAppend(rec))
}

// commitPath sits above the boundary: calling the annotated entry point
// from a noalloc function is fine — the allocation is owned and
// reviewed on the other side.
//
//holistic:noalloc
func commitPath(rec walRecord) int {
	return loggedWrite(rec)
}
