package noalloc

// Malformed annotations are diagnostics in their own right; they
// report at the function declaration.

//holistic:alloc-ok
func reasonless() {} // want "requires a reason"

//holistic:frobnicate
func unknownAnno() {} // want "unknown annotation"

//holistic:noalloc
//holistic:alloc-ok covers everything, honest
func both() {} // want "cannot be both"
