// Package latch is a holisticlint fixture: latch-discipline bugs the
// latch check must flag, and the legitimate protocols it must not.
package latch

import "sync"

type piece struct {
	latch sync.RWMutex
	n     int
}

type col struct {
	mu     sync.Mutex
	global sync.RWMutex
	head   *piece
}

// leakOnReturn forgets the latch on the early exit.
func (c *col) leakOnReturn(stop bool) int {
	c.mu.Lock() // want "not released on every path"
	if stop {
		return 0
	}
	c.mu.Unlock()
	return 1
}

// leakAtEnd never releases at all.
func (c *col) leakAtEnd() {
	c.mu.Lock() // want "not released on every path"
	c.head = nil
}

// reacquire self-deadlocks: the latch is still definitely held.
func (c *col) reacquire() {
	c.mu.Lock()
	c.mu.Lock() // want "self-deadlocks"
	c.mu.Unlock()
	c.mu.Unlock()
}

// kindMismatch releases a write latch with the read release.
func (p *piece) kindMismatch() {
	p.latch.Lock()
	p.latch.RUnlock() // want "released with RUnlock"
}

// leakAtContinue loops back holding the latch it would retake.
func (c *col) leakAtContinue(ps []*piece) {
	for _, p := range ps {
		p.latch.Lock()
		if p.n == 0 {
			continue // want "still held at continue"
		}
		p.n++
		p.latch.Unlock()
	}
}

// deferMismatch pairs a write acquire with a deferred read release.
func (p *piece) deferMismatch() {
	p.latch.Lock() // want "deferred release is RUnlock"
	defer p.latch.RUnlock()
	p.n++
}

// --- the protocols the cracked-column code uses, all silent ---

// deferred is the plain defer pairing.
func (c *col) deferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.head = nil
}

// deferredClosure releases inside a deferred closure.
func (c *col) deferredClosure() {
	c.mu.Lock()
	defer func() {
		c.head = nil
		c.mu.Unlock()
	}()
}

// pathComplete pairs explicitly on every path.
func (c *col) pathComplete(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return 0
	}
	c.head = nil
	c.mu.Unlock()
	return 1
}

// tryIdiom is the TryLock early-return protocol of TryRefineAt.
func (p *piece) tryIdiom() bool {
	if !p.latch.TryLock() {
		return false
	}
	p.n++
	p.latch.Unlock()
	return true
}

// tryBound binds the TryLock result before branching on it.
func (p *piece) tryBound() bool {
	ok := p.latch.TryLock()
	if !ok {
		return false
	}
	p.n++
	p.latch.Unlock()
	return true
}

// revalidate is the optimistic-revalidation loop of crackAt: acquire,
// recheck under c.mu, release-and-retry on conflict.
func (c *col) revalidate(p *piece) {
	for {
		c.mu.Lock()
		cur := c.head
		c.mu.Unlock()
		if cur != p {
			p.latch.Lock()
			if c.head != p {
				p.latch.Unlock()
				continue
			}
			p.n++
			p.latch.Unlock()
		}
		return
	}
}

// aliased releases through a second name, like the stochastic
// pre-locking in crackAt (preLocked = np).
func (c *col) aliased(a, b *piece, takeB bool) {
	var pre *piece
	if takeB {
		b.latch.Lock()
		pre = b
	}
	a.n++
	if pre != nil {
		pre.latch.Unlock()
	}
}
