package lint

import (
	"go/ast"
	"go/token"
)

// The latch and pool checks share one structured abstract
// interpretation over function bodies: resources (held latches,
// borrowed pool objects) are acquired and released along paths, and the
// walker maintains a per-path state, merging at control-flow joins.
//
// The analysis is deliberately intra-procedural and conservative in one
// direction only: a resource is flagged when it is *definitely* leaked
// — acquired on every path into an exit that releases it on none —
// while conditionally-held states ("maybe") pass silently. That keeps
// the checks free of false positives on the revalidation loops the
// cracking latch protocol uses, at the cost of missing some
// conditional leaks; the runtime gates and -race step back those up.

// holdInfo tracks one held resource along a path.
type holdInfo struct {
	kind     string    // acquisition flavor, e.g. "Lock" / "RLock" / pool name
	pos      token.Pos // acquisition site
	definite bool      // held on every path that reaches here
	depth    int       // loop depth at acquisition (continue/break checks)
}

// flowState is the per-path analysis state: resources currently held,
// keyed by every name they are known under (aliases share the same
// *holdInfo), plus the set of defer-released resource keys.
type flowState struct {
	held   map[string]*holdInfo
	defers map[string]string // resource key → release kind
	depth  int               // current loop nesting depth
}

func newFlowState() *flowState {
	return &flowState{held: make(map[string]*holdInfo), defers: make(map[string]string)}
}

func (st *flowState) clone() *flowState {
	c := &flowState{
		held:   make(map[string]*holdInfo, len(st.held)),
		defers: make(map[string]string, len(st.defers)),
		depth:  st.depth,
	}
	// Aliased keys must keep sharing one holdInfo in the clone.
	copied := make(map[*holdInfo]*holdInfo, len(st.held))
	for k, info := range st.held {
		ci, ok := copied[info]
		if !ok {
			dup := *info
			ci = &dup
			copied[info] = ci
		}
		c.held[k] = ci
	}
	for k, v := range st.defers {
		c.defers[k] = v
	}
	return c
}

// acquire records a resource as held under key.
func (st *flowState) acquire(key, kind string, pos token.Pos) {
	st.held[key] = &holdInfo{kind: kind, pos: pos, definite: true, depth: st.depth}
}

// release drops a resource and every alias of it. It reports whether
// the resource was held at all on this path.
func (st *flowState) release(key string) (*holdInfo, bool) {
	info, ok := st.held[key]
	if !ok {
		return nil, false
	}
	for k, i := range st.held {
		if i == info {
			delete(st.held, k)
		}
	}
	return info, true
}

// alias registers newKey as another name for the resource currently
// held under oldKey.
func (st *flowState) alias(oldKey, newKey string) {
	if info, ok := st.held[oldKey]; ok {
		st.held[newKey] = info
	}
}

// deferRelease records that a defer releases key with the given kind on
// every exit from here on.
func (st *flowState) deferRelease(key, kind string) { st.defers[key] = kind }

// deferred reports the defer-release kind registered for key, if any.
func (st *flowState) deferred(key string) (string, bool) {
	k, ok := st.defers[key]
	return k, ok
}

// mergeFrom folds another branch's exit state into st: resources held
// in both stay definite, resources held in one become maybe-held, and
// defers union.
func (st *flowState) mergeFrom(other *flowState) {
	for k, info := range st.held {
		if _, ok := other.held[k]; !ok {
			info.definite = false
		}
	}
	for k, info := range other.held {
		if _, ok := st.held[k]; !ok {
			dup := *info
			dup.definite = false
			st.held[k] = &dup
		}
	}
	for k, v := range other.defers {
		st.defers[k] = v
	}
}

// replaceWith makes st take other's contents (used when one branch of a
// join terminated, so the join state is just the live branch's).
func (st *flowState) replaceWith(other *flowState) {
	st.held = other.held
	st.defers = other.defers
}

// flowHooks are the tracker callbacks the walker drives.
type flowHooks struct {
	// simple handles one non-control-flow statement (assignments,
	// expression statements, defers, declarations, go statements).
	simple func(st *flowState, stmt ast.Stmt)
	// ret handles a return statement; the walker terminates the path
	// afterwards.
	ret func(st *flowState, stmt *ast.ReturnStmt)
	// cond may transfer state into the branches of an if statement
	// based on its condition (the TryLock idiom). Either state may be
	// mutated; cond runs after the condition's sub-expressions were
	// shown to simple via the enclosing statement.
	cond func(c ast.Expr, thenSt, elseSt *flowState)
	// atEnd handles falling off the end of the function.
	atEnd func(st *flowState, pos token.Pos)
	// atBranch handles break/continue statements.
	atBranch func(st *flowState, stmt *ast.BranchStmt)
}

// loopCtx collects the states of break statements targeting the
// innermost loop, to merge at the loop exit.
type loopCtx struct {
	breaks []*flowState
}

type flowWalker struct {
	hooks *flowHooks
	loops []*loopCtx
}

// walkBody runs the analysis over a function body.
func walkBody(body *ast.BlockStmt, hooks *flowHooks) {
	w := &flowWalker{hooks: hooks}
	st := newFlowState()
	if !w.stmts(body.List, st) {
		hooks.atEnd(st, body.Rbrace)
	}
}

// stmts processes a statement list; it reports whether every path
// through the list terminates (return, panic, or branching out).
func (w *flowWalker) stmts(list []ast.Stmt, st *flowState) (terminated bool) {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt processes one statement; it reports whether the path terminates.
func (w *flowWalker) stmt(s ast.Stmt, st *flowState) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		w.hooks.ret(st, s)
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			w.hooks.atBranch(st, s)
			if len(w.loops) > 0 {
				lc := w.loops[len(w.loops)-1]
				lc.breaks = append(lc.breaks, st.clone())
			}
			return true
		case token.CONTINUE:
			w.hooks.atBranch(st, s)
			return true
		case token.GOTO:
			// Rare; treated as falling through (documented limitation).
			return false
		default: // fallthrough
			return false
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.hooks.simple(st, s.Init)
		}
		thenSt := st.clone()
		elseSt := st
		w.hooks.cond(s.Cond, thenSt, elseSt)
		thenTerm := w.stmts(s.Body.List, thenSt)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			// st is elseSt already.
			return false
		case elseTerm:
			st.replaceWith(thenSt)
			return false
		default:
			st.mergeFrom(thenSt)
			return false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.hooks.simple(st, s.Init)
		}
		lc := &loopCtx{}
		w.loops = append(w.loops, lc)
		bodySt := st.clone()
		bodySt.depth++
		w.stmts(s.Body.List, bodySt)
		if s.Post != nil {
			w.hooks.simple(bodySt, s.Post)
		}
		w.loops = w.loops[:len(w.loops)-1]
		bodySt.depth--
		infinite := s.Cond == nil
		if infinite && len(lc.breaks) == 0 {
			// for {} with no break: the only exits are returns inside.
			return true
		}
		if !infinite {
			// Zero-iteration path: entry state already in st.
			st.mergeFrom(bodySt)
		} else {
			st.replaceWith(bodySt)
		}
		for _, bs := range lc.breaks {
			bs.depth--
			st.mergeFrom(bs)
		}
		return false
	case *ast.RangeStmt:
		lc := &loopCtx{}
		w.loops = append(w.loops, lc)
		bodySt := st.clone()
		bodySt.depth++
		w.stmts(s.Body.List, bodySt)
		w.loops = w.loops[:len(w.loops)-1]
		bodySt.depth--
		st.mergeFrom(bodySt)
		for _, bs := range lc.breaks {
			bs.depth--
			st.mergeFrom(bs)
		}
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.cases(s, st)
	case *ast.ExprStmt:
		w.hooks.simple(st, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false
	default:
		w.hooks.simple(st, s)
		return false
	}
}

// cases handles switch/type-switch/select uniformly: every clause is
// analyzed from a clone of the entry state, and the exit is the merge
// of all non-terminated clause exits (plus the entry when no default
// clause guarantees a clause runs).
func (w *flowWalker) cases(s ast.Stmt, st *flowState) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.hooks.simple(st, s.Init)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.hooks.simple(st, s.Init)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	// break inside switch/select targets the switch, not a loop; push a
	// loop context so such breaks do not leak into an enclosing loop's
	// merge, then fold them into the switch exit.
	lc := &loopCtx{}
	w.loops = append(w.loops, lc)
	var live []*flowState
	allTerm := true
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.hooks.simple(st, c.Comm)
			}
		}
		cs := st.clone()
		if !w.stmts(stmts, cs) {
			live = append(live, cs)
			allTerm = false
		}
	}
	w.loops = w.loops[:len(w.loops)-1]
	live = append(live, lc.breaks...)
	if len(lc.breaks) > 0 {
		allTerm = false
	}
	if hasDefault && allTerm && len(live) == 0 {
		return true
	}
	if hasDefault && len(live) > 0 {
		st.replaceWith(live[0])
		for _, ls := range live[1:] {
			st.mergeFrom(ls)
		}
		return false
	}
	for _, ls := range live {
		st.mergeFrom(ls)
	}
	return false
}
