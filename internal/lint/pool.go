package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The pool check enforces the scratch-recycling discipline: every value
// obtained from a sync.Pool (directly via Get, or through a module
// borrow helper such as getScratch / GetBitmap) must reach a matching
// Put on every exit of the borrowing function, or be handed off through
// one of the recognized ownership transfers:
//
//   - returning the held value makes the function itself a borrow
//     helper — its callers inherit the obligation;
//   - storing the held value into a struct field that some module
//     releaser covers (e.g. Acc.st, runState.workers) transfers
//     ownership to that struct's release path.
//
// Returning a pooled value after it was already Put back — or under a
// deferred Put — is flagged as an escape: the caller would alias
// recycled memory. Helpers are discovered module-wide by a fixpoint
// over function summaries, so multi-hop repackagings (runInto calling
// getScratch) resolve without annotations.

// poolSummaries is the module-wide helper table.
type poolSummaries struct {
	// borrows: function → result index → pool description. The result
	// at that index is a pooled object the caller must release.
	borrows map[*types.Func]map[int]string
	// releases: function → parameter index → pool description. The
	// argument at that index is returned to its pool.
	releases map[*types.Func]map[int]string
	// releasedFields: struct fields that some releaser covers; stores
	// into them are ownership transfers, not escapes.
	releasedFields map[*types.Var]bool
}

// runPool runs the pool check over the requested packages.
func runPool(ix *modIndex) []Diagnostic {
	sums := buildPoolSummaries(ix)
	var diags []Diagnostic
	for _, pkg := range ix.mod.Requested {
		pc := &poolChecker{pkg: pkg, ix: ix, sums: sums, diags: &diags}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				pc.checkOne(fd)
			}
		}
	}
	return diags
}

// --- summary construction -------------------------------------------------

// buildPoolSummaries iterates summary extraction to a fixpoint so that
// helpers defined in terms of other helpers (putRunState releasing
// st.workers recursively, runInto returning getScratch results)
// resolve regardless of declaration order.
func buildPoolSummaries(ix *modIndex) *poolSummaries {
	sums := &poolSummaries{
		borrows:        make(map[*types.Func]map[int]string),
		releases:       make(map[*types.Func]map[int]string),
		releasedFields: make(map[*types.Var]bool),
	}
	for range 10 {
		if !summarizePass(ix, sums) {
			break
		}
	}
	return sums
}

// summarizePass extracts summaries from every module function once; it
// reports whether anything new was learned.
func summarizePass(ix *modIndex, sums *poolSummaries) (changed bool) {
	for fn, fi := range ix.funcs {
		if fi.decl.Body == nil {
			continue
		}
		if summarizeFunc(fn, fi, sums) {
			changed = true
		}
	}
	return changed
}

func summarizeFunc(fn *types.Func, fi *funcInfo, sums *poolSummaries) (changed bool) {
	info := fi.pkg.Info
	sig := fn.Type().(*types.Signature)
	paramIdx := make(map[types.Object]int)
	for i := range sig.Params().Len() {
		paramIdx[sig.Params().At(i)] = i
	}
	// tainted maps local objects known to hold a pooled value to the
	// pool description; flow-insensitive, visited in source order.
	tainted := make(map[types.Object]string)

	learnBorrow := func(idx int, pool string) {
		m := sums.borrows[fn]
		if m == nil {
			m = make(map[int]string)
			sums.borrows[fn] = m
		}
		if _, ok := m[idx]; !ok {
			m[idx] = pool
			changed = true
		}
	}
	learnRelease := func(idx int, pool string) {
		m := sums.releases[fn]
		if m == nil {
			m = make(map[int]string)
			sums.releases[fn] = m
		}
		if _, ok := m[idx]; !ok {
			m[idx] = pool
			changed = true
		}
	}
	learnField := func(v *types.Var) {
		if v != nil && !sums.releasedFields[v] {
			sums.releasedFields[v] = true
			changed = true
		}
	}
	releaseArg := func(arg ast.Expr, pool string) {
		if obj := coreObject(info, arg); obj != nil {
			if i, ok := paramIdx[obj]; ok {
				learnRelease(i, pool)
			}
		}
		learnField(fieldVarOf(info, arg))
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Borrow propagation: x := pool.Get().(T), x := helper().
			if len(n.Rhs) == 1 {
				for idx, pool := range borrowSource(info, sums, n.Rhs[0]) {
					if idx < len(n.Lhs) {
						if obj := lhsObject(info, n.Lhs[idx]); obj != nil {
							if _, ok := tainted[obj]; !ok {
								tainted[obj] = pool
							}
						}
					}
				}
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if obj := coreObject(info, n.Rhs[i]); obj != nil {
						if pool, ok := tainted[obj]; ok {
							if lo := lhsObject(info, n.Lhs[i]); lo != nil {
								if _, dup := tainted[lo]; !dup {
									tainted[lo] = pool
								}
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if recv, name, ok := recvOfPoolMethod(info, n); ok && name == "Put" && len(n.Args) == 1 {
				releaseArg(n.Args[0], exprString(fi.pkg.Fset, recv))
			} else if callee, dynamic, ok := calleeFunc(info, n); ok && !dynamic {
				for pi, pool := range sums.releases[callee] {
					if pi < len(n.Args) {
						releaseArg(n.Args[pi], pool)
					}
				}
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 1 {
				for idx, pool := range borrowSource(info, sums, n.Results[0]) {
					learnBorrow(idx, pool)
				}
			}
			for i, res := range n.Results {
				if obj := coreObject(info, res); obj != nil {
					if pool, ok := tainted[obj]; ok {
						learnBorrow(i, pool)
					}
				}
			}
		}
		return true
	})
	return changed
}

// borrowSource reports, for an expression, which of its value positions
// carry freshly borrowed pooled objects: pool.Get() calls (optionally
// through a type assertion) and calls to known borrow helpers.
func borrowSource(info *types.Info, sums *poolSummaries, e ast.Expr) map[int]string {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if recv, name, ok := recvOfPoolMethod(info, call); ok && name == "Get" {
		return map[int]string{0: exprString(token.NewFileSet(), recv)}
	}
	if callee, dynamic, ok := calleeFunc(info, call); ok && !dynamic {
		return sums.borrows[callee]
	}
	return nil
}

// coreObject strips value-preserving wrappers (parens, deref, address,
// slicing, indexing, type assertions, field selection) down to the base
// identifier's object: (*p)[:n], &sv, st.workers[i] all resolve to
// their base variable.
func coreObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			return info.Uses[x]
		default:
			return nil
		}
	}
}

// lhsObject resolves an assignment target identifier to its object.
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// fieldVarOf reports the struct field an expression reads through, if
// any: a.st and st.workers[i] both name a field.
func fieldVarOf(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				return v
			}
			e = x.X
		default:
			return nil
		}
	}
}

// recvOfPoolMethod reports whether call is sync.Pool.Get or
// sync.Pool.Put, returning the receiver expression and method name.
func recvOfPoolMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Name() != "Pool" {
		return nil, "", false
	}
	if sel.Sel.Name == "Get" || sel.Sel.Name == "Put" {
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

// --- per-function path check ----------------------------------------------

type poolChecker struct {
	pkg   *Package
	ix    *modIndex
	sums  *poolSummaries
	diags *[]Diagnostic

	// bindings maps local variables to the resource key of the pooled
	// object they hold; flow-insensitive per scope, like tainted above.
	bindings map[types.Object]string
	reported map[string]bool
}

func (pc *poolChecker) report(pos token.Pos, dedup, format string, args ...any) {
	if pc.reported[dedup] {
		return
	}
	pc.reported[dedup] = true
	*pc.diags = append(*pc.diags, Diagnostic{
		Pos:     pc.pkg.Fset.Position(pos),
		Check:   "pool",
		Message: fmt.Sprintf(format, args...),
	})
}

func (pc *poolChecker) checkOne(fd *ast.FuncDecl) {
	pc.bindings = make(map[types.Object]string)
	pc.reported = make(map[string]bool)
	hooks := &flowHooks{
		simple: pc.simple,
		ret:    pc.ret,
		cond:   func(ast.Expr, *flowState, *flowState) {},
		atEnd: func(st *flowState, pos token.Pos) {
			pc.checkExit(st, pos, "function end")
		},
		atBranch: pc.atBranch,
	}
	walkBody(fd.Body, hooks)
}

// resourceKey identifies an acquisition site.
func resourceKey(pos token.Pos) string { return fmt.Sprintf("res@%d", pos) }

// simple extracts pool events from one plain statement.
func (pc *poolChecker) simple(st *flowState, stmt ast.Stmt) {
	info := pc.pkg.Info
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if b := borrowSource(info, pc.sums, s.Rhs[0]); b != nil {
				for idx, pool := range b {
					if idx >= len(s.Lhs) {
						continue
					}
					pc.acquireInto(st, s.Lhs[idx], pool, s.Rhs[0].Pos())
				}
				return
			}
			// st.workers = append(st.workers, getRunState())
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "append") {
				for _, arg := range call.Args[1:] {
					if b := borrowSource(info, pc.sums, arg); b != nil {
						fv := fieldVarOf(info, s.Lhs[0])
						if fv == nil || !pc.sums.releasedFields[fv] {
							pc.report(arg.Pos(), fmt.Sprintf("appesc:%d", arg.Pos()),
								"pooled object is appended into %s, which no releaser covers",
								exprString(pc.pkg.Fset, s.Lhs[0]))
						}
					}
				}
			}
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				pc.assignPair(st, s.Lhs[i], s.Rhs[i])
			}
		}
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return
		}
		if b := borrowSource(info, pc.sums, call); b != nil {
			pc.report(call.Pos(), fmt.Sprintf("drop:%d", call.Pos()),
				"pooled object returned by this call is discarded; it can never be put back")
			return
		}
		pc.releaseCall(st, call, false)
	case *ast.DeferStmt:
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pc.releaseCall(st, call, true)
				}
				return true
			})
			return
		}
		pc.releaseCall(st, s.Call, true)
	}
}

// acquireInto registers a fresh borrow being stored into target.
func (pc *poolChecker) acquireInto(st *flowState, target ast.Expr, pool string, pos token.Pos) {
	info := pc.pkg.Info
	if obj := lhsObject(info, target); obj != nil {
		key := resourceKey(pos)
		st.acquire(key, pool, pos)
		pc.bindings[obj] = key
		return
	}
	if id, ok := ast.Unparen(target).(*ast.Ident); ok && id.Name == "_" {
		pc.report(pos, fmt.Sprintf("blank:%d", pos),
			"pooled object from %s is assigned to _ and can never be put back", pool)
		return
	}
	// Stored somewhere non-local: fine when a releaser covers the
	// field, an escape otherwise.
	if fv := fieldVarOf(info, target); fv != nil {
		if !pc.sums.releasedFields[fv] {
			pc.report(pos, fmt.Sprintf("fieldesc:%d", pos),
				"pooled object from %s is stored into field %s, which no releaser covers",
				pool, fv.Name())
		}
		return
	}
}

// assignPair handles aliasing and escape-by-store for one lhs = rhs pair.
func (pc *poolChecker) assignPair(st *flowState, lhs, rhs ast.Expr) {
	info := pc.pkg.Info
	robj := coreObject(info, rhs)
	if robj == nil {
		return
	}
	key, bound := pc.bindings[robj]
	if !bound {
		return
	}
	// Copying a non-reference value out of the pooled object
	// (tr.Seq = sc.seq) aliases none of its storage: neither an alias
	// nor an ownership transfer, wherever it lands.
	if !refShaped(info.TypeOf(rhs)) {
		return
	}
	// Aliasing into a local: only reference-shaped values can alias the
	// pooled storage (sv = (*p)[:n]); copying a scalar field does not.
	if lo := lhsObject(info, lhs); lo != nil {
		if refShaped(info.TypeOf(lhs)) {
			if _, dup := pc.bindings[lo]; !dup {
				pc.bindings[lo] = key
			}
		}
		return
	}
	// Storing part of the pooled object back into itself
	// (p.lists = p.lists[:n]) rearranges, it does not escape.
	if lbase := coreObject(info, lhs); lbase != nil && pc.bindings[lbase] == key {
		return
	}
	// Store into a struct field: ownership transfer when covered.
	if fv := fieldVarOf(info, lhs); fv != nil {
		if info, held := st.release(key); held {
			if !pc.sums.releasedFields[fv] {
				pc.report(lhs.Pos(), fmt.Sprintf("store:%d", lhs.Pos()),
					"pooled object from %s escapes into field %s, which no releaser covers",
					info.kind, fv.Name())
			}
		}
	}
}

// refShaped reports whether values of t alias underlying storage.
func refShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// releaseCall applies Put / release-helper semantics of call to st.
func (pc *poolChecker) releaseCall(st *flowState, call *ast.CallExpr, isDefer bool) {
	info := pc.pkg.Info
	releaseArg := func(arg ast.Expr) {
		obj := coreObject(info, arg)
		if obj == nil {
			return
		}
		key, bound := pc.bindings[obj]
		if !bound {
			return
		}
		if isDefer {
			st.deferRelease(key, "Put")
			return
		}
		st.release(key)
	}
	if _, name, ok := recvOfPoolMethod(info, call); ok && name == "Put" && len(call.Args) == 1 {
		releaseArg(call.Args[0])
		return
	}
	if callee, dynamic, ok := calleeFunc(info, call); ok && !dynamic {
		for pi := range pc.sums.releases[callee] {
			if pi < len(call.Args) {
				releaseArg(call.Args[pi])
			}
		}
	}
}

// ret checks returned expressions: returning a held pooled object is an
// ownership transfer to the caller; returning one that was already
// released (or is about to be, by defer) aliases recycled memory.
func (pc *poolChecker) ret(st *flowState, s *ast.ReturnStmt) {
	info := pc.pkg.Info
	for _, res := range s.Results {
		obj := coreObject(info, res)
		if obj == nil {
			continue
		}
		key, bound := pc.bindings[obj]
		if !bound {
			continue
		}
		if _, held := st.held[key]; held {
			if _, def := st.deferred(key); def {
				pc.report(res.Pos(), fmt.Sprintf("retdefer:%d", res.Pos()),
					"pooled object is returned, but a deferred Put releases it first; the caller would alias recycled memory")
			}
			st.release(key) // ownership transfers to the caller
			continue
		}
		pc.report(res.Pos(), fmt.Sprintf("retafter:%d", res.Pos()),
			"pooled object is returned after it was already put back; the caller would alias recycled memory")
	}
	pc.checkExit(st, s.Pos(), "return")
}

// checkExit reports pooled objects definitely held at an exit with no
// deferred release.
func (pc *poolChecker) checkExit(st *flowState, pos token.Pos, what string) {
	for key, info := range st.held {
		if !info.definite {
			continue
		}
		if _, ok := st.deferred(key); ok {
			continue
		}
		pc.report(info.pos, fmt.Sprintf("leak:%s:%s", key, what),
			"pooled object from %s (Get at %s) is not returned to the pool on every path: leaks at %s",
			info.kind, pc.pkg.Fset.Position(info.pos), what)
	}
}

// atBranch flags continue statements that loop back while holding a
// pooled object acquired in this iteration.
func (pc *poolChecker) atBranch(st *flowState, stmt *ast.BranchStmt) {
	if stmt.Tok != token.CONTINUE {
		return
	}
	for key, info := range st.held {
		if !info.definite || info.depth < st.depth {
			continue
		}
		if _, ok := st.deferred(key); ok {
			continue
		}
		pc.report(stmt.Pos(), fmt.Sprintf("cont:%s:%d", key, stmt.Pos()),
			"pooled object from %s (Get at %s) is still held at continue; the next iteration borrows again without putting it back",
			info.kind, pc.pkg.Fset.Position(info.pos))
	}
}

// isBuiltin reports whether fun names the given builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}
