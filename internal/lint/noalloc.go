package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The noalloc check is the static complement of the AllocsPerRun gates:
// a function annotated //holistic:noalloc must not contain allocating
// constructs, and neither may anything it calls inside the module,
// unless the callee is an annotated //holistic:alloc-ok boundary.
//
// Flagged constructs: make, new, &T{...}, map and slice composite
// literals, append that is not the self-append idiom
// `x = append(x, ...)` (self-append is capacity-managed by the warm
// scratch discipline), go statements, fmt calls, non-constant string
// concatenation, string<->[]byte/[]rune conversions, and boxing
// conversions of non-pointer-shaped concrete values into interfaces
// (at conversions, call arguments, assignments and returns).
//
// Deliberate exemptions, chosen so the real hot paths verify without
// suppressions: panic(...) argument subtrees are skipped (a terminal
// path may format its death message); function literals are not flagged
// as allocations (the hot-path closures do not escape, so they are
// stack-allocated — their bodies are still checked); map index writes
// are allowed (bucket memory is retained across queries via clear);
// standard-library calls other than fmt are trusted; calls through
// interfaces and function values are trusted (documented limitation).

// naViol is one allocating construct found inside a function.
type naViol struct {
	pos token.Pos
	msg string
}

// runNoAlloc verifies every annotated function in the requested
// packages.
func runNoAlloc(ix *modIndex) []Diagnostic {
	v := &naVerifier{ix: ix, memo: make(map[*types.Func][]naViol)}
	var diags []Diagnostic
	for fn, fi := range ix.funcs {
		if !fi.noalloc || !ix.mod.isRequested(fi.pkg) {
			continue
		}
		for _, viol := range v.check(fn) {
			diags = append(diags, Diagnostic{
				Pos:     ix.mod.Fset.Position(viol.pos),
				Check:   "noalloc",
				Message: fmt.Sprintf("in //holistic:noalloc function %s: %s", fn.Name(), viol.msg),
			})
		}
	}
	return diags
}

// naVerifier memoizes per-function verification across the module.
type naVerifier struct {
	ix   *modIndex
	memo map[*types.Func][]naViol
	// inProgress guards recursion: a cycle is treated as clean at the
	// back-edge; the violations of every function on it still surface
	// through its own entry.
	inProgress map[*types.Func]bool
}

// check returns the allocating constructs in fn's body, including
// call-site violations for calls into allocating unannotated module
// functions.
func (v *naVerifier) check(fn *types.Func) []naViol {
	if viols, ok := v.memo[fn]; ok {
		return viols
	}
	fi := v.ix.funcs[fn]
	if fi == nil || fi.decl.Body == nil || fi.allocOK {
		v.memo[fn] = nil
		return nil
	}
	if v.inProgress == nil {
		v.inProgress = make(map[*types.Func]bool)
	}
	if v.inProgress[fn] {
		return nil
	}
	v.inProgress[fn] = true
	defer delete(v.inProgress, fn)

	w := &naWalker{
		v:             v,
		pkg:           fi.pkg,
		sig:           fn.Type().(*types.Signature),
		allowedAppend: make(map[*ast.CallExpr]bool),
	}
	w.walk(fi.decl.Body)
	v.memo[fn] = w.viols
	return w.viols
}

// naWalker scans one function body (or function literal body, with the
// literal's signature for return checks).
type naWalker struct {
	v             *naVerifier
	pkg           *Package
	sig           *types.Signature
	viols         []naViol
	allowedAppend map[*ast.CallExpr]bool
}

func (w *naWalker) flag(pos token.Pos, format string, args ...any) {
	w.viols = append(w.viols, naViol{pos: pos, msg: fmt.Sprintf(format, args...)})
}

func (w *naWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, w.visit)
}

func (w *naWalker) visit(n ast.Node) bool {
	info := w.pkg.Info
	switch n := n.(type) {
	case *ast.FuncLit:
		// The literal itself is exempt; its body runs on the hot path
		// and is checked against the literal's own signature.
		sub := &naWalker{v: w.v, pkg: w.pkg, sig: info.TypeOf(n).(*types.Signature), allowedAppend: w.allowedAppend}
		sub.walk(n.Body)
		w.viols = append(w.viols, sub.viols...)
		return false
	case *ast.GoStmt:
		w.flag(n.Pos(), "starts a goroutine")
		return true
	case *ast.CompositeLit:
		switch info.TypeOf(n).Underlying().(type) {
		case *types.Map:
			w.flag(n.Pos(), "map literal allocates")
		case *types.Slice:
			w.flag(n.Pos(), "slice literal allocates")
		}
		return true
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
				w.flag(n.Pos(), "taking the address of a composite literal allocates")
			}
		}
		return true
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
				w.flag(n.Pos(), "string concatenation allocates")
			}
		}
		return true
	case *ast.AssignStmt:
		// Mark the self-append idiom before its call is visited.
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "append") && len(call.Args) > 0 {
				lhs := exprString(w.pkg.Fset, n.Lhs[0])
				dst := ast.Unparen(call.Args[0])
				if exprString(w.pkg.Fset, dst) == lhs {
					w.allowedAppend[call] = true
				} else if sl, ok := dst.(*ast.SliceExpr); ok && exprString(w.pkg.Fset, sl.X) == lhs {
					// x = append(x[:k], ...) reslices the same backing
					// array; still the capacity-managed idiom.
					w.allowedAppend[call] = true
				}
			}
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				w.checkBox(n.Rhs[i], info.TypeOf(n.Lhs[i]))
			}
		}
		return true
	case *ast.ValueSpec:
		if n.Type != nil {
			dst := info.TypeOf(n.Type)
			for _, val := range n.Values {
				w.checkBox(val, dst)
			}
		}
		return true
	case *ast.ReturnStmt:
		res := w.sig.Results()
		if len(n.Results) == res.Len() {
			for i, e := range n.Results {
				w.checkBox(e, res.At(i).Type())
			}
		}
		return true
	case *ast.CallExpr:
		return w.visitCall(n)
	}
	return true
}

// visitCall classifies one call; it reports whether to descend into the
// call's children.
func (w *naWalker) visitCall(call *ast.CallExpr) bool {
	info := w.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "panic":
				return false // terminal path; its message may allocate
			case "make":
				w.flag(call.Pos(), "make allocates")
			case "new":
				w.flag(call.Pos(), "new allocates")
			case "append":
				if !w.allowedAppend[call] {
					w.flag(call.Pos(), "append into a different destination may allocate (only the self-append idiom x = append(x, ...) is exempt)")
				}
			}
			return true
		}
	}
	// Conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		w.checkConversion(call, tv.Type, call.Args[0])
		return true
	}
	// Function or method call: check callee, then argument boxing. An
	// alloc-ok callee is a reviewed boundary — the boxing its interface
	// parameters cause (errf's variadic, typically) is part of what the
	// annotation's reason covers, so its arguments are not checked. A
	// fmt call likewise reports once, without per-argument boxing noise.
	if callee, dynamic, ok := calleeFunc(info, call); ok && !dynamic {
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			w.flag(call.Pos(), "calls fmt.%s, which allocates", callee.Name())
			return true
		}
		w.checkCallee(call, callee)
		if fi := w.v.ix.funcs[callee]; fi != nil && fi.allocOK {
			return true
		}
	}
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		w.checkArgs(call, sig)
	}
	return true
}

// checkCallee applies the module call policy: stdlib (fmt aside,
// handled by the caller) is trusted, module callees verify transitively
// unless alloc-ok.
func (w *naWalker) checkCallee(call *ast.CallExpr, callee *types.Func) {
	fi := w.v.ix.funcs[callee]
	if fi == nil || fi.allocOK {
		return
	}
	viols := w.v.check(callee)
	if len(viols) == 0 {
		return
	}
	// An annotated callee in a linted package reports on itself; an
	// unannotated (or out-of-scope) one is reported at this call site.
	if fi.noalloc && w.v.ix.mod.isRequested(fi.pkg) {
		return
	}
	first := viols[0]
	w.flag(call.Pos(), "calls %s, which allocates: %s (at %s)",
		callee.Name(), first.msg, w.pkg.Fset.Position(first.pos))
}

// checkConversion flags string<->byte-slice conversions and boxing
// conversions to interface types.
func (w *naWalker) checkConversion(call *ast.CallExpr, dst types.Type, arg ast.Expr) {
	src := w.pkg.Info.TypeOf(arg)
	if src == nil {
		return
	}
	switch {
	case isString(dst) && isSlice(src):
		w.flag(call.Pos(), "slice-to-string conversion allocates")
	case isSlice(dst) && isString(src):
		w.flag(call.Pos(), "string-to-slice conversion allocates")
	default:
		w.checkBox(arg, dst)
	}
}

// checkArgs flags boxing at call arguments whose parameter type is an
// interface.
func (w *naWalker) checkArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		w.checkBox(arg, pt)
	}
}

// checkBox flags expr when assigning it to dst boxes a non-pointer-
// shaped concrete value into an interface.
func (w *naWalker) checkBox(expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := w.pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src.Underlying()) {
		return // interface-to-interface carries the existing box
	}
	if b, isBasic := src.Underlying().(*types.Basic); isBasic && b.Info()&types.IsUntyped != 0 {
		return // untyped nil / constants resolved elsewhere
	}
	if pointerShaped(src) {
		return // direct-interface representation, no allocation
	}
	w.flag(expr.Pos(), "boxing %s into %s allocates", src.String(), dst.String())
}

// pointerShaped reports whether values of t fit an interface word
// directly (the runtime's direct-interface representation).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		// A one-field struct wrapping a pointer-shaped value is itself
		// direct (e.g. struct{ p *T }).
		return u.NumFields() == 1 && pointerShaped(u.Field(0).Type())
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
