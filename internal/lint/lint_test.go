package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expected-diagnostic markers of the fixture
// packages: a `// want "substr"` comment on a line means the checks
// must report a diagnostic there whose message contains the substring.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// readWants parses the markers of every Go file in dir, keyed by
// base-filename:line.
func readWants(t *testing.T, dir string) map[string]string {
	t.Helper()
	wants := make(map[string]string)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants[fmt.Sprintf("%s:%d", e.Name(), i+1)] = m[1]
			}
		}
	}
	return wants
}

// TestFixtures loads each intentionally-bad fixture package and checks
// the diagnostics line-for-line against its want markers: every marker
// must be hit, and no diagnostic may appear on an unmarked line.
func TestFixtures(t *testing.T) {
	for _, name := range []string{"noalloc", "latch", "pool", "clean"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			mod, err := Load(".", "./"+dir)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			diags := mod.Run()
			wants := readWants(t, dir)
			if name == "clean" {
				if len(wants) != 0 {
					t.Fatalf("clean fixture must not carry want markers")
				}
				for _, d := range diags {
					t.Errorf("unexpected diagnostic on clean fixture: %s", d)
				}
				return
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want markers", name)
			}
			hit := make(map[string]bool)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				want, ok := wants[key]
				if !ok {
					t.Errorf("unexpected diagnostic at %s: %s", key, d)
					continue
				}
				if !strings.Contains(d.Message, want) {
					t.Errorf("diagnostic at %s = %q, want substring %q", key, d.Message, want)
					continue
				}
				hit[key] = true
			}
			for key, want := range wants {
				if !hit[key] {
					t.Errorf("missing diagnostic at %s (want %q)", key, want)
				}
			}
		})
	}
}

// TestChecksRegistered pins the check registry the CLI's -list and
// -check flags are built on.
func TestChecksRegistered(t *testing.T) {
	got := Checks()
	if len(got) != 3 {
		t.Fatalf("Checks() returned %d entries, want 3", len(got))
	}
	for i, name := range []string{"noalloc", "latch", "pool"} {
		if got[i].Name != name {
			t.Errorf("Checks()[%d].Name = %q, want %q", i, got[i].Name, name)
		}
		if got[i].Desc == "" {
			t.Errorf("check %s has no description", name)
		}
	}
}

// TestRunSubset verifies check selection: running only the latch check
// over the pool fixture must report nothing.
func TestRunSubset(t *testing.T) {
	mod, err := Load(".", "./testdata/pool")
	if err != nil {
		t.Fatal(err)
	}
	if diags := mod.Run("latch"); len(diags) != 0 {
		t.Errorf("latch check on the pool fixture reported %d diagnostics: %v", len(diags), diags)
	}
	if diags := mod.Run("pool"); len(diags) == 0 {
		t.Error("pool check on the pool fixture reported nothing")
	}
}

// TestRepoClean is the contract the CI step enforces: the shipped tree
// itself must pass every check. A failure here means a hot-path
// invariant regressed (or the checks got stricter than the code).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags := mod.Run()
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(mod.Requested) < 10 {
		t.Errorf("loaded only %d packages; the module walk looks broken", len(mod.Requested))
	}
}

// TestAnnotatedHotPaths pins the sweep: the previously runtime-gated
// entry points must carry a verified //holistic:noalloc annotation, so
// removing one is a visible, reviewed act.
func TestAnnotatedHotPaths(t *testing.T) {
	mod, err := Load("../..", "./internal/query", "./internal/groupby", "./internal/join", "./internal/column", "./internal/cracking", "./internal/obs", "./internal/obs/flight")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	want := map[string][]string{
		"holistic/internal/query":    {"Count", "Sum", "runSel", "putScratch", "finish", "noteStrategy"},
		"holistic/internal/groupby":  {"GroupRows", "GroupBitmap", "accumulateDense", "accumulateHash"},
		"holistic/internal/join":     {"Merge", "PutPairs"},
		"holistic/internal/column":   {"CountRange", "SumRange", "FilterBitmap", "SumBitmap"},
		"holistic/internal/cracking": {"crackInTwoVectorized", "crackInThree"},
		"holistic/internal/obs":      {"Inc", "Add", "Record", "RecordNanos", "NextSeq", "RecordOp", "RecordRep", "RecordStrategy"},
		"holistic/internal/obs/flight": {
			"record", "RecordQuery", "RecordRep", "RecordStrategy", "RecordRefine",
			"RecordCycle", "RecordWALRotate", "RecordCheckpoint", "RecordRecovery", "RecordAnomaly",
		},
	}
	annotated := make(map[string]map[string]bool)
	for _, pkg := range mod.Requested {
		set := make(map[string]bool)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				var fi funcInfo
				if parseAnnotations(fd, &fi) == "" && fi.noalloc {
					set[fd.Name.Name] = true
				}
			}
		}
		annotated[pkg.Path] = set
	}
	for path, names := range want {
		for _, name := range names {
			if !annotated[path][name] {
				t.Errorf("%s.%s is not annotated //holistic:noalloc", path, name)
			}
		}
	}
}
