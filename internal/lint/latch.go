package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The latch check enforces the per-column latch discipline the
// concurrent executors rely on (DESIGN.md §8): within the function that
// acquires a sync.Mutex / sync.RWMutex, every path to an exit must
// release it — by defer or by explicit path-complete pairing — and the
// same latch must never be re-acquired (or read/write upgraded) while
// definitely held. Latches are identified by the source text of their
// receiver expression; simple pointer aliasing (`pre = np`) is
// followed, and the TryLock early-exit idiom is understood.

// runLatch runs the latch check over the requested packages.
func runLatch(ix *modIndex) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range ix.mod.Requested {
		lc := &latchChecker{pkg: pkg, diags: &diags}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lc.checkScopes(fd.Body)
			}
		}
	}
	return diags
}

type latchChecker struct {
	pkg   *Package
	diags *[]Diagnostic

	// tryBinds maps a bool variable to the latch whose TryLock result
	// it holds, so `ok := mu.TryLock(); if ok { ... }` is understood.
	tryBinds map[types.Object]tryBind
	// reported dedups per-scope diagnostics by acquisition site and
	// reason, so a latch leaked past five returns reports once.
	reported map[string]bool
}

type tryBind struct {
	key  string
	kind string
}

// checkScopes analyzes body as one scope, then every function literal
// inside it as its own scope (a goroutine or callback body pairs its
// own latches; literals that merely release via defer are handled by
// the defer scan and skipped here).
func (lc *latchChecker) checkScopes(body *ast.BlockStmt) {
	deferred := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				deferred[fl] = true
			}
		}
		return true
	})
	lc.checkOne(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && !deferred[fl] {
			lc.checkOne(fl.Body)
		}
		return true
	})
}

// checkOne runs the flow analysis over one scope.
func (lc *latchChecker) checkOne(body *ast.BlockStmt) {
	lc.tryBinds = make(map[types.Object]tryBind)
	lc.reported = make(map[string]bool)
	hooks := &flowHooks{
		simple:   lc.simple,
		ret:      func(st *flowState, s *ast.ReturnStmt) { lc.checkExit(st, s.Pos(), "return") },
		cond:     lc.cond,
		atEnd:    func(st *flowState, pos token.Pos) { lc.checkExit(st, pos, "function end") },
		atBranch: lc.atBranch,
	}
	walkBody(body, hooks)
}

func (lc *latchChecker) report(pos token.Pos, dedup, format string, args ...any) {
	if lc.reported[dedup] {
		return
	}
	lc.reported[dedup] = true
	*lc.diags = append(*lc.diags, Diagnostic{
		Pos:     lc.pkg.Fset.Position(pos),
		Check:   "latch",
		Message: fmt.Sprintf(format, args...),
	})
}

// simple extracts latch events from one plain statement.
func (lc *latchChecker) simple(st *flowState, stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			lc.call(st, call)
		}
	case *ast.DeferStmt:
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if recv, name, ok := recvOfSyncMethod(lc.pkg.Info, call, "Unlock", "RUnlock"); ok {
						st.deferRelease(exprString(lc.pkg.Fset, recv), name)
					}
				}
				return true
			})
			return
		}
		if recv, name, ok := recvOfSyncMethod(lc.pkg.Info, s.Call, "Unlock", "RUnlock"); ok {
			st.deferRelease(exprString(lc.pkg.Fset, recv), name)
		}
	case *ast.AssignStmt:
		// ok := mu.TryLock()
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
					if recv, name, ok := recvOfSyncMethod(lc.pkg.Info, call, "TryLock", "TryRLock"); ok {
						obj := lc.pkg.Info.Defs[id]
						if obj == nil {
							obj = lc.pkg.Info.Uses[id]
						}
						if obj != nil {
							lc.tryBinds[obj] = tryBind{key: exprString(lc.pkg.Fset, recv), kind: acquireKind(name)}
						}
						return
					}
				}
				// Pointer aliasing: pre = np makes pre.latch another
				// name for every latch currently held under np.
				if rhs, ok := ast.Unparen(s.Rhs[0]).(*ast.Ident); ok {
					oldBase, newBase := rhs.Name, id.Name
					for key := range st.held {
						if key == oldBase {
							st.alias(key, newBase)
						} else if len(key) > len(oldBase) && key[:len(oldBase)] == oldBase && key[len(oldBase)] == '.' {
							st.alias(key, newBase+key[len(oldBase):])
						}
					}
				}
			}
		}
	}
}

// acquireKind maps a method name to the held-kind it establishes.
func acquireKind(name string) string {
	if name == "RLock" || name == "TryRLock" {
		return "RLock"
	}
	return "Lock"
}

// releaseKindMatches reports whether a release method pairs with an
// acquisition kind.
func releaseKindMatches(held, release string) bool {
	return (held == "Lock" && release == "Unlock") || (held == "RLock" && release == "RUnlock")
}

// call handles Lock/RLock/Unlock/RUnlock expression statements.
func (lc *latchChecker) call(st *flowState, call *ast.CallExpr) {
	recv, name, ok := recvOfSyncMethod(lc.pkg.Info, call, "Lock", "RLock", "Unlock", "RUnlock")
	if !ok {
		return
	}
	key := exprString(lc.pkg.Fset, recv)
	switch name {
	case "Lock", "RLock":
		if info, held := st.held[key]; held && info.definite {
			lc.report(call.Pos(), fmt.Sprintf("reacq:%d", call.Pos()),
				"latch %s is already held (%s at %s); re-acquiring with %s self-deadlocks",
				key, info.kind, lc.pkg.Fset.Position(info.pos), name)
			return
		}
		st.acquire(key, acquireKind(name), call.Pos())
	case "Unlock", "RUnlock":
		if info, held := st.release(key); held {
			if info.definite && !releaseKindMatches(info.kind, name) {
				lc.report(call.Pos(), fmt.Sprintf("kind:%d", call.Pos()),
					"latch %s was acquired with %s but is released with %s", key, info.kind, name)
			}
		}
	}
}

// cond understands the TryLock idioms in if conditions:
//
//	if mu.TryLock() { ... held in then ... }
//	if !mu.TryLock() { return } // held after the if
//	if ok { ... } // ok bound from mu.TryLock()
func (lc *latchChecker) cond(c ast.Expr, thenSt, elseSt *flowState) {
	acquireInto := func(e ast.Expr, st *flowState) {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if recv, name, ok := recvOfSyncMethod(lc.pkg.Info, e, "TryLock", "TryRLock"); ok {
				st.acquire(exprString(lc.pkg.Fset, recv), acquireKind(name), e.Pos())
			}
		case *ast.Ident:
			if obj := lc.pkg.Info.Uses[e]; obj != nil {
				if tb, ok := lc.tryBinds[obj]; ok {
					st.acquire(tb.key, tb.kind, e.Pos())
				}
			}
		}
	}
	switch c := ast.Unparen(c).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			acquireInto(c.X, elseSt)
		}
	default:
		acquireInto(c, thenSt)
	}
}

// checkExit reports latches definitely held at an exit with no
// (matching) deferred release.
func (lc *latchChecker) checkExit(st *flowState, pos token.Pos, what string) {
	for key, info := range st.held {
		if !info.definite {
			continue
		}
		if kind, ok := st.deferred(key); ok {
			if !releaseKindMatches(info.kind, kind) {
				lc.report(info.pos, fmt.Sprintf("dkind:%d", info.pos),
					"latch %s is acquired with %s but the deferred release is %s", key, info.kind, kind)
			}
			continue
		}
		lc.report(info.pos, fmt.Sprintf("leak:%d:%s", info.pos, what),
			"latch %s (%s at %s) is not released on every path: still held at %s",
			key, info.kind, lc.pkg.Fset.Position(info.pos), what)
	}
}

// atBranch flags continue statements that would loop back around while
// still holding a latch acquired in this iteration.
func (lc *latchChecker) atBranch(st *flowState, stmt *ast.BranchStmt) {
	if stmt.Tok != token.CONTINUE {
		return
	}
	for key, info := range st.held {
		if !info.definite || info.depth < st.depth {
			continue
		}
		if _, ok := st.deferred(key); ok {
			continue
		}
		lc.report(stmt.Pos(), fmt.Sprintf("cont:%d:%d", info.pos, stmt.Pos()),
			"latch %s (%s at %s) is still held at continue; the next iteration re-acquires it",
			key, info.kind, lc.pkg.Fset.Position(info.pos))
	}
}
