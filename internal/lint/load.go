// Package lint implements holisticlint, the repository's custom
// static-analysis suite. It enforces, at the source level, the three
// invariants the hot paths otherwise guarantee only at runtime:
//
//   - noalloc: functions annotated //holistic:noalloc contain no
//     allocating constructs, verified transitively through same-module
//     callees (the static complement of the AllocsPerRun gates);
//   - latch: every Lock/RLock is released on all paths of the
//     acquiring function (defer or path-complete pairing), with no
//     same-latch reacquisition while held;
//   - pool: every sync.Pool.Get has a matching Put on all exits, and
//     pooled values do not leak through returns or struct stores that
//     no releaser covers.
//
// The suite is stdlib-only (go/parser + go/ast + go/types); it loads
// and type-checks module packages itself, resolving standard-library
// imports through the source importer, so it needs neither export data
// nor external dependencies. See DESIGN.md §8 for the annotation
// contract and the assumptions each check makes.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path, e.g. holistic/internal/query
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module holds every package a Load call brought in: the requested
// ones (which the checks report on) plus all module-internal
// dependencies (which the noalloc check follows calls into).
type Module struct {
	Path      string // module path from go.mod
	Root      string // module root directory
	Fset      *token.FileSet
	Requested []*Package
	All       map[string]*Package // by import path, dependencies included
}

// loader resolves and type-checks module packages on demand. It
// implements types.Importer so packages can import each other.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load parses and type-checks the packages matching patterns, rooted
// at dir (which must be inside the module). Patterns are the usual
// "./...", "./internal/query" forms; "./..." skips testdata and hidden
// directories, but a testdata directory named explicitly loads fine —
// that is how the lint tests reach their fixture packages. Test files
// (_test.go) are never loaded: the invariants govern shipped code, and
// test code exercises intentionally unbalanced states.
func Load(dir string, patterns ...string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./...":
			walkPackageDirs(abs, add)
		case strings.HasSuffix(pat, "/..."):
			walkPackageDirs(filepath.Join(abs, strings.TrimSuffix(pat, "/...")), add)
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(abs, d)
			}
			if !hasGoFiles(d) {
				return nil, fmt.Errorf("lint: no Go files in %s", d)
			}
			add(d)
		}
	}
	m := &Module{Path: modPath, Root: root, Fset: fset, All: ld.pkgs}
	for _, d := range dirs {
		ip, err := ld.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := ld.load(ip)
		if err != nil {
			return nil, err
		}
		m.Requested = append(m.Requested, pkg)
	}
	sort.Slice(m.Requested, func(i, j int) bool { return m.Requested[i].Path < m.Requested[j].Path })
	return m, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// walkPackageDirs calls add for every directory under root that holds
// non-test Go files, skipping testdata, vendor and hidden directories.
func walkPackageDirs(root string, add func(string)) {
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			add(path)
		}
		return nil
	})
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory inside the module to its import path.
func (ld *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return ld.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, ld.root)
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor is the inverse of importPathFor.
func (ld *loader) dirFor(importPath string) string {
	if importPath == ld.modPath {
		return ld.root
	}
	rel := strings.TrimPrefix(importPath, ld.modPath+"/")
	return filepath.Join(ld.root, filepath.FromSlash(rel))
}

// Import implements types.Importer: module-internal paths load from
// source recursively; everything else is delegated to the standard
// library's source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks one module package, memoized.
func (ld *loader) load(importPath string) (*Package, error) {
	if pkg, ok := ld.pkgs[importPath]; ok {
		return pkg, nil
	}
	if ld.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	ld.loading[importPath] = true
	defer delete(ld.loading, importPath)

	dir := ld.dirFor(importPath)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, _ := conf.Check(importPath, ld.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s failed:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: ld.fset, Files: files, Pkg: tpkg, Info: info}
	ld.pkgs[importPath] = pkg
	return pkg, nil
}
