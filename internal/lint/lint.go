package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the check that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// CheckInfo describes one registered check for -list output.
type CheckInfo struct {
	Name string
	Desc string
}

// Checks enumerates the registered checks in the order they run.
func Checks() []CheckInfo {
	return []CheckInfo{
		{"noalloc", "//holistic:noalloc functions must not contain allocating constructs, transitively through same-module callees"},
		{"latch", "every Lock/RLock is released on all paths of the acquiring function; no same-latch reacquisition while held"},
		{"pool", "every sync.Pool.Get is Put back on all exits; pooled values may not escape via return-after-Put or uncovered struct stores"},
	}
}

// The annotation vocabulary. Annotations are magic comments in a
// function's doc comment (see DESIGN.md §8):
//
//	//holistic:noalloc
//	    The function is part of a steady-state zero-allocation path.
//	    The noalloc check verifies it and everything it calls inside
//	    the module.
//	//holistic:alloc-ok <reason>
//	    The function is a reviewed allocation boundary — it may
//	    allocate (cold path, pool warm-up, goroutine fan-out) and
//	    noalloc callers may still call it. The reason is mandatory.
const (
	annoNoAlloc = "holistic:noalloc"
	annoAllocOK = "holistic:alloc-ok"
)

// funcInfo is the per-function record of the module index.
type funcInfo struct {
	decl    *ast.FuncDecl
	pkg     *Package
	noalloc bool
	allocOK bool
}

// modIndex spans every loaded module package: the function table the
// noalloc check resolves calls through, and the pool summaries the
// pool check matches borrowers against releasers with.
type modIndex struct {
	mod   *Module
	funcs map[*types.Func]*funcInfo
}

// Run executes the named checks (nil or empty means all) over the
// module's requested packages and returns the findings sorted by
// position. Malformed annotations are reported as diagnostics too.
func (m *Module) Run(checks ...string) []Diagnostic {
	if len(checks) == 0 {
		for _, c := range Checks() {
			checks = append(checks, c.Name)
		}
	}
	ix := &modIndex{mod: m, funcs: make(map[*types.Func]*funcInfo)}
	var diags []Diagnostic
	for _, pkg := range m.All {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				info := &funcInfo{decl: fd, pkg: pkg}
				if bad := parseAnnotations(fd, info); bad != "" && m.isRequested(pkg) {
					diags = append(diags, Diagnostic{
						Pos:     m.Fset.Position(fd.Pos()),
						Check:   "noalloc",
						Message: bad,
					})
				}
				ix.funcs[obj] = info
			}
		}
	}
	for _, name := range checks {
		switch name {
		case "noalloc":
			diags = append(diags, runNoAlloc(ix)...)
		case "latch":
			diags = append(diags, runLatch(ix)...)
		case "pool":
			diags = append(diags, runPool(ix)...)
		default:
			diags = append(diags, Diagnostic{Check: name, Message: fmt.Sprintf("unknown check %q", name)})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// isRequested reports whether pkg is one of the packages the user asked
// to lint (dependencies are loaded but not reported on directly).
func (m *Module) isRequested(pkg *Package) bool {
	for _, p := range m.Requested {
		if p == pkg {
			return true
		}
	}
	return false
}

// parseAnnotations reads the holistic: annotations off a function's doc
// comment into info, returning a non-empty message when one is
// malformed.
func parseAnnotations(fd *ast.FuncDecl, info *funcInfo) (problem string) {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		switch {
		case text == annoNoAlloc || strings.HasPrefix(text, annoNoAlloc+" "):
			info.noalloc = true
		case text == annoAllocOK:
			return fmt.Sprintf("%s requires a reason, e.g. //holistic:alloc-ok grows the pooled buffer on first use", annoAllocOK)
		case strings.HasPrefix(text, annoAllocOK+" "):
			if strings.TrimSpace(strings.TrimPrefix(text, annoAllocOK+" ")) == "" {
				return fmt.Sprintf("%s requires a non-empty reason", annoAllocOK)
			}
			info.allocOK = true
		case strings.HasPrefix(text, "holistic:"):
			return fmt.Sprintf("unknown annotation //%s", strings.Fields(text)[0])
		}
	}
	if info.noalloc && info.allocOK {
		return "a function cannot be both //holistic:noalloc and //holistic:alloc-ok"
	}
	if (info.noalloc || info.allocOK) && fd.Body == nil {
		return "holistic: annotations require a function body"
	}
	return ""
}

// exprString renders an expression as compact source text — the
// identity the latch check keys held latches by.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// when that can be determined statically. ok is false for calls through
// function values, builtins and type conversions. dynamic is true for
// interface method calls (resolved to the interface method object).
func calleeFunc(info *types.Info, call *ast.CallExpr) (fn *types.Func, dynamic bool, ok bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, isID := ast.Unparen(fun.X).(*ast.Ident); isID {
			obj = info.Uses[id]
		} else if sel, isSel := ast.Unparen(fun.X).(*ast.SelectorExpr); isSel {
			obj = info.Uses[sel.Sel]
		}
	}
	f, isFn := obj.(*types.Func)
	if !isFn {
		return nil, false, false
	}
	if sig, isSig := f.Type().(*types.Signature); isSig {
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			return f, true, true
		}
	}
	return f, false, true
}

// recvOfSyncMethod reports whether call is a method call on a
// sync.Mutex or sync.RWMutex (directly or through a promoted embedded
// field) with one of the given names, and returns the receiver
// expression when so.
func recvOfSyncMethod(info *types.Info, call *ast.CallExpr, names ...string) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	if tn := named.Obj().Name(); tn != "Mutex" && tn != "RWMutex" {
		return nil, "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return sel.X, n, true
		}
	}
	return nil, "", false
}
