package cracking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"holistic/internal/column"
)

func TestMergeInsertIntoCrackedColumn(t *testing.T) {
	base := randVals(10_000, 61, 1000)
	c := New("a", base, Config{})
	// Crack into several pieces first.
	for _, v := range []int64{100, 300, 500, 700, 900} {
		c.CrackAt(v)
	}
	pieces := c.Pieces()

	live := append([]int64(nil), base...)
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 200; i++ {
		v := rng.Int63n(1100) - 50 // include values outside the original domain
		c.MergeInsert(v, uint32(len(live)))
		live = append(live, v)
	}
	if c.Len() != len(live) {
		t.Fatalf("Len() = %d, want %d", c.Len(), len(live))
	}
	if c.Pieces() != pieces {
		t.Fatalf("merge changed piece count: %d -> %d", pieces, c.Pieces())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !equalSlices(multiset(live), multiset(c.Snapshot())) {
		t.Fatal("column multiset does not match inserted values")
	}
	// Selects must now see the merged values.
	for q := 0; q < 50; q++ {
		lo := rng.Int63n(1000)
		hi := lo + rng.Int63n(1000-lo) + 1
		if got, want := c.SelectRange(lo, hi).Count(), column.CountRange(live, lo, hi); got != want {
			t.Fatalf("[%d,%d): Count = %d, want %d after merges", lo, hi, got, want)
		}
	}
}

func TestMergeInsertWithRows(t *testing.T) {
	base := randVals(1000, 63, 100)
	c := New("a", base, Config{WithRows: true})
	c.CrackAt(50)
	c.MergeInsert(77, 9999)
	_, rows := c.SelectRows(77, 78)
	found := false
	for _, r := range rows {
		if r == 9999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted rowid not returned by select")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeInsertExtendsDomain(t *testing.T) {
	c := New("a", []int64{10, 20, 30}, Config{})
	c.MergeInsert(-5, 0)
	c.MergeInsert(99, 0)
	lo, hi := c.Domain()
	if lo != -5 || hi != 99 {
		t.Errorf("Domain() = %d,%d; want -5,99", lo, hi)
	}
}

func TestMergeDelete(t *testing.T) {
	base := []int64{5, 2, 8, 2, 9, 1}
	c := New("a", base, Config{WithRows: true})
	c.CrackAt(5)
	row, found := c.MergeDelete(2)
	if !found {
		t.Fatal("MergeDelete did not find value 2")
	}
	if base[row] != 2 {
		t.Fatalf("returned rowid %d maps to %d, want 2", row, base[row])
	}
	if c.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// One 2 must remain.
	if got := c.SelectRange(2, 3).Count(); got != 1 {
		t.Fatalf("remaining count of 2 = %d, want 1", got)
	}
}

func TestMergeDeleteAbsent(t *testing.T) {
	c := New("a", []int64{1, 2, 3}, Config{})
	if _, found := c.MergeDelete(42); found {
		t.Fatal("MergeDelete reported deleting an absent value")
	}
	if c.Len() != 3 {
		t.Fatalf("Len() changed on absent delete: %d", c.Len())
	}
}

func TestMergeDeleteLastPiece(t *testing.T) {
	base := randVals(1000, 64, 100)
	c := New("a", base, Config{})
	c.CrackAt(50)
	// Delete a value in the last piece (>= 50).
	var victim int64 = -1
	for _, v := range base {
		if v >= 50 {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("no value >= 50 in base")
	}
	before := c.SelectRange(victim, victim+1).Count()
	if _, found := c.MergeDelete(victim); !found {
		t.Fatal("delete failed")
	}
	if got := c.SelectRange(victim, victim+1).Count(); got != before-1 {
		t.Fatalf("count after delete = %d, want %d", got, before-1)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAsDeletePlusInsert(t *testing.T) {
	// The paper: "Updates are translated into a deletion that is followed
	// by an insertion."
	base := randVals(5000, 65, 1000)
	c := New("a", base, Config{})
	for _, v := range []int64{250, 500, 750} {
		c.CrackAt(v)
	}
	live := append([]int64(nil), base...)
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 100; i++ {
		oldV := live[rng.Intn(len(live))]
		newV := rng.Int63n(1000)
		if _, found := c.MergeDelete(oldV); !found {
			t.Fatalf("value %d should be present", oldV)
		}
		c.MergeInsert(newV, 0)
		for j, v := range live {
			if v == oldV {
				live[j] = newV
				break
			}
		}
	}
	if !equalSlices(multiset(live), multiset(c.Snapshot())) {
		t.Fatal("update stream diverged from reference")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRippleInvariants(t *testing.T) {
	type op struct {
		Insert bool
		Value  uint8
		Crack  uint8
	}
	check := func(seed int64, ops []op) bool {
		base := randVals(500, seed, 256)
		c := New("q", base, Config{})
		live := append([]int64(nil), base...)
		for _, o := range ops {
			c.CrackAt(int64(o.Crack))
			if o.Insert {
				c.MergeInsert(int64(o.Value), 0)
				live = append(live, int64(o.Value))
			} else {
				if _, found := c.MergeDelete(int64(o.Value)); found {
					for j, v := range live {
						if v == int64(o.Value) {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
				}
			}
		}
		if c.CheckInvariants() != nil {
			return false
		}
		return equalSlices(multiset(live), multiset(c.Snapshot()))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeInsertRacesSelects(t *testing.T) {
	// Merges take the column exclusively; selects hold it shared. The sum
	// of counts must be consistent with the values present at that time:
	// every select sees some prefix of the insert stream of its value.
	base := randVals(20_000, 67, 1000)
	c := New("a", base, Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c.MergeInsert(500, 0) // always insert the same value
		}
	}()
	prev := 0
	for i := 0; i < 200; i++ {
		got := c.SelectRange(500, 501).Count()
		if got < prev {
			t.Errorf("count went backwards: %d after %d", got, prev)
		}
		prev = got
	}
	<-done
	want := column.CountRange(base, 500, 501) + 500
	if got := c.SelectRange(500, 501).Count(); got != want {
		t.Fatalf("final count = %d, want %d", got, want)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeDeleteRowTargetsSpecificTuple: with duplicated values, the
// row-targeted merge removes exactly the requested tuple, and falls
// back to a value match when the tuple is absent.
func TestMergeDeleteRowTargetsSpecificTuple(t *testing.T) {
	c := New("a", []int64{5, 7, 5, 9, 5}, Config{WithRows: true})
	c.SelectRange(6, 8) // crack so the ripple has boundaries to preserve

	if _, found := c.MergeDeleteRow(5, 2); !found {
		t.Fatal("tuple (5, row 2) not found")
	}
	rows := map[uint32]bool{}
	vals := c.Snapshot()
	rids := c.SnapshotRows()
	for i, v := range vals {
		if v == 5 {
			rows[rids[i]] = true
		}
	}
	if rows[2] || !rows[0] || !rows[4] {
		t.Fatalf("rows holding 5 after targeted delete: %v, want {0, 4}", rows)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Absent tuple: falls back to removing some occurrence of the value.
	if _, found := c.MergeDeleteRow(5, 99); !found {
		t.Fatal("value 5 not found on fallback")
	}
	if n := c.SelectRange(5, 6).Count(); n != 1 {
		t.Fatalf("%d fives left, want 1", n)
	}
	// Absent value: reports not found.
	if _, found := c.MergeDeleteRow(42, 0); found {
		t.Fatal("absent value reported found")
	}
}

// TestMergeDeleteRowWithoutRows: on a rowid-free column the targeted
// form degrades to value semantics.
func TestMergeDeleteRowWithoutRows(t *testing.T) {
	c := New("a", []int64{5, 5, 7}, Config{})
	if _, found := c.MergeDeleteRow(5, 1); !found {
		t.Fatal("value not found")
	}
	if n := c.SelectRange(5, 6).Count(); n != 1 {
		t.Fatalf("%d fives left, want 1", n)
	}
}
