// Package cracking implements database cracking — the adaptive indexing
// technique of Idreos et al. (CIDR 2007) that holistic indexing builds on
// (Section 3.2 of the paper).
//
// A cracker column is a copy of a base column that is physically
// reorganized ("cracked") as a side effect of range selections: values
// smaller than a query bound are moved before it, values greater after
// it. The accumulated partitioning information — which contiguous piece
// of the array holds which value range — is kept in an AVL tree, the
// cracker index. As more queries (or holistic refinement actions) arrive,
// pieces shrink and selects touch less and less data.
//
// Concurrency follows the piece-latch design of Graefe et al. (PVLDB 2012)
// that the paper adopts (Section 4.2): the index structure is guarded by a
// short-critical-section RWMutex, while data reorganization takes a
// read/write latch on the individual piece being cracked, so user queries
// and holistic workers crack disjoint pieces of one column in parallel.
// Holistic workers never block on a piece latch — a failed try-lock makes
// the worker re-roll a different random pivot (Figure 3 of the paper).
package cracking

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"holistic/internal/avl"
)

// Kernel selects the partition algorithm used to crack a piece.
type Kernel int

const (
	// KernelInPlace is the classic two-cursor in-place crack-in-two.
	KernelInPlace Kernel = iota
	// KernelVectorized is the out-of-place, chunked ("vectorized")
	// partition of Pirk et al. (DaMoN 2014), Figure 5 of the paper: a
	// sequential read cursor copies each vector into either the head or
	// the tail of a scratch buffer. It is the most CPU-efficient
	// single-threaded cracking kernel reported.
	KernelVectorized
)

// Config controls cracking behaviour for one cracker column.
type Config struct {
	// Kernel picks the single-threaded partition kernel.
	Kernel Kernel
	// ParallelWorkers > 1 enables the refined partition & merge
	// algorithm (Figure 4) for pieces of at least MinParallelPiece
	// values: the piece is sliced across this many goroutines, each
	// partitions its slice with the vectorized kernel, and the slices
	// are merged back.
	ParallelWorkers int
	// MinParallelPiece is the smallest piece worth parallelizing.
	// Defaults to 1<<16 values.
	MinParallelPiece int
	// RefineWorkers is the parallelism of holistic refinement cracks
	// (TryRefineAt), independent of the user-query parallelism: the
	// paper's uXwYxZ thread distributions give each holistic worker its
	// own small thread budget (e.g. u16w8x2 = 8 workers with 2 threads
	// each). Defaults to 1.
	RefineWorkers int
	// Stochastic enables stochastic cracking (Halim et al., PVLDB 2012):
	// each user-query crack first performs one auxiliary crack at a
	// random pivot inside the piece about to be cracked, bounding the
	// worst case on skewed/sequential workloads.
	Stochastic bool
	// WithRows attaches a rowid array that is permuted in lockstep with
	// the values, so select-project queries can reconstruct tuples after
	// cracking (sideways-style tuple reconstruction).
	WithRows bool
	// Seed seeds the column's private RNG (stochastic pivots).
	Seed int64
}

// piece is one contiguous region of the cracker column. It is the value
// stored in the cracker index: the tree key is the piece's lower value
// bound and start is the position of its first element. A piece's end is
// the start of the next piece in key order (or the column length).
type piece struct {
	start int
	latch sync.RWMutex
}

// Column is a cracker column plus its cracker index.
type Column struct {
	name string

	// global is held shared by all cracking/select/refine operations and
	// exclusively by update merges (Ripple), which move piece boundaries
	// — the one mutation the piece-latch protocol cannot isolate.
	global sync.RWMutex

	// mu guards the cracker index tree and the vals/rows slice headers.
	mu   sync.RWMutex
	tree *avl.Tree

	vals []int64
	rows []uint32

	// payloads are attribute columns physically reorganized in lockstep
	// with vals: sideways cracking (Idreos et al., SIGMOD 2009). A range
	// select then reads the qualifying tuples of every payload attribute
	// from one contiguous block instead of gathering through rowids.
	payloadNames []string
	payloads     [][]int64

	// domainLo/domainHi cache the column's value bounds for random-pivot
	// refinement. Guarded by mu.
	domainLo, domainHi int64

	cfg Config

	rngMu sync.Mutex
	rng   *rand.Rand

	scratch  sync.Pool // *[]int64 partition buffers
	scratchR sync.Pool // *[]uint32 row partition buffers
}

// sentinelKey is the key of the boundary that starts the first piece.
// Every column always has it, so every position belongs to exactly one
// piece and every piece has exactly one owning tree node.
const sentinelKey = math.MinInt64

// New builds a cracker column from a copy of base. The copy is the
// "cracker column ACRK" of Section 3.2; the base column stays untouched.
func New(name string, base []int64, cfg Config) *Column {
	if cfg.MinParallelPiece == 0 {
		cfg.MinParallelPiece = 1 << 16
	}
	if cfg.ParallelWorkers < 1 {
		cfg.ParallelWorkers = 1
	}
	c := &Column{
		name: name,
		tree: avl.New(),
		vals: append([]int64(nil), base...),
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.WithRows {
		c.rows = make([]uint32, len(base))
		for i := range c.rows {
			c.rows[i] = uint32(i)
		}
	}
	c.tree.Insert(sentinelKey, &piece{start: 0})
	c.domainLo, c.domainHi = int64(math.MaxInt64), int64(math.MinInt64)
	for _, v := range base {
		if v < c.domainLo {
			c.domainLo = v
		}
		if v > c.domainHi {
			c.domainHi = v
		}
	}
	if len(base) == 0 {
		c.domainLo, c.domainHi = 0, 0
	}
	return c
}

// Name returns the attribute name the cracker column indexes.
func (c *Column) Name() string { return c.name }

// Len returns the number of values in the cracker column.
func (c *Column) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.vals)
}

// HasRows reports whether the column carries a rowid array (built with
// Config.WithRows), i.e. whether SelectRows can materialize positions.
func (c *Column) HasRows() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rows != nil
}

// Pieces returns the current number of pieces in the cracker column.
func (c *Column) Pieces() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.Len()
}

// Domain returns the (cached) minimum and maximum value in the column.
func (c *Column) Domain() (lo, hi int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.domainLo, c.domainHi
}

// SizeBytes reports the materialized size of the cracker column: the
// storage-budget accounting unit for the holistic index space.
func (c *Column) SizeBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	size := int64(len(c.vals))*8 + int64(len(c.rows))*4
	for _, p := range c.payloads {
		size += int64(len(p)) * 8
	}
	return size
}

// AvgPieceSize returns len/pieces, the |p| of Equation (1).
func (c *Column) AvgPieceSize() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.tree.Len() == 0 {
		return 0
	}
	return float64(len(c.vals)) / float64(c.tree.Len())
}

// Snapshot returns a copy of the current physical value order. Test and
// debugging helper; takes the column exclusively to get a torn-free view.
func (c *Column) Snapshot() []int64 {
	c.global.Lock()
	defer c.global.Unlock()
	return append([]int64(nil), c.vals...)
}

// SnapshotRows returns a copy of the rowid array (nil when disabled).
func (c *Column) SnapshotRows() []uint32 {
	c.global.Lock()
	defer c.global.Unlock()
	if c.rows == nil {
		return nil
	}
	return append([]uint32(nil), c.rows...)
}

// pieceByPosLocked returns the piece containing position pos and its end.
// It exploits the cracking invariant that boundary keys and boundary
// positions are ordered identically. Caller must hold mu.
func (c *Column) pieceByPosLocked(pos int) (p *piece, end int) {
	var bestKey int64
	c.tree.FloorWhere(func(_ int64, v avl.Value) bool {
		return v.(*piece).start <= pos
	}, func(k int64, v avl.Value) {
		bestKey = k
		p = v.(*piece)
	})
	if p == nil {
		// pos < first piece start is impossible (sentinel starts at 0);
		// defensive fallback.
		_, pv, _ := c.tree.Min()
		p = pv.(*piece)
		bestKey = sentinelKey
	}
	if _, nv, ok := c.tree.Successor(bestKey); ok {
		end = nv.(*piece).start
	} else {
		end = len(c.vals)
	}
	return p, end
}

// NewSideways builds a cracker column that drags payload attribute
// columns along with every reorganization — the sideways-cracking design
// the TPC-H experiments use (Section 5.6): the select attribute is
// cracked, and the attributes a query projects stay position-aligned, so
// aggregation runs tight loops over contiguous blocks. Each payload is
// copied; base columns stay untouched. Payload kernels are in-place
// (the out-of-place kernels would need scratch per payload).
func NewSideways(name string, base []int64, payloadNames []string, payloads [][]int64, cfg Config) *Column {
	if len(payloadNames) != len(payloads) {
		panic("cracking: payload name/column count mismatch")
	}
	c := New(name, base, cfg)
	for i, p := range payloads {
		if len(p) != len(base) {
			panic(fmt.Sprintf("cracking: payload %q has %d values, base has %d",
				payloadNames[i], len(p), len(base)))
		}
		c.payloads = append(c.payloads, append([]int64(nil), p...))
	}
	c.payloadNames = append([]string(nil), payloadNames...)
	return c
}

// PayloadNames returns the attached payload attribute names.
func (c *Column) PayloadNames() []string {
	return append([]string(nil), c.payloadNames...)
}

// PieceInfo describes one piece of the cracker column at a point in
// time: its value span [LoKey, HiKey) and position span [Start, End).
type PieceInfo struct {
	LoKey, HiKey int64
	Start, End   int
}

// Size returns the number of values in the piece.
func (p PieceInfo) Size() int { return p.End - p.Start }

// PieceBounds snapshots all pieces in key order. O(pieces); used by
// telemetry and by the pivot-choice ablation (the paper's discussion of
// biggest/smallest-piece targeting notes exactly this maintenance cost).
func (c *Column) PieceBounds() []PieceInfo {
	c.global.RLock()
	defer c.global.RUnlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]PieceInfo, 0, c.tree.Len())
	c.tree.Ascend(func(k int64, v avl.Value) bool {
		out = append(out, PieceInfo{LoKey: k, Start: v.(*piece).start})
		return true
	})
	for i := range out {
		if i+1 < len(out) {
			out[i].HiKey = out[i+1].LoKey
			out[i].End = out[i+1].Start
		} else {
			out[i].HiKey = math.MaxInt64
			out[i].End = len(c.vals)
		}
	}
	return out
}

// CheckInvariants validates the structural invariants of the cracker
// column; it returns a descriptive error on the first violation. Used by
// tests (including property-based ones) after arbitrary op sequences.
func (c *Column) CheckInvariants() error {
	c.global.Lock()
	defer c.global.Unlock()
	type bound struct {
		key   int64
		start int
	}
	var bounds []bound
	c.tree.Ascend(func(k int64, v avl.Value) bool {
		bounds = append(bounds, bound{k, v.(*piece).start})
		return true
	})
	if len(bounds) == 0 || bounds[0].key != sentinelKey || bounds[0].start != 0 {
		return fmt.Errorf("missing or misplaced sentinel boundary: %+v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i].start < bounds[i-1].start {
			return fmt.Errorf("boundary positions not monotone: %+v then %+v", bounds[i-1], bounds[i])
		}
		if bounds[i].start > len(c.vals) {
			return fmt.Errorf("boundary %+v beyond column length %d", bounds[i], len(c.vals))
		}
	}
	for i, b := range bounds {
		end := len(c.vals)
		if i+1 < len(bounds) {
			end = bounds[i+1].start
		}
		for pos := b.start; pos < end; pos++ {
			v := c.vals[pos]
			if b.key != sentinelKey && v < b.key {
				return fmt.Errorf("value %d at pos %d below piece lower bound %d", v, pos, b.key)
			}
			if i+1 < len(bounds) && v >= bounds[i+1].key {
				return fmt.Errorf("value %d at pos %d not below next boundary %d", v, pos, bounds[i+1].key)
			}
		}
	}
	return nil
}
