package cracking

import "sync"

// vectorSize is the chunk width of the vectorized kernel: large enough to
// amortize loop overhead, small enough that a read vector plus the two
// write frontiers stay cache resident (Pirk et al., DaMoN 2014).
const vectorSize = 1024

// crackInTwoInPlace partitions vals[lo:hi] (and rows in lockstep when
// non-nil) so that values < pivot precede values >= pivot, returning the
// index of the first value >= pivot. Classic two-cursor crack-in-two.
//
//holistic:noalloc
func crackInTwoInPlace(vals []int64, rows []uint32, lo, hi int, pivot int64) int {
	i, j := lo, hi-1
	if rows == nil {
		for {
			for i <= j && vals[i] < pivot {
				i++
			}
			for i <= j && vals[j] >= pivot {
				j--
			}
			if i >= j {
				break
			}
			vals[i], vals[j] = vals[j], vals[i]
			i++
			j--
		}
		return i
	}
	for {
		for i <= j && vals[i] < pivot {
			i++
		}
		for i <= j && vals[j] >= pivot {
			j--
		}
		if i >= j {
			break
		}
		vals[i], vals[j] = vals[j], vals[i]
		rows[i], rows[j] = rows[j], rows[i]
		i++
		j--
	}
	return i
}

// getScratch returns a partition buffer of at least n values (and n rows
// when needRows is set), reusing pooled buffers.
//
//holistic:alloc-ok pool warm-up allocates the recycled object
func (c *Column) getScratch(n int, needRows bool) ([]int64, []uint32) {
	var sv []int64
	if p, _ := c.scratch.Get().(*[]int64); p != nil && cap(*p) >= n {
		sv = (*p)[:n]
	} else {
		sv = make([]int64, n)
	}
	var sr []uint32
	if needRows {
		if p, _ := c.scratchR.Get().(*[]uint32); p != nil && cap(*p) >= n {
			sr = (*p)[:n]
		} else {
			sr = make([]uint32, n)
		}
	}
	return sv, sr
}

//holistic:noalloc
func (c *Column) putScratch(sv []int64, sr []uint32) {
	c.scratch.Put(&sv)
	if sr != nil {
		c.scratchR.Put(&sr)
	}
}

// crackInTwoVectorized is the out-of-place vectorized partition of
// Figure 5: a strictly sequential read cursor walks the piece one vector
// at a time, copying each value to either the head cursor or the tail
// cursor of a scratch buffer; the scratch is then copied back. The tail
// half ends up reversed, which is irrelevant — order inside a piece
// carries no information.
//
//holistic:noalloc
func crackInTwoVectorized(vals, scratchV []int64, rows, scratchR []uint32, lo, hi int, pivot int64) int {
	n := hi - lo
	head, tail := 0, n-1
	if rows == nil {
		for base := 0; base < n; base += vectorSize {
			limit := base + vectorSize
			if limit > n {
				limit = n
			}
			for i := base; i < limit; i++ {
				v := vals[lo+i]
				if v < pivot {
					scratchV[head] = v
					head++
				} else {
					scratchV[tail] = v
					tail--
				}
			}
		}
		copy(vals[lo:hi], scratchV[:n])
		return lo + head
	}
	for base := 0; base < n; base += vectorSize {
		limit := base + vectorSize
		if limit > n {
			limit = n
		}
		for i := base; i < limit; i++ {
			v := vals[lo+i]
			r := rows[lo+i]
			if v < pivot {
				scratchV[head] = v
				scratchR[head] = r
				head++
			} else {
				scratchV[tail] = v
				scratchR[tail] = r
				tail--
			}
		}
	}
	copy(vals[lo:hi], scratchV[:n])
	copy(rows[lo:hi], scratchR[:n])
	return lo + head
}

// crackInTwoSideways is crack-in-two with payload columns (and optional
// rowids) swapped in lockstep: the sideways-cracking kernel.
//
//holistic:noalloc
func crackInTwoSideways(vals []int64, rows []uint32, payloads [][]int64, lo, hi int, pivot int64) int {
	i, j := lo, hi-1
	for {
		for i <= j && vals[i] < pivot {
			i++
		}
		for i <= j && vals[j] >= pivot {
			j--
		}
		if i >= j {
			break
		}
		vals[i], vals[j] = vals[j], vals[i]
		if rows != nil {
			rows[i], rows[j] = rows[j], rows[i]
		}
		for _, p := range payloads {
			p[i], p[j] = p[j], p[i]
		}
		i++
		j--
	}
	return i
}

// crackInThreeSideways is crack-in-three with payloads in lockstep.
//
//holistic:noalloc
func crackInThreeSideways(vals []int64, rows []uint32, payloads [][]int64, lo, hi int, a, b int64) (m1, m2 int) {
	low, mid, high := lo, lo, hi-1
	swap := func(x, y int) {
		vals[x], vals[y] = vals[y], vals[x]
		if rows != nil {
			rows[x], rows[y] = rows[y], rows[x]
		}
		for _, p := range payloads {
			p[x], p[y] = p[y], p[x]
		}
	}
	for mid <= high {
		switch v := vals[mid]; {
		case v < a:
			swap(low, mid)
			low++
			mid++
		case v >= b:
			swap(mid, high)
			high--
		default:
			mid++
		}
	}
	return low, mid
}

// crackInThree partitions vals[lo:hi] into [< a | a <= v < b | >= b] in a
// single pass (Dutch national flag), returning the two split points. Used
// when both bounds of a range select fall into the same piece.
//
//holistic:noalloc
func crackInThree(vals []int64, rows []uint32, lo, hi int, a, b int64) (m1, m2 int) {
	low, mid, high := lo, lo, hi-1
	if rows == nil {
		for mid <= high {
			v := vals[mid]
			switch {
			case v < a:
				vals[low], vals[mid] = vals[mid], vals[low]
				low++
				mid++
			case v >= b:
				vals[mid], vals[high] = vals[high], vals[mid]
				high--
			default:
				mid++
			}
		}
		return low, mid
	}
	for mid <= high {
		v := vals[mid]
		switch {
		case v < a:
			vals[low], vals[mid] = vals[mid], vals[low]
			rows[low], rows[mid] = rows[mid], rows[low]
			low++
			mid++
		case v >= b:
			vals[mid], vals[high] = vals[high], vals[mid]
			rows[mid], rows[high] = rows[high], rows[mid]
			high--
		default:
			mid++
		}
	}
	return low, mid
}

// parallelCrack is the refined partition & merge algorithm of Figure 4
// (Pirk et al., DaMoN 2014): the to-be-cracked piece is sliced across
// workers goroutines, each partitions its slice out-of-place with the
// vectorized kernel, and the per-slice halves are merged back so that all
// values < pivot form a prefix. The concentric slice layout of the
// original is replaced by contiguous slices plus an explicit merge copy
// (identical output and parallel structure; see DESIGN.md §3).
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func (c *Column) parallelCrack(vals []int64, rows []uint32, lo, hi int, pivot int64, workers int) int {
	n := hi - lo
	if workers > n {
		workers = n
	}
	scratchV, scratchR := c.getScratch(n, rows != nil)
	defer c.putScratch(scratchV, scratchR)

	// Phase 1: partition each slice into scratch (same offsets).
	mids := make([]int, workers) // count of < pivot per slice
	starts := make([]int, workers+1)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		s := w * chunk
		if s > n {
			s = n
		}
		starts[w] = s
	}
	starts[workers] = n

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		s, e := starts[w], starts[w+1]
		if s >= e {
			continue
		}
		wg.Add(1)
		go func(w, s, e int) {
			defer wg.Done()
			head, tail := s, e-1
			if rows == nil {
				for i := lo + s; i < lo+e; i++ {
					v := vals[i]
					if v < pivot {
						scratchV[head] = v
						head++
					} else {
						scratchV[tail] = v
						tail--
					}
				}
			} else {
				for i := lo + s; i < lo+e; i++ {
					v := vals[i]
					r := rows[i]
					if v < pivot {
						scratchV[head] = v
						scratchR[head] = r
						head++
					} else {
						scratchV[tail] = v
						scratchR[tail] = r
						tail--
					}
				}
			}
			mids[w] = head - s
		}(w, s, e)
	}
	wg.Wait()

	// Phase 2: merge. Compute destination offsets for each slice's two
	// halves, then copy both halves back concurrently.
	totalLeft := 0
	for _, m := range mids {
		totalLeft += m
	}
	leftOff := make([]int, workers)
	rightOff := make([]int, workers)
	accL, accR := 0, totalLeft
	for w := 0; w < workers; w++ {
		leftOff[w] = accL
		accL += mids[w]
		rightOff[w] = accR
		accR += (starts[w+1] - starts[w]) - mids[w]
	}
	for w := 0; w < workers; w++ {
		s, e := starts[w], starts[w+1]
		if s >= e {
			continue
		}
		wg.Add(1)
		go func(w, s, e int) {
			defer wg.Done()
			m := mids[w]
			copy(vals[lo+leftOff[w]:], scratchV[s:s+m])
			copy(vals[lo+rightOff[w]:], scratchV[s+m:e])
			if rows != nil {
				copy(rows[lo+leftOff[w]:], scratchR[s:s+m])
				copy(rows[lo+rightOff[w]:], scratchR[s+m:e])
			}
		}(w, s, e)
	}
	wg.Wait()
	return lo + totalLeft
}

// partition cracks vals[lo:hi] at pivot using the configured kernel and
// the user-query thread budget. Caller holds the piece's write latch.
//
//holistic:noalloc
func (c *Column) partition(lo, hi int, pivot int64) int {
	return c.partitionWith(lo, hi, pivot, c.cfg.ParallelWorkers)
}

// partitionWith cracks vals[lo:hi] at pivot with an explicit thread
// budget; holistic refinement passes its own (RefineWorkers).
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func (c *Column) partitionWith(lo, hi int, pivot int64, workers int) int {
	n := hi - lo
	if n == 0 {
		return lo
	}
	if len(c.payloads) > 0 {
		return crackInTwoSideways(c.vals, c.rows, c.payloads, lo, hi, pivot)
	}
	if workers > 1 && n >= c.cfg.MinParallelPiece {
		return c.parallelCrack(c.vals, c.rows, lo, hi, pivot, workers)
	}
	switch c.cfg.Kernel {
	case KernelVectorized:
		sv, sr := c.getScratch(n, c.rows != nil)
		mid := crackInTwoVectorized(c.vals, sv, c.rows, sr, lo, hi, pivot)
		c.putScratch(sv, sr)
		return mid
	default:
		return crackInTwoInPlace(c.vals, c.rows, lo, hi, pivot)
	}
}
