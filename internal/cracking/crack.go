package cracking

import "math"

// Range is the result of a range select on a cracker column: after the
// necessary cracks, all qualifying values (lo <= v < hi) occupy the
// contiguous positions [Start, End). ExactLo/ExactHi report whether the
// respective bound already existed in the cracker index (an "exact hit"
// — the query needed no physical reorganization for that bound), which
// feeds the fIh statistic of strategy W3.
type Range struct {
	Start, End       int
	ExactLo, ExactHi bool
}

// Count returns the number of qualifying tuples — available without any
// data access, one of the core payoffs of cracking.
func (r Range) Count() int { return r.End - r.Start }

// ExactHit reports whether the query was answered entirely from the
// existing cracker index, with no physical reorganization.
func (r Range) ExactHit() bool { return r.ExactLo && r.ExactHi }

// crackResult reports the outcome of establishing one boundary.
type crackResult struct {
	pos   int  // position of the first value >= the pivot
	exact bool // the boundary already existed
}

// minStochasticPiece is the smallest piece on which a stochastic
// auxiliary crack is worthwhile; below this the piece is cheap to scan
// anyway and the extra boundary is pure overhead.
const minStochasticPiece = 1024

// CrackAt establishes a boundary at value v as a user query would (block
// on the piece latch) and returns its position. After it returns, every
// value < v is stored before pos and every value >= v at or after pos.
func (c *Column) CrackAt(v int64) (pos int, exact bool) {
	c.global.RLock()
	defer c.global.RUnlock()
	res, _ := c.crackAt(v, true, c.cfg.Stochastic)
	return res.pos, res.exact
}

// crackAt implements CrackAt. block selects user-query semantics (wait on
// the piece latch); with block=false the latch is try-acquired and
// ok=false returned on contention (holistic-worker semantics, Figure 3).
// stochastic adds one auxiliary random crack inside the target piece.
// The caller must hold c.global shared.
func (c *Column) crackAt(v int64, block, stochastic bool) (res crackResult, ok bool) {
	for {
		c.mu.RLock()
		key, p, _, _ := c.pieceSpanLocked(v)
		c.mu.RUnlock()
		if key == v {
			return crackResult{pos: p.start, exact: true}, true
		}
		if block {
			p.latch.Lock()
		} else if !p.latch.TryLock() {
			return crackResult{}, false
		}
		// Revalidate: the piece may have been cracked between the lookup
		// and latch acquisition. Any split that matters to v moves v into
		// a different piece (different tree node); a split to the right
		// of v keeps p but shrinks its end, which the re-read reflects.
		c.mu.RLock()
		key2, p2, end, nextKey := c.pieceSpanLocked(v)
		c.mu.RUnlock()
		if p2 != p || key2 != key {
			p.latch.Unlock()
			if key2 == v {
				// Someone cracked exactly at v while we waited.
				return crackResult{pos: p2.start, exact: true}, true
			}
			continue
		}

		lo, hi := p.start, end
		var preLocked *piece
		if stochastic && hi-lo >= minStochasticPiece {
			if r, okPivot := c.stochasticPivot(key, nextKey, v); okPivot {
				mid := c.partition(lo, hi, r)
				np := &piece{start: mid}
				if v > r {
					// The half we still need to crack belongs to the new
					// piece; pre-lock it before publishing so no other
					// thread can slip in.
					np.latch.Lock()
					preLocked = np
				}
				c.mu.Lock()
				c.tree.Insert(r, np)
				c.mu.Unlock()
				if v < r {
					hi = mid
				} else {
					lo = mid
				}
			}
		}
		mid := c.partition(lo, hi, v)
		c.mu.Lock()
		c.tree.Insert(v, &piece{start: mid})
		c.mu.Unlock()
		p.latch.Unlock()
		if preLocked != nil {
			preLocked.latch.Unlock()
		}
		return crackResult{pos: mid}, true
	}
}

// pieceSpanLocked returns the piece containing v, its lower-bound key,
// its end position and the key of the next boundary (math.MaxInt64 when
// none). Caller must hold mu.
func (c *Column) pieceSpanLocked(v int64) (key int64, p *piece, end int, nextKey int64) {
	key, pv, _ := c.tree.Floor(v)
	p = pv.(*piece)
	nextKey = math.MaxInt64
	if nk, nv, ok := c.tree.Successor(key); ok {
		end = nv.(*piece).start
		nextKey = nk
	} else {
		end = len(c.vals)
	}
	return key, p, end, nextKey
}

// stochasticPivot draws a random pivot strictly inside the piece's value
// span (loKey, hiKey), different from v. ok is false when the span is too
// narrow to be worth a crack.
func (c *Column) stochasticPivot(loKey, hiKey, v int64) (int64, bool) {
	lo, hi := loKey, hiKey
	if lo == sentinelKey {
		lo = c.domainLo
	}
	if hi == math.MaxInt64 {
		hi = c.domainHi + 1
	}
	if hi-lo < 4 {
		return 0, false
	}
	c.rngMu.Lock()
	r := lo + 1 + c.rng.Int63n(hi-lo-1)
	c.rngMu.Unlock()
	if r == v {
		r++
		if r >= hi {
			r = lo + 1
		}
		if r == v {
			return 0, false
		}
	}
	return r, true
}

// SelectRange cracks the column on [lo, hi) and returns the contiguous
// position range of qualifying values. This is the cracking select
// operator: the first query on a column pays O(N), later queries touch
// only the (ever smaller) pieces their bounds fall into.
//
// The returned positions stay valid until the next update merge
// (MergeInsert/MergeDelete). Queries that materialize results on columns
// receiving updates should use SelectSum/SelectValues/SelectRows, which
// pin the column across both steps.
func (c *Column) SelectRange(lo, hi int64) Range {
	c.global.RLock()
	defer c.global.RUnlock()
	return c.selectRangeLocked(lo, hi)
}

// selectRangeLocked implements SelectRange; caller holds c.global shared.
func (c *Column) selectRangeLocked(lo, hi int64) Range {
	if lo >= hi {
		return Range{}
	}

	// Crack-in-three fast path: both bounds fall into the same piece and
	// neither is an existing boundary — partition once instead of twice.
	// Skipped under stochastic cracking, which weaves its auxiliary crack
	// into the first bound's crack instead.
	if !c.cfg.Stochastic {
		for {
			c.mu.RLock()
			kLo, pLo, _, _ := c.pieceSpanLocked(lo)
			kHi, pHi, _, _ := c.pieceSpanLocked(hi)
			c.mu.RUnlock()
			if kLo == lo && kHi == hi {
				return Range{Start: pLo.start, End: pHi.start, ExactLo: true, ExactHi: true}
			}
			if pLo != pHi || kLo == lo || kHi == hi {
				break // different pieces or one bound exact: general path
			}
			pLo.latch.Lock()
			c.mu.RLock()
			kLo2, pLo2, endLo, _ := c.pieceSpanLocked(lo)
			_, pHi2, _, _ := c.pieceSpanLocked(hi)
			c.mu.RUnlock()
			if pLo2 != pLo || kLo2 != kLo || pHi2 != pLo {
				pLo.latch.Unlock()
				continue // piece changed while we waited; reassess
			}
			var m1, m2 int
			if len(c.payloads) > 0 {
				m1, m2 = crackInThreeSideways(c.vals, c.rows, c.payloads, pLo.start, endLo, lo, hi)
			} else {
				m1, m2 = crackInThree(c.vals, c.rows, pLo.start, endLo, lo, hi)
			}
			c.mu.Lock()
			c.tree.Insert(lo, &piece{start: m1})
			c.tree.Insert(hi, &piece{start: m2})
			c.mu.Unlock()
			pLo.latch.Unlock()
			return Range{Start: m1, End: m2}
		}
	}

	rLo, _ := c.crackAt(lo, true, c.cfg.Stochastic)
	rHi, _ := c.crackAt(hi, true, false)
	return Range{Start: rLo.pos, End: rHi.pos, ExactLo: rLo.exact, ExactHi: rHi.exact}
}

// PieceSpan returns the value range [lo, hi) covered by the piece that
// value v currently falls into (math.MinInt64 / math.MaxInt64 at the open
// ends). Holistic workers use it to find the pending updates their pivot's
// piece is responsible for (Section 4.2, Updates).
func (c *Column) PieceSpan(v int64) (lo, hi int64) {
	c.global.RLock()
	defer c.global.RUnlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	key, _, _, nextKey := c.pieceSpanLocked(v)
	return key, nextKey
}

// LookupRange returns the position range for [lo, hi) without cracking,
// with ok=false unless both bounds are existing boundaries. Used to probe
// for exact hits without physical work.
func (c *Column) LookupRange(lo, hi int64) (Range, bool) {
	c.global.RLock()
	defer c.global.RUnlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	pLo, okLo := c.tree.Get(lo)
	pHi, okHi := c.tree.Get(hi)
	if !okLo || !okHi {
		return Range{}, false
	}
	return Range{
		Start:   pLo.(*piece).start,
		End:     pHi.(*piece).start,
		ExactLo: true,
		ExactHi: true,
	}, true
}

// SelectSum cracks on [lo, hi) and sums the qualifying values, all under
// one column pin so concurrent update merges cannot shift positions
// between the two steps.
func (c *Column) SelectSum(lo, hi int64) (Range, int64) {
	c.global.RLock()
	defer c.global.RUnlock()
	r := c.selectRangeLocked(lo, hi)
	var s int64
	c.forEachSegmentLocked(r.Start, r.End, func(vals []int64, _ []uint32) {
		for _, v := range vals {
			s += v
		}
	})
	return r, s
}

// SelectMinMax cracks on [lo, hi) and returns the smallest and largest
// qualifying value (meaningful only when the returned range is
// non-empty), under one column pin like SelectSum.
func (c *Column) SelectMinMax(lo, hi int64) (Range, int64, int64) {
	c.global.RLock()
	defer c.global.RUnlock()
	r := c.selectRangeLocked(lo, hi)
	var mn, mx int64
	n := 0
	c.forEachSegmentLocked(r.Start, r.End, func(vals []int64, _ []uint32) {
		for _, v := range vals {
			if n == 0 || v < mn {
				mn = v
			}
			if n == 0 || v > mx {
				mx = v
			}
			n++
		}
	})
	return r, mn, mx
}

// SelectValues cracks on [lo, hi) and materializes the qualifying values.
func (c *Column) SelectValues(lo, hi int64) (Range, []int64) {
	c.global.RLock()
	defer c.global.RUnlock()
	r := c.selectRangeLocked(lo, hi)
	out := make([]int64, 0, r.Count())
	c.forEachSegmentLocked(r.Start, r.End, func(vals []int64, _ []uint32) {
		out = append(out, vals...)
	})
	return r, out
}

// SelectRows cracks on [lo, hi) and materializes the qualifying rowids
// (nil when the column was built without rowids). The rowids feed project
// operators for late tuple reconstruction.
func (c *Column) SelectRows(lo, hi int64) (Range, []uint32) {
	c.global.RLock()
	defer c.global.RUnlock()
	r := c.selectRangeLocked(lo, hi)
	if c.rows == nil {
		return r, nil
	}
	out := make([]uint32, 0, r.Count())
	c.forEachSegmentLocked(r.Start, r.End, func(_ []int64, rows []uint32) {
		out = append(out, rows...)
	})
	return r, out
}

// SelectRowsFunc cracks on [lo, hi) and streams the qualifying rowids
// to fn segment by segment under the owning pieces' read latches,
// without materializing a position list — the zero-allocation feed of
// the bitmap select path. fn must not retain the slice. ok is false
// (and fn is never called) when the column was built without rowids.
func (c *Column) SelectRowsFunc(lo, hi int64, fn func(rows []uint32)) (Range, bool) {
	c.global.RLock()
	defer c.global.RUnlock()
	r := c.selectRangeLocked(lo, hi)
	if c.rows == nil {
		return r, false
	}
	c.forEachSegmentLocked(r.Start, r.End, func(_ []int64, rows []uint32) {
		fn(rows)
	})
	return r, true
}

// ForEachSegment invokes fn on consecutive stable sub-segments covering
// positions [start, end), each passed under the owning piece's read
// latch. fn receives aliased slices and must not retain them. Positions
// must come from a select on this column with no intervening update
// merge.
func (c *Column) ForEachSegment(start, end int, fn func(vals []int64, rows []uint32)) {
	c.global.RLock()
	defer c.global.RUnlock()
	c.forEachSegmentLocked(start, end, fn)
}

// forEachSegmentLocked implements ForEachSegment; caller holds c.global
// shared.
func (c *Column) forEachSegmentLocked(start, end int, fn func(vals []int64, rows []uint32)) {
	c.forEachSpanLocked(start, end, func(pos, seg int) {
		if c.rows != nil {
			fn(c.vals[pos:seg], c.rows[pos:seg])
		} else {
			fn(c.vals[pos:seg], nil)
		}
	})
}

// forEachSpanLocked walks the stable position spans covering [start,
// end), invoking fn under each owning piece's read latch. Caller holds
// c.global shared.
func (c *Column) forEachSpanLocked(start, end int, fn func(pos, seg int)) {
	pos := start
	for pos < end {
		c.mu.RLock()
		p, _ := c.pieceByPosLocked(pos)
		c.mu.RUnlock()
		p.latch.RLock()
		// Revalidate under the latch: p may have been split while we
		// acquired it. If pos now belongs to a different piece, retry;
		// the re-read end is stable while we hold the read latch
		// (splitters need the write latch).
		c.mu.RLock()
		p2, pend := c.pieceByPosLocked(pos)
		c.mu.RUnlock()
		if p2 != p {
			p.latch.RUnlock()
			continue
		}
		seg := pend
		if end < seg {
			seg = end
		}
		if seg > pos {
			fn(pos, seg)
		}
		p.latch.RUnlock()
		if seg <= pos {
			// Degenerate empty piece; step past it to avoid spinning.
			pos++
			continue
		}
		pos = seg
	}
}

// SelectPayloads cracks on [lo, hi) and streams the qualifying block to
// fn, one stable segment at a time, with every payload column aligned to
// the values — the sideways-cracking read path: aggregation over the
// result is a tight loop over contiguous arrays, no rowid gather. fn must
// not retain the slices. The whole operation runs under one column pin.
func (c *Column) SelectPayloads(lo, hi int64, fn func(vals []int64, payloads [][]int64)) Range {
	c.global.RLock()
	defer c.global.RUnlock()
	r := c.selectRangeLocked(lo, hi)
	views := make([][]int64, len(c.payloads))
	c.forEachSpanLocked(r.Start, r.End, func(pos, seg int) {
		for i, p := range c.payloads {
			views[i] = p[pos:seg]
		}
		fn(c.vals[pos:seg], views)
	})
	return r
}

// MaterializeValues copies the values at positions [start, end) into a
// fresh slice, latching piece by piece.
func (c *Column) MaterializeValues(start, end int) []int64 {
	out := make([]int64, 0, end-start)
	c.ForEachSegment(start, end, func(vals []int64, _ []uint32) {
		out = append(out, vals...)
	})
	return out
}

// MaterializeRows copies the rowids at positions [start, end); it returns
// nil when the column was built without rowids.
func (c *Column) MaterializeRows(start, end int) []uint32 {
	if c.rows == nil {
		return nil
	}
	out := make([]uint32, 0, end-start)
	c.ForEachSegment(start, end, func(_ []int64, rows []uint32) {
		out = append(out, rows...)
	})
	return out
}

// ForEachPiece walks the whole column piece by piece in ascending key
// order, invoking fn under each piece's read latch with the piece's
// values and rowids (nil when the column carries none). Pieces are
// value-disjoint and ordered — every value of an earlier piece is
// strictly below every value of a later one — so the stream is a
// key-clustered partition of the column: the access path of sort-based
// (index-clustered) grouping, which aggregates each piece with a small
// local accumulator and emits groups in key order with no global hash
// table. Values inside one piece are unordered. fn receives aliased
// slices and must not retain them. Concurrent refinement may split a
// piece mid-walk, in which case its halves are streamed separately —
// still disjoint, still ascending.
func (c *Column) ForEachPiece(fn func(vals []int64, rows []uint32)) {
	c.global.RLock()
	defer c.global.RUnlock()
	c.forEachSpanLocked(0, len(c.vals), func(pos, seg int) {
		if c.rows != nil {
			fn(c.vals[pos:seg], c.rows[pos:seg])
		} else {
			fn(c.vals[pos:seg], nil)
		}
	})
}

// SumRange sums the values at positions [start, end) under piece latches.
func (c *Column) SumRange(start, end int) int64 {
	var s int64
	c.ForEachSegment(start, end, func(vals []int64, _ []uint32) {
		for _, v := range vals {
			s += v
		}
	})
	return s
}

// RefineOutcome reports what a holistic refinement attempt achieved.
type RefineOutcome int

const (
	// RefineDone: the piece was cracked; one new boundary exists.
	RefineDone RefineOutcome = iota
	// RefineExact: the pivot already was a boundary; nothing to do.
	RefineExact
	// RefineBusy: the piece latch was held; the worker should re-roll a
	// different random pivot rather than wait (Figure 3).
	RefineBusy
	// RefineSmall: the piece is already at or below the optimal piece
	// size; cracking it further would add administration cost for no
	// scan benefit (Section 4.1, "Optimal Index").
	RefineSmall
)

// String names the outcome for logs and test failures.
func (o RefineOutcome) String() string {
	switch o {
	case RefineDone:
		return "done"
	case RefineExact:
		return "exact"
	case RefineBusy:
		return "busy"
	case RefineSmall:
		return "small"
	default:
		return "unknown"
	}
}

// TryRefineAt attempts one holistic index-refinement action: crack the
// piece containing v at pivot v, without ever blocking a user query.
// minPiece is the optimal piece size (|L1| in values); pieces at or below
// it are left alone.
func (c *Column) TryRefineAt(v int64, minPiece int) RefineOutcome {
	c.global.RLock()
	defer c.global.RUnlock()

	c.mu.RLock()
	key, p, end, _ := c.pieceSpanLocked(v)
	c.mu.RUnlock()
	if key == v {
		return RefineExact
	}
	if end-p.start <= minPiece {
		return RefineSmall
	}
	if !p.latch.TryLock() {
		return RefineBusy
	}
	// Revalidate under the latch.
	c.mu.RLock()
	key2, p2, end2, _ := c.pieceSpanLocked(v)
	c.mu.RUnlock()
	if p2 != p || key2 != key {
		p.latch.Unlock()
		return RefineBusy
	}
	if end2-p.start <= minPiece {
		p.latch.Unlock()
		return RefineSmall
	}
	workers := c.cfg.RefineWorkers
	if workers < 1 {
		workers = 1
	}
	mid := c.partitionWith(p.start, end2, v, workers)
	c.mu.Lock()
	c.tree.Insert(v, &piece{start: mid})
	c.mu.Unlock()
	p.latch.Unlock()
	return RefineDone
}
