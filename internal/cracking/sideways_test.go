package cracking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"holistic/internal/column"
)

// newSidewaysFixture builds a sideways cracker whose two payloads are
// derived from the base values (p0 = v*2, p1 = -v), so lockstep
// violations are detectable from any segment.
func newSidewaysFixture(t *testing.T, n int, seed int64, cfg Config) (*Column, []int64) {
	t.Helper()
	base := randVals(n, seed, 1<<20)
	p0 := make([]int64, n)
	p1 := make([]int64, n)
	for i, v := range base {
		p0[i] = v * 2
		p1[i] = -v
	}
	return NewSideways("a", base, []string{"p0", "p1"}, [][]int64{p0, p1}, cfg), base
}

// checkAligned verifies payload/value lockstep on a streamed segment.
func checkAligned(t *testing.T, vals []int64, payloads [][]int64) {
	t.Helper()
	for i, v := range vals {
		if payloads[0][i] != v*2 || payloads[1][i] != -v {
			t.Fatalf("payloads out of lockstep at offset %d: v=%d p0=%d p1=%d",
				i, v, payloads[0][i], payloads[1][i])
		}
	}
}

func TestSidewaysSelectPayloads(t *testing.T) {
	c, base := newSidewaysFixture(t, 20_000, 71, Config{})
	rng := rand.New(rand.NewSource(72))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		seen := 0
		r := c.SelectPayloads(lo, hi, func(vals []int64, payloads [][]int64) {
			checkAligned(t, vals, payloads)
			for _, v := range vals {
				if v < lo || v >= hi {
					t.Fatalf("value %d outside [%d,%d)", v, lo, hi)
				}
			}
			seen += len(vals)
		})
		if want := column.CountRange(base, lo, hi); seen != want || r.Count() != want {
			t.Fatalf("query %d: streamed %d values, range %d, want %d", q, seen, r.Count(), want)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSidewaysPayloadNames(t *testing.T) {
	c, _ := newSidewaysFixture(t, 100, 73, Config{})
	names := c.PayloadNames()
	if len(names) != 2 || names[0] != "p0" || names[1] != "p1" {
		t.Fatalf("PayloadNames() = %v", names)
	}
}

func TestSidewaysSizeBytes(t *testing.T) {
	c, _ := newSidewaysFixture(t, 100, 74, Config{})
	// base 100*8 + two payloads 100*8 each.
	if got := c.SizeBytes(); got != 3*100*8 {
		t.Fatalf("SizeBytes() = %d, want %d", got, 3*100*8)
	}
}

func TestSidewaysMismatchedPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched payload length did not panic")
		}
	}()
	NewSideways("a", make([]int64, 10), []string{"p"}, [][]int64{make([]int64, 5)}, Config{})
}

func TestSidewaysNameCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("name/column count mismatch did not panic")
		}
	}()
	NewSideways("a", make([]int64, 10), []string{"p", "q"}, [][]int64{make([]int64, 10)}, Config{})
}

func TestSidewaysRippleInsertDelete(t *testing.T) {
	c, _ := newSidewaysFixture(t, 5_000, 75, Config{})
	c.CrackAt(1 << 18)
	c.CrackAt(1 << 19)

	c.MergeInsertSideways(12345, 0, []int64{24690, -12345})
	found := false
	c.SelectPayloads(12345, 12346, func(vals []int64, payloads [][]int64) {
		checkAligned(t, vals, payloads)
		found = true
	})
	if !found {
		t.Fatal("inserted sideways tuple not found")
	}
	if _, ok := c.MergeDelete(12345); !ok {
		t.Fatal("delete of inserted tuple failed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remaining data still aligned.
	c.SelectPayloads(0, 1<<20, func(vals []int64, payloads [][]int64) {
		checkAligned(t, vals, payloads)
	})
}

func TestSidewaysMergeInsertDefaultsZeroPayload(t *testing.T) {
	c, _ := newSidewaysFixture(t, 100, 76, Config{})
	c.MergeInsert(42, 0)
	got := false
	c.SelectPayloads(42, 43, func(vals []int64, payloads [][]int64) {
		for i, v := range vals {
			if v == 42 && payloads[0][i] == 0 && payloads[1][i] == 0 {
				got = true
			}
		}
	})
	if !got {
		t.Fatal("zero-payload insert not observed")
	}
}

func TestSidewaysRefinementKeepsLockstep(t *testing.T) {
	c, _ := newSidewaysFixture(t, 50_000, 77, Config{})
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 200; i++ {
		c.TryRefineAt(rng.Int63n(1<<20), 64)
	}
	c.SelectPayloads(0, 1<<20, func(vals []int64, payloads [][]int64) {
		checkAligned(t, vals, payloads)
	})
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSidewaysLockstepUnderQueries(t *testing.T) {
	check := func(seed int64, bounds []uint32) bool {
		n := 2000
		base := randVals(n, seed, 1<<20)
		p0 := make([]int64, n)
		for i, v := range base {
			p0[i] = v + 7
		}
		c := NewSideways("q", base, []string{"p"}, [][]int64{p0}, Config{})
		for i := 0; i+1 < len(bounds); i += 2 {
			lo, hi := int64(bounds[i]%(1<<20)), int64(bounds[i+1]%(1<<20))
			if lo > hi {
				lo, hi = hi, lo
			}
			okAligned := true
			c.SelectPayloads(lo, hi+1, func(vals []int64, payloads [][]int64) {
				for k, v := range vals {
					if payloads[0][k] != v+7 {
						okAligned = false
					}
				}
			})
			if !okAligned {
				return false
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
