package cracking

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// checkPartition verifies the crack-in-two post-condition on vals[lo:hi]:
// values < pivot occupy [lo, mid), values >= pivot occupy [mid, hi).
func checkPartition(t *testing.T, vals []int64, lo, hi, mid int, pivot int64) {
	t.Helper()
	if mid < lo || mid > hi {
		t.Fatalf("mid %d outside [%d, %d]", mid, lo, hi)
	}
	for i := lo; i < mid; i++ {
		if vals[i] >= pivot {
			t.Fatalf("vals[%d] = %d >= pivot %d on the left side", i, vals[i], pivot)
		}
	}
	for i := mid; i < hi; i++ {
		if vals[i] < pivot {
			t.Fatalf("vals[%d] = %d < pivot %d on the right side", i, vals[i], pivot)
		}
	}
}

// multiset returns a sorted copy for permutation comparison.
func multiset(vals []int64) []int64 {
	out := append([]int64(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSlices(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randVals(n int, seed int64, domain int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(domain)
	}
	return vals
}

func TestCrackInTwoInPlace(t *testing.T) {
	vals := randVals(1000, 1, 100)
	before := multiset(vals)
	mid := crackInTwoInPlace(vals, nil, 0, len(vals), 50)
	checkPartition(t, vals, 0, len(vals), mid, 50)
	if !equalSlices(before, multiset(vals)) {
		t.Fatal("partition changed the multiset of values")
	}
}

func TestCrackInTwoInPlaceWithRows(t *testing.T) {
	vals := randVals(500, 2, 100)
	rows := make([]uint32, len(vals))
	orig := append([]int64(nil), vals...)
	for i := range rows {
		rows[i] = uint32(i)
	}
	mid := crackInTwoInPlace(vals, rows, 0, len(vals), 42)
	checkPartition(t, vals, 0, len(vals), mid, 42)
	for i, r := range rows {
		if orig[r] != vals[i] {
			t.Fatalf("row %d points at %d but value is %d: rows not in lockstep", r, orig[r], vals[i])
		}
	}
}

func TestCrackInTwoSubrange(t *testing.T) {
	vals := randVals(1000, 3, 100)
	snapshot := append([]int64(nil), vals...)
	lo, hi := 200, 700
	mid := crackInTwoInPlace(vals, nil, lo, hi, 55)
	checkPartition(t, vals, lo, hi, mid, 55)
	// Outside the subrange nothing may change.
	for i := 0; i < lo; i++ {
		if vals[i] != snapshot[i] {
			t.Fatalf("vals[%d] changed outside cracked range", i)
		}
	}
	for i := hi; i < len(vals); i++ {
		if vals[i] != snapshot[i] {
			t.Fatalf("vals[%d] changed outside cracked range", i)
		}
	}
}

func TestCrackInTwoEdgePivots(t *testing.T) {
	vals := randVals(256, 4, 100)
	if mid := crackInTwoInPlace(append([]int64(nil), vals...), nil, 0, len(vals), -1); mid != 0 {
		t.Errorf("pivot below domain: mid = %d, want 0", mid)
	}
	if mid := crackInTwoInPlace(append([]int64(nil), vals...), nil, 0, len(vals), 1000); mid != len(vals) {
		t.Errorf("pivot above domain: mid = %d, want %d", mid, len(vals))
	}
	if mid := crackInTwoInPlace(vals, nil, 5, 5, 50); mid != 5 {
		t.Errorf("empty range: mid = %d, want 5", mid)
	}
}

func TestCrackInTwoVectorized(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, vectorSize, vectorSize + 1, 3*vectorSize + 17} {
		vals := randVals(n, int64(n), 1000)
		before := multiset(vals)
		scratch := make([]int64, n)
		mid := crackInTwoVectorized(vals, scratch, nil, nil, 0, n, 500)
		checkPartition(t, vals, 0, n, mid, 500)
		if !equalSlices(before, multiset(vals)) {
			t.Fatalf("n=%d: vectorized partition changed the multiset", n)
		}
	}
}

func TestCrackInTwoVectorizedWithRows(t *testing.T) {
	n := 2*vectorSize + 100
	vals := randVals(n, 9, 1000)
	orig := append([]int64(nil), vals...)
	rows := make([]uint32, n)
	for i := range rows {
		rows[i] = uint32(i)
	}
	sv := make([]int64, n)
	sr := make([]uint32, n)
	mid := crackInTwoVectorized(vals, sv, rows, sr, 0, n, 333)
	checkPartition(t, vals, 0, n, mid, 333)
	for i, r := range rows {
		if orig[r] != vals[i] {
			t.Fatalf("rows out of lockstep at %d", i)
		}
	}
}

func TestVectorizedMatchesInPlaceSplit(t *testing.T) {
	// Both kernels must produce the same split position (the partition
	// itself may order values differently inside each side).
	vals1 := randVals(5000, 11, 1<<20)
	vals2 := append([]int64(nil), vals1...)
	scratch := make([]int64, len(vals1))
	pivot := int64(1 << 19)
	m1 := crackInTwoInPlace(vals1, nil, 0, len(vals1), pivot)
	m2 := crackInTwoVectorized(vals2, scratch, nil, nil, 0, len(vals2), pivot)
	if m1 != m2 {
		t.Fatalf("split positions differ: in-place %d vs vectorized %d", m1, m2)
	}
}

func TestCrackInThree(t *testing.T) {
	vals := randVals(3000, 12, 1000)
	before := multiset(vals)
	a, b := int64(300), int64(700)
	m1, m2 := crackInThree(vals, nil, 0, len(vals), a, b)
	if m1 > m2 {
		t.Fatalf("m1 %d > m2 %d", m1, m2)
	}
	for i := 0; i < m1; i++ {
		if vals[i] >= a {
			t.Fatalf("vals[%d] = %d >= %d in first region", i, vals[i], a)
		}
	}
	for i := m1; i < m2; i++ {
		if vals[i] < a || vals[i] >= b {
			t.Fatalf("vals[%d] = %d outside [%d, %d) in middle region", i, vals[i], a, b)
		}
	}
	for i := m2; i < len(vals); i++ {
		if vals[i] < b {
			t.Fatalf("vals[%d] = %d < %d in last region", i, vals[i], b)
		}
	}
	if !equalSlices(before, multiset(vals)) {
		t.Fatal("crack-in-three changed the multiset")
	}
}

func TestCrackInThreeWithRows(t *testing.T) {
	vals := randVals(1000, 13, 100)
	orig := append([]int64(nil), vals...)
	rows := make([]uint32, len(vals))
	for i := range rows {
		rows[i] = uint32(i)
	}
	crackInThree(vals, rows, 0, len(vals), 30, 60)
	for i, r := range rows {
		if orig[r] != vals[i] {
			t.Fatalf("rows out of lockstep at %d", i)
		}
	}
}

func TestParallelCrack(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		c := New("a", nil, Config{ParallelWorkers: workers})
		vals := randVals(100_000, int64(workers), 1<<20)
		before := multiset(vals)
		pivot := int64(1 << 19)
		mid := c.parallelCrack(vals, nil, 0, len(vals), pivot, workers)
		checkPartition(t, vals, 0, len(vals), mid, pivot)
		if !equalSlices(before, multiset(vals)) {
			t.Fatalf("workers=%d: parallel crack changed the multiset", workers)
		}
	}
}

func TestParallelCrackWithRowsAndSubrange(t *testing.T) {
	c := New("a", nil, Config{ParallelWorkers: 4})
	n := 50_000
	vals := randVals(n, 21, 1000)
	orig := append([]int64(nil), vals...)
	rows := make([]uint32, n)
	for i := range rows {
		rows[i] = uint32(i)
	}
	lo, hi := 1000, n-1000
	snapshot := append([]int64(nil), vals...)
	mid := c.parallelCrack(vals, rows, lo, hi, 500, 4)
	checkPartition(t, vals, lo, hi, mid, 500)
	for i := 0; i < lo; i++ {
		if vals[i] != snapshot[i] {
			t.Fatalf("vals[%d] changed outside range", i)
		}
	}
	for i := hi; i < n; i++ {
		if vals[i] != snapshot[i] {
			t.Fatalf("vals[%d] changed outside range", i)
		}
	}
	for i, r := range rows {
		if orig[r] != vals[i] {
			t.Fatalf("rows out of lockstep at %d", i)
		}
	}
}

func TestParallelCrackMoreWorkersThanValues(t *testing.T) {
	c := New("a", nil, Config{ParallelWorkers: 16})
	vals := []int64{5, 1, 9, 3}
	mid := c.parallelCrack(vals, nil, 0, len(vals), 4, 16)
	checkPartition(t, vals, 0, len(vals), mid, 4)
}

func TestQuickKernelsAgree(t *testing.T) {
	check := func(vals []int64, pivot int64) bool {
		if len(vals) == 0 {
			return true
		}
		v1 := append([]int64(nil), vals...)
		v2 := append([]int64(nil), vals...)
		v3 := append([]int64(nil), vals...)
		scratch := make([]int64, len(vals))
		c := New("q", nil, Config{ParallelWorkers: 3})
		m1 := crackInTwoInPlace(v1, nil, 0, len(v1), pivot)
		m2 := crackInTwoVectorized(v2, scratch, nil, nil, 0, len(v2), pivot)
		m3 := c.parallelCrack(v3, nil, 0, len(v3), pivot, 3)
		if m1 != m2 || m1 != m3 {
			return false
		}
		return equalSlices(multiset(vals), multiset(v1)) &&
			equalSlices(multiset(vals), multiset(v2)) &&
			equalSlices(multiset(vals), multiset(v3))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCrackInThreePostcondition(t *testing.T) {
	check := func(vals []int64, a, b int64) bool {
		if a > b {
			a, b = b, a
		}
		v := append([]int64(nil), vals...)
		m1, m2 := crackInThree(v, nil, 0, len(v), a, b)
		if m1 > m2 || m2 > len(v) {
			return false
		}
		for i := 0; i < m1; i++ {
			if v[i] >= a {
				return false
			}
		}
		for i := m1; i < m2; i++ {
			if v[i] < a || v[i] >= b {
				return false
			}
		}
		for i := m2; i < len(v); i++ {
			if v[i] < b {
				return false
			}
		}
		return equalSlices(multiset(vals), multiset(v))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
