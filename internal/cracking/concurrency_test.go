package cracking

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"holistic/internal/column"
)

// TestConcurrentQueriesSingleColumn races many goroutines issuing range
// selects against one cracker column and verifies every result count
// against a scan of the immutable base data. This exercises the piece
// latch protocol of Figure 3 (user-query side).
func TestConcurrentQueriesSingleColumn(t *testing.T) {
	base := randVals(100_000, 31, 1<<20)
	c := New("a", base, Config{})
	const goroutines = 8
	const queriesPer = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for q := 0; q < queriesPer; q++ {
				lo := rng.Int63n(1 << 20)
				hi := lo + rng.Int63n(1<<20-lo) + 1
				got := c.SelectRange(lo, hi).Count()
				want := column.CountRange(base, lo, hi)
				if got != want {
					errs <- "count mismatch under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQueriesRaceHolisticRefinement runs user queries concurrently with
// background refinement workers using try-latch semantics, the core
// concurrency scenario of holistic indexing (Figure 3).
func TestQueriesRaceHolisticRefinement(t *testing.T) {
	base := randVals(200_000, 32, 1<<20)
	c := New("a", base, Config{})
	stop := make(chan struct{})
	var refined, busy atomic.Int64
	var workers sync.WaitGroup
	for w := 0; w < 2; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pivot := rng.Int63n(1 << 20)
				switch c.TryRefineAt(pivot, 64) {
				case RefineDone:
					refined.Add(1)
				case RefineBusy:
					busy.Add(1)
				}
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 300; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		got := c.SelectRange(lo, hi).Count()
		want := column.CountRange(base, lo, hi)
		if got != want {
			close(stop)
			workers.Wait()
			t.Fatalf("query %d [%d,%d): got %d, want %d with workers racing", q, lo, hi, got, want)
		}
	}
	close(stop)
	workers.Wait()
	if refined.Load() == 0 {
		t.Error("background workers never refined anything")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("workers refined %d pieces (%d busy re-rolls), column has %d pieces",
		refined.Load(), busy.Load(), c.Pieces())
}

// TestConcurrentMaterializeStableResults checks that materialization under
// piece read latches returns exactly the qualifying multiset even while
// other goroutines crack the column.
func TestConcurrentMaterializeStableResults(t *testing.T) {
	base := randVals(100_000, 33, 1<<20)
	c := New("a", base, Config{})
	stop := make(chan struct{})
	var crackers sync.WaitGroup
	for w := 0; w < 2; w++ {
		crackers.Add(1)
		go func(w int) {
			defer crackers.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.TryRefineAt(rng.Int63n(1<<20), 16)
			}
		}(w)
	}
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		_, vals := c.SelectValues(lo, hi)
		want := column.CountRange(base, lo, hi)
		if len(vals) != want {
			close(stop)
			crackers.Wait()
			t.Fatalf("materialized %d values, want %d", len(vals), want)
		}
		for _, v := range vals {
			if v < lo || v >= hi {
				close(stop)
				crackers.Wait()
				t.Fatalf("materialized out-of-range value %d not in [%d,%d)", v, lo, hi)
			}
		}
	}
	close(stop)
	crackers.Wait()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCrackersManyColumns simulates the multi-column index space:
// queries and refiners hammer several columns concurrently.
func TestConcurrentCrackersManyColumns(t *testing.T) {
	const nCols = 4
	bases := make([][]int64, nCols)
	cols := make([]*Column, nCols)
	for i := range cols {
		bases[i] = randVals(30_000, int64(40+i), 1<<16)
		cols[i] = New("c", bases[i], Config{})
	}
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g * 31)))
			for q := 0; q < 60; q++ {
				i := rng.Intn(nCols)
				lo := rng.Int63n(1 << 16)
				hi := lo + rng.Int63n(1<<16-lo) + 1
				if g%2 == 0 {
					if cols[i].SelectRange(lo, hi).Count() != column.CountRange(bases[i], lo, hi) {
						fail <- "mismatch"
						return
					}
				} else {
					cols[i].TryRefineAt(lo, 32)
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	for f := range fail {
		t.Fatal(f)
	}
	for i, c := range cols {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("column %d: %v", i, err)
		}
	}
}
