package cracking

import "holistic/internal/avl"

// This file implements the Ripple algorithm of Idreos et al. ("Updating a
// Cracked Database", SIGMOD 2007), which the paper adopts for updates
// (Section 4.2, Updates; Section 5.7): a pending insertion is merged into
// the cracker column without destroying any partitioning information, by
// moving exactly one value per piece boundary that lies above the target
// piece. Both user queries and holistic workers trigger merges; holistic
// workers thereby "not only refine the adaptive indices in the background
// but also bring them more up to date".
//
// A merge is the one operation that moves existing piece boundaries, so
// it takes the column-level lock exclusively; all cracking, selection and
// refinement hold it shared. Merges are short (one value moved per
// boundary) and, in the paper's workloads, arrive in small batches, so
// the exclusive section is brief.

// boundariesAboveLocked returns the pieces whose boundary key is greater
// than key, in ascending key (= position) order. Caller must hold the
// column exclusively.
func (c *Column) boundariesAboveLocked(key int64) []*piece {
	var above []*piece
	c.tree.Ascend(func(k int64, pv avl.Value) bool {
		if k > key {
			above = append(above, pv.(*piece))
		}
		return true
	})
	return above
}

// MergeInsert inserts value v with rowid row into the cracked column,
// preserving all piece information. On sideways columns the payload
// values of the new tuple default to zero; use MergeInsertSideways to
// supply them.
func (c *Column) MergeInsert(v int64, row uint32) {
	c.MergeInsertSideways(v, row, nil)
}

// MergeInsertSideways is MergeInsert with explicit payload values for the
// inserted tuple (one per attached payload column; missing trailing
// values default to zero).
func (c *Column) MergeInsertSideways(v int64, row uint32, payload []int64) {
	c.global.Lock()
	defer c.global.Unlock()
	// The exclusive column lock shuts out all query/refinement paths, but
	// statistics accessors (Len, Pieces, AvgPieceSize, ...) read the
	// slice headers and piece boundaries under mu alone — so mutate them
	// under mu as well. Lock order global -> mu matches every other path.
	c.mu.Lock()
	defer c.mu.Unlock()

	// Locate the piece that must receive v.
	targetKey, _, _, _ := c.pieceSpanLocked(v)

	// Open a hole past the current end.
	c.vals = append(c.vals, 0)
	if c.rows != nil {
		c.rows = append(c.rows, 0)
	}
	for i := range c.payloads {
		c.payloads[i] = append(c.payloads[i], 0)
	}
	hole := len(c.vals) - 1

	// Ripple the hole down: for each boundary above the target (highest
	// first), move the first value of its piece into the hole and shift
	// the boundary right by one. Piece contents are preserved because
	// order inside a piece carries no information.
	above := c.boundariesAboveLocked(targetKey)
	for i := len(above) - 1; i >= 0; i-- {
		p := above[i]
		first := p.start
		c.vals[hole] = c.vals[first]
		if c.rows != nil {
			c.rows[hole] = c.rows[first]
		}
		for j := range c.payloads {
			c.payloads[j][hole] = c.payloads[j][first]
		}
		hole = first
		p.start++
	}

	c.vals[hole] = v
	if c.rows != nil {
		c.rows[hole] = row
	}
	for j := range c.payloads {
		var pv int64
		if j < len(payload) {
			pv = payload[j]
		}
		c.payloads[j][hole] = pv
	}
	if v < c.domainLo {
		c.domainLo = v
	}
	if v > c.domainHi {
		c.domainHi = v
	}
}

// MergeDelete removes one occurrence of value v from the cracked column,
// preserving all piece information, and reports whether it was present.
// The rowid of the removed tuple is returned when rowids are enabled.
// Which occurrence of a duplicated value disappears is unspecified; use
// MergeDeleteRow to target a specific tuple.
func (c *Column) MergeDelete(v int64) (row uint32, found bool) {
	return c.mergeDelete(v, 0, false)
}

// MergeDeleteRow removes the tuple (v, targetRow) from a rowid-carrying
// cracked column, keeping value-duplicate deletions consistent with
// row-level bookkeeping above. When the exact tuple is absent (or the
// column carries no rowids) it falls back to removing an unspecified
// occurrence of v, preserving multiset semantics.
func (c *Column) MergeDeleteRow(v int64, targetRow uint32) (row uint32, found bool) {
	return c.mergeDelete(v, targetRow, true)
}

func (c *Column) mergeDelete(v int64, targetRow uint32, byRow bool) (row uint32, found bool) {
	c.global.Lock()
	defer c.global.Unlock()
	c.mu.Lock() // see MergeInsertSideways for why
	defer c.mu.Unlock()

	targetKey, p, end, _ := c.pieceSpanLocked(v)
	// Linear search inside the target piece: pieces are unordered inside.
	victim := -1
	if byRow && c.rows != nil {
		for i := p.start; i < end; i++ {
			if c.vals[i] == v && c.rows[i] == targetRow {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		for i := p.start; i < end; i++ {
			if c.vals[i] == v {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		return 0, false
	}
	if c.rows != nil {
		row = c.rows[victim]
	}

	// Fill the victim slot with the last value of its piece; the hole is
	// now the piece's last slot.
	c.vals[victim] = c.vals[end-1]
	if c.rows != nil {
		c.rows[victim] = c.rows[end-1]
	}
	for j := range c.payloads {
		c.payloads[j][victim] = c.payloads[j][end-1]
	}
	hole := end - 1

	// Ripple the hole up: each piece above the target shifts left by one
	// by moving its last value into the hole at its (new) first slot and
	// decrementing its boundary. Ends are derived from the next piece's
	// original start, so they are computed before any boundary moves.
	above := c.boundariesAboveLocked(targetKey)
	ends := make([]int, len(above))
	for i := range above {
		if i+1 < len(above) {
			ends[i] = above[i+1].start
		} else {
			ends[i] = len(c.vals)
		}
	}
	for i, q := range above {
		qEnd := ends[i]
		c.vals[hole] = c.vals[qEnd-1]
		if c.rows != nil {
			c.rows[hole] = c.rows[qEnd-1]
		}
		for j := range c.payloads {
			c.payloads[j][hole] = c.payloads[j][qEnd-1]
		}
		hole = qEnd - 1
		q.start--
	}

	c.vals = c.vals[:len(c.vals)-1]
	if c.rows != nil {
		c.rows = c.rows[:len(c.rows)-1]
	}
	for j := range c.payloads {
		c.payloads[j] = c.payloads[j][:len(c.payloads[j])-1]
	}
	return row, true
}
