package cracking

import (
	"fmt"
	"math"
	"math/rand"

	"holistic/internal/avl"
)

// ExportedState is the physical state of a cracker column in a form the
// durable layer can serialize: the values (and rowids) in cracked
// physical order plus the piece-boundary table. Restoring it rebuilds
// the column by copying the arrays and re-inserting the boundaries —
// none of the cracking work is repeated.
type ExportedState struct {
	Vals   []int64
	Rows   []uint32 // nil when the column carries no rowids
	Keys   []int64  // piece lower-bound keys; Keys[0] is the sentinel
	Starts []uint32 // piece start offsets, parallel to Keys
}

// ExportState atomically captures the column's physical state. It takes
// the global latch exclusively, so no crack, select or merge is in
// flight while the arrays are copied.
func (c *Column) ExportState() ExportedState {
	c.global.Lock()
	defer c.global.Unlock()
	st := ExportedState{
		Vals: append([]int64(nil), c.vals...),
	}
	if c.rows != nil {
		st.Rows = append([]uint32(nil), c.rows...)
	}
	c.tree.Ascend(func(k int64, v avl.Value) bool {
		st.Keys = append(st.Keys, k)
		st.Starts = append(st.Starts, uint32(v.(*piece).start))
		return true
	})
	return st
}

// Restore rebuilds a cracker column from an exported state, taking
// ownership of the state's slices. The boundary table is validated
// against the same invariants CheckInvariants enforces; an inconsistent
// state (a corrupt or stale snapshot) is rejected so the caller can
// fall back to rebuilding an unrefined column from the base data.
func Restore(name string, st ExportedState, cfg Config) (*Column, error) {
	if cfg.MinParallelPiece == 0 {
		cfg.MinParallelPiece = 1 << 16
	}
	if cfg.ParallelWorkers < 1 {
		cfg.ParallelWorkers = 1
	}
	if len(st.Keys) == 0 || st.Keys[0] != sentinelKey || len(st.Keys) != len(st.Starts) || st.Starts[0] != 0 {
		return nil, fmt.Errorf("cracking: restore %s: missing or misplaced sentinel boundary", name)
	}
	if cfg.WithRows != (st.Rows != nil) || (st.Rows != nil && len(st.Rows) != len(st.Vals)) {
		return nil, fmt.Errorf("cracking: restore %s: rowid array mismatch", name)
	}
	c := &Column{
		name: name,
		tree: avl.New(),
		vals: st.Vals,
		rows: st.Rows,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range st.Keys {
		if i > 0 {
			if st.Keys[i] <= st.Keys[i-1] {
				return nil, fmt.Errorf("cracking: restore %s: boundary keys not increasing", name)
			}
			if st.Starts[i] < st.Starts[i-1] || int(st.Starts[i]) > len(st.Vals) {
				return nil, fmt.Errorf("cracking: restore %s: boundary positions not monotone", name)
			}
		}
		c.tree.Insert(st.Keys[i], &piece{start: int(st.Starts[i])})
	}
	c.domainLo, c.domainHi = int64(math.MaxInt64), int64(math.MinInt64)
	for _, v := range st.Vals {
		if v < c.domainLo {
			c.domainLo = v
		}
		if v > c.domainHi {
			c.domainHi = v
		}
	}
	if len(st.Vals) == 0 {
		c.domainLo, c.domainHi = 0, 0
	}
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("cracking: restore %s: %w", name, err)
	}
	return c, nil
}
