package cracking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"holistic/internal/column"
)

func TestSelectRangeMatchesScan(t *testing.T) {
	base := randVals(20_000, 5, 10_000)
	c := New("a", base, Config{})
	rng := rand.New(rand.NewSource(99))
	for q := 0; q < 200; q++ {
		lo := rng.Int63n(10_000)
		hi := lo + rng.Int63n(10_000-lo) + 1
		r := c.SelectRange(lo, hi)
		if got, want := r.Count(), column.CountRange(base, lo, hi); got != want {
			t.Fatalf("query %d [%d,%d): Count = %d, want %d", q, lo, hi, got, want)
		}
		vals := c.MaterializeValues(r.Start, r.End)
		for _, v := range vals {
			if v < lo || v >= hi {
				t.Fatalf("query %d: materialized value %d outside [%d,%d)", q, v, lo, hi)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRangeVectorizedKernel(t *testing.T) {
	base := randVals(20_000, 6, 10_000)
	c := New("a", base, Config{Kernel: KernelVectorized})
	rng := rand.New(rand.NewSource(98))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(10_000)
		hi := lo + rng.Int63n(10_000-lo) + 1
		if got, want := c.SelectRange(lo, hi).Count(), column.CountRange(base, lo, hi); got != want {
			t.Fatalf("query %d [%d,%d): Count = %d, want %d", q, lo, hi, got, want)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRangeStochastic(t *testing.T) {
	base := randVals(50_000, 7, 1<<20)
	c := New("a", base, Config{Stochastic: true, Seed: 3})
	rng := rand.New(rand.NewSource(97))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		if got, want := c.SelectRange(lo, hi).Count(), column.CountRange(base, lo, hi); got != want {
			t.Fatalf("query %d [%d,%d): Count = %d, want %d", q, lo, hi, got, want)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The stochastic variant must have cracked more pieces than the 2 per
	// query the plain variant would: auxiliary cracks add boundaries.
	if c.Pieces() <= 100 {
		t.Errorf("stochastic cracking produced only %d pieces over 100 queries", c.Pieces())
	}
}

func TestSelectRangeParallelKernel(t *testing.T) {
	base := randVals(200_000, 8, 1<<20)
	c := New("a", base, Config{ParallelWorkers: 4, MinParallelPiece: 1024})
	rng := rand.New(rand.NewSource(96))
	for q := 0; q < 50; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		if got, want := c.SelectRange(lo, hi).Count(), column.CountRange(base, lo, hi); got != want {
			t.Fatalf("query %d [%d,%d): Count = %d, want %d", q, lo, hi, got, want)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRangeExactHit(t *testing.T) {
	base := randVals(10_000, 9, 1000)
	c := New("a", base, Config{})
	r1 := c.SelectRange(100, 200)
	if r1.ExactHit() {
		t.Error("first query reported an exact hit on an uncracked column")
	}
	r2 := c.SelectRange(100, 200)
	if !r2.ExactHit() {
		t.Error("repeated query did not report an exact hit")
	}
	if r1.Start != r2.Start || r1.End != r2.End {
		t.Errorf("repeated query moved the range: %+v vs %+v", r1, r2)
	}
	// One-sided hit: lower bound exists, upper does not.
	r3 := c.SelectRange(100, 300)
	if !r3.ExactLo || r3.ExactHi {
		t.Errorf("one-sided hit misreported: %+v", r3)
	}
}

func TestSelectRangeEmptyAndInverted(t *testing.T) {
	base := randVals(1000, 10, 100)
	c := New("a", base, Config{})
	if r := c.SelectRange(50, 50); r.Count() != 0 {
		t.Errorf("empty range returned %d tuples", r.Count())
	}
	if r := c.SelectRange(60, 40); r.Count() != 0 {
		t.Errorf("inverted range returned %d tuples", r.Count())
	}
	if r := c.SelectRange(1000, 2000); r.Count() != 0 {
		t.Errorf("out-of-domain range returned %d tuples", r.Count())
	}
	if r := c.SelectRange(-100, 1000); r.Count() != 1000 {
		t.Errorf("whole-domain range returned %d tuples, want all", r.Count())
	}
}

func TestSelectRangeEmptyColumn(t *testing.T) {
	c := New("a", nil, Config{})
	if r := c.SelectRange(0, 10); r.Count() != 0 {
		t.Errorf("select on empty column returned %d", r.Count())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRangeDuplicateHeavy(t *testing.T) {
	// Every value is one of 3 distinct values: boundaries pile on the
	// same keys and many pieces are empty.
	base := make([]int64, 9999)
	for i := range base {
		base[i] = int64(i % 3)
	}
	c := New("a", base, Config{})
	for q := 0; q < 20; q++ {
		lo := int64(q % 4)
		hi := lo + int64(q%3) + 1
		if got, want := c.SelectRange(lo, hi).Count(), column.CountRange(base, lo, hi); got != want {
			t.Fatalf("[%d,%d): Count = %d, want %d", lo, hi, got, want)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCrackAtBoundaries(t *testing.T) {
	base := []int64{5, 2, 8, 1, 9, 3}
	c := New("a", base, Config{})
	pos, exact := c.CrackAt(5)
	if exact {
		t.Error("first CrackAt reported exact")
	}
	if pos != 3 { // values 2,1,3 are < 5
		t.Errorf("CrackAt(5) pos = %d, want 3", pos)
	}
	pos2, exact2 := c.CrackAt(5)
	if !exact2 || pos2 != pos {
		t.Errorf("repeat CrackAt(5) = %d,%v; want %d,true", pos2, exact2, pos)
	}
}

func TestLookupRange(t *testing.T) {
	base := randVals(1000, 11, 100)
	c := New("a", base, Config{})
	if _, ok := c.LookupRange(10, 20); ok {
		t.Error("LookupRange reported ok before any crack")
	}
	r := c.SelectRange(10, 20)
	got, ok := c.LookupRange(10, 20)
	if !ok {
		t.Fatal("LookupRange did not find cracked bounds")
	}
	if got.Start != r.Start || got.End != r.End {
		t.Errorf("LookupRange = %+v, want %+v", got, r)
	}
}

func TestMaterializeRowsLockstep(t *testing.T) {
	base := randVals(5000, 12, 500)
	c := New("a", base, Config{WithRows: true})
	r, rows := c.SelectRows(100, 300)
	if len(rows) != r.Count() {
		t.Fatalf("got %d rows for %d qualifying tuples", len(rows), r.Count())
	}
	for _, rowid := range rows {
		v := base[rowid]
		if v < 100 || v >= 300 {
			t.Fatalf("row %d has base value %d outside [100,300)", rowid, v)
		}
	}
	// All qualifying base rows must be present exactly once.
	seen := map[uint32]bool{}
	for _, rowid := range rows {
		if seen[rowid] {
			t.Fatalf("row %d returned twice", rowid)
		}
		seen[rowid] = true
	}
	if want := column.CountRange(base, 100, 300); len(rows) != want {
		t.Fatalf("row count %d, want %d", len(rows), want)
	}
}

func TestSelectSum(t *testing.T) {
	base := randVals(10_000, 13, 1000)
	c := New("a", base, Config{})
	_, sum := c.SelectSum(250, 750)
	if want := column.SumRange(base, 250, 750); sum != want {
		t.Fatalf("SelectSum = %d, want %d", sum, want)
	}
}

func TestSelectValuesSorted(t *testing.T) {
	base := randVals(10_000, 14, 1000)
	c := New("a", base, Config{})
	_, vals := c.SelectValues(100, 900)
	if want := column.CountRange(base, 100, 900); len(vals) != want {
		t.Fatalf("got %d values, want %d", len(vals), want)
	}
	if !equalSlices(multiset(vals), multiset(column.Project(base, column.ScanRange(base, 100, 900)))) {
		t.Fatal("SelectValues multiset differs from scan")
	}
}

func TestTryRefineAt(t *testing.T) {
	base := randVals(10_000, 15, 1<<20)
	c := New("a", base, Config{})
	if out := c.TryRefineAt(1<<19, 64); out != RefineDone {
		t.Fatalf("TryRefineAt on fresh column = %v, want done", out)
	}
	if out := c.TryRefineAt(1<<19, 64); out != RefineExact {
		t.Fatalf("repeat TryRefineAt = %v, want exact", out)
	}
	if c.Pieces() != 2 {
		t.Fatalf("Pieces() = %d, want 2", c.Pieces())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTryRefineAtSmallPiece(t *testing.T) {
	base := randVals(100, 16, 1000)
	c := New("a", base, Config{})
	if out := c.TryRefineAt(500, 1000); out != RefineSmall {
		t.Fatalf("TryRefineAt on piece below minPiece = %v, want small", out)
	}
	if c.Pieces() != 1 {
		t.Fatalf("small refinement still cracked: %d pieces", c.Pieces())
	}
}

func TestRefineOutcomeString(t *testing.T) {
	names := map[RefineOutcome]string{
		RefineDone: "done", RefineExact: "exact", RefineBusy: "busy",
		RefineSmall: "small", RefineOutcome(42): "unknown",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestPiecesGrowWithQueries(t *testing.T) {
	base := randVals(100_000, 17, 1<<30)
	c := New("a", base, Config{})
	prev := c.Pieces()
	if prev != 1 {
		t.Fatalf("fresh column has %d pieces, want 1", prev)
	}
	rng := rand.New(rand.NewSource(55))
	for q := 0; q < 50; q++ {
		lo := rng.Int63n(1 << 30)
		hi := lo + rng.Int63n(1<<30-lo) + 1
		c.SelectRange(lo, hi)
	}
	if c.Pieces() <= prev {
		t.Fatalf("pieces did not grow: %d", c.Pieces())
	}
	// Convergence: per-query touched data shrinks as pieces multiply.
	if avg := c.AvgPieceSize(); avg >= 100_000 {
		t.Fatalf("average piece size did not shrink: %f", avg)
	}
}

func TestQuickSelectMatchesScanAnyWorkload(t *testing.T) {
	type query struct {
		Lo, Hi uint16
	}
	check := func(seed int64, queries []query) bool {
		base := randVals(3000, seed, 1<<16)
		c := New("q", base, Config{})
		for _, q := range queries {
			lo, hi := int64(q.Lo), int64(q.Hi)
			if lo > hi {
				lo, hi = hi, lo
			}
			if c.SelectRange(lo, hi).Count() != column.CountRange(base, lo, hi) {
				return false
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSnapshotIsPermutation(t *testing.T) {
	check := func(seed int64, bounds []uint16) bool {
		base := randVals(2000, seed, 1<<16)
		c := New("q", base, Config{WithRows: true})
		for _, b := range bounds {
			c.CrackAt(int64(b))
		}
		snap := c.Snapshot()
		if !equalSlices(multiset(base), multiset(snap)) {
			return false
		}
		rows := c.SnapshotRows()
		for i, r := range rows {
			if base[r] != snap[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDomain(t *testing.T) {
	c := New("a", []int64{5, -3, 12, 0}, Config{})
	lo, hi := c.Domain()
	if lo != -3 || hi != 12 {
		t.Errorf("Domain() = %d,%d; want -3,12", lo, hi)
	}
	empty := New("e", nil, Config{})
	lo, hi = empty.Domain()
	if lo != 0 || hi != 0 {
		t.Errorf("empty Domain() = %d,%d; want 0,0", lo, hi)
	}
}

func TestSizeBytes(t *testing.T) {
	c := New("a", make([]int64, 100), Config{})
	if got := c.SizeBytes(); got != 800 {
		t.Errorf("SizeBytes() = %d, want 800", got)
	}
	cr := New("a", make([]int64, 100), Config{WithRows: true})
	if got := cr.SizeBytes(); got != 1200 {
		t.Errorf("SizeBytes() with rows = %d, want 1200", got)
	}
}
