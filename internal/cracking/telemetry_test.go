package cracking

import (
	"sync"
	"testing"
)

func TestPieceBounds(t *testing.T) {
	base := randVals(10_000, 81, 1000)
	c := New("a", base, Config{})
	pieces := c.PieceBounds()
	if len(pieces) != 1 {
		t.Fatalf("fresh column has %d pieces", len(pieces))
	}
	if pieces[0].Start != 0 || pieces[0].End != 10_000 {
		t.Fatalf("initial piece spans [%d,%d)", pieces[0].Start, pieces[0].End)
	}
	c.CrackAt(250)
	c.CrackAt(750)
	pieces = c.PieceBounds()
	if len(pieces) != 3 {
		t.Fatalf("got %d pieces after 2 cracks, want 3", len(pieces))
	}
	// Spans must tile the column and be key-ordered.
	for i := 1; i < len(pieces); i++ {
		if pieces[i].Start != pieces[i-1].End {
			t.Fatalf("pieces %d/%d do not tile: %+v %+v", i-1, i, pieces[i-1], pieces[i])
		}
		if pieces[i].LoKey <= pieces[i-1].LoKey {
			t.Fatal("piece keys not ascending")
		}
		if pieces[i-1].HiKey != pieces[i].LoKey {
			t.Fatal("piece key spans do not tile")
		}
	}
	total := 0
	for _, p := range pieces {
		total += p.Size()
	}
	if total != 10_000 {
		t.Fatalf("piece sizes sum to %d", total)
	}
}

// TestMergeRacesTelemetryAccessors is the regression test for the Ripple
// race: update merges mutate slice headers and piece boundaries, and must
// be visible as atomic to the mu-guarded statistics accessors that the
// daemon and strategies read concurrently (caught by -race).
func TestMergeRacesTelemetryAccessors(t *testing.T) {
	base := randVals(20_000, 82, 1000)
	c := New("a", base, Config{})
	for _, v := range []int64{100, 300, 500, 700, 900} {
		c.CrackAt(v)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c.AvgPieceSize() <= 0 {
					t.Error("AvgPieceSize went non-positive")
					return
				}
				_ = c.Len()
				_ = c.Pieces()
				_, _ = c.Domain()
				_ = c.SizeBytes()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		c.MergeInsert(int64(i%1000), 0)
		if i%5 == 0 {
			c.MergeDelete(int64(i % 1000))
		}
	}
	close(stop)
	readers.Wait()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStochasticWithRowsKeepsLockstep(t *testing.T) {
	base := randVals(50_000, 83, 1<<20)
	c := New("a", base, Config{Stochastic: true, WithRows: true, Seed: 9})
	for q := 0; q < 50; q++ {
		lo := int64(q * 20000 % (1 << 20))
		_, rows := c.SelectRows(lo, lo+10000)
		for _, r := range rows {
			v := base[r]
			if v < lo || v >= lo+10000 {
				t.Fatalf("row %d maps to out-of-range base value %d", r, v)
			}
		}
	}
	snap := c.Snapshot()
	srows := c.SnapshotRows()
	for i, r := range srows {
		if base[r] != snap[i] {
			t.Fatalf("rows out of lockstep at %d after stochastic cracking", i)
		}
	}
}
