package engine

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/holistic"
	"holistic/internal/workload"
)

func testTable(t *testing.T, attrs, rows int, domain int64) (*Table, [][]int64) {
	t.Helper()
	tbl := NewTable("R")
	bases := make([][]int64, attrs)
	for a := 0; a < attrs; a++ {
		bases[a] = workload.UniformColumn(rows, domain, int64(100+a))
		tbl.MustAddColumn(column.New(attrName(a), bases[a]))
	}
	return tbl, bases
}

func attrName(a int) string { return string(rune('A' + a)) }

func TestTableBasics(t *testing.T) {
	tbl := NewTable("R")
	if tbl.Rows() != 0 {
		t.Errorf("empty table Rows() = %d", tbl.Rows())
	}
	tbl.MustAddColumn(column.New("A", []int64{1, 2, 3}))
	if err := tbl.AddColumn(column.New("A", []int64{4, 5, 6})); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := tbl.AddColumn(column.New("B", []int64{1})); err == nil {
		t.Error("mismatched length accepted")
	}
	tbl.MustAddColumn(column.New("B", []int64{4, 5, 6}))
	if tbl.Rows() != 3 {
		t.Errorf("Rows() = %d, want 3", tbl.Rows())
	}
	names := tbl.ColumnNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("ColumnNames() = %v", names)
	}
	if tbl.Column("C") != nil {
		t.Error("Column(C) non-nil")
	}
}

// allExecutors builds one executor per mode over the same table. Cracking
// configurations carry rowids so the SelectRows form is answerable.
func allExecutors(t *testing.T, tbl *Table) []Executor {
	t.Helper()
	return []Executor{
		NewScanExecutor(tbl, 2),
		NewOfflineExecutor(tbl, 2),
		NewOnlineExecutor(tbl, 2, 20),
		NewAdaptiveExecutor(tbl, cracking.Config{WithRows: true}, ""),
		NewAdaptiveExecutor(tbl, cracking.Config{Stochastic: true, WithRows: true, Seed: 5}, "stochastic"),
		NewCCGIExecutor(tbl, 2, 8, cracking.Config{WithRows: true}),
		NewHolisticExecutor(tbl, HolisticConfig{
			Cracking: cracking.Config{WithRows: true},
			Daemon:   holistic.Config{Interval: time.Millisecond, Refinements: 4, Seed: 3},
			L1Values: 256,
			Contexts: 2,
		}),
	}
}

func TestAllModesAgreeWithScan(t *testing.T) {
	const domain = 1 << 16
	tbl, bases := testTable(t, 3, 20_000, domain)
	execs := allExecutors(t, tbl)
	defer func() {
		for _, e := range execs {
			e.Close()
		}
	}()
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 60; q++ {
		a := rng.Intn(3)
		lo := rng.Int63n(domain)
		hi := lo + rng.Int63n(domain-lo) + 1
		want := column.CountRange(bases[a], lo, hi)
		for _, e := range execs {
			got, err := e.Count(attrName(a), lo, hi)
			if err != nil {
				t.Fatalf("%s: %v", e.Label(), err)
			}
			if got != want {
				t.Fatalf("%s query %d [%d,%d) attr %s: got %d, want %d",
					e.Label(), q, lo, hi, attrName(a), got, want)
			}
		}
	}
}

// TestAllModesAggregatesAgreeWithScan is the executor-level differential
// test: every mode's Sum, MinMax and SelectRows must agree with the naive
// scan oracle on random range predicates.
func TestAllModesAggregatesAgreeWithScan(t *testing.T) {
	const domain = 1 << 16
	tbl, bases := testTable(t, 2, 20_000, domain)
	execs := allExecutors(t, tbl)
	defer func() {
		for _, e := range execs {
			e.Close()
		}
	}()
	rng := rand.New(rand.NewSource(21))
	for q := 0; q < 40; q++ {
		a := rng.Intn(2)
		lo := rng.Int63n(domain)
		hi := lo + rng.Int63n(domain-lo) + 1
		wantSum := column.SumRange(bases[a], lo, hi)
		wantMn, wantMx, wantN := column.MinMaxRange(bases[a], lo, hi)
		wantRows := column.ScanRange(bases[a], lo, hi)
		for _, e := range execs {
			sum, err := e.Sum(attrName(a), lo, hi)
			if err != nil {
				t.Fatalf("%s: Sum: %v", e.Label(), err)
			}
			if sum != wantSum {
				t.Fatalf("%s query %d [%d,%d): Sum = %d, want %d", e.Label(), q, lo, hi, sum, wantSum)
			}
			mn, mx, ok, err := e.MinMax(attrName(a), lo, hi)
			if err != nil {
				t.Fatalf("%s: MinMax: %v", e.Label(), err)
			}
			if ok != (wantN > 0) || (ok && (mn != wantMn || mx != wantMx)) {
				t.Fatalf("%s query %d [%d,%d): MinMax = (%d,%d,%v), want (%d,%d,%v)",
					e.Label(), q, lo, hi, mn, mx, ok, wantMn, wantMx, wantN > 0)
			}
			rows, err := e.SelectRows(attrName(a), lo, hi)
			if err != nil {
				t.Fatalf("%s: SelectRows: %v", e.Label(), err)
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
			if len(rows) != len(wantRows) {
				t.Fatalf("%s query %d [%d,%d): %d rows, want %d", e.Label(), q, lo, hi, len(rows), len(wantRows))
			}
			for i := range rows {
				if rows[i] != wantRows[i] {
					t.Fatalf("%s query %d: row[%d] = %d, want %d", e.Label(), q, i, rows[i], wantRows[i])
				}
			}
		}
	}
}

func TestSelectRowsWithoutRowidsErrors(t *testing.T) {
	tbl, _ := testTable(t, 1, 1_000, 1000)
	ad := NewAdaptiveExecutor(tbl, cracking.Config{}, "")
	defer ad.Close()
	if _, err := ad.SelectRows("A", 0, 100); err == nil {
		t.Error("adaptive without WithRows: SelectRows did not error")
	}
	cc := NewCCGIExecutor(tbl, 2, 4, cracking.Config{})
	defer cc.Close()
	if _, err := cc.SelectRows("A", 0, 100); err == nil {
		t.Error("ccgi without WithRows: SelectRows did not error")
	}
}

func TestUnknownAttributeErrors(t *testing.T) {
	tbl, _ := testTable(t, 1, 100, 1000)
	execs := allExecutors(t, tbl)
	defer func() {
		for _, e := range execs {
			e.Close()
		}
	}()
	for _, e := range execs {
		if _, err := e.Count("nope", 0, 10); err == nil {
			t.Errorf("%s: unknown attribute did not error on Count", e.Label())
		}
		if _, err := e.Sum("nope", 0, 10); err == nil {
			t.Errorf("%s: unknown attribute did not error on Sum", e.Label())
		}
		if _, _, _, err := e.MinMax("nope", 0, 10); err == nil {
			t.Errorf("%s: unknown attribute did not error on MinMax", e.Label())
		}
		if _, err := e.SelectRows("nope", 0, 10); err == nil {
			t.Errorf("%s: unknown attribute did not error on SelectRows", e.Label())
		}
	}
}

func TestOnlineExecutorSortsAfterEpoch(t *testing.T) {
	tbl, base := testTable(t, 1, 10_000, 1<<16)
	e := NewOnlineExecutor(tbl, 2, 5)
	defer e.Close()
	for q := 0; q < 5; q++ {
		if n, _ := e.Count("A", 0, 1000); n != column.CountRange(base[0], 0, 1000) {
			t.Fatal("pre-epoch count wrong")
		}
	}
	if len(e.sorted) != 0 {
		t.Fatal("sorted before epoch ended")
	}
	if n, _ := e.Count("A", 0, 1000); n != column.CountRange(base[0], 0, 1000) {
		t.Fatal("epoch-crossing count wrong")
	}
	if len(e.sorted) != 1 {
		t.Fatalf("sorted %d columns after epoch, want 1 (table has 1)", len(e.sorted))
	}
}

func TestOfflinePrepareAll(t *testing.T) {
	tbl, _ := testTable(t, 3, 5_000, 1<<16)
	e := NewOfflineExecutor(tbl, 2)
	e.PrepareAll()
	if len(e.sorted) != 3 {
		t.Fatalf("PrepareAll sorted %d columns, want 3", len(e.sorted))
	}
}

func TestAdaptiveExecutorCracksLazily(t *testing.T) {
	tbl, _ := testTable(t, 2, 10_000, 1<<16)
	e := NewAdaptiveExecutor(tbl, cracking.Config{}, "")
	defer e.Close()
	if e.CrackerIfExists("A") != nil {
		t.Fatal("cracker exists before any query")
	}
	e.Count("A", 100, 200)
	if e.CrackerIfExists("A") == nil {
		t.Fatal("cracker missing after query")
	}
	if e.CrackerIfExists("B") != nil {
		t.Fatal("unqueried attribute got a cracker")
	}
	if e.TotalPieces() < 2 {
		t.Errorf("TotalPieces = %d after one range query", e.TotalPieces())
	}
}

func TestAdaptiveInsertMergesOnQuery(t *testing.T) {
	tbl, base := testTable(t, 1, 10_000, 1000)
	e := NewAdaptiveExecutor(tbl, cracking.Config{}, "")
	defer e.Close()
	e.Count("A", 0, 500) // create cracker
	for i := 0; i < 20; i++ {
		if err := e.Insert("A", 250); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Insert("nope", 1); err == nil {
		t.Error("insert into unknown attribute did not error")
	}
	got, _ := e.Count("A", 200, 300)
	want := column.CountRange(base[0], 200, 300) + 20
	if got != want {
		t.Fatalf("count after inserts = %d, want %d", got, want)
	}
}

func TestHolisticExecutorBackgroundRefinement(t *testing.T) {
	tbl, base := testTable(t, 2, 100_000, 1<<20)
	h := NewHolisticExecutor(tbl, HolisticConfig{
		Daemon:   holistic.Config{Interval: time.Millisecond, Refinements: 16, Seed: 4},
		L1Values: 256,
		Contexts: 2,
	})
	defer h.Close()
	// One query creates the index; idle time lets the daemon refine it.
	h.Count("A", 0, 1<<19)
	c := h.CrackerIfExists("A")
	deadline := time.After(2 * time.Second)
	for c.Pieces() < 20 {
		select {
		case <-deadline:
			t.Fatalf("daemon refined only %d pieces", c.Pieces())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Queries remain correct throughout.
	rng := rand.New(rand.NewSource(10))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		got, _ := h.Count("A", lo, hi)
		if want := column.CountRange(base[0], lo, hi); got != want {
			t.Fatalf("query %d: got %d, want %d", q, got, want)
		}
	}
}

func TestHolisticAddPotential(t *testing.T) {
	tbl, _ := testTable(t, 2, 50_000, 1<<20)
	h := NewHolisticExecutor(tbl, HolisticConfig{
		Daemon:   holistic.Config{Interval: time.Millisecond, Refinements: 16, Seed: 5},
		L1Values: 256,
		Contexts: 2,
	})
	defer h.Close()
	if err := h.AddPotential("B"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddPotential("nope"); err == nil {
		t.Error("AddPotential on unknown attribute did not error")
	}
	c := h.CrackerIfExists("B")
	if c == nil {
		t.Fatal("potential index has no cracker column")
	}
	deadline := time.After(2 * time.Second)
	for c.Pieces() < 5 {
		select {
		case <-deadline:
			t.Fatalf("potential index not refined before queries: %d pieces", c.Pieces())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestHolisticInsertsMergedByWorkers(t *testing.T) {
	tbl, base := testTable(t, 1, 50_000, 1000)
	h := NewHolisticExecutor(tbl, HolisticConfig{
		Daemon:   holistic.Config{Interval: time.Millisecond, Refinements: 16, Seed: 6},
		L1Values: 128,
		Contexts: 2,
	})
	defer h.Close()
	h.Count("A", 0, 500)
	for i := 0; i < 50; i++ {
		h.Insert("A", int64(i*17%1000))
	}
	pend := h.Pending("A")
	deadline := time.After(3 * time.Second)
	for pend.Len() > 0 {
		select {
		case <-deadline:
			t.Fatalf("workers left %d pending inserts", pend.Len())
		case <-time.After(5 * time.Millisecond):
		}
	}
	got, _ := h.Count("A", 0, 1000)
	if want := column.CountRange(base[0], 0, 1000) + 50; got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestRunQueriesSingleAndMultiClient(t *testing.T) {
	const domain = 1 << 16
	tbl, bases := testTable(t, 2, 20_000, domain)
	qs := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: 100, Domain: domain, Attrs: 2, Seed: 11,
	})
	want := make([]int, len(qs))
	for i, q := range qs {
		want[i] = column.CountRange(bases[q.Attr], q.Lo, q.Hi)
	}
	for _, clients := range []int{1, 2, 4} {
		e := NewAdaptiveExecutor(tbl, cracking.Config{}, "")
		got, err := RunQueries(e, qs, attrName, clients)
		if err != nil {
			t.Fatalf("clients=%d: %v", clients, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("clients=%d query %d: got %d, want %d", clients, i, got[i], want[i])
			}
		}
		e.Close()
	}
}

func TestRunQueriesPropagatesError(t *testing.T) {
	tbl, _ := testTable(t, 1, 100, 1000)
	e := NewScanExecutor(tbl, 1)
	qs := []workload.Query{{Attr: 5, Lo: 0, Hi: 1}}
	if _, err := RunQueries(e, qs, attrName, 1); err == nil {
		t.Error("single-client error not propagated")
	}
	if _, err := RunQueries(e, qs, attrName, 4); err == nil {
		t.Error("multi-client error not propagated")
	}
}

// TestRunQueriesMultiClientMidstreamError plants a failing query in the
// middle of a long sequence: the error must surface, the producer must
// not deadlock, and queries answered before the failure stay correct.
func TestRunQueriesMultiClientMidstreamError(t *testing.T) {
	const domain = 1 << 16
	tbl, bases := testTable(t, 2, 10_000, domain)
	e := NewAdaptiveExecutor(tbl, cracking.Config{}, "")
	defer e.Close()
	qs := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: 200, Domain: domain, Attrs: 2, Seed: 23,
	})
	qs[120].Attr = 7 // unknown attribute mid-stream
	got, err := RunQueries(e, qs, attrName, 4)
	if err == nil {
		t.Fatal("mid-stream error not propagated")
	}
	// Spot-check an early prefix: with 4 clients the first queries are
	// dispatched long before the poisoned one, so their slots must hold
	// the correct counts — an error later in the stream must not zero or
	// corrupt results already computed.
	completed := 0
	for i := 0; i < 8; i++ {
		want := column.CountRange(bases[qs[i].Attr], qs[i].Lo, qs[i].Hi)
		if got[i] != want {
			t.Fatalf("query %d: got %d, want %d", i, got[i], want)
		}
		if got[i] > 0 {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("no early query produced a non-zero count; prefix check is vacuous")
	}
}

func TestHashJoin(t *testing.T) {
	build := []int64{10, 20, 30}
	probe := []int64{20, 99, 10, 30, 20}
	got := HashJoin(build, probe)
	want := []int32{1, -1, 0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HashJoin = %v, want %v", got, want)
		}
	}
}

// mapHashJoin is the retired Go-map implementation of HashJoin, kept
// as the differential oracle for the open-addressing rewrite: the map
// semantics (last build occurrence wins for duplicated keys, -1 on
// miss) are the contract.
func mapHashJoin(build, probe []int64) []int32 {
	ht := make(map[int64]int32, len(build))
	for i, k := range build {
		ht[k] = int32(i)
	}
	out := make([]int32, len(probe))
	for i, k := range probe {
		if j, ok := ht[k]; ok {
			out[i] = j
		} else {
			out[i] = -1
		}
	}
	return out
}

// TestHashJoinMatchesMapOracle drives the open-addressing HashJoin
// against the map oracle across duplicated keys (last-wins), negative
// keys, misses and empty sides.
func TestHashJoinMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []struct {
		nb, np int
		domain int64
	}{
		{0, 10, 8}, {10, 0, 8}, {1, 1, 1},
		{100, 400, 30}, // heavy duplication: last build index must win
		{5000, 5000, 1 << 40},
	}
	for _, tc := range cases {
		build := make([]int64, tc.nb)
		probe := make([]int64, tc.np)
		for i := range build {
			build[i] = rng.Int63n(tc.domain) - tc.domain/2
		}
		for i := range probe {
			probe[i] = rng.Int63n(tc.domain) - tc.domain/2
		}
		want := mapHashJoin(build, probe)
		for _, workers := range []int{1, 4} {
			got := ParallelHashJoin(build, probe, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("case %+v workers=%d: out[%d] = %d, oracle %d", tc, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestParallelHashJoinMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	build := make([]int64, 10_000)
	for i := range build {
		build[i] = int64(i) * 3
	}
	probe := make([]int64, 50_000)
	for i := range probe {
		probe[i] = rng.Int63n(40_000)
	}
	seq := HashJoin(build, probe)
	par := ParallelHashJoin(build, probe, 4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}

// checkKeyOrderClusters asserts the KeyOrderWalker contract over a
// walk: clusters' value sets are disjoint and ascending, rows align
// with values, and the multiset of (value, row) pairs equals want.
func checkKeyOrderClusters(t *testing.T, e KeyOrderWalker, attr string, want map[uint32]int64) {
	t.Helper()
	var prevMax int64
	first := true
	seen := map[uint32]int64{}
	ok, err := e.WalkKeyOrder(attr, func(vals []int64, rows []uint32) {
		if len(vals) == 0 || len(vals) != len(rows) {
			t.Fatalf("cluster shape %d vals / %d rows", len(vals), len(rows))
		}
		mn, mx := vals[0], vals[0]
		for i, v := range vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			if _, dup := seen[rows[i]]; dup {
				t.Fatalf("row %d streamed twice", rows[i])
			}
			seen[rows[i]] = v
		}
		if !first && mn <= prevMax {
			t.Fatalf("cluster min %d not above previous cluster max %d", mn, prevMax)
		}
		first = false
		prevMax = mx
	})
	if err != nil || !ok {
		t.Fatalf("WalkKeyOrder = (%v, %v)", ok, err)
	}
	if len(seen) != len(want) {
		t.Fatalf("walk streamed %d rows, want %d", len(seen), len(want))
	}
	for r, v := range want {
		if seen[r] != v {
			t.Fatalf("row %d streamed value %d, want %d", r, seen[r], v)
		}
	}
}

// TestWalkKeyOrder covers the key-ordered access paths: sorted runs on
// the offline executor, cracker pieces on the adaptive one — including
// the pending-update merge the walk performs first.
func TestWalkKeyOrder(t *testing.T) {
	tbl, cols := testTable(t, 1, 4_000, 1<<10)
	attr := attrName(0)
	want := map[uint32]int64{}
	for i, v := range cols[0] {
		want[uint32(i)] = v
	}

	off := NewOfflineExecutor(tbl, 2)
	if span, ok := off.KeyOrderSpan(attr); !ok || span != 1 {
		t.Fatalf("offline KeyOrderSpan = (%v, %v)", span, ok)
	}
	checkKeyOrderClusters(t, off, attr, want)
	if _, ok := off.KeyOrderSpan("nope"); ok {
		t.Fatal("offline KeyOrderSpan ok for unknown attribute")
	}

	ad := NewAdaptiveExecutor(tbl, cracking.Config{WithRows: true}, "")
	if _, ok := ad.KeyOrderSpan(attr); ok {
		t.Fatal("adaptive KeyOrderSpan ok before any cracker exists")
	}
	if ok, err := ad.WalkKeyOrder(attr, nil); ok || err != nil {
		t.Fatalf("adaptive walk before cracker = (%v, %v), want (false, nil)", ok, err)
	}
	if _, err := ad.Count(attr, 100, 600); err != nil {
		t.Fatal(err)
	}
	if span, ok := ad.KeyOrderSpan(attr); !ok || span <= 0 {
		t.Fatalf("adaptive KeyOrderSpan = (%v, %v)", span, ok)
	}
	// Pending updates must be merged before the walk streams: insert,
	// delete and update, then check the logical state round-trips.
	if err := ad.Insert(attr, 77); err != nil {
		t.Fatal(err)
	}
	want[uint32(len(cols[0]))] = 77
	// Delete/Update target the lowest live row holding the value;
	// resolve the same row in the oracle map.
	lowestWith := func(v int64) uint32 {
		best, found := uint32(0), false
		for r, cur := range want {
			if cur == v && (!found || r < best) {
				best, found = r, true
			}
		}
		if !found {
			t.Fatalf("no live row holds %d", v)
		}
		return best
	}
	delVictim := cols[0][10]
	if err := ad.Delete(attr, delVictim); err != nil {
		t.Fatal(err)
	}
	delete(want, lowestWith(delVictim))
	updVictim := int64(-1)
	for _, v := range want {
		updVictim = v
		break
	}
	if err := ad.Update(attr, updVictim, 999); err != nil {
		t.Fatal(err)
	}
	want[lowestWith(updVictim)] = 999
	checkKeyOrderClusters(t, ad, attr, want)
	if n := ad.Pending(attr).Len(); n != 0 {
		t.Fatalf("%d pending operations survived the walk's merge", n)
	}
}

func TestHolisticExecutorStorageBudget(t *testing.T) {
	// Budget for two columns of 10k values (80KB each): querying a third
	// attribute must evict the least frequently used index.
	tbl, _ := testTable(t, 3, 10_000, 1<<16)
	h := NewHolisticExecutor(tbl, HolisticConfig{
		Daemon: holistic.Config{
			Interval:      time.Hour, // daemon idle; this test is about admission
			StorageBudget: 2 * 10_000 * 8,
			Seed:          1,
		},
		L1Values: 256,
		Contexts: 2,
	})
	defer h.Close()
	h.Count(attrName(0), 0, 100)
	h.Count(attrName(1), 0, 100)
	h.Count(attrName(1), 0, 200) // attr 1 now more frequently used
	h.Count(attrName(2), 0, 100) // must evict attr 0 (LFU)
	reg := h.Registry
	if reg.Get(attrName(0)) != nil {
		t.Error("LFU index not evicted under storage budget")
	}
	if reg.Get(attrName(1)) == nil || reg.Get(attrName(2)) == nil {
		t.Error("wrong index evicted")
	}
	// The evicted attribute is still queryable (index gets rebuilt).
	if _, err := h.Count(attrName(0), 0, 100); err != nil {
		t.Fatal(err)
	}
}

func TestCCGIExecutorConcurrentClients(t *testing.T) {
	tbl, bases := testTable(t, 2, 20_000, 1<<16)
	e := NewCCGIExecutor(tbl, 2, 8, cracking.Config{})
	defer e.Close()
	qs := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: 80, Domain: 1 << 16, Attrs: 2, Seed: 17,
	})
	got, err := RunQueries(e, qs, attrName, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if want := column.CountRange(bases[q.Attr], q.Lo, q.Hi); got[i] != want {
			t.Fatalf("query %d: got %d, want %d", i, got[i], want)
		}
	}
}

func TestOnlineExecutorConcurrentEpochCrossing(t *testing.T) {
	// Many clients cross the epoch simultaneously; the sort must happen
	// exactly once and answers stay correct throughout.
	tbl, bases := testTable(t, 2, 10_000, 1<<16)
	e := NewOnlineExecutor(tbl, 2, 10)
	defer e.Close()
	qs := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: 100, Domain: 1 << 16, Attrs: 2, Seed: 18,
	})
	got, err := RunQueries(e, qs, attrName, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if want := column.CountRange(bases[q.Attr], q.Lo, q.Hi); got[i] != want {
			t.Fatalf("query %d: got %d, want %d", i, got[i], want)
		}
	}
	if len(e.sorted) != 2 {
		t.Fatalf("sorted %d columns, want 2", len(e.sorted))
	}
}

// TestAdaptiveDeleteUpdateAndView covers the row-level overlay behind
// conjunctive probes: deletes and updates are visible through View (and
// through count queries once merged), and the overlay stays consistent
// with the cracker's value multiset.
func TestAdaptiveDeleteUpdateAndView(t *testing.T) {
	base := []int64{10, 20, 30, 40, 50}
	tab := NewTable("t")
	tab.MustAddColumn(column.New("a", base))
	e := NewAdaptiveExecutor(tab, cracking.Config{WithRows: true}, "")
	defer e.Close()

	if err := e.Insert("a", 60); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("a", 20); err != nil {
		t.Fatal(err)
	}
	if err := e.Update("a", 40, 45); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("a", 999); err == nil {
		t.Fatal("delete of a missing value did not error")
	}
	if err := e.Update("a", 999, 1); err == nil {
		t.Fatal("update of a missing value did not error")
	}

	w, err := e.View("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.At(1); ok {
		t.Error("deleted row 1 still has a value")
	}
	if v, ok := w.At(3); !ok || v != 45 {
		t.Errorf("updated row 3 = (%d,%v), want (45,true)", v, ok)
	}
	if v, ok := w.At(5); !ok || v != 60 {
		t.Errorf("appended row 5 = (%d,%v), want (60,true)", v, ok)
	}

	// Counts through the cracker agree with the logical multiset
	// {10, 30, 45, 50, 60}.
	n, err := e.Count("a", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("count after updates = %d, want 5", n)
	}
	if n, _ = e.Count("a", 20, 21); n != 0 {
		t.Fatalf("deleted value still counted: %d", n)
	}
	if n, _ = e.Count("a", 45, 46); n != 1 {
		t.Fatalf("updated value not counted: %d", n)
	}

	// The view snapshot is isolated from later mutations.
	if err := e.Delete("a", 30); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.At(2); !ok {
		t.Error("old view snapshot observed a later delete")
	}
}

// TestEstimateCount checks the planner's cardinality probes: sorted
// executors answer exactly once sorted, crackers exactly on boundary
// hits, and everyone reports ok=false before any index exists.
func TestEstimateCount(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	tab := NewTable("t")
	tab.MustAddColumn(column.New("a", vals))

	off := NewOfflineExecutor(tab, 1)
	if _, _, ok := off.EstimateCount("a", 100, 200); ok {
		t.Error("offline estimated before sorting")
	}
	off.PrepareAll()
	if est, exact, ok := off.EstimateCount("a", 100, 200); !ok || !exact || est != 100 {
		t.Errorf("offline estimate = (%v,%v,%v), want (100,true,true)", est, exact, ok)
	}

	ad := NewAdaptiveExecutor(tab, cracking.Config{}, "")
	defer ad.Close()
	if _, _, ok := ad.EstimateCount("a", 100, 200); ok {
		t.Error("adaptive estimated before any cracker exists")
	}
	if _, err := ad.Count("a", 100, 200); err != nil {
		t.Fatal(err)
	}
	if est, exact, ok := ad.EstimateCount("a", 100, 200); !ok || !exact || est != 100 {
		t.Errorf("adaptive exact estimate = (%v,%v,%v), want (100,true,true)", est, exact, ok)
	}
	// Unseen bounds: uniform fallback, inexact but sane.
	est, exact, ok := ad.EstimateCount("a", 0, 500)
	if !ok || exact {
		t.Fatalf("adaptive fallback = (%v,%v,%v), want inexact ok", est, exact, ok)
	}
	if est < 250 || est > 750 {
		t.Errorf("uniform estimate %v implausible for 500/1000", est)
	}
}

// TestSelectBitmapAgreesWithSelectRows is the bitmap-path differential
// test: every mode's SelectBitmap must mark exactly the rows its
// SelectRows materializes, on random range predicates.
func TestSelectBitmapAgreesWithSelectRows(t *testing.T) {
	const domain = 1 << 16
	tbl, bases := testTable(t, 2, 20_000, domain)
	execs := allExecutors(t, tbl)
	defer func() {
		for _, e := range execs {
			e.Close()
		}
	}()
	rng := rand.New(rand.NewSource(33))
	bm := column.NewBitmap(0)
	for q := 0; q < 40; q++ {
		a := rng.Intn(2)
		lo := rng.Int63n(domain)
		hi := lo + rng.Int63n(domain-lo) + 1
		wantRows := column.ScanRange(bases[a], lo, hi) // ascending base positions
		for _, e := range execs {
			bs, ok := e.(BitmapSelector)
			if !ok {
				t.Fatalf("%s does not implement BitmapSelector", e.Label())
			}
			if err := bs.SelectBitmap(attrName(a), lo, hi, bm); err != nil {
				t.Fatalf("%s: SelectBitmap: %v", e.Label(), err)
			}
			if got := bm.Count(); got != len(wantRows) {
				t.Fatalf("%s query %d [%d,%d): bitmap count %d, want %d", e.Label(), q, lo, hi, got, len(wantRows))
			}
			got := bm.AppendPositions(nil)
			for i := range got {
				if got[i] != wantRows[i] {
					t.Fatalf("%s query %d: bitmap pos[%d] = %d, want %d", e.Label(), q, i, got[i], wantRows[i])
				}
			}
		}
	}
}

// TestSelectBitmapCoversPendingInserts: after inserts, the adaptive
// bitmap universe extends past the base rows and marks appended rows
// once the merge pulls them in.
func TestSelectBitmapCoversPendingInserts(t *testing.T) {
	tbl, bases := testTable(t, 1, 5_000, 1<<14)
	ad := NewAdaptiveExecutor(tbl, cracking.Config{WithRows: true}, "")
	defer ad.Close()
	if _, err := ad.SelectRows("A", 0, 1<<14); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ad.Insert("A", int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	bm := column.NewBitmap(0)
	if err := ad.SelectBitmap("A", 100, 110, bm); err != nil {
		t.Fatal(err)
	}
	if bm.Len() != len(bases[0])+10 {
		t.Fatalf("bitmap universe %d, want %d", bm.Len(), len(bases[0])+10)
	}
	want := column.CountRange(bases[0], 100, 110) + 10
	if got := bm.Count(); got != want {
		t.Fatalf("bitmap count %d, want %d", got, want)
	}
	for i := 0; i < 10; i++ {
		if !bm.Test(uint32(len(bases[0]) + i)) {
			t.Fatalf("appended row %d not marked", len(bases[0])+i)
		}
	}
}

// TestSelectBitmapWithoutRowidsErrors mirrors the SelectRows guard.
func TestSelectBitmapWithoutRowidsErrors(t *testing.T) {
	tbl, _ := testTable(t, 1, 1_000, 1000)
	ad := NewAdaptiveExecutor(tbl, cracking.Config{}, "")
	defer ad.Close()
	bm := column.NewBitmap(0)
	if err := ad.SelectBitmap("A", 0, 100, bm); err == nil {
		t.Error("adaptive without WithRows: SelectBitmap did not error")
	}
	cc := NewCCGIExecutor(tbl, 2, 4, cracking.Config{})
	defer cc.Close()
	if err := cc.SelectBitmap("A", 0, 100, bm); err == nil {
		t.Error("ccgi without WithRows: SelectBitmap did not error")
	}
}
