package engine

import (
	"fmt"
	"sync"

	"holistic/internal/ccgi"
	"holistic/internal/column"
	"holistic/internal/cpu"
	"holistic/internal/cracking"
	"holistic/internal/holistic"
	"holistic/internal/sortidx"
	"holistic/internal/stats"
	"holistic/internal/updates"
)

// ScanExecutor answers every query with a parallel scan: the "no
// indexing" baseline of Figure 6(a).
type ScanExecutor struct {
	table   *Table
	Threads int
}

// NewScanExecutor builds the baseline over a table with the given scan
// parallelism (the paper scans with all 32 hardware contexts).
func NewScanExecutor(t *Table, threads int) *ScanExecutor {
	if threads < 1 {
		threads = 1
	}
	return &ScanExecutor{table: t, Threads: threads}
}

// Label implements Executor.
func (e *ScanExecutor) Label() string { return "no indexing" }

// Count implements Executor.
func (e *ScanExecutor) Count(attr string, lo, hi int64) (int, error) {
	c := e.table.Column(attr)
	if c == nil {
		return 0, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	return column.ParallelCountRange(c.Values(), lo, hi, e.Threads), nil
}

// Close implements Executor.
func (e *ScanExecutor) Close() {}

// OfflineExecutor answers queries by binary search over pre-sorted
// columns. PrepareAll pays the sorting cost; the harness charges it to
// the first query as the paper does ("since there is no idle time before
// the first query, the sorting cost is added to the execution time of the
// very first query").
type OfflineExecutor struct {
	table   *Table
	Threads int

	mu     sync.Mutex
	sorted map[string]*sortidx.SortedColumn
}

// NewOfflineExecutor builds the executor; call PrepareAll (or let the
// first query on each attribute pay the sort lazily).
func NewOfflineExecutor(t *Table, threads int) *OfflineExecutor {
	if threads < 1 {
		threads = 1
	}
	return &OfflineExecutor{table: t, Threads: threads, sorted: make(map[string]*sortidx.SortedColumn)}
}

// Label implements Executor.
func (e *OfflineExecutor) Label() string { return "offline indexing" }

// PrepareAll sorts every column of the table (the offline physical-design
// step, assuming a-priori workload knowledge).
func (e *OfflineExecutor) PrepareAll() {
	for _, name := range e.table.ColumnNames() {
		e.sortedFor(name)
	}
}

func (e *OfflineExecutor) sortedFor(attr string) *sortidx.SortedColumn {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.sorted[attr]; ok {
		return s
	}
	c := e.table.Column(attr)
	if c == nil {
		return nil
	}
	s := sortidx.Build(attr, c.Values(), e.Threads)
	e.sorted[attr] = s
	return s
}

// Count implements Executor.
func (e *OfflineExecutor) Count(attr string, lo, hi int64) (int, error) {
	s := e.sortedFor(attr)
	if s == nil {
		return 0, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	return s.CountRange(lo, hi), nil
}

// Close implements Executor.
func (e *OfflineExecutor) Close() {}

// OnlineExecutor monitors the workload for an epoch of queries (answered
// by plain scans), then sorts every column — the COLT-style online
// indexing baseline of Section 5.1. The sorting cost lands inside the
// first post-epoch query, as in the paper.
type OnlineExecutor struct {
	table   *Table
	Threads int
	Epoch   int

	mu      sync.Mutex
	queries int
	sorted  map[string]*sortidx.SortedColumn
}

// NewOnlineExecutor builds the executor with the monitoring epoch in
// queries (the paper uses 100).
func NewOnlineExecutor(t *Table, threads, epoch int) *OnlineExecutor {
	if threads < 1 {
		threads = 1
	}
	if epoch < 1 {
		epoch = 100
	}
	return &OnlineExecutor{table: t, Threads: threads, Epoch: epoch, sorted: make(map[string]*sortidx.SortedColumn)}
}

// Label implements Executor.
func (e *OnlineExecutor) Label() string { return "online indexing" }

// Count implements Executor.
func (e *OnlineExecutor) Count(attr string, lo, hi int64) (int, error) {
	c := e.table.Column(attr)
	if c == nil {
		return 0, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	e.mu.Lock()
	e.queries++
	buildNow := e.queries == e.Epoch+1
	if buildNow && len(e.sorted) == 0 {
		// Enough workload knowledge obtained: sort all columns. The cost
		// is paid inside this query.
		for _, name := range e.table.ColumnNames() {
			e.sorted[name] = sortidx.Build(name, e.table.Column(name).Values(), e.Threads)
		}
	}
	s := e.sorted[attr]
	e.mu.Unlock()
	if s != nil {
		return s.CountRange(lo, hi), nil
	}
	return column.ParallelCountRange(c.Values(), lo, hi, e.Threads), nil
}

// Close implements Executor.
func (e *OnlineExecutor) Close() {}

// AdaptiveExecutor is database cracking: the first query on an attribute
// creates its cracker column, every query refines it. With the default
// configuration it is PVDC (parallel vectorized database cracking); with
// Stochastic set it is PVSDC.
type AdaptiveExecutor struct {
	table *Table
	cfg   cracking.Config
	label string

	// Registry is optional: when set, the select operator records
	// per-index statistics (holistic mode shares this executor).
	Registry *stats.Registry
	// Admit is called to register a new cracker column; holistic mode
	// routes it through the daemon's storage budget. Nil registers
	// directly on Registry (when present).
	Admit func(name string, col *cracking.Column) *stats.Entry

	mu       sync.Mutex
	crackers map[string]*cracking.Column

	pendMu  sync.Mutex
	pending map[string]*updates.Pending
}

// NewAdaptiveExecutor builds a cracking executor; cfg selects the kernel,
// parallelism and stochastic behaviour.
func NewAdaptiveExecutor(t *Table, cfg cracking.Config, label string) *AdaptiveExecutor {
	if label == "" {
		label = "adaptive indexing"
	}
	return &AdaptiveExecutor{
		table:    t,
		cfg:      cfg,
		label:    label,
		crackers: make(map[string]*cracking.Column),
		pending:  make(map[string]*updates.Pending),
	}
}

// Label implements Executor.
func (e *AdaptiveExecutor) Label() string { return e.label }

// Cracker returns (building if needed) the cracker column of attr; the
// bool reports whether it already existed.
func (e *AdaptiveExecutor) Cracker(attr string) (*cracking.Column, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.crackers[attr]; ok {
		return c, true, nil
	}
	base := e.table.Column(attr)
	if base == nil {
		return nil, false, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	cfg := e.cfg
	cfg.Seed = e.cfg.Seed + int64(len(e.crackers))
	c := cracking.New(attr, base.Values(), cfg)
	e.crackers[attr] = c
	if e.Admit != nil {
		e.Admit(attr, c)
	} else if e.Registry != nil {
		e.Registry.Add(attr, c, false)
	}
	return c, false, nil
}

// CrackerIfExists returns the cracker column without creating one.
func (e *AdaptiveExecutor) CrackerIfExists(attr string) *cracking.Column {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crackers[attr]
}

// Pending returns (creating if needed) the pending-updates store of attr.
func (e *AdaptiveExecutor) Pending(attr string) *updates.Pending {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	p, ok := e.pending[attr]
	if !ok {
		p = updates.NewPending()
		e.pending[attr] = p
	}
	return p
}

// Insert implements Inserter: the value becomes a pending insertion,
// merged lazily by queries (and, under holistic indexing, by workers).
func (e *AdaptiveExecutor) Insert(attr string, v int64) error {
	if e.table.Column(attr) == nil {
		return fmt.Errorf("engine: unknown attribute %q", attr)
	}
	e.Pending(attr).AddInsert(v, 0)
	return nil
}

// Count implements Executor: the cracking select operator. It merges
// pending updates covering the requested range, cracks, and records
// statistics.
func (e *AdaptiveExecutor) Count(attr string, lo, hi int64) (int, error) {
	c, _, err := e.Cracker(attr)
	if err != nil {
		return 0, err
	}
	if p := e.Pending(attr); p.Len() > 0 && p.HasInRange(lo, hi) {
		p.MergeRange(c, lo, hi)
	}
	r := c.SelectRange(lo, hi)
	if e.Registry != nil {
		e.Registry.RecordAccess(attr, r.ExactHit())
	}
	return r.Count(), nil
}

// TotalPieces sums pieces over all cracker columns (Figure 6(c)).
func (e *AdaptiveExecutor) TotalPieces() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for _, c := range e.crackers {
		total += c.Pieces()
	}
	return total
}

// Close implements Executor.
func (e *AdaptiveExecutor) Close() {}

// HolisticExecutor wraps the adaptive executor with the holistic indexing
// daemon: user queries run the cracking select operator while the daemon
// exploits idle contexts for auxiliary refinements.
type HolisticExecutor struct {
	*AdaptiveExecutor
	Daemon *holistic.Daemon
	Acct   *cpu.LoadAccountant
	// UserThreads is the number of contexts one user query occupies
	// while running (the u of the paper's uXwYxZ distributions).
	UserThreads int
}

// HolisticConfig assembles the pieces of a holistic executor.
type HolisticConfig struct {
	// Cracking configures the user-query cracker columns (PVDC kernel,
	// user parallelism, RefineWorkers for the daemon's cracks).
	Cracking cracking.Config
	// Daemon configures the tuning cycle.
	Daemon holistic.Config
	// L1Values is the optimal piece size (Equation 1).
	L1Values int
	// Contexts is the hardware-context budget of the load accountant.
	Contexts int
	// UserThreads is how many contexts a running user query occupies.
	UserThreads int
	// StatsSeed seeds the W4 strategy RNG.
	StatsSeed int64
	// Monitor overrides the load accountant as the daemon's idle signal;
	// benchmarks use cpu.Fixed to pin the uXwYxZ thread distributions.
	Monitor cpu.Monitor
}

// NewHolisticExecutor builds the executor and starts its daemon.
func NewHolisticExecutor(t *Table, cfg HolisticConfig) *HolisticExecutor {
	if cfg.Contexts < 1 {
		cfg.Contexts = 2
	}
	if cfg.UserThreads < 1 {
		cfg.UserThreads = 1
	}
	reg := stats.NewRegistry(cfg.L1Values, cfg.StatsSeed)
	acct := cpu.NewLoadAccountant(cfg.Contexts)
	var mon cpu.Monitor = acct
	if cfg.Monitor != nil {
		mon = cfg.Monitor
	}
	daemon := holistic.New(reg, mon, cfg.Daemon)
	ad := NewAdaptiveExecutor(t, cfg.Cracking, "holistic indexing")
	ad.Registry = reg
	h := &HolisticExecutor{
		AdaptiveExecutor: ad,
		Daemon:           daemon,
		Acct:             acct,
		UserThreads:      cfg.UserThreads,
	}
	ad.Admit = func(name string, col *cracking.Column) *stats.Entry {
		entry, _ := daemon.AdmitIndex(name, col, false)
		daemon.AttachPending(name, ad.Pending(name))
		return entry
	}
	daemon.Start()
	return h
}

// AddPotential registers an index on attr into Cpotential so the daemon
// can refine it before any query arrives (Figure 9's idle-time prefill).
func (h *HolisticExecutor) AddPotential(attr string) error {
	base := h.table.Column(attr)
	if base == nil {
		return fmt.Errorf("engine: unknown attribute %q", attr)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.crackers[attr]; ok {
		return nil
	}
	c := cracking.New(attr, base.Values(), h.cfg)
	h.crackers[attr] = c
	h.Daemon.AdmitIndex(attr, c, true)
	h.Daemon.AttachPending(attr, h.Pending(attr))
	return nil
}

// Count implements Executor: the adaptive select operator bracketed by
// load accounting so the daemon sees the occupied contexts.
func (h *HolisticExecutor) Count(attr string, lo, hi int64) (int, error) {
	h.Acct.Acquire(h.UserThreads)
	defer h.Acct.Release(h.UserThreads)
	return h.AdaptiveExecutor.Count(attr, lo, hi)
}

// Close stops the daemon.
func (h *HolisticExecutor) Close() { h.Daemon.Stop() }

// CCGIExecutor is the mP-CCGI baseline (Section 5.2).
type CCGIExecutor struct {
	table   *Table
	Threads int
	Buckets int
	cfg     cracking.Config

	mu      sync.Mutex
	indexes map[string]*ccgi.Index
}

// NewCCGIExecutor builds the baseline with the given chunk parallelism
// and coarse-partitioning bucket count.
func NewCCGIExecutor(t *Table, threads, buckets int, cfg cracking.Config) *CCGIExecutor {
	if threads < 1 {
		threads = 1
	}
	return &CCGIExecutor{table: t, Threads: threads, Buckets: buckets, cfg: cfg, indexes: make(map[string]*ccgi.Index)}
}

// Label implements Executor.
func (e *CCGIExecutor) Label() string { return "mP-CCGI" }

// Count implements Executor.
func (e *CCGIExecutor) Count(attr string, lo, hi int64) (int, error) {
	e.mu.Lock()
	x, ok := e.indexes[attr]
	if !ok {
		base := e.table.Column(attr)
		if base == nil {
			e.mu.Unlock()
			return 0, fmt.Errorf("engine: unknown attribute %q", attr)
		}
		x = ccgi.New(attr, base.Values(), e.Threads, e.Buckets, e.cfg)
		e.indexes[attr] = x
	}
	e.mu.Unlock()
	return x.SelectCount(lo, hi), nil
}

// Close implements Executor.
func (e *CCGIExecutor) Close() {}
