package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"holistic/internal/ccgi"
	"holistic/internal/column"
	"holistic/internal/cpu"
	"holistic/internal/cracking"
	"holistic/internal/holistic"
	"holistic/internal/obs"
	"holistic/internal/obs/econ"
	"holistic/internal/sortidx"
	"holistic/internal/stats"
	"holistic/internal/updates"
)

// ScanExecutor answers every query with a parallel scan: the "no
// indexing" baseline of Figure 6(a).
type ScanExecutor struct {
	table   *Table
	Threads int
	met     *obs.ExecMetrics
}

// SetExecMetrics implements Instrumented.
func (e *ScanExecutor) SetExecMetrics(m *obs.ExecMetrics) { e.met = m }

// NewScanExecutor builds the baseline over a table with the given scan
// parallelism (the paper scans with all 32 hardware contexts).
func NewScanExecutor(t *Table, threads int) *ScanExecutor {
	if threads < 1 {
		threads = 1
	}
	return &ScanExecutor{table: t, Threads: threads}
}

// Label implements Executor.
func (e *ScanExecutor) Label() string { return "no indexing" }

func (e *ScanExecutor) values(attr string) ([]int64, error) {
	c := e.table.Column(attr)
	if c == nil {
		return nil, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	return c.Values(), nil
}

// Count implements Executor.
func (e *ScanExecutor) Count(attr string, lo, hi int64) (int, error) {
	vals, err := e.values(attr)
	if err != nil {
		return 0, err
	}
	start := obsBegin(e.met)
	n := column.ParallelCountRange(vals, lo, hi, e.Threads)
	obsEnd(e.met, start)
	return n, nil
}

// Sum implements Executor: a parallel chunked fold over the base column.
func (e *ScanExecutor) Sum(attr string, lo, hi int64) (int64, error) {
	vals, err := e.values(attr)
	if err != nil {
		return 0, err
	}
	start := obsBegin(e.met)
	s := column.ParallelSumRange(vals, lo, hi, e.Threads)
	obsEnd(e.met, start)
	return s, nil
}

// MinMax implements Executor.
func (e *ScanExecutor) MinMax(attr string, lo, hi int64) (mn, mx int64, ok bool, err error) {
	vals, err := e.values(attr)
	if err != nil {
		return 0, 0, false, err
	}
	start := obsBegin(e.met)
	mn, mx, n := column.ParallelMinMaxRange(vals, lo, hi, e.Threads)
	obsEnd(e.met, start)
	return mn, mx, n > 0, nil
}

// SelectRows implements Executor: the parallel position-list scan.
func (e *ScanExecutor) SelectRows(attr string, lo, hi int64) ([]uint32, error) {
	vals, err := e.values(attr)
	if err != nil {
		return nil, err
	}
	start := obsBegin(e.met)
	rows := column.ParallelScanRange(vals, lo, hi, e.Threads)
	obsEnd(e.met, start)
	return rows, nil
}

// SelectBitmap implements BitmapSelector: the parallel word-packed
// scan, each worker filling a disjoint 64-aligned span of words.
func (e *ScanExecutor) SelectBitmap(attr string, lo, hi int64, bm *column.Bitmap) error {
	vals, err := e.values(attr)
	if err != nil {
		return err
	}
	start := obsBegin(e.met)
	column.ParallelScanRangeBitmap(vals, lo, hi, bm, e.Threads)
	obsEnd(e.met, start)
	return nil
}

// Close implements Executor.
func (e *ScanExecutor) Close() {}

// OfflineExecutor answers queries by binary search over pre-sorted
// columns. PrepareAll pays the sorting cost; the harness charges it to
// the first query as the paper does ("since there is no idle time before
// the first query, the sorting cost is added to the execution time of the
// very first query").
type OfflineExecutor struct {
	table   *Table
	Threads int

	mu     sync.Mutex
	sorted map[string]*sortidx.SortedColumn
}

// NewOfflineExecutor builds the executor; call PrepareAll (or let the
// first query on each attribute pay the sort lazily).
func NewOfflineExecutor(t *Table, threads int) *OfflineExecutor {
	if threads < 1 {
		threads = 1
	}
	return &OfflineExecutor{table: t, Threads: threads, sorted: make(map[string]*sortidx.SortedColumn)}
}

// Label implements Executor.
func (e *OfflineExecutor) Label() string { return "offline indexing" }

// PrepareAll sorts every column of the table (the offline physical-design
// step, assuming a-priori workload knowledge).
func (e *OfflineExecutor) PrepareAll() {
	for _, name := range e.table.ColumnNames() {
		e.sortedFor(name, false)
	}
}

// sortedFor returns attr's sorted column, building it on first use. The
// count/aggregate forms sort plain values; the first SelectRows on an
// attribute upgrades it to a rowid-carrying sort (value/rowid pairs cost
// more to sort and +4 bytes/value to keep, so count-only workloads never
// pay for them).
func (e *OfflineExecutor) sortedFor(attr string, needRows bool) *sortidx.SortedColumn {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.sorted[attr]; ok && (!needRows || s.HasRows()) {
		return s
	}
	c := e.table.Column(attr)
	if c == nil {
		return nil
	}
	var s *sortidx.SortedColumn
	if needRows {
		s = sortidx.BuildWithRows(attr, c.Values(), e.Threads)
	} else {
		s = sortidx.Build(attr, c.Values(), e.Threads)
	}
	e.sorted[attr] = s
	return s
}

// EstimateCount implements CardEstimator: once a column is sorted the
// count is two binary searches, an exact and near-free estimate. Before
// the sort there is no index to consult (building one here would move
// the preparation cost into planning), so ok is false.
func (e *OfflineExecutor) EstimateCount(attr string, lo, hi int64) (float64, bool, bool) {
	e.mu.Lock()
	s := e.sorted[attr]
	e.mu.Unlock()
	if s == nil {
		return 0, false, false
	}
	return float64(s.CountRange(lo, hi)), true, true
}

// Count implements Executor.
func (e *OfflineExecutor) Count(attr string, lo, hi int64) (int, error) {
	s := e.sortedFor(attr, false)
	if s == nil {
		return 0, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	return s.CountRange(lo, hi), nil
}

// Sum implements Executor: binary search brackets the slice, then a tight
// fold over the contiguous run.
func (e *OfflineExecutor) Sum(attr string, lo, hi int64) (int64, error) {
	s := e.sortedFor(attr, false)
	if s == nil {
		return 0, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	return s.SumRange(lo, hi), nil
}

// MinMax implements Executor: two edge reads on the sorted run.
func (e *OfflineExecutor) MinMax(attr string, lo, hi int64) (mn, mx int64, ok bool, err error) {
	s := e.sortedFor(attr, false)
	if s == nil {
		return 0, 0, false, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	mn, mx, ok = s.MinMaxRange(lo, hi)
	return mn, mx, ok, nil
}

// SelectRows implements Executor: the rowids of the sorted run, copied so
// callers own the result.
func (e *OfflineExecutor) SelectRows(attr string, lo, hi int64) ([]uint32, error) {
	s := e.sortedFor(attr, true)
	if s == nil {
		return nil, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	start, end := s.SelectRange(lo, hi)
	return append([]uint32(nil), s.Rows(start, end)...), nil
}

// SelectBitmap implements BitmapSelector: the sorted run's rowids set
// bit by bit straight off the index — unlike SelectRows, nothing is
// copied.
func (e *OfflineExecutor) SelectBitmap(attr string, lo, hi int64, bm *column.Bitmap) error {
	s := e.sortedFor(attr, true)
	if s == nil {
		return fmt.Errorf("engine: unknown attribute %q", attr)
	}
	start, end := s.SelectRange(lo, hi)
	bm.Reset(s.Len())
	bm.SetRows(s.Rows(start, end))
	return nil
}

// walkSortedRuns streams a rowid-carrying sorted column one maximal run
// of equal values at a time — each run is one key cluster (span 1).
func walkSortedRuns(s *sortidx.SortedColumn, fn func(vals []int64, rows []uint32)) {
	vals := s.Values()
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		fn(vals[i:j], s.Rows(i, j))
		i = j
	}
}

// KeyOrderSpan implements KeyOrderWalker: a sorted column clusters each
// distinct value exactly (span 1), and offline indexing sorts on demand,
// so the path exists for every attribute.
func (e *OfflineExecutor) KeyOrderSpan(attr string) (float64, bool) {
	if e.table.Column(attr) == nil {
		return 0, false
	}
	return 1, true
}

// WalkKeyOrder implements KeyOrderWalker: the rowid-carrying sorted run,
// streamed one equal-value cluster at a time.
func (e *OfflineExecutor) WalkKeyOrder(attr string, fn func(vals []int64, rows []uint32)) (bool, error) {
	s := e.sortedFor(attr, true)
	if s == nil {
		return false, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	walkSortedRuns(s, fn)
	return true, nil
}

// Close implements Executor.
func (e *OfflineExecutor) Close() {}

// OnlineExecutor monitors the workload for an epoch of queries (answered
// by plain scans), then sorts every column — the COLT-style online
// indexing baseline of Section 5.1. The sorting cost lands inside the
// first post-epoch query, as in the paper.
type OnlineExecutor struct {
	table   *Table
	Threads int
	Epoch   int

	mu      sync.Mutex
	queries int
	sorted  map[string]*sortidx.SortedColumn
}

// NewOnlineExecutor builds the executor with the monitoring epoch in
// queries (the paper uses 100).
func NewOnlineExecutor(t *Table, threads, epoch int) *OnlineExecutor {
	if threads < 1 {
		threads = 1
	}
	if epoch < 1 {
		epoch = 100
	}
	return &OnlineExecutor{table: t, Threads: threads, Epoch: epoch, sorted: make(map[string]*sortidx.SortedColumn)}
}

// Label implements Executor.
func (e *OnlineExecutor) Label() string { return "online indexing" }

// index advances the monitoring epoch by one query and returns the
// sorted column for attr (nil while still inside the epoch) plus the base
// values for the scan fallback. Every query form — count, aggregate,
// materialization — counts against the epoch. The epoch sort is a plain
// value sort; the first SelectRows on an attribute upgrades it to a
// rowid-carrying sort (see OfflineExecutor.sortedFor).
func (e *OnlineExecutor) index(attr string, needRows bool) (*sortidx.SortedColumn, []int64, error) {
	c := e.table.Column(attr)
	if c == nil {
		return nil, nil, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	e.mu.Lock()
	e.queries++
	buildNow := e.queries == e.Epoch+1
	if buildNow && len(e.sorted) == 0 {
		// Enough workload knowledge obtained: sort all columns. The cost
		// is paid inside this query.
		for _, name := range e.table.ColumnNames() {
			e.sorted[name] = sortidx.Build(name, e.table.Column(name).Values(), e.Threads)
		}
	}
	s := e.sorted[attr]
	if s != nil && needRows && !s.HasRows() {
		s = sortidx.BuildWithRows(attr, c.Values(), e.Threads)
		e.sorted[attr] = s
	}
	e.mu.Unlock()
	return s, c.Values(), nil
}

// EstimateCount implements CardEstimator: exact once the epoch sort has
// happened, unavailable before (the probe does not advance the epoch).
func (e *OnlineExecutor) EstimateCount(attr string, lo, hi int64) (float64, bool, bool) {
	e.mu.Lock()
	s := e.sorted[attr]
	e.mu.Unlock()
	if s == nil {
		return 0, false, false
	}
	return float64(s.CountRange(lo, hi)), true, true
}

// Count implements Executor.
func (e *OnlineExecutor) Count(attr string, lo, hi int64) (int, error) {
	s, vals, err := e.index(attr, false)
	if err != nil {
		return 0, err
	}
	if s != nil {
		return s.CountRange(lo, hi), nil
	}
	return column.ParallelCountRange(vals, lo, hi, e.Threads), nil
}

// Sum implements Executor.
func (e *OnlineExecutor) Sum(attr string, lo, hi int64) (int64, error) {
	s, vals, err := e.index(attr, false)
	if err != nil {
		return 0, err
	}
	if s != nil {
		return s.SumRange(lo, hi), nil
	}
	return column.ParallelSumRange(vals, lo, hi, e.Threads), nil
}

// MinMax implements Executor.
func (e *OnlineExecutor) MinMax(attr string, lo, hi int64) (mn, mx int64, ok bool, err error) {
	s, vals, err := e.index(attr, false)
	if err != nil {
		return 0, 0, false, err
	}
	if s != nil {
		mn, mx, ok = s.MinMaxRange(lo, hi)
		return mn, mx, ok, nil
	}
	mn, mx, n := column.ParallelMinMaxRange(vals, lo, hi, e.Threads)
	return mn, mx, n > 0, nil
}

// SelectRows implements Executor.
func (e *OnlineExecutor) SelectRows(attr string, lo, hi int64) ([]uint32, error) {
	s, vals, err := e.index(attr, true)
	if err != nil {
		return nil, err
	}
	if s != nil {
		start, end := s.SelectRange(lo, hi)
		return append([]uint32(nil), s.Rows(start, end)...), nil
	}
	return column.ParallelScanRange(vals, lo, hi, e.Threads), nil
}

// SelectBitmap implements BitmapSelector: sorted-run rowids after the
// epoch, a parallel bitmap scan before.
func (e *OnlineExecutor) SelectBitmap(attr string, lo, hi int64, bm *column.Bitmap) error {
	s, vals, err := e.index(attr, true)
	if err != nil {
		return err
	}
	if s != nil {
		start, end := s.SelectRange(lo, hi)
		bm.Reset(s.Len())
		bm.SetRows(s.Rows(start, end))
		return nil
	}
	column.ParallelScanRangeBitmap(vals, lo, hi, bm, e.Threads)
	return nil
}

// KeyOrderSpan implements KeyOrderWalker: exact clusters once the epoch
// sort has happened, no path before (the probe does not advance the
// epoch).
func (e *OnlineExecutor) KeyOrderSpan(attr string) (float64, bool) {
	e.mu.Lock()
	s := e.sorted[attr]
	e.mu.Unlock()
	if s == nil {
		return 0, false
	}
	return 1, true
}

// WalkKeyOrder implements KeyOrderWalker; it counts against the
// monitoring epoch like every other query form, and declines while the
// epoch is still running (the caller falls back to hash grouping over
// the base data).
func (e *OnlineExecutor) WalkKeyOrder(attr string, fn func(vals []int64, rows []uint32)) (bool, error) {
	s, _, err := e.index(attr, true)
	if err != nil {
		return false, err
	}
	if s == nil {
		return false, nil
	}
	walkSortedRuns(s, fn)
	return true, nil
}

// Close implements Executor.
func (e *OnlineExecutor) Close() {}

// AdaptiveExecutor is database cracking: the first query on an attribute
// creates its cracker column, every query refines it. With the default
// configuration it is PVDC (parallel vectorized database cracking); with
// Stochastic set it is PVSDC.
type AdaptiveExecutor struct {
	table *Table
	cfg   cracking.Config
	label string

	// Registry is optional: when set, the select operator records
	// per-index statistics (holistic mode shares this executor).
	Registry *stats.Registry
	// Admit is called to register a new cracker column; holistic mode
	// routes it through the daemon's storage budget. Nil registers
	// directly on Registry (when present).
	Admit func(name string, col *cracking.Column) *stats.Entry

	// met records access-path telemetry when attached (Instrumented).
	met *obs.ExecMetrics

	mu       sync.Mutex
	crackers map[string]*cracking.Column

	pendMu  sync.Mutex
	pending map[string]*updates.Pending
	// nextRow assigns base row ids to pending insertions per attribute:
	// the first insert lands at position table.Rows(), the next one after
	// it, matching the positions an append to the base column would take.
	nextRow map[string]uint32
	// tails, deleted and updated record the logical row-level state of
	// every update per attribute, independent of how much of the pending
	// queue has been merged into the cracker: tails[attr][i] is the value
	// of row table.Rows()+i, deleted marks rows without a value, updated
	// overrides values of existing rows. Positional probes (View) read
	// this overlay so conjunctive queries see current data. All guarded
	// by pendMu.
	tails   map[string][]int64
	deleted map[string]map[uint32]struct{}
	updated map[string]map[uint32]int64
	// viewCache holds the last snapshot handed out per attribute,
	// invalidated by the next mutation of that attribute: queries pay
	// the overlay map copy once per update batch, not once per probe.
	viewCache map[string]column.View
}

// NewAdaptiveExecutor builds a cracking executor; cfg selects the kernel,
// parallelism and stochastic behaviour.
func NewAdaptiveExecutor(t *Table, cfg cracking.Config, label string) *AdaptiveExecutor {
	if label == "" {
		label = "adaptive indexing"
	}
	return &AdaptiveExecutor{
		table:     t,
		cfg:       cfg,
		label:     label,
		crackers:  make(map[string]*cracking.Column),
		pending:   make(map[string]*updates.Pending),
		nextRow:   make(map[string]uint32),
		tails:     make(map[string][]int64),
		deleted:   make(map[string]map[uint32]struct{}),
		updated:   make(map[string]map[uint32]int64),
		viewCache: make(map[string]column.View),
	}
}

// Label implements Executor.
func (e *AdaptiveExecutor) Label() string { return e.label }

// SetExecMetrics implements Instrumented.
func (e *AdaptiveExecutor) SetExecMetrics(m *obs.ExecMetrics) { e.met = m }

// Cracker returns (building if needed) the cracker column of attr; the
// bool reports whether it already existed.
func (e *AdaptiveExecutor) Cracker(attr string) (*cracking.Column, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.crackers[attr]; ok {
		return c, true, nil
	}
	base := e.table.Column(attr)
	if base == nil {
		return nil, false, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	cfg := e.cfg
	cfg.Seed = e.cfg.Seed + int64(len(e.crackers))
	c := cracking.New(attr, base.Values(), cfg)
	e.crackers[attr] = c
	if e.met != nil {
		e.met.CrackerBuilds.Inc()
	}
	if e.Admit != nil {
		e.Admit(attr, c)
	} else if e.Registry != nil {
		e.Registry.Add(attr, c, false)
	}
	return c, false, nil
}

// CrackerIfExists returns the cracker column without creating one.
func (e *AdaptiveExecutor) CrackerIfExists(attr string) *cracking.Column {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crackers[attr]
}

// Pending returns (creating if needed) the pending-updates store of attr.
func (e *AdaptiveExecutor) Pending(attr string) *updates.Pending {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	p, ok := e.pending[attr]
	if !ok {
		p = updates.NewPending()
		e.pending[attr] = p
	}
	return p
}

// Insert implements Inserter: the value becomes a pending insertion,
// merged lazily by queries (and, under holistic indexing, by workers).
// Its base row id continues the table's position sequence, so row ids
// materialized by SelectRows stay unambiguous across inserts.
func (e *AdaptiveExecutor) Insert(attr string, v int64) error {
	if e.table.Column(attr) == nil {
		return fmt.Errorf("engine: unknown attribute %q", attr)
	}
	p := e.Pending(attr)
	e.pendMu.Lock()
	row, ok := e.nextRow[attr]
	if !ok {
		row = uint32(e.table.Rows())
	}
	e.nextRow[attr] = row + 1
	e.tails[attr] = append(e.tails[attr], v)
	delete(e.viewCache, attr)
	e.pendMu.Unlock()
	p.AddInsert(v, row)
	return nil
}

// currentRowOfLocked returns the lowest row id whose current logical
// value in attr equals v, scanning base values and the appended tail
// through the overlay — O(column) under pendMu, sized for the paper's
// small update batches rather than bulk deletes. Caller must hold
// pendMu.
func (e *AdaptiveExecutor) currentRowOfLocked(attr string, base []int64, v int64) (uint32, bool) {
	dead := e.deleted[attr]
	upd := e.updated[attr]
	at := func(row uint32, raw int64) (int64, bool) {
		if _, d := dead[row]; d {
			return 0, false
		}
		if nv, ok := upd[row]; ok {
			return nv, true
		}
		return raw, true
	}
	for i, raw := range base {
		if cur, ok := at(uint32(i), raw); ok && cur == v {
			return uint32(i), true
		}
	}
	for i, raw := range e.tails[attr] {
		row := uint32(len(base) + i)
		if cur, ok := at(row, raw); ok && cur == v {
			return row, true
		}
	}
	return 0, false
}

// Delete implements Deleter: the tuple whose current value in attr is v
// becomes a pending deletion, merged lazily like inserts. The lowest
// row id currently holding v is resolved up front and recorded in both
// the overlay and the pending operation, so the eventual index merge
// removes exactly that tuple (MergeDeleteRow) and row-level probes stay
// consistent with the index even for duplicated values. Only under
// Config.NoRowIDs does the merge fall back to removing an unspecified
// occurrence (multiset semantics; conjunctions are unavailable there
// anyway).
func (e *AdaptiveExecutor) Delete(attr string, v int64) error {
	base := e.table.Column(attr)
	if base == nil {
		return fmt.Errorf("engine: unknown attribute %q", attr)
	}
	p := e.Pending(attr)
	e.pendMu.Lock()
	row, ok := e.currentRowOfLocked(attr, base.Values(), v)
	if !ok {
		e.pendMu.Unlock()
		return fmt.Errorf("engine: delete %s = %d: no such value", attr, v)
	}
	dead, ok := e.deleted[attr]
	if !ok {
		dead = make(map[uint32]struct{})
		e.deleted[attr] = dead
	}
	dead[row] = struct{}{}
	delete(e.viewCache, attr)
	e.pendMu.Unlock()
	p.AddDeleteRow(v, row)
	return nil
}

// Update implements Updater: a deletion of oldV followed by an
// insertion of newV at the same row id, so the tuple keeps its identity
// (the paper's definition of an update, made row-stable). As with
// Delete, the target row is the lowest one currently holding oldV and
// the merge is row-targeted.
func (e *AdaptiveExecutor) Update(attr string, oldV, newV int64) error {
	base := e.table.Column(attr)
	if base == nil {
		return fmt.Errorf("engine: unknown attribute %q", attr)
	}
	p := e.Pending(attr)
	e.pendMu.Lock()
	row, ok := e.currentRowOfLocked(attr, base.Values(), oldV)
	if !ok {
		e.pendMu.Unlock()
		return fmt.Errorf("engine: update %s = %d: no such value", attr, oldV)
	}
	upd, ok := e.updated[attr]
	if !ok {
		upd = make(map[uint32]int64)
		e.updated[attr] = upd
	}
	upd[row] = newV
	delete(e.viewCache, attr)
	e.pendMu.Unlock()
	p.AddUpdate(oldV, newV, row)
	return nil
}

// View implements Viewer: a snapshot of attr's current logical state
// for positional probes. The overlay maps are copied so the snapshot
// is immutable; the copy is cached and reused until the attribute's
// next mutation, so query-heavy phases pay it once per update batch.
// The tail shares storage with the append-only record.
func (e *AdaptiveExecutor) View(attr string) (column.View, error) {
	base := e.table.Column(attr)
	if base == nil {
		return column.View{}, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	if w, ok := e.viewCache[attr]; ok {
		return w, nil
	}
	w := column.View{Base: base.Values()}
	if tail := e.tails[attr]; len(tail) > 0 {
		w.Tail = tail[:len(tail):len(tail)]
	}
	if dead := e.deleted[attr]; len(dead) > 0 {
		w.Deleted = make(map[uint32]struct{}, len(dead))
		for r := range dead {
			w.Deleted[r] = struct{}{}
		}
	}
	if upd := e.updated[attr]; len(upd) > 0 {
		w.Updated = make(map[uint32]int64, len(upd))
		for r, v := range upd {
			w.Updated[r] = v
		}
	}
	e.viewCache[attr] = w
	return w, nil
}

// EstimateCount implements CardEstimator. An existing cracker whose
// index already has boundaries at both bounds answers exactly (pending
// updates excluded — planning only needs relative order); otherwise the
// cracker's cached domain yields a uniform estimate. ok is false before
// the first query on attr.
func (e *AdaptiveExecutor) EstimateCount(attr string, lo, hi int64) (float64, bool, bool) {
	c := e.CrackerIfExists(attr)
	if c == nil {
		return 0, false, false
	}
	if r, ok := c.LookupRange(lo, hi); ok {
		return float64(r.Count()), true, true
	}
	dLo, dHi := c.Domain()
	return column.UniformEstimate(float64(c.Len()), dLo, dHi, lo, hi), false, true
}

// selectCracker returns attr's cracker with every pending update covering
// [lo, hi) merged in — the shared front half of all select forms.
func (e *AdaptiveExecutor) selectCracker(attr string, lo, hi int64) (*cracking.Column, error) {
	c, _, err := e.Cracker(attr)
	if err != nil {
		return nil, err
	}
	if p := e.Pending(attr); p.Len() > 0 && p.HasInRange(lo, hi) {
		if n := p.MergeRange(c, lo, hi); n > 0 && e.met != nil {
			e.met.MergedUpdates.Add(int64(n))
		}
	}
	return c, nil
}

func (e *AdaptiveExecutor) record(attr string, r cracking.Range) {
	if e.Registry != nil {
		e.Registry.RecordAccess(attr, r.ExactHit())
	}
}

// Count implements Executor: the cracking select operator. It merges
// pending updates covering the requested range, cracks, and records
// statistics.
func (e *AdaptiveExecutor) Count(attr string, lo, hi int64) (int, error) {
	start := obsBegin(e.met)
	c, err := e.selectCracker(attr, lo, hi)
	if err != nil {
		return 0, err
	}
	r := c.SelectRange(lo, hi)
	e.record(attr, r)
	obsEnd(e.met, start)
	return r.Count(), nil
}

// Sum implements Executor: crack, then fold the qualifying pieces under
// their latches — the aggregate never leaves the cracker's segments.
func (e *AdaptiveExecutor) Sum(attr string, lo, hi int64) (int64, error) {
	start := obsBegin(e.met)
	c, err := e.selectCracker(attr, lo, hi)
	if err != nil {
		return 0, err
	}
	r, s := c.SelectSum(lo, hi)
	e.record(attr, r)
	obsEnd(e.met, start)
	return s, nil
}

// MinMax implements Executor.
func (e *AdaptiveExecutor) MinMax(attr string, lo, hi int64) (mn, mx int64, ok bool, err error) {
	start := obsBegin(e.met)
	c, err := e.selectCracker(attr, lo, hi)
	if err != nil {
		return 0, 0, false, err
	}
	r, mn, mx := c.SelectMinMax(lo, hi)
	e.record(attr, r)
	obsEnd(e.met, start)
	return mn, mx, r.Count() > 0, nil
}

// SelectRows implements Executor: the cracked position range's rowids,
// materialized piece by piece. The executor's cracking configuration must
// carry rowids (Config.WithRows).
func (e *AdaptiveExecutor) SelectRows(attr string, lo, hi int64) ([]uint32, error) {
	start := obsBegin(e.met)
	c, err := e.selectCracker(attr, lo, hi)
	if err != nil {
		return nil, err
	}
	if !c.HasRows() {
		return nil, fmt.Errorf("engine: %s: SelectRows needs rowids; build with cracking.Config.WithRows", e.label)
	}
	r, rows := c.SelectRows(lo, hi)
	e.record(attr, r)
	obsEnd(e.met, start)
	return rows, nil
}

// universe returns the size of the position space row ids of attr can
// occupy: base rows plus rows appended by pending insertions.
func (e *AdaptiveExecutor) universe(attr string) int {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	n := e.table.Rows()
	if next, ok := e.nextRow[attr]; ok && int(next) > n {
		n = int(next)
	}
	return n
}

// SelectBitmap implements BitmapSelector: the cracked position range's
// rowids streamed segment by segment into the bitmap under the pieces'
// read latches — the select refines the index exactly like SelectRows
// but materializes nothing.
func (e *AdaptiveExecutor) SelectBitmap(attr string, lo, hi int64, bm *column.Bitmap) error {
	start := obsBegin(e.met)
	c, err := e.selectCracker(attr, lo, hi)
	if err != nil {
		return err
	}
	bm.Reset(e.universe(attr))
	// SetRowsExtend, not SetRows: between sizing and streaming, a
	// concurrent query can merge a pending insert whose row id lies at
	// or beyond the universe read above.
	r, ok := c.SelectRowsFunc(lo, hi, func(rows []uint32) { bm.SetRowsExtend(rows) })
	if !ok {
		return fmt.Errorf("engine: %s: SelectBitmap needs rowids; build with cracking.Config.WithRows", e.label)
	}
	e.record(attr, r)
	obsEnd(e.met, start)
	return nil
}

// KeyOrderSpan implements KeyOrderWalker: an existing rowid-carrying
// cracker streams its pieces as clusters, so the expected cluster span
// is the column's domain span divided by the piece count — the number
// background refinement keeps shrinking. No cracker yet (attr never
// drove a select and was never admitted as a potential index) means no
// key-ordered path.
func (e *AdaptiveExecutor) KeyOrderSpan(attr string) (float64, bool) {
	c := e.CrackerIfExists(attr)
	if c == nil || !c.HasRows() {
		return 0, false
	}
	pieces := c.Pieces()
	if pieces < 1 {
		pieces = 1
	}
	dLo, dHi := c.Domain()
	return (float64(dHi) - float64(dLo) + 1) / float64(pieces), true
}

// WalkKeyOrder implements KeyOrderWalker: every pending update is merged
// first (a full-column walk is a select over the whole value range, and
// pays for its merges exactly like any range select does), then the
// pieces stream in ascending key order under their read latches.
func (e *AdaptiveExecutor) WalkKeyOrder(attr string, fn func(vals []int64, rows []uint32)) (bool, error) {
	if e.table.Column(attr) == nil {
		return false, fmt.Errorf("engine: unknown attribute %q", attr)
	}
	c := e.CrackerIfExists(attr)
	if c == nil || !c.HasRows() {
		return false, nil
	}
	if p := e.Pending(attr); p.Len() > 0 {
		if n := p.MergeAll(c); n > 0 && e.met != nil {
			e.met.MergedUpdates.Add(int64(n))
		}
	}
	if e.met != nil {
		e.met.KeyOrderWalks.Inc()
	}
	c.ForEachPiece(fn)
	return true, nil
}

// TotalPieces sums pieces over all cracker columns (Figure 6(c)).
func (e *AdaptiveExecutor) TotalPieces() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for _, c := range e.crackers {
		total += c.Pieces()
	}
	return total
}

// Close implements Executor.
func (e *AdaptiveExecutor) Close() {}

// HolisticExecutor wraps the adaptive executor with the holistic indexing
// daemon: user queries run the cracking select operator while the daemon
// exploits idle contexts for auxiliary refinements.
type HolisticExecutor struct {
	*AdaptiveExecutor
	Daemon *holistic.Daemon
	Acct   *cpu.LoadAccountant
	// UserThreads is the number of contexts one user query occupies
	// while running (the u of the paper's uXwYxZ distributions).
	UserThreads int
	// ec is the refinement-economics recorder residual predicate spans
	// are charged to; swapped atomically so queries never race SetEcon.
	ec atomic.Pointer[econ.Econ]
}

// HolisticConfig assembles the pieces of a holistic executor.
type HolisticConfig struct {
	// Cracking configures the user-query cracker columns (PVDC kernel,
	// user parallelism, RefineWorkers for the daemon's cracks).
	Cracking cracking.Config
	// Daemon configures the tuning cycle.
	Daemon holistic.Config
	// L1Values is the optimal piece size (Equation 1).
	L1Values int
	// Contexts is the hardware-context budget of the load accountant.
	Contexts int
	// UserThreads is how many contexts a running user query occupies.
	UserThreads int
	// StatsSeed seeds the W4 strategy RNG.
	StatsSeed int64
	// Monitor overrides the load accountant as the daemon's idle signal;
	// benchmarks use cpu.Fixed to pin the uXwYxZ thread distributions.
	Monitor cpu.Monitor
}

// NewHolisticExecutor builds the executor and starts its daemon.
func NewHolisticExecutor(t *Table, cfg HolisticConfig) *HolisticExecutor {
	if cfg.Contexts < 1 {
		cfg.Contexts = 2
	}
	if cfg.UserThreads < 1 {
		cfg.UserThreads = 1
	}
	reg := stats.NewRegistry(cfg.L1Values, cfg.StatsSeed)
	acct := cpu.NewLoadAccountant(cfg.Contexts)
	var mon cpu.Monitor = acct
	if cfg.Monitor != nil {
		mon = cfg.Monitor
	}
	daemon := holistic.New(reg, mon, cfg.Daemon)
	ad := NewAdaptiveExecutor(t, cfg.Cracking, "holistic indexing")
	ad.Registry = reg
	h := &HolisticExecutor{
		AdaptiveExecutor: ad,
		Daemon:           daemon,
		Acct:             acct,
		UserThreads:      cfg.UserThreads,
	}
	ad.Admit = func(name string, col *cracking.Column) *stats.Entry {
		entry, _ := daemon.AdmitIndex(name, col, false)
		daemon.AttachPending(name, ad.Pending(name))
		return entry
	}
	daemon.Start()
	return h
}

// AddPotential registers an index on attr into Cpotential so the daemon
// can refine it before any query arrives (Figure 9's idle-time prefill).
func (h *HolisticExecutor) AddPotential(attr string) error {
	base := h.table.Column(attr)
	if base == nil {
		return fmt.Errorf("engine: unknown attribute %q", attr)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.crackers[attr]; ok {
		return nil
	}
	c := cracking.New(attr, base.Values(), h.cfg)
	h.crackers[attr] = c
	h.Daemon.AdmitIndex(attr, c, true)
	h.Daemon.AttachPending(attr, h.Pending(attr))
	return nil
}

// NotePredicate implements PredicateSink: a conjunctive query touched
// attr without driving its select. The attribute joins the potential
// configuration (no-op if already indexed) and its access statistics
// are bumped, so the daemon's refinement effort spreads across every
// column the workload touches — the paper's multi-column payoff.
func (h *HolisticExecutor) NotePredicate(attr string) error {
	if err := h.AddPotential(attr); err != nil {
		return err
	}
	h.Registry.RecordAccess(attr, false)
	return nil
}

// SetEcon attaches the economics recorder residual predicate spans are
// charged to (nil detaches), and forwards it to the daemon so
// refinement investment lands in the same ledger.
func (h *HolisticExecutor) SetEcon(e *econ.Econ) {
	h.ec.Store(e)
	h.Daemon.SetEcon(e)
}

// NotePredicateSpan implements PredicateSpanSink: NotePredicate's
// admission plus the access-heatmap charge for [lo, hi), so operators
// can compare where residual load lands against where the daemon
// refines. Steady-state it allocates nothing (the heatmap recording
// path is //holistic:noalloc); only the error format on an unknown
// attribute does.
func (h *HolisticExecutor) NotePredicateSpan(attr string, lo, hi int64) error {
	if err := h.NotePredicate(attr); err != nil {
		return err
	}
	if ec := h.ec.Load(); ec != nil {
		if c := h.CrackerIfExists(attr); c != nil {
			dLo, dHi := c.Domain()
			ec.NotePredicate(attr, lo, hi, dLo, dHi)
		}
	}
	return nil
}

// Count implements Executor: the adaptive select operator bracketed by
// load accounting so the daemon sees the occupied contexts.
func (h *HolisticExecutor) Count(attr string, lo, hi int64) (int, error) {
	h.Acct.Acquire(h.UserThreads)
	defer h.Acct.Release(h.UserThreads)
	return h.AdaptiveExecutor.Count(attr, lo, hi)
}

// Sum implements Executor with the same load-accounting bracket.
func (h *HolisticExecutor) Sum(attr string, lo, hi int64) (int64, error) {
	h.Acct.Acquire(h.UserThreads)
	defer h.Acct.Release(h.UserThreads)
	return h.AdaptiveExecutor.Sum(attr, lo, hi)
}

// MinMax implements Executor with the same load-accounting bracket.
func (h *HolisticExecutor) MinMax(attr string, lo, hi int64) (mn, mx int64, ok bool, err error) {
	h.Acct.Acquire(h.UserThreads)
	defer h.Acct.Release(h.UserThreads)
	return h.AdaptiveExecutor.MinMax(attr, lo, hi)
}

// SelectRows implements Executor with the same load-accounting bracket.
func (h *HolisticExecutor) SelectRows(attr string, lo, hi int64) ([]uint32, error) {
	h.Acct.Acquire(h.UserThreads)
	defer h.Acct.Release(h.UserThreads)
	return h.AdaptiveExecutor.SelectRows(attr, lo, hi)
}

// SelectBitmap implements BitmapSelector with the same load-accounting
// bracket as the other select forms.
func (h *HolisticExecutor) SelectBitmap(attr string, lo, hi int64, bm *column.Bitmap) error {
	h.Acct.Acquire(h.UserThreads)
	defer h.Acct.Release(h.UserThreads)
	return h.AdaptiveExecutor.SelectBitmap(attr, lo, hi, bm)
}

// WalkKeyOrder implements KeyOrderWalker with the same load-accounting
// bracket as the select forms, so the daemon sees the walk's contexts as
// occupied.
func (h *HolisticExecutor) WalkKeyOrder(attr string, fn func(vals []int64, rows []uint32)) (bool, error) {
	h.Acct.Acquire(h.UserThreads)
	defer h.Acct.Release(h.UserThreads)
	return h.AdaptiveExecutor.WalkKeyOrder(attr, fn)
}

// Close stops the daemon.
func (h *HolisticExecutor) Close() { h.Daemon.Stop() }

// CCGIExecutor is the mP-CCGI baseline (Section 5.2).
type CCGIExecutor struct {
	table   *Table
	Threads int
	Buckets int
	cfg     cracking.Config

	mu      sync.Mutex
	indexes map[string]*ccgi.Index
}

// NewCCGIExecutor builds the baseline with the given chunk parallelism
// and coarse-partitioning bucket count.
func NewCCGIExecutor(t *Table, threads, buckets int, cfg cracking.Config) *CCGIExecutor {
	if threads < 1 {
		threads = 1
	}
	return &CCGIExecutor{table: t, Threads: threads, Buckets: buckets, cfg: cfg, indexes: make(map[string]*ccgi.Index)}
}

// Label implements Executor.
func (e *CCGIExecutor) Label() string { return "mP-CCGI" }

func (e *CCGIExecutor) index(attr string) (*ccgi.Index, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	x, ok := e.indexes[attr]
	if !ok {
		base := e.table.Column(attr)
		if base == nil {
			return nil, fmt.Errorf("engine: unknown attribute %q", attr)
		}
		x = ccgi.New(attr, base.Values(), e.Threads, e.Buckets, e.cfg)
		e.indexes[attr] = x
	}
	return x, nil
}

// Count implements Executor.
func (e *CCGIExecutor) Count(attr string, lo, hi int64) (int, error) {
	x, err := e.index(attr)
	if err != nil {
		return 0, err
	}
	return x.SelectCount(lo, hi), nil
}

// Sum implements Executor: every chunk cracks and folds in parallel.
func (e *CCGIExecutor) Sum(attr string, lo, hi int64) (int64, error) {
	x, err := e.index(attr)
	if err != nil {
		return 0, err
	}
	return x.SelectSum(lo, hi), nil
}

// MinMax implements Executor.
func (e *CCGIExecutor) MinMax(attr string, lo, hi int64) (mn, mx int64, ok bool, err error) {
	x, err := e.index(attr)
	if err != nil {
		return 0, 0, false, err
	}
	mn, mx, ok = x.SelectMinMax(lo, hi)
	return mn, mx, ok, nil
}

// SelectRows implements Executor: chunk-local rowids shifted to base
// positions. The executor's cracking configuration must carry rowids.
func (e *CCGIExecutor) SelectRows(attr string, lo, hi int64) ([]uint32, error) {
	x, err := e.index(attr)
	if err != nil {
		return nil, err
	}
	rows, ok := x.SelectRows(lo, hi)
	if !ok {
		return nil, fmt.Errorf("engine: %s: SelectRows needs rowids; build with cracking.Config.WithRows", e.Label())
	}
	return rows, nil
}

// SelectBitmap implements BitmapSelector: every chunk cracks in
// parallel and ORs its shifted rowids into the bitmap atomically (chunk
// position spans are disjoint, but two chunks can share a boundary
// word).
func (e *CCGIExecutor) SelectBitmap(attr string, lo, hi int64, bm *column.Bitmap) error {
	x, err := e.index(attr)
	if err != nil {
		return err
	}
	bm.Reset(e.table.Rows())
	if !x.SelectRowsFunc(lo, hi, func(off uint32, rows []uint32) { bm.OrRowsAtomic(rows, off) }) {
		return fmt.Errorf("engine: %s: SelectBitmap needs rowids; build with cracking.Config.WithRows", e.Label())
	}
	return nil
}

// Close implements Executor.
func (e *CCGIExecutor) Close() {}
