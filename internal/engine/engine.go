// Package engine is the minimal bulk-processing column-store the
// reproduction runs on (DESIGN.md §3 records the substitution for
// MonetDB): tables of dense integer columns, a select operator per
// indexing mode, late tuple reconstruction, and the executor glue that
// the benchmark harness drives.
//
// One Executor exists per indexing approach compared in Section 5:
//
//	ModeScan       — plain parallel scans, no indexing
//	ModeOffline    — pre-sorted columns, binary-search selects
//	ModeOnline     — scan for an epoch, then sort, then binary search
//	ModeAdaptive   — database cracking (parallel vectorized, PVDC)
//	ModeStochastic — stochastic cracking (PVSDC)
//	ModeCCGI       — the mP-CCGI multi-core baseline
//	ModeHolistic   — cracking plus the holistic indexing daemon
package engine

import (
	"fmt"
	"sync"

	"holistic/internal/column"
	"holistic/internal/join"
)

// Table is a named set of equally long columns (one relation, vertically
// fragmented as in Section 3.1).
type Table struct {
	name   string
	order  []string
	byName map[string]*column.Column
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{name: name, byName: make(map[string]*column.Column)}
}

// Name returns the relation name.
func (t *Table) Name() string { return t.name }

// AddColumn attaches a column; all columns of a table must have the same
// length (checked so position alignment — the backbone of late tuple
// reconstruction — cannot silently break).
func (t *Table) AddColumn(c *column.Column) error {
	if _, dup := t.byName[c.Name()]; dup {
		return fmt.Errorf("engine: duplicate column %q in table %q", c.Name(), t.name)
	}
	if len(t.order) > 0 && c.Len() != t.byName[t.order[0]].Len() {
		return fmt.Errorf("engine: column %q has %d rows, table %q has %d",
			c.Name(), c.Len(), t.name, t.byName[t.order[0]].Len())
	}
	t.order = append(t.order, c.Name())
	t.byName[c.Name()] = c
	return nil
}

// MustAddColumn is AddColumn for static table construction.
func (t *Table) MustAddColumn(c *column.Column) {
	if err := t.AddColumn(c); err != nil {
		panic(err)
	}
}

// Column returns a column by name (nil if absent).
func (t *Table) Column(name string) *column.Column { return t.byName[name] }

// ColumnNames returns the attribute names in insertion order.
func (t *Table) ColumnNames() []string { return append([]string(nil), t.order...) }

// Rows returns the number of tuples (0 for an empty table).
func (t *Table) Rows() int {
	if len(t.order) == 0 {
		return 0
	}
	return t.byName[t.order[0]].Len()
}

// Executor is a query-processing mode: it answers range selections over
// the attributes of one table, building or refining whatever index
// structures its mode prescribes as a side effect.
//
// Beyond Count, every mode answers the aggregate/materialization forms
// with the aggregation pushed down into its native access path — piece
// traversal for the cracking modes, binary-search slices for the sorted
// modes, parallel chunked folds for the scan and CCGI modes — never
// materialize-then-fold.
type Executor interface {
	// Label names the mode as the paper's figures do.
	Label() string
	// Count answers "select count(*) from R where lo <= attr < hi".
	Count(attr string, lo, hi int64) (int, error)
	// Sum answers "select sum(attr) from R where lo <= attr < hi".
	Sum(attr string, lo, hi int64) (int64, error)
	// MinMax answers "select min(attr), max(attr) from R where
	// lo <= attr < hi"; ok is false when no tuple qualifies.
	MinMax(attr string, lo, hi int64) (mn, mx int64, ok bool, err error)
	// SelectRows materializes the base row ids of qualifying tuples, in
	// unspecified order — the position list late tuple reconstruction
	// feeds to project operators.
	SelectRows(attr string, lo, hi int64) ([]uint32, error)
	// Close releases background resources (daemons).
	Close()
}

// Inserter is implemented by executors that support the update scenarios
// of Section 5.7 (pending insertions merged via Ripple).
type Inserter interface {
	Insert(attr string, v int64) error
}

// Deleter is implemented by executors that support pending deletions:
// Delete removes attr's value from the row currently holding v (the
// lowest such row id when the value occurs more than once). It is a
// per-attribute operation, like Insert: the row's values in other
// attributes are unaffected.
type Deleter interface {
	Delete(attr string, v int64) error
}

// Updater is implemented by executors that support pending value
// updates, modelled as a deletion followed by an insertion at the same
// row id, so the tuple keeps its identity across the update.
type Updater interface {
	Update(attr string, oldV, newV int64) error
}

// Viewer provides update-aware positional access to an attribute: the
// probe side of late tuple reconstruction. The returned view reflects
// the attribute's current logical state — base values, appended rows,
// deletions and updates — regardless of how much of the pending-update
// queue has been merged into the attribute's index structures.
// Executors without update support are not Viewers; callers fall back
// to the base column, which is by construction the current state there.
type Viewer interface {
	View(attr string) (column.View, error)
}

// CardEstimator lets an executor answer "how many tuples fall in
// [lo, hi) on attr" from its index structures without touching data.
// exact reports a true count (sorted column, existing cracker
// boundaries); ok is false when the executor has no basis for an
// estimate and the caller should fall back to a uniform-domain guess.
// The conjunctive query planner uses this to order predicates by
// selectivity.
type CardEstimator interface {
	EstimateCount(attr string, lo, hi int64) (est float64, exact, ok bool)
}

// BitmapSelector is implemented by executors whose select operator can
// deliver the qualifying positions as a word-packed bitmap instead of a
// materialized position list. The executor resets bm to cover its
// position universe (base rows plus appended pending rows) and sets one
// bit per qualifying row id, building or refining its index structures
// exactly as SelectRows would. Callers pass a pooled bitmap, so a
// steady-state dense select allocates nothing; the conjunctive query
// runner picks this path when the driving conjunct is dense enough that
// bits beat 32-bit positions (see internal/query).
type BitmapSelector interface {
	SelectBitmap(attr string, lo, hi int64, bm *column.Bitmap) error
}

// KeyOrderWalker is implemented by executors whose index structures can
// stream an attribute in key-clustered order: a sequence of clusters,
// each a slice of values with the aligned base row ids, such that the
// value sets of successive clusters are disjoint and ascending (every
// value of an earlier cluster is strictly below every value of a later
// one). Values inside one cluster are unordered. Sorted columns stream
// one cluster per run of equal values; cracker columns stream their
// pieces, merging any pending updates first so the stream reflects the
// attribute's current logical state. The grouped-aggregation subsystem
// uses this as the access path of sort-based (index-clustered) grouping:
// each cluster is aggregated with a small local accumulator and groups
// emit in key order with no global hash table — the holistic payoff,
// since background refinement keeps shrinking the clusters.
type KeyOrderWalker interface {
	// KeyOrderSpan estimates the value span one streamed cluster of attr
	// covers right now (sorted columns: 1; crackers: domain span divided
	// by the piece count). ok is false when no key-ordered access path
	// currently exists for attr, in which case WalkKeyOrder would decline
	// too.
	KeyOrderSpan(attr string) (span float64, ok bool)
	// WalkKeyOrder streams attr's clusters in ascending key order; fn
	// must not retain the slices. ok is false (and fn is never called)
	// when the executor has no key-ordered access path for attr — the
	// caller falls back to hash grouping.
	WalkKeyOrder(attr string, fn func(vals []int64, rows []uint32)) (ok bool, err error)
}

// PredicateSink is implemented by executors that want to observe every
// predicate of a multi-attribute conjunctive query — not only the one
// the planner chose to drive the select. Holistic indexing uses it to
// admit every touched attribute into the index space so background
// refinement spreads across all columns of the workload.
type PredicateSink interface {
	NotePredicate(attr string) error
}

// PredicateSpanSink extends PredicateSink with the predicate's key
// range [lo, hi), so the executor can attribute the access to a region
// of the key space (the refinement-economics heatmaps) in addition to
// admitting the attribute. The query planner prefers this interface
// over PredicateSink when the executor implements it.
type PredicateSpanSink interface {
	NotePredicateSpan(attr string, lo, hi int64) error
}

// HashJoin builds a hash table over build and probes it with probe,
// returning for every probe position the matching build position (-1 if
// none; the last build occurrence wins for duplicated keys). The table
// is the join subsystem's open-addressing map rather than a Go map —
// no per-bucket pointer chasing, no interface boxing; full join plans
// (radix-partitioned, duplicate-preserving, selection-aware) live in
// internal/join.
func HashJoin(build, probe []int64) []int32 {
	ht := buildJoinMap(build)
	out := make([]int32, len(probe))
	for i, k := range probe {
		if j, ok := ht.Get(k); ok {
			out[i] = j
		} else {
			out[i] = -1
		}
	}
	return out
}

func buildJoinMap(build []int64) *join.Map {
	ht := join.NewMap(len(build))
	for i, k := range build {
		ht.Put(k, int32(i))
	}
	return ht
}

// ParallelHashJoin is HashJoin with the probe phase split across workers.
func ParallelHashJoin(build, probe []int64, workers int) []int32 {
	if workers < 2 || len(probe) < 4096 {
		return HashJoin(build, probe)
	}
	ht := buildJoinMap(build)
	out := make([]int32, len(probe))
	var wg sync.WaitGroup
	chunk := (len(probe) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(probe) {
			break
		}
		hi := lo + chunk
		if hi > len(probe) {
			hi = len(probe)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if j, ok := ht.Get(probe[i]); ok {
					out[i] = j
				} else {
					out[i] = -1
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Grouped aggregation lives in internal/groupby: fused multi-aggregate
// plans over selection vectors, with dense/hash/sort physical
// strategies (the former map-based GroupSums helper it supersedes was
// removed).
