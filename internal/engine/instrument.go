// Executor instrumentation: the hook a Store uses to attach access-path
// telemetry (select latency, cracker builds, merged updates, key-order
// walks) to the executors that support it.

package engine

import (
	"time"

	"holistic/internal/obs"
)

// Instrumented is implemented by executors that record access-path
// telemetry into an obs.ExecMetrics. Attaching nil detaches.
type Instrumented interface {
	SetExecMetrics(m *obs.ExecMetrics)
}

// obsBegin starts a select-latency measurement when metrics are
// attached; the zero time otherwise.
//
//holistic:noalloc
func obsBegin(m *obs.ExecMetrics) time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// obsEnd completes a measurement started by obsBegin.
//
//holistic:noalloc
func obsEnd(m *obs.ExecMetrics, start time.Time) {
	if m == nil {
		return
	}
	m.RecordSelect(time.Since(start).Nanoseconds())
}
