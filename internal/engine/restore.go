package engine

import (
	"sort"

	"holistic/internal/cracking"
	"holistic/internal/durable"
	"holistic/internal/sortidx"
	"holistic/internal/stats"
)

// This file is the bridge between the executors and the durable layer:
// exporting the logical column content plus the physical adaptive state
// for a snapshot, and reinstalling both on recovery. Exports run under
// the store's write lock (no concurrent Insert/Delete/Update), so the
// overlay read under pendMu and the index export observe one cut of the
// logical state; concurrent queries may keep cracking, which never
// changes logical content.

// ExportTableData captures the base columns of t as durable column
// data — the export path for executors without an update overlay.
func ExportTableData(t *Table) []durable.ColumnData {
	var cols []durable.ColumnData
	for _, name := range t.ColumnNames() {
		cols = append(cols, durable.ColumnData{
			Name: name,
			Base: append([]int64(nil), t.Column(name).Values()...),
		})
	}
	return cols
}

// ExportDurable captures every attribute's folded logical content and,
// where a cracker exists, its physical state. Folding bakes the update
// overlay into the arrays: updated rows carry their newest value and
// deleted rows keep the value they last held, so recovery can rebuild a
// first-touch cracker from the base array and replay the deletions
// exactly as the normal write path would have.
func (e *AdaptiveExecutor) ExportDurable() ([]durable.ColumnData, []durable.IndexState) {
	var cols []durable.ColumnData
	var states []durable.IndexState
	for _, attr := range e.table.ColumnNames() {
		// Complete the cracker's physical state first: with every
		// pending op merged, the exported arrays hold exactly the live
		// logical values and an empty pending queue on restore matches.
		c := e.CrackerIfExists(attr)
		if c != nil {
			if n := e.Pending(attr).MergeAll(c); n > 0 && e.met != nil {
				e.met.MergedUpdates.Add(int64(n))
			}
		}
		cols = append(cols, e.exportAttrData(attr))
		if c != nil {
			st := c.ExportState()
			is := durable.IndexState{
				Attr:    attr,
				Kind:    durable.IndexCracker,
				Vals:    st.Vals,
				Rows:    st.Rows,
				HasRows: st.Rows != nil,
				Keys:    st.Keys,
				Starts:  st.Starts,
			}
			if e.Registry != nil {
				if entry := e.Registry.Get(attr); entry != nil {
					is.Accesses = entry.Accesses()
					is.Hits = entry.Hits()
					is.StatsState = uint8(entry.State()) + 1
				}
			}
			states = append(states, is)
		}
	}
	return cols, states
}

// exportAttrData folds one attribute's overlay into durable arrays.
func (e *AdaptiveExecutor) exportAttrData(attr string) durable.ColumnData {
	base := e.table.Column(attr).Values()
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	cd := durable.ColumnData{
		Name:  attr,
		Base:  append([]int64(nil), base...),
		Tails: append([]int64(nil), e.tails[attr]...),
	}
	for row, v := range e.updated[attr] {
		if int(row) < len(cd.Base) {
			cd.Base[row] = v
		} else if i := int(row) - len(cd.Base); i < len(cd.Tails) {
			cd.Tails[i] = v
		}
	}
	for row := range e.deleted[attr] {
		cd.Dead = append(cd.Dead, row)
	}
	sort.Slice(cd.Dead, func(i, j int) bool { return cd.Dead[i] < cd.Dead[j] })
	return cd
}

// RestoreAttrData reinstates one attribute's logical overlay on a
// freshly built executor whose table base came from the snapshot, and
// queues the synthetic pending operations that reproduce the normal
// write path against a first-touch cracker: the base array still holds
// the last value of every dead base row, so AddDeleteRow removes
// exactly that occurrence on merge, and tail inserts (with their
// deletions, for dead tails) replay in row order.
func (e *AdaptiveExecutor) RestoreAttrData(cd durable.ColumnData) {
	baseRows := uint32(len(cd.Base))
	p := e.Pending(cd.Name)
	e.pendMu.Lock()
	if len(cd.Tails) > 0 {
		e.tails[cd.Name] = append([]int64(nil), cd.Tails...)
		e.nextRow[cd.Name] = baseRows + uint32(len(cd.Tails))
	}
	var dead map[uint32]struct{}
	if len(cd.Dead) > 0 {
		dead = make(map[uint32]struct{}, len(cd.Dead))
		for _, row := range cd.Dead {
			dead[row] = struct{}{}
		}
		e.deleted[cd.Name] = dead
	}
	delete(e.viewCache, cd.Name)
	e.pendMu.Unlock()

	for _, row := range cd.Dead {
		if row >= baseRows {
			break // tail deletions interleave with the inserts below
		}
		p.AddDeleteRow(cd.Base[row], row)
	}
	for i, v := range cd.Tails {
		row := baseRows + uint32(i)
		p.AddInsert(v, row)
		if _, d := dead[row]; d {
			p.AddDeleteRow(v, row)
		}
	}
}

// InstallRestoredCracker installs a rebuilt cracker column for attr,
// registering it exactly as a first query would (through the Admit hook
// when holistic mode routes admission via the daemon), and returns the
// stats entry for count restoration. The caller must have reinstated
// the attribute's overlay WITHOUT synthetic pending operations: the
// restored cracker already contains every live value.
func (e *AdaptiveExecutor) InstallRestoredCracker(attr string, c *cracking.Column) *stats.Entry {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.crackers[attr]; ok {
		return nil
	}
	e.crackers[attr] = c
	if e.Admit != nil {
		return e.Admit(attr, c)
	}
	if e.Registry != nil {
		return e.Registry.Add(attr, c, false)
	}
	return nil
}

// RestoreOverlay reinstates just the logical overlay (tails and
// tombstones) of one attribute — the companion of
// InstallRestoredCracker, which needs no synthetic pending queue.
func (e *AdaptiveExecutor) RestoreOverlay(cd durable.ColumnData) {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	if len(cd.Tails) > 0 {
		e.tails[cd.Name] = append([]int64(nil), cd.Tails...)
		e.nextRow[cd.Name] = uint32(len(cd.Base) + len(cd.Tails))
	}
	if len(cd.Dead) > 0 {
		dead := make(map[uint32]struct{}, len(cd.Dead))
		for _, row := range cd.Dead {
			dead[row] = struct{}{}
		}
		e.deleted[cd.Name] = dead
	}
	delete(e.viewCache, cd.Name)
}

// ExportSorted captures the sorted runs built so far.
func (e *OfflineExecutor) ExportSorted() []durable.IndexState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return exportSortedMap(e.sorted)
}

// SeedSorted reinstates a restored sorted run, so the executor serves
// it instead of re-sorting on first touch.
func (e *OfflineExecutor) SeedSorted(sc *sortidx.SortedColumn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sorted[sc.Name()] = sc
}

// ExportSorted captures the sorted runs built so far. The epoch query
// counter is deliberately not persisted: a restarted store restarts its
// monitoring epoch, but seeded runs keep serving index probes.
func (e *OnlineExecutor) ExportSorted() []durable.IndexState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return exportSortedMap(e.sorted)
}

// SeedSorted reinstates a restored sorted run. A non-empty sorted map
// also marks the epoch sort as already paid, so the post-epoch bulk
// build is skipped.
func (e *OnlineExecutor) SeedSorted(sc *sortidx.SortedColumn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sorted[sc.Name()] = sc
}

func exportSortedMap(sorted map[string]*sortidx.SortedColumn) []durable.IndexState {
	var states []durable.IndexState
	names := make([]string, 0, len(sorted))
	for name := range sorted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sc := sorted[name]
		st := durable.IndexState{
			Attr:    name,
			Kind:    durable.IndexSorted,
			Vals:    append([]int64(nil), sc.Values()...),
			HasRows: sc.HasRows(),
		}
		if sc.HasRows() {
			st.Rows = append([]uint32(nil), sc.RowIDs()...)
		}
		states = append(states, st)
	}
	return states
}
