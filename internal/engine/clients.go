package engine

import (
	"fmt"
	"sync"

	"holistic/internal/workload"
)

// RunQueries drives a query sequence through an executor with the given
// number of concurrent clients (Section 5.8 varies this from 1 to 32),
// verifying nothing — pure load generation. attrName maps a workload
// attribute index to a column name. It returns the per-query counts in
// sequence order (so correctness checks remain possible) and the first
// error encountered.
func RunQueries(exec Executor, queries []workload.Query, attrName func(int) string, clients int) ([]int, error) {
	if clients < 1 {
		clients = 1
	}
	counts := make([]int, len(queries))
	if clients == 1 {
		for i, q := range queries {
			n, err := exec.Count(attrName(q.Attr), q.Lo, q.Hi)
			if err != nil {
				return counts, fmt.Errorf("query %d: %w", i, err)
			}
			counts[i] = n
		}
		return counts, nil
	}

	type job struct {
		idx int
		q   workload.Query
	}
	jobs := make(chan job)
	errs := make(chan error, clients)
	var failed sync.Map
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if _, dead := failed.Load("err"); dead {
					continue // keep draining so the producer never blocks
				}
				n, err := exec.Count(attrName(j.q.Attr), j.q.Lo, j.q.Hi)
				if err != nil {
					failed.Store("err", true)
					select {
					case errs <- fmt.Errorf("query %d: %w", j.idx, err):
					default:
					}
					continue
				}
				counts[j.idx] = n
			}
		}()
	}
	for i, q := range queries {
		jobs <- job{i, q}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return counts, err
	default:
		return counts, nil
	}
}
