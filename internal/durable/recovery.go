package durable

import (
	"fmt"
	"strings"
)

// Recovered is everything Recover reassembled from the directory: the
// chosen snapshot generation, the logical column data, the surviving
// adaptive-state sections, and the WAL tail to replay on top.
type Recovered struct {
	Gen      uint64
	Manifest *Manifest    // nil on a fresh directory
	Columns  []ColumnData // snapshot order
	Indexes  []IndexState // surviving adaptive state
	Records  []Record     // WAL tail, in append order

	TornTail       bool // replay stopped at a torn frame
	Fallbacks      int  // manifest generations skipped as invalid
	StateDropped   bool // whole adaptive-state file was unusable
	DroppedIndexes int  // individual state sections dropped
	Clean          bool // clean-shutdown marker matched; nothing replayed

	NextPart       int    // part number for the generation's next WAL segment
	SeqAfterReplay uint64 // WAL seq after applying Records
}

// Recover validates and loads the newest usable snapshot generation,
// falling back to the previous one when the newest is torn, and parses
// the WAL tail. The clean-shutdown marker is consumed (deleted) so a
// later crash is visibly unclean. A directory with no valid manifest
// and no prior generations is a fresh store; a directory whose every
// manifest is corrupt is an error — the data cannot be reconstructed.
func Recover(fs FS) (*Recovered, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	markerGen, markerOK := readCleanMarker(fs)
	if markerOK {
		if err := fs.Remove(cleanMarker); err != nil {
			return nil, err
		}
	}

	rec := &Recovered{}
	gens := manifestGens(names)
	for _, gen := range gens {
		m, cols, ok := loadGeneration(fs, gen)
		if !ok {
			rec.Fallbacks++
			continue
		}
		rec.Gen = gen
		rec.Manifest = m
		rec.Columns = cols
		break
	}
	if rec.Manifest == nil && len(gens) > 0 {
		return nil, fmt.Errorf("durable: no usable manifest among %d generations", len(gens))
	}

	if rec.Manifest != nil && rec.Manifest.StateFile != "" {
		if data, err := fs.ReadFile(rec.Manifest.StateFile); err != nil {
			rec.StateDropped = true
		} else if states, dropped, err := DecodeState(data); err != nil {
			rec.StateDropped = true
		} else {
			rec.Indexes = states
			rec.DroppedIndexes = dropped
		}
	}

	for _, seg := range walSegmentsFrom(names, rec.Gen) {
		data, err := fs.ReadFile(seg)
		if err != nil {
			return nil, err
		}
		recs, torn := ReadLog(data)
		rec.Records = append(rec.Records, recs...)
		if torn {
			// A torn frame is the unsynced tail of the crash; nothing
			// sequenced after it can exist in a later segment.
			rec.TornTail = true
			break
		}
	}

	rec.NextPart = maxWALPart(names, rec.Gen) + 1
	rec.SeqAfterReplay = rec.Gen + uint64(len(rec.Records))
	rec.Clean = markerOK && markerGen == rec.Gen &&
		len(rec.Records) == 0 && rec.Fallbacks == 0
	return rec, nil
}

// loadGeneration loads and validates one manifest generation with every
// column segment it references.
func loadGeneration(fs FS, gen uint64) (*Manifest, []ColumnData, bool) {
	m, err := LoadManifest(fs, ManifestName(gen))
	if err != nil || m.Generation != gen {
		return nil, nil, false
	}
	cols := make([]ColumnData, 0, len(m.Columns))
	for _, mc := range m.Columns {
		data, err := fs.ReadFile(mc.File)
		if err != nil {
			return nil, nil, false
		}
		c, err := DecodeSegment(data)
		if err != nil || c.Name != mc.Attr {
			return nil, nil, false
		}
		cols = append(cols, c)
	}
	return m, cols, true
}

// WriteSnapshot writes the column segments and adaptive-state file of
// generation m.Generation, then commits them by writing and renaming
// the manifest. On return the new generation is the one recovery picks.
func WriteSnapshot(fs FS, m *Manifest, cols []ColumnData, states []IndexState) error {
	m.Columns = m.Columns[:0]
	for _, c := range cols {
		name := SegmentName(m.Generation, c.Name)
		if err := WriteSegment(fs, name, c); err != nil {
			return err
		}
		m.Columns = append(m.Columns, ManifestColumn{Attr: c.Name, File: name})
	}
	m.StateFile = ""
	if len(states) > 0 {
		m.StateFile = StateName(m.Generation)
		if err := writeFileSync(fs, m.StateFile, EncodeState(states)); err != nil {
			return err
		}
	}
	return WriteManifest(fs, m)
}

// Prune removes snapshot and WAL files of generations not in keep. It
// is best-effort: the first removal error is returned, but recovery is
// indifferent to leftovers — it always starts from the newest valid
// manifest.
func Prune(fs FS, keep map[uint64]bool) error {
	names, err := fs.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		gen, owned := fileGeneration(name)
		if !owned || keep[gen] {
			continue
		}
		if err := fs.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// PruneWAL removes every WAL segment of generation gen or newer. Safe
// only when those segments collectively hold zero acknowledged records
// — the reopen path uses it to retire a torn segment whose decodable
// prefix was empty, so a later recovery never stops its replay at that
// stale tear.
func PruneWAL(fs FS, gen uint64) error {
	names, err := fs.List()
	if err != nil {
		return err
	}
	for _, name := range walSegmentsFrom(names, gen) {
		if err := fs.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// fileGeneration parses the generation out of any durable file name; ok
// is false for files the durable layer does not own.
func fileGeneration(name string) (gen uint64, ok bool) {
	if g, _, ok := parseWALName(name); ok {
		return g, true
	}
	if g, ok := parseManifestName(name); ok {
		return g, true
	}
	if strings.HasPrefix(name, "state-") && strings.HasSuffix(name, ".bin") {
		body := strings.TrimSuffix(strings.TrimPrefix(name, "state-"), ".bin")
		if _, err := fmt.Sscanf(body, "%012d", &gen); err == nil {
			return gen, true
		}
	}
	if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".col") {
		body := strings.TrimPrefix(name, "seg-")
		if _, err := fmt.Sscanf(body, "%012d-", &gen); err == nil {
			return gen, true
		}
	}
	return 0, false
}
