package durable

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrInjectedCrash is returned by every FaultFS operation once the
// configured kill point has fired: from the injected failure on, the
// process is considered dead and nothing else reaches the disk until
// Crash() simulates the reboot.
var ErrInjectedCrash = errors.New("durable: injected crash")

// FaultFS is an in-memory FS with a two-level view of every file: cur
// is what the running process observes (the page cache), dur is what
// survives a power cut. Writes land in cur only; Sync promotes a file's
// cur content to dur. Directory operations (Create, Rename, Remove) are
// modeled as immediately durable, which matches the production OSFS
// fsyncing the directory on rename.
//
// Every mutating operation increments an operation counter. Arming a
// kill point k makes the k-th mutating operation fail with
// ErrInjectedCrash — after applying the partial effect a real crash
// would leave:
//
//   - a clean kill on Write persists nothing of the new data;
//   - a torn kill on Write persists the file's durable prefix plus half
//     of the new data (a partially flushed page);
//   - a kill on Sync is a short fsync: half of the unsynced suffix
//     becomes durable, the rest is lost;
//   - a kill on Create/Rename/Remove loses the operation entirely.
//
// Crash() then simulates the reboot: the volatile view is reset to the
// durable view and the filesystem accepts operations again.
type FaultFS struct {
	mu  sync.Mutex
	cur map[string][]byte
	dur map[string][]byte

	ops    int // mutating operations performed
	killAt int // 1-based op index to fail at; 0 disables
	torn   bool
	down   bool
}

// NewFaultFS returns an empty in-memory filesystem with no kill point
// armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{
		cur: make(map[string][]byte),
		dur: make(map[string][]byte),
	}
}

// KillAt arms the kill point: the k-th mutating operation from now
// (1-based, counted across Write/Sync/Create/Rename/Remove) fails with
// ErrInjectedCrash. torn selects the partial-persistence flavor.
func (f *FaultFS) KillAt(k int, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.killAt = k
	f.torn = torn
}

// Ops returns the number of mutating operations performed since the
// last KillAt (or since creation). The crash matrix uses a first
// fault-free run to size its kill-point sweep.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Down reports whether the kill point has fired and the filesystem is
// refusing operations.
func (f *FaultFS) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Crash simulates the power cut and reboot: every file reverts to its
// durable content, and the filesystem accepts operations again with the
// kill point disarmed.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cur = make(map[string][]byte, len(f.dur))
	for name, data := range f.dur {
		f.cur[name] = append([]byte(nil), data...)
	}
	f.down = false
	f.killAt = 0
}

// step counts one mutating operation and reports whether the kill point
// fires on it. Caller holds f.mu.
func (f *FaultFS) step() (killed bool) {
	f.ops++
	if f.killAt > 0 && f.ops >= f.killAt {
		f.down = true
		return true
	}
	return false
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return nil, ErrInjectedCrash
	}
	if f.step() {
		return nil, ErrInjectedCrash
	}
	f.cur[name] = nil
	f.dur[name] = nil
	return &faultFile{fs: f, name: name}, nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return nil, ErrInjectedCrash
	}
	data, ok := f.cur[name]
	if !ok {
		return nil, fmt.Errorf("durable: %s: %w", name, errNotExist)
	}
	return append([]byte(nil), data...), nil
}

var errNotExist = errors.New("file does not exist")

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return ErrInjectedCrash
	}
	if f.step() {
		return ErrInjectedCrash
	}
	data, ok := f.cur[oldname]
	if !ok {
		return fmt.Errorf("durable: rename %s: %w", oldname, errNotExist)
	}
	f.cur[newname] = data
	delete(f.cur, oldname)
	if ddata, ok := f.dur[oldname]; ok {
		f.dur[newname] = ddata
		delete(f.dur, oldname)
	} else {
		f.dur[newname] = append([]byte(nil), data...)
	}
	return nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return ErrInjectedCrash
	}
	if f.step() {
		return ErrInjectedCrash
	}
	if _, ok := f.cur[name]; !ok {
		return fmt.Errorf("durable: remove %s: %w", name, errNotExist)
	}
	delete(f.cur, name)
	delete(f.dur, name)
	return nil
}

// List implements FS.
func (f *FaultFS) List() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return nil, ErrInjectedCrash
	}
	names := make([]string, 0, len(f.cur))
	for name := range f.cur {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// faultFile is an open handle writing through the FaultFS.
type faultFile struct {
	fs   *FaultFS
	name string
}

// Write appends to the volatile view. A torn kill persists the durable
// prefix plus half of the new data — the partially flushed page a real
// power cut leaves behind.
func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return 0, ErrInjectedCrash
	}
	if f.step() {
		if f.torn && len(p) > 0 {
			half := append([]byte(nil), f.dur[ff.name]...)
			half = append(half, p[:(len(p)+1)/2]...)
			f.dur[ff.name] = half
		}
		return 0, ErrInjectedCrash
	}
	f.cur[ff.name] = append(f.cur[ff.name], p...)
	return len(p), nil
}

// Sync promotes the file's volatile content to durable. A kill here is
// a short fsync: half of the unsynced suffix survives.
func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return ErrInjectedCrash
	}
	cur := f.cur[ff.name]
	if f.step() {
		durLen := len(f.dur[ff.name])
		if durLen < len(cur) {
			keep := durLen + (len(cur)-durLen)/2
			f.dur[ff.name] = append([]byte(nil), cur[:keep]...)
		}
		return ErrInjectedCrash
	}
	f.dur[ff.name] = append([]byte(nil), cur...)
	return nil
}

// Close implements File. Closing is not a mutating operation.
func (ff *faultFile) Close() error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return ErrInjectedCrash
	}
	return nil
}
