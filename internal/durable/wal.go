package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// castagnoli is the CRC32C polynomial table; every checksum the durable
// layer writes (WAL frames, segment trailers, manifest frames) uses it.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind tags one logical write operation in the WAL.
type Kind uint8

const (
	KindInsert Kind = 1 // A = value
	KindDelete Kind = 2 // A = value
	KindUpdate Kind = 3 // A = old value, B = new value
)

// Record is one logged write. Records are framed as
//
//	[u32 payload len][u32 crc32c(payload)][payload]
//
// with payload = kind byte, u16 attribute length, attribute bytes, and
// two little-endian int64 operands. A torn frame (short header, short
// payload, or checksum mismatch) ends replay of its segment.
type Record struct {
	Kind Kind
	Attr string
	A, B int64
}

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncGroup (the default) fsyncs on Commit with group commit: one
	// leader syncs the tail for every record appended so far, and
	// followers whose record that sync covered return without another
	// fsync.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs inside every Append.
	SyncAlways
	// SyncNone never fsyncs on the write path; the segment is synced
	// only on rotation and close. Crash durability is limited to
	// snapshots.
	SyncNone
)

// Log is one open WAL segment. Records are appended under a mutex (one
// file write per record, so every record boundary is one fault-
// injection kill point); Commit provides the group-commit fsync.
type Log struct {
	fs     FS
	name   string
	policy SyncPolicy

	mu   sync.Mutex // serializes appends and guards f, buf, err
	f    File
	buf  []byte
	recs int64
	err  error // sticky: after a write or sync error the log is dead

	// syncMu serializes group-commit leaders; followers acquiring it
	// after the leader observe synced already past their record.
	syncMu   sync.Mutex
	appended atomic.Uint64 // last appended seq
	synced   atomic.Uint64 // last seq known durable
	syncs    atomic.Int64  // fsyncs issued (telemetry)
}

// CreateLog creates segment name and positions its sequence numbers
// after startSeq: the first appended record gets startSeq+1.
func CreateLog(fs FS, name string, startSeq uint64, policy SyncPolicy) (*Log, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	l := &Log{fs: fs, name: name, policy: policy, f: f}
	l.appended.Store(startSeq)
	l.synced.Store(startSeq)
	return l, nil
}

// Name returns the segment file name.
func (l *Log) Name() string { return l.name }

// Records returns the number of records appended to this segment.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Seq returns the last appended sequence number.
func (l *Log) Seq() uint64 { return l.appended.Load() }

// Syncs returns the number of fsyncs issued on this segment.
//
//holistic:noalloc
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// Append frames and writes one record, returning its sequence number.
// Under SyncAlways the record is durable on return; otherwise call
// Commit(seq) before acknowledging the operation.
//
//holistic:alloc-ok durable write path is cold; the frame buffer is reused across appends
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	l.buf = appendFrame(l.buf[:0], rec)
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = err
		return 0, err
	}
	seq := l.appended.Add(1)
	l.recs++
	if l.policy == SyncAlways {
		l.syncs.Add(1)
		if err := l.f.Sync(); err != nil {
			l.err = err
			return 0, err
		}
		l.synced.Store(seq)
	}
	return seq, nil
}

// Commit makes the record with the given sequence number durable. Under
// SyncGroup concurrent committers elect a leader whose single fsync
// covers every record appended before it.
//
//holistic:alloc-ok durable write path is cold; group commit amortizes the fsync
func (l *Log) Commit(seq uint64) error {
	switch l.policy {
	case SyncNone:
		return nil
	case SyncAlways:
		if l.synced.Load() >= seq {
			return nil
		}
		return l.stickyErr()
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= seq {
		return nil
	}
	if err := l.stickyErr(); err != nil {
		return err
	}
	target := l.appended.Load()
	if err := l.sync(); err != nil {
		return err
	}
	l.synced.Store(target)
	return nil
}

// Sync flushes the segment regardless of policy (rotation and clean
// shutdown use it).
func (l *Log) Sync() error {
	if err := l.sync(); err != nil {
		return err
	}
	l.synced.Store(l.appended.Load())
	return nil
}

// Close flushes and closes the segment.
func (l *Log) Close() error {
	syncErr := l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	closeErr := l.f.Close()
	l.f = nil
	if l.err == nil {
		l.err = fmt.Errorf("durable: wal segment %s is closed", l.name)
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// sync runs f.Sync under the append mutex and records a failure as the
// sticky error.
func (l *Log) sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.syncs.Add(1)
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	return nil
}

func (l *Log) stickyErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// appendFrame encodes rec as one checksummed frame appended to dst.
func appendFrame(dst []byte, rec Record) []byte {
	payloadStart := len(dst) + 8
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, byte(rec.Kind))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.Attr)))
	dst = append(dst, rec.Attr...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.A))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.B))
	payload := dst[payloadStart:]
	binary.LittleEndian.PutUint32(dst[payloadStart-8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[payloadStart-4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// ReadLog parses a WAL segment, returning every intact record in append
// order. Parsing stops at the first torn frame — a short header, a
// payload extending past the data, a checksum mismatch, or a malformed
// payload — which after a crash is always the unsynced tail; torn
// reports whether such a tail was dropped.
func ReadLog(data []byte) (recs []Record, torn bool) {
	for len(data) > 0 {
		if len(data) < 8 {
			return recs, true
		}
		n := binary.LittleEndian.Uint32(data)
		sum := binary.LittleEndian.Uint32(data[4:])
		if uint64(8+n) > uint64(len(data)) {
			return recs, true
		}
		payload := data[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, true
		}
		rec, ok := decodePayload(payload)
		if !ok {
			return recs, true
		}
		recs = append(recs, rec)
		data = data[8+n:]
	}
	return recs, false
}

func decodePayload(p []byte) (Record, bool) {
	if len(p) < 3 {
		return Record{}, false
	}
	kind := Kind(p[0])
	if kind < KindInsert || kind > KindUpdate {
		return Record{}, false
	}
	attrLen := int(binary.LittleEndian.Uint16(p[1:]))
	if len(p) != 3+attrLen+16 {
		return Record{}, false
	}
	attr := string(p[3 : 3+attrLen])
	a := int64(binary.LittleEndian.Uint64(p[3+attrLen:]))
	b := int64(binary.LittleEndian.Uint64(p[3+attrLen+8:]))
	return Record{Kind: kind, Attr: attr, A: a, B: b}, true
}

// WALName names a segment: the snapshot generation the segment follows
// plus a part number that increments on every reopen, so a
// possibly-torn file is never appended to again.
func WALName(gen uint64, part int) string {
	return fmt.Sprintf("wal-%012d-%04d.log", gen, part)
}

// parseWALName inverts WALName.
func parseWALName(name string) (gen uint64, part int, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if _, err := fmt.Sscanf(body, "%012d-%04d", &gen, &part); err != nil {
		return 0, 0, false
	}
	return gen, part, true
}

// walSegmentsFrom returns the names of every WAL segment with
// generation >= gen, ordered by (generation, part) — the replay order.
func walSegmentsFrom(names []string, gen uint64) []string {
	type seg struct {
		gen  uint64
		part int
		name string
	}
	var segs []seg
	for _, name := range names {
		g, p, ok := parseWALName(name)
		if ok && g >= gen {
			segs = append(segs, seg{g, p, name})
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].gen != segs[j].gen {
			return segs[i].gen < segs[j].gen
		}
		return segs[i].part < segs[j].part
	})
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.name
	}
	return out
}

// maxWALPart returns the highest part number present for gen, or -1.
func maxWALPart(names []string, gen uint64) int {
	maxPart := -1
	for _, name := range names {
		if g, p, ok := parseWALName(name); ok && g == gen && p > maxPart {
			maxPart = p
		}
	}
	return maxPart
}
