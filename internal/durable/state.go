package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// stateMagic heads the adaptive-state file.
const stateMagic = "HSTA1\n"

// IndexKind tags which physical index an IndexState describes.
type IndexKind uint8

const (
	// IndexCracker is a cracker column: values in cracked physical
	// order with their row ids plus the piece-boundary table.
	IndexCracker IndexKind = 1
	// IndexSorted is a fully sorted run (offline / online indexing).
	IndexSorted IndexKind = 2
)

// IndexState is the serialized adaptive state of one index: the
// physical array the refinement effort produced and, for crackers, the
// piece boundaries, so recovery rebuilds the index by copying arrays
// and re-inserting boundary keys instead of re-cracking. The access
// statistics let the holistic daemon resume its strategy bookkeeping.
//
// Index state is an optimization, never a source of truth: the column
// segments alone reconstruct the data, so a corrupt section here drops
// only that index back to unrefined.
type IndexState struct {
	Attr    string
	Kind    IndexKind
	Vals    []int64
	Rows    []uint32
	HasRows bool
	Keys    []int64  // cracker piece lower bounds; Keys[0] is the sentinel
	Starts  []uint32 // piece start offsets, parallel to Keys

	Accesses, Hits int64
	StatsState     uint8 // stats.State; 0 = not registered
}

// StateName names the adaptive-state file at generation gen.
func StateName(gen uint64) string {
	return fmt.Sprintf("state-%012d.bin", gen)
}

// EncodeState serializes the index states. Each section carries its own
// CRC32C so one corrupt index degrades alone.
func EncodeState(states []IndexState) []byte {
	buf := append([]byte(nil), stateMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(states)))
	for _, st := range states {
		section := encodeIndexState(st)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(section)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(section, castagnoli))
		buf = append(buf, section...)
	}
	return buf
}

// DecodeState parses the adaptive-state file. A corrupt header fails
// the whole file (the caller degrades to data-only recovery); a corrupt
// section is skipped and counted in dropped.
func DecodeState(data []byte) (states []IndexState, dropped int, err error) {
	if len(data) < len(stateMagic)+4 || string(data[:len(stateMagic)]) != stateMagic {
		return nil, 0, fmt.Errorf("durable: state: bad header")
	}
	p := data[len(stateMagic):]
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	for i := 0; i < count; i++ {
		if len(p) < 8 {
			return states, dropped + count - i, nil
		}
		n := int(binary.LittleEndian.Uint32(p))
		sum := binary.LittleEndian.Uint32(p[4:])
		p = p[8:]
		if n > len(p) {
			return states, dropped + count - i, nil
		}
		section := p[:n]
		p = p[n:]
		if crc32.Checksum(section, castagnoli) != sum {
			dropped++
			continue
		}
		st, ok := decodeIndexState(section)
		if !ok {
			dropped++
			continue
		}
		states = append(states, st)
	}
	return states, dropped, nil
}

func encodeIndexState(st IndexState) []byte {
	size := 2 + len(st.Attr) + 2 + 12 +
		8*len(st.Vals) + 4*len(st.Rows) + 12*len(st.Keys) + 17
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(st.Attr)))
	buf = append(buf, st.Attr...)
	hasRows := byte(0)
	if st.HasRows {
		hasRows = 1
	}
	buf = append(buf, byte(st.Kind), hasRows)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Vals)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Rows)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Keys)))
	buf = appendInt64s(buf, st.Vals)
	buf = appendUint32s(buf, st.Rows)
	buf = appendInt64s(buf, st.Keys)
	buf = appendUint32s(buf, st.Starts)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Accesses))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Hits))
	return append(buf, st.StatsState)
}

func decodeIndexState(p []byte) (IndexState, bool) {
	var st IndexState
	if len(p) < 2 {
		return st, false
	}
	attrLen := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < attrLen+14 {
		return st, false
	}
	st.Attr = string(p[:attrLen])
	p = p[attrLen:]
	st.Kind = IndexKind(p[0])
	st.HasRows = p[1] == 1
	nVals := int(binary.LittleEndian.Uint32(p[2:]))
	nRows := int(binary.LittleEndian.Uint32(p[6:]))
	nKeys := int(binary.LittleEndian.Uint32(p[10:]))
	p = p[14:]
	if st.Kind != IndexCracker && st.Kind != IndexSorted {
		return st, false
	}
	if len(p) != 8*nVals+4*nRows+12*nKeys+17 {
		return st, false
	}
	st.Vals, p = readInt64s(p, nVals)
	st.Rows, p = readUint32s(p, nRows)
	st.Keys, p = readInt64s(p, nKeys)
	st.Starts, p = readUint32s(p, nKeys)
	st.Accesses = int64(binary.LittleEndian.Uint64(p))
	st.Hits = int64(binary.LittleEndian.Uint64(p[8:]))
	st.StatsState = p[16]
	return st, true
}
