package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// segMagic heads every column segment file.
const segMagic = "HSEG1\n"

// ColumnData is the durable logical content of one attribute: the base
// array (updates folded in; deleted rows keep the value they last
// held), the appended tail (row id of Tails[i] is len(Base)+i; dead
// tails likewise keep their last value), and the sorted tombstone rows.
// Keeping last values in place lets recovery rebuild a first-touch
// cracker from the base array and replay the deletions exactly as the
// normal write path would have.
type ColumnData struct {
	Name  string
	Base  []int64
	Tails []int64
	Dead  []uint32
}

// NextRow returns the row id the next insert on this attribute takes.
func (c *ColumnData) NextRow() uint32 {
	return uint32(len(c.Base) + len(c.Tails))
}

// SegmentName names the segment file for attr at generation gen.
func SegmentName(gen uint64, attr string) string {
	return fmt.Sprintf("seg-%012d-%s.col", gen, attr)
}

// EncodeSegment serializes one column: magic, name, array lengths, the
// arrays, and a trailing CRC32C over everything before it.
func EncodeSegment(c ColumnData) []byte {
	size := len(segMagic) + 2 + len(c.Name) + 12 +
		8*len(c.Base) + 8*len(c.Tails) + 4*len(c.Dead) + 4
	buf := make([]byte, 0, size)
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
	buf = append(buf, c.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Base)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Tails)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Dead)))
	buf = appendInt64s(buf, c.Base)
	buf = appendInt64s(buf, c.Tails)
	buf = appendUint32s(buf, c.Dead)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// DecodeSegment parses and checksum-validates one column segment.
func DecodeSegment(data []byte) (ColumnData, error) {
	var c ColumnData
	if len(data) < len(segMagic)+2+12+4 || string(data[:len(segMagic)]) != segMagic {
		return c, fmt.Errorf("durable: segment: bad header")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return c, fmt.Errorf("durable: segment: checksum mismatch")
	}
	p := body[len(segMagic):]
	nameLen := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < nameLen+12 {
		return c, fmt.Errorf("durable: segment: truncated name")
	}
	c.Name = string(p[:nameLen])
	p = p[nameLen:]
	nBase := int(binary.LittleEndian.Uint32(p))
	nTails := int(binary.LittleEndian.Uint32(p[4:]))
	nDead := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	if len(p) != 8*nBase+8*nTails+4*nDead {
		return c, fmt.Errorf("durable: segment: length mismatch")
	}
	c.Base, p = readInt64s(p, nBase)
	c.Tails, p = readInt64s(p, nTails)
	c.Dead, _ = readUint32s(p, nDead)
	return c, nil
}

// WriteSegment encodes and durably writes one column segment in a
// single file write followed by an fsync.
func WriteSegment(fs FS, name string, c ColumnData) error {
	return writeFileSync(fs, name, EncodeSegment(c))
}

// writeFileSync creates name with the given content and fsyncs it.
func writeFileSync(fs FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func appendInt64s(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

func appendUint32s(dst []byte, vals []uint32) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

func readInt64s(p []byte, n int) ([]int64, []byte) {
	if n == 0 {
		return nil, p
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, p[8*n:]
}

func readUint32s(p []byte, n int) ([]uint32, []byte) {
	if n == 0 {
		return nil, p
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return out, p[4*n:]
}
