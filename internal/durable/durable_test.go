package durable

import (
	"errors"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindInsert, Attr: "a", A: 42},
		{Kind: KindDelete, Attr: "bb", A: -7},
		{Kind: KindUpdate, Attr: "price", A: 10, B: 20},
	}
}

func TestWALRoundTrip(t *testing.T) {
	fs := NewFaultFS()
	l, err := CreateLog(fs, WALName(0, 0), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	for i, rec := range want {
		seq, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		if err := l.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != 3 {
		t.Fatalf("Records() = %d, want 3", l.Records())
	}
	fs.Crash() // only synced bytes survive
	data, err := fs.ReadFile(WALName(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, torn := ReadLog(data)
	if torn {
		t.Fatal("unexpected torn tail")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay = %+v, want %+v", got, want)
	}
}

func TestWALGroupCommit(t *testing.T) {
	fs := NewFaultFS()
	l, err := CreateLog(fs, WALName(0, 0), 10, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for _, rec := range testRecords() {
		seq, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	// One commit of the last seq must cover the earlier ones too.
	if err := l.Commit(seqs[len(seqs)-1]); err != nil {
		t.Fatal(err)
	}
	syncsBefore := fs.Ops()
	for _, seq := range seqs {
		if err := l.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Ops() != syncsBefore {
		t.Fatal("covered commits issued extra filesystem operations")
	}
	fs.Crash()
	data, _ := fs.ReadFile(WALName(0, 0))
	got, torn := ReadLog(data)
	if torn || len(got) != 3 {
		t.Fatalf("replay got %d records (torn=%v), want 3", len(got), torn)
	}
}

func TestWALTornTailTruncates(t *testing.T) {
	fs := NewFaultFS()
	l, err := CreateLog(fs, WALName(0, 0), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs[:2] {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the third record's write: half the frame becomes durable.
	fs.KillAt(1, true)
	if _, err := l.Append(recs[2]); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("append after kill = %v, want injected crash", err)
	}
	fs.Crash()
	data, err := fs.ReadFile(WALName(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, torn := ReadLog(data)
	if !torn {
		t.Fatal("torn tail not detected")
	}
	if !reflect.DeepEqual(got, recs[:2]) {
		t.Fatalf("replay = %+v, want first two records", got)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	c := ColumnData{
		Name:  "price",
		Base:  []int64{5, -3, 99, 0},
		Tails: []int64{7, 8},
		Dead:  []uint32{1, 5},
	}
	got, err := DecodeSegment(EncodeSegment(c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("decoded = %+v, want %+v", got, c)
	}
	if got.NextRow() != 6 {
		t.Fatalf("NextRow = %d, want 6", got.NextRow())
	}
	// Any flipped byte must fail the checksum.
	enc := EncodeSegment(c)
	enc[len(segMagic)+10] ^= 0x40
	if _, err := DecodeSegment(enc); err == nil {
		t.Fatal("corrupt segment decoded without error")
	}
}

func TestStatePerSectionDegradation(t *testing.T) {
	states := []IndexState{
		{Attr: "a", Kind: IndexCracker, Vals: []int64{1, 2, 3}, Rows: []uint32{0, 1, 2},
			HasRows: true, Keys: []int64{-1 << 62, 2}, Starts: []uint32{0, 1},
			Accesses: 9, Hits: 4, StatsState: 2},
		{Attr: "b", Kind: IndexSorted, Vals: []int64{4, 5, 6}},
	}
	enc := EncodeState(states)
	got, dropped, err := DecodeState(enc)
	if err != nil || dropped != 0 {
		t.Fatalf("clean decode: dropped=%d err=%v", dropped, err)
	}
	if !reflect.DeepEqual(got, states) {
		t.Fatalf("decoded = %+v, want %+v", got, states)
	}
	// Corrupt a byte inside the first section: only that index drops.
	enc = EncodeState(states)
	enc[len(stateMagic)+4+8+4] ^= 0x01
	got, dropped, err = DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || len(got) != 1 || got[0].Attr != "b" {
		t.Fatalf("degraded decode: dropped=%d survivors=%+v", dropped, got)
	}
	// A corrupt header fails the whole file.
	enc[0] ^= 0xff
	if _, _, err := DecodeState(enc); err == nil {
		t.Fatal("corrupt header decoded without error")
	}
}

func snapshotAt(t *testing.T, fs FS, gen uint64, vals []int64) {
	t.Helper()
	m := &Manifest{Generation: gen, Mode: "test"}
	cols := []ColumnData{{Name: "a", Base: vals}}
	if err := WriteSnapshot(fs, m, cols, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverPicksNewestValidGeneration(t *testing.T) {
	fs := NewFaultFS()
	snapshotAt(t, fs, 1, []int64{10, 20})
	snapshotAt(t, fs, 2, []int64{10, 20, 30})
	rec, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != 2 || rec.Fallbacks != 0 || len(rec.Columns) != 1 {
		t.Fatalf("rec = %+v", rec)
	}
	if !reflect.DeepEqual(rec.Columns[0].Base, []int64{10, 20, 30}) {
		t.Fatalf("columns = %+v", rec.Columns)
	}
}

func TestRecoverFallsBackOnTornManifest(t *testing.T) {
	fs := NewFaultFS()
	snapshotAt(t, fs, 1, []int64{10, 20})
	snapshotAt(t, fs, 2, []int64{10, 20, 30})
	// Corrupt generation 2's manifest in the durable view.
	data, err := fs.ReadFile(ManifestName(2))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	fs.cur[ManifestName(2)] = data
	fs.dur[ManifestName(2)] = append([]byte(nil), data...)
	rec, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != 1 || rec.Fallbacks != 1 {
		t.Fatalf("gen=%d fallbacks=%d, want gen 1 with 1 fallback", rec.Gen, rec.Fallbacks)
	}
}

func TestRecoverReplaysWALTailAcrossSegments(t *testing.T) {
	fs := NewFaultFS()
	snapshotAt(t, fs, 1, []int64{10})
	l, err := CreateLog(fs, WALName(1, 0), 1, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Kind: KindInsert, Attr: "a", A: 7}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// A reopen without checkpoint starts a new part of the same gen.
	l2, err := CreateLog(fs, WALName(1, 1), 2, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(Record{Kind: KindDelete, Attr: "a", A: 10}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	rec, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || rec.SeqAfterReplay != 3 || rec.NextPart != 2 {
		t.Fatalf("records=%d seq=%d part=%d", len(rec.Records), rec.SeqAfterReplay, rec.NextPart)
	}
	if rec.Records[0].Kind != KindInsert || rec.Records[1].Kind != KindDelete {
		t.Fatalf("records out of order: %+v", rec.Records)
	}
}

func TestCleanMarkerConsumedOnOpen(t *testing.T) {
	fs := NewFaultFS()
	snapshotAt(t, fs, 5, []int64{1})
	if err := WriteCleanMarker(fs, 5); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Clean {
		t.Fatal("clean shutdown not detected")
	}
	rec2, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Clean {
		t.Fatal("marker survived the first open")
	}
}

func TestPruneKeepsOnlyRequestedGenerations(t *testing.T) {
	fs := NewFaultFS()
	for gen := uint64(1); gen <= 3; gen++ {
		snapshotAt(t, fs, gen, []int64{int64(gen)})
		l, err := CreateLog(fs, WALName(gen, 0), gen, SyncNone)
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	if err := Prune(fs, map[uint64]bool{2: true, 3: true}); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	for _, name := range names {
		if gen, owned := fileGeneration(name); owned && gen < 2 {
			t.Fatalf("generation-1 file %s survived prune", name)
		}
	}
	rec, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != 3 {
		t.Fatalf("gen after prune = %d, want 3", rec.Gen)
	}
}

func TestRecoverFreshDirectory(t *testing.T) {
	rec, err := Recover(NewFaultFS())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != 0 || rec.Manifest != nil || len(rec.Records) != 0 || rec.NextPart != 0 {
		t.Fatalf("fresh recover = %+v", rec)
	}
}

func TestShortFsyncTearsUnsyncedSuffix(t *testing.T) {
	fs := NewFaultFS()
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	fs.KillAt(1, false)
	if err := f.Sync(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("sync = %v, want injected crash", err)
	}
	fs.Crash()
	data, err := fs.ReadFile("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4 {
		t.Fatalf("short fsync persisted %d bytes, want 4", len(data))
	}
}
