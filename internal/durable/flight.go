package durable

import (
	"fmt"
	"sort"
	"strings"
)

// Flight-recorder dumps live beside the snapshot generations as
// flight-<generation>-<n>.bin, where n is a per-process dump counter.
// They are post-mortems, not recovery inputs: fileGeneration does NOT
// own them, so Prune never reaps the evidence of an anomaly along with
// the generation it happened in. Instead the writer self-prunes,
// keeping the newest few dumps (PruneFlightDumps).

// flightTmp is the staging name for dump writes; like the manifest,
// the rename onto the final name is the commit point, so a crash
// mid-write never leaves a torn flight-*.bin — only a stale tmp.
const flightTmp = "flight.tmp"

// FlightName names one flight dump written at generation gen with
// per-process counter n.
func FlightName(gen uint64, n int) string {
	return fmt.Sprintf("flight-%012d-%06d.bin", gen, n)
}

// ParseFlightName extracts the generation and counter of a dump name;
// ok is false for names the flight writer does not own.
func ParseFlightName(name string) (gen uint64, n int, ok bool) {
	if !strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, ".bin") {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, "flight-"), ".bin")
	if _, err := fmt.Sscanf(body, "%012d-%06d", &gen, &n); err != nil {
		return 0, 0, false
	}
	return gen, n, true
}

// ListFlightDumps returns the committed flight dump names, oldest
// first ((generation, n) order).
func ListFlightDumps(fs FS) ([]string, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	var dumps []string
	for _, name := range names {
		if _, _, ok := ParseFlightName(name); ok {
			dumps = append(dumps, name)
		}
	}
	sort.Slice(dumps, func(i, j int) bool {
		gi, ni, _ := ParseFlightName(dumps[i])
		gj, nj, _ := ParseFlightName(dumps[j])
		if gi != gj {
			return gi < gj
		}
		return ni < nj
	})
	return dumps, nil
}

// WriteFlightDump stages, fsyncs and atomically renames one encoded
// dump into place under name.
func WriteFlightDump(fs FS, name string, data []byte) error {
	if err := writeFileSync(fs, flightTmp, data); err != nil {
		return err
	}
	return fs.Rename(flightTmp, name)
}

// PruneFlightDumps removes all but the newest keep dumps.
func PruneFlightDumps(fs FS, keep int) error {
	dumps, err := ListFlightDumps(fs)
	if err != nil {
		return err
	}
	if keep < 0 {
		keep = 0
	}
	for i := 0; i+keep < len(dumps); i++ {
		if err := fs.Remove(dumps[i]); err != nil {
			return err
		}
	}
	return nil
}
