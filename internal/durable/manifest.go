package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
)

// manifestTmp is the staging name for manifest writes; the atomic
// rename onto the final generation name is the snapshot's commit point.
const manifestTmp = "manifest.tmp"

// cleanMarker is the clean-shutdown marker file. Its presence (with a
// matching generation) means Close checkpointed and flushed everything,
// so the next open has no WAL tail to replay. It is deleted first thing
// on every open, making any later crash visibly unclean.
const cleanMarker = "CLEAN"

// Manifest is the snapshot's root: it names the column segments and
// adaptive-state file of one generation and carries the small
// recovery-relevant counters. Generations are a strictly increasing
// snapshot counter — every checkpoint writes a fresh generation and
// never touches the files of the previous (still valid, still
// recoverable) one. WAL segments are named for the generation they
// follow; the replay tail of generation G is every segment with
// generation >= G, in (generation, part) order.
type Manifest struct {
	Generation uint64           `json:"generation"`
	Mode       string           `json:"mode"`
	Columns    []ManifestColumn `json:"columns"`
	StateFile  string           `json:"state_file,omitempty"`
	Daemon     *DaemonState     `json:"daemon,omitempty"`
}

// ManifestColumn references one column segment file.
type ManifestColumn struct {
	Attr string `json:"attr"`
	File string `json:"file"`
}

// DaemonState carries the holistic daemon's cumulative counters across
// restarts so convergence telemetry continues instead of resetting.
type DaemonState struct {
	Cycles        int64 `json:"cycles"`
	Workers       int64 `json:"workers"`
	WorkerTimeNS  int64 `json:"worker_time_ns"`
	WallNS        int64 `json:"wall_ns"`
	Refinements   int64 `json:"refinements"`
	MergedUpdates int64 `json:"merged_updates"`
	TotalRefined  int64 `json:"total_refinements"`
	TotalAttempts int64 `json:"total_attempts"`
	BusyRerolls   int64 `json:"busy_rerolls"`
}

// ManifestName names the manifest file of generation gen.
func ManifestName(gen uint64) string {
	return fmt.Sprintf("manifest-%012d.json", gen)
}

func parseManifestName(name string) (gen uint64, ok bool) {
	if !strings.HasPrefix(name, "manifest-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, "manifest-"), ".json")
	if _, err := fmt.Sscanf(body, "%012d", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// manifestGens extracts the generations present in names, descending.
func manifestGens(names []string) []uint64 {
	var gens []uint64
	for _, name := range names {
		if g, ok := parseManifestName(name); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens
}

// WriteManifest frames, stages, fsyncs and atomically renames the
// manifest into place. Until the rename lands, recovery still sees the
// previous generation.
func WriteManifest(fs FS, m *Manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)
	if err := writeFileSync(fs, manifestTmp, buf); err != nil {
		return err
	}
	return fs.Rename(manifestTmp, ManifestName(m.Generation))
}

// LoadManifest reads and validates the manifest file with name.
func LoadManifest(fs FS, name string) (*Manifest, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("durable: manifest %s: truncated", name)
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if uint64(8+n) != uint64(len(data)) {
		return nil, fmt.Errorf("durable: manifest %s: length mismatch", name)
	}
	payload := data[8:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("durable: manifest %s: checksum mismatch", name)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("durable: manifest %s: %w", name, err)
	}
	return &m, nil
}

// WriteCleanMarker records a clean shutdown at generation gen.
func WriteCleanMarker(fs FS, gen uint64) error {
	return writeFileSync(fs, cleanMarker, []byte(fmt.Sprintf("generation %d\n", gen)))
}

// readCleanMarker returns the marker's generation, or ok=false when the
// marker is absent or unparsable.
func readCleanMarker(fs FS) (gen uint64, ok bool) {
	data, err := fs.ReadFile(cleanMarker)
	if err != nil {
		return 0, false
	}
	if _, err := fmt.Sscanf(string(data), "generation %d", &gen); err != nil {
		return 0, false
	}
	return gen, true
}
