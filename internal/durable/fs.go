// Package durable is the persistence core of the store: checksummed
// columnar snapshots, a write-ahead log for the update path, and the
// recovery procedure that reassembles both the data and the adaptive
// state (cracker piece boundaries, sorted runs, daemon statistics) a
// restarted store needs to answer its first query at converged speed.
//
// Everything goes through the FS interface so the crash-injection
// harness (FaultFS) can cut power at any mutating filesystem operation
// and the recovery tests can replay the exact torn state a real crash
// would leave behind.
package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is the subset of *os.File the durable layer writes through.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the flat directory a store persists into. Names never
// contain path separators; the store owns the whole directory.
type FS interface {
	// Create opens name for writing, truncating any previous content.
	Create(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name. Removing a missing file is an error.
	Remove(name string) error
	// List returns the names in the directory, sorted.
	List() ([]string, error)
}

// OSFS is the production FS: a real directory on the local filesystem.
type OSFS struct {
	dir string
}

// NewOSFS creates the directory (if needed) and returns an FS rooted at
// it.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &OSFS{dir: dir}, nil
}

// Dir returns the root directory.
func (fs *OSFS) Dir() string { return fs.dir }

func (fs *OSFS) path(name string) string { return filepath.Join(fs.dir, name) }

// Create implements FS.
func (fs *OSFS) Create(name string) (File, error) {
	return os.Create(fs.path(name))
}

// ReadFile implements FS.
func (fs *OSFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(fs.path(name))
}

// Rename implements FS. The directory is fsynced afterwards so the
// rename itself is durable — the manifest swap relies on this.
func (fs *OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(fs.path(oldname), fs.path(newname)); err != nil {
		return err
	}
	return fs.syncDir()
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error {
	return os.Remove(fs.path(name))
}

// List implements FS.
func (fs *OSFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// syncDir makes directory metadata (creates, renames, removes) durable.
func (fs *OSFS) syncDir() error {
	d, err := os.Open(fs.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
