package join

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// benchInputs builds an M:N join: n build keys, 2n probe keys, keys
// over a quarter-sized pool so real fan-out occurs.
func benchInputs(n int) (Input, Input) {
	rng := rand.New(rand.NewSource(13))
	domain := int64(n / 4)
	if domain < 16 {
		domain = 16
	}
	return randInput(rng, n, domain), randInput(rng, 2*n, domain)
}

// BenchmarkJoinCountHash measures the radix-partitioned hash-join
// count kernel; ReportAllocs shows the pooled steady state (0 B/op
// sequential — the bar TestHashCountAllocationFree enforces).
func BenchmarkJoinCountHash(b *testing.B) {
	left, right := benchInputs(1 << 16)
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			Hash(Op{Kind: OpCount}, left, right, threads, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Hash(Op{Kind: OpCount}, left, right, threads, nil)
			}
		})
	}
}

// BenchmarkJoinCountMerge measures the index-clustered merge-join
// count kernel over fully refined (span-1) cluster streams — the
// post-convergence shape the holistic daemon produces.
func BenchmarkJoinCountMerge(b *testing.B) {
	left, right := benchInputs(1 << 16)
	mkStream := func(in Input) Stream {
		type kv struct {
			k int64
			r uint32
		}
		s := make([]kv, len(in.Keys))
		for i := range in.Keys {
			s[i] = kv{in.Keys[i], in.Rows[i]}
		}
		sort.Slice(s, func(a, b int) bool { return s[a].k < s[b].k })
		vals := make([]int64, len(s))
		rows := make([]uint32, len(s))
		for i, e := range s {
			vals[i] = e.k
			rows[i] = e.r
		}
		return Stream{
			Walk: func(fn func([]int64, []uint32)) bool {
				for i := 0; i < len(vals); {
					j := i + 1
					for j < len(vals) && vals[j] == vals[i] {
						j++
					}
					fn(vals[i:j], rows[i:j])
					i = j
				}
				return true
			},
			Count: len(vals),
		}
	}
	ls, rs := mkStream(left), mkStream(right)
	b.Run("spans=1", func(b *testing.B) {
		Merge(Op{Kind: OpCount}, ls, rs, 0, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Merge(Op{Kind: OpCount}, ls, rs, 0, nil)
		}
	})
}
