package join

import (
	"math/rand"
	"sort"
	"testing"

	"holistic/internal/column"
	"holistic/internal/groupby"
)

// nestedLoopOracle joins two sides the O(n*m) way: the ground truth
// every kernel is checked against.
func nestedLoopOracle(left, right Input, sumSide Side) (count, sum int64, pairs [][2]uint32) {
	for i, lk := range left.Keys {
		for j, rk := range right.Keys {
			if lk != rk {
				continue
			}
			count++
			if sumSide == Left && left.Vals != nil {
				sum += left.Vals[i]
			}
			if sumSide == Right && right.Vals != nil {
				sum += right.Vals[j]
			}
			pairs = append(pairs, [2]uint32{left.Rows[i], right.Rows[j]})
		}
	}
	return count, sum, pairs
}

func sortedPairs(l, r column.PosList) [][2]uint32 {
	out := make([][2]uint32, len(l))
	for i := range l {
		out[i] = [2]uint32{l[i], r[i]}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

func randInput(rng *rand.Rand, n int, domain int64) Input {
	in := Input{Keys: make([]int64, n), Rows: make([]uint32, n), Vals: make([]int64, n)}
	for i := range in.Keys {
		in.Keys[i] = rng.Int63n(domain)
		in.Rows[i] = uint32(i)
		in.Vals[i] = rng.Int63n(1000) - 500
	}
	return in
}

// TestHashMatchesNestedLoop covers the hash kernel across size
// asymmetries (build-side choice), duplicate fan-outs (small domains),
// every terminal, and multi-partition builds.
func TestHashMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		nl, nr int
		domain int64
	}{
		{0, 10, 8}, {10, 0, 8}, {1, 1, 1},
		{50, 800, 40},    // heavy M:N duplication, left builds
		{800, 50, 40},    // right builds
		{300, 300, 1e9},  // mostly unique keys, sparse overlap
		{20000, 700, 64}, // multi-partition build (over minPartitionKeys)
	}
	for _, tc := range cases {
		for _, sumSide := range []Side{Left, Right} {
			left := randInput(rng, tc.nl, tc.domain)
			right := randInput(rng, tc.nr, tc.domain)
			wantCount, wantSum, wantPairs := nestedLoopOracle(left, right, sumSide)

			for _, threads := range []int{1, 4} {
				c, _ := Hash(Op{Kind: OpCount}, left, right, threads, nil)
				if c != wantCount {
					t.Fatalf("Hash count(%d,%d,dom=%d,t=%d) = %d, want %d", tc.nl, tc.nr, tc.domain, threads, c, wantCount)
				}
				c, s := Hash(Op{Kind: OpSum, SumSide: sumSide}, left, right, threads, nil)
				if c != wantCount || s != wantSum {
					t.Fatalf("Hash sum(%v) = (%d,%d), want (%d,%d)", sumSide, c, s, wantCount, wantSum)
				}
			}
			var p Pairs
			c, _ := Hash(Op{Kind: OpPairs}, left, right, 1, &p)
			if c != wantCount || p.Len() != len(wantPairs) {
				t.Fatalf("Hash pairs: count %d len %d, want %d", c, p.Len(), len(wantPairs))
			}
			got := sortedPairs(p.Left, p.Right)
			sort.Slice(wantPairs, func(a, b int) bool {
				if wantPairs[a][0] != wantPairs[b][0] {
					return wantPairs[a][0] < wantPairs[b][0]
				}
				return wantPairs[a][1] < wantPairs[b][1]
			})
			for i := range got {
				if got[i] != wantPairs[i] {
					t.Fatalf("Hash pairs[%d] = %v, want %v", i, got[i], wantPairs[i])
				}
			}
		}
	}
}

// clusterStream builds a key-ordered cluster Stream from an input: the
// entries sort by key and split into value-disjoint clusters of random
// width, exercising the cluster-intersection merge rule.
func clusterStream(rng *rand.Rand, in Input, sel *column.Bitmap) Stream {
	type kv struct {
		k int64
		r uint32
		v int64
	}
	s := make([]kv, len(in.Keys))
	for i := range in.Keys {
		s[i] = kv{in.Keys[i], in.Rows[i], in.Vals[i]}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].k < s[b].k })
	// Cluster boundaries may only fall between distinct values.
	var bounds []int
	for i := 1; i < len(s); i++ {
		if s[i].k != s[i-1].k && rng.Intn(3) == 0 {
			bounds = append(bounds, i)
		}
	}
	bounds = append(bounds, len(s))
	// Shuffle within each cluster: values inside one cluster are
	// unordered per the KeyOrderWalker contract.
	prev := 0
	var clusters [][]kv
	for _, b := range bounds {
		c := append([]kv(nil), s[prev:b]...)
		rng.Shuffle(len(c), func(i, j int) { c[i], c[j] = c[j], c[i] })
		clusters = append(clusters, c)
		prev = b
	}
	// The payload view maps row id -> value (rows here are unique ids).
	maxRow := uint32(0)
	for _, e := range s {
		if e.r > maxRow {
			maxRow = e.r
		}
	}
	payload := make([]int64, int(maxRow)+1)
	for _, e := range s {
		payload[e.r] = e.v
	}
	return Stream{
		Walk: func(fn func(vals []int64, rows []uint32)) bool {
			for _, c := range clusters {
				vals := make([]int64, len(c))
				rows := make([]uint32, len(c))
				for i, e := range c {
					vals[i] = e.k
					rows[i] = e.r
				}
				fn(vals, rows)
			}
			return true
		},
		Sel:   sel,
		Vals:  column.View{Base: payload},
		Count: len(in.Keys),
	}
}

// TestMergeMatchesNestedLoop checks the index-clustered merge join —
// dense and wide cluster pairs, both build sides, with and without
// selection bitmaps — against the nested-loop oracle.
func TestMergeMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		nl, nr    int
		domain    int64
		spanLimit int
	}{
		{60, 500, 50, 0},       // duplicates, dense pairs
		{500, 60, 50, 0},       // swapped build
		{400, 400, 1 << 40, 0}, // huge spans: every pair takes the wide path
		{300, 300, 2000, 16},   // tiny span limit forces wide fallback mid-mix
		{0, 50, 20, 0}, {50, 0, 20, 0},
	}
	for _, tc := range cases {
		for _, withSel := range []bool{false, true} {
			left := randInput(rng, tc.nl, tc.domain)
			right := randInput(rng, tc.nr, tc.domain)
			var lSel, rSel *column.Bitmap
			oleft, oright := left, right
			if withSel {
				lSel, oleft = selectHalf(rng, left)
				rSel, oright = selectHalf(rng, right)
			}
			for _, sumSide := range []Side{Left, Right} {
				wantCount, wantSum, wantPairs := nestedLoopOracle(oleft, oright, sumSide)
				ls := clusterStream(rng, left, lSel)
				rs := clusterStream(rng, right, rSel)
				c, s, ok := Merge(Op{Kind: OpSum, SumSide: sumSide}, ls, rs, tc.spanLimit, nil)
				if !ok {
					t.Fatal("Merge declined a live walk")
				}
				if c != wantCount || s != wantSum {
					t.Fatalf("Merge(%d,%d,dom=%d,sel=%v,sum=%v) = (%d,%d), want (%d,%d)",
						tc.nl, tc.nr, tc.domain, withSel, sumSide, c, s, wantCount, wantSum)
				}
				var p Pairs
				if _, _, ok := Merge(Op{Kind: OpPairs}, ls, rs, tc.spanLimit, &p); !ok {
					t.Fatal("Merge declined a live walk")
				}
				got := sortedPairs(p.Left, p.Right)
				sort.Slice(wantPairs, func(a, b int) bool {
					if wantPairs[a][0] != wantPairs[b][0] {
						return wantPairs[a][0] < wantPairs[b][0]
					}
					return wantPairs[a][1] < wantPairs[b][1]
				})
				if len(got) != len(wantPairs) {
					t.Fatalf("Merge pairs: %d, want %d", len(got), len(wantPairs))
				}
				for i := range got {
					if got[i] != wantPairs[i] {
						t.Fatalf("Merge pairs[%d] = %v, want %v", i, got[i], wantPairs[i])
					}
				}
			}
		}
	}
}

// selectHalf drops a random half of the input through a bitmap,
// returning the bitmap (over the row-id universe) and the surviving
// subset for the oracle.
func selectHalf(rng *rand.Rand, in Input) (*column.Bitmap, Input) {
	maxRow := uint32(0)
	for _, r := range in.Rows {
		if r > maxRow {
			maxRow = r
		}
	}
	bm := column.NewBitmap(int(maxRow) + 1)
	var out Input
	for i := range in.Keys {
		if rng.Intn(2) == 0 {
			continue
		}
		bm.Set(in.Rows[i])
		out.Keys = append(out.Keys, in.Keys[i])
		out.Rows = append(out.Rows, in.Rows[i])
		out.Vals = append(out.Vals, in.Vals[i])
	}
	return bm, out
}

// TestMergeDeclinesWithoutPath: a stream whose walk reports no
// key-ordered access path makes Merge report ok=false.
func TestMergeDeclinesWithoutPath(t *testing.T) {
	dead := Stream{Walk: func(func([]int64, []uint32)) bool { return false }}
	live := clusterStream(rand.New(rand.NewSource(1)), randInput(rand.New(rand.NewSource(2)), 10, 5), nil)
	if _, _, ok := Merge(Op{Kind: OpCount}, dead, live, 0, nil); ok {
		t.Error("Merge did not decline a dead build walk")
	}
	if _, _, ok := Merge(Op{Kind: OpCount}, live, dead, 0, nil); ok {
		t.Error("Merge did not decline a dead probe walk")
	}
}

// TestGroupedOverPairs checks the join→group pipeline: grouped counts
// and sums over materialized pairs against a map oracle.
func TestGroupedOverPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	left := randInput(rng, 200, 30)
	right := randInput(rng, 300, 30)
	// Group key: a left-side attribute (rows are ids into this array).
	keyCol := make([]int64, 200)
	for i := range keyCol {
		keyCol[i] = int64(i % 7)
	}
	var p Pairs
	Hash(Op{Kind: OpPairs}, left, right, 1, &p)

	wantCnt := map[int64]int64{}
	wantSum := map[int64]int64{}
	for i := range p.Left {
		k := keyCol[p.Left[i]]
		wantCnt[k]++
		wantSum[k] += right.Vals[p.Right[i]]
	}

	var res groupby.Result
	err := Grouped(&p,
		[]PairCol{{Side: Left, View: column.View{Base: keyCol}}},
		[][2]int64{{0, 6}},
		[]groupby.Agg{groupby.Count(), groupby.Sum("v")},
		[]PairCol{{}, {Side: Right, View: column.View{Base: right.Vals}}},
		&res)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(wantCnt) {
		t.Fatalf("groups = %d, want %d", res.Len(), len(wantCnt))
	}
	for g := 0; g < res.Len(); g++ {
		k := res.Keys[0][g]
		if res.Aggs[0][g] != wantCnt[k] || res.Aggs[1][g] != wantSum[k] {
			t.Fatalf("group %d: (%d,%d), want (%d,%d)", k, res.Aggs[0][g], res.Aggs[1][g], wantCnt[k], wantSum[k])
		}
		if g > 0 && res.Keys[0][g-1] >= k {
			t.Fatal("groups not in ascending key order")
		}
	}
}

// TestMapMatchesGoMap checks the open-addressing table (the
// engine.HashJoin core) against a Go map, including last-wins
// overwrites and negative keys.
func TestMapMatchesGoMap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMap(4)
	oracle := map[int64]int32{}
	for i := 0; i < 5000; i++ {
		k := rng.Int63n(600) - 300
		v := int32(i)
		m.Put(k, v)
		oracle[k] = v
	}
	if m.Len() != len(oracle) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(oracle))
	}
	for k, want := range oracle {
		got, ok := m.Get(k)
		if !ok || got != want {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
	for i := 0; i < 100; i++ {
		k := rng.Int63n(1 << 40)
		if _, ok := m.Get(k); ok != (func() bool { _, o := oracle[k]; return o }()) {
			t.Fatalf("Get(%d) presence mismatch", k)
		}
	}
}

// TestHashCountAllocationFree: the kernel-level count path through
// pooled scratch allocates nothing once warm (the query-runner-level
// gate lives in internal/query).
func TestHashCountAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(5))
	left := randInput(rng, 4096, 512)
	right := randInput(rng, 8192, 512)
	Hash(Op{Kind: OpCount}, left, right, 1, nil) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		Hash(Op{Kind: OpCount}, left, right, 1, nil)
	})
	if allocs != 0 {
		t.Errorf("hash-join count allocates %.1f times per run, want 0", allocs)
	}
}
