package join

import "sync"

// mergeState is the pooled per-execution scratch of the index-clustered
// merge join: the buffered build-side clusters, the filtered probe
// cluster, and the per-pass accumulators.
type mergeState struct {
	// Buffered build side, selected rows only, in cluster order: cluster
	// c spans [cstart[c], cstart[c+1]) of the flat arrays and covers the
	// observed value range [cmin[c], cmax[c]]. brows is filled only when
	// pairs are materialized, bvals only when the sum folds over the
	// build side.
	bkeys  []int64
	brows  []uint32
	bvals  []int64
	cstart []int32
	cmin   []int64
	cmax   []int64
	next   []int32 // duplicate chain per buffered build entry (OpPairs)

	// Current probe cluster, selected rows only (pr only for OpPairs,
	// pv only when the sum folds over the probe side).
	pk []int64
	pr []uint32
	pv []int64

	// Dense per-probe-cluster accumulator (slot = key - cluster
	// minimum), reset through the touched list so small refined
	// clusters never pay a full clear. cnt == 0 gates occupancy; head
	// is maintained only for OpPairs.
	head    []int32
	cnt     []int32
	sum     []int64
	touched []int32

	// Wide-pass fallback: a small open-addressing table keyed by the
	// exact value, scoped to one build cluster (unrefined indexes only).
	wkey  []int64
	whead []int32
	wcnt  []int32
	wsum  []int64
}

var mergeStatePool = sync.Pool{New: func() any { return new(mergeState) }}

// Merge executes the index-clustered merge join over two key-ordered
// cluster streams. ok is false — and the fold undefined — when either
// side has no key-ordered access path (the caller falls back to Hash).
// pairs is required only for OpPairs. spanLimit bounds the dense
// accumulator (0 keeps DefaultMergeSpan).
//
// The build side (the smaller selected cardinality) is buffered once;
// as the probe side walks, only build clusters whose value ranges
// overlap the current probe cluster are touched — the cluster-
// intersection rule. A probe cluster whose observed span fits the
// dense accumulator (after refinement they all do) joins in one pass:
// the overlapping build entries scatter into value-indexed slots and
// the probe entries fold against them. Wider probe clusters fall back
// to a per-build-cluster pass with a pair-scoped hash table.
//
//holistic:noalloc
func Merge(op Op, left, right Stream, spanLimit int, pairs *Pairs) (count, sum int64, ok bool) {
	if pairs != nil {
		pairs.reset()
	}
	if spanLimit <= 0 {
		spanLimit = DefaultMergeSpan
	}
	build, probe := &left, &right
	swapped := false
	if right.Count < left.Count {
		build, probe = &right, &left
		swapped = true
	}
	sumOnBuild := op.Kind == OpSum && ((op.SumSide == Left) != swapped)
	sumOnProbe := op.Kind == OpSum && !sumOnBuild
	needRows := pairs != nil
	st := mergeStatePool.Get().(*mergeState)
	defer mergeStatePool.Put(st)

	if !st.bufferBuild(build, sumOnBuild, needRows) {
		return 0, 0, false
	}
	nc := len(st.cmin)
	cursor := 0
	walked := probe.Walk(func(vals []int64, rows []uint32) {
		if cursor >= nc {
			return
		}
		// Filter the probe cluster through its selection and find its
		// observed range.
		st.pk = st.pk[:0]
		st.pr = st.pr[:0]
		st.pv = st.pv[:0]
		var pmin, pmax int64
		for i, row := range rows {
			if probe.Sel != nil && !probe.Sel.Test(row) {
				continue
			}
			v := vals[i]
			if len(st.pk) == 0 || v < pmin {
				pmin = v
			}
			if len(st.pk) == 0 || v > pmax {
				pmax = v
			}
			st.pk = append(st.pk, v)
			if needRows {
				st.pr = append(st.pr, row)
			}
			if sumOnProbe {
				pval, _ := probe.Vals.At(row)
				st.pv = append(st.pv, pval)
			}
		}
		if len(st.pk) == 0 {
			return
		}
		// Build clusters entirely below this probe cluster are dead for
		// every later one too (cluster value sets ascend), so the cursor
		// only moves forward.
		for cursor < nc && st.cmax[cursor] < pmin {
			cursor++
		}
		kEnd := cursor
		for kEnd < nc && st.cmin[kEnd] <= pmax {
			kEnd++
		}
		if kEnd == cursor {
			return
		}
		if span := uint64(pmax-pmin) + 1; span <= uint64(spanLimit) {
			c, s := st.joinSpan(op, cursor, kEnd, pmin, pmax, swapped, sumOnBuild, pairs)
			count += c
			sum += s
			return
		}
		for k := cursor; k < kEnd; k++ {
			c, s := st.joinWide(op, k, pmin, pmax, swapped, sumOnBuild, pairs)
			count += c
			sum += s
		}
	})
	if !walked {
		return 0, 0, false
	}
	return count, sum, true
}

// bufferBuild copies the build side's selected rows into flat cluster
// storage (walk callbacks must not retain the streamed slices); false
// when the side has no key-ordered access path.
//
//holistic:alloc-ok grows the retained buffer on first use or resize
func (st *mergeState) bufferBuild(b *Stream, sumOnBuild, needRows bool) bool {
	st.bkeys = st.bkeys[:0]
	st.brows = st.brows[:0]
	st.bvals = st.bvals[:0]
	st.cstart = st.cstart[:0]
	st.cmin = st.cmin[:0]
	st.cmax = st.cmax[:0]
	walked := b.Walk(func(vals []int64, rows []uint32) {
		start := len(st.bkeys)
		var mn, mx int64
		for i, row := range rows {
			if b.Sel != nil && !b.Sel.Test(row) {
				continue
			}
			v := vals[i]
			if len(st.bkeys) == start || v < mn {
				mn = v
			}
			if len(st.bkeys) == start || v > mx {
				mx = v
			}
			st.bkeys = append(st.bkeys, v)
			if needRows {
				st.brows = append(st.brows, row)
			}
			if sumOnBuild {
				bval, _ := b.Vals.At(row)
				st.bvals = append(st.bvals, bval)
			}
		}
		if len(st.bkeys) == start {
			return
		}
		st.cstart = append(st.cstart, int32(start))
		st.cmin = append(st.cmin, mn)
		st.cmax = append(st.cmax, mx)
	})
	if !walked {
		return false
	}
	st.cstart = append(st.cstart, int32(len(st.bkeys)))
	if needRows {
		st.next = grow32(st.next, len(st.bkeys))
	}
	return true
}

// joinSpan joins build clusters [kLo, kHi) against the current probe
// cluster through one dense accumulator covering the probe cluster's
// value range [lo, hi]: every overlapping build entry scatters once,
// every probe entry folds once.
//
//holistic:noalloc
func (st *mergeState) joinSpan(op Op, kLo, kHi int, lo, hi int64, swapped, sumOnBuild bool, pairs *Pairs) (count, sum int64) {
	span := int(hi-lo) + 1
	st.head = grow32(st.head, span)
	st.cnt = grow32(st.cnt, span)
	st.sum = grow64(st.sum, span)
	head, cnt, ssum := st.head, st.cnt, st.sum
	needChain := pairs != nil
	for e, e1 := int(st.cstart[kLo]), int(st.cstart[kHi]); e < e1; e++ {
		v := st.bkeys[e]
		if v < lo || v > hi {
			continue
		}
		slot := int32(v - lo)
		if cnt[slot] == 0 {
			st.touched = append(st.touched, slot)
			if sumOnBuild {
				ssum[slot] = 0
			}
			if needChain {
				head[slot] = 0
			}
		}
		cnt[slot]++
		if sumOnBuild {
			ssum[slot] += st.bvals[e]
		}
		if needChain {
			st.next[e] = head[slot]
			head[slot] = int32(e) + 1
		}
	}
	if len(st.touched) == 0 {
		return 0, 0
	}
	for j, v := range st.pk {
		// v is inside [lo, hi] by construction (the probe cluster's own
		// observed range).
		slot := int32(v - lo)
		c := cnt[slot]
		if c == 0 {
			continue
		}
		count += int64(c)
		if op.Kind == OpSum {
			if sumOnBuild {
				sum += ssum[slot]
			} else {
				sum += int64(c) * st.pv[j]
			}
		}
		if needChain {
			st.emitChain(head[slot], st.pr[j], swapped, pairs)
		}
	}
	for _, slot := range st.touched {
		cnt[slot] = 0
	}
	st.touched = st.touched[:0]
	return count, sum
}

// joinWide joins one build cluster against the current probe cluster
// when the probe cluster's span exceeds the dense bound (an unrefined
// index): a small open-addressing table keyed by the exact value,
// scoped to the build cluster's entries inside the range overlap.
//
//holistic:noalloc
func (st *mergeState) joinWide(op Op, k int, pmin, pmax int64, swapped, sumOnBuild bool, pairs *Pairs) (count, sum int64) {
	lo, hi := st.cmin[k], st.cmax[k]
	if pmin > lo {
		lo = pmin
	}
	if pmax < hi {
		hi = pmax
	}
	segLo, segHi := int(st.cstart[k]), int(st.cstart[k+1])
	slots := pow2(2 * (segHi - segLo))
	if slots < 8 {
		slots = 8
	}
	st.wkey = grow64(st.wkey, slots)
	st.whead = grow32(st.whead, slots)
	st.wcnt = grow32(st.wcnt, slots)
	st.wsum = grow64(st.wsum, slots)
	wkey, whead := st.wkey, st.whead
	wcnt, wsum := st.wcnt, st.wsum
	clear(whead)
	mask := uint64(slots - 1)
	needChain := pairs != nil
	probeSlot := func(v int64) uint64 {
		s := splitmix64(uint64(v)) & mask
		for whead[s] != 0 && wkey[s] != v {
			s = (s + 1) & mask
		}
		return s
	}
	for e := segLo; e < segHi; e++ {
		v := st.bkeys[e]
		if v < lo || v > hi {
			continue
		}
		s := probeSlot(v)
		if whead[s] == 0 {
			wkey[s] = v
			wcnt[s] = 0
			if sumOnBuild {
				wsum[s] = 0
			}
		}
		wcnt[s]++
		if sumOnBuild {
			wsum[s] += st.bvals[e]
		}
		if needChain {
			st.next[e] = whead[s] // previous head (0 = chain end)
		}
		whead[s] = int32(e) + 1
	}
	for j, v := range st.pk {
		if v < lo || v > hi {
			continue
		}
		s := probeSlot(v)
		if whead[s] == 0 {
			continue
		}
		c := wcnt[s]
		count += int64(c)
		if op.Kind == OpSum {
			if sumOnBuild {
				sum += wsum[s]
			} else {
				sum += int64(c) * st.pv[j]
			}
		}
		if needChain {
			st.emitChain(whead[s], st.pr[j], swapped, pairs)
		}
	}
	return count, sum
}

// emitChain appends one probe row's matched build chain to pairs.
//
//holistic:noalloc
func (st *mergeState) emitChain(head int32, probeRow uint32, swapped bool, pairs *Pairs) {
	bl, pl := &pairs.Left, &pairs.Right
	if swapped {
		bl, pl = &pairs.Right, &pairs.Left
	}
	for e := head; e != 0; e = st.next[e-1] {
		*bl = append(*bl, st.brows[e-1])
		*pl = append(*pl, probeRow)
	}
}
