// Package join is the equi-join subsystem: fused join plans over the
// selection vectors the conjunctive query runner produces, with two
// physical strategies picked per query from each side's filtered
// cardinality and index statistics — the operator-completeness step the
// holistic processing model needs (MorphStore, arXiv:2004.09350) so
// that multi-relation analytics ride the partial indexes idle cores
// keep refining:
//
//   - Hash (hash.go): a radix-partitioned open-addressing hash join.
//     The build side — always the smaller filtered cardinality, so the
//     table and its partitions stay cache-resident — is scattered into
//     hash-disjoint partitions, each partition builds its own
//     linear-probing table over one shared slot arena (distinct keys
//     carry a running count, an optional payload sum and a duplicate
//     chain), and the probe side streams through in parallel chunks.
//     The count and sum terminals fold per-slot aggregates without ever
//     walking duplicate chains, and the whole path runs through pooled
//     scratch: a steady-state count is allocation-free.
//
//   - Merge (merge.go): an index-clustered merge join. Both sides
//     stream in ascending key-cluster order (engine.KeyOrderWalker:
//     sorted runs, or cracker pieces with pending updates merged
//     first), the smaller side's clusters are buffered once, and the
//     cluster value ranges are intersected as the larger side walks:
//     only overlapping cluster pairs touch each other, each pair joins
//     through a small dense accumulator offset by the intersection
//     minimum (refined clusters always fit — the holistic payoff), and
//     no hash table over either relation exists at any point.
//
// Rows flow through update-aware column.Views, so joins observe each
// relation's current logical state; rows without a value in the join
// attribute (inserted elsewhere, or deleted) never match, mirroring the
// SQL NULL semantics of the rest of the query subsystem. Matched pairs
// can be materialized (Pairs) or fed straight into the grouped-
// aggregation subsystem (Grouped) for join→group pipelines.
package join

import (
	"fmt"
	"sync"

	"holistic/internal/column"
	"holistic/internal/groupby"
)

// Side names one input of a join; terminals and grouped columns use it
// to say which relation an attribute comes from.
type Side int

const (
	// Left is the left input relation.
	Left Side = iota
	// Right is the right input relation.
	Right
)

// String names the side.
func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// OpKind enumerates the join terminals the kernels execute directly.
type OpKind int

const (
	// OpCount counts the matching pairs.
	OpCount OpKind = iota
	// OpSum sums one side's payload values over the matching pairs (a
	// row matching k rows of the other side contributes its value k
	// times).
	OpSum
	// OpPairs materializes the matching (left row, right row) pairs.
	OpPairs
)

// Op describes one join execution's terminal.
type Op struct {
	Kind OpKind
	// SumSide says which side's payload feeds OpSum (that side's Input
	// must carry Vals, or its Stream a payload View).
	SumSide Side
}

// Pairs holds materialized join matches: Left[i] joined Right[i]. The
// storage is reused across executions when the caller passes the same
// Pairs back in. Order is unspecified (the grouped consumer does not
// care; callers that do must sort).
type Pairs struct {
	Left, Right column.PosList
}

// Len returns the number of matched pairs.
func (p *Pairs) Len() int { return len(p.Left) }

//holistic:noalloc
func (p *Pairs) reset() {
	p.Left = p.Left[:0]
	p.Right = p.Right[:0]
}

var pairsPool = sync.Pool{New: func() any { return new(Pairs) }}

// GetPairs borrows a pooled, emptied Pairs.
//
//holistic:alloc-ok pool warm-up allocates the recycled object
func GetPairs() *Pairs {
	p := pairsPool.Get().(*Pairs)
	p.reset()
	return p
}

// PutPairs recycles a Pairs obtained from GetPairs; the caller must
// not retain it or its slices.
//
//holistic:noalloc
func PutPairs(p *Pairs) {
	if p != nil {
		pairsPool.Put(p)
	}
}

// Input is one gathered side of a hash join: the join-key values of the
// side's selected rows with the aligned base row ids, and — for OpSum
// on this side — the aligned payload values.
type Input struct {
	Keys []int64
	Rows []uint32
	Vals []int64
}

// Stream is one side of a merge join: a key-ordered cluster stream
// (engine.KeyOrderWalker's contract — cluster value sets disjoint and
// ascending, values within one cluster unordered), the selection
// bitmap rows must pass (nil selects every streamed row), an
// update-aware payload view for OpSum on this side, and the side's
// selected cardinality (the build-side choice).
type Stream struct {
	// Walk streams the clusters; it returns false (without calling fn)
	// when the side has no key-ordered access path, in which case Merge
	// reports ok=false and the caller falls back to the hash join.
	Walk  func(fn func(vals []int64, rows []uint32)) bool
	Sel   *column.Bitmap
	Vals  column.View
	Count int
}

// DefaultMergeSpan bounds the per-cluster-pair dense accumulator of the
// merge join, mirroring groupby.DefaultClusterSlots: an intersection
// whose value span fits joins through dense arrays offset by the
// intersection minimum; wider pairs — unrefined indexes — fall back to
// a small open-addressing table scoped to the pair.
const DefaultMergeSpan = 1 << 16

// PairCol addresses one attribute of the join result: the side it
// lives on and its update-aware view. The grouped terminal gathers it
// at the pair's row on that side.
type PairCol struct {
	Side Side
	View column.View
}

//holistic:noalloc
func (pc PairCol) rows(p *Pairs) column.PosList {
	if pc.Side == Right {
		return p.Right
	}
	return p.Left
}

// groupChunk is the number of pairs gathered and folded at a time by
// Grouped — the same cache-resident block size the grouped-aggregation
// kernels use.
const groupChunk = 4096

// Grouped executes a fused grouped-aggregation plan over materialized
// join pairs: group keys and aggregate inputs are gathered from either
// side (PairCol), keyBounds[i] is key i's inclusive value domain (it
// drives the dense/hash accumulator choice exactly as in
// internal/groupby), and the ordered result lands in res. Every
// referenced attribute must have a value at every paired row (the
// query runner's pre-join selection pipeline presence-filters each
// side's referenced attributes).
//
//holistic:alloc-ok per-call plan and chunk buffers; the fused accumulators it feeds are noalloc
func Grouped(p *Pairs, keys []PairCol, keyBounds [][2]int64, aggs []groupby.Agg, aggCols []PairCol, res *groupby.Result) error {
	if len(keys) != len(keyBounds) {
		return fmt.Errorf("join: %d key bounds for %d keys", len(keyBounds), len(keys))
	}
	if len(aggs) != len(aggCols) {
		return fmt.Errorf("join: %d aggregate columns for %d aggregates", len(aggCols), len(aggs))
	}
	gkeys := make([]groupby.Key, len(keys))
	for i := range keys {
		lo, hi := keyBounds[i][0], keyBounds[i][1]
		if hi < lo && p.Len() == 0 {
			// An inverted domain is legal only when nothing joined (an
			// empty side yields empty bounds); the accumulator still
			// needs a well-formed packing to emit the empty result.
			lo, hi = 0, 0
		}
		gkeys[i] = groupby.Key{Lo: lo, Hi: hi}
	}
	acc, err := groupby.NewAcc(gkeys, aggs)
	if err != nil {
		return err
	}
	n := p.Len()
	keyBufs := make([][]int64, len(keys))
	aggBufs := make([][]int64, len(aggs))
	keyCols := make([][]int64, len(keys))
	aggVals := make([][]int64, len(aggs))
	for off := 0; off < n; off += groupChunk {
		end := off + groupChunk
		if end > n {
			end = n
		}
		for i, pc := range keys {
			keyBufs[i] = pc.View.GatherRows(keyBufs[i][:0], pc.rows(p)[off:end])
			keyCols[i] = keyBufs[i]
		}
		for i, a := range aggs {
			if a.Kind == groupby.KindCount {
				aggVals[i] = nil
				continue
			}
			pc := aggCols[i]
			aggBufs[i] = pc.View.GatherRows(aggBufs[i][:0], pc.rows(p)[off:end])
			aggVals[i] = aggBufs[i]
		}
		acc.Segment(keyCols, aggVals)
	}
	return acc.Finish(res)
}

// splitmix64 is the avalanche finalizer of the splitmix64 generator —
// the hash both join kernels key on (partition id from the top bits,
// slot index from the bottom bits, so the two are independent).
//
//holistic:noalloc
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pow2 returns the smallest power of two >= n (minimum 1).
//
//holistic:noalloc
func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
