package join

import "sync"

const (
	// minPartitionKeys is the build cardinality below which the hash
	// join keeps a single partition: one table of a few thousand keys is
	// already cache-resident, so radix scatter would be pure overhead.
	minPartitionKeys = 1 << 14
	// targetPartKeys is the per-partition build cardinality the radix
	// split aims for: ~4096 keys keep a partition's slot region inside
	// the L2 cache during both build and probe.
	targetPartKeys = 1 << 12
	// maxPartitionBits caps the radix width (64 partitions).
	maxPartitionBits = 6
	// minParallelJoin is the side cardinality below which the kernels
	// stay sequential: goroutine fan-out costs allocations and the
	// steady-state count path promises zero.
	minParallelJoin = 1 << 15
)

// hashState is the pooled per-execution scratch of the radix-
// partitioned hash join: the scattered build side, the per-partition
// slot arena and the per-worker partials, all recycled so steady-state
// joins allocate nothing.
type hashState struct {
	bits   int
	hist   []int32 // per-partition build counts
	starts []int32 // partition entry offsets (len nparts+1)
	cur    []int32 // scatter cursors

	// Scattered build side: entry e of partition p lives at
	// [starts[p], starts[p+1]) in these aligned arrays.
	bkeys []int64
	brows []uint32
	bvals []int64
	next  []int32 // duplicate chain per entry (1-based entry index, 0 = end)

	// Slot arena: partition p's open-addressing region is
	// [slotOff[p], slotOff[p+1]), a power of two of at least twice the
	// partition's entries (load factor <= 1/2). shead == 0 marks an
	// empty slot; skey needs no clearing because shead gates it.
	slotOff []int32
	skey    []int64
	shead   []int32 // 1-based entry index of the key's newest duplicate
	scnt    []int32 // duplicates of the key
	ssum    []int64 // payload sum over the duplicates (OpSum on build)

	// Per-worker probe partials.
	wcount []int64
	wsum   []int64
}

var hashStatePool = sync.Pool{New: func() any { return new(hashState) }}

//holistic:alloc-ok pool warm-up allocates the recycled object
func getHashState() *hashState { return hashStatePool.Get().(*hashState) }

//holistic:noalloc
func putHashState(st *hashState) { hashStatePool.Put(st) }

//holistic:alloc-ok grows the retained buffer on first use or resize
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func grow64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

//holistic:alloc-ok grows the retained buffer on first use or resize
func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

// partitionBits picks the radix width from the build cardinality.
//
//holistic:noalloc
func partitionBits(n int) int {
	if n < minPartitionKeys {
		return 0
	}
	bits := 0
	for (n>>bits) > targetPartKeys && bits < maxPartitionBits {
		bits++
	}
	return bits
}

// Hash executes the radix-partitioned hash join: build over the
// smaller side, probe with the larger, fold the terminal. pairs is
// required (and filled) only for OpPairs; count reports the number of
// matching pairs for every op, and sum the OpSum fold.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func Hash(op Op, left, right Input, threads int, pairs *Pairs) (count, sum int64) {
	if pairs != nil {
		pairs.reset()
	}
	if len(left.Keys) == 0 || len(right.Keys) == 0 {
		return 0, 0
	}
	build, probe := left, right
	swapped := false
	if len(right.Keys) < len(left.Keys) {
		build, probe = right, left
		swapped = true
	}
	// Does the build side carry the OpSum payload?
	sumOnBuild := op.Kind == OpSum && ((op.SumSide == Left) != swapped)
	st := getHashState()
	defer putHashState(st)
	st.build(build, sumOnBuild, threads)
	return st.probe(op, probe, swapped, sumOnBuild, threads, pairs)
}

// build scatters the build side into hash partitions and erects each
// partition's open-addressing table. Partition builds are independent
// (partition-disjoint slot regions and entry ranges), so they run in
// parallel on large builds.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func (st *hashState) build(in Input, sumOnBuild bool, threads int) {
	n := len(in.Keys)
	st.bits = partitionBits(n)
	nparts := 1 << uint(st.bits)

	// Histogram + partition offsets.
	st.hist = grow32(st.hist, nparts)
	clear(st.hist)
	if st.bits > 0 {
		shift := uint(64 - st.bits)
		for _, k := range in.Keys {
			st.hist[splitmix64(uint64(k))>>shift]++
		}
	} else {
		st.hist[0] = int32(n)
	}
	st.starts = grow32(st.starts, nparts+1)
	st.slotOff = grow32(st.slotOff, nparts+1)
	st.cur = grow32(st.cur, nparts)
	off, slots := int32(0), int32(0)
	for p := 0; p < nparts; p++ {
		st.starts[p] = off
		st.cur[p] = off
		st.slotOff[p] = slots
		off += st.hist[p]
		if st.hist[p] > 0 {
			slots += int32(pow2(2 * int(st.hist[p])))
		}
	}
	st.starts[nparts] = off
	st.slotOff[nparts] = slots

	// Scatter keys, rows and (when the sum folds over the build side)
	// payload values into partition order.
	st.bkeys = grow64(st.bkeys, n)
	st.brows = growU32(st.brows, n)
	st.next = grow32(st.next, n)
	if sumOnBuild {
		st.bvals = grow64(st.bvals, n)
	}
	if st.bits > 0 {
		shift := uint(64 - st.bits)
		for i, k := range in.Keys {
			p := splitmix64(uint64(k)) >> shift
			e := st.cur[p]
			st.cur[p] = e + 1
			st.bkeys[e] = k
			st.brows[e] = in.Rows[i]
			if sumOnBuild {
				st.bvals[e] = in.Vals[i]
			}
		}
	} else {
		copy(st.bkeys, in.Keys)
		copy(st.brows, in.Rows)
		if sumOnBuild {
			copy(st.bvals, in.Vals)
		}
	}

	st.skey = grow64(st.skey, int(slots))
	st.shead = grow32(st.shead, int(slots))
	st.scnt = grow32(st.scnt, int(slots))
	if sumOnBuild {
		st.ssum = grow64(st.ssum, int(slots))
	}
	clear(st.shead)

	if threads > 1 && n >= minParallelJoin && nparts > 1 {
		workers := threads
		if workers > nparts {
			workers = nparts
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for p := w; p < nparts; p += workers {
					st.buildPart(p, sumOnBuild)
				}
			}(w)
		}
		wg.Wait()
		return
	}
	for p := 0; p < nparts; p++ {
		st.buildPart(p, sumOnBuild)
	}
}

// buildPart inserts partition p's entries into its slot region:
// linear-probing on the key, duplicates chained through next with a
// running per-key count and payload sum.
//
//holistic:noalloc
func (st *hashState) buildPart(p int, sumOnBuild bool) {
	slotLo, slotHi := st.slotOff[p], st.slotOff[p+1]
	if slotLo == slotHi {
		return
	}
	mask := uint64(slotHi-slotLo) - 1
	for e := st.starts[p]; e < st.starts[p+1]; e++ {
		k := st.bkeys[e]
		s := slotLo + int32(splitmix64(uint64(k))&mask)
		for {
			if st.shead[s] == 0 {
				st.skey[s] = k
				st.shead[s] = e + 1
				st.next[e] = 0
				st.scnt[s] = 1
				if sumOnBuild {
					st.ssum[s] = st.bvals[e]
				}
				break
			}
			if st.skey[s] == k {
				st.next[e] = st.shead[s]
				st.shead[s] = e + 1
				st.scnt[s]++
				if sumOnBuild {
					st.ssum[s] += st.bvals[e]
				}
				break
			}
			s++
			if s == slotHi {
				s = slotLo
			}
		}
	}
}

// probe streams the probe side against the partition tables. Count and
// sum fold per-slot aggregates — duplicate chains are never walked —
// and split across workers on large probes; OpPairs walks chains
// sequentially into pairs.
//
//holistic:alloc-ok goroutine fan-out for the parallel path
func (st *hashState) probe(op Op, in Input, swapped, sumOnBuild bool, threads int, pairs *Pairs) (count, sum int64) {
	n := len(in.Keys)
	if op.Kind != OpPairs && threads > 1 && n >= minParallelJoin {
		workers := threads
		st.wcount = grow64(st.wcount, workers)
		st.wsum = grow64(st.wsum, workers)
		clear(st.wcount)
		clear(st.wsum)
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				st.wcount[w], st.wsum[w] = st.probeRange(op, in, swapped, sumOnBuild, lo, hi, nil)
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			count += st.wcount[w]
			sum += st.wsum[w]
		}
		return count, sum
	}
	return st.probeRange(op, in, swapped, sumOnBuild, 0, n, pairs)
}

//holistic:noalloc
func (st *hashState) probeRange(op Op, in Input, swapped, sumOnBuild bool, lo, hi int, pairs *Pairs) (count, sum int64) {
	shift := uint(64 - st.bits)
	for i := lo; i < hi; i++ {
		k := in.Keys[i]
		h := splitmix64(uint64(k))
		p := 0
		if st.bits > 0 {
			p = int(h >> shift)
		}
		slotLo, slotHi := st.slotOff[p], st.slotOff[p+1]
		if slotLo == slotHi {
			continue
		}
		mask := uint64(slotHi-slotLo) - 1
		s := slotLo + int32(h&mask)
		for {
			g := st.shead[s]
			if g == 0 {
				break
			}
			if st.skey[s] == k {
				c := int64(st.scnt[s])
				count += c
				if op.Kind == OpSum {
					if sumOnBuild {
						sum += st.ssum[s]
					} else {
						sum += c * in.Vals[i]
					}
				}
				if pairs != nil {
					bl, pl := &pairs.Left, &pairs.Right
					if swapped {
						bl, pl = &pairs.Right, &pairs.Left
					}
					for e := g; e != 0; e = st.next[e-1] {
						*bl = append(*bl, st.brows[e-1])
						*pl = append(*pl, in.Rows[i])
					}
				}
				break
			}
			s++
			if s == slotHi {
				s = slotLo
			}
		}
	}
	return count, sum
}

// Map is a minimal open-addressing int64 -> int32 table with last-wins
// puts: the drop-in core that replaced the Go map inside
// engine.HashJoin (the map version survives as the differential oracle
// in engine's tests).
type Map struct {
	keys []int64
	vals []int32 // stored value + 1; 0 = empty
	mask uint64
	n    int
}

// NewMap returns a table pre-sized for n keys.
func NewMap(n int) *Map {
	slots := pow2(2 * n)
	if slots < 8 {
		slots = 8
	}
	return &Map{keys: make([]int64, slots), vals: make([]int32, slots), mask: uint64(slots - 1)}
}

// Put inserts or overwrites k's value. v must be non-negative: values
// are stored biased by one with 0 as the empty-slot sentinel, so a
// negative value would alias it.
func (m *Map) Put(k int64, v int32) {
	if v < 0 {
		panic("join: Map values must be non-negative")
	}
	s := splitmix64(uint64(k)) & m.mask
	for {
		if m.vals[s] == 0 {
			m.keys[s] = k
			m.vals[s] = v + 1
			m.n++
			if uint64(m.n)*2 >= uint64(len(m.keys)) {
				m.grow()
			}
			return
		}
		if m.keys[s] == k {
			m.vals[s] = v + 1
			return
		}
		s = (s + 1) & m.mask
	}
}

// Get returns k's value; ok is false when absent.
func (m *Map) Get(k int64) (int32, bool) {
	s := splitmix64(uint64(k)) & m.mask
	for {
		v := m.vals[s]
		if v == 0 {
			return 0, false
		}
		if m.keys[s] == k {
			return v - 1, true
		}
		s = (s + 1) & m.mask
	}
}

// Len returns the number of distinct keys.
func (m *Map) Len() int { return m.n }

func (m *Map) grow() {
	ok, ov := m.keys, m.vals
	slots := len(ok) * 2
	m.keys = make([]int64, slots)
	m.vals = make([]int32, slots)
	m.mask = uint64(slots - 1)
	for s, v := range ov {
		if v == 0 {
			continue
		}
		k := ok[s]
		i := splitmix64(uint64(k)) & m.mask
		for m.vals[i] != 0 {
			i = (i + 1) & m.mask
		}
		m.keys[i] = k
		m.vals[i] = v
	}
}
