package holistic

import (
	"math/rand"
	"testing"
	"time"

	"holistic/internal/column"
	"holistic/internal/cpu"
	"holistic/internal/cracking"
	"holistic/internal/stats"
	"holistic/internal/updates"
)

func randVals(n int, seed int64, domain int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(domain)
	}
	return vals
}

func newSpace(l1 int) *stats.Registry { return stats.NewRegistry(l1, 7) }

func TestDaemonRefinesIdleSystem(t *testing.T) {
	reg := newSpace(256)
	base := randVals(100_000, 1, 1<<20)
	col := cracking.New("a", base, cracking.Config{})
	reg.Add("a", col, false)

	d := New(reg, cpu.Fixed{Total: 2, Idle: 2}, Config{
		Interval:    time.Millisecond,
		Refinements: 16,
		Seed:        1,
	})
	d.Start()
	deadline := time.After(2 * time.Second)
	for col.Pieces() < 50 {
		select {
		case <-deadline:
			d.Stop()
			t.Fatalf("daemon refined only %d pieces in 2s", col.Pieces())
		case <-time.After(5 * time.Millisecond):
		}
	}
	d.Stop()
	if d.Refinements() == 0 {
		t.Error("Refinements() = 0 after visible refinement")
	}
	if err := col.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Data integrity after background refinement.
	if got, want := col.SelectRange(100, 1<<19).Count(), column.CountRange(base, 100, 1<<19); got != want {
		t.Fatalf("count after refinement: %d, want %d", got, want)
	}
}

func TestDaemonRespectsBusySystem(t *testing.T) {
	reg := newSpace(256)
	col := cracking.New("a", randVals(10_000, 2, 1<<20), cracking.Config{})
	reg.Add("a", col, false)
	d := New(reg, cpu.Fixed{Total: 2, Idle: 0}, Config{Interval: time.Millisecond, Seed: 2})
	d.Start()
	time.Sleep(50 * time.Millisecond)
	d.Stop()
	if got := col.Pieces(); got != 1 {
		t.Errorf("daemon refined a fully busy system: %d pieces", got)
	}
	if len(d.Cycles()) != 0 {
		t.Errorf("recorded %d cycles with zero idle contexts", len(d.Cycles()))
	}
}

func TestDaemonReactsToLoadChanges(t *testing.T) {
	reg := newSpace(256)
	col := cracking.New("a", randVals(50_000, 3, 1<<20), cracking.Config{})
	reg.Add("a", col, false)
	acct := cpu.NewLoadAccountant(2)
	d := New(reg, acct, Config{Interval: time.Millisecond, Seed: 3})

	// Saturate, start, verify no refinement.
	acct.Acquire(2)
	d.Start()
	time.Sleep(30 * time.Millisecond)
	if col.Pieces() != 1 {
		d.Stop()
		t.Fatalf("refined %d pieces while saturated", col.Pieces())
	}
	// Free a context; the daemon must pick the idleness up.
	acct.Release(1)
	deadline := time.After(2 * time.Second)
	for col.Pieces() == 1 {
		select {
		case <-deadline:
			d.Stop()
			t.Fatal("daemon never used the freed context")
		case <-time.After(5 * time.Millisecond):
		}
	}
	d.Stop()
}

func TestDaemonMovesIndexToOptimal(t *testing.T) {
	reg := newSpace(1024)
	col := cracking.New("a", randVals(8_000, 4, 1<<20), cracking.Config{})
	e := reg.Add("a", col, false)
	d := New(reg, cpu.Fixed{Total: 1, Idle: 1}, Config{
		Interval: time.Millisecond, Refinements: 16, Seed: 4,
	})
	d.Start()
	deadline := time.After(3 * time.Second)
	for e.State() != stats.Optimal {
		select {
		case <-deadline:
			d.Stop()
			t.Fatalf("index never reached optimal: avg piece %.0f, pieces %d",
				col.AvgPieceSize(), col.Pieces())
		case <-time.After(5 * time.Millisecond):
		}
	}
	d.Stop()
	if col.AvgPieceSize() > 1024 {
		t.Errorf("optimal index has avg piece %.0f > L1 1024", col.AvgPieceSize())
	}
}

func TestDaemonStopIsIdempotentAndWithoutStart(t *testing.T) {
	d := New(newSpace(64), cpu.Fixed{}, Config{Interval: time.Millisecond})
	d.Stop()
	d.Stop() // second call must not panic or hang
	d2 := New(newSpace(64), cpu.Fixed{Total: 1, Idle: 1}, Config{Interval: time.Millisecond})
	d2.Start()
	d2.Start() // idempotent
	d2.Stop()
	d2.Stop()
}

func TestDaemonTelemetry(t *testing.T) {
	reg := newSpace(64)
	col := cracking.New("a", randVals(50_000, 5, 1<<20), cracking.Config{})
	reg.Add("a", col, false)
	d := New(reg, cpu.Fixed{Total: 2, Idle: 2}, Config{
		Interval: time.Millisecond, Refinements: 4, Seed: 5,
	})
	d.Start()
	time.Sleep(100 * time.Millisecond)
	d.Stop()
	cycles := d.Cycles()
	if len(cycles) == 0 {
		t.Fatal("no cycles recorded")
	}
	for i, c := range cycles {
		if c.Workers != 2 {
			t.Errorf("cycle %d: workers = %d, want 2", i, c.Workers)
		}
		if c.WorkerTime <= 0 || c.Wall <= 0 {
			t.Errorf("cycle %d: non-positive times %+v", i, c)
		}
	}
	if d.Attempts() < d.Refinements() {
		t.Errorf("attempts %d < refinements %d", d.Attempts(), d.Refinements())
	}
}

func TestDaemonMaxWorkersCap(t *testing.T) {
	reg := newSpace(64)
	reg.Add("a", cracking.New("a", randVals(50_000, 6, 1<<20), cracking.Config{}), false)
	d := New(reg, cpu.Fixed{Total: 16, Idle: 16}, Config{
		Interval: time.Millisecond, MaxWorkers: 3, Refinements: 2, Seed: 6,
	})
	d.Start()
	time.Sleep(50 * time.Millisecond)
	d.Stop()
	for i, c := range d.Cycles() {
		if c.Workers > 3 {
			t.Fatalf("cycle %d activated %d workers above cap 3", i, c.Workers)
		}
	}
}

func TestDaemonSpreadsAcrossIndexSpace(t *testing.T) {
	reg := newSpace(64)
	cols := make([]*cracking.Column, 5)
	for i := range cols {
		cols[i] = cracking.New("c", randVals(20_000, int64(10+i), 1<<20), cracking.Config{})
		reg.Add(string(rune('a'+i)), cols[i], false)
	}
	d := New(reg, cpu.Fixed{Total: 2, Idle: 2}, Config{
		Interval: time.Millisecond, Refinements: 8, Seed: 7, Strategy: stats.W4,
	})
	d.Start()
	deadline := time.After(3 * time.Second)
	refinedAll := func() bool {
		for _, c := range cols {
			if c.Pieces() < 3 {
				return false
			}
		}
		return true
	}
	for !refinedAll() {
		select {
		case <-deadline:
			d.Stop()
			counts := make([]int, len(cols))
			for i, c := range cols {
				counts[i] = c.Pieces()
			}
			t.Fatalf("random strategy did not reach all indices: pieces %v", counts)
		case <-time.After(5 * time.Millisecond):
		}
	}
	d.Stop()
}

func TestDaemonRefinesPotentialIndices(t *testing.T) {
	// Figure 9: with idle time before the workload, indices sit in
	// Cpotential and are still refined.
	reg := newSpace(64)
	col := cracking.New("a", randVals(30_000, 20, 1<<20), cracking.Config{})
	reg.Add("a", col, true) // potential: never queried
	d := New(reg, cpu.Fixed{Total: 1, Idle: 1}, Config{
		Interval: time.Millisecond, Refinements: 8, Seed: 8,
	})
	d.Start()
	deadline := time.After(2 * time.Second)
	for col.Pieces() < 10 {
		select {
		case <-deadline:
			d.Stop()
			t.Fatalf("potential index not refined: %d pieces", col.Pieces())
		case <-time.After(5 * time.Millisecond):
		}
	}
	d.Stop()
}

func TestDaemonMergesPendingUpdates(t *testing.T) {
	reg := newSpace(64)
	base := randVals(20_000, 21, 1000)
	col := cracking.New("a", base, cracking.Config{})
	reg.Add("a", col, false)
	pend := updates.NewPending()
	for i := 0; i < 100; i++ {
		pend.AddInsert(int64(i*10), 0)
	}
	d := New(reg, cpu.Fixed{Total: 1, Idle: 1}, Config{
		Interval: time.Millisecond, Refinements: 8, Seed: 9,
	})
	d.AttachPending("a", pend)
	d.Start()
	deadline := time.After(3 * time.Second)
	for pend.Len() > 0 {
		select {
		case <-deadline:
			d.Stop()
			t.Fatalf("workers left %d pending updates unmerged", pend.Len())
		case <-time.After(5 * time.Millisecond):
		}
	}
	d.Stop()
	if col.Len() != len(base)+100 {
		t.Fatalf("Len() = %d, want %d", col.Len(), len(base)+100)
	}
	if err := col.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitIndexStorageBudget(t *testing.T) {
	reg := newSpace(64)
	d := New(reg, cpu.Fixed{}, Config{
		Interval:      time.Millisecond,
		StorageBudget: 3 * 10_000 * 8, // room for 3 columns
	})
	for i := 0; i < 3; i++ {
		name := string(rune('a' + i))
		col := cracking.New(name, make([]int64, 10_000), cracking.Config{})
		if _, evicted := d.AdmitIndex(name, col, false); len(evicted) != 0 {
			t.Fatalf("index %s evicted %v within budget", name, evicted)
		}
	}
	// Access b and c so a is the LFU victim.
	reg.RecordAccess("b", false)
	reg.RecordAccess("c", false)
	_, evicted := d.AdmitIndex("d", cracking.New("d", make([]int64, 10_000), cracking.Config{}), false)
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]", evicted)
	}
	if reg.Get("a") != nil {
		t.Error("evicted index still registered")
	}
	if reg.Get("d") == nil {
		t.Error("admitted index missing")
	}
}

func TestAdmitIndexUnlimitedBudget(t *testing.T) {
	d := New(newSpace(64), cpu.Fixed{}, Config{Interval: time.Millisecond})
	for i := 0; i < 10; i++ {
		if _, evicted := d.AdmitIndex(string(rune('a'+i)),
			cracking.New("x", make([]int64, 1000), cracking.Config{}), false); len(evicted) != 0 {
			t.Fatal("unlimited budget evicted")
		}
	}
}

func TestRunCycleNow(t *testing.T) {
	reg := newSpace(64)
	col := cracking.New("a", randVals(50_000, 22, 1<<20), cracking.Config{})
	reg.Add("a", col, false)
	d := New(reg, cpu.Fixed{}, Config{Interval: time.Hour, Refinements: 16, Seed: 10})
	d.RunCycleNow(2)
	if col.Pieces() < 2 {
		t.Fatalf("RunCycleNow refined nothing: %d pieces", col.Pieces())
	}
	if len(d.Cycles()) != 1 {
		t.Fatalf("Cycles() = %d, want 1", len(d.Cycles()))
	}
	d.RunCycleNow(0) // clamps to 1 worker
	if len(d.Cycles()) != 2 {
		t.Fatalf("Cycles() = %d, want 2", len(d.Cycles()))
	}
}

func TestDaemonEmptySpace(t *testing.T) {
	d := New(newSpace(64), cpu.Fixed{Total: 2, Idle: 2}, Config{
		Interval: time.Millisecond, Seed: 11,
	})
	d.Start()
	time.Sleep(30 * time.Millisecond)
	d.Stop() // must not panic or spin on an empty index space
	if d.Refinements() != 0 {
		t.Errorf("refined %d on empty space", d.Refinements())
	}
}

func TestDaemonQueriesRaceDaemon(t *testing.T) {
	// End-to-end concurrency: user queries verify counts while the daemon
	// refines the same columns.
	reg := newSpace(128)
	base := randVals(100_000, 23, 1<<20)
	col := cracking.New("a", base, cracking.Config{})
	reg.Add("a", col, false)
	d := New(reg, cpu.Fixed{Total: 2, Idle: 1}, Config{
		Interval: time.Millisecond, Refinements: 16, Seed: 12,
	})
	d.Start()
	rng := rand.New(rand.NewSource(24))
	for q := 0; q < 300; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		got := col.SelectRange(lo, hi).Count()
		want := column.CountRange(base, lo, hi)
		if got != want {
			d.Stop()
			t.Fatalf("query %d: got %d, want %d while daemon active", q, got, want)
		}
		reg.RecordAccess("a", false)
	}
	d.Stop()
	if err := col.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
