// Convergence telemetry: a JSON-ready snapshot of how far the daemon has
// pushed each index toward its optimal state, plus the cumulative
// refinement counters — the payload behind Store.Metrics and the
// /debug/holistic endpoint.

package holistic

import "holistic/internal/stats"

// IndexConvergence describes one index's refinement progress.
type IndexConvergence struct {
	Name string `json:"name"`
	// State is the configuration: "actual", "potential" or "optimal".
	State string `json:"state"`
	// Pieces is the current partition count of the cracker column.
	Pieces int `json:"pieces"`
	// AvgPieceSize is N/p in values; Distance is d(I,Iopt) = N/p - |L1|
	// clamped at zero (Equation 1).
	AvgPieceSize float64 `json:"avg_piece_size"`
	Distance     float64 `json:"distance"`
	// Accesses is fI, Hits fIh.
	Accesses int64 `json:"accesses"`
	Hits     int64 `json:"hits"`
	// Progress is 1 - d/d0 where d0 is the distance of the unrefined
	// column (N - |L1|): 0 = untouched, 1 = optimal.
	Progress float64 `json:"progress"`
}

// Convergence is the daemon-side metrics snapshot.
type Convergence struct {
	// L1Values is |L1|, the target average piece size.
	L1Values int `json:"l1_values"`
	// Strategy is the active index-decision strategy (W1-W4).
	Strategy string `json:"strategy"`
	// Indexes lists per-index progress, name-ordered.
	Indexes []IndexConvergence `json:"indexes"`
	// Refinements counts successful refinement actions, Attempts all
	// pivot attempts including re-rolls, BusyRerolls the latch-contention
	// re-rolls of Figure 3.
	Refinements int64 `json:"refinements"`
	Attempts    int64 `json:"attempts"`
	BusyRerolls int64 `json:"busy_rerolls"`
	// WorkerPanics counts contained worker/hook panics; LastPanic is
	// the most recent reason.
	WorkerPanics int64  `json:"worker_panics"`
	LastPanic    string `json:"last_panic,omitempty"`
	// Totals aggregates every tuning cycle ever run.
	Totals CycleTotals `json:"cycle_totals"`
	// Ratio is the mean per-index Progress: 1.0 once the whole index
	// space is optimal.
	Ratio float64 `json:"convergence_ratio"`
	// Transitions is the retained index state-transition timeline.
	Transitions []stats.Transition `json:"transitions"`
}

// Convergence snapshots the daemon's refinement state. Cold path; safe
// to call concurrently with tuning cycles and user queries.
func (d *Daemon) Convergence() *Convergence {
	l1 := d.reg.L1Values()
	entries := d.reg.Entries()
	c := &Convergence{
		L1Values:     l1,
		Strategy:     d.cfg.Strategy.String(),
		Indexes:      make([]IndexConvergence, 0, len(entries)),
		Refinements:  d.Refinements(),
		Attempts:     d.Attempts(),
		BusyRerolls:  d.BusyRerolls(),
		WorkerPanics: d.WorkerPanics(),
		LastPanic:    d.LastPanic(),
		Totals:       d.CycleTotals(),
		Transitions:  d.reg.Transitions(),
	}
	var sum float64
	for _, e := range entries {
		avg := e.Col.AvgPieceSize()
		dist := d.reg.Distance(e)
		d0 := float64(e.Col.Len()) - float64(l1)
		progress := 1.0
		if d0 > 0 {
			progress = 1 - dist/d0
			if progress < 0 {
				progress = 0
			} else if progress > 1 {
				progress = 1
			}
		}
		sum += progress
		c.Indexes = append(c.Indexes, IndexConvergence{
			Name:         e.Name,
			State:        e.State().String(),
			Pieces:       e.Col.Pieces(),
			AvgPieceSize: avg,
			Distance:     dist,
			Accesses:     e.Accesses(),
			Hits:         e.Hits(),
			Progress:     progress,
		})
	}
	if len(entries) > 0 {
		c.Ratio = sum / float64(len(entries))
	}
	return c
}
