package holistic

import (
	"encoding/json"
	"testing"

	"holistic/internal/cpu"
	"holistic/internal/cracking"
)

func TestCycleHistoryBounded(t *testing.T) {
	reg := newSpace(64)
	col := cracking.New("a", randVals(4096, 1, 1<<16), cracking.Config{})
	reg.Add("a", col, false)
	d := New(reg, cpu.Fixed{Total: 1, Idle: 1}, Config{Refinements: 1, Seed: 1})
	defer d.Stop()

	const runs = CycleHistory + 20
	for i := 0; i < runs; i++ {
		d.RunCycleNow(1)
	}
	cycles := d.Cycles()
	if len(cycles) != CycleHistory {
		t.Fatalf("Cycles() holds %d, want bounded at %d", len(cycles), CycleHistory)
	}
	tot := d.CycleTotals()
	if tot.Cycles != runs {
		t.Fatalf("CycleTotals().Cycles = %d, want %d", tot.Cycles, runs)
	}
	if tot.Workers != runs {
		t.Fatalf("CycleTotals().Workers = %d, want %d (1 per cycle)", tot.Workers, runs)
	}
	// Totals keep aggregating what the ring forgot: summed refinements of
	// retained cycles can never exceed the cumulative total.
	var retained int64
	for _, c := range cycles {
		retained += int64(c.Refinements)
	}
	if retained > tot.Refinements || tot.Refinements != d.Refinements() {
		t.Fatalf("retained %d > totals %d (daemon says %d)", retained, tot.Refinements, d.Refinements())
	}
}

func TestConvergenceSnapshot(t *testing.T) {
	reg := newSpace(256)
	col := cracking.New("a", randVals(50_000, 1, 1<<20), cracking.Config{})
	reg.Add("a", col, true)
	reg.RecordAccess("a", false)
	d := New(reg, cpu.Fixed{Total: 1, Idle: 1}, Config{Refinements: 16, Seed: 1})
	defer d.Stop()

	c0 := d.Convergence()
	if len(c0.Indexes) != 1 || c0.Indexes[0].Name != "a" {
		t.Fatalf("indexes = %+v", c0.Indexes)
	}
	if c0.Indexes[0].State != "actual" {
		t.Fatalf("state = %q after access, want actual", c0.Indexes[0].State)
	}
	start := c0.Ratio

	for i := 0; i < 40; i++ {
		d.RunCycleNow(2)
	}
	c1 := d.Convergence()
	if c1.Ratio <= start {
		t.Fatalf("convergence ratio did not increase: %.4f -> %.4f", start, c1.Ratio)
	}
	if c1.Refinements == 0 || c1.Attempts < c1.Refinements {
		t.Fatalf("counters inconsistent: %+v", c1)
	}
	if c1.Totals.Cycles != 40 {
		t.Fatalf("totals cycles = %d", c1.Totals.Cycles)
	}
	if len(c1.Transitions) == 0 {
		t.Fatal("no state transitions recorded")
	}
	idx := c1.Indexes[0]
	if idx.Progress <= 0 || idx.Progress > 1 {
		t.Fatalf("progress out of range: %v", idx.Progress)
	}

	// The snapshot must round-trip as JSON with its telemetry keys.
	b, err := json.Marshal(c1)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"l1_values", "strategy", "indexes", "refinements", "attempts", "busy_rerolls", "cycle_totals", "convergence_ratio", "transitions"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("convergence JSON missing %q: %s", key, b)
		}
	}
}
