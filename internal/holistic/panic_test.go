package holistic

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"holistic/internal/cpu"
	"holistic/internal/cracking"
)

// TestWorkerPanicContained injects a panicking refinement step and
// asserts the daemon survives it: the panic is counted and reported,
// and the next cycle refines normally.
func TestWorkerPanicContained(t *testing.T) {
	reg := newSpace(256)
	col := cracking.New("a", randVals(50_000, 11, 1<<20), cracking.Config{})
	reg.Add("a", col, false)

	d := New(reg, cpu.Fixed{Total: 2, Idle: 2}, Config{
		Interval:    time.Hour, // cycles driven manually
		Refinements: 8,
		Seed:        5,
	})
	var boom atomic.Bool
	boom.Store(true)
	d.testRefineHook = func() {
		if boom.Load() {
			panic("injected refinement failure")
		}
	}

	d.RunCycleNow(2)
	if got := d.WorkerPanics(); got != 2 {
		t.Errorf("WorkerPanics = %d after a 2-worker panicking cycle, want 2", got)
	}
	if lp := d.LastPanic(); !strings.Contains(lp, "injected refinement failure") {
		t.Errorf("LastPanic = %q, want the injected reason", lp)
	}

	// The daemon keeps operating: the next cycle refines for real.
	boom.Store(false)
	before := col.Pieces()
	d.RunCycleNow(2)
	if col.Pieces() <= before {
		t.Errorf("no refinement after contained panic: pieces %d -> %d", before, col.Pieces())
	}
	if err := col.CheckInvariants(); err != nil {
		t.Fatalf("index invariants broken after contained panic: %v", err)
	}

	c := d.Convergence()
	if c.WorkerPanics != 2 {
		t.Errorf("Convergence.WorkerPanics = %d, want 2", c.WorkerPanics)
	}
	if !strings.Contains(c.LastPanic, "injected") {
		t.Errorf("Convergence.LastPanic = %q, want the injected reason", c.LastPanic)
	}
}

// TestIdleHookPanicContained asserts a panicking idle hook (the
// durability layer's snapshot trigger rides there) cannot kill the
// daemon loop.
func TestIdleHookPanicContained(t *testing.T) {
	d := New(newSpace(64), cpu.Fixed{Total: 1, Idle: 1}, Config{Interval: time.Hour, Seed: 1})
	d.SetIdleHook(func() { panic("snapshot hook failure") })
	d.runIdleHook()
	d.runIdleHook()
	if got := d.WorkerPanics(); got != 2 {
		t.Errorf("WorkerPanics = %d after two panicking hook runs, want 2", got)
	}
	if lp := d.LastPanic(); !strings.Contains(lp, "snapshot hook failure") {
		t.Errorf("LastPanic = %q, want the hook reason", lp)
	}
}
