// Package holistic implements the paper's primary contribution: an
// always-on self-tuning daemon that detects idle CPU resources and spends
// them on incremental refinement of the adaptive index space, in parallel
// with — and without disturbing — user queries (Section 4).
//
// The tuning cycle (Figure 2):
//
//	loop:
//	    monitor CPU utilization over one interval
//	    n := number of idle hardware contexts
//	    if n == 0: continue
//	    activate n holistic workers
//	    each worker runs the IdleFunction:
//	        pick an index I from the index space IS (strategy W1-W4)
//	        repeat x times:
//	            crack I at a random pivot in its value domain
//	            (try-latch; on a held latch re-roll the pivot, Figure 3)
//	            merge pending updates of the pivot's piece
//	        update statistics; move I to Coptimal when d(I,Iopt) = 0
//	    wait for all workers; repeat
//
// The index space, statistics and strategies live in internal/stats; the
// physical refinement machinery in internal/cracking; the idle-detection
// signal in internal/cpu.
package holistic

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"holistic/internal/cpu"
	"holistic/internal/cracking"
	"holistic/internal/obs/econ"
	"holistic/internal/obs/flight"
	"holistic/internal/stats"
	"holistic/internal/updates"
)

// Config tunes the daemon.
type Config struct {
	// Interval is the CPU-load measurement window between tuning cycles.
	// The paper uses 1 second ("the time limit that gives proper kernel
	// statistics"); reduced-scale benchmarks and tests use milliseconds
	// together with the in-process load accountant.
	Interval time.Duration
	// Refinements is x, the number of index refinements each activated
	// worker performs (Figure 2). The paper's sweep (Figure 15) found
	// x = 16 best on its hardware; that is the default.
	Refinements int
	// MaxWorkers caps the number of workers activated per cycle
	// regardless of how many contexts are idle. 0 means no cap.
	MaxWorkers int
	// Strategy picks the index-decision strategy; default W4 (random),
	// the paper's robust choice.
	Strategy stats.Strategy
	// Seed seeds worker pivot RNGs.
	Seed int64
	// StorageBudget bounds the materialized index space in bytes;
	// AdmitIndex evicts LFU victims to stay below it. 0 = unlimited.
	StorageBudget int64
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Refinements <= 0 {
		c.Refinements = 16
	}
	if c.Strategy == 0 {
		c.Strategy = stats.W4
	}
}

// CycleStats records one activation of the holistic indexing thread: the
// telemetry behind Figure 6(d).
type CycleStats struct {
	// Workers activated in this cycle (n idle contexts, capped).
	Workers int
	// WorkerTime is the summed response time of all workers in the
	// cycle (the left y-axis of Figure 6(d)).
	WorkerTime time.Duration
	// Wall is the wall-clock duration of the cycle's work phase.
	Wall time.Duration
	// Refinements actually performed (RefineDone outcomes).
	Refinements int
	// MergedUpdates counts pending updates consumed by workers.
	MergedUpdates int
}

// CycleHistory is the number of recent cycles the daemon retains. A
// long-running daemon activates once per interval indefinitely; the ring
// plus the cumulative CycleTotals keep Cycles() bounded while losing no
// aggregate information.
const CycleHistory = 256

// CycleTotals accumulates over every cycle ever run, including those
// that have rotated out of the bounded history.
type CycleTotals struct {
	// Cycles is the number of activations of the indexing thread.
	Cycles int64 `json:"cycles"`
	// Workers sums the workers activated across all cycles.
	Workers int64 `json:"workers"`
	// WorkerTime sums all workers' response times.
	WorkerTime time.Duration `json:"worker_time_ns"`
	// Wall sums the work-phase wall-clock durations.
	Wall time.Duration `json:"wall_ns"`
	// Refinements and MergedUpdates sum the per-cycle counts.
	Refinements   int64 `json:"refinements"`
	MergedUpdates int64 `json:"merged_updates"`
}

// Daemon is the holistic indexing thread plus its worker pool.
type Daemon struct {
	cfg Config
	reg *stats.Registry
	mon cpu.Monitor

	pendMu  sync.RWMutex
	pending map[string]*updates.Pending

	cycleMu    sync.Mutex
	cycles     [CycleHistory]CycleStats
	cycleStart int
	cycleLen   int
	totals     CycleTotals

	totalRefinements atomic.Int64
	totalAttempts    atomic.Int64
	busyRerolls      atomic.Int64

	// workerPanics counts refinement workers (and idle hooks) that
	// panicked and were contained; lastPanic keeps the most recent
	// reason for the convergence report.
	workerPanics atomic.Int64
	panicMu      sync.Mutex
	lastPanic    string

	// idleHook, when set, runs once per tuning interval after the
	// cycle's workers finish — the snapshotter piggybacks here so
	// durability work rides the same idle capacity as refinement.
	hookMu   sync.Mutex
	idleHook func()

	// testRefineHook, when set before Start, runs at the top of every
	// worker activation; the panic-containment test injects through it.
	testRefineHook func()

	// fr is the flight recorder cycle and refinement audit events go to;
	// swapped atomically so workers never race SetFlight. A nil recorder
	// is a no-op for every Record method.
	fr atomic.Pointer[flight.Recorder]

	// ec is the refinement-economics recorder: workers charge their
	// invested nanoseconds and pivot positions to it, the same way the
	// query side credits drive latencies. Swapped atomically like fr;
	// nil is a no-op for every Note method.
	ec atomic.Pointer[econ.Econ]

	stop chan struct{}
	done chan struct{}

	startOnce, stopOnce sync.Once
}

// New creates a daemon over the given index space and CPU monitor.
func New(reg *stats.Registry, mon cpu.Monitor, cfg Config) *Daemon {
	cfg.fillDefaults()
	return &Daemon{
		cfg:     cfg,
		reg:     reg,
		mon:     mon,
		pending: make(map[string]*updates.Pending),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Registry exposes the index space the daemon tunes.
func (d *Daemon) Registry() *stats.Registry { return d.reg }

// SetFlight attaches the flight recorder the daemon's cycles and
// refinement steps record audit events into (nil detaches). Safe to
// call concurrently with a running daemon.
func (d *Daemon) SetFlight(fr *flight.Recorder) { d.fr.Store(fr) }

// SetEcon attaches the economics recorder workers charge refinement
// investment to (nil detaches). Safe to call concurrently with a
// running daemon.
func (d *Daemon) SetEcon(e *econ.Econ) { d.ec.Store(e) }

// AttachPending connects a pending-updates store to the named index so
// workers merge updates while refining (Section 4.2, Updates).
func (d *Daemon) AttachPending(name string, p *updates.Pending) {
	d.pendMu.Lock()
	d.pending[name] = p
	d.pendMu.Unlock()
}

func (d *Daemon) pendingFor(name string) *updates.Pending {
	d.pendMu.RLock()
	defer d.pendMu.RUnlock()
	return d.pending[name]
}

// AdmitIndex registers a new adaptive index within the storage budget,
// evicting least-frequently-used indices if needed (Section 4.2, Storage
// Constraints). It returns the entry and the evicted index names.
func (d *Daemon) AdmitIndex(name string, col *cracking.Column, potential bool) (*stats.Entry, []string) {
	var evicted []string
	if d.cfg.StorageBudget > 0 {
		need := col.SizeBytes()
		for d.reg.Len() > 0 && d.reg.TotalSizeBytes()+need > d.cfg.StorageBudget {
			v := d.reg.EvictLFU()
			if v == nil {
				break
			}
			evicted = append(evicted, v.Name)
		}
	}
	return d.reg.Add(name, col, potential), evicted
}

// Start launches the holistic indexing thread. It is idempotent.
func (d *Daemon) Start() {
	d.startOnce.Do(func() {
		go d.run()
	})
}

// Stop terminates the tuning loop and waits for in-flight workers. It is
// idempotent and safe to call without Start (the daemon then just never
// runs).
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.startOnce.Do(func() { close(d.done) }) // never started: unblock Wait
	<-d.done
}

// run is the holistic indexing thread (Figure 2).
func (d *Daemon) run() {
	defer close(d.done)
	timer := time.NewTimer(d.cfg.Interval)
	defer timer.Stop()
	cycle := 0
	for {
		// Measure CPU utilization within the next interval.
		timer.Reset(d.cfg.Interval)
		select {
		case <-d.stop:
			return
		case <-timer.C:
		}
		n := d.mon.IdleContexts()
		if d.cfg.MaxWorkers > 0 && n > d.cfg.MaxWorkers {
			n = d.cfg.MaxWorkers
		}
		if n > 0 {
			d.runCycle(cycle, n)
			cycle++
		}
		d.runIdleHook()
	}
}

// SetIdleHook installs a function the indexing thread runs once per
// tuning interval, after the cycle's workers have finished. The durable
// layer's snapshotter attaches here. A panicking hook is contained like
// a panicking worker.
func (d *Daemon) SetIdleHook(fn func()) {
	d.hookMu.Lock()
	d.idleHook = fn
	d.hookMu.Unlock()
}

func (d *Daemon) runIdleHook() {
	d.hookMu.Lock()
	fn := d.idleHook
	d.hookMu.Unlock()
	if fn == nil {
		return
	}
	defer d.containPanic()
	fn()
}

// containPanic is the deferred recovery barrier of one worker or hook:
// the panic is counted and recorded, and the daemon moves on to the
// next cycle instead of taking down the process.
func (d *Daemon) containPanic() {
	r := recover()
	if r == nil {
		return
	}
	d.workerPanics.Add(1)
	d.panicMu.Lock()
	d.lastPanic = fmt.Sprint(r)
	d.panicMu.Unlock()
}

// WorkerPanics returns how many worker activations or idle hooks
// panicked and were contained.
func (d *Daemon) WorkerPanics() int64 { return d.workerPanics.Load() }

// LastPanic returns the reason of the most recent contained panic.
func (d *Daemon) LastPanic() string {
	d.panicMu.Lock()
	defer d.panicMu.Unlock()
	return d.lastPanic
}

// RestoreTotals reinstates cumulative counters from a recovered
// snapshot, so convergence telemetry continues across restarts instead
// of resetting to zero.
func (d *Daemon) RestoreTotals(t CycleTotals, refinements, attempts, busyRerolls int64) {
	d.cycleMu.Lock()
	d.totals = t
	d.cycleMu.Unlock()
	d.totalRefinements.Store(refinements)
	d.totalAttempts.Store(attempts)
	d.busyRerolls.Store(busyRerolls)
}

// runCycle activates n workers and waits for all of them to finish.
func (d *Daemon) runCycle(cycle, n int) {
	var (
		wg          sync.WaitGroup
		workerTimes = make([]time.Duration, n)
		refined     = make([]int, n)
		merged      = make([]int, n)
	)
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			defer func() { workerTimes[w] = time.Since(t0) }()
			defer d.containPanic()
			r, m := d.idleFunction(rand.New(rand.NewSource(d.cfg.Seed + int64(cycle)*1024 + int64(w))))
			refined[w] = r
			merged[w] = m
		}(w)
	}
	wg.Wait()

	cs := CycleStats{Workers: n, Wall: time.Since(start)}
	for w := 0; w < n; w++ {
		cs.WorkerTime += workerTimes[w]
		cs.Refinements += refined[w]
		cs.MergedUpdates += merged[w]
	}
	d.totalRefinements.Add(int64(cs.Refinements))
	d.cycleMu.Lock()
	if d.cycleLen < CycleHistory {
		d.cycles[(d.cycleStart+d.cycleLen)%CycleHistory] = cs
		d.cycleLen++
	} else {
		d.cycles[d.cycleStart] = cs
		d.cycleStart = (d.cycleStart + 1) % CycleHistory
	}
	d.totals.Cycles++
	d.totals.Workers += int64(cs.Workers)
	d.totals.WorkerTime += cs.WorkerTime
	d.totals.Wall += cs.Wall
	d.totals.Refinements += int64(cs.Refinements)
	d.totals.MergedUpdates += int64(cs.MergedUpdates)
	d.cycleMu.Unlock()
	d.fr.Load().RecordCycle(int64(cycle), int64(cs.Workers), int64(cs.Refinements), int64(cs.MergedUpdates), cs.Wall.Nanoseconds())
}

// maxAttemptsPerRefinement bounds the pivot re-rolls of one refinement
// slot so a worker on a fully-optimal or fully-contended index terminates.
const maxAttemptsPerRefinement = 16

// idleFunction is one worker's activation (Figure 2, *Idle Function):
// pick an index, refine it x times at random pivots, merge pending
// updates, update statistics.
func (d *Daemon) idleFunction(rng *rand.Rand) (refined, mergedUpdates int) {
	if d.testRefineHook != nil {
		d.testRefineHook()
	}
	e := d.reg.PickForRefinement(d.cfg.Strategy)
	if e == nil {
		return 0, 0
	}
	minPiece := d.reg.L1Values()
	pend := d.pendingFor(e.Name)
	ec := d.ec.Load()
	t0 := time.Now()
	attempts := int64(0)
	defer func() {
		if fr := d.fr.Load(); fr != nil {
			fr.RecordRefine(fr.Intern(e.Name), int64(refined), int64(mergedUpdates),
				attempts, d.reg.Distance(e), int64(e.Col.Pieces()))
		}
		if ec != nil {
			// The ledger's investment side: this activation's wall time is
			// idle-context time spent on e, and the convergence ratio after
			// the pass (Progress, as in Convergence()) tells the benefit
			// estimator which drive-latency bucket later queries credit.
			progress := 1.0
			if d0 := float64(e.Col.Len() - minPiece); d0 > 0 {
				progress = 1 - d.reg.Distance(e)/d0
				if progress < 0 {
					progress = 0
				} else if progress > 1 {
					progress = 1
				}
			}
			ec.NoteRefined(e.Name, time.Since(t0).Nanoseconds(), int64(refined), progress)
		}
	}()

	for i := 0; i < d.cfg.Refinements; i++ {
		done := false
		for attempt := 0; attempt < maxAttemptsPerRefinement && !done; attempt++ {
			lo, hi := e.Col.Domain()
			if hi <= lo {
				return refined, mergedUpdates
			}
			pivot := lo + rng.Int63n(hi-lo+1)
			ec.NoteRefinePivot(e.Name, pivot, lo, hi)
			d.totalAttempts.Add(1)
			attempts++
			switch e.Col.TryRefineAt(pivot, minPiece) {
			case cracking.RefineDone:
				refined++
				done = true
			case cracking.RefineBusy:
				// Re-roll another random pivot instead of waiting for
				// the latch (Figure 3).
				d.busyRerolls.Add(1)
			case cracking.RefineExact, cracking.RefineSmall:
				// Piece needs no work; re-roll.
			}
			if pend != nil && pend.Len() > 0 {
				plo, phi := e.Col.PieceSpan(pivot)
				mergedUpdates += pend.MergeRange(e.Col, plo, phi)
			}
		}
		if !done {
			// Could not find a crackable piece: the index is (close to)
			// optimal or fully latched; stop early.
			break
		}
	}
	d.reg.MarkOptimalIfDone(e)
	return refined, mergedUpdates
}

// Cycles returns a snapshot of the retained per-activation telemetry
// (Figure 6(d)), oldest first: the most recent CycleHistory cycles.
// Cumulative aggregates over the full run come from CycleTotals.
func (d *Daemon) Cycles() []CycleStats {
	d.cycleMu.Lock()
	defer d.cycleMu.Unlock()
	out := make([]CycleStats, 0, d.cycleLen)
	for i := 0; i < d.cycleLen; i++ {
		out = append(out, d.cycles[(d.cycleStart+i)%CycleHistory])
	}
	return out
}

// CycleTotals returns the cumulative cycle aggregates, unaffected by the
// bounded history rotating.
func (d *Daemon) CycleTotals() CycleTotals {
	d.cycleMu.Lock()
	defer d.cycleMu.Unlock()
	return d.totals
}

// Refinements returns the total number of successful refinement actions.
func (d *Daemon) Refinements() int64 { return d.totalRefinements.Load() }

// Attempts returns the total refinement attempts (including re-rolls).
func (d *Daemon) Attempts() int64 { return d.totalAttempts.Load() }

// BusyRerolls returns how often a worker re-rolled its pivot because a
// piece latch was held — the contention signal of Figure 3.
func (d *Daemon) BusyRerolls() int64 { return d.busyRerolls.Load() }

// RunCycleNow synchronously executes one tuning cycle with n workers,
// bypassing the monitor and interval. Benchmarks that need deterministic
// refinement volume (e.g. the x-sweep of Figure 15) use it; production
// callers use Start/Stop.
func (d *Daemon) RunCycleNow(n int) {
	if n < 1 {
		n = 1
	}
	d.cycleMu.Lock()
	cycle := int(d.totals.Cycles)
	d.cycleMu.Unlock()
	d.runCycle(cycle, n)
}
