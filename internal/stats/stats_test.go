package stats

import (
	"math/rand"
	"testing"

	"holistic/internal/cracking"
)

func col(t *testing.T, n int, seed int64) *cracking.Column {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 20)
	}
	return cracking.New("c", vals, cracking.Config{})
}

func TestAddAndStates(t *testing.T) {
	r := NewRegistry(0, 1)
	a := r.Add("a", col(t, 1000, 1), false)
	p := r.Add("p", col(t, 1000, 2), true)
	if a.State() != Actual {
		t.Errorf("a state = %v, want Actual", a.State())
	}
	if p.State() != Potential {
		t.Errorf("p state = %v, want Potential", p.State())
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}
	// Re-add returns the existing entry.
	if again := r.Add("a", col(t, 10, 3), false); again != a {
		t.Error("re-Add created a new entry")
	}
}

func TestRecordAccessPromotesPotential(t *testing.T) {
	r := NewRegistry(0, 1)
	r.Add("p", col(t, 1000, 1), true)
	r.RecordAccess("p", false)
	e := r.Get("p")
	if e.State() != Actual {
		t.Errorf("state after access = %v, want Actual", e.State())
	}
	if e.Accesses() != 1 || e.Hits() != 0 {
		t.Errorf("counters = %d/%d, want 1/0", e.Accesses(), e.Hits())
	}
	r.RecordAccess("p", true)
	if e.Accesses() != 2 || e.Hits() != 1 {
		t.Errorf("counters = %d/%d, want 2/1", e.Accesses(), e.Hits())
	}
	// Unknown name must not panic.
	r.RecordAccess("nope", true)
}

func TestDistanceAndInitialWeight(t *testing.T) {
	r := NewRegistry(4096, 1)
	e := r.Add("a", col(t, 100_000, 1), false)
	// One piece: |p| = N, so d = N - L1s (the paper's initial weight).
	if d := r.Distance(e); d != 100_000-4096 {
		t.Errorf("Distance = %f, want %d", d, 100_000-4096)
	}
	// Small column below L1: clamped to 0.
	small := r.Add("s", col(t, 100, 2), false)
	if d := r.Distance(small); d != 0 {
		t.Errorf("Distance of small column = %f, want 0", d)
	}
}

func TestWeightsPerStrategy(t *testing.T) {
	r := NewRegistry(4096, 1)
	e := r.Add("a", col(t, 50_000, 1), false)
	r.RecordAccess("a", false)
	r.RecordAccess("a", false)
	r.RecordAccess("a", true)
	d := r.Distance(e)
	if w := r.Weight(e, W1); w != d {
		t.Errorf("W1 = %f, want %f", w, d)
	}
	if w := r.Weight(e, W2); w != 3*d {
		t.Errorf("W2 = %f, want %f", w, 3*d)
	}
	if w := r.Weight(e, W3); w != 2*d {
		t.Errorf("W3 = %f, want %f", w, 2*d)
	}
	if w := r.Weight(e, W4); w != d {
		t.Errorf("W4 weight = %f, want distance %f", w, d)
	}
}

func TestPickForRefinementMaxWeight(t *testing.T) {
	r := NewRegistry(64, 1)
	big := r.Add("big", col(t, 50_000, 1), false)
	r.Add("small", col(t, 5_000, 2), false)
	for _, s := range []Strategy{W1, W2, W3} {
		r.RecordAccess("big", false)
		r.RecordAccess("small", false)
		if got := r.PickForRefinement(s); got != big {
			t.Errorf("%v picked %s, want big", s, got.Name)
		}
	}
}

func TestPickForRefinementW2PrefersFrequent(t *testing.T) {
	r := NewRegistry(64, 1)
	r.Add("cold", col(t, 50_000, 1), false)
	hot := r.Add("hot", col(t, 50_000, 2), false)
	for i := 0; i < 10; i++ {
		r.RecordAccess("hot", false)
	}
	r.RecordAccess("cold", false)
	if got := r.PickForRefinement(W2); got != hot {
		t.Errorf("W2 picked %s, want hot", got.Name)
	}
}

func TestPickForRefinementW3DiscountsHits(t *testing.T) {
	r := NewRegistry(64, 1)
	hits := r.Add("hits", col(t, 50_000, 1), false)
	miss := r.Add("miss", col(t, 50_000, 2), false)
	_ = hits
	for i := 0; i < 10; i++ {
		r.RecordAccess("hits", true) // always exact hits
		r.RecordAccess("miss", false)
	}
	if got := r.PickForRefinement(W3); got != miss {
		t.Errorf("W3 picked %s, want miss", got.Name)
	}
}

func TestPickFallsBackToPotential(t *testing.T) {
	r := NewRegistry(64, 1)
	p := r.Add("p", col(t, 50_000, 1), true)
	for _, s := range []Strategy{W1, W2, W3, W4} {
		if got := r.PickForRefinement(s); got != p {
			t.Errorf("%v did not fall back to potential", s)
		}
	}
}

func TestPickSkipsOptimal(t *testing.T) {
	r := NewRegistry(1<<20, 1) // enormous L1 => everything optimal immediately
	e := r.Add("a", col(t, 1000, 1), false)
	if !r.MarkOptimalIfDone(e) {
		t.Fatal("entry with zero distance not marked optimal")
	}
	if got := r.PickForRefinement(W4); got != nil {
		t.Errorf("picked %s from an all-optimal space", got.Name)
	}
}

func TestMarkOptimalIfDoneRequiresZeroDistance(t *testing.T) {
	r := NewRegistry(64, 1)
	e := r.Add("a", col(t, 100_000, 1), false)
	if r.MarkOptimalIfDone(e) {
		t.Error("entry with large distance marked optimal")
	}
	if e.State() != Actual {
		t.Errorf("state = %v, want Actual", e.State())
	}
}

func TestEvictLFU(t *testing.T) {
	r := NewRegistry(64, 1)
	r.Add("used", col(t, 1000, 1), false)
	r.Add("unused", col(t, 1000, 2), false)
	for i := 0; i < 5; i++ {
		r.RecordAccess("used", false)
	}
	victim := r.EvictLFU()
	if victim == nil || victim.Name != "unused" {
		t.Fatalf("EvictLFU = %v, want unused", victim)
	}
	if r.Len() != 1 {
		t.Errorf("Len() = %d after eviction, want 1", r.Len())
	}
	// Tie break by name.
	r.Add("b", col(t, 10, 3), false)
	r.Add("a", col(t, 10, 4), false)
	if v := r.EvictLFU(); v.Name != "a" {
		t.Errorf("tie-break eviction = %s, want a", v.Name)
	}
}

func TestEvictLFUEmpty(t *testing.T) {
	r := NewRegistry(64, 1)
	if v := r.EvictLFU(); v != nil {
		t.Errorf("EvictLFU on empty registry = %v", v)
	}
}

func TestTotalSizeAndPieces(t *testing.T) {
	r := NewRegistry(64, 1)
	c1 := col(t, 1000, 1)
	c2 := col(t, 2000, 2)
	r.Add("a", c1, false)
	r.Add("b", c2, false)
	if got := r.TotalSizeBytes(); got != 3000*8 {
		t.Errorf("TotalSizeBytes = %d, want %d", got, 3000*8)
	}
	c1.CrackAt(500)
	if got := r.TotalPieces(); got != 3 {
		t.Errorf("TotalPieces = %d, want 3", got)
	}
}

func TestRemove(t *testing.T) {
	r := NewRegistry(64, 1)
	r.Add("a", col(t, 100, 1), false)
	r.Remove("a")
	if r.Get("a") != nil || r.Len() != 0 {
		t.Error("Remove did not drop the entry")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{W1: "W1", W2: "W2", W3: "W3", W4: "W4", Strategy(9): "W?"} {
		if s.String() != want {
			t.Errorf("%d.String() = %s, want %s", int(s), s.String(), want)
		}
	}
}

func TestW4IsSeededDeterministic(t *testing.T) {
	build := func() []string {
		r := NewRegistry(64, 42)
		for i := 0; i < 5; i++ {
			r.Add(string(rune('a'+i)), col(t, 50_000, int64(i)), false)
		}
		var picks []string
		for i := 0; i < 10; i++ {
			picks = append(picks, r.PickForRefinement(W4).Name)
		}
		return picks
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("W4 picks diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
