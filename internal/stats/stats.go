// Package stats maintains the per-index workload statistics and the index
// space of holistic indexing (Section 4.1/4.2 of the paper).
//
// For every adaptive index it tracks how often user queries accessed it
// (fI), how often a query was answered without any refinement because the
// requested bounds already existed (fIh, the "exact hit" count), and —
// via the cracker column itself — how many pieces it currently has. From
// these it derives the priority weight of the four index-decision
// strategies:
//
//	W1: WI = d(I, Iopt)            — prefer large partitions
//	W2: WI = fI * d                — large partitions, frequently accessed
//	W3: WI = (fI - fIh) * d        — discount indices with high hit rates
//	W4: random choice              — the paper's robust default
//
// where d(I, Iopt) = N/p - |L1| (Equation 1) is the distance of the index
// from its optimal status: an average piece size equal to the number of
// values fitting in the L1 cache.
//
// The registry also maintains the three configurations: Cactual (indices
// created by user queries), Cpotential (indices added by the system or
// the user before any query touched them) and Coptimal (indices whose
// distance reached zero — excluded from further refinement).
//
// The paper keeps per-index statistics in a latched heap. With the
// O(10-100) indices of its workloads a fresh linear scan under an RWMutex
// is equivalent and avoids re-heapifying on every piece-count change, so
// that is what this registry does; the latching is the same.
package stats

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"holistic/internal/cracking"
)

// Strategy selects how the next index to refine is picked (Section 4.2,
// "Index Decision Strategies").
type Strategy int

const (
	// W1 prioritizes indices with large partitions.
	W1 Strategy = iota + 1
	// W2 prioritizes large partitions on frequently accessed indices.
	W2
	// W3 is W2 discounted by the exact-hit count.
	W3
	// W4 picks uniformly at random: the paper's recommended default
	// ("the random strategy gives a good and robust overall solution").
	W4
)

// String names the strategy as in the paper.
func (s Strategy) String() string {
	switch s {
	case W1:
		return "W1"
	case W2:
		return "W2"
	case W3:
		return "W3"
	case W4:
		return "W4"
	default:
		return "W?"
	}
}

// State places an index in one of the three configurations.
type State int

const (
	// Actual: the index has been accessed by user queries (Cactual).
	Actual State = iota
	// Potential: registered but never queried (Cpotential).
	Potential
	// Optimal: average piece size reached |L1|; excluded from further
	// refinement (Coptimal).
	Optimal
)

// String names the configuration for telemetry.
func (s State) String() string {
	switch s {
	case Actual:
		return "actual"
	case Potential:
		return "potential"
	case Optimal:
		return "optimal"
	default:
		return "unknown"
	}
}

// Transition records one index moving between configurations: admission
// (From empty), promotion Potential→Actual on first access, and
// convergence to Optimal. Since is the offset from registry creation, so
// transition timelines from one run are directly comparable.
type Transition struct {
	Index string        `json:"index"`
	From  string        `json:"from,omitempty"`
	To    string        `json:"to"`
	Since time.Duration `json:"since_ns"`
}

// transitionCap bounds the retained transition history. Each index
// contributes at most three transitions (admit, promote, converge), so
// the ring only wraps for spaces of ~100+ indices.
const transitionCap = 256

// Entry is the statistics node of one adaptive index. Its counters and
// state are atomics: the select operator, holistic workers and the
// telemetry readers all touch them concurrently.
type Entry struct {
	Name string
	Col  *cracking.Column

	state    atomic.Int64 // State
	accesses atomic.Int64 // fI: user queries that accessed the index
	hits     atomic.Int64 // fIh: user queries answered with an exact hit
}

// State returns the configuration the index currently belongs to.
func (e *Entry) State() State { return State(e.state.Load()) }

// Accesses returns fI.
func (e *Entry) Accesses() int64 { return e.accesses.Load() }

// Hits returns fIh.
func (e *Entry) Hits() int64 { return e.hits.Load() }

// Registry is the latched statistics store over the index space.
type Registry struct {
	mu      sync.RWMutex
	l1s     float64
	entries map[string]*Entry
	rng     *rand.Rand

	// The state-transition timeline: a bounded ring under its own mutex
	// so RecordAccess promotions never contend with registry reads.
	trMu    sync.Mutex
	trans   [transitionCap]Transition
	trStart int
	trLen   int
	born    time.Time
}

// DefaultL1Values is the number of int64 values fitting a 32 KiB L1 data
// cache: the default optimal piece size |L1| of Equation (1).
const DefaultL1Values = 32 * 1024 / 8

// NewRegistry creates a registry with the given optimal piece size in
// values (l1Values <= 0 selects DefaultL1Values) and RNG seed for W4.
func NewRegistry(l1Values int, seed int64) *Registry {
	if l1Values <= 0 {
		l1Values = DefaultL1Values
	}
	return &Registry{
		l1s:     float64(l1Values),
		entries: make(map[string]*Entry),
		rng:     rand.New(rand.NewSource(seed)),
		born:    time.Now(),
	}
}

// recordTransition appends one transition to the bounded ring.
func (r *Registry) recordTransition(index string, from, to State) {
	// Admissions pass from == to; they render with From omitted.
	fromName := ""
	if from != to {
		fromName = from.String()
	}
	r.trMu.Lock()
	t := Transition{Index: index, From: fromName, To: to.String(), Since: time.Since(r.born)}
	if r.trLen < transitionCap {
		r.trans[(r.trStart+r.trLen)%transitionCap] = t
		r.trLen++
	} else {
		r.trans[r.trStart] = t
		r.trStart = (r.trStart + 1) % transitionCap
	}
	r.trMu.Unlock()
}

// Transitions returns the retained state-transition timeline, oldest
// first.
func (r *Registry) Transitions() []Transition {
	r.trMu.Lock()
	defer r.trMu.Unlock()
	out := make([]Transition, 0, r.trLen)
	for i := 0; i < r.trLen; i++ {
		out = append(out, r.trans[(r.trStart+i)%transitionCap])
	}
	return out
}

// L1Values returns the optimal piece size in values.
func (r *Registry) L1Values() int { return int(r.l1s) }

// Add registers an index. potential=false inserts into Cactual (a user
// query created it); potential=true into Cpotential (system- or
// user-provided candidate that has not been queried yet). Re-adding an
// existing name returns the existing entry.
func (r *Registry) Add(name string, col *cracking.Column, potential bool) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e
	}
	e := &Entry{Name: name, Col: col}
	st := Actual
	if potential {
		st = Potential
		e.state.Store(int64(Potential))
	}
	r.entries[name] = e
	r.recordTransition(name, st, st)
	return e
}

// RestoreCounts reinstates persisted access statistics and state on a
// recovered index, so strategy weights and convergence accounting
// continue where the crashed process left them.
func (e *Entry) RestoreCounts(accesses, hits int64, st State) {
	e.accesses.Store(accesses)
	e.hits.Store(hits)
	e.state.Store(int64(st))
}

// Get returns the entry for name, or nil.
func (r *Registry) Get(name string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[name]
}

// Remove drops an index from the space entirely (storage eviction).
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, name)
}

// Len returns the number of registered indices (all configurations).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// RecordAccess updates fI (and fIh on an exact hit) after a user query
// touched the index, promoting Potential entries into Cactual. The select
// operator calls this on every selection, as in the paper.
func (r *Registry) RecordAccess(name string, exactHit bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return
	}
	e.accesses.Add(1)
	if exactHit {
		e.hits.Add(1)
	}
	if e.state.CompareAndSwap(int64(Potential), int64(Actual)) {
		r.recordTransition(name, Potential, Actual)
	}
}

// Distance returns d(I, Iopt) = N/p - |L1| for the entry, clamped at 0.
func (r *Registry) Distance(e *Entry) float64 {
	d := e.Col.AvgPieceSize() - r.l1s
	if d < 0 {
		return 0
	}
	return d
}

// Weight computes the strategy weight of an entry (W4 has no weight; it
// returns the distance so optimality checks still work).
func (r *Registry) Weight(e *Entry, s Strategy) float64 {
	d := r.Distance(e)
	fI, fIh := e.accesses.Load(), e.hits.Load()
	switch s {
	case W2:
		return float64(fI) * d
	case W3:
		return float64(fI-fIh) * d
	default:
		return d
	}
}

// MarkOptimalIfDone moves the entry to Coptimal when its distance reached
// zero, reporting whether it did. Optimal indices are not picked for
// refinement again ("When WI becomes equal to zero, I is transferred from
// Cactual to Coptimal").
func (r *Registry) MarkOptimalIfDone(e *Entry) bool {
	if r.Distance(e) > 0 {
		return false
	}
	if old := State(e.state.Swap(int64(Optimal))); old != Optimal {
		r.recordTransition(e.Name, old, Optimal)
	}
	return true
}

// PickForRefinement selects the next index a holistic worker should
// refine. For W1-W3 it returns the maximum-weight entry of Cactual; for
// W4 a uniformly random one. When Cactual is empty, a random entry of
// Cpotential is returned instead (paper: "If Cactual is empty, an index
// is randomly picked from Cpotential"). nil means the whole space is
// optimal (or empty) and there is nothing to refine.
func (r *Registry) PickForRefinement(s Strategy) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()

	var actual, potential []*Entry
	for _, e := range r.entries {
		switch State(e.state.Load()) {
		case Actual:
			actual = append(actual, e)
		case Potential:
			potential = append(potential, e)
		}
	}
	pickRandom := func(pool []*Entry) *Entry {
		if len(pool) == 0 {
			return nil
		}
		// Map iteration order is random but not seeded; sort for
		// reproducibility under a fixed seed, then draw.
		sort.Slice(pool, func(i, j int) bool { return pool[i].Name < pool[j].Name })
		return pool[r.rng.Intn(len(pool))]
	}

	if s == W4 {
		if e := pickRandom(actual); e != nil {
			return e
		}
		return pickRandom(potential)
	}

	var best *Entry
	var bestW float64
	for _, e := range actual {
		d := e.Col.AvgPieceSize() - r.l1s
		if d <= 0 {
			continue
		}
		var w float64
		switch s {
		case W2:
			w = float64(e.accesses.Load()) * d
		case W3:
			w = float64(e.accesses.Load()-e.hits.Load()) * d
		default:
			w = d
		}
		if best == nil || w > bestW || (w == bestW && e.Name < best.Name) {
			best, bestW = e, w
		}
	}
	if best != nil {
		return best
	}
	return pickRandom(potential)
}

// Entries returns a stable-ordered snapshot of all entries; used for
// telemetry, eviction and tests.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalSizeBytes sums the materialized sizes of all indices in the space:
// the quantity compared against the storage budget.
func (r *Registry) TotalSizeBytes() int64 {
	var total int64
	for _, e := range r.Entries() {
		total += e.Col.SizeBytes()
	}
	return total
}

// EvictLFU removes and returns the least frequently used index (smallest
// fI, ties broken by name), implementing the paper's storage-constraint
// policy ("indices are removed with a least frequently used (LFU) policy
// from the index space"). Optimal indices are eligible too: they cost
// storage like any other. Returns nil when the space is empty.
func (r *Registry) EvictLFU() *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var victim *Entry
	for _, e := range r.entries {
		if victim == nil ||
			e.accesses.Load() < victim.accesses.Load() ||
			(e.accesses.Load() == victim.accesses.Load() && e.Name < victim.Name) {
			victim = e
		}
	}
	if victim != nil {
		delete(r.entries, victim.Name)
	}
	return victim
}

// TotalPieces sums the piece counts of every index: the cumulative
// partition count reported by Figure 6(c).
func (r *Registry) TotalPieces() int {
	total := 0
	for _, e := range r.Entries() {
		total += e.Col.Pieces()
	}
	return total
}
