package stats

import (
	"fmt"
	"testing"
)

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Actual: "actual", Potential: "potential", Optimal: "optimal", State(9): "unknown"} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestTransitionTimeline(t *testing.T) {
	r := NewRegistry(1<<20, 1) // enormous L1 => optimal on first check
	c := col(t, 1024, 1)
	r.Add("a", c, true)
	tr := r.Transitions()
	if len(tr) != 1 || tr[0].Index != "a" || tr[0].From != "" || tr[0].To != "potential" {
		t.Fatalf("admission transition wrong: %+v", tr)
	}

	r.RecordAccess("a", false)
	r.RecordAccess("a", true) // second access: no duplicate promotion
	tr = r.Transitions()
	if len(tr) != 2 || tr[1].From != "potential" || tr[1].To != "actual" {
		t.Fatalf("promotion transition wrong: %+v", tr)
	}

	e := r.Get("a")
	if !r.MarkOptimalIfDone(e) {
		t.Fatal("expected optimal with huge L1")
	}
	r.MarkOptimalIfDone(e) // idempotent: no duplicate transition
	tr = r.Transitions()
	if len(tr) != 3 || tr[2].From != "actual" || tr[2].To != "optimal" {
		t.Fatalf("convergence transition wrong: %+v", tr)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Since < tr[i-1].Since {
			t.Fatalf("timeline not chronological: %+v", tr)
		}
	}
}

func TestTransitionRingBound(t *testing.T) {
	r := NewRegistry(64, 1)
	c := col(t, 256, 1)
	for i := 0; i < transitionCap+50; i++ {
		r.Add(fmt.Sprintf("idx%04d", i), c, false)
	}
	tr := r.Transitions()
	if len(tr) != transitionCap {
		t.Fatalf("ring holds %d, want cap %d", len(tr), transitionCap)
	}
	// Oldest entries were evicted: the first retained one is index 50.
	if tr[0].Index != "idx0050" {
		t.Fatalf("ring did not evict oldest: first retained is %s", tr[0].Index)
	}
}
