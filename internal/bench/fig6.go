package bench

import (
	"fmt"
	"time"

	"holistic/internal/cpu"
	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/holistic"
	"holistic/internal/workload"
)

func init() {
	register("table1", "Qualitative comparison of indexing approaches (Table 1)", runTable1)
	register("fig6a", "Cumulative response time vs state-of-the-art indexing (Figure 6a)", runFig6a)
	register("fig6b", "Performance breakdown: adaptive vs holistic (Figure 6b)", runFig6b)
	register("fig6c", "Cumulative index partitions (Figure 6c)", runFig6c)
	register("fig6d", "Idle CPU utilization: worker activations (Figure 6d)", runFig6d)
	register("fig7", "Thread distribution between users and workers (Figure 7)", runFig7)
	register("fig8", "Per-query response time of adaptive indexing (Figure 8)", runFig8)
	register("fig9", "Idle time before the workload: Cpotential prefill (Figure 9)", runFig9)
}

func runTable1(Params) (*Result, error) {
	r := &Result{Headers: []string{
		"Indexing", "Workload analysis", "Idle-before-queries", "Idle-during-queries",
		"Index materialization", "Updates cost", "Workload projection",
	}}
	r.AddRow("Offline", "yes", "yes", "no", "full", "high", "static")
	r.AddRow("Online", "yes", "no", "yes", "full", "high", "dynamic")
	r.AddRow("Adaptive", "no", "no", "no", "partial", "low", "dynamic")
	r.AddRow("Holistic", "yes", "yes", "yes", "partial", "low", "dynamic")
	r.AddNote("qualitative design-space matrix reproduced from Table 1 of the paper")
	return r, nil
}

// microWorkload is the Section 5.1 workload: one-sided random range
// selects ("select A from R where A < v") over Attrs attributes.
func microWorkload(p Params, pattern workload.Pattern) []workload.Query {
	return workload.Generate(workload.Config{
		Pattern:  pattern,
		Queries:  p.Queries,
		Domain:   p.Domain,
		Attrs:    p.Attrs,
		OneSided: true,
		Seed:     p.Seed,
	})
}

// pvdcConfig is parallel vectorized database cracking (the adaptive
// indexing baseline built from [44]).
func pvdcConfig(p Params, threads int) cracking.Config {
	return cracking.Config{
		Kernel:           cracking.KernelVectorized,
		ParallelWorkers:  threads,
		MinParallelPiece: 1 << 15,
		Seed:             p.Seed,
	}
}

// newHolistic assembles the paper's default holistic configuration:
// half the contexts to user queries, the rest picked up by the daemon.
func newHolistic(p Params, t *engine.Table) *engine.HolisticExecutor {
	user := p.Threads / 2
	if user < 1 {
		user = 1
	}
	return engine.NewHolisticExecutor(t, engine.HolisticConfig{
		Cracking: pvdcConfig(p, user),
		Daemon: holistic.Config{
			Interval:    p.Interval,
			Refinements: p.Refinements,
			Seed:        p.Seed,
		},
		L1Values:    p.L1Values,
		Contexts:    p.Threads,
		UserThreads: user,
		StatsSeed:   p.Seed,
	})
}

func runFig6a(p Params) (*Result, error) {
	qs := microWorkload(p, workload.Random)
	checkpoints := checkpointsFor(p.Queries)

	type mode struct {
		label string
		run   func(t *engine.Table) ([]time.Duration, error)
	}
	modes := []mode{
		{"no indexing", func(t *engine.Table) ([]time.Duration, error) {
			e := engine.NewScanExecutor(t, p.Threads)
			defer e.Close()
			return timeQueries(e, qs)
		}},
		{"offline indexing", func(t *engine.Table) ([]time.Duration, error) {
			e := engine.NewOfflineExecutor(t, p.Threads)
			defer e.Close()
			start := time.Now()
			e.PrepareAll()
			prep := time.Since(start)
			times, err := timeQueries(e, qs)
			if err != nil {
				return nil, err
			}
			// No idle time before the first query: the sorting cost is
			// charged to it, as in the paper.
			times[0] += prep
			return times, nil
		}},
		{"online indexing", func(t *engine.Table) ([]time.Duration, error) {
			e := engine.NewOnlineExecutor(t, p.Threads, p.Queries/10)
			defer e.Close()
			return timeQueries(e, qs)
		}},
		{"adaptive indexing", func(t *engine.Table) ([]time.Duration, error) {
			e := engine.NewAdaptiveExecutor(t, pvdcConfig(p, p.Threads), "")
			defer e.Close()
			return timeQueries(e, qs)
		}},
		{"holistic indexing", func(t *engine.Table) ([]time.Duration, error) {
			e := newHolistic(p, t)
			defer e.Close()
			return timeQueries(e, qs)
		}},
	}

	headers := []string{"query#"}
	series := make([][]time.Duration, 0, len(modes))
	for _, m := range modes {
		t := buildTable(p)
		times, err := m.run(t)
		if err != nil {
			return nil, err
		}
		headers = append(headers, m.label+" (cum s)")
		series = append(series, cumulative(times, checkpoints))
	}

	r := &Result{Headers: headers}
	for i, cp := range checkpoints {
		row := []string{fmt.Sprintf("%d", cp)}
		for _, s := range series {
			row = append(row, secs(s[i]))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper shape: offline pays a huge first query; online pays at query %d; adaptive improves continuously; holistic ends lowest (~2x under adaptive)", p.Queries/10+1)
	return r, nil
}

// bucketize splits per-query times into the 1 / 9 / 90 / 900 buckets of
// Figure 6(b), generalized to the configured query count.
func bucketize(times []time.Duration) (labels []string, sums []time.Duration) {
	lo := 0
	for sz := 1; lo < len(times); sz *= 10 {
		hi := lo + sz
		if sz == 1 {
			hi = 1
		} else {
			hi = lo + sz - sz/10
		}
		if hi > len(times) {
			hi = len(times)
		}
		labels = append(labels, fmt.Sprintf("q%d-%d", lo+1, hi))
		sums = append(sums, sum(times[lo:hi]))
		lo = hi
	}
	return labels, sums
}

func runFig6b(p Params) (*Result, error) {
	qs := microWorkload(p, workload.Random)

	tA := buildTable(p)
	adaptive := engine.NewAdaptiveExecutor(tA, pvdcConfig(p, p.Threads), "")
	aTimes, err := timeQueries(adaptive, qs)
	adaptive.Close()
	if err != nil {
		return nil, err
	}
	tH := buildTable(p)
	hol := newHolistic(p, tH)
	hTimes, err := timeQueries(hol, qs)
	hol.Close()
	if err != nil {
		return nil, err
	}

	labels, aSums := bucketize(aTimes)
	_, hSums := bucketize(hTimes)
	r := &Result{Headers: []string{"bucket", "adaptive (s)", "holistic (s)"}}
	for i := range labels {
		r.AddRow(labels[i], secs(aSums[i]), secs(hSums[i]))
	}
	r.AddRow("total", secs(sum(aTimes)), secs(sum(hTimes)))
	r.AddNote("paper shape: early buckets similar (big pieces are latched by queries); later buckets ~2x faster under holistic")
	return r, nil
}

func runFig6c(p Params) (*Result, error) {
	qs := microWorkload(p, workload.Random)
	step := p.Queries / 10
	if step < 1 {
		step = 1
	}

	measure := func(e engine.Executor, pieces func() int) ([]int, error) {
		var series []int
		for i, q := range qs {
			if _, err := e.Count(attrName(q.Attr), q.Lo, q.Hi); err != nil {
				return nil, err
			}
			if (i+1)%step == 0 {
				series = append(series, pieces())
			}
		}
		return series, nil
	}

	tA := buildTable(p)
	adaptive := engine.NewAdaptiveExecutor(tA, pvdcConfig(p, p.Threads), "")
	aSeries, err := measure(adaptive, adaptive.TotalPieces)
	adaptive.Close()
	if err != nil {
		return nil, err
	}
	tH := buildTable(p)
	hol := newHolistic(p, tH)
	hSeries, err := measure(hol, hol.TotalPieces)
	hol.Close()
	if err != nil {
		return nil, err
	}

	r := &Result{Headers: []string{"query#", "adaptive partitions", "holistic partitions"}}
	for i := range aSeries {
		r.AddRow(fmt.Sprintf("%d", (i+1)*step), fmt.Sprintf("%d", aSeries[i]), fmt.Sprintf("%d", hSeries[i]))
	}
	r.AddNote("paper shape: holistic accumulates strictly more partitions than adaptive at every point")
	return r, nil
}

func runFig6d(p Params) (*Result, error) {
	qs := microWorkload(p, workload.Random)
	t := buildTable(p)
	hol := newHolistic(p, t)
	if _, err := timeQueries(hol, qs); err != nil {
		hol.Close()
		return nil, err
	}
	// Give the tuning loop a few more measurement windows so that very
	// short (reduced-scale) workloads still record activations.
	time.Sleep(5 * p.Interval)
	if hol.Daemon.CycleTotals().Cycles == 0 {
		hol.Daemon.RunCycleNow(p.Threads / 2)
	}
	hol.Close()
	cycles := hol.Daemon.Cycles()

	r := &Result{Headers: []string{"activation", "#workers", "worker time (ms)", "refinements"}}
	maxRows := 15
	for i, c := range cycles {
		if i >= maxRows {
			break
		}
		r.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", c.Workers), ms(c.WorkerTime), fmt.Sprintf("%d", c.Refinements))
	}
	r.AddNote("activations: %d, total refinements: %d, busy re-rolls: %d",
		hol.Daemon.CycleTotals().Cycles, hol.Daemon.Refinements(), hol.Daemon.BusyRerolls())
	r.AddNote("paper shape: worker time is high for the first activations and collapses as pieces shrink")
	return r, nil
}

// distributions enumerates the uXwYxZ thread splits of Figure 7 for the
// available context budget.
func distributions(T int) []struct {
	label                     string
	user, workers, threadsPer int
} {
	type d = struct {
		label                     string
		user, workers, threadsPer int
	}
	mk := func(u, w, z int) d {
		if u < 1 {
			u = 1
		}
		label := fmt.Sprintf("u%d", u)
		if w > 0 {
			label += fmt.Sprintf("w%dx%d", w, z)
		}
		return d{label, u, w, z}
	}
	var out []d
	seen := map[string]bool{}
	for _, c := range []d{
		mk(T, 0, 1),
		mk(T-1, 1, 1),
		mk(T/2, T/2, 1),
		mk(T/2, T/4, 2),
		mk(T/4, 3*T/4, 1),
	} {
		if c.workers > 0 && c.threadsPer < 1 {
			c.threadsPer = 1
		}
		if c.workers < 0 {
			c.workers = 0
		}
		if !seen[c.label] {
			seen[c.label] = true
			out = append(out, c)
		}
	}
	return out
}

func runFig7(p Params) (*Result, error) {
	qs := microWorkload(p, workload.Random)
	r := &Result{Headers: []string{"distribution", "total cost (s)"}}
	for _, d := range distributions(p.Threads) {
		t := buildTable(p)
		var exec engine.Executor
		if d.workers == 0 {
			exec = engine.NewAdaptiveExecutor(t, pvdcConfig(p, d.user), "")
		} else {
			cfg := pvdcConfig(p, d.user)
			cfg.RefineWorkers = d.threadsPer
			exec = engine.NewHolisticExecutor(t, engine.HolisticConfig{
				Cracking: cfg,
				Daemon: holistic.Config{
					Interval:    p.Interval,
					Refinements: p.Refinements,
					MaxWorkers:  d.workers,
					Seed:        p.Seed,
				},
				L1Values:    p.L1Values,
				Contexts:    p.Threads,
				UserThreads: d.user,
				Monitor:     cpu.Fixed{Total: p.Threads, Idle: d.workers},
				StatsSeed:   p.Seed,
			})
		}
		times, err := timeQueries(exec, qs)
		exec.Close()
		if err != nil {
			return nil, err
		}
		r.AddRow(d.label, secs(sum(times)))
	}
	r.AddNote("paper shape: splitting contexts between users and workers beats devoting all %d to user queries", p.Threads)
	return r, nil
}

func runFig8(p Params) (*Result, error) {
	q := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: 100, Domain: p.Domain, Attrs: 1, OneSided: true, Seed: p.Seed,
	})
	t := buildTable(Params{ColumnSize: p.ColumnSize, Attrs: 1, Domain: p.Domain, Seed: p.Seed})
	e := engine.NewAdaptiveExecutor(t, pvdcConfig(p, p.Threads), "")
	defer e.Close()
	times, err := timeQueries(e, q)
	if err != nil {
		return nil, err
	}
	r := &Result{Headers: []string{"query#", "response time (ms)"}}
	for i, d := range times {
		if i < 10 || (i+1)%10 == 0 {
			r.AddRow(fmt.Sprintf("%d", i+1), ms(d))
		}
	}
	r.AddNote("paper shape: the first queries on an index are the slow ones (they reorganize big pieces)")
	return r, nil
}

func runFig9(p Params) (*Result, error) {
	qs := microWorkload(p, workload.Random)

	run := func(prefill bool) ([]time.Duration, error) {
		t := buildTable(p)
		hol := newHolistic(p, t)
		defer hol.Close()
		if prefill {
			for a := 0; a < p.Attrs; a++ {
				if err := hol.AddPotential(attrName(a)); err != nil {
					return nil, err
				}
			}
			// Manually induced idle time before the workload: the daemon
			// refines Cpotential (paper: 22 seconds; scaled here).
			time.Sleep(50 * p.Interval)
		}
		return timeQueries(hol, qs)
	}

	hTimes, err := run(false)
	if err != nil {
		return nil, err
	}
	iTimes, err := run(true)
	if err != nil {
		return nil, err
	}
	labels, hSums := bucketize(hTimes)
	_, iSums := bucketize(iTimes)
	r := &Result{Headers: []string{"bucket", "holistic (s)", "holistic+idle prefill (s)"}}
	for i := range labels {
		r.AddRow(labels[i], secs(hSums[i]), secs(iSums[i]))
	}
	r.AddRow("total", secs(sum(hTimes)), secs(sum(iTimes)))
	r.AddNote("paper shape: with idle time before the workload the benefit appears from the very first queries")
	return r, nil
}
