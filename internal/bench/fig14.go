package bench

import (
	"time"

	"holistic/internal/tpch"
)

func init() {
	register("fig14", "TPC-H Q1/Q6/Q12 under four execution modes (Figure 14)", runFig14)
}

func runFig14(p Params) (*Result, error) {
	data := tpch.Generate(p.TPCHOrders, p.Seed)
	variants := tpch.Variants(30, p.Seed+1)

	modes := []tpch.Mode{tpch.ModeScan, tpch.ModePresorted, tpch.ModeCracking, tpch.ModeHolistic}
	queries := []struct {
		label string
		sort  string
		run   func(r *tpch.Runner, v tpch.QueryVariant)
	}{
		{"Q1", "l_shipdate", func(r *tpch.Runner, v tpch.QueryVariant) { r.Q1(v.Q1Delta) }},
		{"Q6", "l_shipdate", func(r *tpch.Runner, v tpch.QueryVariant) { r.Q6(v.Q6Year, v.Q6Discount, v.Q6Quantity) }},
		{"Q12", "l_receiptdate", func(r *tpch.Runner, v tpch.QueryVariant) { r.Q12(v.Q12Mode1, v.Q12Mode2, v.Q12Year) }},
	}

	res := &Result{Headers: []string{"query", "mode", "first (ms)", "rest avg (ms)", "total 30 (ms)", "presort (ms)"}}
	for _, q := range queries {
		for _, m := range modes {
			runner := tpch.NewRunner(data, m, tpch.RunnerConfig{
				Interval:    p.Interval,
				Refinements: p.Refinements,
				Seed:        p.Seed,
				L1Values:    p.L1Values,
				Contexts:    p.Threads,
			})
			runner.Prepare(q.sort)
			times := make([]time.Duration, len(variants))
			for i, v := range variants {
				start := time.Now()
				q.run(runner, v)
				times[i] = time.Since(start)
			}
			runner.Close()
			total := sum(times)
			rest := time.Duration(0)
			if len(times) > 1 {
				rest = (total - times[0]) / time.Duration(len(times)-1)
			}
			res.AddRow(q.label, m.String(), ms(times[0]), ms(rest), ms(total), ms(runner.PrepareTime))
		}
	}
	res.AddNote("lineitem rows: %d (%d orders); presort cost reported separately, as the paper excludes it from query times", data.Lineitem.Rows(), p.TPCHOrders)
	res.AddNote("paper shape: cracking/holistic first query slower (builds the index), then near presorted; holistic matches offline without the presort cost")
	return res, nil
}
