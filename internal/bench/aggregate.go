package bench

import (
	"fmt"
	"math/rand"
	"time"

	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/holistic"
	"holistic/internal/tpch"
)

func init() {
	register("agg", "Aggregate pushdown: TPC-H Q6-style sums over range predicates (new)", runAgg)
}

// aggOp is one query of the aggregate workload: a Q6-style revenue sum
// and min/max over an extendedprice band, plus a count over a shipdate
// year window and a one-week row materialization — the select/aggregate/
// project mix Q6 pushes through a column-store.
type aggOp struct {
	bandLo, bandHi int64 // l_extendedprice band
	yearLo, yearHi int64 // l_shipdate year window
	weekLo, weekHi int64 // l_shipdate week window (row materialization)
}

// aggWorkload derives the predicate sequence from qgen-style variants:
// year windows from the Q6 parameters, price bands uniform over the
// observed extendedprice domain.
func aggWorkload(p Params, data *tpch.Data, n int) []aggOp {
	ext := data.Lineitem.Column("l_extendedprice").Values()
	var maxExt int64
	for _, v := range ext {
		if v > maxExt {
			maxExt = v
		}
	}
	variants := tpch.Variants(n, p.Seed+1)
	rng := rand.New(rand.NewSource(p.Seed + 2))
	ops := make([]aggOp, n)
	for i, v := range variants {
		bandW := maxExt / 10
		bandLo := rng.Int63n(maxExt - bandW + 1)
		weekLo := tpch.YearDay(v.Q6Year) + rng.Int63n(358)
		ops[i] = aggOp{
			bandLo: bandLo, bandHi: bandLo + bandW,
			yearLo: tpch.YearDay(v.Q6Year), yearHi: tpch.YearDay(v.Q6Year + 1),
			weekLo: weekLo, weekHi: weekLo + 7,
		}
	}
	return ops
}

// runAggMode drives the workload through one executor, returning the
// elapsed time and a cross-mode checksum over every result.
func runAggMode(exec engine.Executor, ops []aggOp) (time.Duration, int64, error) {
	var checksum int64
	start := time.Now()
	for _, op := range ops {
		revenue, err := exec.Sum("l_extendedprice", op.bandLo, op.bandHi)
		if err != nil {
			return 0, 0, err
		}
		mn, mx, ok, err := exec.MinMax("l_extendedprice", op.bandLo, op.bandHi)
		if err != nil {
			return 0, 0, err
		}
		n, err := exec.Count("l_shipdate", op.yearLo, op.yearHi)
		if err != nil {
			return 0, 0, err
		}
		rows, err := exec.SelectRows("l_shipdate", op.weekLo, op.weekHi)
		if err != nil {
			return 0, 0, err
		}
		checksum += revenue + int64(n) + int64(len(rows))
		if ok {
			checksum += mn + mx
		}
	}
	return time.Since(start), checksum, nil
}

func runAgg(p Params) (*Result, error) {
	data := tpch.Generate(p.TPCHOrders, p.Seed)
	li := data.Lineitem
	nOps := 100
	if p.Queries < 400 {
		nOps = p.Queries / 4
	}
	if nOps < 10 {
		nOps = 10
	}
	ops := aggWorkload(p, data, nOps)

	crackCfg := pvdcConfig(p, p.Threads)
	crackCfg.WithRows = true
	user := p.Threads / 2
	if user < 1 {
		user = 1
	}
	userCfg := pvdcConfig(p, user)
	userCfg.WithRows = true

	modes := []struct {
		label string
		build func() engine.Executor
		prep  func(engine.Executor) time.Duration
	}{
		{"no indexing", func() engine.Executor { return engine.NewScanExecutor(li, p.Threads) }, nil},
		{"offline indexing", func() engine.Executor { return engine.NewOfflineExecutor(li, p.Threads) },
			func(e engine.Executor) time.Duration {
				start := time.Now()
				e.(*engine.OfflineExecutor).PrepareAll()
				return time.Since(start)
			}},
		{"adaptive indexing", func() engine.Executor { return engine.NewAdaptiveExecutor(li, crackCfg, "") }, nil},
		{"mP-CCGI", func() engine.Executor {
			return engine.NewCCGIExecutor(li, p.Threads, 64, cracking.Config{WithRows: true, Seed: p.Seed})
		}, nil},
		{"holistic indexing", func() engine.Executor {
			return engine.NewHolisticExecutor(li, engine.HolisticConfig{
				Cracking: userCfg,
				Daemon: holistic.Config{
					Interval:    p.Interval,
					Refinements: p.Refinements,
					Seed:        p.Seed,
				},
				L1Values:    p.L1Values,
				Contexts:    p.Threads,
				UserThreads: user,
				StatsSeed:   p.Seed,
			})
		}, nil},
	}

	r := &Result{Headers: []string{"mode", "total (s)", "checksum"}}
	var firstChecksum int64
	var mismatch string
	for i, m := range modes {
		exec := m.build()
		var elapsed time.Duration
		if m.prep != nil {
			// No idle time before the first query: preparation cost is
			// charged to the workload, as everywhere else in Section 5.
			elapsed += m.prep(exec)
		}
		d, checksum, err := runAggMode(exec, ops)
		exec.Close()
		if err != nil {
			return nil, err
		}
		elapsed += d
		if i == 0 {
			firstChecksum = checksum
		} else if checksum != firstChecksum && mismatch == "" {
			mismatch = fmt.Sprintf("%s computed %d, %s computed %d", m.label, checksum, modes[0].label, firstChecksum)
		}
		r.AddRow(m.label, secs(elapsed), fmt.Sprintf("%d", checksum))
	}
	if mismatch != "" {
		return nil, fmt.Errorf("agg: cross-mode checksum mismatch: %s", mismatch)
	}
	r.AddNote("workload: %d ops over %d lineitems — Q6-style revenue sum + min/max per extendedprice band, count per shipdate year, rows per shipdate week", nOps, li.Rows())
	r.AddNote("all modes agree on the checksum; aggregation is pushed into each mode's access path (pieces / sorted slices / parallel chunks)")
	return r, nil
}
