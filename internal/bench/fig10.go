package bench

import (
	"fmt"
	"time"

	"holistic/internal/cpu"
	"holistic/internal/engine"
	"holistic/internal/holistic"
	"holistic/internal/stats"
	"holistic/internal/workload"
)

func init() {
	register("fig10", "Workload patterns: predicate value series (Figure 10)", runFig10)
	register("fig11", "Holistic vs multi-core adaptive indexing, cores sweep (Figure 11)", runFig11)
	register("fig12", "Robustness across workload patterns (Figure 12)", runFig12)
	register("fig13", "Attribute-count sweep and strategies W1-W4 (Figure 13)", runFig13)
	register("fig15", "Refinements-per-worker sweep x (Figure 15)", runFig15)
}

func runFig10(p Params) (*Result, error) {
	n := p.Queries
	samples := 20
	step := n / samples
	if step < 1 {
		step = 1
	}
	headers := []string{"query#"}
	series := make([][]int64, 0, 5)
	for _, pat := range workload.Patterns() {
		headers = append(headers, pat.String())
		series = append(series, workload.PredicateSeries(pat, n, p.Domain, p.Seed))
	}
	r := &Result{Headers: headers}
	for i := 0; i < n; i += step {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%d", s[i]))
		}
		r.AddRow(row...)
	}
	r.AddNote("series sampled every %d queries; domain [0, %d)", step, p.Domain)
	return r, nil
}

// system is one competitor in Figures 11/12/13/15.
type system struct {
	label string
	build func(p Params, t *engine.Table, threads int) engine.Executor
}

func pvdcSystem() system {
	return system{"PVDC", func(p Params, t *engine.Table, threads int) engine.Executor {
		return engine.NewAdaptiveExecutor(t, pvdcConfig(p, threads), "PVDC")
	}}
}

func pvsdcSystem() system {
	return system{"PVSDC", func(p Params, t *engine.Table, threads int) engine.Executor {
		cfg := pvdcConfig(p, threads)
		cfg.Stochastic = true
		return engine.NewAdaptiveExecutor(t, cfg, "PVSDC")
	}}
}

func ccgiSystem() system {
	return system{"mP-CCGI", func(p Params, t *engine.Table, threads int) engine.Executor {
		return engine.NewCCGIExecutor(t, threads, 64, pvdcConfig(p, 1))
	}}
}

// holisticSystem splits the thread budget in half between user queries
// and holistic workers (the distribution Section 5.2 found best).
func holisticSystem(strategy stats.Strategy) system {
	label := "HI"
	if strategy != 0 && strategy != stats.W4 {
		label = "HI (" + strategy.String() + ")"
	}
	return system{label, func(p Params, t *engine.Table, threads int) engine.Executor {
		user := threads / 2
		if user < 1 {
			user = 1
		}
		workers := threads - user
		if workers < 1 {
			workers = 1
		}
		return engine.NewHolisticExecutor(t, engine.HolisticConfig{
			Cracking: pvdcConfig(p, user),
			Daemon: holistic.Config{
				Interval:    p.Interval,
				Refinements: p.Refinements,
				MaxWorkers:  workers,
				Strategy:    strategy,
				Seed:        p.Seed,
			},
			L1Values:    p.L1Values,
			Contexts:    threads,
			UserThreads: user,
			Monitor:     cpu.Fixed{Total: threads, Idle: workers},
			StatsSeed:   p.Seed,
		})
	}}
}

// totalCost runs the workload through a freshly built executor and
// returns the total processing cost.
func totalCost(p Params, sys system, threads int, qs []workload.Query) (time.Duration, error) {
	t := buildTable(p)
	e := sys.build(p, t, threads)
	defer e.Close()
	times, err := timeQueries(e, qs)
	if err != nil {
		return 0, err
	}
	return sum(times), nil
}

func runFig11(p Params) (*Result, error) {
	qs := microWorkload(p, workload.Random)
	systems := []system{ccgiSystem(), pvdcSystem(), pvsdcSystem(), holisticSystem(stats.W4)}

	var cores []int
	for c := 1; c <= p.Threads*2; c *= 2 {
		cores = append(cores, c)
	}
	headers := []string{"cores"}
	for _, s := range systems {
		headers = append(headers, s.label+" (s)")
	}
	r := &Result{Headers: headers}
	for _, c := range cores {
		row := []string{fmt.Sprintf("%d", c)}
		for _, s := range systems {
			cost, err := totalCost(p, s, c, qs)
			if err != nil {
				return nil, err
			}
			row = append(row, secs(cost))
		}
		r.AddRow(row...)
	}
	r.AddNote("physical cores on this machine: %d; larger counts oversubscribe goroutines (DESIGN.md §3)", p.Threads)
	r.AddNote("paper shape: all systems improve with cores; HI lowest at every width")
	return r, nil
}

func runFig12(p Params) (*Result, error) {
	systems := []system{pvdcSystem(), pvsdcSystem(), holisticSystem(stats.W4)}
	headers := []string{"workload"}
	for _, s := range systems {
		headers = append(headers, s.label+" (s)")
	}
	r := &Result{Headers: headers}
	for _, pat := range workload.Patterns() {
		qs := microWorkload(p, pat)
		row := []string{pat.String()}
		for _, s := range systems {
			cost, err := totalCost(p, s, p.Threads, qs)
			if err != nil {
				return nil, err
			}
			row = append(row, secs(cost))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper shape: PVDC degrades badly on sequential; PVSDC repairs robustness; HI lowest everywhere")
	return r, nil
}

func runFig13(p Params) (*Result, error) {
	// Four sub-figures: {uniform, zipf-skewed} attribute popularity ×
	// {random, periodic} predicate values; systems PVDC, PVSDC and the
	// four holistic strategies. Queries are capped to keep the sweep
	// affordable.
	sub := []struct {
		label   string
		pattern workload.Pattern
		zipf    float64
	}{
		{"(a) random attrs, random values", workload.Random, 0},
		{"(b) random attrs, periodic values", workload.Periodic, 0},
		{"(c) skewed attrs, random values", workload.Random, 1.2},
		{"(d) skewed attrs, periodic values", workload.Periodic, 1.2},
	}
	systems := []system{
		pvdcSystem(), pvsdcSystem(),
		holisticSystem(stats.W1), holisticSystem(stats.W2),
		holisticSystem(stats.W3), holisticSystem(stats.W4),
	}
	queries := p.Queries
	if queries > 500 {
		queries = 500
	}

	headers := []string{"sub-figure", "#attrs"}
	for _, s := range systems {
		headers = append(headers, s.label+" (s)")
	}
	attrCounts := []int{}
	for _, a := range []int{5, 8, 10} {
		if a <= p.Attrs {
			attrCounts = append(attrCounts, a)
		}
	}
	if len(attrCounts) == 0 {
		attrCounts = []int{p.Attrs}
	}

	r := &Result{Headers: headers}
	for _, sf := range sub {
		for _, attrs := range attrCounts {
			pp := p
			pp.Attrs = attrs
			pp.Queries = queries
			qs := workload.Generate(workload.Config{
				Pattern: sf.pattern, Queries: queries, Domain: p.Domain,
				Attrs: attrs, AttrZipf: sf.zipf, OneSided: true, Seed: p.Seed,
			})
			row := []string{sf.label, fmt.Sprintf("%d", attrs)}
			for _, s := range systems {
				cost, err := totalCost(pp, s, p.Threads, qs)
				if err != nil {
					return nil, err
				}
				row = append(row, secs(cost))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper shape: HI gains grow with attribute count; W1-W4 similar on random values, W4 best on periodic")
	return r, nil
}

func runFig15(p Params) (*Result, error) {
	xs := []int{1, 2, 4, 8, 16, 32}
	headers := []string{"workload", "PVDC (s)", "PVSDC (s)"}
	for _, x := range xs {
		headers = append(headers, fmt.Sprintf("HI x=%d (s)", x))
	}
	r := &Result{Headers: headers}
	for _, pat := range workload.Patterns() {
		qs := microWorkload(p, pat)
		row := []string{pat.String()}
		for _, s := range []system{pvdcSystem(), pvsdcSystem()} {
			cost, err := totalCost(p, s, p.Threads, qs)
			if err != nil {
				return nil, err
			}
			row = append(row, secs(cost))
		}
		for _, x := range xs {
			px := p
			px.Refinements = x
			cost, err := totalCost(px, holisticSystem(stats.W4), p.Threads, qs)
			if err != nil {
				return nil, err
			}
			row = append(row, secs(cost))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper shape: HI improves as x grows, flattening around x=16")
	return r, nil
}
