// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5) at a configurable, reduced scale: each
// experiment builds its workload and executors from the other internal
// packages, measures what the paper measures, and emits the same rows or
// series the paper reports. cmd/holisticbench drives it from the command
// line; bench_test.go at the repository root wires each experiment into
// `go test -bench`.
//
// Scale defaults are chosen so the full suite runs on a laptop-class
// machine in minutes (the paper used 2^30-value columns and 32 hardware
// contexts; see DESIGN.md §3 and EXPERIMENTS.md for the mapping).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"holistic/internal/column"
	"holistic/internal/engine"
	"holistic/internal/obs"
	"holistic/internal/workload"
)

// Params are the global scale knobs shared by all experiments.
type Params struct {
	// ColumnSize is the number of values per attribute (paper: 2^30).
	ColumnSize int
	// Queries is the workload length (paper: 10^3).
	Queries int
	// Attrs is the number of attributes (paper: 10).
	Attrs int
	// Domain is the attribute value domain (paper: 2^30).
	Domain int64
	// Threads is the hardware-context budget (paper: 32).
	Threads int
	// Interval is the daemon tuning interval (paper: 1 s; scaled down
	// with the column size so a comparable number of tuning cycles fits
	// into the shorter workload).
	Interval time.Duration
	// Refinements is x, the refinements per worker activation.
	Refinements int
	// L1Values is the optimal piece size in values.
	L1Values int
	// TPCHOrders is the ORDERS cardinality for Figure 14.
	TPCHOrders int
	// Seed fixes all generators.
	Seed int64
	// DataDir is where durability experiments persist their store; a
	// fresh temporary directory per run when empty.
	DataDir string
}

// DefaultParams returns the reduced-scale defaults.
func DefaultParams() Params {
	return Params{
		ColumnSize:  1 << 20,
		Queries:     1000,
		Attrs:       10,
		Domain:      1 << 30,
		Threads:     runtime.GOMAXPROCS(0),
		Interval:    2 * time.Millisecond,
		Refinements: 16,
		L1Values:    4096,
		TPCHOrders:  20000,
		Seed:        42,
	}
}

// Result is one regenerated table or figure.
type Result struct {
	Name    string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
	Elapsed time.Duration
	// Percentiles carries per-cell latency digests (count, mean and
	// p50/p90/p99/p999 in µs), keyed e.g. "holistic/count" — part of
	// the exported BENCH_*.json schema.
	Percentiles map[string]obs.LatencySummary `json:",omitempty"`
	// StrategyTimeline records the physical-strategy transitions the
	// experiment's instrumented runners observed (e.g. the join
	// flipping from hash to index-clustered merge once refinement
	// converges).
	StrategyTimeline []obs.TimelineEvent `json:",omitempty"`
}

// AddPercentiles records one labeled latency digest; empty digests
// (nothing recorded under that op) are skipped.
func (r *Result) AddPercentiles(label string, s obs.LatencySummary) {
	if s.Count == 0 {
		return
	}
	if r.Percentiles == nil {
		r.Percentiles = make(map[string]obs.LatencySummary)
	}
	r.Percentiles[label] = s
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a free-text note under the table.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s (elapsed %v)\n", r.Name, r.Title, r.Elapsed.Round(time.Millisecond))
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	if len(r.Percentiles) > 0 {
		labels := make([]string, 0, len(r.Percentiles))
		for l := range r.Percentiles {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			p := r.Percentiles[l]
			fmt.Fprintf(w, "  latency %-24s n=%-6d p50=%.1fµs p90=%.1fµs p99=%.1fµs\n",
				l, p.Count, p.P50US, p.P90US, p.P99US)
		}
	}
	for _, ev := range r.StrategyTimeline {
		fmt.Fprintf(w, "  strategy@q%-6d %s → %s\n", ev.Seq, ev.Subsystem, ev.Strategy)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered figure/table reproduction.
type Experiment struct {
	Name  string
	Title string
	Run   func(Params) (*Result, error)
}

var registry []Experiment

func register(name, title string, run func(Params) (*Result, error)) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// Experiments lists all registered experiments in a stable order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run executes one experiment by name.
func Run(name string, p Params) (*Result, error) {
	for _, e := range registry {
		if e.Name == name {
			start := time.Now()
			res, err := e.Run(p)
			if err != nil {
				return nil, fmt.Errorf("bench %s: %w", name, err)
			}
			res.Name = e.Name
			res.Title = e.Title
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", name, names())
}

func names() string {
	var ns []string
	for _, e := range Experiments() {
		ns = append(ns, e.Name)
	}
	return strings.Join(ns, ", ")
}

// --- shared experiment plumbing ---

// attrName maps a workload attribute index to its column name.
func attrName(a int) string { return fmt.Sprintf("c%02d", a) }

// buildTable generates the synthetic microbenchmark relation: Attrs
// columns of ColumnSize uniform values over Domain.
func buildTable(p Params) *engine.Table {
	t := engine.NewTable("R")
	for a := 0; a < p.Attrs; a++ {
		vals := workload.UniformColumn(p.ColumnSize, p.Domain, p.Seed+int64(a))
		t.MustAddColumn(column.New(attrName(a), vals))
	}
	return t
}

// timeQueries drives the query sequence through an executor one query at
// a time, returning per-query durations.
func timeQueries(exec engine.Executor, qs []workload.Query) ([]time.Duration, error) {
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		start := time.Now()
		if _, err := exec.Count(attrName(q.Attr), q.Lo, q.Hi); err != nil {
			return nil, err
		}
		out[i] = time.Since(start)
	}
	return out, nil
}

// cumulative converts per-query durations into the cumulative series the
// paper's Figure 6(a) plots, sampled at the given checkpoints.
func cumulative(times []time.Duration, checkpoints []int) []time.Duration {
	out := make([]time.Duration, len(checkpoints))
	var acc time.Duration
	next := 0
	for i, t := range times {
		acc += t
		for next < len(checkpoints) && i+1 == checkpoints[next] {
			out[next] = acc
			next++
		}
	}
	for next < len(checkpoints) {
		out[next] = acc
		next++
	}
	return out
}

// sum adds durations.
func sum(ts []time.Duration) time.Duration {
	var acc time.Duration
	for _, t := range ts {
		acc += t
	}
	return acc
}

// ms formats a duration in milliseconds with 1 decimal.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// secs formats a duration in seconds with 3 decimals.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// checkpointsFor picks log-spaced checkpoints 1, 10, 100, ... up to n.
func checkpointsFor(n int) []int {
	var cps []int
	for c := 1; c < n; c *= 10 {
		cps = append(cps, c)
	}
	cps = append(cps, n)
	return cps
}
