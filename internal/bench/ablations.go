package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/workload"
)

func init() {
	register("ablation-pivot", "Pivot choice: random vs biggest vs smallest piece (Section 4.2 discussion)", runAblationPivot)
	register("ablation-latch", "Worker latching: try-and-reroll vs blocking (Figure 3 discussion)", runAblationLatch)
	register("ablation-l1", "Optimal piece size |L1| sweep (Equation 1)", runAblationL1)
}

// runAblationPivot quantifies the paper's argument for random pivots:
// targeting the biggest (or smallest) piece requires finding it, which
// costs a scan over the piece list per refinement, while random pivots
// cost nothing and converge to a balanced index anyway.
func runAblationPivot(p Params) (*Result, error) {
	const refinements = 512
	type policy struct {
		label string
		pick  func(c *cracking.Column, rng *rand.Rand) int64
	}
	policies := []policy{
		{"random", func(c *cracking.Column, rng *rand.Rand) int64 {
			lo, hi := c.Domain()
			if hi <= lo {
				return lo
			}
			return lo + rng.Int63n(hi-lo+1)
		}},
		{"biggest piece", func(c *cracking.Column, rng *rand.Rand) int64 {
			var best cracking.PieceInfo
			for _, pi := range c.PieceBounds() { // the maintenance scan the paper avoids
				if pi.Size() > best.Size() {
					best = pi
				}
			}
			return midKey(c, best)
		}},
		{"smallest piece", func(c *cracking.Column, rng *rand.Rand) int64 {
			pieces := c.PieceBounds()
			best := pieces[0]
			for _, pi := range pieces {
				if pi.Size() > p.L1Values && (best.Size() <= p.L1Values || pi.Size() < best.Size()) {
					best = pi
				}
			}
			return midKey(c, best)
		}},
	}

	r := &Result{Headers: []string{"policy", "refine time (ms)", "pieces", "avg piece", "max piece"}}
	for _, pol := range policies {
		base := workload.UniformColumn(p.ColumnSize, p.Domain, p.Seed)
		c := cracking.New("a", base, cracking.Config{Kernel: cracking.KernelVectorized})
		rng := rand.New(rand.NewSource(p.Seed))
		start := time.Now()
		for i := 0; i < refinements; i++ {
			c.TryRefineAt(pol.pick(c, rng), p.L1Values)
		}
		elapsed := time.Since(start)
		maxPiece := 0
		for _, pi := range c.PieceBounds() {
			if pi.Size() > maxPiece {
				maxPiece = pi.Size()
			}
		}
		r.AddRow(pol.label, ms(elapsed), fmt.Sprintf("%d", c.Pieces()),
			fmt.Sprintf("%.0f", c.AvgPieceSize()), fmt.Sprintf("%d", maxPiece))
	}
	r.AddNote("%d refinement attempts per policy on one %d-value column", refinements, p.ColumnSize)
	r.AddNote("paper's argument: random needs no auxiliary structure or scans and still balances the index")
	return r, nil
}

// runAblationLatch compares the paper's never-block worker (failed
// try-latch => re-roll pivot) against a worker that waits on the latch,
// measuring the impact on concurrent user-query latency.
func runAblationLatch(p Params) (*Result, error) {
	queries := p.Queries
	if queries > 300 {
		queries = 300
	}
	qs := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: queries, Domain: p.Domain,
		Attrs: 1, OneSided: true, Seed: p.Seed,
	})

	run := func(blocking bool) (time.Duration, int64, error) {
		pp := p
		pp.Attrs = 1
		t := buildTable(pp)
		e := engine.NewAdaptiveExecutor(t, pvdcConfig(p, 1), "")
		defer e.Close()
		if _, err := e.Count(attrName(0), 0, 1); err != nil { // materialize cracker
			return 0, 0, err
		}
		c := e.CrackerIfExists(attrName(0))

		stop := make(chan struct{})
		var refines atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo, hi := c.Domain()
				pivot := lo + rng.Int63n(hi-lo+1)
				if blocking {
					c.CrackAt(pivot)
					refines.Add(1)
				} else if c.TryRefineAt(pivot, p.L1Values) == cracking.RefineDone {
					refines.Add(1)
				}
			}
		}()
		times, err := timeQueries(e, qs)
		close(stop)
		wg.Wait()
		if err != nil {
			return 0, 0, err
		}
		return sum(times), refines.Load(), nil
	}

	r := &Result{Headers: []string{"worker mode", "query cost (s)", "worker refinements"}}
	for _, blocking := range []bool{false, true} {
		label := "try-latch + re-roll (paper)"
		if blocking {
			label = "blocking"
		}
		cost, refines, err := run(blocking)
		if err != nil {
			return nil, err
		}
		r.AddRow(label, secs(cost), fmt.Sprintf("%d", refines))
	}
	r.AddNote("blocking workers hold user queries back on hot pieces; try-latch never does (Figure 3)")
	return r, nil
}

func runAblationL1(p Params) (*Result, error) {
	queries := p.Queries
	if queries > 500 {
		queries = 500
	}
	qs := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: queries, Domain: p.Domain,
		Attrs: p.Attrs, OneSided: true, Seed: p.Seed,
	})
	r := &Result{Headers: []string{"|L1| (values)", "total cost (s)", "final partitions"}}
	for _, l1 := range []int{256, 1024, 4096, 16384, 65536} {
		pp := p
		pp.L1Values = l1
		pp.Queries = queries
		t := buildTable(pp)
		e := newHolistic(pp, t)
		times, err := timeQueries(e, qs)
		if err != nil {
			e.Close()
			return nil, err
		}
		pieces := e.TotalPieces()
		e.Close()
		r.AddRow(fmt.Sprintf("%d", l1), secs(sum(times)), fmt.Sprintf("%d", pieces))
	}
	r.AddNote("Equation 1: below the L1 working set further cracking adds administration cost without scan benefit")
	return r, nil
}

// midKey returns a pivot in the middle of a piece's value span, clamped
// to the column domain.
func midKey(c *cracking.Column, pi cracking.PieceInfo) int64 {
	lo, hi := pi.LoKey, pi.HiKey
	dLo, dHi := c.Domain()
	if lo < dLo {
		lo = dLo
	}
	if hi > dHi {
		hi = dHi + 1
	}
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)/2
}
