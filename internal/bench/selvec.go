package bench

import (
	"fmt"
	"runtime"
	"time"

	"holistic/internal/column"
	"holistic/internal/engine"
	"holistic/internal/query"
	"holistic/internal/workload"
)

func init() {
	register("selvec", "Selection-vector representation sweep: bitmap vs position-list intermediates across driving selectivity (new)", runSelVec)
}

// us formats a duration in microseconds with 1 decimal.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000)
}

// selVecSelectivities are the driving-conjunct selectivities the sweep
// visits, bracketing the crossover from both sides.
var selVecSelectivities = []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5}

// selVecCell times one (selectivity, policy) cell: q two-conjunct count
// queries whose driving conjunct covers sel of the domain at a rotating
// offset, returning ns/query, allocations/query and a checksum.
func selVecCell(r *query.Runner, pol query.RepPolicy, sel float64, domain int64, q int, seed int64) (perQuery time.Duration, allocs float64, checksum int64, err error) {
	r.SetRepPolicy(pol)
	span := int64(sel * float64(domain))
	if span < 1 {
		span = 1
	}
	if span > domain {
		span = domain
	}
	room := domain - span + 1 // lo ∈ [0, room); ≥ 1 even for tiny -domain
	resHi := 3 * domain / 4   // residual conjunct keeps ~75%
	lo := seed % room
	// One warm-up query fills the pooled scratch before measuring.
	if _, err := r.Count([]query.Predicate{{Attr: attrName(0), Lo: lo, Hi: lo + span}, {Attr: attrName(1), Lo: 0, Hi: resHi}}); err != nil {
		return 0, 0, 0, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < q; i++ {
		lo := (seed + int64(i)*7919) % room
		n, err := r.Count([]query.Predicate{
			{Attr: attrName(0), Lo: lo, Hi: lo + span},
			{Attr: attrName(1), Lo: 0, Hi: resHi},
		})
		if err != nil {
			return 0, 0, 0, err
		}
		checksum += int64(n)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return elapsed / time.Duration(q), float64(ms1.Mallocs-ms0.Mallocs) / float64(q), checksum, nil
}

// runSelVec is the selvec experiment: it validates the bitmap/poslist
// crossover rule by sweeping the driving conjunct's selectivity over a
// two-conjunct count workload on the scan executor (the representation
// question isolated from index refinement) and timing both forced
// representations plus the Auto policy. The allocation columns show the
// pooled bitmap path's allocation-free steady state.
func runSelVec(p Params) (*Result, error) {
	t := engine.NewTable("R")
	for a := 0; a < 2; a++ {
		t.MustAddColumn(columnFor(p, a))
	}
	exec := engine.NewScanExecutor(t, p.Threads)
	defer exec.Close()
	r := query.New(t, exec, p.Threads)

	q := p.Queries / 25
	if q < 8 {
		q = 8
	}
	res := &Result{Headers: []string{"drive sel", "poslist µs/q", "bitmap µs/q", "auto µs/q", "auto rep", "poslist allocs/q", "bitmap allocs/q", "bitmap speedup"}}
	for _, sel := range selVecSelectivities {
		pl, plAllocs, plSum, err := selVecCell(r, query.RepPosList, sel, p.Domain, q, p.Seed)
		if err != nil {
			return nil, err
		}
		bm, bmAllocs, bmSum, err := selVecCell(r, query.RepBitmap, sel, p.Domain, q, p.Seed)
		if err != nil {
			return nil, err
		}
		if plSum != bmSum {
			return nil, fmt.Errorf("selvec: representations disagree at sel %.3f: poslist %d, bitmap %d", sel, plSum, bmSum)
		}
		auto, _, autoSum, err := selVecCell(r, query.RepAuto, sel, p.Domain, q, p.Seed)
		if err != nil {
			return nil, err
		}
		if autoSum != plSum {
			return nil, fmt.Errorf("selvec: auto disagrees at sel %.3f: %d vs %d", sel, autoSum, plSum)
		}
		autoRep := "poslist"
		if sel >= query.DefaultBitmapCrossover {
			autoRep = "bitmap"
		}
		res.AddRow(
			fmt.Sprintf("%.1f%%", sel*100),
			us(pl), us(bm), us(auto),
			autoRep,
			fmt.Sprintf("%.1f", plAllocs),
			fmt.Sprintf("%.1f", bmAllocs),
			fmt.Sprintf("%.2fx", float64(pl)/float64(bm)),
		)
	}
	res.AddNote("two-conjunct counts over %d values, %d queries per cell, %d threads; residual conjunct keeps 75%%", p.ColumnSize, q, p.Threads)
	res.AddNote("auto crossover: drive selectivity >= %.1f%% picks the word-packed bitmap (query.DefaultBitmapCrossover)", query.DefaultBitmapCrossover*100)
	res.AddNote("columns µs/q: microseconds per query; allocs/q from runtime.MemStats across the cell (parallel kernels cost O(workers) goroutine allocations, the bitmap path itself allocates nothing)")
	return res, nil
}

// columnFor builds attribute a of the synthetic relation at the
// experiment's scale.
func columnFor(p Params, a int) *column.Column {
	return column.New(attrName(a), workload.UniformColumn(p.ColumnSize, p.Domain, p.Seed+int64(a)))
}
