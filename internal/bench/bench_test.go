package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyParams shrinks every knob so the full experiment suite smoke-tests
// in seconds.
func tinyParams() Params {
	p := DefaultParams()
	p.ColumnSize = 20_000
	p.Queries = 60
	p.Attrs = 3
	p.Domain = 1 << 20
	p.Interval = time.Millisecond
	p.Refinements = 4
	p.L1Values = 512
	p.TPCHOrders = 800
	return p
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig6a", "fig6b", "fig6c", "fig6d", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"ablation-pivot", "ablation-latch", "ablation-l1", "agg", "conj", "selvec",
		"groupby", "join", "recover",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(have), len(want))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tinyParams()); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// TestAllExperimentsSmoke executes every registered experiment at tiny
// scale and sanity-checks the emitted tables.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke suite in -short mode")
	}
	p := tinyParams()
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := Run(e.Name, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Headers) == 0 {
				t.Fatal("no headers")
			}
			if len(res.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range res.Rows {
				if len(row) != len(res.Headers) {
					t.Fatalf("row %d has %d cells, headers %d", i, len(row), len(res.Headers))
				}
			}
			var buf bytes.Buffer
			res.Fprint(&buf)
			out := buf.String()
			if !strings.Contains(out, e.Name) {
				t.Error("printed output missing experiment name")
			}
			if testing.Verbose() {
				t.Log("\n" + out)
			}
		})
	}
}

func TestCumulative(t *testing.T) {
	times := []time.Duration{1, 2, 3, 4, 5}
	got := cumulative(times, []int{1, 3, 5})
	want := []time.Duration{1, 6, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
	// Checkpoints beyond the series clamp to the total.
	got = cumulative(times, []int{2, 10})
	if got[0] != 3 || got[1] != 15 {
		t.Fatalf("clamped cumulative = %v", got)
	}
}

func TestBucketize(t *testing.T) {
	times := make([]time.Duration, 1000)
	for i := range times {
		times[i] = time.Duration(1)
	}
	labels, sums := bucketize(times)
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}
	wantSizes := []time.Duration{1, 9, 90, 900}
	for i, w := range wantSizes {
		if sums[i] != w {
			t.Fatalf("bucket %d sum = %d, want %d", i, sums[i], w)
		}
	}
	if labels[0] != "q1-1" || labels[3] != "q101-1000" {
		t.Errorf("labels = %v", labels)
	}
}

func TestCheckpointsFor(t *testing.T) {
	got := checkpointsFor(1000)
	want := []int{1, 10, 100, 1000}
	if len(got) != len(want) {
		t.Fatalf("checkpoints = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoints = %v, want %v", got, want)
		}
	}
	if got := checkpointsFor(60); got[len(got)-1] != 60 {
		t.Fatalf("checkpointsFor(60) = %v", got)
	}
}

func TestDistributions(t *testing.T) {
	ds := distributions(16)
	if len(ds) < 3 {
		t.Fatalf("only %d distributions for 16 threads", len(ds))
	}
	if ds[0].label != "u16" || ds[0].workers != 0 {
		t.Errorf("first distribution = %+v, want pure user", ds[0])
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.label] {
			t.Errorf("duplicate distribution %s", d.label)
		}
		seen[d.label] = true
		if d.user < 1 {
			t.Errorf("%s: user threads < 1", d.label)
		}
		if d.workers > 0 && d.threadsPer < 1 {
			t.Errorf("%s: workers without threads", d.label)
		}
	}
	// Tiny budgets still yield at least the pure-user config.
	if ds2 := distributions(1); len(ds2) < 1 || ds2[0].user != 1 {
		t.Errorf("distributions(1) = %+v", ds2)
	}
}

func TestResultFprintAlignment(t *testing.T) {
	r := &Result{
		Name:    "x",
		Title:   "t",
		Headers: []string{"a", "long-header"},
	}
	r.AddRow("1", "2")
	r.AddNote("note %d", 7)
	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "note 7") {
		t.Errorf("Fprint output:\n%s", out)
	}
}

func TestMsAndSecs(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.5" {
		t.Errorf("ms = %s", ms(1500*time.Microsecond))
	}
	if secs(2500*time.Millisecond) != "2.500" {
		t.Errorf("secs = %s", secs(2500*time.Millisecond))
	}
}
