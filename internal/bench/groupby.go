package bench

import (
	"fmt"
	"time"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/groupby"
	"holistic/internal/holistic"
	"holistic/internal/obs"
	"holistic/internal/query"
	"holistic/internal/workload"
)

func init() {
	register("groupby", "Grouped aggregation: hash vs index-clustered (sort) grouping under the holistic daemon (new)", runGroupBy)
}

// groupByCell times q grouped count+sum queries under one forced
// strategy, returning ns/query, the group count, the executed strategy
// of the last query, and a checksum over keys and aggregates.
func groupByCell(r *query.Runner, strat groupby.Strategy, keys []string, aggs []groupby.Agg, preds []query.Predicate, q int) (perQuery time.Duration, groups int, ran groupby.Strategy, checksum int64, err error) {
	r.SetGroupStrategy(strat)
	defer r.SetGroupStrategy(groupby.StrategyAuto)
	var res groupby.Result
	// One warm-up query fills the pooled scratch before measuring.
	if err := r.GroupedInto(&res, keys, aggs, preds); err != nil {
		return 0, 0, 0, 0, err
	}
	start := time.Now()
	for i := 0; i < q; i++ {
		if err := r.GroupedInto(&res, keys, aggs, preds); err != nil {
			return 0, 0, 0, 0, err
		}
		for g := 0; g < res.Len(); g++ {
			checksum += res.Keys[0][g]*7 + res.Aggs[0][g]*3 + res.Aggs[1][g]
		}
	}
	return time.Since(start) / time.Duration(q), res.Len(), res.Strategy, checksum, nil
}

// runGroupBy is the groupby experiment: grouped aggregation over a
// skewed group-key attribute whose domain is too wide for the dense
// strategy, compared before and after the holistic daemon refines the
// key's index. Before refinement the only viable strategy is the global
// hash; once background cracking has shrunk the key clusters below the
// per-cluster accumulator bound, sort-based (index-clustered) grouping
// walks the pieces in key order with no hash table — the experiment
// shows it overtaking the hash strategy, which is the grouped-
// aggregation payoff of holistic indexing.
func runGroupBy(p Params) (*Result, error) {
	groupsTarget := p.ColumnSize / 2
	if groupsTarget < 64 {
		groupsTarget = 64
	}
	tab := engine.NewTable("R")
	tab.MustAddColumn(column.New(attrName(0), workload.GroupKeyColumn(p.ColumnSize, groupsTarget, 1.1, p.Seed)))
	tab.MustAddColumn(column.New(attrName(1), workload.UniformColumn(p.ColumnSize, p.Domain, p.Seed+1)))

	exec := engine.NewHolisticExecutor(tab, engine.HolisticConfig{
		Cracking: cracking.Config{
			Kernel:          cracking.KernelVectorized,
			ParallelWorkers: p.Threads,
			WithRows:        true, // the key-order walk reconstructs rows
			Seed:            p.Seed,
		},
		Daemon: holistic.Config{
			Interval:    p.Interval,
			Refinements: p.Refinements,
			Seed:        p.Seed,
		},
		L1Values:    p.L1Values,
		Contexts:    p.Threads,
		UserThreads: p.Threads,
	})
	defer exec.Close()
	r := query.New(tab, exec, p.Threads)
	met := obs.NewQueryMetrics()
	r.SetMetrics(met)

	keys := []string{attrName(0)}
	aggs := []groupby.Agg{groupby.Count(), groupby.Sum(attrName(1))}
	preds := []query.Predicate{{Attr: attrName(1), Lo: 0, Hi: 9 * p.Domain / 10}}
	q := p.Queries / 20
	if q < 4 {
		q = 4
	}

	res := &Result{Headers: []string{"phase", "strategy", "µs/q", "groups", "checksum"}}
	addCell := func(phase string, strat groupby.Strategy) (time.Duration, int64, error) {
		t, groups, ran, sum, err := groupByCell(r, strat, keys, aggs, preds, q)
		if err != nil {
			return 0, 0, err
		}
		label := strat.String()
		if ran != strat {
			label = fmt.Sprintf("%v→%v", strat, ran)
		}
		res.AddRow(phase, label, us(t), fmt.Sprintf("%d", groups), fmt.Sprintf("%d", sum))
		return t, sum, nil
	}

	// The very first grouped query: the index space is empty, so the
	// planner can only hash — and it admits the key attribute to the
	// daemon (PredicateSink), starting background refinement.
	var first groupby.Result
	firstStart := time.Now()
	if err := r.GroupedInto(&first, keys, aggs, preds); err != nil {
		return nil, err
	}
	firstT := time.Since(firstStart)
	var coldSum int64
	for g := 0; g < first.Len(); g++ {
		coldSum += first.Keys[0][g]*7 + first.Aggs[0][g]*3 + first.Aggs[1][g]
	}
	coldSum *= int64(q) // cells accumulate q queries' worth
	res.AddRow("first query", first.Strategy.String(), us(firstT), fmt.Sprintf("%d", first.Len()), fmt.Sprintf("%d", coldSum))

	// Early phase: refinement has barely started (it proceeds between
	// these queries — holistic indexing never waits for idle windows).
	if _, earlySum, err := addCell("early", groupby.StrategyHash); err != nil {
		return nil, err
	} else if earlySum != coldSum {
		return nil, fmt.Errorf("groupby: early hash checksum %d != first %d", earlySum, coldSum)
	}
	if _, autoSum, err := addCell("early", groupby.StrategyAuto); err != nil {
		return nil, err
	} else if autoSum != coldSum {
		return nil, fmt.Errorf("groupby: early auto checksum %d != first %d", autoSum, coldSum)
	}

	// Idle window: background refinement shrinks the key's clusters. We
	// wait until the expected cluster span fits the sort strategy's
	// per-cluster accumulator with room to spare, or time out (the
	// result then records how far refinement got).
	walker := engine.KeyOrderWalker(exec)
	wantSpan := float64(groupby.DefaultClusterSlots) / 8
	deadline := time.Now().Add(100 * p.Interval)
	if min := 3 * time.Second; time.Until(deadline) > min {
		deadline = time.Now().Add(min)
	}
	converged := false
	for time.Now().Before(deadline) {
		if span, ok := walker.KeyOrderSpan(keys[0]); ok && span <= wantSpan {
			converged = true
			break
		}
		time.Sleep(p.Interval)
	}

	// Phase 2: refined index. Sort-based grouping walks the pieces in
	// key order with small dense per-cluster accumulators.
	hashT, hashSum, err := addCell("refined", groupby.StrategyHash)
	if err != nil {
		return nil, err
	}
	sortT, sortSum, err := addCell("refined", groupby.StrategySort)
	if err != nil {
		return nil, err
	}
	if _, autoSum, err := addCell("refined", groupby.StrategyAuto); err != nil {
		return nil, err
	} else if autoSum != hashSum || sortSum != hashSum || hashSum != coldSum {
		return nil, fmt.Errorf("groupby: refined checksums diverge (hash %d, sort %d, auto %d, cold %d)", hashSum, sortSum, autoSum, coldSum)
	}

	span, _ := walker.KeyOrderSpan(keys[0])
	pieces := 0
	if c := exec.CrackerIfExists(keys[0]); c != nil {
		pieces = c.Pieces()
	}
	snap := met.Snapshot()
	res.AddPercentiles("grouped", snap.Latency["grouped"])
	res.StrategyTimeline = snap.Timeline

	res.AddNote("workload: group by %s (%d-group zipf(1.1) key) over %d rows, count+sum fused, predicate keeps 90%%; %d queries per cell",
		keys[0], groupsTarget, p.ColumnSize, q)
	res.AddNote("daemon refined the key index to %d pieces (expected cluster span %.0f values, refinements %d, converged %v)",
		pieces, span, exec.Daemon.Refinements(), converged)
	if sortT < hashT {
		res.AddNote("refined: sort-based (index-clustered) grouping %.2fx faster than hash grouping — the holistic grouping payoff", float64(hashT)/float64(sortT))
	} else {
		res.AddNote("refined: sort %.1fµs vs hash %.1fµs — refinement has not paid off at this scale", float64(sortT.Nanoseconds())/1000, float64(hashT.Nanoseconds())/1000)
	}
	return res, nil
}
