package bench

import (
	"fmt"
	"time"

	holistic "holistic"
	"holistic/internal/workload"
)

func init() {
	register("conj", "Conjunctive multi-predicate workload: selectivity-ordered planning + late tuple reconstruction (new)", runConj)
}

// conjModes are the store modes the experiment compares. Scan is the
// baseline the acceptance criterion measures holistic against; offline
// bounds what full indexes buy; adaptive isolates what the daemon adds
// on top of cracking.
var conjModes = []holistic.Mode{
	holistic.ModeScan,
	holistic.ModeOffline,
	holistic.ModeAdaptive,
	holistic.ModeHolistic,
}

// runConjMode drives the conjunctive workload through one store,
// returning the elapsed time of each workload half plus a cross-mode
// checksum. Every query runs Count; every fourth also sums a
// deterministic attribute through late reconstruction so the fetch path
// is exercised too. Between the halves every mode gets the same
// think-time window — idle wall-clock the holistic daemon exploits and
// the other modes cannot (the premise of the paper's Figure 9). The
// window is excluded from the measured query response time.
func runConjMode(s *holistic.Store, qs []workload.ConjQuery, idle time.Duration) (firstHalf, secondHalf time.Duration, checksum int64, err error) {
	half := len(qs) / 2
	start := time.Now()
	for i, q := range qs {
		if i == half {
			firstHalf = time.Since(start)
			time.Sleep(idle)
			start = time.Now()
		}
		qb := s.Query()
		for _, p := range q.Preds {
			qb = qb.Where(attrName(p.Attr), p.Lo, p.Hi)
		}
		n, err := qb.Count()
		if err != nil {
			return 0, 0, 0, err
		}
		checksum += int64(n)
		if i%4 == 3 {
			sum, err := qb.Sum(attrName(q.Preds[0].Attr))
			if err != nil {
				return 0, 0, 0, err
			}
			checksum += sum
		}
	}
	secondHalf = time.Since(start)
	return firstHalf, secondHalf, checksum, nil
}

// runConj is the conj experiment: a three-attribute conjunctive
// workload (2-3 range conjuncts per query) over uniform columns, driven
// through Store.Query under four modes. The per-half split shows the
// holistic payoff: by the second half the daemon has refined all
// touched columns, while the scan baseline keeps paying O(N) per query.
func runConj(p Params) (*Result, error) {
	const attrs = 3
	qs := workload.GenerateConjunctive(workload.ConjConfig{
		Config: workload.Config{
			Pattern: workload.Random,
			Queries: p.Queries,
			Domain:  p.Domain,
			Attrs:   attrs,
			Seed:    p.Seed,
		},
		PredDist: []float64{0, 1, 1}, // even mix of 2- and 3-conjunct queries
	})

	// The base columns are shared across stores: they are read-only
	// (each mode copies before sorting or cracking) and this workload
	// issues no updates.
	cols := make([][]int64, attrs)
	for a := 0; a < attrs; a++ {
		cols[a] = workload.UniformColumn(p.ColumnSize, p.Domain, p.Seed+int64(a))
	}

	r := &Result{Headers: []string{"mode", "1st half (s)", "2nd half (s)", "total (s)", "checksum"}}
	var firstChecksum int64
	var mismatch string
	var scanSecond, holisticSecond time.Duration
	var refinements int64
	for i, mode := range conjModes {
		s := holistic.NewStore(holistic.Config{
			Mode:                 mode,
			Threads:              p.Threads,
			TuningInterval:       p.Interval,
			RefinementsPerWorker: p.Refinements,
			L1CacheBytes:         p.L1Values * 8,
			Seed:                 p.Seed,
		})
		for a := 0; a < attrs; a++ {
			if err := s.AddIntColumn(attrName(a), cols[a]); err != nil {
				s.Close()
				return nil, err
			}
		}
		// No idle time before the first query: offline preparation is
		// charged to the workload, as everywhere else in Section 5.
		prepStart := time.Now()
		s.Prepare()
		prep := time.Since(prepStart)
		idle := 20 * p.Interval
		if idle < 100*time.Millisecond {
			idle = 100 * time.Millisecond
		}
		first, second, checksum, err := runConjMode(s, qs, idle)
		// Close first: the daemon finishes its in-flight cycle, so the
		// refinement counter is final.
		s.Close()
		m := s.Metrics()
		r.AddPercentiles(mode.String()+"/count", m.Query.Latency["count"])
		r.AddPercentiles(mode.String()+"/sum", m.Query.Latency["sum"])
		if mode == holistic.ModeHolistic {
			refinements = s.Stats().Refinements
		}
		if err != nil {
			return nil, err
		}
		first += prep
		switch mode {
		case holistic.ModeScan:
			scanSecond = second
		case holistic.ModeHolistic:
			holisticSecond = second
		}
		if i == 0 {
			firstChecksum = checksum
		} else if checksum != firstChecksum && mismatch == "" {
			mismatch = fmt.Sprintf("%v computed %d, %v computed %d", mode, checksum, conjModes[0], firstChecksum)
		}
		r.AddRow(mode.String(), secs(first), secs(second), secs(first+second), fmt.Sprintf("%d", checksum))
	}
	if mismatch != "" {
		return nil, fmt.Errorf("conj: cross-mode checksum mismatch: %s", mismatch)
	}
	r.AddNote("workload: %d conjunctive queries (2-3 range conjuncts) over %d attributes × %d values", len(qs), attrs, p.ColumnSize)
	r.AddNote("planner drives the most selective conjunct through the mode's access path; the rest probe positionally (late reconstruction)")
	r.AddNote("holistic daemon performed %d background refinements across the touched columns", refinements)
	if holisticSecond < scanSecond {
		r.AddNote("2nd half: holistic %.3fs vs scan %.3fs — %.1fx faster once refined", holisticSecond.Seconds(), scanSecond.Seconds(), float64(scanSecond)/float64(holisticSecond))
	} else {
		r.AddNote("2nd half: holistic %.3fs vs scan %.3fs — refinement has not paid off at this scale", holisticSecond.Seconds(), scanSecond.Seconds())
	}
	return r, nil
}
