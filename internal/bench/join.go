package bench

import (
	"fmt"
	"time"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/holistic"
	"holistic/internal/join"
	"holistic/internal/obs"
	"holistic/internal/query"
	"holistic/internal/workload"
)

func init() {
	register("join", "Equi-join: radix-partitioned hash vs index-clustered merge join under the holistic daemon (new)", runJoin)
}

// joinCell times q join queries under one forced strategy: every query
// counts the matching pairs, every fourth also sums a right-side
// payload, and the folds accumulate into a cross-strategy checksum.
func joinCell(lr *query.Runner, j *query.Join, strat query.JoinStrategy, q int) (perQuery time.Duration, checksum int64, err error) {
	lr.SetJoinStrategy(strat)
	defer lr.SetJoinStrategy(query.JoinAuto)
	if _, err := j.Count(); err != nil { // warm the pools
		return 0, 0, err
	}
	start := time.Now()
	for i := 0; i < q; i++ {
		n, err := j.Count()
		if err != nil {
			return 0, 0, err
		}
		checksum += n
		if i%4 == 3 {
			s, err := j.Sum(join.Right, attrName(1))
			if err != nil {
				return 0, 0, err
			}
			checksum += s
		}
	}
	return time.Since(start) / time.Duration(q), checksum, nil
}

// runJoin is the join experiment: an M:N equi-join between two
// relations whose join keys the holistic daemons refine in the
// background. The first query can only hash — and it admits both join
// attributes to the daemons (PredicateSink), starting refinement. Once
// background cracking has shrunk both key columns' clusters below the
// merge join's per-pair accumulator bound, the index-clustered merge
// join walks both indexes in key order with no hash table — the
// experiment shows it overtaking the hash join, which is the
// cross-relation payoff of holistic indexing.
func runJoin(p Params) (*Result, error) {
	keys := p.ColumnSize / 2
	if keys < 64 {
		keys = 64
	}
	lk, rk := workload.GenerateJoin(workload.JoinConfig{
		LeftRows: p.ColumnSize, RightRows: p.ColumnSize,
		Keys: keys, Overlap: 0.9, Fan: workload.FanManyToMany, Seed: p.Seed,
	})
	mkTable := func(name string, jk []int64, seed int64) *engine.Table {
		t := engine.NewTable(name)
		t.MustAddColumn(column.New(attrName(0), jk))
		t.MustAddColumn(column.New(attrName(1), workload.UniformColumn(len(jk), p.Domain, seed)))
		return t
	}
	mkExec := func(t *engine.Table) *engine.HolisticExecutor {
		return engine.NewHolisticExecutor(t, engine.HolisticConfig{
			Cracking: cracking.Config{
				Kernel:          cracking.KernelVectorized,
				ParallelWorkers: p.Threads,
				WithRows:        true, // the key-order walks reconstruct rows
				Seed:            p.Seed,
			},
			Daemon: holistic.Config{
				Interval:    p.Interval,
				Refinements: p.Refinements,
				Seed:        p.Seed,
			},
			L1Values:    p.L1Values,
			Contexts:    p.Threads,
			UserThreads: p.Threads,
		})
	}
	lt := mkTable("L", lk, p.Seed+1)
	rt := mkTable("R", rk, p.Seed+2)
	lExec, rExec := mkExec(lt), mkExec(rt)
	defer lExec.Close()
	defer rExec.Close()
	lr := query.New(lt, lExec, p.Threads)
	rr := query.New(rt, rExec, p.Threads)
	met := obs.NewQueryMetrics()
	lr.SetMetrics(met)

	// Dense pre-join filters (90% of each side qualifies): selective
	// enough to exercise the selection pipeline, dense enough for the
	// merge strategy's profitability rule.
	lPreds := []query.Predicate{{Attr: attrName(1), Lo: 0, Hi: 9 * p.Domain / 10}}
	rPreds := []query.Predicate{{Attr: attrName(1), Lo: p.Domain / 10, Hi: p.Domain}}
	j := lr.Join(rr, attrName(0), attrName(0), lPreds, rPreds)
	q := p.Queries / 20
	if q < 4 {
		q = 4
	}

	res := &Result{Headers: []string{"phase", "strategy", "µs/q", "checksum"}}
	addCell := func(phase string, strat query.JoinStrategy, label string) (time.Duration, int64, error) {
		t, sum, err := joinCell(lr, j, strat, q)
		if err != nil {
			return 0, 0, err
		}
		res.AddRow(phase, label, us(t), fmt.Sprintf("%d", sum))
		return t, sum, nil
	}

	// The very first join admits both join attributes into the daemons'
	// index spaces, starting refinement. Its physical strategy is not
	// assumed: the strategy timeline (recorded below) reports what auto
	// actually picked — on key domains small relative to the merge-span
	// bound even a barely-cracked index can qualify for the merge path.
	firstStart := time.Now()
	firstN, err := j.Count()
	if err != nil {
		return nil, err
	}
	firstT := time.Since(firstStart)
	res.AddRow("first query", "auto", us(firstT), fmt.Sprintf("%d", firstN))

	_, earlyHash, err := addCell("early", query.JoinHash, "hash")
	if err != nil {
		return nil, err
	}
	if _, earlyAuto, err := addCell("early", query.JoinAuto, "auto"); err != nil {
		return nil, err
	} else if earlyAuto != earlyHash {
		return nil, fmt.Errorf("join: early auto checksum %d != hash %d", earlyAuto, earlyHash)
	}

	// Idle window: wait until both join-key indexes have refined below
	// a comfortable fraction of the merge join's per-pair accumulator
	// bound, or time out (the result then records how far it got).
	wantSpan := float64(join.DefaultMergeSpan) / 8
	deadline := time.Now().Add(100 * p.Interval)
	if min := 3 * time.Second; time.Until(deadline) > min {
		deadline = time.Now().Add(min)
	}
	converged := false
	for time.Now().Before(deadline) {
		ls, lok := lExec.KeyOrderSpan(attrName(0))
		rs, rok := rExec.KeyOrderSpan(attrName(0))
		if lok && rok && ls <= wantSpan && rs <= wantSpan {
			converged = true
			break
		}
		time.Sleep(p.Interval)
	}

	hashT, hashSum, err := addCell("refined", query.JoinHash, "hash")
	if err != nil {
		return nil, err
	}
	mergeT, mergeSum, err := addCell("refined", query.JoinMerge, "merge")
	if err != nil {
		return nil, err
	}
	_, autoSum, err := addCell("refined", query.JoinAuto, "auto")
	if err != nil {
		return nil, err
	}
	if mergeSum != hashSum || autoSum != hashSum || hashSum != earlyHash {
		return nil, fmt.Errorf("join: refined checksums diverge (hash %d, merge %d, auto %d, early %d)",
			hashSum, mergeSum, autoSum, earlyHash)
	}

	snap := met.Snapshot()
	res.AddPercentiles("join", snap.Latency["join"])
	res.StrategyTimeline = snap.Timeline

	lSpan, _ := lExec.KeyOrderSpan(attrName(0))
	rSpan, _ := rExec.KeyOrderSpan(attrName(0))
	res.AddNote("workload: L ⋈ R on %s (M:N, %d-key pool, 0.9 overlap) over 2×%d rows, count+sum, 90%% filters; %d queries per cell",
		attrName(0), keys, p.ColumnSize, q)
	res.AddNote("daemons refined the join-key indexes to cluster spans %.0f / %.0f values (refinements %d + %d, converged %v)",
		lSpan, rSpan, lExec.Daemon.Refinements(), rExec.Daemon.Refinements(), converged)
	if mergeT < hashT {
		res.AddNote("refined: index-clustered merge join %.2fx faster than the hash join — the cross-relation holistic payoff", float64(hashT)/float64(mergeT))
	} else {
		res.AddNote("refined: merge %.1fµs vs hash %.1fµs — refinement has not paid off at this scale", float64(mergeT.Nanoseconds())/1000, float64(hashT.Nanoseconds())/1000)
	}
	return res, nil
}
