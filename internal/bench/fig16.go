package bench

import (
	"fmt"
	"time"

	"holistic/internal/engine"
	"holistic/internal/holistic"
	"holistic/internal/stats"
	"holistic/internal/workload"
)

func init() {
	register("fig16", "Updates: HFLV and LFHV scenarios (Figure 16)", runFig16)
	register("fig17", "Varying number of concurrent clients (Figure 17)", runFig17)
}

// runFig16 interleaves 500 range selects with 500 inserts on a single
// attribute, in the two arrival patterns of Section 5.7. The 11th query
// arrives after an idle gap (paper: 20 seconds; scaled to tuning
// intervals here) during which only holistic indexing can work.
func runFig16(p Params) (*Result, error) {
	const queries = 500
	qs := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: queries, Domain: p.Domain,
		Attrs: 1, OneSided: true, Seed: p.Seed,
	})

	type mode struct {
		label    string
		holistic bool
	}
	modes := []mode{{"adaptive indexing", false}, {"holistic indexing", true}}

	run := func(scenario workload.UpdateScenario, m mode) (time.Duration, error) {
		batches := workload.InsertBatches(scenario, queries, p.Domain, p.Seed+3)
		next := 0
		pp := p
		pp.Attrs = 1
		t := buildTable(pp)

		var exec engine.Executor
		var ins engine.Inserter
		if m.holistic {
			// Single worker refining only during idle time, as in the
			// paper's update experiment.
			h := engine.NewHolisticExecutor(t, engine.HolisticConfig{
				Cracking: pvdcConfig(p, 1),
				Daemon: holistic.Config{
					Interval:    p.Interval,
					Refinements: p.Refinements,
					MaxWorkers:  1,
					Strategy:    stats.W4,
					Seed:        p.Seed,
				},
				L1Values:    p.L1Values,
				Contexts:    1,
				UserThreads: 1,
			})
			exec, ins = h, h
		} else {
			a := engine.NewAdaptiveExecutor(t, pvdcConfig(p, 1), "")
			exec, ins = a, a
		}
		defer exec.Close()

		var cost time.Duration
		for i, q := range qs {
			if i == 10 {
				// Idle gap after the 10th query (paper: 20 s).
				time.Sleep(20 * p.Interval)
			}
			start := time.Now()
			if _, err := exec.Count(attrName(0), q.Lo, q.Hi); err != nil {
				return 0, err
			}
			cost += time.Since(start)
			for next < len(batches) && batches[next].AfterQuery == i+1 {
				for _, v := range batches[next].Values {
					if err := ins.Insert(attrName(0), v); err != nil {
						return 0, err
					}
				}
				next++
			}
		}
		return cost, nil
	}

	r := &Result{Headers: []string{"scenario", "adaptive (s)", "holistic (s)"}}
	for _, sc := range []workload.UpdateScenario{workload.HFLV, workload.LFHV} {
		row := []string{sc.String()}
		for _, m := range modes {
			cost, err := run(sc, m)
			if err != nil {
				return nil, err
			}
			row = append(row, secs(cost))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper shape: holistic keeps ~50%% advantage under both update scenarios; workers also merge pending inserts")
	return r, nil
}

func runFig17(p Params) (*Result, error) {
	queries := p.Queries
	if queries > 1024 {
		queries = 1024
	}
	qs := workload.Generate(workload.Config{
		Pattern: workload.Random, Queries: queries, Domain: p.Domain,
		Attrs: p.Attrs, OneSided: true, Seed: p.Seed,
	})

	var clientCounts []int
	for c := 1; c <= p.Threads*2; c *= 2 {
		clientCounts = append(clientCounts, c)
	}

	r := &Result{Headers: []string{"clients", "PVDC (s)", "HI (s)", "HI activations"}}
	for _, clients := range clientCounts {
		// PVDC: user queries own every context.
		t := buildTable(p)
		perClient := p.Threads / clients
		if perClient < 1 {
			perClient = 1
		}
		pv := engine.NewAdaptiveExecutor(t, pvdcConfig(p, perClient), "")
		start := time.Now()
		if _, err := engine.RunQueries(pv, qs, attrName, clients); err != nil {
			return nil, err
		}
		pvdcCost := time.Since(start)
		pv.Close()

		// HI: each client's query gets half the PVDC thread share (the
		// paper's u8w8x2-style splits); the load accountant sees the
		// clients, so with clients >= contexts the daemon detects
		// saturation and stays out of the way.
		hiPerClient := perClient / 2
		if hiPerClient < 1 {
			hiPerClient = 1
		}
		t2 := buildTable(p)
		hi := engine.NewHolisticExecutor(t2, engine.HolisticConfig{
			Cracking: pvdcConfig(p, hiPerClient),
			Daemon: holistic.Config{
				Interval:    p.Interval,
				Refinements: p.Refinements,
				Seed:        p.Seed,
			},
			L1Values:    p.L1Values,
			Contexts:    p.Threads,
			UserThreads: hiPerClient,
			StatsSeed:   p.Seed,
		})
		start = time.Now()
		if _, err := engine.RunQueries(hi, qs, attrName, clients); err != nil {
			return nil, err
		}
		hiCost := time.Since(start)
		activations := int(hi.Daemon.CycleTotals().Cycles)
		hi.Close()

		r.AddRow(fmt.Sprintf("%d", clients), secs(pvdcCost), secs(hiCost), fmt.Sprintf("%d", activations))
	}
	r.AddNote("paper shape: HI wins with few clients; with clients >= contexts the load monitor suppresses workers and the two converge")
	return r, nil
}
