package bench

import (
	"fmt"
	"os"
	"time"

	holistic "holistic"
	"holistic/internal/workload"
)

func init() {
	register("recover", "Crash recovery: reopening with the persisted adaptive state vs data-only recovery (new)", runRecover)
}

// runRecover measures what persisting the adaptive state is worth. One
// store is built, cracked by a conjunctive workload, checkpointed and
// closed; it is then reopened twice from the same directory — once
// restoring the snapshot's cracker pieces and once with
// DataOnlyRecovery, which keeps the data but discards the index state.
// The experiment reports open time, the first conjunctive query, and
// the time to drain the whole workload again from each starting point:
// the restored store answers its first query from converged pieces
// while the data-only store pays the from-scratch cracking tax.
func runRecover(p Params) (*Result, error) {
	dir := p.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "holistic-recover-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	cfg := holistic.Config{
		Mode:             holistic.ModeAdaptive,
		Threads:          p.Threads,
		Seed:             p.Seed,
		SnapshotInterval: -1, // checkpoint explicitly; no background timer
	}
	qs := workload.GenerateConjunctive(workload.ConjConfig{
		Config: workload.Config{
			Pattern: workload.Random,
			Queries: p.Queries,
			Domain:  p.Domain,
			Attrs:   2,
			Seed:    p.Seed,
		},
		PredDist: []float64{0, 1}, // every query is a two-conjunct AND
	})

	// Build, crack, persist.
	s, err := holistic.OpenStore(dir, cfg)
	if err != nil {
		return nil, err
	}
	for a := 0; a < 2; a++ {
		vals := workload.UniformColumn(p.ColumnSize, p.Domain, p.Seed+int64(a))
		if err := s.AddIntColumn(attrName(a), vals); err != nil {
			s.Close()
			return nil, err
		}
	}
	var checksum int64
	if checksum, err = drainConj(s, qs); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.Checkpoint(); err != nil {
		s.Close()
		return nil, err
	}
	s.Close()

	res := &Result{
		Headers: []string{"recovery", "open_ms", "first_query_ms", "workload_ms", "checksum"},
	}
	variants := []struct {
		label    string
		dataOnly bool
	}{
		{"restored", false},
		{"data-only", true},
	}
	firstQ := make([]time.Duration, len(variants))
	for i, v := range variants {
		vcfg := cfg
		vcfg.DataOnlyRecovery = v.dataOnly
		start := time.Now()
		rs, err := holistic.OpenStore(dir, vcfg)
		if err != nil {
			return nil, err
		}
		openTime := time.Since(start)

		qb := rs.Query()
		for _, pr := range qs[0].Preds {
			qb = qb.Where(attrName(pr.Attr), pr.Lo, pr.Hi)
		}
		start = time.Now()
		if _, err := qb.Count(); err != nil {
			rs.Close()
			return nil, err
		}
		firstQ[i] = time.Since(start)

		start = time.Now()
		sum, err := drainConj(rs, qs)
		if err != nil {
			rs.Close()
			return nil, err
		}
		workloadTime := time.Since(start)
		if sum != checksum {
			rs.Close()
			return nil, fmt.Errorf("recover: %s replay checksum %d != original %d", v.label, sum, checksum)
		}
		rs.Close()
		res.AddRow(v.label, ms(openTime), ms(firstQ[i]), ms(workloadTime), fmt.Sprint(sum))
	}
	if firstQ[0] > 0 {
		res.AddNote("first-query speedup restored vs data-only: %.1fx",
			float64(firstQ[1])/float64(firstQ[0]))
	}
	return res, nil
}

// drainConj runs the conjunctive workload against a store, returning a
// result checksum that must be invariant across recovery variants.
func drainConj(s *holistic.Store, qs []workload.ConjQuery) (int64, error) {
	var checksum int64
	for _, q := range qs {
		qb := s.Query()
		for _, p := range q.Preds {
			qb = qb.Where(attrName(p.Attr), p.Lo, p.Hi)
		}
		n, err := qb.Count()
		if err != nil {
			return 0, err
		}
		checksum += int64(n)
	}
	return checksum, nil
}
