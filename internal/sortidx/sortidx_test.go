package sortidx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"holistic/internal/column"
)

func randVals(n int, seed int64, domain int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(domain)
	}
	return vals
}

func TestBuildSortsValues(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		base := randVals(50_000, int64(workers), 1<<30)
		s := Build("a", base, workers)
		if s.Len() != len(base) {
			t.Fatalf("workers=%d: Len() = %d, want %d", workers, s.Len(), len(base))
		}
		vals := s.Values()
		if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
			t.Fatalf("workers=%d: result not sorted", workers)
		}
		// Must be a permutation: compare against stdlib sort.
		want := append([]int64(nil), base...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("workers=%d: value %d differs: %d vs %d", workers, i, vals[i], want[i])
			}
		}
	}
}

func TestBuildSmallAndEmpty(t *testing.T) {
	s := Build("a", nil, 4)
	if s.Len() != 0 {
		t.Errorf("empty build Len() = %d", s.Len())
	}
	if start, end := s.SelectRange(0, 10); start != 0 || end != 0 {
		t.Errorf("select on empty = [%d,%d)", start, end)
	}
	s2 := Build("a", []int64{3, 1, 2}, 8)
	if got := s2.Values(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("small build = %v", got)
	}
}

func TestBuildWithRowsAlignment(t *testing.T) {
	base := randVals(30_000, 7, 1000)
	s := BuildWithRows("a", base, 4)
	vals := s.Values()
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
		t.Fatal("not sorted")
	}
	rows := s.Rows(0, s.Len())
	for i, r := range rows {
		if base[r] != vals[i] {
			t.Fatalf("row %d points at base value %d but sorted value is %d", r, base[r], vals[i])
		}
	}
}

func TestRowsNilWithoutRowids(t *testing.T) {
	s := Build("a", []int64{1, 2, 3}, 1)
	if s.Rows(0, 3) != nil {
		t.Error("Rows() non-nil for a column built without rowids")
	}
}

func TestSelectRangeMatchesScan(t *testing.T) {
	base := randVals(20_000, 9, 10_000)
	s := Build("a", base, 4)
	rng := rand.New(rand.NewSource(10))
	for q := 0; q < 200; q++ {
		lo := rng.Int63n(10_000)
		hi := lo + rng.Int63n(10_000-lo) + 1
		if got, want := s.CountRange(lo, hi), column.CountRange(base, lo, hi); got != want {
			t.Fatalf("[%d,%d): CountRange = %d, want %d", lo, hi, got, want)
		}
		if got, want := s.SumRange(lo, hi), column.SumRange(base, lo, hi); got != want {
			t.Fatalf("[%d,%d): SumRange = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestSelectRangeBoundaries(t *testing.T) {
	s := Build("a", []int64{10, 20, 20, 30}, 1)
	cases := []struct {
		lo, hi     int64
		start, end int
	}{
		{0, 5, 0, 0},    // below domain
		{0, 15, 0, 1},   // includes 10
		{20, 21, 1, 3},  // duplicates
		{10, 31, 0, 4},  // everything
		{31, 100, 4, 4}, // above domain
		{20, 20, 1, 1},  // empty range
	}
	for _, c := range cases {
		start, end := s.SelectRange(c.lo, c.hi)
		if start != c.start || end != c.end {
			t.Errorf("SelectRange(%d,%d) = [%d,%d), want [%d,%d)", c.lo, c.hi, start, end, c.start, c.end)
		}
	}
}

func TestQuickParallelSortMatchesStdlib(t *testing.T) {
	check := func(vals []int64, workers uint8) bool {
		w := int(workers%9) + 1
		s := Build("q", vals, w)
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := s.Values()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLargeParallelSort(t *testing.T) {
	check := func(seed int64, workers uint8) bool {
		w := int(workers%8) + 1
		base := randVals(10_000+int(seed%5000+5000)%5000, seed, 1<<40)
		s := Build("q", base, w)
		vals := s.Values()
		return sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) &&
			len(vals) == len(base)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytes(t *testing.T) {
	if got := Build("a", make([]int64, 10), 1).SizeBytes(); got != 80 {
		t.Errorf("SizeBytes = %d, want 80", got)
	}
	if got := BuildWithRows("a", make([]int64, 10), 1).SizeBytes(); got != 120 {
		t.Errorf("SizeBytes with rows = %d, want 120", got)
	}
}

func BenchmarkParallelSort1M(b *testing.B) {
	base := randVals(1<<20, 1, 1<<30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build("a", base, 4)
	}
}

func BenchmarkBinarySearchSelect(b *testing.B) {
	s := Build("a", randVals(1<<20, 1, 1<<30), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountRange(1<<28, 1<<29)
	}
}
