package sortidx

import "fmt"

// RowIDs exposes the full rowid array in sorted-value order, or nil
// when the column was built without rows. Callers must treat it as
// read-only; the durable layer copies it into a snapshot.
func (s *SortedColumn) RowIDs() []uint32 { return s.rows }

// Restore rebuilds a sorted column from persisted arrays, taking
// ownership of the slices. Sortedness is validated so a corrupt or
// stale snapshot is rejected and the caller can fall back to re-sorting
// the base data.
func Restore(name string, vals []int64, rows []uint32) (*SortedColumn, error) {
	if rows != nil && len(rows) != len(vals) {
		return nil, fmt.Errorf("sortidx: restore %s: rowid array mismatch", name)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			return nil, fmt.Errorf("sortidx: restore %s: values not sorted at %d", name, i)
		}
	}
	return &SortedColumn{name: name, vals: vals, rows: rows}, nil
}
