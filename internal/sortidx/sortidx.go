// Package sortidx implements the full-indexing substrate used by the
// offline and online indexing baselines (Section 5.1 of the paper): a
// parallel multi-way merge sort that stands in for the NUMA-aware m-way
// sort of Balkesen et al. (PVLDB 2013), and binary-search range selects
// over the sorted result.
//
// Offline indexing pre-sorts every column before queries arrive; online
// indexing sorts the relevant columns after a monitoring epoch. In both
// cases the sort is the dominant upfront cost the paper charges to the
// first (respectively the epoch-ending) query, and all later queries are
// answered with O(log N) binary search.
package sortidx

import (
	"sort"
	"sync"
)

// SortedColumn is a fully sorted copy of a base column, optionally
// carrying the base row id of each value for late tuple reconstruction.
type SortedColumn struct {
	name string
	vals []int64
	rows []uint32 // nil when built without rowids
}

// pair travels through the sort when rowids are carried.
type pair struct {
	v int64
	r uint32
}

// Build sorts a copy of base with workers goroutines and returns the
// sorted column. workers <= 1 sorts sequentially.
func Build(name string, base []int64, workers int) *SortedColumn {
	vals := append([]int64(nil), base...)
	parallelSort(vals, workers)
	return &SortedColumn{name: name, vals: vals}
}

// BuildWithRows sorts a copy of base, keeping base row ids aligned with
// the sorted values.
func BuildWithRows(name string, base []int64, workers int) *SortedColumn {
	pairs := make([]pair, len(base))
	for i, v := range base {
		pairs[i] = pair{v, uint32(i)}
	}
	parallelSortPairs(pairs, workers)
	vals := make([]int64, len(pairs))
	rows := make([]uint32, len(pairs))
	for i, p := range pairs {
		vals[i] = p.v
		rows[i] = p.r
	}
	return &SortedColumn{name: name, vals: vals, rows: rows}
}

// Name returns the attribute name.
func (s *SortedColumn) Name() string { return s.name }

// HasRows reports whether the column carries base row ids (built with
// BuildWithRows), i.e. whether Rows can reconstruct positions.
func (s *SortedColumn) HasRows() bool { return s.rows != nil }

// Len returns the number of values.
func (s *SortedColumn) Len() int { return len(s.vals) }

// Values exposes the sorted array (read-only for callers).
func (s *SortedColumn) Values() []int64 { return s.vals }

// SizeBytes reports the materialized size for storage accounting.
func (s *SortedColumn) SizeBytes() int64 {
	return int64(len(s.vals))*8 + int64(len(s.rows))*4
}

// SelectRange returns the position range [start, end) of values in
// [lo, hi) via two binary searches: the O(log N) select of a full index.
func (s *SortedColumn) SelectRange(lo, hi int64) (start, end int) {
	start = sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= lo })
	end = sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= hi })
	return start, end
}

// CountRange returns the number of values in [lo, hi).
func (s *SortedColumn) CountRange(lo, hi int64) int {
	start, end := s.SelectRange(lo, hi)
	return end - start
}

// SumRange sums the values in [lo, hi).
func (s *SortedColumn) SumRange(lo, hi int64) int64 {
	start, end := s.SelectRange(lo, hi)
	var sum int64
	for _, v := range s.vals[start:end] {
		sum += v
	}
	return sum
}

// MinMaxRange returns the smallest and largest value in [lo, hi); ok is
// false when the range is empty. On a sorted column both are edge reads —
// no data traversal at all.
func (s *SortedColumn) MinMaxRange(lo, hi int64) (mn, mx int64, ok bool) {
	start, end := s.SelectRange(lo, hi)
	if start >= end {
		return 0, 0, false
	}
	return s.vals[start], s.vals[end-1], true
}

// Rows returns the base row ids of positions [start, end); nil when the
// column was built without rowids.
func (s *SortedColumn) Rows(start, end int) []uint32 {
	if s.rows == nil {
		return nil
	}
	return s.rows[start:end]
}

// parallelSort sorts vals in place using a multi-way parallel merge sort:
// the array is cut into `workers` runs, each sorted concurrently with the
// standard library's introsort, then merged pairwise in parallel rounds.
func parallelSort(vals []int64, workers int) {
	n := len(vals)
	if workers < 2 || n < 4096 {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return
	}
	if workers > n {
		workers = n
	}
	// Round worker count down to a power of two so merge rounds pair up.
	for workers&(workers-1) != 0 {
		workers--
	}

	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * n / workers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			seg := vals[lo:hi]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()

	// Merge rounds: runs double in width each round.
	buf := make([]int64, n)
	src, dst := vals, buf
	runs := bounds
	for len(runs) > 2 {
		nextRuns := make([]int, 0, (len(runs)+1)/2+1)
		var mg sync.WaitGroup
		for i := 0; i+2 < len(runs); i += 2 {
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(runs[i], runs[i+1], runs[i+2])
			nextRuns = append(nextRuns, runs[i])
		}
		// Odd trailing run copies through unchanged.
		if (len(runs)-1)%2 == 1 {
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			copy(dst[lo:hi], src[lo:hi])
			nextRuns = append(nextRuns, lo)
		}
		nextRuns = append(nextRuns, n)
		mg.Wait()
		src, dst = dst, src
		runs = nextRuns
	}
	if &src[0] != &vals[0] {
		copy(vals, src)
	}
}

func mergeInto(dst, a, b []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// parallelSortPairs mirrors parallelSort for (value, rowid) pairs.
func parallelSortPairs(pairs []pair, workers int) {
	n := len(pairs)
	if workers < 2 || n < 4096 {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		return
	}
	if workers > n {
		workers = n
	}
	for workers&(workers-1) != 0 {
		workers--
	}
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * n / workers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			seg := pairs[lo:hi]
			sort.Slice(seg, func(i, j int) bool { return seg[i].v < seg[j].v })
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()

	buf := make([]pair, n)
	src, dst := pairs, buf
	runs := bounds
	for len(runs) > 2 {
		nextRuns := make([]int, 0, (len(runs)+1)/2+1)
		var mg sync.WaitGroup
		for i := 0; i+2 < len(runs); i += 2 {
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergePairsInto(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(runs[i], runs[i+1], runs[i+2])
			nextRuns = append(nextRuns, runs[i])
		}
		if (len(runs)-1)%2 == 1 {
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			copy(dst[lo:hi], src[lo:hi])
			nextRuns = append(nextRuns, lo)
		}
		nextRuns = append(nextRuns, n)
		mg.Wait()
		src, dst = dst, src
		runs = nextRuns
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}

func mergePairsInto(dst, a, b []pair) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].v <= b[j].v {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}
