// Package avl implements a self-balancing AVL search tree keyed by int64.
//
// The tree is the backing structure of the cracker index (Section 3.2 of
// the paper: "The partitioning information for each cracker column is
// maintained in an AVL-tree"). Besides ordered insertion and deletion it
// supports the navigation queries cracking needs: the greatest key not
// larger than a probe (Floor) and the smallest key not smaller than a
// probe (Ceiling), plus in-order traversal between bounds.
//
// The implementation is not safe for concurrent use; callers synchronise
// (the cracker index wraps the tree in a short-critical-section RWMutex).
package avl

// Value is the payload stored at each tree node. The cracker index stores
// the piece boundary position and bound inclusivity for the key's pivot
// value; the tree itself treats it as opaque.
type Value any

// node is a single AVL tree node.
type node struct {
	key         int64
	value       Value
	left, right *node
	height      int8
}

// Tree is an ordered map from int64 keys to arbitrary values with
// guaranteed O(log n) insert, delete and search.
//
// The zero value is an empty tree ready for use.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree. Equivalent to &Tree{} but reads better at
// call sites.
func New() *Tree { return &Tree{} }

// Len reports the number of keys stored in the tree.
func (t *Tree) Len() int { return t.size }

func height(n *node) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *node) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func balanceFactor(n *node) int {
	return int(height(n.left)) - int(height(n.right))
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	fix(y)
	fix(x)
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	fix(x)
	fix(y)
	return y
}

// rebalance restores the AVL invariant at n after an insert or delete in
// one of its subtrees and returns the (possibly new) subtree root.
func rebalance(n *node) *node {
	fix(n)
	bf := balanceFactor(n)
	switch {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Insert stores value under key, replacing any existing value. It reports
// whether the key was newly inserted (false means replaced).
func (t *Tree) Insert(key int64, value Value) bool {
	var inserted bool
	t.root, inserted = insert(t.root, key, value)
	if inserted {
		t.size++
	}
	return inserted
}

func insert(n *node, key int64, value Value) (*node, bool) {
	if n == nil {
		return &node{key: key, value: value, height: 1}, true
	}
	var inserted bool
	switch {
	case key < n.key:
		n.left, inserted = insert(n.left, key, value)
	case key > n.key:
		n.right, inserted = insert(n.right, key, value)
	default:
		n.value = value
		return n, false
	}
	return rebalance(n), inserted
}

// Delete removes key from the tree, reporting whether it was present.
func (t *Tree) Delete(key int64) bool {
	var deleted bool
	t.root, deleted = remove(t.root, key)
	if deleted {
		t.size--
	}
	return deleted
}

func remove(n *node, key int64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case key < n.key:
		n.left, deleted = remove(n.left, key)
	case key > n.key:
		n.right, deleted = remove(n.right, key)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Two children: replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.key, n.value = succ.key, succ.value
		n.right, _ = remove(n.right, succ.key)
	}
	return rebalance(n), deleted
}

// Get returns the value stored under key and whether the key exists.
func (t *Tree) Get(key int64) (Value, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.value, true
		}
	}
	return nil, false
}

// Floor returns the largest key <= probe and its value. ok is false when
// every key in the tree is greater than probe (or the tree is empty).
func (t *Tree) Floor(probe int64) (key int64, value Value, ok bool) {
	n := t.root
	for n != nil {
		switch {
		case probe < n.key:
			n = n.left
		case probe > n.key:
			key, value, ok = n.key, n.value, true
			n = n.right
		default:
			return n.key, n.value, true
		}
	}
	return key, value, ok
}

// Ceiling returns the smallest key >= probe and its value. ok is false
// when every key in the tree is smaller than probe (or the tree is empty).
func (t *Tree) Ceiling(probe int64) (key int64, value Value, ok bool) {
	n := t.root
	for n != nil {
		switch {
		case probe > n.key:
			n = n.right
		case probe < n.key:
			key, value, ok = n.key, n.value, true
			n = n.left
		default:
			return n.key, n.value, true
		}
	}
	return key, value, ok
}

// Min returns the smallest key and its value; ok is false on an empty tree.
func (t *Tree) Min() (key int64, value Value, ok bool) {
	n := t.root
	if n == nil {
		return 0, nil, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.value, true
}

// Max returns the largest key and its value; ok is false on an empty tree.
func (t *Tree) Max() (key int64, value Value, ok bool) {
	n := t.root
	if n == nil {
		return 0, nil, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, n.value, true
}

// Successor returns the smallest key strictly greater than probe.
func (t *Tree) Successor(probe int64) (key int64, value Value, ok bool) {
	n := t.root
	for n != nil {
		if probe < n.key {
			key, value, ok = n.key, n.value, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return key, value, ok
}

// Predecessor returns the largest key strictly smaller than probe.
func (t *Tree) Predecessor(probe int64) (key int64, value Value, ok bool) {
	n := t.root
	for n != nil {
		if probe > n.key {
			key, value, ok = n.key, n.value, true
			n = n.right
		} else {
			n = n.left
		}
	}
	return key, value, ok
}

// Ascend calls fn on every (key, value) pair in ascending key order until
// fn returns false.
func (t *Tree) Ascend(fn func(key int64, value Value) bool) {
	ascend(t.root, fn)
}

func ascend(n *node, fn func(int64, Value) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.value) {
		return false
	}
	return ascend(n.right, fn)
}

// AscendRange calls fn on every pair with lo <= key < hi in ascending
// order until fn returns false.
func (t *Tree) AscendRange(lo, hi int64, fn func(key int64, value Value) bool) {
	ascendRange(t.root, lo, hi, fn)
}

func ascendRange(n *node, lo, hi int64, fn func(int64, Value) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= lo {
		if !ascendRange(n.left, lo, hi, fn) {
			return false
		}
	}
	if n.key >= lo && n.key < hi {
		if !fn(n.key, n.value) {
			return false
		}
	}
	if n.key < hi {
		return ascendRange(n.right, lo, hi, fn)
	}
	return true
}

// FloorWhere locates the node with the greatest key for which pred holds,
// assuming pred is monotone over the key order (true for a prefix of the
// keys, then false). If such a node exists, visit is called once with its
// key and value.
//
// The cracker index uses this to find the piece containing a *position*:
// boundary keys and boundary positions are ordered identically, so
// "piece start <= pos" is a monotone predicate over the keys.
func (t *Tree) FloorWhere(pred func(key int64, value Value) bool, visit func(key int64, value Value)) {
	n := t.root
	var best *node
	for n != nil {
		if pred(n.key, n.value) {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best != nil {
		visit(best.key, best.value)
	}
}

// Keys returns all keys in ascending order. Intended for tests and
// debugging; allocates a fresh slice.
func (t *Tree) Keys() []int64 {
	keys := make([]int64, 0, t.size)
	t.Ascend(func(k int64, _ Value) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Height returns the height of the tree (0 for empty). Exposed for tests
// asserting the AVL balance guarantee.
func (t *Tree) Height() int { return int(height(t.root)) }

// checkInvariants walks the tree verifying AVL balance and BST ordering.
// It returns false on the first violation. Used by tests.
func (t *Tree) checkInvariants() bool {
	ok := true
	var walk func(n *node, lo, hi int64, haveLo, haveHi bool) int8
	walk = func(n *node, lo, hi int64, haveLo, haveHi bool) int8 {
		if n == nil {
			return 0
		}
		if haveLo && n.key <= lo {
			ok = false
		}
		if haveHi && n.key >= hi {
			ok = false
		}
		hl := walk(n.left, lo, n.key, haveLo, true)
		hr := walk(n.right, n.key, hi, true, haveHi)
		if d := int(hl) - int(hr); d < -1 || d > 1 {
			ok = false
		}
		h := hl
		if hr > hl {
			h = hr
		}
		if n.height != h+1 {
			ok = false
		}
		return h + 1
	}
	walk(t.root, 0, 0, false, false)
	return ok
}
