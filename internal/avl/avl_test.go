package avl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(5); ok {
		t.Error("Get on empty tree reported ok")
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Error("Floor on empty tree reported ok")
	}
	if _, _, ok := tr.Ceiling(5); ok {
		t.Error("Ceiling on empty tree reported ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree reported ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree reported ok")
	}
	if tr.Delete(1) {
		t.Error("Delete on empty tree reported true")
	}
	if tr.Height() != 0 {
		t.Errorf("Height() = %d, want 0", tr.Height())
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		if !tr.Insert(i, i*10) {
			t.Fatalf("Insert(%d) reported replacement on fresh key", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", tr.Len())
	}
	for i := int64(0); i < 100; i++ {
		v, ok := tr.Get(i)
		if !ok || v.(int64) != i*10 {
			t.Fatalf("Get(%d) = %v, %v; want %d, true", i, v, ok, i*10)
		}
	}
	if _, ok := tr.Get(100); ok {
		t.Error("Get(100) reported ok for absent key")
	}
}

func TestInsertReplaces(t *testing.T) {
	tr := New()
	tr.Insert(7, "old")
	if tr.Insert(7, "new") {
		t.Error("second Insert of same key reported fresh insertion")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tr.Len())
	}
	v, _ := tr.Get(7)
	if v.(string) != "new" {
		t.Fatalf("Get(7) = %v, want new", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	keys := []int64{50, 30, 70, 20, 40, 60, 80, 10, 25, 35, 45}
	for _, k := range keys {
		tr.Insert(k, k)
	}
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) reported absent", k)
		}
		if tr.Delete(k) {
			t.Fatalf("second Delete(%d) reported present", k)
		}
		if !tr.checkInvariants() {
			t.Fatalf("invariants violated after deleting %d", k)
		}
		if got, want := tr.Len(), len(keys)-i-1; got != want {
			t.Fatalf("Len() = %d, want %d", got, want)
		}
	}
}

func TestFloorCeiling(t *testing.T) {
	tr := New()
	for _, k := range []int64{10, 20, 30, 40} {
		tr.Insert(k, k)
	}
	cases := []struct {
		probe           int64
		floor, ceiling  int64
		floorOK, ceilOK bool
	}{
		{5, 0, 10, false, true},
		{10, 10, 10, true, true},
		{15, 10, 20, true, true},
		{25, 20, 30, true, true},
		{40, 40, 40, true, true},
		{45, 40, 0, true, false},
	}
	for _, c := range cases {
		fk, _, fok := tr.Floor(c.probe)
		if fok != c.floorOK || (fok && fk != c.floor) {
			t.Errorf("Floor(%d) = %d,%v; want %d,%v", c.probe, fk, fok, c.floor, c.floorOK)
		}
		ck, _, cok := tr.Ceiling(c.probe)
		if cok != c.ceilOK || (cok && ck != c.ceiling) {
			t.Errorf("Ceiling(%d) = %d,%v; want %d,%v", c.probe, ck, cok, c.ceiling, c.ceilOK)
		}
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	tr := New()
	for _, k := range []int64{10, 20, 30} {
		tr.Insert(k, k)
	}
	if k, _, ok := tr.Successor(10); !ok || k != 20 {
		t.Errorf("Successor(10) = %d,%v; want 20,true", k, ok)
	}
	if k, _, ok := tr.Successor(5); !ok || k != 10 {
		t.Errorf("Successor(5) = %d,%v; want 10,true", k, ok)
	}
	if _, _, ok := tr.Successor(30); ok {
		t.Error("Successor(30) reported ok past max")
	}
	if k, _, ok := tr.Predecessor(30); !ok || k != 20 {
		t.Errorf("Predecessor(30) = %d,%v; want 20,true", k, ok)
	}
	if k, _, ok := tr.Predecessor(35); !ok || k != 30 {
		t.Errorf("Predecessor(35) = %d,%v; want 30,true", k, ok)
	}
	if _, _, ok := tr.Predecessor(10); ok {
		t.Error("Predecessor(10) reported ok below min")
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []int64{42, 7, 99, -3} {
		tr.Insert(k, k)
	}
	if k, _, ok := tr.Min(); !ok || k != -3 {
		t.Errorf("Min() = %d,%v; want -3,true", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 99 {
		t.Errorf("Max() = %d,%v; want 99,true", k, ok)
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, k := range perm {
		tr.Insert(int64(k), k)
	}
	keys := tr.Keys()
	if len(keys) != 500 {
		t.Fatalf("len(Keys()) = %d, want 500", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Keys() not sorted ascending")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := int64(0); i < 10; i++ {
		tr.Insert(i, i)
	}
	var visited int
	tr.Ascend(func(k int64, _ Value) bool {
		visited++
		return k < 4
	})
	if visited != 5 {
		t.Fatalf("visited %d nodes, want 5 (stops when key 4 returns false)", visited)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 20; i++ {
		tr.Insert(i*10, i)
	}
	var got []int64
	tr.AscendRange(35, 90, func(k int64, _ Value) bool {
		got = append(got, k)
		return true
	})
	want := []int64{40, 50, 60, 70, 80}
	if len(got) != len(want) {
		t.Fatalf("AscendRange returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendRange returned %v, want %v", got, want)
		}
	}
}

func TestBalanceHeightBound(t *testing.T) {
	// Sequential insertion is the classic worst case for unbalanced BSTs;
	// an AVL tree must stay within 1.44*log2(n+2).
	tr := New()
	const n = 1 << 14
	for i := int64(0); i < n; i++ {
		tr.Insert(i, nil)
	}
	if !tr.checkInvariants() {
		t.Fatal("invariants violated after sequential insertion")
	}
	if h := tr.Height(); h > 21 { // 1.44*log2(2^14) ~ 20.2
		t.Fatalf("Height() = %d exceeds AVL bound for n=%d", h, n)
	}
}

// modelOp is a randomized operation applied to both the tree and a
// reference map in the property test below.
type modelOp struct {
	Insert bool
	Key    int16 // small domain to force collisions and deletions of present keys
}

func TestQuickTreeMatchesReferenceModel(t *testing.T) {
	check := func(ops []modelOp) bool {
		tr := New()
		ref := map[int64]int64{}
		for i, op := range ops {
			k := int64(op.Key)
			if op.Insert {
				tr.Insert(k, int64(i))
				ref[k] = int64(i)
			} else {
				delete(ref, k)
				tr.Delete(k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if !tr.checkInvariants() {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got.(int64) != v {
				return false
			}
		}
		// Floor/Ceiling agree with a sorted view of the reference keys.
		keys := make([]int64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for probe := int64(-5); probe < 40000; probe += 997 {
			i := sort.Search(len(keys), func(i int) bool { return keys[i] > probe })
			fk, _, fok := tr.Floor(probe)
			if (i > 0) != fok || (fok && fk != keys[i-1]) {
				return false
			}
			j := sort.Search(len(keys), func(i int) bool { return keys[i] >= probe })
			ck, _, cok := tr.Ceiling(probe)
			if (j < len(keys)) != cok || (cok && ck != keys[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHeightLogarithmic(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		n := 1000 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			tr.Insert(rng.Int63n(1<<30), nil)
		}
		// log2(3000) ~ 11.6; AVL bound 1.44*log2(n+2) < 17.
		return tr.Height() <= 17 && tr.checkInvariants()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, b.N)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i], nil)
	}
}

func BenchmarkFloor(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1<<16; i++ {
		tr.Insert(rng.Int63n(1<<30), nil)
	}
	probes := make([]int64, 4096)
	for i := range probes {
		probes[i] = rng.Int63n(1 << 30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Floor(probes[i&4095])
	}
}

func TestFloorWhere(t *testing.T) {
	tr := New()
	// Keys and positions ascend together, mirroring the cracker index.
	positions := map[int64]int{10: 0, 20: 100, 30: 250, 40: 400}
	for k, pos := range positions {
		tr.Insert(k, pos)
	}
	find := func(pos int) (int64, bool) {
		var key int64
		found := false
		tr.FloorWhere(func(_ int64, v Value) bool {
			return v.(int) <= pos
		}, func(k int64, _ Value) {
			key = k
			found = true
		})
		return key, found
	}
	cases := []struct {
		pos int
		key int64
		ok  bool
	}{
		{0, 10, true},
		{99, 10, true},
		{100, 20, true},
		{300, 30, true},
		{400, 40, true},
		{99999, 40, true},
		{-1, 0, false},
	}
	for _, c := range cases {
		key, ok := find(c.pos)
		if ok != c.ok || (ok && key != c.key) {
			t.Errorf("FloorWhere(pos=%d) = %d,%v; want %d,%v", c.pos, key, ok, c.key, c.ok)
		}
	}
}

func TestFloorWhereEmptyTree(t *testing.T) {
	tr := New()
	called := false
	tr.FloorWhere(func(int64, Value) bool { return true }, func(int64, Value) { called = true })
	if called {
		t.Error("FloorWhere visited a node in an empty tree")
	}
}
