// Package ccgi implements mP-CCGI, the modified Parallel-Chunked
// Coarse-Granular Index the paper benchmarks against in Section 5.2: the
// multi-core adaptive indexing algorithm of Alvarez et al. (DaMoN 2014)
// extended — as the paper describes — with result consolidation so that
// selections feed bulk-processing operators from a single contiguous
// array (the technique of hybrid adaptive indexing, Idreos et al.,
// PVLDB 2011).
//
// Shape of the algorithm:
//
//   - The column is split by position into as many chunks as threads;
//     each chunk is an independent cracker column with its own cracker
//     index.
//   - The first query additionally pays a coarse-granular range
//     partitioning of every chunk (cracks at evenly spaced bucket
//     boundaries) — the pre-index step whose cost "penalizes the first
//     set of queries" (Section 5.2).
//   - Every query cracks all chunks in parallel on its own bounds.
//   - Each requested value range is consolidated once into a contiguous
//     array; re-requested ranges reuse the consolidation.
package ccgi

import (
	"sync"

	"holistic/internal/cracking"
)

// Index is one mP-CCGI adaptive index over a single attribute.
type Index struct {
	name    string
	chunks  []*cracking.Column
	offsets []int // offsets[i] is the base position of chunk i's first value
	buckets int

	domainLo, domainHi int64

	mu               sync.Mutex
	prePartitioned   bool
	consolidated     map[[2]int64]struct{}
	consolidatedVals int64
}

// New builds an mP-CCGI index over base using `threads` chunks and a
// coarse pre-partitioning into `buckets` value ranges (buckets <= 1
// disables the pre-index step). cfg configures each chunk's cracker.
func New(name string, base []int64, threads, buckets int, cfg cracking.Config) *Index {
	if threads < 1 {
		threads = 1
	}
	x := &Index{
		name:         name,
		buckets:      buckets,
		consolidated: make(map[[2]int64]struct{}),
	}
	n := len(base)
	chunkLen := (n + threads - 1) / threads
	for start := 0; start < n; start += chunkLen {
		end := start + chunkLen
		if end > n {
			end = n
		}
		x.chunks = append(x.chunks, cracking.New(name, base[start:end], cfg))
		x.offsets = append(x.offsets, start)
	}
	if len(x.chunks) == 0 {
		x.chunks = append(x.chunks, cracking.New(name, nil, cfg))
		x.offsets = append(x.offsets, 0)
	}
	x.domainLo, x.domainHi = x.chunks[0].Domain()
	for _, c := range x.chunks[1:] {
		lo, hi := c.Domain()
		if lo < x.domainLo {
			x.domainLo = lo
		}
		if hi > x.domainHi {
			x.domainHi = hi
		}
	}
	return x
}

// Name returns the indexed attribute's name.
func (x *Index) Name() string { return x.name }

// Chunks returns the number of position chunks.
func (x *Index) Chunks() int { return len(x.chunks) }

// Pieces sums the cracker pieces across all chunks.
func (x *Index) Pieces() int {
	total := 0
	for _, c := range x.chunks {
		total += c.Pieces()
	}
	return total
}

// ConsolidatedValues reports how many values consolidation has copied —
// the extra bulk-processing cost mP-CCGI pays compared to plain cracking.
func (x *Index) ConsolidatedValues() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.consolidatedVals
}

// prePartition pays the coarse-granular pre-index step: every chunk is
// cracked, in parallel, at evenly spaced bucket boundaries over the
// domain. Called by the first query.
func (x *Index) prePartition() {
	if x.buckets <= 1 || x.domainHi <= x.domainLo {
		return
	}
	step := (x.domainHi - x.domainLo) / int64(x.buckets)
	if step == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, c := range x.chunks {
		wg.Add(1)
		go func(c *cracking.Column) {
			defer wg.Done()
			for b := int64(1); b < int64(x.buckets); b++ {
				c.CrackAt(x.domainLo + b*step)
			}
		}(c)
	}
	wg.Wait()
}

// ensurePrePartitioned pays the coarse pre-index step exactly once, on
// whichever query arrives first.
func (x *Index) ensurePrePartitioned() {
	x.mu.Lock()
	if !x.prePartitioned {
		x.prePartitioned = true
		x.mu.Unlock()
		x.prePartition()
		return
	}
	x.mu.Unlock()
}

// forEachChunk cracks every chunk on [lo, hi) in parallel, invoking fn
// once per chunk, and returns the per-chunk ranges. fn runs on the
// cracking goroutine of its chunk; writes to distinct slots need no
// further synchronization.
func (x *Index) forEachChunk(lo, hi int64, fn func(i int, c *cracking.Column) cracking.Range) []cracking.Range {
	x.ensurePrePartitioned()
	ranges := make([]cracking.Range, len(x.chunks))
	var wg sync.WaitGroup
	for i, c := range x.chunks {
		wg.Add(1)
		go func(i int, c *cracking.Column) {
			defer wg.Done()
			ranges[i] = fn(i, c)
		}(i, c)
	}
	wg.Wait()
	return ranges
}

// SelectCount cracks every chunk in parallel on [lo, hi), consolidates
// the value range if it is new, and returns the number of qualifying
// tuples.
func (x *Index) SelectCount(lo, hi int64) int {
	ranges := x.forEachChunk(lo, hi, func(_ int, c *cracking.Column) cracking.Range {
		return c.SelectRange(lo, hi)
	})
	total := 0
	for _, r := range ranges {
		total += r.Count()
	}
	x.consolidate(lo, hi, ranges, total)
	return total
}

// SelectSum cracks every chunk in parallel on [lo, hi) and returns the
// sum of qualifying values: the chunked parallel aggregate fold — each
// chunk folds its own contiguous pieces, partial sums are combined once.
func (x *Index) SelectSum(lo, hi int64) int64 {
	sums := make([]int64, len(x.chunks))
	x.forEachChunk(lo, hi, func(i int, c *cracking.Column) cracking.Range {
		r, s := c.SelectSum(lo, hi)
		sums[i] = s
		return r
	})
	var total int64
	for _, s := range sums {
		total += s
	}
	return total
}

// SelectMinMax cracks every chunk in parallel on [lo, hi) and returns the
// smallest and largest qualifying value; ok is false when no value
// qualifies.
func (x *Index) SelectMinMax(lo, hi int64) (mn, mx int64, ok bool) {
	mins := make([]int64, len(x.chunks))
	maxs := make([]int64, len(x.chunks))
	ranges := x.forEachChunk(lo, hi, func(i int, c *cracking.Column) cracking.Range {
		r, cmn, cmx := c.SelectMinMax(lo, hi)
		mins[i], maxs[i] = cmn, cmx
		return r
	})
	for i, r := range ranges {
		if r.Count() == 0 {
			continue
		}
		if !ok || mins[i] < mn {
			mn = mins[i]
		}
		if !ok || maxs[i] > mx {
			mx = maxs[i]
		}
		ok = true
	}
	return mn, mx, ok
}

// SelectRows cracks every chunk in parallel on [lo, hi) and materializes
// the qualifying base row ids (chunk-local rowids shifted by the chunk's
// base offset). The chunks must have been built with
// cracking.Config.WithRows; ok is false otherwise.
func (x *Index) SelectRows(lo, hi int64) (rows []uint32, ok bool) {
	for _, c := range x.chunks {
		if !c.HasRows() {
			return nil, false
		}
	}
	parts := make([][]uint32, len(x.chunks))
	x.forEachChunk(lo, hi, func(i int, c *cracking.Column) cracking.Range {
		r, local := c.SelectRows(lo, hi)
		off := uint32(x.offsets[i])
		for j := range local {
			local[j] += off
		}
		parts[i] = local
		return r
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	rows = make([]uint32, 0, total)
	for _, p := range parts {
		rows = append(rows, p...)
	}
	return rows, true
}

// SelectRowsFunc cracks every chunk in parallel on [lo, hi) and streams
// each chunk's qualifying chunk-local rowids to fn together with the
// chunk's base-position offset, without materializing anything. fn is
// invoked concurrently from the per-chunk cracking goroutines and must
// synchronize its own writes (chunk position spans are disjoint but may
// share a boundary word in packed representations); it must not retain
// the slice. ok is false when any chunk was built without rowids.
func (x *Index) SelectRowsFunc(lo, hi int64, fn func(off uint32, rows []uint32)) bool {
	for _, c := range x.chunks {
		if !c.HasRows() {
			return false
		}
	}
	x.forEachChunk(lo, hi, func(i int, c *cracking.Column) cracking.Range {
		off := uint32(x.offsets[i])
		r, _ := c.SelectRowsFunc(lo, hi, func(rows []uint32) {
			fn(off, rows)
		})
		return r
	})
	return true
}

// consolidate copies the qualifying values of a never-before-seen value
// range into one contiguous array, so downstream operators can run tight
// loops over it. Each value range is written by a single query only
// (Section 5.2); repeated ranges are free.
func (x *Index) consolidate(lo, hi int64, ranges []cracking.Range, total int) {
	key := [2]int64{lo, hi}
	x.mu.Lock()
	if _, done := x.consolidated[key]; done {
		x.mu.Unlock()
		return
	}
	x.consolidated[key] = struct{}{}
	x.consolidatedVals += int64(total)
	x.mu.Unlock()
	// Each consolidation owns its buffer: concurrent queries consolidate
	// distinct value ranges simultaneously.
	buf := make([]int64, total)

	off := 0
	for i, c := range x.chunks {
		r := ranges[i]
		if r.Count() == 0 {
			continue
		}
		c.ForEachSegment(r.Start, r.End, func(vals []int64, _ []uint32) {
			off += copy(buf[off:], vals)
		})
	}
}
