package ccgi

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"holistic/internal/column"
	"holistic/internal/cracking"
)

func randVals(n int, seed int64, domain int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(domain)
	}
	return vals
}

func TestSelectCountMatchesScan(t *testing.T) {
	base := randVals(50_000, 1, 1<<20)
	x := New("a", base, 4, 16, cracking.Config{})
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		if got, want := x.SelectCount(lo, hi), column.CountRange(base, lo, hi); got != want {
			t.Fatalf("query %d [%d,%d): got %d, want %d", q, lo, hi, got, want)
		}
	}
}

func TestChunking(t *testing.T) {
	base := randVals(10_000, 3, 1000)
	x := New("a", base, 4, 0, cracking.Config{})
	if x.Chunks() != 4 {
		t.Errorf("Chunks() = %d, want 4", x.Chunks())
	}
	// Uneven split.
	x2 := New("a", randVals(10, 4, 100), 3, 0, cracking.Config{})
	if x2.Chunks() != 3 {
		t.Errorf("Chunks() = %d, want 3", x2.Chunks())
	}
	// More threads than values.
	x3 := New("a", []int64{1, 2}, 8, 0, cracking.Config{})
	if got := x3.SelectCount(0, 10); got != 2 {
		t.Errorf("tiny column count = %d, want 2", got)
	}
	// Empty column.
	x4 := New("a", nil, 4, 8, cracking.Config{})
	if got := x4.SelectCount(0, 10); got != 0 {
		t.Errorf("empty column count = %d", got)
	}
}

func TestPrePartitionPaidByFirstQuery(t *testing.T) {
	base := randVals(50_000, 5, 1<<20)
	x := New("a", base, 2, 32, cracking.Config{})
	if got := x.Pieces(); got != 2 {
		t.Fatalf("pieces before first query = %d, want 2 (one per chunk)", got)
	}
	x.SelectCount(100, 200)
	// After the first query each chunk has ~32 bucket boundaries plus the
	// query's own cracks.
	if got := x.Pieces(); got < 2*30 {
		t.Fatalf("pieces after first query = %d, want >= 60 (coarse partitioning)", got)
	}
	before := x.Pieces()
	x.SelectCount(500, 600)
	after := x.Pieces()
	if after-before > 8 {
		t.Errorf("second query added %d pieces; pre-partitioning should not rerun", after-before)
	}
}

func TestConsolidationOncePerRange(t *testing.T) {
	base := randVals(50_000, 6, 1<<20)
	x := New("a", base, 4, 0, cracking.Config{})
	x.SelectCount(1000, 2000)
	v1 := x.ConsolidatedValues()
	if v1 == 0 && column.CountRange(base, 1000, 2000) > 0 {
		t.Fatal("first query consolidated nothing")
	}
	x.SelectCount(1000, 2000)
	if got := x.ConsolidatedValues(); got != v1 {
		t.Errorf("repeated range re-consolidated: %d -> %d", v1, got)
	}
	x.SelectCount(5000, 9000)
	if got := x.ConsolidatedValues(); got <= v1 {
		t.Errorf("new range did not consolidate: %d -> %d", v1, got)
	}
}

func TestConcurrentQueries(t *testing.T) {
	base := randVals(50_000, 7, 1<<20)
	x := New("a", base, 2, 8, cracking.Config{})
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for q := 0; q < 50; q++ {
				lo := rng.Int63n(1 << 20)
				hi := lo + rng.Int63n(1<<20-lo) + 1
				if x.SelectCount(lo, hi) != column.CountRange(base, lo, hi) {
					fail <- "mismatch"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	for f := range fail {
		t.Fatal(f)
	}
}

func TestQuickCCGIMatchesScan(t *testing.T) {
	check := func(seed int64, threads, buckets uint8, bounds []uint16) bool {
		base := randVals(2000, seed, 1<<16)
		x := New("q", base, int(threads%4)+1, int(buckets%8), cracking.Config{})
		for i := 0; i+1 < len(bounds); i += 2 {
			lo, hi := int64(bounds[i]), int64(bounds[i+1])
			if lo > hi {
				lo, hi = hi, lo
			}
			if x.SelectCount(lo, hi) != column.CountRange(base, lo, hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
